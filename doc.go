// Package repro is a from-scratch Go reproduction of "A Relational Matrix
// Algebra and its Implementation in a Column Store" (Dolmatova, Augsten,
// Böhlen — SIGMOD 2020).
//
// The public API lives in repro/rma. The benchmarks in bench_test.go
// regenerate the paper's evaluation, one per table and figure; the
// cmd/rmabench tool prints them in the paper's layout (and, with -json,
// writes a machine-readable BENCH_<n>.json kernel report). See README.md,
// DESIGN.md, and EXPERIMENTS.md.
//
// # Parallel execution substrate
//
// All three execution layers share one parallel driver and one buffer
// arena, both hosted in internal/bat:
//
//   - bat.ParallelFor splits an index range over at most
//     bat.Parallelism() goroutines with a serial cutoff
//     (bat.SerialCutoff elements), so small columns never pay for
//     scheduling. The vectorized BAT kernels decompose rows through it,
//     package batlin decomposes independent columns (elementwise family,
//     mmu/cpd/opd result columns, tra's scatter, the pivot-elimination
//     fan-out of Algorithm 2), and package core decomposes the dense
//     path's copy-in (toMatrix) and copy-out (matrixToCols) loops.
//   - The reductions (bat.Sum, bat.Dot) accumulate over fixed-size
//     chunks combined in chunk order, so results are bitwise-identical
//     at any worker budget — asserted by -race property tests.
//   - The arena (bat.Alloc/AllocZero/Free, bat.Release at the BAT
//     level, AllocInts/FreeInts for sort permutations) recycles kernel
//     output buffers through size-classed sync.Pools. Iterative
//     algorithms release each superseded scratch column, keeping
//     Gauss-Jordan inversion and Gram-Schmidt QR allocation-flat across
//     iterations.
//
// The relational operators run on the same substrate:
//
//   - rel.HashJoin is a hash-partitioned join over typed 64-bit key
//     hashes (no per-row string keys): the build side is
//     radix-partitioned in two parallel passes, and the probe runs as a
//     parallel count pass plus a parallel scatter through per-row output
//     offsets. Output order is canonical — probe rows in left order,
//     matches per row in build order — at any worker budget.
//   - rel.GroupBy folds rows into per-chunk partial aggregation tables
//     over fixed chunks of bat.SerialCutoff rows, merged in ascending
//     chunk order, so group order and float sums are bitwise-identical
//     at any worker budget.
//   - bat.SortIndex (and rel's ORDER BY path) uses bat.SortStable, a
//     parallel stable merge sort over arena-backed permutation buffers;
//     the stable permutation is unique, so the result is independent of
//     the worker budget.
//   - The zero-suppressed kernels (bat.SparseAdd, Sparse.Gather,
//     Sparse.Densify, Sparse.Sum) decompose over OID ranges concatenated
//     in range order (Sum reduces over fixed chunks), with the same
//     determinism guarantee.
//
// core.Options.Parallelism bounds the worker budget per invocation
// (default GOMAXPROCS, 1 forces serial); the effective count is recorded
// in core.Stats.Workers. cmd/benchdiff diffs consecutive BENCH_<n>.json
// kernel reports and fails CI on >20% ns/op regressions.
package repro
