// Package repro is a from-scratch Go reproduction of "A Relational Matrix
// Algebra and its Implementation in a Column Store" (Dolmatova, Augsten,
// Böhlen — SIGMOD 2020).
//
// The public API lives in repro/rma. The benchmarks in bench_test.go
// regenerate the paper's evaluation, one per table and figure; the
// cmd/rmabench tool prints them in the paper's layout. See README.md,
// DESIGN.md, and EXPERIMENTS.md.
package repro
