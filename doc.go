// Package repro is a from-scratch Go reproduction of "A Relational Matrix
// Algebra and its Implementation in a Column Store" (Dolmatova, Augsten,
// Böhlen — SIGMOD 2020).
//
// The public API lives in repro/rma. The benchmarks in bench_test.go
// regenerate the paper's evaluation, one per table and figure; the
// cmd/rmabench tool prints them in the paper's layout (and, with -json,
// writes a machine-readable BENCH_<n>.json kernel report). See README.md,
// DESIGN.md, and EXPERIMENTS.md.
//
// # Per-query execution contexts
//
// Every invocation of the stack runs under an explicit execution context
// (internal/exec.Ctx) carrying three things: the worker budget, a
// size-classed buffer arena, and a stats sink. Every layer takes the
// context as its first argument — the vectorized BAT kernels, the sort
// and sparse kernels, the column loops of package batlin, the dense
// kernels of package linalg (MatMul, SYRK, QR, SVD), the relational
// operators of package rel, and the copy-in/copy-out loops of package
// core. A nil context is valid everywhere and means "default budget,
// shared arena, no stats".
//
// Because the budget lives in the context rather than in a process-wide
// knob, concurrent queries with different core.Options.Parallelism
// settings are race-free by construction: each query's operators resolve
// workers against the query's own Ctx, and core.Stats.Workers reports
// that budget per invocation. The former global knobs
// (bat.SetParallelism, linalg.SetParallelism) survive only as deprecated
// shims that seed the fallback budget nil contexts resolve against. A
// dedicated CI step runs the mixed-budget concurrency stress tests under
// -race with GOMAXPROCS=4.
//
//   - Ctx.ParallelFor splits an index range over at most Ctx.Workers()
//     goroutines with a serial cutoff (exec.SerialCutoff elements), so
//     small columns never pay for scheduling.
//   - The reductions (bat.Sum, bat.Dot via Ctx.Reduce) accumulate over
//     fixed-size chunks combined in chunk order, so results are
//     bitwise-identical at any worker budget — asserted by -race
//     property tests that run multiple contexts simultaneously.
//   - The arena (exec.Arena, reachable as Ctx.Arena) recycles float64,
//     int, int64, and string buffers through size-classed sync.Pools;
//     bat.Release retires a whole column tail of any domain. The dense
//     path's toMatrix operands draw their backing arrays from the
//     context's arena and return them once the kernel has consumed them.
//     Iterative algorithms release each superseded scratch column,
//     keeping Gauss-Jordan inversion and Gram-Schmidt QR allocation-flat
//     across iterations. Queries wanting buffer isolation can carry a
//     private exec.NewArena in their context; multi-tenant deployments
//     use accounted arenas instead (see below).
//
// # Memory governance
//
// Multi-tenant execution is governed by exec.Governor: each tenant is
// an accounting principal with an optional byte budget, and every
// governed query draws its buffers from a per-query accounted arena
// (Tenant.NewArena) charging that tenant. Accounted arenas track
// live/peak bytes and per-domain pool hit/miss/free counters, and
// verify buffer origin through a per-arena ledger — a buffer freed into
// an arena that did not allocate it is left to the garbage collector
// rather than corrupting the tenant's byte count or smuggling
// unaccounted memory into the pools. Arena.Close at end of query
// releases the query's outstanding charges, so failed or abandoned
// queries cannot strand bytes against a budget; result columns handed
// to the caller simply leave the governed scope (the budget bounds
// in-flight execution memory, not retained results).
//
// An allocation that would push a tenant past its budget fails the
// query with an error matching exec.ErrMemoryBudget — never a panic —
// and the charge is checked before any memory is committed, so a
// rejected request cannot spike the process's physical footprint.
// Tenant caps persist on the governor: core.Options.MemoryBudget zero
// preserves a previously set cap, negative explicitly removes it
// (exec.Governor.ArenaFor is the single resolution point).
// Internally the overrun unwinds the kernels as a typed panic that
// every error-returning API boundary (bat, batlin, rel, core, sql)
// converts back through exec.CatchBudget; the parallel drivers forward
// worker-goroutine panics to the caller so the conversion works inside
// fan-outs too. core.Unary/Binary retry a budget-failed invocation once
// serially — the parallel kernels need extra scratch (merge-sort double
// buffers) that the serial paths do not, and all kernels are
// bitwise-deterministic across worker budgets, so a fallback result is
// identical to the parallel one (core.Stats.SerialFallback records the
// downgrade). sql.DB applies the same retry per statement.
//
// Admission control is reservation-based: a governor built with a
// global cap admits a query only when the sum of admitted budgets stays
// under the cap (plus an optional concurrent-query limit), queueing
// excess queries instead of overcommitting; sql.DB admits every
// statement against its governor. The per-run staging of the sparse
// kernels (Sparse.Gather, bat.SparseAdd) and the join build's
// partitioning scratch are arena-charged at their upper bounds, the
// elementwise BAT kernels hand their int→float and densified-sparse
// conversion views back to the arena as soon as the kernel has read
// them, and a tenant's arenas share one warm pool set so consecutive
// statements reuse each other's buffers instead of starting from cold
// pools. A buffer freed into a foreign arena is uncharged from its true
// owner at free time: accounted allocations register in a process-wide
// owner registry (sync.Map keyed by the buffer's first-element pointer,
// guarded by an atomic live-count fast path so ungoverned execution
// pays one atomic load), and any arena's free path consults it before
// pooling — the owner's ledger and byte count are settled immediately
// rather than at owner close, while the buffer itself still goes to the
// garbage collector, never into another tenant's pools. Known limit:
// the typed join-key hash slices bypass the arena deliberately — there
// is no uint64 pool domain, and adding one for a single call site would
// cost more in pool bookkeeping than the allocation it saves.
//
// The surface is observable end to end: core.Options{Tenant,
// MemoryBudget, Governor} governs one invocation and snapshots the
// tenant counters into core.Stats.Arena; exec.Metrics() (the default
// governor) and sql.DB.Metrics() return per-tenant live/peak bytes and
// pool hit rates; rmacli exposes \mem n, \tenant name and \stats; both
// CLIs publish the snapshot through expvar as "rma.memory".
//
// The relational operators run on the same substrate:
//
//   - rel.HashJoin is a hash-partitioned join over typed 64-bit key
//     hashes (no per-row string keys): the build side is
//     radix-partitioned in two parallel passes, and the probe runs as a
//     parallel count pass plus a parallel scatter through per-row output
//     offsets. Output order is canonical — probe rows in left order,
//     matches per row in build order — at any worker budget.
//   - rel.GroupBy folds rows into per-chunk partial aggregation tables
//     over fixed chunks of bat.SerialCutoff rows, merged in ascending
//     chunk order, so group order and float sums are bitwise-identical
//     at any worker budget.
//   - bat.SortIndex (and rel's ORDER BY path) uses bat.SortStable, a
//     parallel stable merge sort over arena-backed permutation buffers;
//     the stable permutation is unique, so the result is independent of
//     the worker budget.
//   - The zero-suppressed kernels (bat.SparseAdd, Sparse.Gather,
//     Sparse.Densify, Sparse.Sum) decompose over OID ranges concatenated
//     in range order (Sum reduces over fixed chunks), with the same
//     determinism guarantee.
//
// # Streaming execution
//
// SELECT statements run on a morsel-driven streaming pipeline by
// default (sql.DB.SetStreaming toggles it). A small logical planner
// (internal/sql/plan.go) decomposes the statement's FROM tree, pushes
// WHERE conjuncts down to the deepest input that binds their columns
// (scan predicates fuse into the scan's morsel loop; probe-side
// predicates filter join inputs before the build), prunes unreferenced
// columns, and dry-compiles every expression against zero-row prototype
// sources at plan time — so a statement that plans successfully cannot
// fail to compile mid-stream. Any planning error falls back to the
// materializing executor, which reproduces the exact user-visible
// error; the two paths share the projection/ORDER BY/DISTINCT/LIMIT
// tail, so results and error messages are identical by construction
// (asserted bitwise by the differential tests in stream_test.go).
//
// Operators are composed as pull iterators over bat.Batch morsels of
// bat.MorselSize (4096) rows: next returns the next batch or nil at
// end-of-stream, close releases held buffers and is safe during
// unwinds. Scans emit zero-copy column views when no predicate
// survives pushdown and arena-gathered batches otherwise; each morsel
// is released as soon as its consumer has drained it, so a
// filter→join→group pipeline holds one morsel per stage plus the join
// build and aggregation tables — peak arena bytes become the maximum
// across stages instead of the sum of full intermediates. Hash joins
// build once via rel.JoinBuild sized from the (pruned, pre-filtered)
// build side and probe per morsel; aggregations fold morsels into
// rel.StreamAgg, which buffers rows into the same
// bat.SerialCutoff-aligned chunks as rel.GroupBy regardless of morsel
// boundaries. Both therefore keep the determinism contract: probe
// output stays in probe-row order with matches in build order, chunked
// float sums combine in fixed chunk order, and results are
// bitwise-identical to the materializing path at any worker budget.
// exec.PipelineStats records per-stage batch/row counts and peak held
// bytes, surfaced through sql.DB.PipelineStats and rmacli \stats.
//
// # Out-of-core storage and spill
//
// internal/store is the on-disk column-segment format: a table
// checkpoints as one file of per-column segments of store.SegRows
// (65536) rows, each segment carrying a min/max zone map (floats
// through IEEE bit patterns so NaN and -0 round-trip, ints exactly,
// strings byte-wise) and an independently chosen encoding —
// dictionary codes when the segment's distinct count is small,
// run-length pairs when runs dominate, raw fixed-width words
// otherwise. Segments are aligned to blocks of store.BlockRows rows,
// which equals bat.MorselSize (4096), and SegRows is an exact multiple
// of it, so segment-granular decisions (zone-map skips, buffer-pool
// residency) always preserve morsel boundaries and with them the
// engine's bitwise determinism.
// Reads go through mmap when the platform provides it and fall back to
// buffered I/O otherwise; decoded segments are charged to the reading
// query's arena (store.Pool evicts LRU segments under a byte cap, so a
// scan's resident footprint is bounded regardless of table size) and
// handed back when the cursor advances.
//
// Persistence rides the same format: CREATE TABLE ... PERSIST
// checkpoints the table into the DB's data directory (sql.DB.SetDataDir)
// on every mutation, and sql.DB.LoadPersisted restores all checkpointed
// tables after a restart — bitwise, including -0 and string interning
// behavior, as the restart test drives through an actual cmd/rmaserver
// process cycle. Scans over persisted tables consult the zone maps:
// WHERE conjuncts that prove per-column bounds (comparisons, BETWEEN,
// string equality) skip whole segments whose min/max ranges cannot
// match, before any row is touched.
//
// Spill is the third rung of the statement retry ladder. Each statement
// runs normal → serial (on budget errors, when it ran parallel) →
// serial with forced spill (when the DB has a spill directory,
// sql.DB.SetSpill). Above that, spill engages proactively: every
// estimate-gated consumer asks exec.Ctx.ShouldSpill(estimate) before
// allocating its dominant transient, where the threshold is the
// configured byte count, or half the tenant's budget when configured as
// zero (unbudgeted tenants never auto-spill). The consumers are the
// three the roadmap named: hash-join pair staging (16-way partitioned
// pair files merged back in canonical probe order — both
// rel.HashJoinSized and the SQL layer's rel.EquiJoinPairsSpilled
// route), grouped aggregation (rel.StreamAgg and rel.GroupBy freeze
// partial tables to disk and merge), and sort (per-run files k-way
// merged; a serial sort is one run and never stages). Every spilled
// path reproduces its in-memory result bit for bit at any worker
// count — asserted by a self-calibrating differential test that
// measures the in-memory and fully-spilled serial peaks and runs the
// statement under the midpoint budget, plus spill-forced legs of the
// fuzz oracle (RMA_ORACLE_SPILL) and a -race CI stress step.
// exec.SpillStats (bytes, partitions, events) aggregates into
// sql.DB.Metrics alongside the arena counters.
//
// # Block-partitioned execution
//
// Large dense operands are held as matrix.BlockMatrix: a tile grid of
// row-major tiles of matrix.TileEdge (256) rows/columns, edge tiles
// ragged. Each tile is charged to the owning query's arena as its own
// allocation, so a matrix bigger than any single arena size class
// materializes tile by tile instead of demanding one contiguous slab —
// and spills tile-at-a-time through the same exec.Spill machinery as
// the relational operators (BlockMatrix.EnableSpill bounds resident
// tiles; evictions report through Ctx.NoteSpill). core.toMatrix grows
// a block-aware path: ordered relations above a size gate materialize
// directly into tiles, and blocked results flow back column-wise
// without an intermediate flat copy.
//
// The blocked kernels (linalg.MatMulBlocked, SYRKBlocked, QRBlocked,
// CholeskyBlocked) drive tile updates through exec.Ctx.ParallelFor and
// keep the repository's determinism contract the hard way: every
// output tile accumulates its k-panel products in fixed ascending
// order, panel factorizations apply reflectors/pivots in the same
// order and with the same per-element arithmetic as the flat loops, so
// blocked results are bitwise-identical to the flat kernels at any
// worker count and any tile-grid shape — asserted by differential
// tests over tile edges yielding 1/2/7/16-tile grids, non-divisible
// edge sizes, and worker budgets {1, 2, 8} under -race.
//
// The relational analogue is rel.Exchange: morsel streams are
// radix-partitioned into P shards on the same typed 64-bit key hashes
// the join table uses, each shard builds and probes (or groups)
// independently, and shard outputs concatenate in fixed shard order —
// so the exchange plan is bitwise-identical to the single-table path
// (rel.ExchangeJoin vs rel.HashJoinSized, rel.ShardedAgg vs
// rel.StreamAgg). The streaming SQL planner picks the partitioned
// build when the statement runs with a multi-worker budget and the
// build side exceeds bat.SerialCutoff rows; shard count is resolved at
// execution time (min(workers, 16)) so cached plans stay
// execution-agnostic. The plan additionally carries a partitioning
// property — the canonical probe-side equi-join keys — and when the
// GROUP BY keys equal it, the group stage shards its accumulators on
// the existing key hashes instead of re-shuffling; grouping on other
// keys keeps the single spill-capable accumulator. Per-shard rows
// surface in exec.PipelineStats as exchange.build[shard i/P],
// exchange.join[shard i/P], and exchange.group[shard i/P] stages.
//
// # Static analysis
//
// cmd/rmalint machine-checks four of the invariants above as a
// go-vet-compatible analyzer suite (internal/analysis), run in CI
// through go vet -vettool over every package:
//
//   - arenapair: every arena allocation (exec.Arena's typed allocators
//     and the bat.Alloc shims) must be freed, released, or escape —
//     returned, stored, captured — on every control-flow path; an early
//     return that strands a buffer is reported at the exit that leaks.
//   - ctxfirst: exported functions in the kernel packages (bat, batlin,
//     linalg, rel, matrix) that allocate or fan out must take *exec.Ctx
//     as their first parameter — the per-query context discipline.
//   - budgetboundary: exported error-returning functions in core, sql,
//     and cmd/rmaserver whose call graph can reach an accounted-arena
//     allocation must defer exec.CatchBudget, so budget overruns reach
//     callers as typed errors, never panics.
//   - detorder: map iteration order must not feed result slices, float
//     accumulations, or channel sends without a canonical sort, and
//     time.Now / the global math/rand source are banned outside cmd,
//     bench, and test code — the bitwise-determinism contract.
//
// A finding that reflects a deliberate exception is suppressed in place
// with a `//lint:ignore rmalint/<analyzer> reason` comment on (or
// directly above) the offending line. rmalint -json emits the findings
// machine-readably and counts every suppression, so the escape hatch
// stays auditable; each analyzer also ships analysistest-style fixtures
// under internal/analysis/testdata, including a regression fixture
// reproducing the streaming GROUP BY scratch-column leak fixed in an
// earlier revision.
//
// # Plan cache
//
// sql.DB keeps a bounded LRU plan cache (256 entries) keyed by
// normalized statement text: statements are re-lexed, keywords
// uppercased, identifiers and strings canonically quoted, and token
// text joined with single spaces, so whitespace, comment, and keyword
// case variants of one statement share an entry. A cache entry holds
// the parsed SELECT plus its lazily-built streaming plan; plans are
// finalized at build time (every stage's batch schema precomputed) and
// never mutated during execution, so one cached plan executes safely
// from any number of concurrent statements — asserted under -race, and
// cross-checked against the uncached paths by the differential fuzz
// oracle (oracle_test.go), which runs randomly generated SELECTs
// streamed, materialized, and cached at worker budgets {1,2,8} and
// requires bitwise-identical relations and identical error strings.
// Only single-statement SELECTs over plain table FROM trees are
// cacheable (derived tables and RMA table functions execute at plan
// time, so caching them would freeze data, not shape). The cache
// invalidates wholesale on CREATE/INSERT/DROP/Register, on the
// streaming toggle, and on option changes; DB.Metrics carries
// hit/miss/invalidation counters. Per-statement execution options
// (tenant, budget, workers) ride DB.ExecWith/QueryWith rather than
// DB-global state, so a multi-tenant server never serializes on
// configuration.
//
// # Wire-protocol server
//
// cmd/rmaserver fronts a sql.DB over HTTP/JSON: API keys map to
// governed tenants (key=tenant:budgetMiB), every statement is admitted
// through the governor and executed via ExecWith under its tenant's
// budget, and result sets stream back as column batches of
// bat.MorselSize rows. Errors are typed JSON — a tenant over its
// memory budget gets HTTP 429 with code "memory_budget" and the byte
// arithmetic; neighbors are untouched. GET /metrics serves the
// "rma.memory" surface (governor admission state, per-tenant bytes,
// plan-cache counters) plus per-tenant statement latency p50/p99 from
// lock-free log-scale histograms; /debug/vars exposes the same through
// expvar. On SIGINT/SIGTERM the server drains: new statements get 503
// "draining" while in-flight ones finish and close their arenas, then
// the process exits. The e2e tests (cmd/rmaserver/server_test.go)
// drive budget isolation, admission queueing under a single-slot
// governor, graceful drain, and the 4-tenants-by-8-connections load
// under -race. rmabench -load NxM replays the same serving mix as a
// load generator and reports per-tenant quantiles; the sql.Load rows
// in BENCH_<n>.json track the cached and cache-off serving latency.
//
// core.Options.Parallelism bounds the worker budget per invocation
// (default GOMAXPROCS, 1 forces serial); core.Unary/Binary build the
// invocation's context from the options, and the effective count is
// recorded in core.Stats.Workers alongside the context's fan-out
// counters. The SQL
// layer builds one context per statement, so concurrent statements with
// different budgets never share a knob; its expression-keyed equi-joins
// materialize typed key columns and route through rel.EquiJoinPairs (no
// per-row string keys). cmd/benchdiff diffs consecutive BENCH_<n>.json
// kernel reports and fails CI on >20% ns/op regressions; rmabench
// reports each kernel's fastest of three benchmark rounds so host
// scheduling noise does not masquerade as a regression.
package repro
