// Package repro is a from-scratch Go reproduction of "A Relational Matrix
// Algebra and its Implementation in a Column Store" (Dolmatova, Augsten,
// Böhlen — SIGMOD 2020).
//
// The public API lives in repro/rma. The benchmarks in bench_test.go
// regenerate the paper's evaluation, one per table and figure; the
// cmd/rmabench tool prints them in the paper's layout (and, with -json,
// writes a machine-readable BENCH_<n>.json kernel report). See README.md,
// DESIGN.md, and EXPERIMENTS.md.
//
// # Per-query execution contexts
//
// Every invocation of the stack runs under an explicit execution context
// (internal/exec.Ctx) carrying three things: the worker budget, a
// size-classed buffer arena, and a stats sink. Every layer takes the
// context as its first argument — the vectorized BAT kernels, the sort
// and sparse kernels, the column loops of package batlin, the dense
// kernels of package linalg (MatMul, SYRK, QR, SVD), the relational
// operators of package rel, and the copy-in/copy-out loops of package
// core. A nil context is valid everywhere and means "default budget,
// shared arena, no stats".
//
// Because the budget lives in the context rather than in a process-wide
// knob, concurrent queries with different core.Options.Parallelism
// settings are race-free by construction: each query's operators resolve
// workers against the query's own Ctx, and core.Stats.Workers reports
// that budget per invocation. The former global knobs
// (bat.SetParallelism, linalg.SetParallelism) survive only as deprecated
// shims that seed the fallback budget nil contexts resolve against. A
// dedicated CI step runs the mixed-budget concurrency stress tests under
// -race with GOMAXPROCS=4.
//
//   - Ctx.ParallelFor splits an index range over at most Ctx.Workers()
//     goroutines with a serial cutoff (exec.SerialCutoff elements), so
//     small columns never pay for scheduling.
//   - The reductions (bat.Sum, bat.Dot via Ctx.Reduce) accumulate over
//     fixed-size chunks combined in chunk order, so results are
//     bitwise-identical at any worker budget — asserted by -race
//     property tests that run multiple contexts simultaneously.
//   - The arena (exec.Arena, reachable as Ctx.Arena) recycles float64,
//     int, int64, and string buffers through size-classed sync.Pools;
//     bat.Release retires a whole column tail of any domain. The dense
//     path's toMatrix operands draw their backing arrays from the
//     context's arena and return them once the kernel has consumed them.
//     Iterative algorithms release each superseded scratch column,
//     keeping Gauss-Jordan inversion and Gram-Schmidt QR allocation-flat
//     across iterations. Queries wanting buffer isolation can carry a
//     private exec.NewArena in their context.
//
// The relational operators run on the same substrate:
//
//   - rel.HashJoin is a hash-partitioned join over typed 64-bit key
//     hashes (no per-row string keys): the build side is
//     radix-partitioned in two parallel passes, and the probe runs as a
//     parallel count pass plus a parallel scatter through per-row output
//     offsets. Output order is canonical — probe rows in left order,
//     matches per row in build order — at any worker budget.
//   - rel.GroupBy folds rows into per-chunk partial aggregation tables
//     over fixed chunks of bat.SerialCutoff rows, merged in ascending
//     chunk order, so group order and float sums are bitwise-identical
//     at any worker budget.
//   - bat.SortIndex (and rel's ORDER BY path) uses bat.SortStable, a
//     parallel stable merge sort over arena-backed permutation buffers;
//     the stable permutation is unique, so the result is independent of
//     the worker budget.
//   - The zero-suppressed kernels (bat.SparseAdd, Sparse.Gather,
//     Sparse.Densify, Sparse.Sum) decompose over OID ranges concatenated
//     in range order (Sum reduces over fixed chunks), with the same
//     determinism guarantee.
//
// core.Options.Parallelism bounds the worker budget per invocation
// (default GOMAXPROCS, 1 forces serial); core.Options.Ctx builds the
// invocation's context, and the effective count is recorded in
// core.Stats.Workers alongside the context's fan-out counters. The SQL
// layer builds one context per statement, so concurrent statements with
// different budgets never share a knob; its expression-keyed equi-joins
// materialize typed key columns and route through rel.EquiJoinPairs (no
// per-row string keys). cmd/benchdiff diffs consecutive BENCH_<n>.json
// kernel reports and fails CI on >20% ns/op regressions.
package repro
