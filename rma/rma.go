// Package rma is the public API of the relational matrix algebra library,
// a reproduction of "A Relational Matrix Algebra and its Implementation in
// a Column Store" (Dolmatova, Augsten, Böhlen — SIGMOD 2020).
//
// The package exposes three layers:
//
//   - relations: build column-oriented relations with Builder, or load
//     them through SQL (CREATE TABLE / INSERT);
//
//   - the nineteen relational matrix operations (Add, Mmu, Inv, Qqr, ...)
//     over relations with order schemas, returning relations with origins;
//
//   - a SQL dialect with the paper's extension, where matrix operations
//     appear as table functions in FROM:
//
//     db := rma.NewDB()
//     db.MustExec(`CREATE TABLE rating (Usr VARCHAR(20), Balto DOUBLE, Heat DOUBLE, Net DOUBLE)`)
//     db.MustExec(`INSERT INTO rating VALUES ('Ann',2.0,1.5,0.5), ('Tom',0.0,0.0,1.5), ('Jan',1.0,4.0,1.0)`)
//     res, err := db.Query(`SELECT * FROM INV(rating BY Usr)`)
//
// Execution knobs mirror the paper's ablations: Policy selects between
// the no-copy BAT kernels (RMA+BAT) and the dense delegated kernels
// (RMA+MKL); SortMode enables the Section 8.1 sorting optimizations.
package rma

import (
	"io"

	"repro/internal/bat"
	"repro/internal/core"
	"repro/internal/csvio"
	"repro/internal/rel"
	"repro/internal/sql"
)

// Relation is a relation instance: a schema plus one typed column per
// attribute. It is the single data structure of the algebra — every
// operation consumes and produces relations.
type Relation = rel.Relation

// Schema is an ordered list of attributes.
type Schema = rel.Schema

// Attr is an attribute (name and type).
type Attr = rel.Attr

// Builder accumulates rows into a Relation.
type Builder = rel.Builder

// Value is one cell value.
type Value = bat.Value

// Type is a column domain.
type Type = bat.Type

// Column domains.
const (
	Float  = bat.Float
	Int    = bat.Int
	String = bat.String
)

// Float64 wraps a float64 cell value.
func Float64(f float64) Value { return bat.FloatValue(f) }

// Int64 wraps an int64 cell value.
func Int64(i int64) Value { return bat.IntValue(i) }

// Str wraps a string cell value.
func Str(s string) Value { return bat.StringValue(s) }

// NewBuilder returns a row builder for a schema.
func NewBuilder(name string, schema Schema) *Builder { return rel.NewBuilder(name, schema) }

// NewRelation builds a relation from typed columns (float64, int64 or
// string slices).
func NewRelation(name string, schema Schema, cols []any) (*Relation, error) {
	bats := make([]*bat.BAT, len(cols))
	for k, c := range cols {
		switch v := c.(type) {
		case []float64:
			bats[k] = bat.FromFloats(v)
		case []int64:
			bats[k] = bat.FromInts(v)
		case []string:
			bats[k] = bat.FromStrings(v)
		default:
			return rel.New(name, schema, nil) // triggers the arity error
		}
	}
	return rel.New(name, schema, bats)
}

// Options configures operation execution.
type Options = core.Options

// Policy selects the execution engine (paper §7.3).
type Policy = core.Policy

// Execution policies.
const (
	// PolicyAuto runs elementwise operations on BATs and delegates the
	// rest to the dense kernel (the paper's default optimizer policy).
	PolicyAuto = core.PolicyAuto
	// PolicyBAT forces the no-copy column-at-a-time kernels (RMA+BAT).
	PolicyBAT = core.PolicyBAT
	// PolicyDense forces dense delegation with copy-in/out (RMA+MKL).
	PolicyDense = core.PolicyDense
)

// SortMode toggles the §8.1 sorting optimizations.
type SortMode = core.SortMode

// Sorting modes.
const (
	// SortFull always sorts by the order schema.
	SortFull = core.SortFull
	// SortOptimized skips or relativizes sorting where the base result
	// permits it.
	SortOptimized = core.SortOptimized
)

// Stats receives per-phase timings of an operation.
type Stats = core.Stats

// Op names a relational matrix operation.
type Op = core.Op

// Apply runs a unary relational matrix operation by name (one of "tra",
// "inv", "evc", "evl", "qqr", "rqr", "dsv", "usv", "vsv", "det", "rnk",
// "chf").
func Apply(op string, r *Relation, by []string, opts *Options) (*Relation, error) {
	o, err := core.ParseOp(op)
	if err != nil {
		return nil, err
	}
	return core.Unary(o, r, by, opts)
}

// Apply2 runs a binary relational matrix operation by name (one of "add",
// "sub", "emu", "mmu", "cpd", "opd", "sol").
func Apply2(op string, r *Relation, rBy []string, s *Relation, sBy []string, opts *Options) (*Relation, error) {
	o, err := core.ParseOp(op)
	if err != nil {
		return nil, err
	}
	return core.Binary(o, r, rBy, s, sBy, opts)
}

// The nineteen relational matrix operations (paper Table 2).
var (
	Add = core.Add
	Sub = core.Sub
	Emu = core.Emu
	Mmu = core.Mmu
	Cpd = core.Cpd
	Opd = core.Opd
	Sol = core.Sol
	Tra = core.Tra
	Inv = core.Inv
	Evc = core.Evc
	Evl = core.Evl
	Qqr = core.Qqr
	Rqr = core.Rqr
	Dsv = core.Dsv
	Usv = core.Usv
	Vsv = core.Vsv
	Det = core.Det
	Rnk = core.Rnk
	Chf = core.Chf
)

// ReadCSV parses CSV (header row required) into a relation, inferring
// column types from the data.
func ReadCSV(r io.Reader, name string) (*Relation, error) { return csvio.Read(r, name) }

// ReadCSVSchema parses CSV against a declared schema.
func ReadCSVSchema(r io.Reader, name string, schema Schema) (*Relation, error) {
	return csvio.ReadWithSchema(r, name, schema)
}

// WriteCSV renders a relation as CSV with a header row.
func WriteCSV(w io.Writer, r *Relation) error { return csvio.Write(w, r) }

// DB is an in-memory SQL database with RMA table functions.
type DB struct {
	*sql.DB
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{DB: sql.NewDB()} }

// MustExec runs a script and panics on error; for setup code and examples.
func (db *DB) MustExec(src string) *Relation {
	res, err := db.Exec(src)
	if err != nil {
		panic(err)
	}
	return res
}
