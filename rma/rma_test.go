package rma_test

import (
	"math"
	"strings"
	"testing"

	"repro/rma"
)

func TestQuickstartFlow(t *testing.T) {
	db := rma.NewDB()
	db.MustExec(`
CREATE TABLE rating (Usr VARCHAR(20), Balto DOUBLE, Heat DOUBLE, Net DOUBLE);
INSERT INTO rating VALUES ('Ann',2.0,1.5,0.5), ('Tom',0.0,0.0,1.5), ('Jan',1.0,4.0,1.0);
`)
	res, err := db.Query(`SELECT * FROM INV(rating BY Usr)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 || strings.Join(res.Schema.Names(), ",") != "Usr,Balto,Heat,Net" {
		t.Fatalf("inv result %dx%d %v", res.NumRows(), res.NumCols(), res.Schema.Names())
	}
}

func TestDirectAPI(t *testing.T) {
	r, err := rma.NewRelation("m", rma.Schema{
		{Name: "K", Type: rma.String},
		{Name: "x", Type: rma.Float},
		{Name: "y", Type: rma.Float},
	}, []any{
		[]string{"a", "b"},
		[]float64{6, 8},
		[]float64{7, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	inv, err := rma.Inv(r, []string{"K"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := rma.Mmu(r, []string{"K"}, inv, []string{"K"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := 0.0
			if i == j {
				want = 1.0
			}
			if got := prod.Value(i, j+1).F; math.Abs(got-want) > 1e-10 {
				t.Errorf("A·A⁻¹[%d][%d] = %v", i, j, got)
			}
		}
	}
}

func TestApplyByName(t *testing.T) {
	b := rma.NewBuilder("t", rma.Schema{
		{Name: "K", Type: rma.Int},
		{Name: "v", Type: rma.Float},
	})
	b.MustAdd(rma.Int64(2), rma.Float64(3))
	b.MustAdd(rma.Int64(1), rma.Float64(4))
	r := b.Relation()
	tra, err := rma.Apply("tra", r, []string{"K"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(tra.Schema.Names(), ","); got != "C,1,2" {
		t.Errorf("tra schema = %s", got)
	}
	// add requires disjoint order schemas: rename the second argument's
	// key (the paper's ρ step).
	s, err := r.WithName("s").Rename(map[string]string{"K": "K2"})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := rma.Apply2("add", r, []string{"K"}, s, []string{"K2"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := sum.Col("v")
	f, _ := v.Floats()
	if f[0] != 8 || f[1] != 6 { // sorted by K: 1→4+4, 2→3+3
		t.Errorf("add = %v", f)
	}
	if _, err := rma.Apply("nope", r, nil, nil); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := rma.Apply2("nope", r, nil, r, nil, nil); err == nil {
		t.Error("unknown binary op accepted")
	}
}

func TestPolicyAndStats(t *testing.T) {
	b := rma.NewBuilder("t", rma.Schema{
		{Name: "K", Type: rma.Int},
		{Name: "a", Type: rma.Float},
		{Name: "b", Type: rma.Float},
	})
	b.MustAdd(rma.Int64(0), rma.Float64(4), rma.Float64(1))
	b.MustAdd(rma.Int64(1), rma.Float64(1), rma.Float64(3))
	r := b.Relation()
	st := &rma.Stats{}
	if _, err := rma.Inv(r, []string{"K"}, &rma.Options{Policy: rma.PolicyDense, Stats: st}); err != nil {
		t.Fatal(err)
	}
	if !st.UsedDense || st.Total() <= 0 {
		t.Error("stats not populated")
	}
	if _, err := rma.Qqr(r, []string{"K"}, &rma.Options{SortMode: rma.SortOptimized}); err != nil {
		t.Fatal(err)
	}
}
