// Command benchdiff is the roadmap's bench-trajectory check: it diffs
// consecutive BENCH_<n>.json kernel reports (written by rmabench -json) and
// exits non-zero when any kernel regressed beyond the tolerance or went
// missing from a newer report. CI runs it over the repository root so every
// PR's committed report must stay within the perf envelope of its
// predecessor.
//
//	benchdiff                 compare all BENCH_<n>.json in .
//	benchdiff -dir path       compare all BENCH_<n>.json in path
//	benchdiff -tol 0.35       loosen the tolerance to +35%
//	benchdiff OLD.json NEW.json   compare two explicit reports
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	dir := flag.String("dir", ".", "directory holding BENCH_<n>.json reports")
	tol := flag.Float64("tol", bench.DefaultTolerance, "maximum accepted relative slowdown (0.20 = +20%)")
	flag.Parse()

	if args := flag.Args(); len(args) == 2 {
		old, err := bench.LoadKernelReport(args[0])
		if err != nil {
			fail(err)
		}
		new, err := bench.LoadKernelReport(args[1])
		if err != nil {
			fail(err)
		}
		deltas, missing := bench.CompareReports(old, new, *tol)
		bad := false
		for _, d := range deltas {
			mark := "ok"
			if d.Regressed {
				mark = "REGRESSION"
				bad = true
			}
			fmt.Printf("  %-22s %12.0f -> %12.0f ns/op  %6.2fx  %s\n", d.Op, d.OldNs, d.NewNs, d.Ratio, mark)
		}
		for _, op := range missing {
			fmt.Printf("  %-22s MISSING from %s\n", op, args[1])
			bad = true
		}
		if bad {
			fail(fmt.Errorf("regression beyond +%.0f%% (or missing kernel)", *tol*100))
		}
		return
	}

	report, err := bench.CheckTrajectory(*dir, *tol)
	fmt.Print(report)
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(1)
}
