// Command rmacli is an interactive SQL shell for the RMA engine. It
// accepts the SQL dialect of internal/sql, including the paper's matrix
// operations as table functions in FROM:
//
//	$ go run ./cmd/rmacli
//	rma> CREATE TABLE r (T VARCHAR(3), H DOUBLE, W DOUBLE);
//	rma> INSERT INTO r VALUES ('5am',1,3), ('8am',8,5);
//	rma> SELECT * FROM TRA(r BY T);
//
// Statements may span lines and end with ';'. With -demo the shell starts
// with the paper's example database (users, film, rating) loaded.
// Meta commands: \d lists tables, \policy bat|mkl|auto switches the
// execution policy, \workers n bounds the per-statement worker budget
// (0 restores the default), \mem n caps the per-tenant live arena
// memory at n MiB (0 removes the cap), \tenant name switches the
// accounting principal, \stream on|off toggles the morsel-driven
// streaming SELECT pipeline, \stats prints the per-tenant memory
// metrics plus the last streamed statement's per-stage counters,
// \q quits.
//
// The per-tenant metrics are also published through expvar under
// "rma.memory" for scraping when the process exposes /debug/vars.
package main

import (
	"bufio"
	"expvar"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/rma"
)

// shellOpts is the shell's current execution configuration. Every
// statement the shell runs gets its own execution context built from
// these options, so a \workers change applies from the next statement on
// and never races statements already in flight.
var shellOpts core.Options

// applyOpts pushes the current options to the database (nil when
// everything is at its default, restoring auto behavior).
func applyOpts(db *rma.DB) {
	if shellOpts == (core.Options{}) {
		db.SetRMAOptions(nil)
		return
	}
	o := shellOpts
	db.SetRMAOptions(&o)
}

const demoScript = `
CREATE TABLE users (Usr VARCHAR(20), State VARCHAR(2), YoB INT);
INSERT INTO users VALUES ('Ann','CA',1980), ('Tom','FL',1965), ('Jan','CA',1970);
CREATE TABLE film (Title VARCHAR(20), RelY INT, Director VARCHAR(20));
INSERT INTO film VALUES ('Heat',1995,'Lee'), ('Balto',1995,'Lee'), ('Net',1995,'Smith');
CREATE TABLE rating (Usr VARCHAR(20), Balto DOUBLE, Heat DOUBLE, Net DOUBLE);
INSERT INTO rating VALUES ('Ann',2.0,1.5,0.5), ('Tom',0.0,0.0,1.5), ('Jan',1.0,4.0,1.0);
`

func main() {
	demo := flag.Bool("demo", false, "preload the paper's example database")
	maxRows := flag.Int("rows", 50, "maximum rows to print per result")
	flag.Parse()

	db := rma.NewDB()
	expvar.Publish("rma.memory", expvar.Func(func() any { return db.Metrics() }))
	if *demo {
		db.MustExec(demoScript)
		fmt.Println("demo database loaded: users, film, rating")
	}

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("rma> ")
		} else {
			fmt.Print("...> ")
		}
	}
	prompt()
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			if meta(db, trimmed) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			run(db, buf.String(), *maxRows)
			buf.Reset()
		}
		prompt()
	}
	if buf.Len() > 0 {
		run(db, buf.String(), *maxRows)
	}
}

// meta handles backslash commands; it reports whether the shell should
// exit.
func meta(db *rma.DB, cmd string) bool {
	switch {
	case cmd == `\q`:
		return true
	case cmd == `\d`:
		for _, t := range db.Tables() {
			fmt.Println(t)
		}
	case strings.HasPrefix(cmd, `\policy`):
		arg := strings.TrimSpace(strings.TrimPrefix(cmd, `\policy`))
		switch arg {
		case "bat":
			shellOpts.Policy = core.PolicyBAT
		case "mkl", "dense":
			shellOpts.Policy = core.PolicyDense
		case "auto", "":
			shellOpts.Policy = core.PolicyAuto
		default:
			fmt.Println("usage: \\policy bat|mkl|auto")
			return false
		}
		applyOpts(db)
		fmt.Println("policy set")
	case strings.HasPrefix(cmd, `\workers`):
		arg := strings.TrimSpace(strings.TrimPrefix(cmd, `\workers`))
		n, err := strconv.Atoi(arg)
		if err != nil || n < 0 {
			fmt.Println("usage: \\workers n  (0 restores the default budget)")
			return false
		}
		shellOpts.Parallelism = n
		applyOpts(db)
		if n == 0 {
			fmt.Println("worker budget restored to the process default")
		} else {
			fmt.Printf("worker budget set to %d (per statement)\n", n)
		}
	case strings.HasPrefix(cmd, `\mem`):
		arg := strings.TrimSpace(strings.TrimPrefix(cmd, `\mem`))
		n, err := strconv.Atoi(arg)
		if err != nil || n < 0 {
			fmt.Println("usage: \\mem n  (cap live arena memory at n MiB per tenant; 0 removes the cap)")
			return false
		}
		shellOpts.MemoryBudget = int64(n) << 20
		// Push the cap onto the tenant directly: Governor.Tenant treats a
		// zero budget as "leave the existing cap alone", so removing a
		// previously-set cap needs the explicit SetBudget(0).
		exec.DefaultGovernor().Tenant(tenantName(), 0).SetBudget(shellOpts.MemoryBudget)
		applyOpts(db)
		if n == 0 {
			fmt.Printf("memory budget removed (tenant %q)\n", tenantName())
		} else {
			fmt.Printf("memory budget set to %d MiB (tenant %q; statements over budget retry serially, then fail typed)\n",
				n, tenantName())
		}
	case strings.HasPrefix(cmd, `\tenant`):
		arg := strings.TrimSpace(strings.TrimPrefix(cmd, `\tenant`))
		if arg == "" {
			fmt.Printf("tenant is %q\n", tenantName())
			return false
		}
		shellOpts.Tenant = arg
		applyOpts(db)
		fmt.Printf("tenant set to %q\n", arg)
	case strings.HasPrefix(cmd, `\stream`):
		arg := strings.TrimSpace(strings.TrimPrefix(cmd, `\stream`))
		switch arg {
		case "on", "":
			db.SetStreaming(true)
			fmt.Println("streaming pipeline on (morsel-driven SELECT execution)")
		case "off":
			db.SetStreaming(false)
			fmt.Println("streaming pipeline off (materializing SELECT execution)")
		default:
			fmt.Println("usage: \\stream on|off")
		}
	case cmd == `\stats`:
		printStats(db)
	default:
		fmt.Println(`commands: \d (tables), \policy bat|mkl|auto, \workers n, \mem n, \tenant name, \stream on|off, \stats, \q (quit)`)
	}
	return false
}

// tenantName mirrors the governed-invocation default: an explicit
// tenant, or exec.DefaultTenant once a budget is set.
func tenantName() string {
	if shellOpts.Tenant != "" {
		return shellOpts.Tenant
	}
	return exec.DefaultTenant
}

// printStats renders the governor metrics: admission state plus one row
// per tenant with live/peak bytes and the pool hit rate.
func printStats(db *rma.DB) {
	m := db.Metrics()
	fmt.Printf("admission: running=%d queued=%d reserved=%s cap=%s admitted=%d\n",
		m.Running, m.Queued, mib(m.ReservedBytes), mib(m.GlobalCapBytes), m.Admitted)
	if len(m.Tenants) == 0 {
		fmt.Println("tenants: none (set \\mem or \\tenant to start accounting)")
		return
	}
	fmt.Println("tenants:")
	for _, tn := range m.Tenants {
		tot := tn.Total()
		fmt.Printf("  %-12s budget=%-8s live=%-8s peak=%-8s pool-hit=%4.0f%%  allocs=%d frees=%d\n",
			tn.Tenant, mib(tn.BudgetBytes), mib(tn.LiveBytes), mib(tn.PeakBytes),
			100*tn.HitRate(), tot.Allocs, tot.Frees)
	}
	if pipe := db.PipelineStats(); len(pipe) > 0 {
		fmt.Println("last streamed statement:")
		for _, st := range pipe {
			fmt.Printf("  %-12s batches=%-6d rows=%-10d peak=%s\n",
				st.Name, st.Batches, st.Rows, mib(st.PeakBytes))
		}
	}
}

// mib renders a byte count human-readably.
func mib(b int64) string {
	switch {
	case b == 0:
		return "0"
	case b < 1<<20:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	}
}

func run(db *rma.DB, src string, maxRows int) {
	res, err := db.Exec(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return
	}
	if res == nil {
		fmt.Println("ok")
		return
	}
	fmt.Print(res.Head(maxRows))
	fmt.Printf("(%d rows)\n", res.NumRows())
}
