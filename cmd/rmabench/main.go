// Command rmabench regenerates every table and figure of the paper's
// evaluation (Section 8). Each experiment prints the same rows/series the
// paper reports, at scaled-down sizes documented in EXPERIMENTS.md.
//
//	rmabench -list             enumerate experiments
//	rmabench -run tab5         run one experiment
//	rmabench -run fig15a,tab7  run several
//	rmabench -all              run everything
//	rmabench -quick            reduced sizes (smoke test)
//	rmabench -json BENCH_1.json  measure the kernel micro-suite and write
//	                             a machine-readable results file (op,
//	                             size, ns/op, allocs/op); combine with
//	                             -quick for a fast smoke measurement
//	rmabench -load 4x8         load-generator mode: 4 tenants x 8
//	                           concurrent connections repeating the
//	                           serving statement mix against one shared
//	                           DB, reporting per-tenant p50/p99 latency
//	                           and the plan-cache hit rate, cached and
//	                           cache-off (-stmts sets the per-connection
//	                           statement count)
package main

import (
	"expvar"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/exec"
)

func main() {
	// Per-tenant memory metrics (live/peak bytes, pool hit rates) of the
	// default governor, published for scraping when the process exposes
	// /debug/vars — the same surface rmacli's \stats prints.
	expvar.Publish("rma.memory", expvar.Func(func() any { return exec.Metrics() }))
	list := flag.Bool("list", false, "list experiments")
	run := flag.String("run", "", "comma-separated experiment ids")
	all := flag.Bool("all", false, "run all experiments")
	quick := flag.Bool("quick", false, "reduced sizes for a fast smoke run")
	jsonOut := flag.String("json", "", "measure the kernel micro-suite and write a BENCH_<n>.json results file to this path")
	load := flag.String("load", "", "load-generator mode: NxM runs N tenants x M concurrent connections against one shared DB (e.g. -load 4x8)")
	stmts := flag.Int("stmts", 24, "statements per connection in -load mode")
	flag.Parse()

	if *load != "" {
		var n, m int
		if _, err := fmt.Sscanf(*load, "%dx%d", &n, &m); err != nil || n < 1 || m < 1 {
			fmt.Fprintf(os.Stderr, "bad -load %q, want NxM (e.g. 4x8)\n", *load)
			os.Exit(2)
		}
		o := bench.LoadOptions{Tenants: n, Conns: m, Stmts: *stmts, Rows: 1 << 15}
		if *quick {
			o.Rows = 1 << 12
		}
		for _, cache := range []bool{true, false} {
			o.Cache = cache
			t0 := time.Now()
			r, err := bench.RunLoad(o)
			if err != nil {
				fmt.Fprintf(os.Stderr, "load failed: %v\n", err)
				os.Exit(1)
			}
			bench.PrintLoadReport(os.Stdout, o, r)
			fmt.Printf("    (%s elapsed)\n\n", time.Since(t0).Round(time.Millisecond))
		}
		return
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n         scaled: %s\n", e.ID, e.Title, e.Scaled)
		}
		return
	}

	if *jsonOut != "" {
		fmt.Printf("=== kernel micro-suite -> %s\n", *jsonOut)
		t0 := time.Now()
		if err := bench.WriteKernelReport(*jsonOut, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "kernel suite failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("    (%s elapsed)\n\n", time.Since(t0).Round(time.Millisecond))
	}

	var ids []string
	switch {
	case *all:
		for _, e := range bench.Experiments() {
			ids = append(ids, e.ID)
		}
	case *run != "":
		ids = strings.Split(*run, ",")
	default:
		if *jsonOut != "" {
			return
		}
		flag.Usage()
		os.Exit(2)
	}

	for _, id := range ids {
		e, ok := bench.Lookup(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(1)
		}
		fmt.Printf("=== %s — %s\n", e.ID, e.Title)
		fmt.Printf("    scaled: %s\n", e.Scaled)
		t0 := time.Now()
		if err := e.Run(os.Stdout, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("    (%s elapsed)\n\n", time.Since(t0).Round(time.Millisecond))
	}
}
