// Command rmabench regenerates every table and figure of the paper's
// evaluation (Section 8). Each experiment prints the same rows/series the
// paper reports, at scaled-down sizes documented in EXPERIMENTS.md.
//
//	rmabench -list             enumerate experiments
//	rmabench -run tab5         run one experiment
//	rmabench -run fig15a,tab7  run several
//	rmabench -all              run everything
//	rmabench -quick            reduced sizes (smoke test)
//	rmabench -json BENCH_1.json  measure the kernel micro-suite and write
//	                             a machine-readable results file (op,
//	                             size, ns/op, allocs/op); combine with
//	                             -quick for a fast smoke measurement
package main

import (
	"expvar"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/exec"
)

func main() {
	// Per-tenant memory metrics (live/peak bytes, pool hit rates) of the
	// default governor, published for scraping when the process exposes
	// /debug/vars — the same surface rmacli's \stats prints.
	expvar.Publish("rma.memory", expvar.Func(func() any { return exec.Metrics() }))
	list := flag.Bool("list", false, "list experiments")
	run := flag.String("run", "", "comma-separated experiment ids")
	all := flag.Bool("all", false, "run all experiments")
	quick := flag.Bool("quick", false, "reduced sizes for a fast smoke run")
	jsonOut := flag.String("json", "", "measure the kernel micro-suite and write a BENCH_<n>.json results file to this path")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n         scaled: %s\n", e.ID, e.Title, e.Scaled)
		}
		return
	}

	if *jsonOut != "" {
		fmt.Printf("=== kernel micro-suite -> %s\n", *jsonOut)
		t0 := time.Now()
		if err := bench.WriteKernelReport(*jsonOut, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "kernel suite failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("    (%s elapsed)\n\n", time.Since(t0).Round(time.Millisecond))
	}

	var ids []string
	switch {
	case *all:
		for _, e := range bench.Experiments() {
			ids = append(ids, e.ID)
		}
	case *run != "":
		ids = strings.Split(*run, ",")
	default:
		if *jsonOut != "" {
			return
		}
		flag.Usage()
		os.Exit(2)
	}

	for _, id := range ids {
		e, ok := bench.Lookup(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(1)
		}
		fmt.Printf("=== %s — %s\n", e.ID, e.Title)
		fmt.Printf("    scaled: %s\n", e.Scaled)
		t0 := time.Now()
		if err := e.Run(os.Stdout, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("    (%s elapsed)\n\n", time.Since(t0).Round(time.Millisecond))
	}
}
