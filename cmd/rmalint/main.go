// Command rmalint is the engine's invariant checker: a multichecker
// over the four analyzers in internal/analysis (arenapair, ctxfirst,
// budgetboundary, detorder).
//
// It runs two ways:
//
//	go vet -vettool=$(which rmalint) ./...   # CI mode, via cmd/go's vet protocol
//	rmalint -json ./...                      # standalone, machine-readable
//
// The JSON report lists live findings and //lint:ignore suppressions
// (with their reasons) per package, so tooling can track both over
// time. Exit status: 0 clean, 2 findings, 1 operational error.
package main

import (
	"os"

	"repro/internal/analysis"
)

func main() {
	os.Exit(analysis.Main(os.Args[1:]))
}
