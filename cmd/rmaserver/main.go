// Command rmaserver is a concurrent HTTP/JSON front end over the RMA
// SQL engine. Clients authenticate with an API key that maps to a
// governed tenant; every statement is admitted through the governor
// (FIFO under the global byte cap and concurrency limit), charges the
// tenant's per-statement arena, and streams its result back in
// column batches.
//
//	$ go run ./cmd/rmaserver -addr :8080 -keys 'alpha=t1:64,beta=t2:64' -demo
//	$ curl -s -X POST -H 'X-API-Key: alpha' \
//	    -d '{"sql":"SELECT * FROM rating;"}' localhost:8080/query
//
// Endpoints:
//
//	POST /query    {"sql": "...", "workers": n}  — execute one script
//	GET  /metrics  governor + plan-cache + per-tenant latency p50/p99
//	GET  /healthz  200 while serving, 503 once draining
//	GET  /debug/vars  expvar, including "rma.memory"
//
// Errors are typed JSON: a tenant over its memory budget gets HTTP 429
// with code "memory_budget" and the byte arithmetic; statement errors
// are 400 "statement_error". On SIGINT/SIGTERM the server drains:
// it stops accepting statements (503 "draining"), lets in-flight ones
// finish (closing their arenas on the normal path), then exits.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/exec"
	"repro/internal/sql"
)

const demoScript = `
CREATE TABLE users (Usr VARCHAR(20), State VARCHAR(2), YoB INT);
INSERT INTO users VALUES ('Ann','CA',1980), ('Tom','FL',1965), ('Jan','CA',1970);
CREATE TABLE film (Title VARCHAR(20), RelY INT, Director VARCHAR(20));
INSERT INTO film VALUES ('Heat',1995,'Lee'), ('Balto',1995,'Lee'), ('Net',1995,'Smith');
CREATE TABLE rating (Usr VARCHAR(20), Balto DOUBLE, Heat DOUBLE, Net DOUBLE);
INSERT INTO rating VALUES ('Ann',2.0,1.5,0.5), ('Tom',0.0,0.0,1.5), ('Jan',1.0,4.0,1.0);
`

// parseKeys parses -keys: comma-separated key=tenant:budgetMiB entries
// (budget 0 = accounted but uncapped).
func parseKeys(spec string) (map[string]TenantKey, error) {
	keys := make(map[string]TenantKey)
	if spec == "" {
		return keys, nil
	}
	for _, ent := range strings.Split(spec, ",") {
		kv := strings.SplitN(ent, "=", 2)
		if len(kv) != 2 || kv[0] == "" {
			return nil, fmt.Errorf("bad -keys entry %q, want key=tenant:budgetMiB", ent)
		}
		tb := strings.SplitN(kv[1], ":", 2)
		tk := TenantKey{Tenant: tb[0]}
		if tk.Tenant == "" {
			return nil, fmt.Errorf("bad -keys entry %q: empty tenant", ent)
		}
		if len(tb) == 2 {
			mib, err := strconv.Atoi(tb[1])
			if err != nil || mib < 0 {
				return nil, fmt.Errorf("bad -keys entry %q: budget must be a MiB count", ent)
			}
			tk.Budget = int64(mib) << 20
		}
		keys[kv[0]] = tk
	}
	return keys, nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	keySpec := flag.String("keys", "dev=default:0", "API keys: key=tenant:budgetMiB[,key=tenant:budgetMiB...]")
	globalCap := flag.Int("cap", 0, "global admission cap on the sum of declared budgets, MiB (0 = unlimited)")
	maxQueries := flag.Int("maxqueries", 0, "max concurrently running statements (0 = unlimited)")
	demo := flag.Bool("demo", false, "preload the paper's example database")
	drainTimeout := flag.Duration("drain", 30*time.Second, "graceful-drain timeout on SIGINT/SIGTERM")
	dataDir := flag.String("data", "", "data directory for CREATE TABLE ... PERSIST (empty = persistence off); checkpointed tables are restored on startup")
	spillDir := flag.String("spill", "", "scratch directory for out-of-core execution (empty = spilling off)")
	spillMiB := flag.Int("spillmib", 0, "operator in-memory footprint in MiB above which it spills (0 = half the statement tenant's budget)")
	flag.Parse()

	keys, err := parseKeys(*keySpec)
	if err != nil {
		log.Fatal(err)
	}
	if len(keys) == 0 {
		log.Fatal("no API keys configured; pass -keys")
	}

	db := sql.NewDB()
	db.SetGovernor(exec.NewGovernor(int64(*globalCap)<<20, *maxQueries))
	if *spillDir != "" {
		db.SetSpill(*spillDir, int64(*spillMiB)<<20)
		log.Printf("out-of-core execution enabled: staging under %s", *spillDir)
	}
	if *dataDir != "" {
		if err := db.SetDataDir(*dataDir); err != nil {
			log.Fatal(err)
		}
		loaded, err := db.LoadPersisted()
		if err != nil {
			log.Fatal(err)
		}
		if len(loaded) > 0 {
			log.Printf("restored %d persisted table(s) from %s: %s", len(loaded), *dataDir, strings.Join(loaded, ", "))
		}
	}
	if *demo {
		if _, err := db.Exec(demoScript); err != nil {
			log.Fatal(err)
		}
		log.Print("demo database loaded: users, film, rating")
	}
	expvar.Publish("rma.memory", expvar.Func(func() any { return db.Metrics() }))

	srv := NewServer(db, keys)
	mux := http.NewServeMux()
	mux.Handle("/", srv)
	mux.Handle("/debug/vars", expvar.Handler())
	httpSrv := &http.Server{Addr: *addr, Handler: mux}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-stop
		log.Print("draining: refusing new statements, finishing in-flight")
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			log.Printf("drain: %v (shutting down anyway)", err)
		}
		httpSrv.Shutdown(ctx)
	}()

	log.Printf("rmaserver listening on %s (%d keys, cap=%dMiB, maxqueries=%d)",
		*addr, len(keys), *globalCap, *maxQueries)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-done
	log.Print("rmaserver stopped")
}
