package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bat"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/rel"
	"repro/internal/sql"
)

// TenantKey maps one API key to its accounting principal: the tenant
// name every statement authenticated by the key charges, and the
// per-statement memory budget in bytes (0 = accounted but uncapped).
type TenantKey struct {
	Tenant string
	Budget int64
}

// Server is the concurrent wire-protocol front end over a sql.DB. Each
// request authenticates by API key, executes under its tenant's budget
// through the governor configured on the DB (admission, per-tenant
// arenas, typed budget errors), and streams its result set back in
// column batches. The zero draining state serves; BeginDrain flips the
// server to rejecting new statements while in-flight ones finish.
type Server struct {
	db   *sql.DB
	keys map[string]TenantKey
	mux  *http.ServeMux

	draining atomic.Bool
	inflight sync.WaitGroup

	mu  sync.Mutex
	lat map[string]*latHist
}

// NewServer builds the HTTP front end. The DB arrives fully configured
// (catalog, governor, streaming mode); keys maps API keys to tenants.
func NewServer(db *sql.DB, keys map[string]TenantKey) *Server {
	s := &Server{db: db, keys: keys, lat: make(map[string]*latHist)}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// BeginDrain stops admitting new statements: every subsequent /query
// answers 503 "draining" while statements already in flight run to
// completion (their per-statement arenas close on the normal path).
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Drain begins draining (idempotently) and blocks until every in-flight
// statement has finished or ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// queryRequest is the /query body.
type queryRequest struct {
	SQL string `json:"sql"`
	// Workers optionally bounds the statement's worker budget
	// (0 = the process default).
	Workers int `json:"workers"`
}

// apiError is the typed error envelope every failure returns.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Budget arithmetic, present only when Code is "memory_budget".
	Tenant    string `json:"tenant,omitempty"`
	Requested int64  `json:"requested,omitempty"`
	Live      int64  `json:"live,omitempty"`
	Budget    int64  `json:"budget,omitempty"`
}

func writeError(w http.ResponseWriter, status int, e apiError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]apiError{"error": e})
}

// errorFor classifies an execution error into its HTTP status and typed
// envelope: budget overruns are 429 with the byte arithmetic attached,
// everything else is a 400 statement error.
func errorFor(err error) (int, apiError) {
	var be *exec.MemoryBudgetError
	if errors.As(err, &be) {
		return http.StatusTooManyRequests, apiError{
			Code:      "memory_budget",
			Message:   be.Error(),
			Tenant:    be.Tenant,
			Requested: be.Requested,
			Live:      be.Live,
			Budget:    be.Budget,
		}
	}
	if errors.Is(err, exec.ErrMemoryBudget) {
		return http.StatusTooManyRequests, apiError{Code: "memory_budget", Message: err.Error()}
	}
	return http.StatusBadRequest, apiError{Code: "statement_error", Message: err.Error()}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, apiError{Code: "method_not_allowed", Message: "POST a JSON body to /query"})
		return
	}
	key, ok := s.keys[r.Header.Get("X-API-Key")]
	if !ok {
		writeError(w, http.StatusUnauthorized, apiError{Code: "unauthorized", Message: "unknown API key"})
		return
	}
	// Count the request in-flight before checking the drain flag: a
	// drain that begins after this point waits for us; one that began
	// before is answered with a fast 503.
	s.inflight.Add(1)
	defer s.inflight.Done()
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, apiError{Code: "draining", Message: "server is draining; retry against another instance"})
		return
	}

	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, apiError{Code: "bad_request", Message: "body must be JSON {\"sql\": \"...\"}: " + err.Error()})
		return
	}
	if req.SQL == "" {
		writeError(w, http.StatusBadRequest, apiError{Code: "bad_request", Message: "empty sql"})
		return
	}

	opts := &core.Options{
		Tenant:       key.Tenant,
		MemoryBudget: key.Budget,
		Parallelism:  req.Workers,
	}
	start := time.Now()
	res, err := s.db.ExecWith(req.SQL, opts)
	s.histFor(key.Tenant).observe(time.Since(start))
	if err != nil {
		status, e := errorFor(err)
		writeError(w, status, e)
		return
	}
	writeResult(w, res, time.Since(start))
}

// writeResult streams the relation as JSON in column batches: a header
// with the schema, then one batch object per morsel-sized row slice,
// flushed as written so large results reach the client incrementally.
func writeResult(w http.ResponseWriter, res *rel.Relation, elapsed time.Duration) {
	w.Header().Set("Content-Type", "application/json")
	if res == nil { // DDL/DML statements produce no relation
		fmt.Fprintf(w, "{\"ok\":true,\"elapsed_us\":%d}\n", elapsed.Microseconds())
		return
	}
	fl, _ := w.(http.Flusher)
	fmt.Fprint(w, "{\"columns\":[")
	for k, a := range res.Schema {
		if k > 0 {
			fmt.Fprint(w, ",")
		}
		fmt.Fprintf(w, "{\"name\":%q,\"type\":%q}", a.Name, a.Type.String())
	}
	fmt.Fprint(w, "],\"batches\":[")
	n := res.NumRows()
	enc := json.NewEncoder(w)
	for lo := 0; lo < n; lo += bat.MorselSize {
		hi := lo + bat.MorselSize
		if hi > n {
			hi = n
		}
		if lo > 0 {
			fmt.Fprint(w, ",")
		}
		if err := encodeBatch(enc, w, res, lo, hi); err != nil {
			// The header is already on the wire; all we can do is cut the
			// stream so the client sees invalid JSON instead of silent
			// truncation.
			return
		}
		if fl != nil {
			fl.Flush()
		}
	}
	fmt.Fprintf(w, "],\"rows\":%d,\"elapsed_us\":%d}\n", n, elapsed.Microseconds())
	if fl != nil {
		fl.Flush()
	}
}

// encodeBatch writes one column batch {"rows":n,"cols":[[...],...]}.
// Float cells that JSON cannot represent (NaN, ±Inf) are encoded as
// null rather than aborting the stream.
func encodeBatch(enc *json.Encoder, w http.ResponseWriter, res *rel.Relation, lo, hi int) error {
	fmt.Fprintf(w, "{\"rows\":%d,\"cols\":[", hi-lo)
	for k, col := range res.Cols {
		if k > 0 {
			fmt.Fprint(w, ",")
		}
		vec := col.Vector()
		switch vec.Type() {
		case bat.Float:
			seg := vec.Floats()[lo:hi]
			fmt.Fprint(w, "[")
			for i, f := range seg {
				if i > 0 {
					fmt.Fprint(w, ",")
				}
				if math.IsNaN(f) || math.IsInf(f, 0) {
					fmt.Fprint(w, "null")
				} else {
					b, _ := json.Marshal(f)
					w.Write(b)
				}
			}
			fmt.Fprint(w, "]")
		case bat.Int:
			if err := enc.Encode(vec.Ints()[lo:hi]); err != nil {
				return err
			}
		case bat.String:
			if err := enc.Encode(vec.Strings()[lo:hi]); err != nil {
				return err
			}
		}
	}
	fmt.Fprint(w, "]}")
	return nil
}

// metricsResponse is the /metrics body: the same surface the CLIs
// publish through expvar as "rma.memory" (governor admission state,
// per-tenant byte accounting, plan-cache counters) plus the server's
// per-tenant statement latency quantiles.
type metricsResponse struct {
	Memory  sql.Metrics             `json:"memory"`
	Latency map[string]latencyStats `json:"latency"`
}

type latencyStats struct {
	Count int64   `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	resp := metricsResponse{Memory: s.db.Metrics(), Latency: make(map[string]latencyStats)}
	s.mu.Lock()
	tenants := make(map[string]*latHist, len(s.lat))
	for name, h := range s.lat {
		tenants[name] = h
	}
	s.mu.Unlock()
	for name, h := range tenants {
		resp.Latency[name] = latencyStats{Count: h.total(), P50Ms: h.quantile(0.50), P99Ms: h.quantile(0.99)}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, apiError{Code: "draining", Message: "draining"})
		return
	}
	w.Write([]byte("ok\n"))
}

func (s *Server) histFor(tenant string) *latHist {
	if tenant == "" {
		tenant = exec.DefaultTenant
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.lat[tenant]
	if !ok {
		h = &latHist{}
		s.lat[tenant] = h
	}
	return h
}

// latHist is a lock-free log-scale latency histogram: bucket k counts
// statements whose latency in microseconds has bit length k, so bucket
// upper bounds run 1µs, 2µs, 4µs, ... 2^40µs (≈12.7 days). Quantiles
// report the upper bound of the bucket holding the requested rank — at
// most 2× the true value, plenty for a p50/p99 load dashboard. The
// last bucket is open-ended (it also absorbs anything ≥ 2^40µs), so
// ranks landing there report the largest latency actually observed
// instead of the bucket bound, which would under-report.
type latHist struct {
	buckets [41]atomic.Int64
	maxUs   atomic.Int64 // largest observation, for the open last bucket
}

func (h *latHist) observe(d time.Duration) {
	us := d.Microseconds()
	if us < 1 {
		us = 1
	}
	for {
		old := h.maxUs.Load()
		if us <= old || h.maxUs.CompareAndSwap(old, us) {
			break
		}
	}
	b := bits.Len64(uint64(us))
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	h.buckets[b].Add(1)
}

func (h *latHist) total() int64 {
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// quantile returns the q-quantile in milliseconds (0 when empty).
func (h *latHist) quantile(q float64) float64 {
	n := h.total()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			if i == len(h.buckets)-1 {
				// The open-ended last bucket has no meaningful upper
				// bound; report the observed maximum.
				return float64(h.maxUs.Load()) / 1e3
			}
			// Upper bound of bucket i is 2^i - 1 microseconds.
			return float64(uint64(1)<<uint(i)-1) / 1e3
		}
	}
	return float64(h.maxUs.Load()) / 1e3
}
