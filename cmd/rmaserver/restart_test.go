package main

import (
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/sql"
)

func TestLatHistZeroSamples(t *testing.T) {
	h := &latHist{}
	if n := h.total(); n != 0 {
		t.Fatalf("total %d, want 0", n)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.quantile(q); got != 0 {
			t.Fatalf("quantile(%v) = %v on an empty histogram, want 0", q, got)
		}
	}
}

// TestLatHistSaturatedBucketReportsMax pins the open-ended last bucket:
// an observation past the 2^40µs bucket range must not be reported as
// the (smaller) last bucket bound. Before the fix this returned
// (2^40-1)/1e3 ms — under-reporting a 2^41µs statement by half.
func TestLatHistSaturatedBucketReportsMax(t *testing.T) {
	h := &latHist{}
	huge := time.Microsecond * (1 << 41)
	h.observe(huge)
	want := float64(int64(1)<<41) / 1e3
	if got := h.quantile(0.99); got != want {
		t.Fatalf("p99 = %vms, want the observed max %vms", got, want)
	}

	// A mixed population keeps lower quantiles on bucket bounds while
	// the tail rank still reports the true maximum.
	for i := 0; i < 98; i++ {
		h.observe(100 * time.Microsecond) // bucket 7, bound 127µs
	}
	if got := h.quantile(0.50); got != 0.127 {
		t.Fatalf("p50 = %vms, want 0.127", got)
	}
	if got := h.quantile(1); got != want {
		t.Fatalf("p100 = %vms, want the observed max %vms", got, want)
	}
}

// TestServerRestartRoundTrip checkpoints a persisted table through one
// server instance, tears it down, boots a second instance over the same
// data directory, and requires the identical wire response — the
// checkpoint/restore path end to end.
func TestServerRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	keys := map[string]TenantKey{"k": {Tenant: "t1"}}
	const probe = "SELECT id, score, who FROM kv ORDER BY id"

	db1 := sql.NewDB()
	if err := db1.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(NewServer(db1, keys))
	for _, stmt := range []string{
		"CREATE TABLE kv (id BIGINT, score DOUBLE, who VARCHAR) PERSIST",
		"INSERT INTO kv VALUES (1, 0.125, 'ann'), (2, -0.0, 'bob'), (3, 2.5, 'cat')",
		"INSERT INTO kv VALUES (4, 1e-300, 'dee')",
	} {
		if code, qr := postQuery(t, ts1, "k", stmt); code != 200 || qr.Error != nil {
			t.Fatalf("%s: status %d (%+v)", stmt, code, qr.Error)
		}
	}
	code, before := postQuery(t, ts1, "k", probe)
	if code != 200 || before.Rows != 4 {
		t.Fatalf("pre-restart probe: status %d rows %d (%+v)", code, before.Rows, before.Error)
	}
	ts1.Close()
	if err := db1.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := sql.NewDB()
	if err := db2.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := db2.LoadPersisted()
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 || loaded[0] != "kv" {
		t.Fatalf("restored %v, want [kv]", loaded)
	}
	ts2 := httptest.NewServer(NewServer(db2, keys))
	defer ts2.Close()
	code, after := postQuery(t, ts2, "k", probe)
	if code != 200 {
		t.Fatalf("post-restart probe: status %d (%+v)", code, after.Error)
	}
	if !reflect.DeepEqual(before.Columns, after.Columns) {
		t.Fatalf("schema drift across restart: %v vs %v", before.Columns, after.Columns)
	}
	if !reflect.DeepEqual(before.Batches, after.Batches) {
		t.Fatalf("restored rows differ:\n  before %s\n  after  %s",
			rawBatches(before), rawBatches(after))
	}

	// The restored table stays writable and persisted.
	if code, qr := postQuery(t, ts2, "k", "INSERT INTO kv VALUES (5, 9.75, 'eve')"); code != 200 || qr.Error != nil {
		t.Fatalf("post-restart insert: status %d (%+v)", code, qr.Error)
	}
	if code, qr := postQuery(t, ts2, "k", "SELECT COUNT(*) AS n FROM kv"); code != 200 || qr.Rows != 1 {
		t.Fatalf("post-restart count: status %d (%+v)", code, qr.Error)
	}
}

func rawBatches(qr queryResponse) string {
	out := ""
	for _, b := range qr.Batches {
		for _, c := range b.Cols {
			out += string(c)
		}
	}
	return out
}
