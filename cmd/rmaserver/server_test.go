package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/bat"
	"repro/internal/exec"
	"repro/internal/rel"
	"repro/internal/sql"
)

// wideRel builds an n-row float relation whose full sort dominates a
// small memory budget (same shape the sql-layer budget tests use).
func wideRel(n int) *rel.Relation {
	f := make([]float64, n)
	for i := range f {
		f[i] = float64((i*7919 + 13) % n)
	}
	return rel.MustNew("t", rel.Schema{{Name: "x", Type: bat.Float}},
		[]*bat.BAT{bat.FromFloats(f)})
}

// groupRel builds an n-row (grp, val) relation with 97 groups.
func groupRel(n int) *rel.Relation {
	grp := make([]int64, n)
	val := make([]float64, n)
	for i := range grp {
		grp[i] = int64((i*7919 + 5) % 97)
		val[i] = float64(i%1000) / 8
	}
	return rel.MustNew("g",
		rel.Schema{{Name: "grp", Type: bat.Int}, {Name: "val", Type: bat.Float}},
		[]*bat.BAT{bat.FromInts(grp), bat.FromFloats(val)})
}

// newTestServer wires a DB with the test catalog, a governor with the
// given admission limits, and the key set into an httptest server.
func newTestServer(t *testing.T, globalCap int64, maxQueries int, keys map[string]TenantKey) (*Server, *sql.DB, *httptest.Server) {
	t.Helper()
	db := sql.NewDB()
	db.SetGovernor(exec.NewGovernor(globalCap, maxQueries))
	db.Register("t", wideRel(1<<16))
	db.Register("g", groupRel(1<<14))
	srv := NewServer(db, keys)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, db, ts
}

// queryResponse mirrors the /query wire format for decoding.
type queryResponse struct {
	OK      bool `json:"ok"`
	Columns []struct {
		Name string `json:"name"`
		Type string `json:"type"`
	} `json:"columns"`
	Batches []struct {
		Rows int               `json:"rows"`
		Cols []json.RawMessage `json:"cols"`
	} `json:"batches"`
	Rows  int       `json:"rows"`
	Error *apiError `json:"error"`
}

func postQuery(t *testing.T, ts *httptest.Server, key, stmt string) (int, queryResponse) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"sql": stmt})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/query", bytes.NewReader(body))
	req.Header.Set("X-API-Key", key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s: %v", stmt, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("%s: read body: %v", stmt, err)
	}
	var qr queryResponse
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatalf("%s: bad JSON %q: %v", stmt, raw, err)
	}
	return resp.StatusCode, qr
}

func getMetrics(t *testing.T, ts *httptest.Server) metricsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m metricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

const heavySort = "SELECT x FROM t ORDER BY x LIMIT 10;"

// TestServerBudgetIsolation runs one generous and one tiny-budget
// tenant against the same statement: the tiny tenant gets the typed
// memory_budget error (HTTP 429 with the byte arithmetic), the
// generous tenant is untouched, and the failed statement strands no
// bytes against its tenant.
func TestServerBudgetIsolation(t *testing.T) {
	keys := map[string]TenantKey{
		"alpha": {Tenant: "t1", Budget: 64 << 20},
		"tiny":  {Tenant: "t2", Budget: 1 << 18},
	}
	_, _, ts := newTestServer(t, 0, 0, keys)

	status, qr := postQuery(t, ts, "alpha", heavySort)
	if status != http.StatusOK || qr.Rows != 10 {
		t.Fatalf("generous tenant: status %d rows %d (err %+v)", status, qr.Rows, qr.Error)
	}

	status, qr = postQuery(t, ts, "tiny", heavySort)
	if status != http.StatusTooManyRequests {
		t.Fatalf("tiny tenant: status %d, want 429 (err %+v)", status, qr.Error)
	}
	if qr.Error == nil || qr.Error.Code != "memory_budget" {
		t.Fatalf("tiny tenant error = %+v, want code memory_budget", qr.Error)
	}
	if qr.Error.Tenant != "t2" || qr.Error.Budget != 1<<18 {
		t.Fatalf("tiny tenant error arithmetic = %+v", qr.Error)
	}

	// A statement that fits the tiny budget still works.
	status, qr = postQuery(t, ts, "tiny", "SELECT x FROM t LIMIT 1;")
	if status != http.StatusOK || qr.Rows != 1 {
		t.Fatalf("tiny tenant small statement: status %d rows %d (err %+v)", status, qr.Rows, qr.Error)
	}

	// The generous tenant is unaffected after the neighbor's failure,
	// and the failed statement released everything it charged.
	status, qr = postQuery(t, ts, "alpha", heavySort)
	if status != http.StatusOK || qr.Rows != 10 {
		t.Fatalf("generous tenant after failure: status %d rows %d", status, qr.Rows)
	}
	m := getMetrics(t, ts)
	for _, tn := range m.Memory.Tenants {
		if tn.LiveBytes != 0 {
			t.Fatalf("tenant %s live = %d after all statements finished", tn.Tenant, tn.LiveBytes)
		}
	}
	if lt, ok := m.Latency["t2"]; !ok || lt.Count != 2 {
		t.Fatalf("latency[t2] = %+v, want 2 observations", m.Latency["t2"])
	}
}

// TestServerAdmissionQueue saturates a single-slot governor with 8
// concurrent statements: all must complete by queueing (never failing),
// the running count observed through /metrics never exceeds the slot
// count, and the admission counter records every statement.
func TestServerAdmissionQueue(t *testing.T) {
	keys := map[string]TenantKey{
		"a": {Tenant: "t1", Budget: 8 << 20},
		"b": {Tenant: "t2", Budget: 8 << 20},
	}
	_, db, ts := newTestServer(t, 8<<20, 1, keys)

	stopPoll := make(chan struct{})
	pollErr := make(chan error, 1)
	go func() {
		defer close(pollErr)
		for {
			select {
			case <-stopPoll:
				return
			default:
			}
			if running := db.Metrics().Running; running > 1 {
				pollErr <- fmt.Errorf("running = %d under maxQueries=1", running)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		key := "a"
		if i%2 == 1 {
			key = "b"
		}
		wg.Add(1)
		go func(key string) {
			defer wg.Done()
			status, qr := postQuery(t, ts, key, heavySort)
			if status != http.StatusOK || qr.Rows != 10 {
				errs <- fmt.Errorf("key %s: status %d rows %d (err %+v)", key, status, qr.Rows, qr.Error)
			}
		}(key)
	}
	wg.Wait()
	close(stopPoll)
	if err := <-pollErr; err != nil {
		t.Fatal(err)
	}
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	m := getMetrics(t, ts)
	if m.Memory.Admitted < 8 {
		t.Fatalf("admitted = %d, want >= 8", m.Memory.Admitted)
	}
	if m.Memory.Running != 0 || m.Memory.Queued != 0 {
		t.Fatalf("after completion: running=%d queued=%d", m.Memory.Running, m.Memory.Queued)
	}
}

// TestServerGracefulDrain holds a statement in flight, begins a drain,
// and checks the three-way contract: new statements answer 503
// "draining", the in-flight statement finishes normally, and Drain
// returns once it has.
func TestServerGracefulDrain(t *testing.T) {
	keys := map[string]TenantKey{"alpha": {Tenant: "t1", Budget: 256 << 20}}
	srv, db, ts := newTestServer(t, 0, 0, keys)
	db.Register("big", wideRel(1<<20).WithName("big"))

	type result struct {
		status int
		qr     queryResponse
	}
	inflight := make(chan result, 1)
	go func() {
		status, qr := postQuery(t, ts, "alpha", "SELECT x FROM big ORDER BY x LIMIT 5;")
		inflight <- result{status, qr}
	}()

	// Wait until the slow statement is admitted (or, if it already
	// finished, proceed — the 503 check below stands either way).
	deadline := time.Now().Add(5 * time.Second)
	var early *result
	for db.Metrics().Running == 0 {
		select {
		case r := <-inflight:
			early = &r
		default:
		}
		if early != nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}

	srv.BeginDrain()
	status, qr := postQuery(t, ts, "alpha", "SELECT x FROM t LIMIT 1;")
	if status != http.StatusServiceUnavailable || qr.Error == nil || qr.Error.Code != "draining" {
		t.Fatalf("statement during drain: status %d error %+v, want 503 draining", status, qr.Error)
	}

	var r result
	if early != nil {
		r = *early
	} else {
		r = <-inflight
	}
	if r.status != http.StatusOK || r.qr.Rows != 5 {
		t.Fatalf("in-flight statement: status %d rows %d (err %+v)", r.status, r.qr.Rows, r.qr.Error)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("Drain after in-flight finished: %v", err)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", resp.StatusCode)
	}
}

// TestServerConcurrentTenants is the acceptance load: 4 tenants x 8
// concurrent connections each, every connection repeating a small
// statement mix. Every statement must succeed with the right result
// size, the plan cache must serve >90% of the load, and the latency
// histograms must account for every statement.
func TestServerConcurrentTenants(t *testing.T) {
	keys := map[string]TenantKey{
		"k1": {Tenant: "t1", Budget: 64 << 20},
		"k2": {Tenant: "t2", Budget: 64 << 20},
		"k3": {Tenant: "t3", Budget: 64 << 20},
		"k4": {Tenant: "t4", Budget: 64 << 20},
	}
	_, _, ts := newTestServer(t, 0, 0, keys)

	mix := []struct {
		stmt string
		rows int
	}{
		{heavySort, 10},
		{"SELECT grp AS k, SUM(val) AS s FROM g GROUP BY grp ORDER BY k;", 97},
		{"SELECT x FROM t WHERE x < 100 LIMIT 20;", 20},
	}

	const conns, iters = 8, 4
	var wg sync.WaitGroup
	errs := make(chan error, len(keys)*conns)
	for key := range keys {
		for c := 0; c < conns; c++ {
			wg.Add(1)
			go func(key string) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					for _, q := range mix {
						status, qr := postQuery(t, ts, key, q.stmt)
						if status != http.StatusOK || qr.Rows != q.rows {
							errs <- fmt.Errorf("key %s %q: status %d rows %d (err %+v)",
								key, q.stmt, status, qr.Rows, qr.Error)
							return
						}
					}
				}
			}(key)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	m := getMetrics(t, ts)
	pc := m.Memory.PlanCache
	total := pc.Hits + pc.Misses
	if total == 0 || float64(pc.Hits)/float64(total) <= 0.90 {
		t.Fatalf("plan cache hits=%d misses=%d, want >90%% hit rate", pc.Hits, pc.Misses)
	}
	perTenant := int64(conns * iters * len(mix))
	for _, tn := range []string{"t1", "t2", "t3", "t4"} {
		lt, ok := m.Latency[tn]
		if !ok || lt.Count != perTenant {
			t.Fatalf("latency[%s] = %+v, want %d observations", tn, lt, perTenant)
		}
		if lt.P99Ms < lt.P50Ms {
			t.Fatalf("latency[%s]: p99 %.3fms < p50 %.3fms", tn, lt.P99Ms, lt.P50Ms)
		}
	}
	for _, tn := range m.Memory.Tenants {
		if tn.LiveBytes != 0 {
			t.Fatalf("tenant %s live = %d after load", tn.Tenant, tn.LiveBytes)
		}
	}
}

// TestServerAuthAndStatementErrors covers the remaining wire contract:
// unknown keys, malformed requests, statement errors, and DDL/DML
// round-trips through the cache-invalidation path.
func TestServerAuthAndStatementErrors(t *testing.T) {
	keys := map[string]TenantKey{"alpha": {Tenant: "t1", Budget: 64 << 20}}
	_, _, ts := newTestServer(t, 0, 0, keys)

	status, qr := postQuery(t, ts, "wrong", "SELECT x FROM t LIMIT 1;")
	if status != http.StatusUnauthorized || qr.Error == nil || qr.Error.Code != "unauthorized" {
		t.Fatalf("unknown key: status %d error %+v", status, qr.Error)
	}

	status, qr = postQuery(t, ts, "alpha", "SELECT nosuch FROM t;")
	if status != http.StatusBadRequest || qr.Error == nil || qr.Error.Code != "statement_error" {
		t.Fatalf("bad statement: status %d error %+v", status, qr.Error)
	}

	status, qr = postQuery(t, ts, "alpha", "")
	if status != http.StatusBadRequest {
		t.Fatalf("empty sql: status %d", status)
	}

	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query = %d, want 405", resp.StatusCode)
	}

	// DDL + DML through the server; the following SELECT sees the rows
	// (the INSERT invalidated any cached plan).
	status, qr = postQuery(t, ts, "alpha", "CREATE TABLE kv (k INT, v VARCHAR(8));")
	if status != http.StatusOK || !qr.OK {
		t.Fatalf("CREATE: status %d %+v", status, qr)
	}
	if status, qr = postQuery(t, ts, "alpha", "SELECT k, v FROM kv;"); status != http.StatusOK || qr.Rows != 0 {
		t.Fatalf("empty SELECT: status %d rows %d", status, qr.Rows)
	}
	if status, qr = postQuery(t, ts, "alpha", "INSERT INTO kv VALUES (1,'a'), (2,'b');"); status != http.StatusOK || !qr.OK {
		t.Fatalf("INSERT: status %d %+v", status, qr)
	}
	status, qr = postQuery(t, ts, "alpha", "SELECT k, v FROM kv;")
	if status != http.StatusOK || qr.Rows != 2 {
		t.Fatalf("SELECT after INSERT: status %d rows %d (stale cached plan?)", status, qr.Rows)
	}
	if len(qr.Columns) != 2 || qr.Columns[0].Name != "k" || qr.Columns[1].Type != "VARCHAR" {
		t.Fatalf("columns = %+v", qr.Columns)
	}
	if len(qr.Batches) != 1 || qr.Batches[0].Rows != 2 {
		t.Fatalf("batches = %+v", qr.Batches)
	}
	var ks []int64
	if err := json.Unmarshal(qr.Batches[0].Cols[0], &ks); err != nil || len(ks) != 2 || ks[0] != 1 {
		t.Fatalf("k column = %s (%v)", qr.Batches[0].Cols[0], err)
	}
}
