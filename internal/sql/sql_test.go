package sql

import (
	"math"
	"strings"
	"testing"

	"repro/internal/bat"
	"repro/internal/core"
	"repro/internal/rel"
)

// paperDB loads the example database of the paper's Figure 5.
func paperDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	script := `
CREATE TABLE users (Usr VARCHAR(20), State VARCHAR(2), YoB INT);
INSERT INTO users VALUES ('Ann','CA',1980), ('Tom','FL',1965), ('Jan','CA',1970);
CREATE TABLE film (Title VARCHAR(20), RelY INT, Director VARCHAR(20));
INSERT INTO film VALUES ('Heat',1995,'Lee'), ('Balto',1995,'Lee'), ('Net',1995,'Smith');
CREATE TABLE rating (Usr VARCHAR(20), Balto DOUBLE, Heat DOUBLE, Net DOUBLE);
INSERT INTO rating VALUES ('Ann',2.0,1.5,0.5), ('Tom',0.0,0.0,1.5), ('Jan',1.0,4.0,1.0);
`
	if _, err := db.Exec(script); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCreateInsertSelect(t *testing.T) {
	db := paperDB(t)
	res, err := db.Query(`SELECT * FROM rating`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 || res.NumCols() != 4 {
		t.Fatalf("rating = %dx%d", res.NumRows(), res.NumCols())
	}
	if got := strings.Join(res.Schema.Names(), ","); got != "Usr,Balto,Heat,Net" {
		t.Errorf("schema = %s", got)
	}
}

func TestWhereProjectionAliases(t *testing.T) {
	db := paperDB(t)
	res, err := db.Query(`SELECT Usr AS who, Heat*2 AS dbl FROM rating WHERE Heat >= 1.5`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	if got := strings.Join(res.Schema.Names(), ","); got != "who,dbl" {
		t.Errorf("schema = %s", got)
	}
	if res.Value(0, 0).S != "Ann" || res.Value(0, 1).F != 3.0 {
		t.Errorf("row 0 = %v, %v", res.Value(0, 0), res.Value(0, 1))
	}
}

func TestJoinAndQualifiers(t *testing.T) {
	db := paperDB(t)
	res, err := db.Query(`
SELECT u.Usr, r.Heat FROM users u JOIN rating r ON u.Usr = r.Usr
WHERE u.State = 'CA' ORDER BY u.Usr`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	if res.Value(0, 0).S != "Ann" || res.Value(1, 0).S != "Jan" {
		t.Errorf("order = %v, %v", res.Value(0, 0), res.Value(1, 0))
	}
}

func TestLeftJoin(t *testing.T) {
	db := paperDB(t)
	if _, err := db.Exec(`CREATE TABLE extra (Usr VARCHAR(20), Bonus DOUBLE);
INSERT INTO extra VALUES ('Ann', 9.0)`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`
SELECT u.Usr, e.Bonus FROM users u LEFT JOIN extra e ON u.Usr = e.Usr ORDER BY u.Usr`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	if res.Value(0, 1).F != 9 || res.Value(1, 1).F != 0 {
		t.Errorf("bonus = %v, %v", res.Value(0, 1), res.Value(1, 1))
	}
}

func TestCrossJoinAndCommaJoin(t *testing.T) {
	db := paperDB(t)
	res, err := db.Query(`SELECT COUNT(*) AS n FROM users CROSS JOIN film`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value(0, 0).I != 9 {
		t.Errorf("cross count = %v", res.Value(0, 0))
	}
	res2, err := db.Query(`SELECT COUNT(*) AS n FROM users, film WHERE users.YoB > 1969`)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Value(0, 0).I != 6 {
		t.Errorf("comma join count = %v", res2.Value(0, 0))
	}
}

func TestGroupByHaving(t *testing.T) {
	db := paperDB(t)
	res, err := db.Query(`
SELECT State, COUNT(*) AS n, AVG(YoB) AS avg_yob
FROM users GROUP BY State HAVING COUNT(*) > 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	if res.Value(0, 0).S != "CA" || res.Value(0, 1).I != 2 || res.Value(0, 2).F != 1975 {
		t.Errorf("row = %v %v %v", res.Value(0, 0), res.Value(0, 1), res.Value(0, 2))
	}
}

func TestAggregateExpressionArithmetic(t *testing.T) {
	db := paperDB(t)
	// Aggregates inside arithmetic (the paper's B/(M-1) covariance shape).
	res, err := db.Query(`SELECT SUM(Heat)/(COUNT(*)-1) AS x FROM rating`)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value(0, 0).F-5.5/2) > 1e-12 {
		t.Errorf("x = %v", res.Value(0, 0))
	}
}

func TestGlobalAggregateOverEmpty(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec(`CREATE TABLE t (x DOUBLE)`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT COUNT(*) AS n FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || res.Value(0, 0).I != 0 {
		t.Errorf("count over empty = %v (%d rows)", res.Value(0, 0), res.NumRows())
	}
}

func TestDistinctOrderLimit(t *testing.T) {
	db := paperDB(t)
	res, err := db.Query(`SELECT DISTINCT State FROM users ORDER BY State DESC LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || res.Value(0, 0).S != "FL" {
		t.Errorf("distinct/order/limit = %v", res.Value(0, 0))
	}
}

func TestSubquery(t *testing.T) {
	db := paperDB(t)
	res, err := db.Query(`
SELECT who, n FROM (SELECT Usr AS who, Balto + Net AS n FROM rating) t WHERE n > 1.6 ORDER BY who`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d", res.NumRows())
	}
}

// TestPaperIntroInv runs the paper's introductory query:
// SELECT * FROM INV(rating BY Usr).
func TestPaperIntroInv(t *testing.T) {
	db := paperDB(t)
	res, err := db.Query(`SELECT * FROM INV(rating BY Usr)`)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(res.Schema.Names(), ","); got != "Usr,Balto,Heat,Net" {
		t.Fatalf("inv schema = %s", got)
	}
	if res.NumRows() != 3 {
		t.Fatalf("inv rows = %d", res.NumRows())
	}
	// Users are sorted: Ann, Jan, Tom.
	if res.Value(0, 0).S != "Ann" || res.Value(1, 0).S != "Jan" || res.Value(2, 0).S != "Tom" {
		t.Errorf("order part = %v %v %v", res.Value(0, 0), res.Value(1, 0), res.Value(2, 0))
	}
}

// TestPaperSection72MMU runs the paper's Section 7.2 composition:
// MMU with a CROSS JOIN of a COUNT subquery and arithmetic projection.
func TestPaperSection72MMU(t *testing.T) {
	db := paperDB(t)
	// Build w1 (CA ratings), w3 (centered), w4 (transpose) with SQL.
	script := `
CREATE TABLE w1 (Usr VARCHAR(20), B DOUBLE, H DOUBLE, N DOUBLE);
INSERT INTO w1 SELECT r.Usr, r.Balto, r.Heat, r.Net
FROM users u JOIN rating r ON u.Usr = r.Usr WHERE u.State = 'CA';
`
	if _, err := db.Exec(script); err != nil {
		t.Fatal(err)
	}
	// Centering via sub of the column means (rename to keep order schemas
	// disjoint, as the paper's w3 does with ρV).
	if _, err := db.Exec(`
CREATE TABLE w3 (Usr VARCHAR(20), B DOUBLE, H DOUBLE, N DOUBLE);
INSERT INTO w3 SELECT s.Usr, s.B, s.H, s.N FROM (
  SELECT * FROM SUB(w1 BY Usr, (
     SELECT t.V AS V2, a.ab AS B, a.ah AS H, a.an AS N
     FROM (SELECT Usr AS V, 1 AS one FROM w1) t
     CROSS JOIN (SELECT AVG(B) AS ab, AVG(H) AS ah, AVG(N) AS an FROM w1) a
  ) BY V2)
) s`); err != nil {
		t.Fatal(err)
	}
	// w4 = tra(w3), w5 = mmu(w4, w3) scaled by 1/(M-1): full covariance.
	res, err := db.Query(`
SELECT C, B/(M-1) AS B, H/(M-1) AS H, N/(M-1) AS N
FROM MMU(TRA(w3 BY Usr) BY C, w3 BY Usr) AS w5
CROSS JOIN (SELECT COUNT(*) AS M FROM w1) AS t`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 || res.NumCols() != 4 {
		t.Fatalf("covariance = %dx%d", res.NumRows(), res.NumCols())
	}
	// Figure 7 w8: cov(B,B)=3.125... check against hand computation.
	// CA users: Ann (2,1.5,0.5), Jan (1,4,1). Centered: ±0.5, ±1.25, ∓0.25.
	// cov(B,B) = (0.25+0.25)/1 = 0.5; cov(B,H) = (0.5*-1.25 + -0.5*1.25) = -1.25.
	var covBB, covBH float64
	for i := 0; i < 3; i++ {
		if res.Value(i, 0).S == "B" {
			covBB = res.Value(i, 1).F
			covBH = res.Value(i, 2).F
		}
	}
	if math.Abs(covBB-0.5) > 1e-9 {
		t.Errorf("cov(B,B) = %v, want 0.5", covBB)
	}
	if math.Abs(covBH-(-1.25)) > 1e-9 {
		t.Errorf("cov(B,H) = %v, want -1.25", covBH)
	}
}

// TestRMAInFromNested checks nested RMA table functions parse and execute:
// the tra(tra(r)) identity of Figure 10.
func TestRMAInFromNested(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec(`
CREATE TABLE w (T VARCHAR(3), H DOUBLE, W DOUBLE);
INSERT INTO w VALUES ('5am',1,3),('8am',8,5),('7am',6,7),('6am',1,4)`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT * FROM TRA(TRA(w BY T) BY C) ORDER BY C`)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(res.Schema.Names(), ","); got != "C,H,W" {
		t.Fatalf("schema = %s", got)
	}
	if res.NumRows() != 4 || res.Value(0, 0).S != "5am" || res.Value(0, 1).F != 1 {
		t.Errorf("row 0 = %v %v", res.Value(0, 0), res.Value(0, 1))
	}
}

func TestRMAWithSubqueryArg(t *testing.T) {
	db := paperDB(t)
	res, err := db.Query(`
SELECT * FROM QQR((SELECT Usr, Balto, Heat FROM rating) BY Usr)`)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(res.Schema.Names(), ","); got != "Usr,Balto,Heat" {
		t.Fatalf("schema = %s", got)
	}
}

func TestRMAOptionsPlumbing(t *testing.T) {
	db := paperDB(t)
	st := &core.Stats{}
	db.SetRMAOptions(&core.Options{Policy: core.PolicyBAT, Stats: st})
	if _, err := db.Query(`SELECT * FROM INV(rating BY Usr)`); err != nil {
		t.Fatal(err)
	}
	if st.UsedDense {
		t.Error("BAT policy not plumbed through")
	}
	db.SetRMAOptions(nil)
}

func TestMultiKeyByList(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec(`
CREATE TABLE m (A INT, B INT, x DOUBLE);
INSERT INTO m VALUES (1,1,1.0),(1,2,2.0),(2,1,3.0)`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT * FROM QQR(m BY A, B)`)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(res.Schema.Names(), ","); got != "A,B,x" {
		t.Fatalf("schema = %s", got)
	}
	// Binary with multi-attribute BY on the first argument.
	res2, err := db.Query(`SELECT * FROM ADD(m BY A, B, (SELECT A AS A2, B AS B2, x FROM m) BY A2, B2)`)
	if err != nil {
		t.Fatal(err)
	}
	x, err := res2.Col("x")
	if err != nil {
		t.Fatal(err)
	}
	f, _ := x.Floats()
	if f[0] != 2 || f[1] != 4 || f[2] != 6 {
		t.Errorf("doubled x = %v", f)
	}
}

func TestInsertSelectAndDrop(t *testing.T) {
	db := paperDB(t)
	if _, err := db.Exec(`
CREATE TABLE ca (Usr VARCHAR(20), YoB INT);
INSERT INTO ca SELECT Usr, YoB FROM users WHERE State = 'CA'`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT COUNT(*) AS n FROM ca`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value(0, 0).I != 2 {
		t.Errorf("ca rows = %v", res.Value(0, 0))
	}
	if _, err := db.Exec(`DROP TABLE ca`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`SELECT * FROM ca`); err == nil {
		t.Error("dropped table still queryable")
	}
}

func TestScalarFunctions(t *testing.T) {
	db := paperDB(t)
	res, err := db.Query(`
SELECT SQRT(POW(Balto,2)) AS s, ABS(0-Net) AS a FROM rating WHERE Usr = 'Ann'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value(0, 0).F != 2 || res.Value(0, 1).F != 0.5 {
		t.Errorf("funcs = %v, %v", res.Value(0, 0), res.Value(0, 1))
	}
}

func TestErrorMessages(t *testing.T) {
	db := paperDB(t)
	cases := []string{
		`SELECT`,                                              // incomplete
		`SELECT * FROM nope`,                                  // unknown table
		`SELECT nope FROM rating`,                             // unknown column
		`SELECT Usr FROM rating WHERE`,                        // missing expr
		`SELECT * FROM FOO(rating BY Usr)`,                    // unknown table function
		`SELECT * FROM INV(rating)`,                           // missing BY
		`SELECT Usr FROM rating GROUP BY Usr HAVING Heat > 1`, // non-grouped column in HAVING... actually Heat is not aggregated
		`SELECT SUM(Usr) FROM rating`,                         // aggregate over string
		`INSERT INTO rating VALUES (1)`,                       // arity
		`CREATE TABLE rating (x DOUBLE)`,                      // duplicate table
		`DROP TABLE nope`,                                     // unknown table
		`SELECT * FROM users u JOIN rating r ON u.Usr = r.Usr JOIN rating q ON q.Usr = u.Usr`, // duplicate output names resolved? should work actually
	}
	for _, q := range cases[:11] {
		if _, err := db.Exec(q); err == nil {
			t.Errorf("no error for %q", q)
		}
	}
}

func TestDuplicateOutputNames(t *testing.T) {
	db := paperDB(t)
	res, err := db.Query(`SELECT u.Usr, r.Usr FROM users u JOIN rating r ON u.Usr = r.Usr`)
	if err != nil {
		t.Fatal(err)
	}
	names := res.Schema.Names()
	if names[0] == names[1] {
		t.Errorf("duplicate output names not disambiguated: %v", names)
	}
}

func TestStarWithJoin(t *testing.T) {
	db := paperDB(t)
	res, err := db.Query(`SELECT * FROM users u JOIN rating r ON u.Usr = r.Usr`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumCols() != 7 { // Usr,State,YoB + Usr,Balto,Heat,Net
		t.Fatalf("star join cols = %d (%v)", res.NumCols(), res.Schema.Names())
	}
}

func TestQuotedIdentifiers(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec(`
CREATE TABLE w (T VARCHAR(3), H DOUBLE, W DOUBLE);
INSERT INTO w VALUES ('5am',1,3),('8am',8,5)`); err != nil {
		t.Fatal(err)
	}
	// After a transpose the attribute names are times; quote them.
	res, err := db.Query(`SELECT C, "5am" FROM TRA(w BY T)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumCols() != 2 || res.Value(0, 1).F != 1 {
		t.Errorf("quoted ident select = %v", res.Value(0, 1))
	}
}

func TestRegisterAndTables(t *testing.T) {
	db := NewDB()
	b := rel.NewBuilder("t", rel.Schema{{Name: "x", Type: bat.Float}})
	b.MustAdd(bat.FloatValue(1))
	db.Register("t", b.Relation())
	if got := db.Tables(); len(got) != 1 || got[0] != "t" {
		t.Errorf("Tables = %v", got)
	}
	res, err := db.Query(`SELECT x FROM t`)
	if err != nil || res.Value(0, 0).F != 1 {
		t.Errorf("registered table: %v, %v", res, err)
	}
}

func TestNumericLiteralForms(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec(`CREATE TABLE t (x DOUBLE); INSERT INTO t VALUES (1.5e2), (-2), (0.25)`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT SUM(x) AS s FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value(0, 0).F != 148.25 { // 150 - 2 + 0.25
		t.Errorf("sum = %v", res.Value(0, 0))
	}
}
