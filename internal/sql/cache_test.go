package sql

import (
	"sync"
	"testing"

	"repro/internal/bat"
)

// TestPlanCacheHitAfterRepeat checks the cache's basic contract: the
// first execution of a cacheable SELECT is a miss that installs the
// entry, every repeat — including whitespace, comment, and keyword-case
// variants of the same statement — is a hit, and every execution
// returns bitwise-identical results.
func TestPlanCacheHitAfterRepeat(t *testing.T) {
	db := streamDB(t, 3000)
	const q = "SELECT t.id, t.val, s.bonus FROM t JOIN s ON t.grp = s.k WHERE s.bonus > 2 ORDER BY t.id LIMIT 100;"
	variants := []string{
		q,
		"select t.id, t.val, s.bonus from t join s on t.grp = s.k where s.bonus > 2 order by t.id limit 100;",
		"SELECT t.id, t.val, s.bonus  -- projection\n FROM t JOIN s ON t.grp = s.k\nWHERE s.bonus > 2 ORDER BY t.id LIMIT 100 ;",
	}
	first, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	m := db.Metrics().PlanCache
	if m.Misses != 1 || m.Hits != 0 || m.Entries != 1 {
		t.Fatalf("after first run: %+v, want 1 miss, 0 hits, 1 entry", m)
	}
	for i := 0; i < 6; i++ {
		res, err := db.Query(variants[i%len(variants)])
		if err != nil {
			t.Fatal(err)
		}
		if err := equalBits(first, res); err != nil {
			t.Fatalf("repeat %d diverged: %v", i, err)
		}
	}
	m = db.Metrics().PlanCache
	if m.Misses != 1 || m.Hits != 6 || m.Entries != 1 {
		t.Fatalf("after repeats: %+v, want 1 miss, 6 hits, 1 entry", m)
	}
}

// TestPlanCacheInvalidation checks every invalidation edge the cache
// promises: DML (INSERT), DDL (CREATE/DROP), catalog replacement
// (Register), and the streaming-mode toggle. After each event the cache
// is empty, and — the part that matters — a re-executed statement sees
// the new catalog state instead of the cached plan's old snapshot.
func TestPlanCacheInvalidation(t *testing.T) {
	db := streamDB(t, 1000)
	const q = "SELECT COUNT(*) AS n FROM t;"
	countRows := func() int64 {
		t.Helper()
		res, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cols[0].Vector().Ints()[0]
	}
	if got := countRows(); got != 1000 {
		t.Fatalf("initial count = %d", got)
	}
	countRows() // cache hit
	base := db.Metrics().PlanCache
	if base.Hits != 1 || base.Misses != 1 || base.Entries != 1 {
		t.Fatalf("before invalidation: %+v", base)
	}

	// INSERT invalidates, and the re-run must see the new row — a stale
	// cached plan would keep scanning the pre-INSERT relation.
	if _, err := db.Exec("INSERT INTO t VALUES (100000, 1, 0.5, 0.25, 'zz');"); err != nil {
		t.Fatal(err)
	}
	m := db.Metrics().PlanCache
	if m.Entries != 0 || m.Invalidations <= base.Invalidations {
		t.Fatalf("after INSERT: %+v", m)
	}
	if got := countRows(); got != 1001 {
		t.Fatalf("count after INSERT = %d, want 1001 (stale cached plan?)", got)
	}

	// CREATE and DROP invalidate.
	inv := db.Metrics().PlanCache.Invalidations
	if _, err := db.Exec("CREATE TABLE scratch (a INT);"); err != nil {
		t.Fatal(err)
	}
	if m := db.Metrics().PlanCache; m.Entries != 0 || m.Invalidations != inv+1 {
		t.Fatalf("after CREATE: %+v", m)
	}
	countRows()
	if _, err := db.Exec("DROP TABLE scratch;"); err != nil {
		t.Fatal(err)
	}
	if m := db.Metrics().PlanCache; m.Entries != 0 || m.Invalidations != inv+2 {
		t.Fatalf("after DROP: %+v", m)
	}

	// Register replaces a relation wholesale.
	countRows()
	db.Register("extra", db.tables["u"])
	if m := db.Metrics().PlanCache; m.Entries != 0 || m.Invalidations != inv+3 {
		t.Fatalf("after Register: %+v", m)
	}

	// The streaming toggle drops cached stream plans; the materialized
	// re-run still answers correctly and re-caches.
	countRows()
	db.SetStreaming(false)
	if m := db.Metrics().PlanCache; m.Entries != 0 {
		t.Fatalf("after SetStreaming(false): %+v", m)
	}
	if got := countRows(); got != 1001 {
		t.Fatalf("materialized count = %d", got)
	}
	db.SetStreaming(true)
	if got := countRows(); got != 1001 {
		t.Fatalf("re-streamed count = %d", got)
	}
}

// TestPlanCacheCountersMatch replays a known statement mix and checks
// the metrics counters equal the hits and misses the mix must produce.
// Non-cacheable statements (derived tables, RMA table functions, DDL)
// count neither hits nor misses.
func TestPlanCacheCountersMatch(t *testing.T) {
	db := streamDB(t, 500)
	queries := []string{
		"SELECT id FROM t WHERE val > 0;",                // miss
		"SELECT id FROM t WHERE val > 0;",                // hit
		"SELECT grp, COUNT(*) AS n FROM t GROUP BY grp;", // miss
		"SELECT id FROM t WHERE val > 0;",                // hit
		"SELECT grp, COUNT(*) AS n FROM t GROUP BY grp;", // hit
		// Derived table in FROM: not cacheable, no counter movement.
		"SELECT z FROM (SELECT val AS z FROM t) AS d LIMIT 3;",
		"SELECT z FROM (SELECT val AS z FROM t) AS d LIMIT 3;",
	}
	for _, q := range queries {
		if _, err := db.Query(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	m := db.Metrics().PlanCache
	if m.Misses != 2 || m.Hits != 3 || m.Entries != 2 {
		t.Fatalf("counters = %+v, want 2 misses, 3 hits, 2 entries", m)
	}
}

// TestPlanCacheBitwiseAtMorselBoundaries runs the differential shapes
// at sizes straddling the morsel size, three ways each — cache off,
// first cached execution (plans), second cached execution (reuses the
// shared plan) — and requires bitwise-identical relations.
func TestPlanCacheBitwiseAtMorselBoundaries(t *testing.T) {
	for _, n := range []int{0, 1, bat.MorselSize - 1, bat.MorselSize, bat.MorselSize + 1} {
		for qi, q := range streamingQueries {
			cold := streamDB(t, n)
			cold.SetPlanCache(false)
			want, werr := cold.Query(q)

			warm := streamDB(t, n)
			first, ferr := warm.Query(q)
			second, serr := warm.Query(q)

			if (werr == nil) != (ferr == nil) || (werr == nil) != (serr == nil) {
				t.Fatalf("n=%d q#%d error divergence: off=%v first=%v second=%v", n, qi, werr, ferr, serr)
			}
			if werr != nil {
				if werr.Error() != ferr.Error() || werr.Error() != serr.Error() {
					t.Fatalf("n=%d q#%d error strings diverge: %q / %q / %q", n, qi, werr, ferr, serr)
				}
				continue
			}
			if err := equalBits(want, first); err != nil {
				t.Fatalf("n=%d q#%d cache-off vs first cached: %v", n, qi, err)
			}
			if err := equalBits(want, second); err != nil {
				t.Fatalf("n=%d q#%d cache-off vs cached repeat: %v", n, qi, err)
			}
		}
	}
}

// TestPlanCacheConcurrentSharedPlan executes one cached statement from
// many goroutines at once under -race: the shared plan must be safe to
// execute concurrently and every result bitwise-equal.
func TestPlanCacheConcurrentSharedPlan(t *testing.T) {
	db := streamDB(t, 3*bat.MorselSize)
	queries := []string{
		"SELECT t.id, t.val, s.bonus FROM t JOIN s ON t.grp = s.k WHERE s.bonus > 2 AND t.val > 0;",
		"SELECT s.label, SUM(t.val) AS sv, COUNT(*) AS n FROM t JOIN s ON t.grp = s.k GROUP BY s.label ORDER BY sv DESC;",
	}
	for _, q := range queries {
		base, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, 16)
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, err := db.Query(q)
				if err != nil {
					errs <- err
					return
				}
				if err := equalBits(base, res); err != nil {
					errs <- err
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("%s: %v", q, err)
		}
	}
	m := db.Metrics().PlanCache
	if m.Hits < int64(len(queries)*16) {
		t.Fatalf("hits = %d, want >= %d", m.Hits, len(queries)*16)
	}
}
