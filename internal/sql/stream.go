package sql

import (
	"fmt"

	"repro/internal/bat"
	"repro/internal/exec"
	"repro/internal/rel"
	"repro/internal/store"
)

// This file executes a planned streaming SELECT. Operators pull morsels
// of up to bat.MorselSize rows through rowStream.next, batch buffers
// come from the statement's accounted arena, and every morsel is
// released as soon as its consumer is done with it — so the statement's
// peak arena footprint tracks the widest pipeline stage instead of the
// sum of its materialized intermediates. Pipeline breakers (join build
// sides, the grouping accumulator) consume their input fully, then
// stream or hand off materialized output.
//
// Determinism: morsels are emitted in row order, every per-morsel kernel
// runs serially (MorselSize never exceeds exec.SerialCutoff), and the
// breakers delegate to rel.JoinBuild / rel.StreamAgg, whose results are
// bitwise-identical to the materializing operators at any worker count.

// rowStream is the morsel iterator: next returns the next non-empty
// batch, or nil at end of stream. The caller owns the returned batch and
// must Release it; close releases the operator's own held buffers and
// propagates to its input. Both are safe to call during error unwinds.
type rowStream interface {
	next(c *exec.Ctx) (*bat.Batch, error)
	close(c *exec.Ctx)
}

// --- scan ------------------------------------------------------------------

// scanStream emits a leaf source one morsel at a time, fusing the
// pushed-down predicate conjuncts and the column pruning into a single
// pass: without a predicate morsels are zero-copy views; with one, only
// the matching rows of the needed columns are gathered (arena-drawn).
type scanStream struct {
	vecs     []*bat.Vector // emitted columns, sparse ones densified at open
	owned    [][]float64   // densified buffers handed back at close
	preds    []*compiled   // fused predicate, bound to global row indexes
	idx      []int         // arena scratch for matching rows (nil when no preds)
	skip     []bool        // per-segment zone-map prune flags (persisted tables)
	n, pos   int
	tr       *exec.StageTracker
	prev     int64 // bytes of the last emitted batch, unheld on the next call
	heldOpen int64 // bytes of the densified columns, unheld at close
}

func newScanStream(c *exec.Ctx, n *streamNode, ps *exec.PipelineStats) (*scanStream, error) {
	src := n.leaf
	s := &scanStream{n: src.rel.NumRows(), tr: ps.Stage("scan(" + src.rel.Name + ")")}
	if src.stored != nil && len(n.pred) > 0 {
		s.skip = segSkips(src.stored, src, n.pred, s.n)
	}

	// Columns the scan touches: emitted ones plus predicate inputs.
	// Sparse ones densify once into arena buffers so the per-morsel pass
	// (and the compiled predicate) reads dense storage.
	touched := make(map[int]bool, len(n.needed))
	for _, k := range n.needed {
		touched[k] = true
	}
	for _, p := range n.pred {
		for _, cr := range collectCols(p, nil) {
			if k, err := src.resolve(cr.Qualifier, cr.Name); err == nil {
				touched[k] = true
			}
		}
	}
	// Iterate columns by position, not by ranging the touched map: the
	// densified vectors land in s.owned, and a deterministic order keeps
	// the arena's buffer reuse (and therefore allocation stats) stable
	// across runs.
	var repl []*bat.BAT
	for k := range src.rel.Cols {
		if !touched[k] || !src.rel.Cols[k].IsSparse() {
			continue
		}
		if repl == nil {
			repl = append([]*bat.BAT(nil), src.rel.Cols...)
		}
		v := src.rel.Cols[k].VectorCtx(c)
		s.owned = append(s.owned, v.Floats())
		s.heldOpen += int64(cap(v.Floats())) * 8
		repl[k] = bat.FromVector(v)
	}
	if repl != nil {
		src = &source{
			rel:  &rel.Relation{Name: src.rel.Name, Schema: src.rel.Schema, Cols: repl},
			syms: src.syms,
		}
	}
	s.tr.Hold(s.heldOpen)

	for _, k := range n.needed {
		s.vecs = append(s.vecs, src.rel.Cols[k].Vector())
	}
	for _, p := range n.pred {
		comp, err := compileExpr(p, src) // cannot fail: the planner dry-compiled it
		if err != nil {
			return nil, err
		}
		s.preds = append(s.preds, comp)
	}
	if len(s.preds) > 0 {
		s.idx = c.Arena().Ints(bat.MorselSize)
	}
	return s, nil
}

func (s *scanStream) match(i int) bool {
	for _, p := range s.preds {
		if !truthy(p.fn(i)) {
			return false
		}
	}
	return true
}

func (s *scanStream) next(c *exec.Ctx) (*bat.Batch, error) {
	s.tr.Unhold(s.prev)
	s.prev = 0
	for s.pos < s.n {
		if s.skip != nil {
			seg := s.pos / store.SegRows
			if seg < len(s.skip) && s.skip[seg] {
				s.pos = min((seg+1)*store.SegRows, s.n)
				continue
			}
		}
		lo := s.pos
		hi := min(lo+bat.MorselSize, s.n)
		s.pos = hi
		if s.preds == nil {
			b := bat.NewBatch(hi - lo)
			for _, v := range s.vecs {
				b.AddCol(v.View(lo, hi), false)
			}
			s.tr.Batch(b.Len(), 0)
			return b, nil
		}
		idx := s.idx[:0]
		for i := lo; i < hi; i++ {
			if s.match(i) {
				idx = append(idx, i)
			}
		}
		if len(idx) == 0 {
			continue
		}
		b := bat.NewBatch(len(idx))
		for _, v := range s.vecs {
			b.AddCol(v.Gather(c, idx), true)
		}
		s.prev = b.Bytes()
		s.tr.Batch(b.Len(), s.prev)
		return b, nil
	}
	return nil, nil
}

func (s *scanStream) close(c *exec.Ctx) {
	s.tr.Unhold(s.prev + s.heldOpen)
	s.prev, s.heldOpen = 0, 0
	for _, f := range s.owned {
		c.Arena().FreeFloats(f)
	}
	s.owned = nil
	if s.idx != nil {
		c.Arena().FreeInts(s.idx)
		s.idx = nil
	}
}

// --- filter ----------------------------------------------------------------

// filterStream keeps the rows of each input morsel on which every
// predicate is truthy. A morsel where all rows survive passes through
// untouched (zero copy); otherwise the survivors are gathered into a
// fresh arena-backed batch.
type filterStream struct {
	in    rowStream
	node  *streamNode
	preds []Expr
	idx   []int
	tr    *exec.StageTracker
	prev  int64
}

func newFilterStream(c *exec.Ctx, in rowStream, n *streamNode, preds []Expr, ps *exec.PipelineStats) *filterStream {
	return &filterStream{in: in, node: n, preds: preds, idx: c.Arena().Ints(bat.MorselSize), tr: ps.Stage("filter")}
}

func (f *filterStream) next(c *exec.Ctx) (*bat.Batch, error) {
	f.tr.Unhold(f.prev)
	f.prev = 0
	for {
		mb, err := f.in.next(c)
		if err != nil || mb == nil {
			return nil, err
		}
		msrc := f.node.batchSource(mb)
		comps := make([]*compiled, len(f.preds))
		for k, p := range f.preds {
			if comps[k], err = compileExpr(p, msrc); err != nil {
				mb.Release(c)
				return nil, err
			}
		}
		idx := f.idx[:0]
	rows:
		for i := 0; i < mb.Len(); i++ {
			for _, comp := range comps {
				if !truthy(comp.fn(i)) {
					continue rows
				}
			}
			idx = append(idx, i)
		}
		switch {
		case len(idx) == 0:
			mb.Release(c)
			continue
		case len(idx) == mb.Len():
			f.tr.Batch(mb.Len(), 0)
			return mb, nil
		}
		out := bat.NewBatch(len(idx))
		for k := 0; k < mb.NumCols(); k++ {
			out.AddCol(mb.Col(k).Gather(c, idx), true)
		}
		mb.Release(c)
		f.prev = out.Bytes()
		f.tr.Batch(out.Len(), f.prev)
		return out, nil
	}
}

func (f *filterStream) close(c *exec.Ctx) {
	f.tr.Unhold(f.prev)
	f.prev = 0
	f.in.close(c)
	if f.idx != nil {
		c.Arena().FreeInts(f.idx)
		f.idx = nil
	}
}

// --- equi-join -------------------------------------------------------------

// probeIndex is the build-side contract joinStream probes against:
// rel.JoinBuild (one hash table) and rel.PartitionedBuild (radix
// exchange, one table per shard) produce bitwise-identical pair
// sequences, so the choice is pure execution policy.
type probeIndex interface {
	Probe(c *exec.Ctx, probeKeys []*bat.BAT, leftOuter bool) (li, ri []int, anyUnmatched bool, err error)
	Release(c *exec.Ctx)
}

// buildShards resolves the exchange fan-out for a build side of the
// given row count at execution time — cached plans stay
// execution-agnostic, so the same plan shards under one context and
// builds a single table under another. Below one serial chunk (or
// serially) partitioning is pure overhead.
func buildShards(c *exec.Ctx, rows int) int {
	w := c.Workers()
	if w <= 1 || rows < bat.SerialCutoff {
		return 1
	}
	return min(w, 16)
}

// joinStream probes each left morsel against a build side materialized
// and indexed at open. Pushed-down build filters run before indexing,
// and the hash table is pre-sized with the exact post-filter row count.
// Large build sides under a parallel budget are radix-partitioned into
// shards (rel.PartitionedBuild) with one stats stage per shard.
type joinStream struct {
	in        rowStream
	node      *streamNode
	jb        probeIndex
	shards    int
	buildVecs []*bat.Vector // needed build columns, sparse ones densified
	buildOwn  [][]float64
	filtered  []*rel.Relation // pushed-down-filter intermediates, freed at close
	leftOuter bool
	tr        *exec.StageTracker
	prev      int64
	heldOpen  int64
}

func newJoinStream(c *exec.Ctx, n *streamNode, in rowStream, ps *exec.PipelineStats) (*joinStream, error) {
	right := n.right
	var filtered []*rel.Relation
	var err error
	for _, p := range n.rightPred {
		if right, err = filterSource(c, right, p); err != nil {
			freeFiltered(c, filtered)
			return nil, err
		}
		filtered = append(filtered, right.rel)
	}
	keys, err := keyCols(right, n.rk)
	if err != nil {
		freeFiltered(c, filtered)
		return nil, err
	}
	var jb probeIndex
	shards := buildShards(c, right.rel.NumRows())
	if shards > 1 {
		pb, err := rel.NewPartitionedBuild(c, keys, shards, right.rel.NumRows())
		if err != nil {
			freeFiltered(c, filtered)
			return nil, err
		}
		for pt := 0; pt < shards; pt++ {
			rows := pb.ShardRows(pt)
			ps.Stage(fmt.Sprintf("exchange.build[shard %d/%d]", pt, shards)).Batch(rows, int64(rows)*8)
		}
		jb = pb
	} else {
		jb, err = rel.NewJoinBuild(c, keys, right.rel.NumRows())
		if err != nil {
			freeFiltered(c, filtered)
			return nil, err
		}
	}
	j := &joinStream{in: in, node: n, jb: jb, shards: shards, filtered: filtered, leftOuter: n.kind == JoinLeft, tr: ps.Stage("join")}
	for _, k := range n.needed {
		col := right.rel.Cols[k]
		v := col.VectorCtx(c)
		if col.IsSparse() {
			j.buildOwn = append(j.buildOwn, v.Floats())
			j.heldOpen += int64(cap(v.Floats())) * 8
		}
		j.buildVecs = append(j.buildVecs, v)
	}
	j.tr.Hold(j.heldOpen)
	return j, nil
}

func (j *joinStream) next(c *exec.Ctx) (*bat.Batch, error) {
	j.tr.Unhold(j.prev)
	j.prev = 0
	for {
		mb, err := j.in.next(c)
		if err != nil || mb == nil {
			return nil, err
		}
		msrc := j.node.left.batchSource(mb)
		keys := make([]*bat.BAT, len(j.node.lk))
		for k, e := range j.node.lk {
			comp, err := compileExpr(e, msrc)
			if err != nil {
				mb.Release(c)
				return nil, err
			}
			keys[k] = bat.FromVector(materializeVec(c, comp, mb.Len()))
		}
		li, ri, anyUnmatched, err := j.jb.Probe(c, keys, j.leftOuter)
		for _, kb := range keys {
			freeVec(c, kb.Vector())
		}
		if err != nil {
			mb.Release(c)
			return nil, err
		}
		if len(li) == 0 {
			c.Arena().FreeInts(li)
			c.Arena().FreeInts(ri)
			mb.Release(c)
			continue
		}
		out := bat.NewBatch(len(li))
		for k := 0; k < mb.NumCols(); k++ {
			out.AddCol(mb.Col(k).Gather(c, li), true)
		}
		pad := j.leftOuter && anyUnmatched
		for _, v := range j.buildVecs {
			out.AddCol(gatherVecPadded(c, v, ri, pad), true)
		}
		mb.Release(c)
		c.Arena().FreeInts(li)
		c.Arena().FreeInts(ri)
		j.prev = out.Bytes()
		j.tr.Batch(out.Len(), j.prev)
		return out, nil
	}
}

func (j *joinStream) close(c *exec.Ctx) {
	j.tr.Unhold(j.prev + j.heldOpen)
	j.prev, j.heldOpen = 0, 0
	j.in.close(c)
	if j.jb != nil {
		j.jb.Release(c)
		j.jb = nil
	}
	for _, f := range j.buildOwn {
		c.Arena().FreeFloats(f)
	}
	j.buildOwn = nil
	freeFiltered(c, j.filtered)
	j.filtered, j.buildVecs = nil, nil
}

// --- cross join ------------------------------------------------------------

// crossStream pairs every left-morsel row with every build-side row, in
// the same i-major order the materializing cross product uses, emitting
// pair chunks of at most MorselSize rows.
type crossStream struct {
	in        rowStream
	rightVecs []*bat.Vector
	rightOwn  [][]float64
	filtered  []*rel.Relation // pushed-down-filter intermediates, freed at close
	nr        int
	cur       *bat.Batch // left morsel currently being expanded
	i, j      int        // cursor into cur × right
	li, ri    []int      // arena pair scratch
	tr        *exec.StageTracker
	prev      int64
	heldOpen  int64
}

func newCrossStream(c *exec.Ctx, n *streamNode, in rowStream, ps *exec.PipelineStats) (*crossStream, error) {
	right := n.right
	var filtered []*rel.Relation
	var err error
	for _, p := range n.rightPred {
		if right, err = filterSource(c, right, p); err != nil {
			freeFiltered(c, filtered)
			return nil, err
		}
		filtered = append(filtered, right.rel)
	}
	x := &crossStream{
		in: in, nr: right.rel.NumRows(), filtered: filtered,
		li: c.Arena().Ints(bat.MorselSize), ri: c.Arena().Ints(bat.MorselSize),
		tr: ps.Stage("cross"),
	}
	for _, k := range n.needed {
		col := right.rel.Cols[k]
		v := col.VectorCtx(c)
		if col.IsSparse() {
			x.rightOwn = append(x.rightOwn, v.Floats())
			x.heldOpen += int64(cap(v.Floats())) * 8
		}
		x.rightVecs = append(x.rightVecs, v)
	}
	x.tr.Hold(x.heldOpen)
	return x, nil
}

func (x *crossStream) next(c *exec.Ctx) (*bat.Batch, error) {
	x.tr.Unhold(x.prev)
	x.prev = 0
	if x.nr == 0 {
		return nil, nil
	}
	for {
		if x.cur == nil {
			mb, err := x.in.next(c)
			if err != nil || mb == nil {
				return nil, err
			}
			x.cur, x.i, x.j = mb, 0, 0
		}
		li, ri := x.li[:0], x.ri[:0]
		for len(li) < bat.MorselSize && x.i < x.cur.Len() {
			li = append(li, x.i)
			ri = append(ri, x.j)
			x.j++
			if x.j == x.nr {
				x.j = 0
				x.i++
			}
		}
		out := bat.NewBatch(len(li))
		for k := 0; k < x.cur.NumCols(); k++ {
			out.AddCol(x.cur.Col(k).Gather(c, li), true)
		}
		for _, v := range x.rightVecs {
			out.AddCol(v.Gather(c, ri), true)
		}
		if x.i >= x.cur.Len() {
			x.cur.Release(c)
			x.cur = nil
		}
		x.prev = out.Bytes()
		x.tr.Batch(out.Len(), x.prev)
		return out, nil
	}
}

func (x *crossStream) close(c *exec.Ctx) {
	x.tr.Unhold(x.prev + x.heldOpen)
	x.prev, x.heldOpen = 0, 0
	x.in.close(c)
	x.cur.Release(c)
	x.cur = nil
	if x.li != nil {
		c.Arena().FreeInts(x.li)
		c.Arena().FreeInts(x.ri)
		x.li, x.ri = nil, nil
	}
	for _, f := range x.rightOwn {
		c.Arena().FreeFloats(f)
	}
	x.rightOwn = nil
	freeFiltered(c, x.filtered)
	x.filtered, x.rightVecs = nil, nil
}

// --- helpers ---------------------------------------------------------------

// materializeVec evaluates a compiled expression over one morsel into an
// arena-drawn vector of the expression's type.
func materializeVec(c *exec.Ctx, comp *compiled, n int) *bat.Vector {
	switch comp.typ {
	case bat.Int:
		out := c.Arena().Int64s(n)
		for i := 0; i < n; i++ {
			out[i] = comp.fn(i).I
		}
		return bat.NewIntVector(out)
	case bat.String:
		out := c.Arena().Strings(n)
		for i := 0; i < n; i++ {
			out[i] = comp.fn(i).S
		}
		return bat.NewStringVector(out)
	default:
		out := c.Arena().Floats(n)
		for i := 0; i < n; i++ {
			out[i] = comp.fn(i).F
		}
		return bat.NewFloatVector(out)
	}
}

// freeFiltered hands back the build-side relations a pushed-down filter
// materialized (rel.Select gathers every column into arena buffers).
// The whole chain of intermediates is freed together at close: a later
// filter gathers from the previous relation, and the final relation's
// dense columns are aliased by buildVecs/rightVecs until the last probe.
// Sparse gather results are plain heap slices and have nothing to return.
func freeFiltered(c *exec.Ctx, rels []*rel.Relation) {
	for _, r := range rels {
		for _, col := range r.Cols {
			if !col.IsSparse() {
				freeVec(c, col.Vector())
			}
		}
	}
}

// freeVec hands a materializeVec (or Gather) buffer back to the arena.
func freeVec(c *exec.Ctx, v *bat.Vector) {
	switch v.Type() {
	case bat.Int:
		c.Arena().FreeInt64s(v.Ints())
	case bat.String:
		c.Arena().FreeStrings(v.Strings())
	default:
		c.Arena().FreeFloats(v.Floats())
	}
}

// aggInput evaluates one aggregate argument over a morsel into an
// arena-drawn float column, converting ints with the exact float64(int)
// conversion the materializing path's FloatsCtx applies.
func aggInput(c *exec.Ctx, comp *compiled, n int) []float64 {
	out := c.Arena().Floats(n)
	if comp.typ == bat.Int {
		for i := 0; i < n; i++ {
			out[i] = float64(comp.fn(i).I)
		}
		return out
	}
	for i := 0; i < n; i++ {
		out[i] = comp.fn(i).F
	}
	return out
}

// gatherVecPadded gathers v at idx into an arena buffer; pad marks that
// idx may contain -1 (unmatched left-outer probe rows), which produce
// the zero value of the column's domain — the same padding the
// materializing join applies.
func gatherVecPadded(c *exec.Ctx, v *bat.Vector, idx []int, pad bool) *bat.Vector {
	if !pad {
		return v.Gather(c, idx)
	}
	n := len(idx)
	switch v.Type() {
	case bat.Int:
		src := v.Ints()
		out := c.Arena().Int64s(n)
		for k, j := range idx {
			if j < 0 {
				out[k] = 0
			} else {
				out[k] = src[j]
			}
		}
		return bat.NewIntVector(out)
	case bat.String:
		src := v.Strings()
		out := c.Arena().Strings(n)
		for k, j := range idx {
			if j < 0 {
				out[k] = ""
			} else {
				out[k] = src[j]
			}
		}
		return bat.NewStringVector(out)
	default:
		src := v.Floats()
		out := c.Arena().Floats(n)
		for k, j := range idx {
			if j < 0 {
				out[k] = 0
			} else {
				out[k] = src[j]
			}
		}
		return bat.NewFloatVector(out)
	}
}

// --- driver ----------------------------------------------------------------

// openStream instantiates the operator chain for a plan node.
func (db *DB) openStream(c *exec.Ctx, n *streamNode, ps *exec.PipelineStats) (rowStream, error) {
	if n.leaf != nil {
		return newScanStream(c, n, ps)
	}
	in, err := db.openStream(c, n.left, ps)
	if err != nil {
		return nil, err
	}
	var out rowStream
	if len(n.lk) > 0 {
		out, err = newJoinStream(c, n, in, ps)
	} else {
		out, err = newCrossStream(c, n, in, ps)
	}
	if err != nil {
		in.close(c)
		return nil, err
	}
	if filters := append(append([]Expr(nil), n.residual...), n.post...); len(filters) > 0 {
		out = newFilterStream(c, out, n, filters, ps)
	}
	return out, nil
}

// execSelectStreaming plans and runs one SELECT through the morsel
// pipeline. A planning failure of any kind returns errNeedMaterialize so
// execSelect falls back; runtime errors (budget overruns included)
// surface directly.
func (db *DB) execSelectStreaming(c *exec.Ctx, sel *SelectStmt) (*rel.Relation, error) {
	plan, err := db.planStream(c, sel)
	if err != nil {
		return nil, errNeedMaterialize
	}
	return db.execPlanned(c, sel, plan)
}

// execPlanned runs a planned streaming SELECT. The plan may be shared —
// cached plans execute concurrently — so execution treats it as
// strictly read-only: per-morsel state lives in the operators and the
// statement's context, never on the plan.
func (db *DB) execPlanned(c *exec.Ctx, sel *SelectStmt, plan *selectPlan) (*rel.Relation, error) {
	ps := exec.NewPipelineStats()
	defer func() { db.storePipelineStats(ps.Snapshot()) }()
	st, err := db.openStream(c, plan.root, ps)
	if err != nil {
		return nil, err
	}
	defer st.close(c)
	if plan.group != nil {
		return db.runStreamGrouped(c, sel, plan, st, ps)
	}
	return runStreamProject(c, sel, plan, st, ps)
}

// runStreamProject drains the stream through the per-morsel projection:
// every select item is compiled against each morsel and appended to
// plain output columns (the same storage the materializing projection
// builds), so the output relation is identical in values, names, and
// backing layout. Without DISTINCT or ORDER BY, a LIMIT stops the pull
// as soon as enough rows have been produced.
func runStreamProject(c *exec.Ctx, sel *SelectStmt, plan *selectPlan, st rowStream, ps *exec.PipelineStats) (*rel.Relation, error) {
	nItems := len(plan.items)
	outF := make([][]float64, nItems)
	outI := make([][]int64, nItems)
	outS := make([][]string, nItems)
	tr := ps.Stage("project")
	rows := 0
	earlyStop := sel.Limit >= 0 && !sel.Distinct && len(sel.OrderBy) == 0
	for !(earlyStop && rows >= sel.Limit) {
		mb, err := st.next(c)
		if err != nil {
			return nil, err
		}
		if mb == nil {
			break
		}
		msrc := plan.root.batchSource(mb)
		mn := mb.Len()
		for k, it := range plan.items {
			comp, err := compileExpr(it.Expr, msrc)
			if err != nil {
				mb.Release(c)
				return nil, err
			}
			switch plan.outSchema[k].Type {
			case bat.Int:
				buf := outI[k]
				for i := 0; i < mn; i++ {
					buf = append(buf, comp.fn(i).I)
				}
				outI[k] = buf
			case bat.String:
				buf := outS[k]
				for i := 0; i < mn; i++ {
					buf = append(buf, comp.fn(i).S)
				}
				outS[k] = buf
			default:
				buf := outF[k]
				for i := 0; i < mn; i++ {
					buf = append(buf, comp.fn(i).F)
				}
				outF[k] = buf
			}
		}
		rows += mn
		tr.Batch(mn, 0)
		mb.Release(c)
	}
	outCols := make([]*bat.BAT, nItems)
	for k := range outCols {
		switch plan.outSchema[k].Type {
		case bat.Int:
			outCols[k] = bat.FromInts(outI[k][:rows:rows])
		case bat.String:
			outCols[k] = bat.FromStrings(outS[k][:rows:rows])
		default:
			outCols[k] = bat.FromFloats(outF[k][:rows:rows])
		}
	}
	out, err := rel.New("", plan.outSchema, outCols)
	if err != nil {
		return nil, err
	}
	return finishOutput(c, sel, out, plan.outSyms, nil)
}

// groupAccumulator is the streaming grouping contract shared by
// rel.StreamAgg (one accumulator) and rel.ShardedAgg (hash-sharded
// accumulators); both finish into bitwise-identical grouped relations.
type groupAccumulator interface {
	Consume(keys []*bat.Vector, aggIn [][]float64, n int) error
	Finish() (*rel.Relation, error)
}

// runStreamGrouped drains the stream into the streaming aggregation
// accumulator, then rejoins the materializing tail: rewrite aggregate
// and key expressions into grouped-column references, apply HAVING, and
// run the shared projection/ORDER BY/LIMIT code over the grouped
// relation — which is bitwise-identical to the one groupSource builds.
//
// When the plan marked the grouping co-partitioned (the keys are the
// root join's partitioning keys) and the context runs parallel, the
// stage shards its accumulators on the same key hashes the exchange
// build used — the rows are already partitioned on those keys, so this
// is parallel grouping with no re-shuffle. Otherwise a single
// accumulator (which can spill) folds the stream.
func (db *DB) runStreamGrouped(c *exec.Ctx, sel *SelectStmt, plan *selectPlan, st rowStream, ps *exec.PipelineStats) (*rel.Relation, error) {
	gp := plan.group
	var sa groupAccumulator
	var sharded *rel.ShardedAgg
	var err error
	if w := c.Workers(); gp.coPart && w > 1 {
		sharded, err = rel.NewShardedAgg("", gp.keyNames, gp.keyTypes, gp.specs, min(w, 16), 0)
		sa = sharded
	} else {
		sa, err = rel.NewStreamAggCtx(c, "", gp.keyNames, gp.keyTypes, gp.specs, 0)
	}
	if err != nil {
		return nil, err
	}
	tr := ps.Stage("group")
	keyVecs := make([]*bat.Vector, len(gp.keyNames))
	aggIn := make([][]float64, len(gp.specs))
	for {
		mb, err := st.next(c)
		if err != nil {
			return nil, err
		}
		if mb == nil {
			break
		}
		msrc := plan.root.batchSource(mb)
		mn := mb.Len()
		for k, g := range sel.GroupBy {
			comp, err := compileExpr(g, msrc)
			if err != nil {
				mb.Release(c)
				return nil, err
			}
			keyVecs[k] = materializeVec(c, comp, mn)
		}
		for k, e := range gp.argExprs {
			if e == nil {
				aggIn[k] = nil
				continue
			}
			comp, err := compileExpr(e, msrc)
			if err != nil {
				mb.Release(c)
				return nil, err
			}
			aggIn[k] = aggInput(c, comp, mn)
		}
		if err := sa.Consume(keyVecs, aggIn, mn); err != nil {
			mb.Release(c)
			return nil, err
		}
		for k, v := range keyVecs {
			freeVec(c, v)
			keyVecs[k] = nil
		}
		for k, f := range aggIn {
			if f != nil {
				c.Arena().FreeFloats(f)
				aggIn[k] = nil
			}
		}
		tr.Batch(mn, 0)
		mb.Release(c)
	}
	grouped, err := sa.Finish()
	if err != nil {
		return nil, err
	}
	if sharded != nil {
		for pt := 0; pt < sharded.Shards(); pt++ {
			ps.Stage(fmt.Sprintf("exchange.group[shard %d/%d]", pt, sharded.Shards())).Batch(sharded.ShardGroups(pt), 0)
		}
	}
	// Global aggregation over an empty input yields one row of zeros
	// (COUNT(*) = 0), matching SQL semantics and groupSource.
	if len(gp.keyNames) == 0 && grouped.NumRows() == 0 {
		grouped = zeroAggRow(grouped)
	}
	src := newSource(grouped, grpQual)

	// Work on a copy of the plan's items: the rewrite below replaces
	// aggregate expressions with grouped-column references, and a cached
	// plan shared between concurrent executions must never be mutated.
	items := make([]SelectItem, len(plan.items))
	copy(items, plan.items)
	rewrites := make(map[string]Expr)
	for k, g := range sel.GroupBy {
		rewrites[keyOf(g)] = &ColRef{Qualifier: grpQual, Name: fmt.Sprintf("g%d", k)}
	}
	for k, a := range gp.aggs {
		rewrites[keyOf(a)] = &ColRef{Qualifier: grpQual, Name: fmt.Sprintf("agg%d", k)}
	}
	for k := range items {
		items[k].Expr = rewrite(items[k].Expr, rewrites)
	}
	if sel.Having != nil {
		having := rewrite(sel.Having, rewrites)
		if src, err = filterSource(c, src, having); err != nil {
			return nil, err
		}
	}
	return finishSelect(c, sel, items, src)
}
