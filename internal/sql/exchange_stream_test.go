package sql

import (
	"strings"
	"testing"

	"repro/internal/bat"
	"repro/internal/core"
	"repro/internal/rel"
)

// exchangeDB builds a fact table big enough that morsels span many
// SerialCutoff chunks and a dimension table above the sharding cutoff,
// so a parallel context radix-partitions the build side.
func exchangeDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	const fn = 3*bat.SerialCutoff + 257
	ids := make([]int64, fn)
	grps := make([]int64, fn)
	vals := make([]float64, fn)
	for i := 0; i < fn; i++ {
		ids[i] = int64(i)
		grps[i] = int64((i*7919 + 5) % 311)
		vals[i] = float64(i%211)*0.375 - 39.0
	}
	fact, err := rel.New("t", rel.Schema{
		{Name: "id", Type: bat.Int},
		{Name: "grp", Type: bat.Int},
		{Name: "val", Type: bat.Float},
	}, []*bat.BAT{bat.FromInts(ids), bat.FromInts(grps), bat.FromFloats(vals)})
	if err != nil {
		t.Fatal(err)
	}
	db.Register("t", fact)

	dn := bat.SerialCutoff + 301 // above the build-side sharding cutoff
	ks := make([]int64, dn)
	bonus := make([]float64, dn)
	for j := 0; j < dn; j++ {
		ks[j] = int64((j * 13) % 400) // some keys duplicated, some unmatched
		bonus[j] = float64(j%17) * 0.5
	}
	dim, err := rel.New("s", rel.Schema{
		{Name: "k", Type: bat.Int},
		{Name: "bonus", Type: bat.Float},
	}, []*bat.BAT{bat.FromInts(ks), bat.FromFloats(bonus)})
	if err != nil {
		t.Fatal(err)
	}
	db.Register("s", dim)
	return db
}

// TestExchangeStreamedJoinGroupBitwise runs join+group statements
// through every execution shape — materialized, streamed serial
// (single build table, single accumulator), streamed parallel
// (exchange-partitioned build, and sharded accumulators when the group
// keys are the partitioning keys) — and asserts every result is
// bitwise-identical to the materialized reference.
func TestExchangeStreamedJoinGroupBitwise(t *testing.T) {
	queries := []string{
		// Group keys = join partitioning keys: co-partitioned, the group
		// stage shards on the existing partitioning.
		`SELECT t.grp AS g, SUM(t.val) AS sv, SUM(s.bonus) AS sb, COUNT(*) AS cnt
			FROM t JOIN s ON t.grp = s.k GROUP BY t.grp ORDER BY g`,
		// Group keys differ from the join keys: no existing partitioning
		// to ride, single-accumulator grouping.
		`SELECT t.id % 7 AS g, SUM(s.bonus) AS sb, COUNT(*) AS cnt
			FROM t JOIN s ON t.grp = s.k GROUP BY t.id % 7 ORDER BY g`,
		// Left join through the partitioned build.
		`SELECT t.grp AS g, SUM(s.bonus) AS sb, COUNT(*) AS cnt
			FROM t LEFT JOIN s ON t.grp = s.k GROUP BY t.grp ORDER BY g`,
		// No grouping: the exchange-partitioned probe feeds projection.
		`SELECT t.id, t.val, s.bonus FROM t JOIN s ON t.grp = s.k ORDER BY t.id, s.bonus LIMIT 500`,
	}
	for qi, q := range queries {
		mat := exchangeDB(t)
		mat.SetStreaming(false)
		want, err := mat.QueryWith(q, &core.Options{Parallelism: 1})
		if err != nil {
			t.Fatalf("query %d materialized: %v", qi, err)
		}
		for _, workers := range []int{1, 2, 8} {
			db := exchangeDB(t)
			db.SetStreaming(true)
			got, err := db.QueryWith(q, &core.Options{Parallelism: workers})
			if err != nil {
				t.Fatalf("query %d workers=%d: %v", qi, workers, err)
			}
			if err := equalBits(want, got); err != nil {
				t.Fatalf("query %d workers=%d: streamed result differs from materialized: %v", qi, workers, err)
			}
		}
	}
}

// TestExchangeStreamShardStats asserts the parallel streamed plan
// surfaces one build stage per shard (rows summing to the build side)
// and, when co-partitioned, one group stage per shard (groups summing
// to the distinct key count).
func TestExchangeStreamShardStats(t *testing.T) {
	const q = `SELECT t.grp AS g, SUM(t.val) AS sv, COUNT(*) AS cnt
		FROM t JOIN s ON t.grp = s.k GROUP BY t.grp ORDER BY g`
	db := exchangeDB(t)
	db.SetStreaming(true)
	res, err := db.QueryWith(q, &core.Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	buildStages, buildRows := 0, 0
	groupStages, groupCnt := 0, 0
	for _, st := range db.PipelineStats() {
		switch {
		case strings.HasPrefix(st.Name, "exchange.build[shard "):
			buildStages++
			buildRows += int(st.Rows)
		case strings.HasPrefix(st.Name, "exchange.group[shard "):
			groupStages++
			groupCnt += int(st.Rows)
		}
	}
	if buildStages != 8 {
		t.Fatalf("build shard stages = %d, want 8 (stats: %+v)", buildStages, db.PipelineStats())
	}
	if wantRows := bat.SerialCutoff + 301; buildRows != wantRows {
		t.Fatalf("build shard rows sum to %d, want %d", buildRows, wantRows)
	}
	if groupStages != 8 {
		t.Fatalf("group shard stages = %d, want 8", groupStages)
	}
	if groupCnt != res.NumRows() {
		t.Fatalf("group shard groups sum to %d, result has %d rows", groupCnt, res.NumRows())
	}

	// A serial run of the same (cached) plan must not shard: the plan is
	// execution-agnostic and the fan-out is resolved per statement.
	if _, err := db.QueryWith(q, &core.Options{Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	for _, st := range db.PipelineStats() {
		if strings.HasPrefix(st.Name, "exchange.") {
			t.Fatalf("serial run produced exchange stage %q", st.Name)
		}
	}
}
