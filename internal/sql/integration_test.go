package sql

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
)

// opsDB builds a database with relations shaped for every operation:
// sq (3x3 SPD matrix), tall (5x2), vec (5x1 right-hand side).
func opsDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	if _, err := db.Exec(`
CREATE TABLE sq (K INT, b0 DOUBLE, b1 DOUBLE, b2 DOUBLE);
INSERT INTO sq VALUES (0, 4, 1, 0), (1, 1, 5, 2), (2, 0, 2, 6);
CREATE TABLE tall (K INT, x DOUBLE, y DOUBLE);
INSERT INTO tall VALUES (0,1,2), (1,3,4), (2,5,6), (3,7,9), (4,2,1);
CREATE TABLE tall2 (K2 INT, x DOUBLE, y DOUBLE);
INSERT INTO tall2 VALUES (0,10,20), (1,30,40), (2,50,60), (3,70,90), (4,20,10);
CREATE TABLE vec (K3 INT, b DOUBLE);
INSERT INTO vec VALUES (0,5), (1,11), (2,17), (3,25), (4,4);
`); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestEveryOperationThroughSQL exercises all nineteen relational matrix
// operations end to end through the SQL layer, checking result schemas
// and row counts against the shape types of paper Table 1.
func TestEveryOperationThroughSQL(t *testing.T) {
	db := opsDB(t)
	cases := []struct {
		query    string
		wantCols string
		wantRows int
	}{
		{`SELECT * FROM ADD(tall BY K, tall2 BY K2)`, "K,K2,x,y", 5},
		{`SELECT * FROM SUB(tall2 BY K2, tall BY K)`, "K2,K,x,y", 5},
		{`SELECT * FROM EMU(tall BY K, tall2 BY K2)`, "K,K2,x,y", 5},
		{`SELECT * FROM MMU(tall BY K, (SELECT K2, x FROM tall2 WHERE K2 < 2) BY K2)`, "K,x", 5},
		{`SELECT * FROM OPD(tall BY K, (SELECT K2, x, y FROM tall2 WHERE K2 < 3) BY K2)`, "K,0,1,2", 5},
		{`SELECT * FROM CPD(tall BY K, tall2 BY K2)`, "C,x,y", 2},
		{`SELECT * FROM SOL(tall BY K, vec BY K3)`, "C,b", 2},
		{`SELECT * FROM TRA(tall BY K)`, "C,0,1,2,3,4", 2},
		{`SELECT * FROM INV(sq BY K)`, "K,b0,b1,b2", 3},
		{`SELECT * FROM EVC(sq BY K)`, "K,b0,b1,b2", 3},
		{`SELECT * FROM EVL(sq BY K)`, "K,evl", 3},
		{`SELECT * FROM QQR(tall BY K)`, "K,x,y", 5},
		{`SELECT * FROM RQR(tall BY K)`, "C,x,y", 2},
		{`SELECT * FROM DSV(tall BY K)`, "C,x,y", 2},
		{`SELECT * FROM USV(tall BY K)`, "K,0,1,2,3,4", 5},
		{`SELECT * FROM VSV(tall BY K)`, "C,x,y", 2},
		{`SELECT * FROM DET(sq BY K)`, "C,det", 1},
		{`SELECT * FROM RNK(tall BY K)`, "C,rnk", 1},
		{`SELECT * FROM CHF(sq BY K)`, "K,b0,b1,b2", 3},
	}
	if len(cases) != len(core.Ops) {
		t.Fatalf("covering %d of %d operations", len(cases), len(core.Ops))
	}
	for _, c := range cases {
		res, err := db.Query(c.query)
		if err != nil {
			t.Fatalf("%s: %v", c.query, err)
		}
		if got := strings.Join(res.Schema.Names(), ","); got != c.wantCols {
			t.Errorf("%s: schema %s, want %s", c.query, got, c.wantCols)
		}
		if res.NumRows() != c.wantRows {
			t.Errorf("%s: %d rows, want %d", c.query, res.NumRows(), c.wantRows)
		}
	}
}

// TestOLSThroughSQL runs the regression composition of §8.6(1) entirely
// in SQL: beta = MMU(INV(CPD(A,A)), CPD(A,V)).
func TestOLSThroughSQL(t *testing.T) {
	db := NewDB()
	var sb strings.Builder
	sb.WriteString(`CREATE TABLE A (i INT, b0 DOUBLE, b1 DOUBLE);
CREATE TABLE V (i2 INT, y DOUBLE);
`)
	for i := 0; i < 20; i++ {
		x := float64(i) * 0.5
		fmt.Fprintf(&sb, "INSERT INTO A VALUES (%d, 1, %g);\n", i, x)
		fmt.Fprintf(&sb, "INSERT INTO V VALUES (%d, %g);\n", i, 4+3*x)
	}
	if _, err := db.Exec(sb.String()); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`
SELECT * FROM MMU(
    INV(CPD(A BY i, (SELECT i AS i3, b0, b1 FROM A) BY i3) BY C) BY C,
    CPD(A BY i, V BY i2) BY C)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Fatalf("beta rows = %d", res.NumRows())
	}
	var intercept, slope float64
	for i := 0; i < 2; i++ {
		switch res.Value(i, 0).S {
		case "b0":
			intercept = res.Value(i, 1).F
		case "b1":
			slope = res.Value(i, 1).F
		}
	}
	if math.Abs(intercept-4) > 1e-8 || math.Abs(slope-3) > 1e-8 {
		t.Errorf("beta = (%v, %v), want (4, 3)", intercept, slope)
	}
}

// TestFailureInjection drives malformed inputs through the full stack and
// checks that errors surface as errors, never panics.
func TestFailureInjection(t *testing.T) {
	db := opsDB(t)
	bad := []string{
		// Non-key order schema.
		`SELECT * FROM INV((SELECT 1 AS K, b0, b1, b2 FROM sq) BY K)`,
		// Non-square inversion.
		`SELECT * FROM INV(tall BY K)`,
		// Non-numeric application attribute.
		`SELECT * FROM QQR((SELECT K, 'x' AS s, x FROM tall) BY K)`,
		// Row mismatch for add.
		`SELECT * FROM ADD(tall BY K, (SELECT K2, x, y FROM tall2 WHERE K2 < 2) BY K2)`,
		// mmu inner dimension mismatch.
		`SELECT * FROM MMU(tall BY K, tall2 BY K2)`,
		// sol with two right-hand columns.
		`SELECT * FROM SOL(tall BY K, tall2 BY K2)`,
		// usv needs |U| = 1.
		`SELECT * FROM USV(tall BY K, x)`,
		// Cholesky of a non-SPD matrix.
		`SELECT * FROM CHF((SELECT K, b0, b1, b2 FROM INV(sq BY K)) BY K)`,
	}
	for _, q := range bad[:7] {
		if _, err := db.Query(q); err == nil {
			t.Errorf("no error for %s", q)
		}
	}
	// The last one may legitimately succeed (inverse of SPD is SPD), so
	// instead check a directly non-SPD input.
	if _, err := db.Query(`
SELECT * FROM CHF((SELECT K, b0, b1, 0-b2 AS b2 FROM sq) BY K)`); err == nil {
		t.Error("Cholesky of asymmetric matrix accepted")
	}
}

// TestPolicyMatrixThroughSQL checks both execution policies give the same
// SQL-visible answer.
func TestPolicyMatrixThroughSQL(t *testing.T) {
	db := opsDB(t)
	get := func() []float64 {
		res, err := db.Query(`SELECT b0, b1, b2 FROM INV(sq BY K) ORDER BY b0`)
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		for i := 0; i < res.NumRows(); i++ {
			for k := 0; k < res.NumCols(); k++ {
				out = append(out, res.Value(i, k).F)
			}
		}
		return out
	}
	db.SetRMAOptions(&core.Options{Policy: core.PolicyDense})
	dense := get()
	db.SetRMAOptions(&core.Options{Policy: core.PolicyBAT})
	batv := get()
	for i := range dense {
		if math.Abs(dense[i]-batv[i]) > 1e-10 {
			t.Fatalf("policy mismatch at %d: %v vs %v", i, dense[i], batv[i])
		}
	}
}
