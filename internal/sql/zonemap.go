package sql

import (
	"math"

	"repro/internal/store"
)

// Zone-map pruning for the streaming scan: when a leaf source is a
// persisted base table, its segment file carries per-segment min/max
// zone maps. Pushed-down conjuncts of the shapes
//
//	col <cmp> literal      literal <cmp> col
//	col BETWEEN lo AND hi  col = 'string'
//
// bound the values a matching row must have, so any segment whose zone
// map excludes the bound cannot produce a match and its whole row range
// — store.SegRows rows, a multiple of bat.MorselSize — is skipped
// without evaluating the predicate. Pruning is sound, never exact: a
// surviving segment still runs the full row-wise predicate, and NaN-
// holding segments carry no zone map at all (HasZone false always
// scans).

// segBound is one proven value constraint on a scanned column.
type segBound struct {
	col    int     // column index in the stored file (== relation index)
	lo, hi float64 // numeric bound, inclusive; ±Inf when open
	str    bool    // string equality instead of numeric range
	strVal string
}

// segSkips returns the per-segment skip flags for a scan of rd filtered
// by preds, or nil when nothing can be pruned (no usable bounds, or the
// reader does not match the relation snapshot).
func segSkips(rd *store.Reader, src *source, preds []Expr, nrows int) []bool {
	if rd == nil || nrows == 0 || rd.Rows() != int64(nrows) ||
		len(rd.Specs()) != len(src.rel.Cols) {
		return nil
	}
	var bounds []segBound
	for _, p := range preds {
		bounds = appendBounds(bounds, src, p)
	}
	if len(bounds) == 0 {
		return nil
	}
	specs := rd.Specs()
	skip := make([]bool, rd.NumSegs())
	any := false
	for s := range skip {
		for _, b := range bounds {
			m := rd.Seg(b.col, s)
			if b.str {
				if !m.MayContainStr(b.strVal, b.strVal, true, true) {
					skip[s] = true
				}
			} else if !m.MayContainNum(specs[b.col].Kind, b.lo, b.hi) {
				skip[s] = true
			}
			if skip[s] {
				any = true
				break
			}
		}
	}
	if !any {
		return nil
	}
	return skip
}

// appendBounds extracts the value bounds a conjunct proves, resolving
// column references against src. Unrecognized shapes contribute
// nothing (the row-wise predicate still runs).
func appendBounds(bounds []segBound, src *source, p Expr) []segBound {
	switch x := p.(type) {
	case *BinaryExpr:
		if x.Op == "AND" {
			bounds = appendBounds(bounds, src, x.L)
			return appendBounds(bounds, src, x.R)
		}
		col, cok := resolveCol(src, x.L)
		v, vok := litNum(x.R)
		op := x.Op
		if !cok || !vok {
			// literal <cmp> col: flip the comparison.
			if col, cok = resolveCol(src, x.R); !cok {
				return maybeStrBound(bounds, src, x)
			}
			if v, vok = litNum(x.L); !vok {
				return maybeStrBound(bounds, src, x)
			}
			op = flipCmp(op)
		}
		switch op {
		case "=":
			return append(bounds, segBound{col: col, lo: v, hi: v})
		case "<", "<=":
			return append(bounds, segBound{col: col, lo: math.Inf(-1), hi: v})
		case ">", ">=":
			return append(bounds, segBound{col: col, lo: v, hi: math.Inf(1)})
		}
	case *BetweenExpr:
		if x.Not {
			return bounds
		}
		col, cok := resolveCol(src, x.E)
		lo, lok := litNum(x.Lo)
		hi, hok := litNum(x.Hi)
		if cok && lok && hok {
			return append(bounds, segBound{col: col, lo: lo, hi: hi})
		}
	}
	return bounds
}

// maybeStrBound handles col = 'literal' (either side).
func maybeStrBound(bounds []segBound, src *source, x *BinaryExpr) []segBound {
	if x.Op != "=" {
		return bounds
	}
	if col, ok := resolveCol(src, x.L); ok {
		if s, ok := x.R.(*StringLit); ok {
			return append(bounds, segBound{col: col, str: true, strVal: s.Val})
		}
	}
	if col, ok := resolveCol(src, x.R); ok {
		if s, ok := x.L.(*StringLit); ok {
			return append(bounds, segBound{col: col, str: true, strVal: s.Val})
		}
	}
	return bounds
}

func resolveCol(src *source, e Expr) (int, bool) {
	cr, ok := e.(*ColRef)
	if !ok {
		return 0, false
	}
	k, err := src.resolve(cr.Qualifier, cr.Name)
	if err != nil {
		return 0, false
	}
	return k, true
}

// litNum evaluates a numeric literal, including a unary minus.
func litNum(e Expr) (float64, bool) {
	switch x := e.(type) {
	case *NumberLit:
		if x.IsInt {
			return float64(x.Int), true
		}
		return x.Float, true
	case *UnaryExpr:
		if x.Op == "-" {
			if v, ok := litNum(x.E); ok {
				return -v, true
			}
		}
	}
	return 0, false
}

func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}
