package sql

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/bat"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/rel"
)

// streamDB builds a database with a fact table t of n rows, a 500-row
// dimension table s keyed to t.grp, and a 3-row table u for cross joins.
func streamDB(t *testing.T, n int) *DB {
	t.Helper()
	db := NewDB()

	ids := make([]int64, n)
	grps := make([]int64, n)
	vals := make([]float64, n)
	ws := make([]float64, n)
	tags := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		grps[i] = int64((i*7919 + 5) % 97)
		vals[i] = float64(i%211)*0.375 - 39.0
		ws[i] = float64((i*31)%997) * 0.0625
		tags[i] = fmt.Sprintf("t%d", i%5)
	}
	fact, err := rel.New("t", rel.Schema{
		{Name: "id", Type: bat.Int},
		{Name: "grp", Type: bat.Int},
		{Name: "val", Type: bat.Float},
		{Name: "w", Type: bat.Float},
		{Name: "tag", Type: bat.String},
	}, []*bat.BAT{bat.FromInts(ids), bat.FromInts(grps), bat.FromFloats(vals), bat.FromFloats(ws), bat.FromStrings(tags)})
	if err != nil {
		t.Fatal(err)
	}
	db.Register("t", fact)

	const dn = 500
	ks := make([]int64, dn)
	bonus := make([]float64, dn)
	labels := make([]string, dn)
	for j := 0; j < dn; j++ {
		ks[j] = int64((j * 13) % 120) // some keys duplicated, some > 96 unmatched
		bonus[j] = float64(j%17) * 0.5
		labels[j] = fmt.Sprintf("L%d", j%11)
	}
	dim, err := rel.New("s", rel.Schema{
		{Name: "k", Type: bat.Int},
		{Name: "bonus", Type: bat.Float},
		{Name: "label", Type: bat.String},
	}, []*bat.BAT{bat.FromInts(ks), bat.FromFloats(bonus), bat.FromStrings(labels)})
	if err != nil {
		t.Fatal(err)
	}
	db.Register("s", dim)

	small, err := rel.New("u", rel.Schema{
		{Name: "uid", Type: bat.Int},
		{Name: "utag", Type: bat.String},
	}, []*bat.BAT{bat.FromInts([]int64{10, 20, 30}), bat.FromStrings([]string{"a", "b", "a"})})
	if err != nil {
		t.Fatal(err)
	}
	db.Register("u", small)
	return db
}

// equalBits compares two relations for bitwise equality: identical
// schemas and, per column, identical float bit patterns (not just ==,
// which would let -0 slide), int values, and strings.
func equalBits(a, b *rel.Relation) error {
	if len(a.Schema) != len(b.Schema) {
		return fmt.Errorf("schema arity %d vs %d", len(a.Schema), len(b.Schema))
	}
	for k := range a.Schema {
		if a.Schema[k] != b.Schema[k] {
			return fmt.Errorf("schema[%d] %+v vs %+v", k, a.Schema[k], b.Schema[k])
		}
	}
	if a.NumRows() != b.NumRows() {
		return fmt.Errorf("%d rows vs %d", a.NumRows(), b.NumRows())
	}
	for k := range a.Cols {
		av, bv := a.Cols[k].Vector(), b.Cols[k].Vector()
		switch a.Schema[k].Type {
		case bat.Float:
			af, bf := av.Floats(), bv.Floats()
			for i := range af {
				if math.Float64bits(af[i]) != math.Float64bits(bf[i]) {
					return fmt.Errorf("col %q row %d: %v (%#x) vs %v (%#x)",
						a.Schema[k].Name, i, af[i], math.Float64bits(af[i]), bf[i], math.Float64bits(bf[i]))
				}
			}
		case bat.Int:
			ai, bi := av.Ints(), bv.Ints()
			for i := range ai {
				if ai[i] != bi[i] {
					return fmt.Errorf("col %q row %d: %d vs %d", a.Schema[k].Name, i, ai[i], bi[i])
				}
			}
		case bat.String:
			as, bs := av.Strings(), bv.Strings()
			for i := range as {
				if as[i] != bs[i] {
					return fmt.Errorf("col %q row %d: %q vs %q", a.Schema[k].Name, i, as[i], bs[i])
				}
			}
		}
	}
	return nil
}

// streamingQueries are the differential shapes: each exercises a
// distinct slice of the streaming planner and runtime.
var streamingQueries = []string{
	// Plain projection with column pruning.
	"SELECT id, val, tag FROM t;",
	// Fused scan: predicate conjuncts and expression projection.
	"SELECT id, val * 2 + w AS z FROM t WHERE val > 0 AND id % 3 = 1;",
	// Inner join with pushdown into both sides and a pre-sized build.
	"SELECT t.id, t.val, s.bonus FROM t JOIN s ON t.grp = s.k WHERE s.bonus > 2 AND t.val > 0;",
	// LEFT JOIN with probe-side pushdown and padded unmatched rows.
	"SELECT t.id, s.label FROM t LEFT JOIN s ON t.grp = s.k WHERE t.val > 0;",
	// All five aggregates over grouped streaming accumulation.
	"SELECT grp AS g, COUNT(*) AS n, SUM(val) AS sv, AVG(w) AS aw, MIN(val) AS mv, MAX(w) AS xw FROM t GROUP BY grp ORDER BY g;",
	// Unaliased group key (the dialect renames it g0) — naming parity.
	"SELECT grp, COUNT(*) AS n FROM t GROUP BY grp;",
	// Join into grouping with HAVING, descending order, and limit.
	"SELECT s.label, SUM(t.val) AS sv, COUNT(*) AS n FROM t JOIN s ON t.grp = s.k GROUP BY s.label HAVING COUNT(*) > 10 ORDER BY sv DESC LIMIT 5;",
	// DISTINCT over the streamed projection.
	"SELECT DISTINCT tag FROM t;",
	// Cross join with a mixed-side predicate and early-stop limit.
	"SELECT t.id, u.utag FROM t CROSS JOIN u WHERE u.utag = 'a' AND t.id % 7 = 0 LIMIT 50;",
	// Subquery in FROM: the inner SELECT streams too.
	"SELECT id, val FROM (SELECT id, val, grp FROM t WHERE id % 2 = 0) WHERE val < 10;",
	// ORDER BY a column that is not selected: the streaming planner
	// rejects this shape and the fallback must still match.
	"SELECT tag, id FROM t ORDER BY val, id;",
	// Global aggregate without GROUP BY.
	"SELECT COUNT(*) AS n, SUM(val) AS sv FROM t WHERE val > 1000;",
}

// TestStreamingMatchesMaterialized pins the streaming pipeline to the
// materializing one: for every query shape, row counts straddling the
// morsel edges, and several worker budgets, the two paths must produce
// bitwise-identical relations.
func TestStreamingMatchesMaterialized(t *testing.T) {
	sizes := []int{0, 1, bat.MorselSize - 1, bat.MorselSize, bat.MorselSize + 1, 3 * bat.MorselSize}
	for _, n := range sizes {
		db := streamDB(t, n)
		for _, workers := range []int{1, 2, 8} {
			db.SetRMAOptions(&core.Options{Parallelism: workers})
			for qi, q := range streamingQueries {
				db.SetStreaming(true)
				streamed, err := db.Query(q)
				if err != nil {
					t.Fatalf("n=%d workers=%d query %d streamed: %v", n, workers, qi, err)
				}
				db.SetStreaming(false)
				materialized, err := db.Query(q)
				if err != nil {
					t.Fatalf("n=%d workers=%d query %d materialized: %v", n, workers, qi, err)
				}
				if err := equalBits(streamed, materialized); err != nil {
					t.Fatalf("n=%d workers=%d query %d (%s): %v", n, workers, qi, q, err)
				}
			}
		}
	}
}

// TestStreamingErrorsMatchMaterialized pins user-facing errors: every
// statement the materializing path rejects must fail identically with
// streaming enabled, whether the planner bails (falling back to the
// materializing error) or the streaming runtime reports it itself.
func TestStreamingErrorsMatchMaterialized(t *testing.T) {
	db := streamDB(t, 100)
	bad := []string{
		"SELECT nosuch FROM t;",
		"SELECT id FROM t JOIN t ON id = id;",               // ambiguous column in a self-join
		"SELECT grp FROM t LEFT JOIN s ON t.val > s.bonus;", // LEFT JOIN without equi keys
		"SELECT id FROM t HAVING id > 1;",
		"SELECT id FROM t GROUP BY grp;",
		"SELECT MIN(*) FROM t;",
		"SELECT SUM(tag) FROM t;",
		"SELECT tag + 1 FROM t;",
		// ORDER BY on an unaliased group key: the key is renamed g0, so
		// the sort column does not resolve — in either pipeline.
		"SELECT grp, COUNT(*) AS n FROM t GROUP BY grp ORDER BY grp;",
	}
	for qi, q := range bad {
		db.SetStreaming(true)
		_, serr := db.Query(q)
		db.SetStreaming(false)
		_, merr := db.Query(q)
		if merr == nil {
			if serr != nil {
				t.Fatalf("query %d (%s): streaming failed (%v), materialized succeeded", qi, q, serr)
			}
			continue
		}
		if serr == nil || serr.Error() != merr.Error() {
			t.Fatalf("query %d (%s): streaming error %q, materialized error %q", qi, q, serr, merr)
		}
	}
}

// TestStreamingPeakMemoryWin is the headline acceptance check: a
// filter → join → group-by statement streamed morsel-at-a-time must peak
// at less than half the accounted arena bytes of the same statement
// materialized. Each path runs under its own tenant (peak is cumulative
// per tenant) on a fresh governor.
func TestStreamingPeakMemoryWin(t *testing.T) {
	const n = 1 << 16
	const budget = 256 << 20
	q := "SELECT grp AS g, SUM(val) AS sv, COUNT(*) AS cnt FROM t JOIN s ON t.grp = s.k WHERE t.val > 0 GROUP BY grp ORDER BY g;"

	db := streamDB(t, n)
	gov := exec.NewGovernor(1<<30, 8)
	db.SetGovernor(gov)

	db.SetStreaming(true)
	db.SetRMAOptions(&core.Options{Tenant: "streamside", MemoryBudget: budget})
	streamed, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}

	db.SetStreaming(false)
	db.SetRMAOptions(&core.Options{Tenant: "matside", MemoryBudget: budget})
	materialized, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}

	if err := equalBits(streamed, materialized); err != nil {
		t.Fatalf("streamed result differs under arenas: %v", err)
	}

	streamPeak := gov.Tenant("streamside", budget).PeakBytes()
	matPeak := gov.Tenant("matside", budget).PeakBytes()
	if streamPeak <= 0 || matPeak <= 0 {
		t.Fatalf("expected both tenants charged: stream=%d materialized=%d", streamPeak, matPeak)
	}
	if 2*streamPeak > matPeak {
		t.Fatalf("streaming peak %d bytes not under half of materialized peak %d bytes", streamPeak, matPeak)
	}
	t.Logf("peak arena bytes: streaming=%d materialized=%d (%.1fx win)",
		streamPeak, matPeak, float64(matPeak)/float64(streamPeak))
}

// TestStreamingPipelineStats checks the observability surface: a
// streamed statement leaves per-stage morsel counters behind, and the
// scan stage accounts every input row.
func TestStreamingPipelineStats(t *testing.T) {
	n := 2*bat.MorselSize + 100
	db := streamDB(t, n)
	if _, err := db.Query("SELECT t.id, s.bonus FROM t JOIN s ON t.grp = s.k WHERE t.val > 0;"); err != nil {
		t.Fatal(err)
	}
	stats := db.PipelineStats()
	if len(stats) == 0 {
		t.Fatal("no pipeline stats after a streamed statement")
	}
	byName := map[string]exec.StageStats{}
	for _, st := range stats {
		byName[st.Name] = st
	}
	scan, ok := byName["scan(t)"]
	if !ok {
		t.Fatalf("no scan(t) stage in %v", stats)
	}
	if scan.Rows >= int64(n) {
		t.Fatalf("scan emitted %d rows; the fused predicate should drop some of %d", scan.Rows, n)
	}
	if scan.Batches < 2 {
		t.Fatalf("scan emitted %d batches, want several at n=%d", scan.Batches, n)
	}
	if _, ok := byName["join"]; !ok {
		t.Fatalf("no join stage in %v", stats)
	}
	if _, ok := byName["project"]; !ok {
		t.Fatalf("no project stage in %v", stats)
	}
}
