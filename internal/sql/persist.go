package sql

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bat"
	"repro/internal/exec"
	"repro/internal/rel"
	"repro/internal/store"
)

// This file implements durable tables: CREATE TABLE ... PERSIST
// checkpoints the table to a column-segment file under the database's
// data directory on every change (CREATE, INSERT), and LoadPersisted
// restores the checkpointed tables after a restart — bitwise identical,
// floats round-tripping through their exact bit patterns. The open
// segment readers double as the zone-map source for scan-time segment
// pruning.

// SetDataDir configures the directory persisted tables checkpoint to,
// creating it if needed. An empty dir disables persistence again.
func (db *DB) SetDataDir(dir string) error {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("sql: data dir: %w", err)
		}
	}
	db.mu.Lock()
	db.dataDir = dir
	db.mu.Unlock()
	return nil
}

// DataDir returns the configured data directory ("" when persistence is
// disabled).
func (db *DB) DataDir() string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.dataDir
}

// segPathLocked returns the checkpoint path for a table; callers hold
// db.mu. Table names come from the identifier lexer, so they contain no
// path separators.
func (db *DB) segPathLocked(name string) string {
	return filepath.Join(db.dataDir, name+".seg")
}

// storedReader returns the open segment reader backing a persisted
// table, or nil.
func (db *DB) storedReader(name string) *store.Reader {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.stored[name]
}

// Persisted reports whether a table is checkpointed to disk.
func (db *DB) Persisted(name string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.persisted[name]
}

// Close releases the segment readers of persisted tables. The in-memory
// catalog stays usable; persisted tables simply lose zone-map pruning.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	var first error
	for name, rd := range db.stored {
		if err := rd.Close(); err != nil && first == nil {
			first = err
		}
		delete(db.stored, name)
	}
	return first
}

// checkpoint writes the current snapshot of a persisted table to its
// segment file (atomically: temp file + rename) and refreshes the open
// reader so scans prune against the new zone maps.
func (db *DB) checkpoint(name string) error {
	db.mu.RLock()
	dir := db.dataDir
	r := db.tables[name]
	db.mu.RUnlock()
	if dir == "" {
		return fmt.Errorf("sql: checkpoint %q without a data directory", name)
	}
	if r == nil {
		return fmt.Errorf("sql: no such table %q", name)
	}
	path := filepath.Join(dir, name+".seg")
	tmp := path + ".tmp"

	specs := make([]store.ColSpec, len(r.Schema))
	data := make([]store.ColData, len(r.Cols))
	var owned [][]float64 // densified sparse tails, returned below
	c := exec.Default()
	for j, a := range r.Schema {
		specs[j] = store.ColSpec{Name: a.Name, Kind: kindOfType(a.Type)}
		v := r.Cols[j].VectorCtx(c) // densifies sparse tails
		if r.Cols[j].IsSparse() {
			owned = append(owned, v.Floats())
		}
		switch v.Type() {
		case bat.Float:
			data[j] = store.ColData{F: v.Floats()}
		case bat.Int:
			data[j] = store.ColData{I: v.Ints()}
		default:
			data[j] = store.ColData{S: v.Strings()}
		}
	}
	defer func() {
		for _, f := range owned {
			c.Arena().FreeFloats(f)
		}
	}()

	w, err := store.Create(tmp, name, specs)
	if err != nil {
		return err
	}
	if r.NumRows() > 0 {
		if err := w.Append(r.NumRows(), data); err != nil {
			w.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := w.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}

	rd, err := store.Open(path)
	if err != nil {
		return fmt.Errorf("sql: reopen checkpoint %q: %w", name, err)
	}
	db.mu.Lock()
	if old := db.stored[name]; old != nil {
		old.Close()
	}
	db.stored[name] = rd
	db.mu.Unlock()
	return nil
}

// LoadPersisted restores every checkpointed table found in the data
// directory into the catalog, marking each persisted. Returns the
// loaded table names in directory order. The load runs under the
// database's configured RMA options: segment reads are charged to the
// tenant arena, and a memory-budget overrun surfaces as an error
// matching exec.ErrMemoryBudget instead of unwinding the caller.
func (db *DB) LoadPersisted() (loaded []string, err error) {
	db.mu.RLock()
	dir := db.dataDir
	opts := db.rmaOpts
	db.mu.RUnlock()
	if dir == "" {
		return nil, fmt.Errorf("sql: LoadPersisted without a data directory")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("sql: data dir: %w", err)
	}
	c, finish := db.stmtCtx(opts, 0, false)
	defer finish()
	defer exec.CatchBudget(&err)
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".seg") {
			continue
		}
		r, rd, err := loadSegTable(c, filepath.Join(dir, e.Name()))
		if err != nil {
			return loaded, err
		}
		db.mu.Lock()
		db.tables[r.Name] = r
		db.persisted[r.Name] = true
		if old := db.stored[r.Name]; old != nil {
			old.Close()
		}
		db.stored[r.Name] = rd
		db.mu.Unlock()
		loaded = append(loaded, r.Name)
	}
	db.cache.invalidate()
	return loaded, nil
}

// loadSegTable reads a whole segment file into an in-memory relation
// and returns it with the (still open) reader. Segment reads draw from
// c's arena, so a governed load charges the tenant.
func loadSegTable(c *exec.Ctx, path string) (*rel.Relation, *store.Reader, error) {
	rd, err := store.Open(path)
	if err != nil {
		return nil, nil, err
	}
	specs := rd.Specs()
	n := int(rd.Rows())
	schema := make(rel.Schema, len(specs))
	cols := make([]*bat.BAT, len(specs))
	for j, sp := range specs {
		schema[j] = rel.Attr{Name: sp.Name, Type: typeOfKind(sp.Kind)}
		var fs []float64
		var is []int64
		var ss []string
		switch sp.Kind {
		case store.KFloat:
			fs = make([]float64, 0, n)
		case store.KInt:
			is = make([]int64, 0, n)
		default:
			ss = make([]string, 0, n)
		}
		for s := 0; s < rd.NumSegs(); s++ {
			d, err := rd.ReadSeg(c, j, s)
			if err != nil {
				rd.Close()
				return nil, nil, err
			}
			fs = append(fs, d.F...)
			is = append(is, d.I...)
			ss = append(ss, d.S...)
			store.ReleaseColData(c, d)
		}
		switch sp.Kind {
		case store.KFloat:
			cols[j] = bat.FromFloats(fs)
		case store.KInt:
			cols[j] = bat.FromInts(is)
		default:
			cols[j] = bat.FromStrings(ss)
		}
	}
	r, err := rel.New(rd.Name(), schema, cols)
	if err != nil {
		rd.Close()
		return nil, nil, err
	}
	return r, rd, nil
}

func kindOfType(t bat.Type) store.ColKind {
	switch t {
	case bat.Float:
		return store.KFloat
	case bat.Int:
		return store.KInt
	}
	return store.KString
}

func typeOfKind(k store.ColKind) bat.Type {
	switch k {
	case store.KFloat:
		return bat.Float
	case store.KInt:
		return bat.Int
	}
	return bat.String
}
