package sql

import (
	"container/list"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/exec"
)

// This file is the prepared-statement / plan cache. A serving workload
// is almost entirely repeated statement shapes, so DB keeps the parsed
// AST — and, once the statement first streams, its stream plan — keyed
// by the normalized statement text. A hit skips lexing, parsing,
// planning, pushdown, pruning, and dry compilation; per-morsel
// expression compilation still happens per execution, which is what
// keeps a shared plan immutable and safe under concurrent executions.
//
// Caching is restricted to single-statement SELECTs whose FROM tree is
// plain table references and joins: derived tables and RMA table
// functions materialize results into the plan at planning time, so a
// cached plan for them could silently pin stale data or a stale RMA
// policy. The cache is invalidated wholesale on every catalog change
// (CREATE/INSERT/DROP/Register) and on every execution-mode change
// (streaming toggle, SetRMAOptions, SetGovernor): plans hold references
// to the catalog relations that existed at plan time, so any event that
// could change what a statement reads — or how — drops every entry.

// defaultPlanCacheCap bounds the number of cached statements; the LRU
// entry is evicted beyond it. Plans are small (an AST plus pruned
// symbol tables — the relations they reference are catalog-owned), so
// the bound exists to keep pathological generated-statement workloads
// from growing the map without limit, not to manage memory pressure.
const defaultPlanCacheCap = 256

// PlanCacheStats is the plan cache's observable state, surfaced through
// DB.Metrics.
type PlanCacheStats struct {
	Hits          int64 // statements served from a cached entry
	Misses        int64 // cacheable statements that had to parse (and were inserted)
	Invalidations int64 // wholesale invalidation events (DDL/DML, mode changes)
	Entries       int   // entries currently cached
}

// planEntry is one cached statement: the parsed SELECT plus, after the
// first streamed execution, its stream plan. plan == nil with planned
// set means the planner declined the statement and cached executions go
// straight to the materializing path.
type planEntry struct {
	key string
	sel *SelectStmt

	mu      sync.Mutex
	planned bool
	plan    *selectPlan
}

// planFor returns the entry's stream plan, planning it on first use.
// Planning errors are not cached as errors: the planner's only failure
// mode is "fall back to the materializing path", and that decision is
// stable until an invalidation drops the entry anyway.
func (e *planEntry) planFor(db *DB, c *exec.Ctx) *selectPlan {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.planned {
		plan, err := db.planStream(c, e.sel)
		if err != nil {
			plan = nil
		}
		e.plan, e.planned = plan, true
	}
	return e.plan
}

// planCache is a bounded LRU of planEntry keyed by normalized statement
// text.
type planCache struct {
	mu      sync.Mutex
	off     bool
	cap     int
	entries map[string]*list.Element
	lru     *list.List // front = most recently used; values are *planEntry

	hits          atomic.Int64
	misses        atomic.Int64
	invalidations atomic.Int64
}

func (pc *planCache) init(capacity int) {
	pc.cap = capacity
	pc.entries = make(map[string]*list.Element)
	pc.lru = list.New()
}

// get returns the entry under key, promoting it to most recently used;
// nil when absent or the cache is off. Found entries count as hits.
func (pc *planCache) get(key string) *planEntry {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.off {
		return nil
	}
	el, ok := pc.entries[key]
	if !ok {
		return nil
	}
	pc.lru.MoveToFront(el)
	pc.hits.Add(1)
	return el.Value.(*planEntry)
}

// put inserts a parsed cacheable SELECT under key and counts the miss,
// evicting the least recently used entry beyond capacity. When another
// statement raced the insert, the existing entry wins. Returns nil when
// the cache is off.
func (pc *planCache) put(key string, sel *SelectStmt) *planEntry {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.off || pc.cap <= 0 {
		return nil
	}
	if el, ok := pc.entries[key]; ok {
		pc.lru.MoveToFront(el)
		return el.Value.(*planEntry)
	}
	pc.misses.Add(1)
	e := &planEntry{key: key, sel: sel}
	pc.entries[key] = pc.lru.PushFront(e)
	for len(pc.entries) > pc.cap {
		last := pc.lru.Back()
		pc.lru.Remove(last)
		delete(pc.entries, last.Value.(*planEntry).key)
	}
	return e
}

// invalidate drops every entry and counts one invalidation event.
func (pc *planCache) invalidate() {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.invalidations.Add(1)
	clear(pc.entries)
	pc.lru.Init()
}

// setEnabled toggles the cache; disabling drops the entries (without
// counting an invalidation — the books track catalog/mode events, not
// configuration).
func (pc *planCache) setEnabled(on bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.off = !on
	if !on {
		clear(pc.entries)
		pc.lru.Init()
	}
}

func (pc *planCache) stats() PlanCacheStats {
	pc.mu.Lock()
	n := len(pc.entries)
	pc.mu.Unlock()
	return PlanCacheStats{
		Hits:          pc.hits.Load(),
		Misses:        pc.misses.Load(),
		Invalidations: pc.invalidations.Load(),
		Entries:       n,
	}
}

// normalizeStmt re-lexes a statement into its canonical text: one space
// between tokens, keywords upper-cased by the lexer, identifiers always
// quoted (so an identifier can never collide with a keyword), strings
// re-escaped. Two statements differing only in whitespace, comments, or
// keyword case share a cache entry; anything the lexer rejects is not
// cacheable and reports its error through the ordinary parse path.
func normalizeStmt(src string) (string, bool) {
	toks, err := lex(src)
	if err != nil || len(toks) == 0 {
		return "", false
	}
	var b strings.Builder
	b.Grow(len(src) + len(toks)*3)
	for i, t := range toks {
		if i > 0 {
			b.WriteByte(' ')
		}
		switch t.kind {
		case tokIdent:
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(t.text, `"`, `""`))
			b.WriteByte('"')
		case tokString:
			b.WriteByte('\'')
			b.WriteString(strings.ReplaceAll(t.text, `'`, `''`))
			b.WriteByte('\'')
		default:
			b.WriteString(t.text)
		}
	}
	return b.String(), true
}

// cacheableSelect reports whether a parsed SELECT may be cached: its
// FROM tree must consist of plain table references and joins only.
// Derived tables and RMA table functions are executed — not referenced —
// at planning time, so caching them would freeze their results and, for
// RMA, the policy options they ran under.
func cacheableSelect(sel *SelectStmt) bool {
	return sel.From != nil && cacheableFrom(sel.From)
}

func cacheableFrom(te TableExpr) bool {
	switch x := te.(type) {
	case *TableRef:
		return true
	case *JoinExpr:
		return cacheableFrom(x.Left) && cacheableFrom(x.Right)
	}
	return false
}
