package sql

import "repro/internal/bat"

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem // empty means *
	From     TableExpr
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 when absent
}

// SelectItem is one projection: an expression with an optional alias, or a
// bare star.
type SelectItem struct {
	Star bool
	Expr Expr
	As   string
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// CreateStmt is CREATE TABLE name (col type, ...) [PERSIST].
type CreateStmt struct {
	Name    string
	Columns []ColumnDef
	Persist bool // checkpoint the table to the data directory on every change
}

// ColumnDef declares one attribute.
type ColumnDef struct {
	Name string
	Type bat.Type
}

// InsertStmt is INSERT INTO name VALUES (...), (...) or INSERT INTO name SELECT.
type InsertStmt struct {
	Table  string
	Rows   [][]Expr // literal tuples; nil when Select is set
	Select *SelectStmt
}

// DropStmt is DROP TABLE name.
type DropStmt struct {
	Table string
}

func (*SelectStmt) stmt() {}
func (*CreateStmt) stmt() {}
func (*InsertStmt) stmt() {}
func (*DropStmt) stmt()   {}

// TableExpr produces rows in a FROM clause.
type TableExpr interface{ tableExpr() }

// TableRef names a stored table.
type TableRef struct {
	Name  string
	Alias string
}

// SubqueryRef is a derived table.
type SubqueryRef struct {
	Select *SelectStmt
	Alias  string
}

// RMARef is the paper's SQL extension: a relational matrix operation as a
// table function, e.g. INV(r BY User) or MMU(w4 BY C, w3 BY U).
type RMARef struct {
	Op    string // lower-cased operation name
	Args  []RMAArg
	Alias string
}

// RMAArg is one argument relation with its BY order schema. Rel is a
// TableRef, SubqueryRef, or nested RMARef — the paper's operations compose.
type RMAArg struct {
	Rel TableExpr
	By  []string // order schema
}

// JoinExpr combines two table expressions.
type JoinExpr struct {
	Kind  JoinKind
	Left  TableExpr
	Right TableExpr
	On    Expr // nil for cross joins
}

// JoinKind enumerates join flavors.
type JoinKind uint8

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinCross
)

func (*TableRef) tableExpr()    {}
func (*SubqueryRef) tableExpr() {}
func (*RMARef) tableExpr()      {}
func (*JoinExpr) tableExpr()    {}

// Expr is a scalar (or aggregate) expression.
type Expr interface{ expr() }

// ColRef references an attribute, optionally qualified.
type ColRef struct {
	Qualifier string
	Name      string
}

// NumberLit is a numeric literal.
type NumberLit struct {
	IsInt bool
	Int   int64
	Float float64
}

// StringLit is a string literal.
type StringLit struct{ Val string }

// BinaryExpr applies an operator: + - * / % = <> < <= > >= AND OR.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// UnaryExpr applies - or NOT.
type UnaryExpr struct {
	Op string
	E  Expr
}

// FuncCall is a scalar or aggregate function application. Star marks
// COUNT(*).
type FuncCall struct {
	Name string // upper-cased
	Star bool
	Args []Expr
}

// InExpr is `E [NOT] IN (a, b, ...)`.
type InExpr struct {
	E    Expr
	List []Expr
	Not  bool
}

// BetweenExpr is `E [NOT] BETWEEN Lo AND Hi` (bounds inclusive).
type BetweenExpr struct {
	E      Expr
	Lo, Hi Expr
	Not    bool
}

// LikeExpr is `E [NOT] LIKE 'pattern'` with % (any run) and _ (any one).
type LikeExpr struct {
	E       Expr
	Pattern string
	Not     bool
}

func (*ColRef) expr()      {}
func (*NumberLit) expr()   {}
func (*StringLit) expr()   {}
func (*BinaryExpr) expr()  {}
func (*UnaryExpr) expr()   {}
func (*FuncCall) expr()    {}
func (*InExpr) expr()      {}
func (*BetweenExpr) expr() {}
func (*LikeExpr) expr()    {}
