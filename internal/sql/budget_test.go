package sql

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/bat"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/rel"
)

// wideRelation registers an n-row float relation large enough that the
// ORDER BY permutation and gather traffic dominate a small budget.
func wideRelation(n int) *rel.Relation {
	f := make([]float64, n)
	for i := range f {
		f[i] = float64((i*7919 + 13) % n)
	}
	return rel.MustNew("t", rel.Schema{{Name: "x", Type: bat.Float}},
		[]*bat.BAT{bat.FromFloats(f)})
}

// TestStatementTenantAccounting checks that a tenant-configured DB
// routes statement arena traffic through the tenant: the metrics show
// the tenant with a nonzero peak, and every statement's charges are
// released when it finishes.
func TestStatementTenantAccounting(t *testing.T) {
	db := NewDB()
	db.SetGovernor(exec.NewGovernor(0, 0))
	db.SetRMAOptions(&core.Options{Tenant: "alice", MemoryBudget: 64 << 20})
	db.Register("t", wideRelation(1<<16))

	if _, err := db.Query(`SELECT x FROM t ORDER BY x LIMIT 5`); err != nil {
		t.Fatal(err)
	}
	m := db.Metrics()
	if len(m.Tenants) != 1 || m.Tenants[0].Tenant != "alice" {
		t.Fatalf("metrics tenants = %+v, want [alice]", m.Tenants)
	}
	alice := m.Tenants[0]
	if alice.PeakBytes == 0 {
		t.Fatal("tenant peak is zero; statement traffic did not charge the tenant")
	}
	if alice.LiveBytes != 0 {
		t.Fatalf("tenant live = %d after the statement closed, want 0", alice.LiveBytes)
	}
	if alice.BudgetBytes != 64<<20 {
		t.Fatalf("tenant budget = %d", alice.BudgetBytes)
	}
	if m.Admitted == 0 {
		t.Fatal("no statements admitted through the governor")
	}
}

// TestStatementBudgetError checks that a statement that cannot fit its
// memory budget fails with the typed error — no panic escapes the SQL
// layer — and strands no bytes against the tenant.
func TestStatementBudgetError(t *testing.T) {
	db := NewDB()
	gov := exec.NewGovernor(0, 0)
	db.SetGovernor(gov)
	db.SetRMAOptions(&core.Options{Tenant: "bob", MemoryBudget: 4096})
	db.Register("t", wideRelation(1<<16))

	_, err := db.Query(`SELECT x FROM t ORDER BY x`)
	if err == nil {
		t.Fatal("64Ki-row sort succeeded under a 4 KiB budget")
	}
	if !errors.Is(err, exec.ErrMemoryBudget) {
		t.Fatalf("error = %v, want ErrMemoryBudget", err)
	}
	if got := gov.Tenant("bob", 0).LiveBytes(); got != 0 {
		t.Fatalf("tenant live = %d after the failed statement, want 0", got)
	}

	// The same query under an adequate budget succeeds on the same DB.
	db.SetRMAOptions(&core.Options{Tenant: "bob", MemoryBudget: 64 << 20})
	if _, err := db.Query(`SELECT x FROM t ORDER BY x LIMIT 3`); err != nil {
		t.Fatal(err)
	}
}

// TestOptionsGovernorUnifiesAccounting is the regression test for the
// split-books bug: an explicit Options.Governor (set via SetRMAOptions,
// without SetGovernor) must carry the statement pipeline, admission,
// and Metrics — not just the RMA table functions — so one tenant's
// budget is enforced on a single set of books.
func TestOptionsGovernorUnifiesAccounting(t *testing.T) {
	gov := exec.NewGovernor(0, 0)
	db := NewDB()
	db.SetRMAOptions(&core.Options{Governor: gov, Tenant: "carol", MemoryBudget: 64 << 20})
	db.Register("t", wideRelation(1<<16))

	if _, err := db.Query(`SELECT x FROM t ORDER BY x LIMIT 5`); err != nil {
		t.Fatal(err)
	}
	// The statement pipeline's sort traffic must land on gov's tenant,
	// and db.Metrics must read the same books.
	if got := gov.Tenant("carol", 0).PeakBytes(); got == 0 {
		t.Fatal("statement traffic bypassed Options.Governor")
	}
	m := db.Metrics()
	if len(m.Tenants) != 1 || m.Tenants[0].Tenant != "carol" {
		t.Fatalf("db.Metrics tenants = %+v, want [carol] from Options.Governor", m.Tenants)
	}
	if m.Admitted == 0 {
		t.Fatal("statement was not admitted through Options.Governor")
	}
	// The process default governor saw none of it.
	for _, tn := range exec.DefaultGovernor().Metrics().Tenants {
		if tn.Tenant == "carol" {
			t.Fatal("tenant carol leaked onto the default governor")
		}
	}
}

// TestStatementAdmissionSerializes runs concurrent scripts through a
// single-slot governor: all must complete (queueing, not failing), and
// the governor must drain to idle.
func TestStatementAdmissionSerializes(t *testing.T) {
	db := NewDB()
	gov := exec.NewGovernor(0, 1)
	db.SetGovernor(gov)
	db.SetRMAOptions(&core.Options{Tenant: "q", MemoryBudget: 64 << 20})
	db.Register("t", wideRelation(1<<12))

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := db.Query(`SELECT x FROM t ORDER BY x LIMIT 2`); err != nil {
				t.Errorf("concurrent query failed: %v", err)
			}
		}()
	}
	wg.Wait()
	m := db.Metrics()
	if m.Running != 0 || m.Queued != 0 || m.ReservedBytes != 0 {
		t.Fatalf("governor not idle after drain: %+v", m)
	}
	if m.Admitted < 4 {
		t.Fatalf("Admitted = %d, want >= 4", m.Admitted)
	}
}
