package sql

import (
	"fmt"
	"math"
	"regexp"
	"strings"

	"repro/internal/bat"
	"repro/internal/rel"
	"repro/internal/store"
)

// source is a row source during execution: a working relation whose
// physical column names are internal ("#0", "#1", ...) plus the symbol
// table that maps user-visible (qualifier, name) pairs to columns.
type source struct {
	rel  *rel.Relation
	syms []sym

	// stored is the open segment reader when the source is a persisted
	// base table; the streaming scan uses its per-segment zone maps to
	// skip row ranges that cannot satisfy pushed-down predicates. Nil
	// for derived or non-persisted sources.
	stored *store.Reader
}

type sym struct {
	qual string
	name string
}

// newSource wraps a relation whose schema names are user-visible under a
// qualifier, renaming columns to internal names.
func newSource(r *rel.Relation, qual string) *source {
	schema := make(rel.Schema, len(r.Schema))
	syms := make([]sym, len(r.Schema))
	for k, a := range r.Schema {
		schema[k] = rel.Attr{Name: internalName(k), Type: a.Type}
		syms[k] = sym{qual: qual, name: a.Name}
	}
	return &source{
		rel:  &rel.Relation{Name: r.Name, Schema: schema, Cols: r.Cols},
		syms: syms,
	}
}

func internalName(k int) string { return fmt.Sprintf("#%d", k) }

// resolve finds the column index for a reference; unqualified names must be
// unambiguous among visible symbols.
func (s *source) resolve(qual, name string) (int, error) {
	found := -1
	for k, sy := range s.syms {
		if sy.name != name {
			continue
		}
		if qual != "" && sy.qual != qual {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("sql: ambiguous column %q", refName(qual, name))
		}
		found = k
	}
	if found < 0 {
		return 0, fmt.Errorf("sql: unknown column %q", refName(qual, name))
	}
	return found, nil
}

func refName(qual, name string) string {
	if qual == "" {
		return name
	}
	return qual + "." + name
}

// compiled is a typed row-wise evaluator.
type compiled struct {
	typ bat.Type
	fn  func(i int) bat.Value
}

// aggregate function names.
var aggFuncs = map[string]rel.AggFunc{
	"COUNT": rel.Count, "SUM": rel.Sum, "AVG": rel.Avg, "MIN": rel.Min, "MAX": rel.Max,
}

// compileExpr builds an evaluator for a scalar expression over the source.
// Aggregate calls are rejected here; the SELECT pipeline rewrites them to
// column references before compiling.
func compileExpr(e Expr, s *source) (*compiled, error) {
	switch x := e.(type) {
	case *NumberLit:
		if x.IsInt {
			v := bat.IntValue(x.Int)
			return &compiled{typ: bat.Int, fn: func(int) bat.Value { return v }}, nil
		}
		v := bat.FloatValue(x.Float)
		return &compiled{typ: bat.Float, fn: func(int) bat.Value { return v }}, nil
	case *StringLit:
		v := bat.StringValue(x.Val)
		return &compiled{typ: bat.String, fn: func(int) bat.Value { return v }}, nil
	case *ColRef:
		if s == nil {
			return nil, fmt.Errorf("sql: column %q not allowed here", refName(x.Qualifier, x.Name))
		}
		k, err := s.resolve(x.Qualifier, x.Name)
		if err != nil {
			return nil, err
		}
		col := s.rel.Cols[k]
		switch col.Type() {
		case bat.Float:
			f, _ := col.Floats()
			return &compiled{typ: bat.Float, fn: func(i int) bat.Value { return bat.FloatValue(f[i]) }}, nil
		case bat.Int:
			iv := col.Vector().Ints()
			return &compiled{typ: bat.Int, fn: func(i int) bat.Value { return bat.IntValue(iv[i]) }}, nil
		default:
			sv := col.Vector().Strings()
			return &compiled{typ: bat.String, fn: func(i int) bat.Value { return bat.StringValue(sv[i]) }}, nil
		}
	case *UnaryExpr:
		in, err := compileExpr(x.E, s)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "-":
			switch in.typ {
			case bat.Int:
				return &compiled{typ: bat.Int, fn: func(i int) bat.Value { return bat.IntValue(-in.fn(i).I) }}, nil
			case bat.Float:
				return &compiled{typ: bat.Float, fn: func(i int) bat.Value { return bat.FloatValue(-in.fn(i).F) }}, nil
			}
			return nil, fmt.Errorf("sql: unary - over string")
		case "NOT":
			if in.typ == bat.String {
				return nil, fmt.Errorf("sql: NOT over string")
			}
			return &compiled{typ: bat.Int, fn: func(i int) bat.Value {
				if truthy(in.fn(i)) {
					return bat.IntValue(0)
				}
				return bat.IntValue(1)
			}}, nil
		}
		return nil, fmt.Errorf("sql: unknown unary operator %q", x.Op)
	case *BinaryExpr:
		return compileBinary(x, s)
	case *FuncCall:
		if _, isAgg := aggFuncs[x.Name]; isAgg {
			return nil, fmt.Errorf("sql: aggregate %s not allowed in this context", x.Name)
		}
		return compileScalarFunc(x, s)
	case *InExpr:
		return compileIn(x, s)
	case *BetweenExpr:
		return compileBetween(x, s)
	case *LikeExpr:
		return compileLike(x, s)
	}
	return nil, fmt.Errorf("sql: unsupported expression %T", e)
}

func compileIn(x *InExpr, s *source) (*compiled, error) {
	e, err := compileExpr(x.E, s)
	if err != nil {
		return nil, err
	}
	items := make([]*compiled, len(x.List))
	for k, le := range x.List {
		c, err := compileExpr(le, s)
		if err != nil {
			return nil, err
		}
		if (c.typ == bat.String) != (e.typ == bat.String) {
			return nil, fmt.Errorf("sql: IN list mixes strings with numbers")
		}
		items[k] = c
	}
	return &compiled{typ: bat.Int, fn: func(i int) bat.Value {
		v := e.fn(i)
		hit := false
		for _, c := range items {
			w := c.fn(i)
			if v.Type == bat.String {
				if v.S == w.S {
					hit = true
					break
				}
			} else if v.AsFloat() == w.AsFloat() {
				hit = true
				break
			}
		}
		if hit != x.Not {
			return bat.IntValue(1)
		}
		return bat.IntValue(0)
	}}, nil
}

func compileBetween(x *BetweenExpr, s *source) (*compiled, error) {
	e, err := compileExpr(x.E, s)
	if err != nil {
		return nil, err
	}
	lo, err := compileExpr(x.Lo, s)
	if err != nil {
		return nil, err
	}
	hi, err := compileExpr(x.Hi, s)
	if err != nil {
		return nil, err
	}
	str := e.typ == bat.String
	if (lo.typ == bat.String) != str || (hi.typ == bat.String) != str {
		return nil, fmt.Errorf("sql: BETWEEN bounds mix strings with numbers")
	}
	return &compiled{typ: bat.Int, fn: func(i int) bat.Value {
		var in bool
		if str {
			v := e.fn(i).S
			in = lo.fn(i).S <= v && v <= hi.fn(i).S
		} else {
			v := e.fn(i).AsFloat()
			in = lo.fn(i).AsFloat() <= v && v <= hi.fn(i).AsFloat()
		}
		if in != x.Not {
			return bat.IntValue(1)
		}
		return bat.IntValue(0)
	}}, nil
}

func compileLike(x *LikeExpr, s *source) (*compiled, error) {
	e, err := compileExpr(x.E, s)
	if err != nil {
		return nil, err
	}
	if e.typ != bat.String {
		return nil, fmt.Errorf("sql: LIKE over non-string expression")
	}
	// Translate the SQL pattern (% = any run, _ = any one) to a regexp
	// anchored at both ends.
	var sb strings.Builder
	sb.WriteByte('^')
	for _, r := range x.Pattern {
		switch r {
		case '%':
			sb.WriteString("(?s).*")
		case '_':
			sb.WriteString("(?s).")
		default:
			sb.WriteString(regexp.QuoteMeta(string(r)))
		}
	}
	sb.WriteByte('$')
	re, err := regexp.Compile(sb.String())
	if err != nil {
		return nil, fmt.Errorf("sql: bad LIKE pattern %q: %v", x.Pattern, err)
	}
	return &compiled{typ: bat.Int, fn: func(i int) bat.Value {
		if re.MatchString(e.fn(i).S) != x.Not {
			return bat.IntValue(1)
		}
		return bat.IntValue(0)
	}}, nil
}

func truthy(v bat.Value) bool {
	switch v.Type {
	case bat.Int:
		return v.I != 0
	case bat.Float:
		return v.F != 0
	}
	return v.S != ""
}

func compileBinary(x *BinaryExpr, s *source) (*compiled, error) {
	l, err := compileExpr(x.L, s)
	if err != nil {
		return nil, err
	}
	r, err := compileExpr(x.R, s)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "AND":
		return &compiled{typ: bat.Int, fn: func(i int) bat.Value {
			if truthy(l.fn(i)) && truthy(r.fn(i)) {
				return bat.IntValue(1)
			}
			return bat.IntValue(0)
		}}, nil
	case "OR":
		return &compiled{typ: bat.Int, fn: func(i int) bat.Value {
			if truthy(l.fn(i)) || truthy(r.fn(i)) {
				return bat.IntValue(1)
			}
			return bat.IntValue(0)
		}}, nil
	case "=", "<>", "<", "<=", ">", ">=":
		return compileCompare(x.Op, l, r)
	case "+", "-", "*", "/", "%":
		return compileArith(x.Op, l, r)
	}
	return nil, fmt.Errorf("sql: unknown operator %q", x.Op)
}

func compileCompare(op string, l, r *compiled) (*compiled, error) {
	if (l.typ == bat.String) != (r.typ == bat.String) {
		return nil, fmt.Errorf("sql: cannot compare %v with %v", l.typ, r.typ)
	}
	var cmp func(i int) int
	if l.typ == bat.String {
		cmp = func(i int) int { return strings.Compare(l.fn(i).S, r.fn(i).S) }
	} else {
		cmp = func(i int) int {
			a, b := l.fn(i).AsFloat(), r.fn(i).AsFloat()
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			}
			return 0
		}
	}
	var test func(c int) bool
	switch op {
	case "=":
		test = func(c int) bool { return c == 0 }
	case "<>":
		test = func(c int) bool { return c != 0 }
	case "<":
		test = func(c int) bool { return c < 0 }
	case "<=":
		test = func(c int) bool { return c <= 0 }
	case ">":
		test = func(c int) bool { return c > 0 }
	case ">=":
		test = func(c int) bool { return c >= 0 }
	}
	return &compiled{typ: bat.Int, fn: func(i int) bat.Value {
		if test(cmp(i)) {
			return bat.IntValue(1)
		}
		return bat.IntValue(0)
	}}, nil
}

func compileArith(op string, l, r *compiled) (*compiled, error) {
	if l.typ == bat.String || r.typ == bat.String {
		return nil, fmt.Errorf("sql: arithmetic over strings")
	}
	bothInt := l.typ == bat.Int && r.typ == bat.Int
	if bothInt && op != "/" {
		var fn func(a, b int64) int64
		switch op {
		case "+":
			fn = func(a, b int64) int64 { return a + b }
		case "-":
			fn = func(a, b int64) int64 { return a - b }
		case "*":
			fn = func(a, b int64) int64 { return a * b }
		case "%":
			fn = func(a, b int64) int64 { return a % b }
		}
		return &compiled{typ: bat.Int, fn: func(i int) bat.Value {
			return bat.IntValue(fn(l.fn(i).I, r.fn(i).I))
		}}, nil
	}
	var fn func(a, b float64) float64
	switch op {
	case "+":
		fn = func(a, b float64) float64 { return a + b }
	case "-":
		fn = func(a, b float64) float64 { return a - b }
	case "*":
		fn = func(a, b float64) float64 { return a * b }
	case "/":
		fn = func(a, b float64) float64 { return a / b }
	case "%":
		fn = math.Mod
	}
	return &compiled{typ: bat.Float, fn: func(i int) bat.Value {
		return bat.FloatValue(fn(l.fn(i).AsFloat(), r.fn(i).AsFloat()))
	}}, nil
}

func compileScalarFunc(x *FuncCall, s *source) (*compiled, error) {
	unary := map[string]func(float64) float64{
		"ABS": math.Abs, "SQRT": math.Sqrt, "FLOOR": math.Floor,
		"CEIL": math.Ceil, "EXP": math.Exp, "LN": math.Log,
	}
	if f, ok := unary[x.Name]; ok {
		if len(x.Args) != 1 {
			return nil, fmt.Errorf("sql: %s takes one argument", x.Name)
		}
		in, err := compileExpr(x.Args[0], s)
		if err != nil {
			return nil, err
		}
		if in.typ == bat.String {
			return nil, fmt.Errorf("sql: %s over string", x.Name)
		}
		return &compiled{typ: bat.Float, fn: func(i int) bat.Value {
			return bat.FloatValue(f(in.fn(i).AsFloat()))
		}}, nil
	}
	if x.Name == "POW" || x.Name == "POWER" {
		if len(x.Args) != 2 {
			return nil, fmt.Errorf("sql: POW takes two arguments")
		}
		a, err := compileExpr(x.Args[0], s)
		if err != nil {
			return nil, err
		}
		b, err := compileExpr(x.Args[1], s)
		if err != nil {
			return nil, err
		}
		return &compiled{typ: bat.Float, fn: func(i int) bat.Value {
			return bat.FloatValue(math.Pow(a.fn(i).AsFloat(), b.fn(i).AsFloat()))
		}}, nil
	}
	return nil, fmt.Errorf("sql: unknown function %s", x.Name)
}

// materialize evaluates an expression for every row into a BAT.
func materialize(c *compiled, n int) *bat.BAT {
	switch c.typ {
	case bat.Float:
		out := make([]float64, n)
		for i := 0; i < n; i++ {
			out[i] = c.fn(i).F
		}
		return bat.FromFloats(out)
	case bat.Int:
		out := make([]int64, n)
		for i := 0; i < n; i++ {
			out[i] = c.fn(i).I
		}
		return bat.FromInts(out)
	default:
		out := make([]string, n)
		for i := 0; i < n; i++ {
			out[i] = c.fn(i).S
		}
		return bat.FromStrings(out)
	}
}

// keyOf serializes an expression structurally, used to match GROUP BY
// expressions against occurrences in SELECT items and HAVING.
func keyOf(e Expr) string {
	switch x := e.(type) {
	case *NumberLit:
		if x.IsInt {
			return fmt.Sprintf("i:%d", x.Int)
		}
		return fmt.Sprintf("f:%g", x.Float)
	case *StringLit:
		return fmt.Sprintf("s:%q", x.Val)
	case *ColRef:
		return "c:" + refName(x.Qualifier, x.Name)
	case *UnaryExpr:
		return "u:" + x.Op + "(" + keyOf(x.E) + ")"
	case *BinaryExpr:
		return "b:" + x.Op + "(" + keyOf(x.L) + "," + keyOf(x.R) + ")"
	case *FuncCall:
		parts := make([]string, len(x.Args))
		for i, a := range x.Args {
			parts[i] = keyOf(a)
		}
		star := ""
		if x.Star {
			star = "*"
		}
		return "fn:" + x.Name + "(" + star + strings.Join(parts, ",") + ")"
	case *InExpr:
		parts := make([]string, len(x.List))
		for i, a := range x.List {
			parts[i] = keyOf(a)
		}
		return fmt.Sprintf("in:%v(%s;%s)", x.Not, keyOf(x.E), strings.Join(parts, ","))
	case *BetweenExpr:
		return fmt.Sprintf("btw:%v(%s;%s;%s)", x.Not, keyOf(x.E), keyOf(x.Lo), keyOf(x.Hi))
	case *LikeExpr:
		return fmt.Sprintf("like:%v(%s;%q)", x.Not, keyOf(x.E), x.Pattern)
	}
	return fmt.Sprintf("%T", e)
}
