package sql

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/bat"
	"repro/internal/core"
	"repro/internal/rel"
)

// This file is the differential SQL fuzz oracle: a seeded random SELECT
// generator executed three ways — streamed, materialized, and through
// the plan cache (twice, so the second run exercises a cache hit on a
// shared plan) — at worker budgets {1, 2, 8}, asserting bitwise
// -identical relations and identical error strings across every leg.
// The three executors are three DBs registered over the *same* column
// storage, so any divergence is the engine's, never the data's.
//
// Iterations and seed come from the environment so CI can pin a smoke
// configuration while longer local runs go deeper:
//
//	RMA_ORACLE_ITERS (default 60)
//	RMA_ORACLE_SEED  (default 1)
//	RMA_ORACLE_SPILL (set to 1 to add two spill-forced legs: streamed
//	                  and materialized executors staging every eligible
//	                  operator to disk through a one-byte threshold)

func oracleEnvInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// oracleCatalog is one generated dataset registered into the executor
// databases. The two spill-forced executors are nil unless
// RMA_ORACLE_SPILL is set.
type oracleCatalog struct {
	stream, mat, cached *DB
	spillS, spillM      *DB
}

// newOracleCatalog generates a fact table f(id, g, v, w, s), a dimension
// d(k, b, l) and a tiny z(zid, zs), with sizes and contents drawn from
// rng. Sizes hover small for iteration speed but periodically land on
// the morsel boundary, where streamed batching bugs live.
func newOracleCatalog(t *testing.T, rng *rand.Rand, round int) *oracleCatalog {
	t.Helper()
	sizes := []int{0, 1, 3, 17, 100, 333}
	if round%5 == 4 {
		sizes = []int{bat.MorselSize - 1, bat.MorselSize, bat.MorselSize + 1}
	}
	n := sizes[rng.Intn(len(sizes))]
	card := 1 + rng.Intn(13) // group-key cardinality
	strs := []string{"a", "ab", "b", "c", ""}

	ids := make([]int64, n)
	gs := make([]int64, n)
	vs := make([]float64, n)
	ws := make([]float64, n)
	ss := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		gs[i] = int64(rng.Intn(card))
		vs[i] = float64(rng.Intn(400)-200) * 0.25
		ws[i] = float64(rng.Intn(1000)) * 0.0625
		ss[i] = strs[rng.Intn(len(strs))]
	}
	fact, err := rel.New("f", rel.Schema{
		{Name: "id", Type: bat.Int},
		{Name: "g", Type: bat.Int},
		{Name: "v", Type: bat.Float},
		{Name: "w", Type: bat.Float},
		{Name: "s", Type: bat.String},
	}, []*bat.BAT{bat.FromInts(ids), bat.FromInts(gs), bat.FromFloats(vs), bat.FromFloats(ws), bat.FromStrings(ss)})
	if err != nil {
		t.Fatal(err)
	}

	dn := rng.Intn(60) // may be zero: joins against empty build sides
	ks := make([]int64, dn)
	bs := make([]float64, dn)
	ls := make([]string, dn)
	for j := 0; j < dn; j++ {
		ks[j] = int64(rng.Intn(card + 3)) // some keys unmatched
		bs[j] = float64(rng.Intn(40)) * 0.5
		ls[j] = fmt.Sprintf("L%d", rng.Intn(5))
	}
	dim, err := rel.New("d", rel.Schema{
		{Name: "k", Type: bat.Int},
		{Name: "b", Type: bat.Float},
		{Name: "l", Type: bat.String},
	}, []*bat.BAT{bat.FromInts(ks), bat.FromFloats(bs), bat.FromStrings(ls)})
	if err != nil {
		t.Fatal(err)
	}

	tiny, err := rel.New("z", rel.Schema{
		{Name: "zid", Type: bat.Int},
		{Name: "zs", Type: bat.String},
	}, []*bat.BAT{bat.FromInts([]int64{1, 2, 3}), bat.FromStrings([]string{"x", "y", "x"})})
	if err != nil {
		t.Fatal(err)
	}

	oc := &oracleCatalog{stream: NewDB(), mat: NewDB(), cached: NewDB()}
	oc.stream.SetPlanCache(false)
	oc.mat.SetPlanCache(false)
	oc.mat.SetStreaming(false)
	dbs := []*DB{oc.stream, oc.mat, oc.cached}
	if os.Getenv("RMA_ORACLE_SPILL") == "1" {
		// Spill-forced legs: a one-byte threshold sends every
		// estimate-gated operator to its disk path on both pipelines.
		oc.spillS, oc.spillM = NewDB(), NewDB()
		oc.spillS.SetPlanCache(false)
		oc.spillS.SetSpill(t.TempDir(), 1)
		oc.spillM.SetPlanCache(false)
		oc.spillM.SetStreaming(false)
		oc.spillM.SetSpill(t.TempDir(), 1)
		dbs = append(dbs, oc.spillS, oc.spillM)
	}
	for name, r := range map[string]*rel.Relation{"f": fact, "d": dim, "z": tiny} {
		for _, db := range dbs {
			db.Register(name, r)
		}
	}
	return oc
}

// genPredicate draws one WHERE/ON-residual conjunct. qual qualifies the
// fact columns when the query joins.
func genPredicate(rng *rand.Rand, qual string) string {
	c := func(col string) string {
		if qual == "" {
			return col
		}
		return qual + "." + col
	}
	switch rng.Intn(8) {
	case 0:
		return fmt.Sprintf("%s > %g", c("v"), float64(rng.Intn(200)-100)*0.5)
	case 1:
		return fmt.Sprintf("%s <= %g", c("w"), float64(rng.Intn(60)))
	case 2:
		return fmt.Sprintf("%s = %d", c("g"), rng.Intn(13))
	case 3:
		pat := []string{"'a%'", "'%b'", "'%a%'", "'a_'"}[rng.Intn(4)]
		return fmt.Sprintf("%s LIKE %s", c("s"), pat)
	case 4:
		return fmt.Sprintf("%s %% %d = %d", c("id"), 2+rng.Intn(5), rng.Intn(2))
	case 5:
		lo := rng.Intn(8)
		return fmt.Sprintf("%s BETWEEN %d AND %d", c("g"), lo, lo+rng.Intn(6))
	case 6:
		return fmt.Sprintf("%s IN ('a', 'c')", c("s"))
	default:
		return fmt.Sprintf("NOT %s < %g", c("v"), float64(rng.Intn(100)-50))
	}
}

// genQuery draws one SELECT. Roughly 8% of queries are deliberately
// invalid (unknown columns, string aggregation, HAVING without
// aggregates) so error-string parity is fuzzed too.
func genQuery(rng *rand.Rand) string {
	if rng.Intn(12) == 0 {
		return []string{
			"SELECT nosuch FROM f;",
			"SELECT SUM(s) AS x FROM f;",
			"SELECT id FROM f HAVING id > 1;",
			"SELECT f.id, d.b FROM f LEFT JOIN d ON f.v > d.b;",
			"SELECT v FROM f ORDER BY nosuch;",
		}[rng.Intn(5)]
	}

	var from, qual string
	joined := false
	switch r := rng.Intn(10); {
	case r < 6:
		from, qual = "f", ""
	case r < 9:
		kind := "JOIN"
		if rng.Intn(3) == 0 {
			kind = "LEFT JOIN"
		}
		from, qual, joined = fmt.Sprintf("f %s d ON f.g = d.k", kind), "f", true
	default:
		from, qual, joined = "f CROSS JOIN z", "f", true
	}

	var where string
	if np := rng.Intn(3); np > 0 {
		preds := make([]string, np)
		for i := range preds {
			preds[i] = genPredicate(rng, qual)
		}
		where = " WHERE " + strings.Join(preds, " AND ")
	}

	c := func(col string) string {
		if qual == "" {
			return col
		}
		return qual + "." + col
	}

	if rng.Intn(3) == 0 { // aggregate mode
		key := c("g")
		if strings.Contains(from, "JOIN d") && rng.Intn(2) == 0 {
			key = "d.l"
		}
		aggPool := []string{
			"COUNT(*) AS cnt",
			fmt.Sprintf("SUM(%s) AS sv", c("v")),
			fmt.Sprintf("AVG(%s) AS aw", c("w")),
			fmt.Sprintf("MIN(%s) AS mv", c("v")),
			fmt.Sprintf("MAX(%s) AS xw", c("w")),
		}
		na := 1 + rng.Intn(3)
		items := []string{key + " AS gk"}
		for i := 0; i < na; i++ {
			items = append(items, aggPool[(rng.Intn(len(aggPool))+i)%len(aggPool)])
		}
		q := fmt.Sprintf("SELECT %s FROM %s%s GROUP BY %s", strings.Join(items, ", "), from, where, key)
		if rng.Intn(3) == 0 {
			q += fmt.Sprintf(" HAVING COUNT(*) > %d", rng.Intn(4))
		}
		q += " ORDER BY gk"
		if rng.Intn(3) == 0 {
			q += fmt.Sprintf(" LIMIT %d", rng.Intn(20))
		}
		return q + ";"
	}

	// Plain projection mode.
	itemPool := []string{
		c("id") + " AS a1",
		c("v") + " AS a2",
		fmt.Sprintf("%s * 2 + %s AS a3", c("v"), c("w")),
		fmt.Sprintf("ABS(%s) AS a4", c("v")),
		c("s") + " AS a5",
		fmt.Sprintf("%s + %s AS a6", c("id"), c("g")),
	}
	if joined && strings.Contains(from, "JOIN d") {
		itemPool = append(itemPool, "d.b AS a7", "d.l AS a8")
	}
	if strings.Contains(from, "CROSS JOIN z") {
		itemPool = append(itemPool, "z.zs AS a9")
	}
	ni := 1 + rng.Intn(3)
	start := rng.Intn(len(itemPool))
	var items, orderables []string
	for i := 0; i < ni; i++ {
		it := itemPool[(start+i)%len(itemPool)]
		items = append(items, it)
		orderables = append(orderables, it[strings.LastIndex(it, " ")+1:])
	}
	distinct := ""
	if rng.Intn(5) == 0 {
		distinct = "DISTINCT "
	}
	q := fmt.Sprintf("SELECT %s%s FROM %s%s", distinct, strings.Join(items, ", "), from, where)
	if rng.Intn(2) == 0 {
		// No tiebreak needed: every executor is deterministic, so equal
		// sort keys keep their input order identically on every leg.
		q += " ORDER BY " + orderables[rng.Intn(len(orderables))]
		if rng.Intn(2) == 0 {
			q += " DESC"
		}
	}
	if rng.Intn(3) == 0 {
		q += fmt.Sprintf(" LIMIT %d", rng.Intn(30))
	}
	return q + ";"
}

// TestDifferentialOracle is the oracle loop. Every generated query runs
// four legs per worker budget — streamed, materialized, cached (cold),
// cached (hit), plus two spill-forced legs under RMA_ORACLE_SPILL —
// with the streamed leg at workers 1 doubling as the
// cross-worker reference. Any divergence in bits or error text fails
// with the seed, round, and statement needed to replay it.
func TestDifferentialOracle(t *testing.T) {
	iters := oracleEnvInt("RMA_ORACLE_ITERS", 60)
	seed := int64(oracleEnvInt("RMA_ORACLE_SEED", 1))
	rng := rand.New(rand.NewSource(seed))

	var oc *oracleCatalog
	workers := []int{1, 2, 8}
	for round := 0; round < iters; round++ {
		if round%25 == 0 || oc == nil {
			oc = newOracleCatalog(t, rng, round/25)
		}
		q := genQuery(rng)
		fail := func(format string, args ...any) {
			t.Fatalf("seed=%d round=%d\nquery: %s\n%s", seed, round, q, fmt.Sprintf(format, args...))
		}

		var ref *rel.Relation
		var refErr error
		for _, w := range workers {
			opts := &core.Options{Parallelism: w}
			smRes, smErr := oc.stream.ExecWith(q, opts)
			matRes, matErr := oc.mat.ExecWith(q, opts)
			c1Res, c1Err := oc.cached.ExecWith(q, opts)
			c2Res, c2Err := oc.cached.ExecWith(q, opts)

			type oracleLeg struct {
				name string
				res  *rel.Relation
				err  error
			}
			legs := []oracleLeg{
				{"streamed", smRes, smErr},
				{"materialized", matRes, matErr},
				{"cached-cold", c1Res, c1Err},
				{"cached-hit", c2Res, c2Err},
			}
			if oc.spillS != nil {
				ssRes, ssErr := oc.spillS.ExecWith(q, opts)
				sgRes, sgErr := oc.spillM.ExecWith(q, opts)
				legs = append(legs,
					oracleLeg{"spilled-streamed", ssRes, ssErr},
					oracleLeg{"spilled-materialized", sgRes, sgErr})
			}
			if w == workers[0] {
				ref, refErr = smRes, smErr
			}
			for _, leg := range legs {
				if (refErr == nil) != (leg.err == nil) {
					fail("workers=%d %s: error divergence: ref=%v leg=%v", w, leg.name, refErr, leg.err)
				}
				if refErr != nil {
					if refErr.Error() != leg.err.Error() {
						fail("workers=%d %s: error strings differ:\n  ref: %s\n  leg: %s", w, leg.name, refErr, leg.err)
					}
					continue
				}
				if err := equalBits(ref, leg.res); err != nil {
					fail("workers=%d %s: %v", w, leg.name, err)
				}
			}
		}
	}

	// The cached executor must actually have been exercising its cache:
	// the repeated leg guarantees at least one hit per valid query.
	if m := oc.cached.Metrics().PlanCache; m.Hits == 0 {
		t.Fatal("oracle ran without a single plan-cache hit")
	}
}
