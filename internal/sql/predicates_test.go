package sql

import "testing"

func predDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	if _, err := db.Exec(`
CREATE TABLE p (id INT, name VARCHAR(20), score DOUBLE);
INSERT INTO p VALUES
  (1, 'Ann', 2.5), (2, 'Bob', 3.0), (3, 'Carol', 1.0),
  (4, 'Anton', 4.5), (5, 'Dan', 2.0)`); err != nil {
		t.Fatal(err)
	}
	return db
}

func countRows(t *testing.T, db *DB, q string) int {
	t.Helper()
	res, err := db.Query(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return res.NumRows()
}

func TestInPredicate(t *testing.T) {
	db := predDB(t)
	if n := countRows(t, db, `SELECT id FROM p WHERE id IN (1, 3, 9)`); n != 2 {
		t.Errorf("IN ints = %d", n)
	}
	if n := countRows(t, db, `SELECT id FROM p WHERE name IN ('Ann', 'Dan')`); n != 2 {
		t.Errorf("IN strings = %d", n)
	}
	if n := countRows(t, db, `SELECT id FROM p WHERE id NOT IN (1, 3)`); n != 3 {
		t.Errorf("NOT IN = %d", n)
	}
	// Numeric coercion inside the list: float column vs int literals.
	if n := countRows(t, db, `SELECT id FROM p WHERE score IN (3, 2)`); n != 2 {
		t.Errorf("IN mixed numerics = %d", n)
	}
	if _, err := db.Query(`SELECT id FROM p WHERE id IN ('x', 1)`); err == nil {
		t.Error("mixed-type IN list accepted")
	}
}

func TestBetweenPredicate(t *testing.T) {
	db := predDB(t)
	if n := countRows(t, db, `SELECT id FROM p WHERE score BETWEEN 2 AND 3`); n != 3 {
		t.Errorf("BETWEEN = %d", n) // 2.5, 3.0, 2.0
	}
	if n := countRows(t, db, `SELECT id FROM p WHERE score NOT BETWEEN 2 AND 3`); n != 2 {
		t.Errorf("NOT BETWEEN = %d", n)
	}
	if n := countRows(t, db, `SELECT id FROM p WHERE name BETWEEN 'Ann' AND 'Bob'`); n != 3 {
		t.Errorf("string BETWEEN = %d", n) // Ann, Anton, Bob
	}
	if _, err := db.Query(`SELECT id FROM p WHERE score BETWEEN 'a' AND 3`); err == nil {
		t.Error("mixed-type BETWEEN accepted")
	}
	// BETWEEN binds the AND to its bounds, not to the boolean level.
	if n := countRows(t, db, `SELECT id FROM p WHERE score BETWEEN 2 AND 3 AND id < 3`); n != 2 {
		t.Errorf("BETWEEN + AND = %d", n)
	}
}

func TestLikePredicate(t *testing.T) {
	db := predDB(t)
	if n := countRows(t, db, `SELECT id FROM p WHERE name LIKE 'An%'`); n != 2 {
		t.Errorf("prefix LIKE = %d", n) // Ann, Anton
	}
	if n := countRows(t, db, `SELECT id FROM p WHERE name LIKE '%n'`); n != 3 {
		t.Errorf("suffix LIKE = %d", n) // Ann, Anton, Dan
	}
	if n := countRows(t, db, `SELECT id FROM p WHERE name LIKE '_ob'`); n != 1 {
		t.Errorf("underscore LIKE = %d", n) // Bob
	}
	if n := countRows(t, db, `SELECT id FROM p WHERE name NOT LIKE '%a%'`); n != 3 {
		t.Errorf("NOT LIKE = %d", n) // Ann, Bob, Anton (no lowercase a)
	}
	// Regexp metacharacters in the pattern are literal.
	if _, err := db.Exec(`INSERT INTO p VALUES (6, 'x.y', 0.0)`); err != nil {
		t.Fatal(err)
	}
	if n := countRows(t, db, `SELECT id FROM p WHERE name LIKE 'x.y'`); n != 1 {
		t.Errorf("literal dot LIKE = %d", n)
	}
	if n := countRows(t, db, `SELECT id FROM p WHERE name LIKE 'x_y'`); n != 1 {
		t.Errorf("x_y LIKE = %d", n)
	}
	if _, err := db.Query(`SELECT id FROM p WHERE score LIKE '2%'`); err == nil {
		t.Error("LIKE over numeric accepted")
	}
	if _, err := db.Query(`SELECT id FROM p WHERE name LIKE name`); err == nil {
		t.Error("non-literal LIKE pattern accepted")
	}
}

func TestPredicatesInJoinAndHaving(t *testing.T) {
	db := predDB(t)
	// Residual IN predicate on a join.
	n := countRows(t, db, `
SELECT a.id FROM p a JOIN p b ON a.id = b.id WHERE a.name IN ('Ann', 'Bob')`)
	if n != 2 {
		t.Errorf("IN over join = %d", n)
	}
	// BETWEEN over an aggregate in HAVING.
	res, err := db.Query(`
SELECT name, SUM(score) AS s FROM p GROUP BY name HAVING SUM(score) BETWEEN 2 AND 3`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 { // 2.5, 3.0, 2.0
		t.Errorf("HAVING BETWEEN = %d", res.NumRows())
	}
}

func TestNotWithoutPredicateKeywordStillParses(t *testing.T) {
	db := predDB(t)
	if n := countRows(t, db, `SELECT id FROM p WHERE NOT (id = 1)`); n != 4 {
		t.Errorf("NOT (...) = %d", n)
	}
}
