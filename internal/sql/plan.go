package sql

import (
	"errors"
	"fmt"

	"repro/internal/bat"
	"repro/internal/rel"

	"repro/internal/exec"
)

// This file is the logical planner of the streaming SELECT pipeline. It
// shapes the FROM tree into a left-deep stream plan (the left spine
// streams, every join's right side is materialized and indexed), pushes
// WHERE conjuncts down to the lowest node that can evaluate them, prunes
// columns nothing above the scans references, and dry-compiles every
// expression the runtime will evaluate per morsel so streaming execution
// cannot hit a compile error the materializing path would have reported
// from a different place.
//
// The planner is conservative by construction: any statement shape or
// compile problem it cannot prove it will execute bitwise-identically to
// the materializing path surfaces as errNeedMaterialize, and execSelect
// falls back to the original code path. Falling back re-evaluates the
// FROM clause — wasteful but read-only — and guarantees user-facing
// errors always come from exactly one implementation.

// errNeedMaterialize routes a SELECT to the materializing pipeline.
var errNeedMaterialize = errors.New("sql: statement needs the materializing path")

// streamNode is one node of the stream plan: either a scan leaf over a
// materialized source, or a join whose left input streams and whose
// right side is the materialized build side.
type streamNode struct {
	// Leaf.
	leaf *source
	pred []Expr // WHERE conjuncts fused into the scan's per-morsel pass

	// Join.
	left      *streamNode
	right     *source
	kind      JoinKind
	on        Expr
	rightPred []Expr // conjuncts filtering the build side before indexing
	lk, rk    []Expr // equi-key expressions (probe side, build side)
	residual  []Expr // non-equi remainder of ON, filtered after the join
	post      []Expr // WHERE conjuncts that could not sink below this node

	// Resolved by the planner.
	allSyms  []sym      // full (unpruned) output symbols, for classification
	outSyms  []sym      // emitted symbols after column pruning
	outTypes []bat.Type // types of the emitted columns
	needed   []int      // leaf/right-side column indexes kept by pruning

	// partKeys is the partitioning property of this node's output: the
	// canonical forms of the probe-side equi keys when the node is an
	// equi-join (whose build side the runtime may radix-partition into
	// shards on those key hashes). A downstream group-by over the same
	// keys rides that partitioning instead of re-shuffling.
	partKeys []string

	bschema rel.Schema // cached internal-name schema for morsel sources
}

// planNode recursively shapes a table expression: joins keep streaming
// down their left spine while their right sides materialize through the
// ordinary FROM machinery (which may itself stream a subquery); every
// other table expression becomes a scan leaf over its materialized —
// for base tables, zero-copy — source.
func (db *DB) planNode(c *exec.Ctx, te TableExpr) (*streamNode, error) {
	if x, ok := te.(*JoinExpr); ok {
		left, err := db.planNode(c, x.Left)
		if err != nil {
			return nil, err
		}
		right, err := db.buildFrom(c, x.Right)
		if err != nil {
			return nil, err
		}
		n := &streamNode{left: left, right: right, kind: x.Kind, on: x.On}
		n.allSyms = append(append([]sym(nil), left.allSyms...), right.syms...)
		return n, nil
	}
	src, err := db.buildFrom(c, te)
	if err != nil {
		return nil, err
	}
	return &streamNode{leaf: src, allSyms: src.syms}, nil
}

// push sinks one WHERE conjunct to the lowest node that can evaluate it.
// Probe-side conjuncts descend into the left subtree — safe under LEFT
// JOIN too, since every output row of a probe row carries that row's own
// column values, so filtering before or after the join keeps the same
// rows in the same order. Build-side conjuncts filter the build side
// before it is indexed, for inner and cross joins only: a left join must
// still emit probe rows whose matches would have been filtered away.
// Everything else stays a post-join filter on this node's output.
func (n *streamNode) push(e Expr) {
	if n.leaf != nil {
		n.pred = append(n.pred, e)
		return
	}
	switch sideOf(e, &source{syms: n.left.allSyms}, &source{syms: n.right.syms}) {
	case 1:
		n.left.push(e)
	case 2:
		if n.kind == JoinLeft {
			n.post = append(n.post, e)
			return
		}
		n.rightPred = append(n.rightPred, e)
	default:
		n.post = append(n.post, e)
	}
}

// walkOns visits every join node's ON expression.
func (n *streamNode) walkOns(f func(Expr)) {
	if n.leaf != nil {
		return
	}
	n.left.walkOns(f)
	if n.on != nil {
		f(n.on)
	}
}

// prune keeps only the columns some expression above the scans
// references. The rule is conservative: a symbol survives when any
// collected column reference matches its name (and qualifier, when the
// reference carries one) — unqualified references keep every candidate,
// so ambiguity errors surface exactly as in the materializing path.
func (n *streamNode) prune(refs []*ColRef) {
	if n.leaf != nil {
		n.needed, n.outSyms, n.outTypes = neededCols(refs, n.leaf)
		return
	}
	n.left.prune(refs)
	var rs []sym
	var rt []bat.Type
	n.needed, rs, rt = neededCols(refs, n.right)
	n.outSyms = append(append([]sym(nil), n.left.outSyms...), rs...)
	n.outTypes = append(append([]bat.Type(nil), n.left.outTypes...), rt...)
}

func neededCols(refs []*ColRef, s *source) (idx []int, syms []sym, types []bat.Type) {
	for k, sy := range s.syms {
		used := false
		for _, r := range refs {
			if r.Name == sy.name && (r.Qualifier == "" || r.Qualifier == sy.qual) {
				used = true
				break
			}
		}
		if !used {
			continue
		}
		idx = append(idx, k)
		syms = append(syms, sy)
		types = append(types, s.rel.Schema[k].Type)
	}
	return idx, syms, types
}

// check splits every ON clause into equi keys and residual, then
// dry-compiles all the expressions the streaming runtime will compile
// per morsel against zero-row prototype sources carrying the final
// (pruned) symbol tables. A failure means the runtime could error where
// the materializing path reports differently, so the caller falls back.
func (n *streamNode) check() error {
	if n.leaf != nil {
		proto := protoOf(n.leaf)
		for _, p := range n.pred {
			if _, err := compileExpr(p, proto); err != nil {
				return err
			}
		}
		return nil
	}
	if err := n.left.check(); err != nil {
		return err
	}
	rightProto := protoOf(n.right)
	for _, p := range n.rightPred {
		if _, err := compileExpr(p, rightProto); err != nil {
			return err
		}
	}
	if n.kind != JoinCross {
		n.lk, n.rk, n.residual = extractEqui(n.on, &source{syms: n.left.outSyms}, &source{syms: n.right.syms})
		if len(n.lk) == 0 {
			if n.kind == JoinLeft {
				return fmt.Errorf("sql: LEFT JOIN requires an equi-join condition")
			}
			// Nested-loop fallback: cross then filter on the whole ON.
			n.residual = []Expr{n.on}
		}
		for _, e := range n.lk {
			n.partKeys = append(n.partKeys, keyOf(e))
		}
	}
	leftProto := protoSource(n.left.outSyms, n.left.outTypes)
	for _, e := range n.lk {
		if _, err := compileExpr(e, leftProto); err != nil {
			return err
		}
	}
	for _, e := range n.rk {
		if _, err := compileExpr(e, rightProto); err != nil {
			return err
		}
	}
	outProto := protoSource(n.outSyms, n.outTypes)
	for _, e := range n.residual {
		if _, err := compileExpr(e, outProto); err != nil {
			return err
		}
	}
	for _, e := range n.post {
		if _, err := compileExpr(e, outProto); err != nil {
			return err
		}
	}
	return nil
}

// finalize pre-builds the morsel schema of every node in the tree.
// planStream calls it once planning succeeds, so concurrent executions
// of a shared (cached) plan never race on the lazily built bschema.
func (n *streamNode) finalize() {
	n.batchSchema()
	if n.left != nil {
		n.left.finalize()
	}
}

// batchSchema returns the node's internal-name schema for wrapping
// morsels as expression sources, built once.
func (n *streamNode) batchSchema() rel.Schema {
	if n.bschema == nil {
		n.bschema = make(rel.Schema, len(n.outSyms))
		for k := range n.outSyms {
			n.bschema[k] = rel.Attr{Name: internalName(k), Type: n.outTypes[k]}
		}
	}
	return n.bschema
}

// batchSource wraps one morsel as a source so the ordinary expression
// compiler evaluates against it with row indexes local to the morsel.
func (n *streamNode) batchSource(b *bat.Batch) *source {
	cols := make([]*bat.BAT, b.NumCols())
	for k := range cols {
		cols[k] = bat.FromVector(b.Col(k))
	}
	return &source{rel: &rel.Relation{Schema: n.batchSchema(), Cols: cols}, syms: n.outSyms}
}

// protoSource builds a zero-row source with the given symbols and types:
// a compile target for plan-time checks, since name resolution and
// typing never depend on row data.
func protoSource(syms []sym, types []bat.Type) *source {
	schema := make(rel.Schema, len(syms))
	cols := make([]*bat.BAT, len(syms))
	for k := range syms {
		schema[k] = rel.Attr{Name: internalName(k), Type: types[k]}
		switch types[k] {
		case bat.Int:
			cols[k] = bat.FromInts(nil)
		case bat.String:
			cols[k] = bat.FromStrings(nil)
		default:
			cols[k] = bat.FromFloats(nil)
		}
	}
	return &source{rel: &rel.Relation{Schema: schema, Cols: cols}, syms: syms}
}

// protoOf is protoSource over an existing source's symbols and types —
// used so plan-time compiles never touch the source's columns (binding a
// sparse column would densify it just for a type check).
func protoOf(s *source) *source {
	types := make([]bat.Type, len(s.rel.Schema))
	for k := range s.rel.Schema {
		types[k] = s.rel.Schema[k].Type
	}
	return protoSource(s.syms, types)
}

func typesOfSchema(s rel.Schema) []bat.Type {
	types := make([]bat.Type, len(s))
	for k := range s {
		types[k] = s[k].Type
	}
	return types
}

// selectPlan is a planned streaming SELECT: the stream tree plus the
// pre-resolved projection or grouping metadata.
type selectPlan struct {
	root  *streamNode
	items []SelectItem // star-expanded working copy (the AST is never mutated)

	group *groupPlan // set when the statement aggregates

	// Non-aggregating projection metadata (group == nil).
	outSchema rel.Schema
	outSyms   []sym
}

// groupPlan carries the streaming aggregation shape: grouping key
// expressions with their resolved names/types, and one AggSpec plus
// input expression (nil for COUNT(*)) per aggregate call.
type groupPlan struct {
	aggs     []*FuncCall
	keyNames []string
	keyTypes []bat.Type
	specs    []rel.AggSpec
	argExprs []Expr

	// coPart is set when the grouping keys are exactly the root join's
	// partitioning keys (streamNode.partKeys): the rows reaching the
	// group stage are already hash-partitioned on them, so the stage may
	// shard its accumulators on the same key hashes — parallel grouping
	// with no re-shuffle — instead of folding into a single table.
	coPart bool
}

// planStream plans one SELECT for streaming execution. Any error —
// unsupported shape, unresolved column, type problem — makes execSelect
// fall back to the materializing path, which either handles the shape or
// reports the error itself.
func (db *DB) planStream(c *exec.Ctx, sel *SelectStmt) (*selectPlan, error) {
	root, err := db.planNode(c, sel.From)
	if err != nil {
		return nil, err
	}
	if sel.Where != nil {
		for _, cj := range flattenAnd(sel.Where) {
			root.push(cj)
		}
	}

	// Star expansion against the full FROM symbols, exactly as the
	// materializing path expands them.
	var items []SelectItem
	for _, it := range sel.Items {
		if !it.Star {
			items = append(items, it)
			continue
		}
		for _, sy := range root.allSyms {
			items = append(items, SelectItem{
				Expr: &ColRef{Qualifier: sy.qual, Name: sy.name},
				As:   sy.name,
			})
		}
	}

	// Column pruning: a scan or build-side column survives only when the
	// items, WHERE, grouping, HAVING, ORDER BY, or some ON clause
	// references it — unused columns never enter a morsel.
	var refs []*ColRef
	for _, it := range items {
		refs = collectCols(it.Expr, refs)
	}
	if sel.Where != nil {
		refs = collectCols(sel.Where, refs)
	}
	for _, g := range sel.GroupBy {
		refs = collectCols(g, refs)
	}
	if sel.Having != nil {
		refs = collectCols(sel.Having, refs)
	}
	for _, ob := range sel.OrderBy {
		refs = collectCols(ob.Expr, refs)
	}
	root.walkOns(func(on Expr) { refs = collectCols(on, refs) })
	root.prune(refs)
	if err := root.check(); err != nil {
		return nil, err
	}
	root.finalize()

	plan := &selectPlan{root: root, items: items}
	proto := protoSource(root.outSyms, root.outTypes)
	aggs := findAggregates(items, sel.Having)
	if len(aggs) > 0 || len(sel.GroupBy) > 0 {
		gp, err := planGroup(sel, aggs, proto)
		if err != nil {
			return nil, err
		}
		gp.coPart = coPartitioned(root.partKeys, sel.GroupBy)
		plan.group = gp
		return plan, nil
	}
	if sel.Having != nil {
		return nil, fmt.Errorf("sql: HAVING without aggregation")
	}
	schema, syms, _, err := projectMeta(items, proto)
	if err != nil {
		return nil, err
	}
	plan.outSchema, plan.outSyms = schema, syms
	if len(sel.OrderBy) > 0 {
		// The materializing path can fall back to sorting on
		// pre-projection columns; the streaming path discards them, so it
		// only takes ORDER BY that compiles against the projected output.
		outProto := protoSource(syms, typesOfSchema(schema))
		for _, ob := range sel.OrderBy {
			if _, err := compileExpr(ob.Expr, outProto); err != nil {
				return nil, err
			}
		}
	}
	return plan, nil
}

// coPartitioned reports whether the grouping keys and the partitioning
// keys are the same set of expressions (canonical-form comparison):
// only then does every row of one group reach exactly one shard of the
// existing partitioning, so the group stage can shard without its own
// shuffle.
func coPartitioned(partKeys []string, groupBy []Expr) bool {
	if len(groupBy) == 0 || len(partKeys) != len(groupBy) {
		return false
	}
	part := make(map[string]bool, len(partKeys))
	for _, k := range partKeys {
		part[k] = true
	}
	for _, g := range groupBy {
		if !part[keyOf(g)] {
			return false
		}
	}
	return true
}

// planGroup mirrors groupSource's shape checks and resolves the key and
// aggregate-input expressions the streaming group stage evaluates per
// morsel.
func planGroup(sel *SelectStmt, aggs []*FuncCall, proto *source) (*groupPlan, error) {
	gp := &groupPlan{aggs: aggs}
	for k, g := range sel.GroupBy {
		comp, err := compileExpr(g, proto)
		if err != nil {
			return nil, err
		}
		gp.keyNames = append(gp.keyNames, fmt.Sprintf("g%d", k))
		gp.keyTypes = append(gp.keyTypes, comp.typ)
	}
	if len(aggs) == 0 {
		// GROUP BY without aggregates is rejected by the grouping
		// operator; let the materializing path report it.
		return nil, fmt.Errorf("rel: group by without aggregates")
	}
	gp.specs = make([]rel.AggSpec, len(aggs))
	gp.argExprs = make([]Expr, len(aggs))
	for k, a := range aggs {
		fn := aggFuncs[a.Name]
		spec := rel.AggSpec{Func: fn, As: fmt.Sprintf("agg%d", k)}
		if !a.Star {
			if len(a.Args) != 1 {
				return nil, fmt.Errorf("sql: %s takes one argument", a.Name)
			}
			comp, err := compileExpr(a.Args[0], proto)
			if err != nil {
				return nil, err
			}
			if comp.typ == bat.String {
				return nil, fmt.Errorf("sql: aggregate %s over non-numeric input", a.Name)
			}
			spec.Attr = fmt.Sprintf("a%d", k)
			gp.argExprs[k] = a.Args[0]
		} else if fn != rel.Count {
			return nil, fmt.Errorf("sql: %s(*) not supported", a.Name)
		}
		gp.specs[k] = spec
	}
	return gp, nil
}
