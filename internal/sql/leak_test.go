package sql

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
)

// TestLimitEarlyStopNoArenaLeak audits the streaming LIMIT path for
// strandable tenant bytes. An early-stopped LIMIT closes the pipeline
// before the source drains, so anything an operator materialized at
// open — in particular the build side a pushed-down filter gathered
// into arena buffers — must be handed back in close, not left for the
// arena teardown to settle silently.
//
// The invariant checked per element domain: after the statement, the
// tenant's allocs minus frees equals exactly the buffers retained by
// the result relation (one per result column of that domain), and no
// live bytes remain. Before the fix the filtered build side of
// joinStream/crossStream was never freed, leaving one stranded buffer
// per build-side column (u: +1 int64 +1 string; s: +1 float +1 int64
// +1 string) for the whole statement lifetime.
func TestLimitEarlyStopNoArenaLeak(t *testing.T) {
	db := streamDB(t, 1<<15)
	gov := exec.NewGovernor(0, 0)

	cases := []struct {
		name, query           string
		floats, int64s, strse int64 // result-retained buffers per domain
	}{
		{
			// crossStream with a pushed-down filter on u (uid BIGINT,
			// utag VARCHAR): both filtered columns leaked before the fix.
			name:   "cross-filtered",
			query:  "SELECT t.id, u.utag FROM t CROSS JOIN u WHERE u.utag = 'a' AND t.id % 7 = 0 LIMIT 50",
			int64s: 1, strse: 1,
		},
		{
			// joinStream with a pushed-down filter on s (k BIGINT,
			// bonus DOUBLE, label VARCHAR): all three leaked.
			name:   "join-filtered",
			query:  "SELECT t.id, t.val, s.bonus FROM t JOIN s ON t.grp = s.k WHERE s.bonus > 2 LIMIT 10",
			floats: 2, int64s: 1,
		},
		{
			// No pushed-down build filter: the already-clean shape stays
			// clean (guards against the fix double-freeing shared cols).
			name:   "left-join-unfiltered",
			query:  "SELECT t.id, s.label FROM t LEFT JOIN s ON t.grp = s.k LIMIT 25",
			int64s: 1, strse: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tenant := "leak-" + tc.name // fresh principal per case: clean counters
			res, err := db.QueryWith(tc.query, &core.Options{Tenant: tenant, Governor: gov})
			if err != nil {
				t.Fatalf("%s: %v", tc.query, err)
			}
			if res.NumRows() == 0 {
				t.Fatalf("%s: empty result, probe is vacuous", tc.query)
			}
			st := gov.Tenant(tenant, 0).Stats()
			if st.LiveBytes != 0 {
				t.Errorf("%d live bytes after statement, want 0", st.LiveBytes)
			}
			for _, d := range []struct {
				domain string
				ds     exec.DomainStats
				want   int64
			}{
				{"floats", st.Floats, tc.floats},
				{"ints", st.Ints, 0},
				{"int64s", st.Int64s, tc.int64s},
				{"strings", st.Strings, tc.strse},
			} {
				if got := d.ds.Allocs - d.ds.Frees; got != d.want {
					t.Errorf("%s: %d buffers outstanding (allocs %d, frees %d), want %d retained by the result",
						d.domain, got, d.ds.Allocs, d.ds.Frees, d.want)
				}
			}
		})
	}
}
