package sql

import (
	"strings"
	"testing"
)

func TestLexerBasics(t *testing.T) {
	toks, err := lex(`SELECT x, 'it''s', 1.5e-2 FROM t -- comment
WHERE a <> b AND c >= 3;`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
		texts = append(texts, tk.text)
	}
	joined := strings.Join(texts, " ")
	if !strings.Contains(joined, "it's") {
		t.Errorf("escaped string not lexed: %q", joined)
	}
	if !strings.Contains(joined, "1.5e-2") {
		t.Errorf("scientific literal not lexed: %q", joined)
	}
	if strings.Contains(joined, "comment") {
		t.Errorf("comment not stripped: %q", joined)
	}
	if kinds[len(kinds)-1] != tokEOF {
		t.Error("missing EOF token")
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := lex(`SELECT 'unterminated`); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := lex(`SELECT "unterminated`); err == nil {
		t.Error("unterminated quoted identifier accepted")
	}
	if _, err := lex(`SELECT @`); err == nil {
		t.Error("bad character accepted")
	}
}

func TestParsePrecedence(t *testing.T) {
	stmts, err := Parse(`SELECT a + b * c FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	sel := stmts[0].(*SelectStmt)
	add, ok := sel.Items[0].Expr.(*BinaryExpr)
	if !ok || add.Op != "+" {
		t.Fatalf("top operator = %v", sel.Items[0].Expr)
	}
	mul, ok := add.R.(*BinaryExpr)
	if !ok || mul.Op != "*" {
		t.Fatalf("* does not bind tighter than +: %v", add.R)
	}
	// AND binds tighter than OR; NOT tighter than AND.
	stmts, err = Parse(`SELECT * FROM t WHERE NOT a OR b AND c`)
	if err != nil {
		t.Fatal(err)
	}
	where := stmts[0].(*SelectStmt).Where.(*BinaryExpr)
	if where.Op != "OR" {
		t.Fatalf("top = %s, want OR", where.Op)
	}
	if _, ok := where.L.(*UnaryExpr); !ok {
		t.Error("NOT not parsed on the left of OR")
	}
	if and, ok := where.R.(*BinaryExpr); !ok || and.Op != "AND" {
		t.Error("AND not nested under OR")
	}
}

func TestParseParenthesesAndUnary(t *testing.T) {
	stmts, err := Parse(`SELECT (a + b) * -c FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	mul := stmts[0].(*SelectStmt).Items[0].Expr.(*BinaryExpr)
	if mul.Op != "*" {
		t.Fatalf("top = %s", mul.Op)
	}
	if add, ok := mul.L.(*BinaryExpr); !ok || add.Op != "+" {
		t.Error("parenthesized + not on the left")
	}
	if neg, ok := mul.R.(*UnaryExpr); !ok || neg.Op != "-" {
		t.Error("unary minus not parsed")
	}
}

func TestParseJoinTree(t *testing.T) {
	stmts, err := Parse(`SELECT * FROM a JOIN b ON a.x = b.y LEFT JOIN c ON b.z = c.w CROSS JOIN d`)
	if err != nil {
		t.Fatal(err)
	}
	top := stmts[0].(*SelectStmt).From.(*JoinExpr)
	if top.Kind != JoinCross {
		t.Fatalf("outermost = %v, want cross", top.Kind)
	}
	left := top.Left.(*JoinExpr)
	if left.Kind != JoinLeft {
		t.Fatalf("middle = %v, want left", left.Kind)
	}
	inner := left.Left.(*JoinExpr)
	if inner.Kind != JoinInner || inner.On == nil {
		t.Fatalf("innermost = %v", inner.Kind)
	}
}

func TestParseRMATableFunction(t *testing.T) {
	stmts, err := Parse(`SELECT * FROM MMU(w4 BY C, w3 BY a, b) AS w5`)
	if err != nil {
		t.Fatal(err)
	}
	ref := stmts[0].(*SelectStmt).From.(*RMARef)
	if ref.Op != "mmu" || ref.Alias != "w5" || len(ref.Args) != 2 {
		t.Fatalf("ref = %+v", ref)
	}
	if got := strings.Join(ref.Args[1].By, ","); got != "a,b" {
		t.Errorf("second BY = %s", got)
	}
	// Nested calls parse into nested refs.
	stmts, err = Parse(`SELECT * FROM TRA(TRA(w BY T) BY C)`)
	if err != nil {
		t.Fatal(err)
	}
	outer := stmts[0].(*SelectStmt).From.(*RMARef)
	if _, ok := outer.Args[0].Rel.(*RMARef); !ok {
		t.Fatalf("inner arg = %T", outer.Args[0].Rel)
	}
}

func TestParseMultiStatementScript(t *testing.T) {
	stmts, err := Parse(`
CREATE TABLE t (x DOUBLE);
INSERT INTO t VALUES (1), (2);
SELECT * FROM t;
DROP TABLE t;
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 4 {
		t.Fatalf("parsed %d statements", len(stmts))
	}
	if _, ok := stmts[0].(*CreateStmt); !ok {
		t.Error("first not CREATE")
	}
	ins := stmts[1].(*InsertStmt)
	if len(ins.Rows) != 2 {
		t.Errorf("insert rows = %d", len(ins.Rows))
	}
	if _, ok := stmts[3].(*DropStmt); !ok {
		t.Error("last not DROP")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`SELECT FROM t`,
		`SELECT * FROM`,
		`SELECT * FROM t WHERE`,
		`SELECT * FROM t GROUP`,
		`SELECT * FROM t ORDER x`,
		`SELECT * FROM t LIMIT x`,
		`CREATE TABLE`,
		`CREATE TABLE t (x NOTATYPE)`,
		`INSERT INTO t VALUES 1`,
		`DROP t`,
		`SELECT * FROM (SELECT * FROM t`,
		`SELECT * FROM INV(t)`,
		`SELECT a. FROM t`,
		`SELECT COUNT( FROM t`,
		`garbage`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("no parse error for %q", q)
		}
	}
}

func TestParseTypeNames(t *testing.T) {
	stmts, err := Parse(`CREATE TABLE t (a DOUBLE, b REAL, c INT, d BIGINT, e VARCHAR(10), f TEXT, g DATE)`)
	if err != nil {
		t.Fatal(err)
	}
	cs := stmts[0].(*CreateStmt)
	if len(cs.Columns) != 7 {
		t.Fatalf("columns = %d", len(cs.Columns))
	}
}

func TestKeyOfStability(t *testing.T) {
	a, _ := Parse(`SELECT SUM(x + 1) FROM t`)
	b, _ := Parse(`SELECT SUM(x + 1) FROM t`)
	ka := keyOf(a[0].(*SelectStmt).Items[0].Expr)
	kb := keyOf(b[0].(*SelectStmt).Items[0].Expr)
	if ka != kb {
		t.Errorf("structural keys differ: %q vs %q", ka, kb)
	}
	c, _ := Parse(`SELECT SUM(x + 2) FROM t`)
	if keyOf(c[0].(*SelectStmt).Items[0].Expr) == ka {
		t.Error("different expressions share a key")
	}
}
