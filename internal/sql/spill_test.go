package sql

import (
	"errors"
	"testing"

	"repro/internal/bat"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/rel"
)

// spillQuery runs a high-fanout equi-join (every probe row matches 128
// build rows) through grouping and a final sort. On narrow single-key
// tables the pair arrays are the statement's dominant transient, which
// is exactly what the out-of-core join stages to disk — so spilling
// moves the resident peak by a margin the differential test can
// calibrate a budget into.
const spillQuery = `SELECT p.k AS g, COUNT(*) AS cnt FROM p JOIN b ON p.k = b.k
	GROUP BY p.k ORDER BY g`

// fanoutDB registers the narrow join inputs: 8Ki probe rows and 2Ki
// build rows over 16 shared key values — 1Mi join pairs.
func fanoutDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	const pn, bn = 1 << 13, 2048
	pk := make([]int64, pn)
	for i := range pk {
		pk[i] = int64(i % 16)
	}
	bk := make([]int64, bn)
	for i := range bk {
		bk[i] = int64(i % 16)
	}
	db.Register("p", rel.MustNew("p", rel.Schema{{Name: "k", Type: bat.Int}},
		[]*bat.BAT{bat.FromInts(pk)}))
	db.Register("b", rel.MustNew("b", rel.Schema{{Name: "k", Type: bat.Int}},
		[]*bat.BAT{bat.FromInts(bk)}))
	return db
}

// TestSpillDifferentialSelfCalibrated is the out-of-core correctness
// oracle, calibrated against the machine instead of hard-coded byte
// counts. It measures two serial peaks of the same statement on the
// materializing path (the retry ladder's last rung): P unbudgeted and
// in memory, S with every spill consumer forced to disk. The
// differential budget is the midpoint — by measurement the in-memory
// plan cannot fit (needs P) and the spilled plan must (needs S) — and
// the test pins:
//
//  1. spilling lowers the resident footprint at all (S < P),
//  2. without spilling the budget fails with the typed error and no
//     stranded bytes,
//  3. with spilling the same budget succeeds at workers 1, 2, and 8,
//     staging nonzero bytes to disk while the ledger stays under the
//     budget,
//  4. every spilled result is bitwise identical to the unbudgeted
//     in-memory reference.
func TestSpillDifferentialSelfCalibrated(t *testing.T) {
	// Calibration endpoint 1: unbudgeted, accounted, serial, in memory.
	ref := fanoutDB(t)
	ref.SetStreaming(false)
	gov := exec.NewGovernor(0, 0)
	want, err := ref.QueryWith(spillQuery, &core.Options{
		Tenant: "calib", Governor: gov, Parallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	peak := gov.Tenant("calib", 0).PeakBytes()
	if peak == 0 {
		t.Fatal("calibration run charged nothing; peak measurement is vacuous")
	}

	// Calibration endpoint 2: same statement with a one-byte threshold,
	// so every estimate-gated consumer takes its disk path.
	shed := fanoutDB(t)
	shed.SetStreaming(false)
	shed.SetSpill(t.TempDir(), 1)
	sgov := exec.NewGovernor(0, 0)
	spilledRes, err := shed.QueryWith(spillQuery, &core.Options{
		Tenant: "calib", Governor: sgov, Parallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := equalBits(want, spilledRes); err != nil {
		t.Fatalf("fully-spilled result differs from in-memory reference: %v", err)
	}
	if st := shed.SpillStats(); st.Events == 0 {
		t.Fatal("one-byte threshold produced no spill events; calibration is vacuous")
	}
	spilledPeak := sgov.Tenant("calib", 0).PeakBytes()
	if spilledPeak >= peak {
		t.Fatalf("spilling did not reduce the resident peak: %d spilled vs %d in-memory", spilledPeak, peak)
	}
	budget := (peak + spilledPeak) / 2
	t.Logf("serial peaks: %d in-memory, %d spilled; differential budget %d", peak, spilledPeak, budget)

	// Without spilling the midpoint budget must not fit: the ladder
	// runs out of rungs and surfaces the typed error.
	noSpill := fanoutDB(t)
	noSpill.SetStreaming(false)
	tight := exec.NewGovernor(0, 0)
	_, err = noSpill.QueryWith(spillQuery, &core.Options{
		Tenant: "tight", Governor: tight, MemoryBudget: budget, Parallelism: 8,
	})
	if err == nil {
		t.Fatalf("statement fit in %d bytes without spilling; calibration did not constrain it", budget)
	}
	if !errors.Is(err, exec.ErrMemoryBudget) {
		t.Fatalf("error = %v, want ErrMemoryBudget", err)
	}
	if live := tight.Tenant("tight", 0).LiveBytes(); live != 0 {
		t.Fatalf("tenant live = %d after the failed statement, want 0", live)
	}

	// With spilling, the same budget succeeds at every worker count and
	// reproduces the reference bit for bit.
	for _, workers := range []int{1, 2, 8} {
		db := fanoutDB(t)
		db.SetStreaming(false)
		db.SetSpill(t.TempDir(), 0) // threshold derives budget/2 at decision time
		gv := exec.NewGovernor(0, 0)
		got, err := db.QueryWith(spillQuery, &core.Options{
			Tenant: "oo", Governor: gv, MemoryBudget: budget, Parallelism: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: spilling run failed under budget %d: %v", workers, budget, err)
		}
		if err := equalBits(want, got); err != nil {
			t.Fatalf("workers=%d: spilled result differs from reference: %v", workers, err)
		}
		st := db.SpillStats()
		if st.Events == 0 || st.SpilledBytes == 0 {
			t.Fatalf("workers=%d: no spill activity recorded (%+v); the budget run fit in memory", workers, st)
		}
		tn := gv.Tenant("oo", 0)
		if p := tn.PeakBytes(); p > budget {
			t.Fatalf("workers=%d: ledger peak %d exceeds budget %d", workers, p, budget)
		}
		if live := tn.LiveBytes(); live != 0 {
			t.Fatalf("workers=%d: tenant live = %d after the statement, want 0", workers, live)
		}
		t.Logf("workers=%d: spilled %d bytes across %d partitions (%d events)",
			workers, st.SpilledBytes, st.Partitions, st.Events)
	}
}

// wideSpillQuery joins the wide probe table and aggregates every value
// column, so the materialized join result — 8 columns over 1Mi pairs —
// is the statement's dominant transient instead of the pair arrays.
const wideSpillQuery = `SELECT p.k AS g, SUM(p.v0) AS s0, SUM(p.v1) AS s1,
	SUM(p.v2) AS s2, SUM(p.v3) AS s3, SUM(p.v4) AS s4, SUM(p.v5) AS s5,
	COUNT(*) AS cnt FROM p JOIN b ON p.k = b.k GROUP BY p.k ORDER BY g`

// wideFanoutDB is fanoutDB with six float value columns on the probe
// side: same 1Mi join pairs, but the gathered column intermediates now
// dominate the join's footprint the way wide tables do in practice.
func wideFanoutDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	const pn, bn = 1 << 13, 2048
	pk := make([]int64, pn)
	vals := make([][]float64, 6)
	for v := range vals {
		vals[v] = make([]float64, pn)
	}
	for i := range pk {
		pk[i] = int64(i % 16)
		for v := range vals {
			vals[v][i] = float64((i*31+v*7)%257) / 16
		}
	}
	bk := make([]int64, bn)
	for i := range bk {
		bk[i] = int64(i % 16)
	}
	schema := rel.Schema{{Name: "k", Type: bat.Int}}
	cols := []*bat.BAT{bat.FromInts(pk)}
	for v := range vals {
		schema = append(schema, rel.Attr{Name: "v" + string(rune('0'+v)), Type: bat.Float})
		cols = append(cols, bat.FromFloats(vals[v]))
	}
	db.Register("p", rel.MustNew("p", schema, cols))
	db.Register("b", rel.MustNew("b", rel.Schema{{Name: "k", Type: bat.Int}},
		[]*bat.BAT{bat.FromInts(bk)}))
	return db
}

// TestSpillDifferentialWideSelfCalibrated is the wide-table leg of the
// out-of-core oracle. Before the join staged its gathered column
// intermediates, a spilled wide join held every destination column in
// flight through the whole pair pass and could peak *above* the
// in-memory path; this test pins the fixed behavior: the spilled wide
// peak measures below the in-memory peak, the midpoint budget rejects
// the in-memory plan with the typed error, and the spilled plan fits it
// while reproducing the reference bit for bit.
func TestSpillDifferentialWideSelfCalibrated(t *testing.T) {
	ref := wideFanoutDB(t)
	ref.SetStreaming(false)
	gov := exec.NewGovernor(0, 0)
	want, err := ref.QueryWith(wideSpillQuery, &core.Options{
		Tenant: "calib", Governor: gov, Parallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	peak := gov.Tenant("calib", 0).PeakBytes()
	if peak == 0 {
		t.Fatal("calibration run charged nothing; peak measurement is vacuous")
	}

	shed := wideFanoutDB(t)
	shed.SetStreaming(false)
	shed.SetSpill(t.TempDir(), 1)
	sgov := exec.NewGovernor(0, 0)
	spilledRes, err := shed.QueryWith(wideSpillQuery, &core.Options{
		Tenant: "calib", Governor: sgov, Parallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := equalBits(want, spilledRes); err != nil {
		t.Fatalf("fully-spilled wide result differs from in-memory reference: %v", err)
	}
	if st := shed.SpillStats(); st.Events == 0 {
		t.Fatal("one-byte threshold produced no spill events; calibration is vacuous")
	}
	spilledPeak := sgov.Tenant("calib", 0).PeakBytes()
	if spilledPeak >= peak {
		t.Fatalf("wide-join spill did not reduce the resident peak: %d spilled vs %d in-memory", spilledPeak, peak)
	}
	budget := (peak + spilledPeak) / 2
	t.Logf("wide serial peaks: %d in-memory, %d spilled; differential budget %d", peak, spilledPeak, budget)

	noSpill := wideFanoutDB(t)
	noSpill.SetStreaming(false)
	tight := exec.NewGovernor(0, 0)
	_, err = noSpill.QueryWith(wideSpillQuery, &core.Options{
		Tenant: "tight", Governor: tight, MemoryBudget: budget, Parallelism: 8,
	})
	if err == nil {
		t.Fatalf("wide statement fit in %d bytes without spilling; calibration did not constrain it", budget)
	}
	if !errors.Is(err, exec.ErrMemoryBudget) {
		t.Fatalf("error = %v, want ErrMemoryBudget", err)
	}
	if live := tight.Tenant("tight", 0).LiveBytes(); live != 0 {
		t.Fatalf("tenant live = %d after the failed statement, want 0", live)
	}

	for _, workers := range []int{1, 8} {
		db := wideFanoutDB(t)
		db.SetStreaming(false)
		db.SetSpill(t.TempDir(), 0)
		gv := exec.NewGovernor(0, 0)
		got, err := db.QueryWith(wideSpillQuery, &core.Options{
			Tenant: "oo", Governor: gv, MemoryBudget: budget, Parallelism: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: wide spilling run failed under budget %d: %v", workers, budget, err)
		}
		if err := equalBits(want, got); err != nil {
			t.Fatalf("workers=%d: wide spilled result differs from reference: %v", workers, err)
		}
		st := db.SpillStats()
		if st.Events == 0 || st.SpilledBytes == 0 {
			t.Fatalf("workers=%d: no spill activity recorded (%+v)", workers, st)
		}
		tn := gv.Tenant("oo", 0)
		if p := tn.PeakBytes(); p > budget {
			t.Fatalf("workers=%d: ledger peak %d exceeds budget %d", workers, p, budget)
		}
		if live := tn.LiveBytes(); live != 0 {
			t.Fatalf("workers=%d: tenant live = %d after the statement, want 0", workers, live)
		}
	}
}

// TestSpillConsumersIsolated attributes proactive (threshold-crossing)
// spill traffic to each disk-backed operator separately, by running a
// statement whose plan contains exactly one spillable consumer and
// checking the spilled result against a no-spill run of the same
// statement at the same worker count.
func TestSpillConsumersIsolated(t *testing.T) {
	const n = 1 << 15
	cases := []struct {
		name      string
		query     string
		streaming bool
	}{
		// Streaming plan, no join, no sort: the only spillable operator
		// is the grouped aggregation (freeze-and-divert).
		{"agg", "SELECT id, SUM(val) AS sv, COUNT(*) AS cnt FROM t GROUP BY id", true},
		// Streaming plan, no join, no grouping: only the final sort can
		// spill (per-run files plus k-way merge; workers > 1).
		{"sort", "SELECT id, val, tag FROM t ORDER BY val DESC, id LIMIT 200", true},
		// Materialized plan, no grouping, no sort: only the hash join's
		// partitioned pair staging can spill.
		{"join", "SELECT t.id, t.val, s.bonus FROM t JOIN s ON t.grp = s.k", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plain := streamDB(t, n)
			plain.SetStreaming(tc.streaming)
			want, err := plain.QueryWith(tc.query, &core.Options{Parallelism: 8})
			if err != nil {
				t.Fatal(err)
			}
			db := streamDB(t, n)
			db.SetStreaming(tc.streaming)
			db.SetSpill(t.TempDir(), 1<<12) // well under every operator's estimate
			got, err := db.QueryWith(tc.query, &core.Options{Parallelism: 8})
			if err != nil {
				t.Fatal(err)
			}
			st := db.SpillStats()
			if st.Events == 0 || st.SpilledBytes == 0 {
				t.Fatalf("%s consumer never spilled (%+v)", tc.name, st)
			}
			if err := equalBits(want, got); err != nil {
				t.Fatalf("%s: spilled result differs: %v", tc.name, err)
			}
		})
	}
}
