package sql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/bat"
	"repro/internal/core"
)

type parser struct {
	toks []token
	pos  int
}

// Parse parses a semicolon-separated script.
func Parse(src string) ([]Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []Statement
	for !p.at(tokEOF, "") {
		if p.accept(tokSymbol, ";") {
			continue
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if !p.accept(tokSymbol, ";") && !p.at(tokEOF, "") {
			return nil, p.errf("expected ';' or end of input")
		}
	}
	return stmts, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		t := p.cur()
		p.pos++
		return t, nil
	}
	return token{}, p.errf("expected %q", text)
}

func (p *parser) errf(format string, args ...interface{}) error {
	t := p.cur()
	what := t.text
	if t.kind == tokEOF {
		what = "end of input"
	}
	return fmt.Errorf("sql: %s at position %d (near %q)", fmt.Sprintf(format, args...), t.pos, what)
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.at(tokKeyword, "SELECT"):
		return p.selectStmt()
	case p.at(tokKeyword, "CREATE"):
		return p.createStmt()
	case p.at(tokKeyword, "INSERT"):
		return p.insertStmt()
	case p.at(tokKeyword, "DROP"):
		return p.dropStmt()
	}
	return nil, p.errf("expected statement")
}

func (p *parser) ident() (string, error) {
	if p.cur().kind == tokIdent {
		t := p.cur()
		p.pos++
		return t.text, nil
	}
	return "", p.errf("expected identifier")
}

// --- DDL / DML ----------------------------------------------------------

func (p *parser) createStmt() (Statement, error) {
	p.pos++ // CREATE
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	var cols []ColumnDef
	for {
		cn, err := p.ident()
		if err != nil {
			return nil, err
		}
		tn, err := p.ident()
		if err != nil {
			return nil, err
		}
		ct, err := parseType(tn)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		// Optional length, e.g. VARCHAR(20).
		if p.accept(tokSymbol, "(") {
			if p.cur().kind != tokNumber {
				return nil, p.errf("expected length")
			}
			p.pos++
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
		}
		cols = append(cols, ColumnDef{Name: cn, Type: ct})
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	persist := p.accept(tokKeyword, "PERSIST")
	return &CreateStmt{Name: name, Columns: cols, Persist: persist}, nil
}

func parseType(name string) (bat.Type, error) {
	switch strings.ToUpper(name) {
	case "DOUBLE", "FLOAT", "REAL", "DECIMAL", "NUMERIC":
		return bat.Float, nil
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "DATE", "TIMESTAMP":
		return bat.Int, nil
	case "VARCHAR", "CHAR", "TEXT", "STRING", "CLOB":
		return bat.String, nil
	}
	return 0, fmt.Errorf("unknown type %q", name)
}

func (p *parser) insertStmt() (Statement, error) {
	p.pos++ // INSERT
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if p.at(tokKeyword, "SELECT") {
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		return &InsertStmt{Table: name, Select: sel.(*SelectStmt)}, nil
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	var rows [][]Expr
	for {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	return &InsertStmt{Table: name, Rows: rows}, nil
}

func (p *parser) dropStmt() (Statement, error) {
	p.pos++ // DROP
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropStmt{Table: name}, nil
}

// --- SELECT -------------------------------------------------------------

func (p *parser) selectStmt() (Statement, error) {
	p.pos++ // SELECT
	sel := &SelectStmt{Limit: -1}
	sel.Distinct = p.accept(tokKeyword, "DISTINCT")
	for {
		if p.accept(tokSymbol, "*") {
			sel.Items = append(sel.Items, SelectItem{Star: true})
		} else {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.accept(tokKeyword, "AS") {
				a, err := p.ident()
				if err != nil {
					return nil, err
				}
				item.As = a
			} else if p.cur().kind == tokIdent {
				item.As = p.cur().text
				p.pos++
			}
			sel.Items = append(sel.Items, item)
		}
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	from, err := p.tableExpr()
	if err != nil {
		return nil, err
	}
	sel.From = from
	if p.accept(tokKeyword, "WHERE") {
		if sel.Where, err = p.expr(); err != nil {
			return nil, err
		}
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
	}
	if p.accept(tokKeyword, "HAVING") {
		if sel.Having, err = p.expr(); err != nil {
			return nil, err
		}
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		if p.cur().kind != tokNumber {
			return nil, p.errf("expected LIMIT count")
		}
		n, err := strconv.Atoi(p.cur().text)
		if err != nil {
			return nil, p.errf("bad LIMIT: %v", err)
		}
		sel.Limit = n
		p.pos++
	}
	return sel, nil
}

// tableExpr parses a FROM clause: primary references chained with joins
// and commas (comma = cross join).
func (p *parser) tableExpr() (TableExpr, error) {
	left, err := p.tablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokSymbol, ","):
			right, err := p.tablePrimary()
			if err != nil {
				return nil, err
			}
			left = &JoinExpr{Kind: JoinCross, Left: left, Right: right}
		case p.accept(tokKeyword, "CROSS"):
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
			right, err := p.tablePrimary()
			if err != nil {
				return nil, err
			}
			left = &JoinExpr{Kind: JoinCross, Left: left, Right: right}
		case p.at(tokKeyword, "JOIN") || p.at(tokKeyword, "INNER") || p.at(tokKeyword, "LEFT"):
			kind := JoinInner
			if p.accept(tokKeyword, "LEFT") {
				kind = JoinLeft
			} else {
				p.accept(tokKeyword, "INNER")
			}
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
			right, err := p.tablePrimary()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokKeyword, "ON"); err != nil {
				return nil, err
			}
			on, err := p.expr()
			if err != nil {
				return nil, err
			}
			left = &JoinExpr{Kind: kind, Left: left, Right: right, On: on}
		default:
			return left, nil
		}
	}
}

func (p *parser) tablePrimary() (TableExpr, error) {
	// Derived table.
	if p.accept(tokSymbol, "(") {
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		alias := p.optionalAlias()
		return &SubqueryRef{Select: sel.(*SelectStmt), Alias: alias}, nil
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	// RMA table function: a known operation name followed by '('.
	if p.at(tokSymbol, "(") {
		opName := strings.ToLower(name)
		if _, err := core.ParseOp(opName); err != nil {
			return nil, p.errf("unknown table function %q", name)
		}
		p.pos++ // (
		ref := &RMARef{Op: opName}
		for {
			arg, err := p.rmaArg()
			if err != nil {
				return nil, err
			}
			ref.Args = append(ref.Args, *arg)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		ref.Alias = p.optionalAlias()
		return ref, nil
	}
	return &TableRef{Name: name, Alias: p.optionalAlias()}, nil
}

// rmaArg parses `relation BY a, b, ...` where relation is a table name, a
// parenthesized subquery, or a nested RMA table function.
func (p *parser) rmaArg() (*RMAArg, error) {
	te, err := p.tablePrimary()
	if err != nil {
		return nil, err
	}
	arg := &RMAArg{Rel: te}
	if _, err := p.expect(tokKeyword, "BY"); err != nil {
		return nil, err
	}
	for {
		a, err := p.ident()
		if err != nil {
			return nil, err
		}
		arg.By = append(arg.By, a)
		// BY lists end at ',' followed by another argument or at ')'.
		// A comma here is ambiguous: it separates either BY attributes or
		// RMA arguments; the next argument wins when what follows the
		// comma starts a relation (ident BY, ident '(', or '(').
		if p.at(tokSymbol, ",") && p.pos+2 < len(p.toks) {
			n1, n2 := p.toks[p.pos+1], p.toks[p.pos+2]
			nextIsArg := (n1.kind == tokIdent && n2.kind == tokKeyword && n2.text == "BY") ||
				(n1.kind == tokIdent && n2.kind == tokSymbol && n2.text == "(") ||
				(n1.kind == tokSymbol && n1.text == "(")
			if nextIsArg {
				return arg, nil
			}
		}
		if p.accept(tokSymbol, ",") {
			continue
		}
		return arg, nil
	}
}

func (p *parser) optionalAlias() string {
	if p.accept(tokKeyword, "AS") {
		if p.cur().kind == tokIdent {
			a := p.cur().text
			p.pos++
			return a
		}
		return ""
	}
	if p.cur().kind == tokIdent {
		a := p.cur().text
		p.pos++
		return a
	}
	return ""
}

// --- Expressions ---------------------------------------------------------

// expr parses with precedence: OR < AND < NOT < comparison < additive <
// multiplicative < unary < primary.
func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", E: e}, nil
	}
	return p.cmpExpr()
}

var cmpOps = map[string]bool{"=": true, "<>": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokSymbol && cmpOps[p.cur().text] {
		op := p.cur().text
		if op == "!=" {
			op = "<>"
		}
		p.pos++
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: op, L: l, R: r}, nil
	}
	// Postfix predicates: [NOT] IN / BETWEEN / LIKE.
	negated := false
	if p.at(tokKeyword, "NOT") && p.pos+1 < len(p.toks) &&
		p.toks[p.pos+1].kind == tokKeyword &&
		(p.toks[p.pos+1].text == "IN" || p.toks[p.pos+1].text == "BETWEEN" || p.toks[p.pos+1].text == "LIKE") {
		p.pos++
		negated = true
	}
	switch {
	case p.accept(tokKeyword, "IN"):
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return &InExpr{E: l, List: list, Not: negated}, nil
	case p.accept(tokKeyword, "BETWEEN"):
		lo, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{E: l, Lo: lo, Hi: hi, Not: negated}, nil
	case p.accept(tokKeyword, "LIKE"):
		if p.cur().kind != tokString {
			return nil, p.errf("LIKE expects a string pattern")
		}
		pat := p.cur().text
		p.pos++
		return &LikeExpr{E: l, Pattern: pat, Not: negated}, nil
	}
	if negated {
		return nil, p.errf("expected IN, BETWEEN or LIKE after NOT")
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokSymbol && (p.cur().text == "+" || p.cur().text == "-") {
		op := p.cur().text
		p.pos++
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokSymbol && (p.cur().text == "*" || p.cur().text == "/" || p.cur().text == "%") {
		op := p.cur().text
		p.pos++
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.accept(tokSymbol, "-") {
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", E: e}, nil
	}
	p.accept(tokSymbol, "+")
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.pos++
		if !strings.ContainsAny(t.text, ".eE") {
			n, err := strconv.ParseInt(t.text, 10, 64)
			if err == nil {
				return &NumberLit{IsInt: true, Int: n}, nil
			}
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad number: %v", err)
		}
		return &NumberLit{Float: f}, nil
	case tokString:
		p.pos++
		return &StringLit{Val: t.text}, nil
	case tokSymbol:
		if t.text == "(" {
			p.pos++
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tokIdent:
		name := t.text
		p.pos++
		// Function call.
		if p.accept(tokSymbol, "(") {
			fc := &FuncCall{Name: strings.ToUpper(name)}
			if p.accept(tokSymbol, "*") {
				fc.Star = true
			} else if !p.at(tokSymbol, ")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, a)
					if p.accept(tokSymbol, ",") {
						continue
					}
					break
				}
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return fc, nil
		}
		// Qualified column.
		if p.accept(tokSymbol, ".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColRef{Qualifier: name, Name: col}, nil
		}
		return &ColRef{Name: name}, nil
	}
	return nil, p.errf("expected expression")
}
