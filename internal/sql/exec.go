package sql

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/bat"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/rel"
	"repro/internal/store"
)

// DB is an in-memory database: a catalog of named relations plus the
// execution entry points. It is safe for concurrent readers; DDL/DML
// statements take the write lock.
//
// Every statement runs under its own execution context and — when the
// configured options name a tenant or set a memory budget — draws its
// buffers from a per-statement accounted arena charging that tenant.
// Statements are admitted against the database's governor before they
// run, so a global cap queues excess concurrent queries instead of
// letting them overcommit memory.
type DB struct {
	mu       sync.RWMutex
	tables   map[string]*rel.Relation
	rmaOpts  *core.Options
	gov      *exec.Governor
	noStream bool
	lastPipe []exec.StageStats
	stmtOpts map[*exec.Ctx]*core.Options
	cache    planCache

	// Out-of-core execution (SetSpill): when enabled, every statement
	// context carries a spill manager staging under spillDir, and a
	// statement that still exceeds its memory budget after the serial
	// retry is retried once more with spilling forced.
	spillOn  bool
	spillDir string
	spillTh  int64
	// Cumulative spill traffic across statements (the per-statement
	// managers are torn down with their contexts, so the database keeps
	// the running totals for Metrics and the differential tests).
	spillBytes  atomic.Int64
	spillParts  atomic.Int64
	spillEvents atomic.Int64

	// Persistent tables (SetDataDir): names created with PERSIST are
	// checkpointed to segment files in dataDir and reloaded by
	// LoadPersisted after a restart. stored keeps one open segment
	// reader per persisted table for zone-map pruning at scan time.
	dataDir   string
	persisted map[string]bool
	stored    map[string]*store.Reader
}

// NewDB returns an empty database bound to the process-default
// governor, with the plan cache enabled.
func NewDB() *DB {
	db := &DB{
		tables:    make(map[string]*rel.Relation),
		gov:       exec.DefaultGovernor(),
		stmtOpts:  make(map[*exec.Ctx]*core.Options),
		persisted: make(map[string]bool),
		stored:    make(map[string]*store.Reader),
	}
	db.cache.init(defaultPlanCacheCap)
	return db
}

// SetRMAOptions sets the default execution options (policy, sort mode,
// tenant, memory budget, stats) used by RMA table functions and the
// statement pipeline; nil restores the defaults. Statements executed
// through ExecWith carry their own options instead. Changing the
// defaults invalidates the plan cache: RMA policy can change what a
// table function returns.
func (db *DB) SetRMAOptions(opts *core.Options) {
	db.mu.Lock()
	db.rmaOpts = opts
	db.mu.Unlock()
	db.cache.invalidate()
}

// SetGovernor installs the governor statements are admitted against and
// tenants are resolved through; nil restores the process default.
func (db *DB) SetGovernor(g *exec.Governor) {
	db.mu.Lock()
	if g == nil {
		g = exec.DefaultGovernor()
	}
	db.gov = g
	db.mu.Unlock()
	db.cache.invalidate()
}

// SetStreaming toggles the morsel-driven streaming SELECT pipeline
// (enabled by default). Disabling it routes every SELECT through the
// materializing path; results are bitwise-identical either way, so the
// switch exists for comparison and diagnosis, not correctness. The
// toggle invalidates the plan cache — cached stream plans belong to the
// mode they were planned under.
func (db *DB) SetStreaming(on bool) {
	db.mu.Lock()
	db.noStream = !on
	db.mu.Unlock()
	db.cache.invalidate()
}

// SetSpill enables out-of-core statement execution: every statement
// context carries a spill manager staging under dir (empty means the OS
// temp dir), and an operator whose estimated in-memory footprint
// exceeds threshold bytes takes its disk-backed path (threshold 0
// derives half the statement tenant's budget at decision time).
// Spilling never changes results — every spill path is bitwise
// identical to its in-memory twin — so the switch only trades memory
// for disk traffic. A negative threshold disables spilling again.
func (db *DB) SetSpill(dir string, threshold int64) {
	db.mu.Lock()
	db.spillOn = threshold >= 0
	db.spillDir = dir
	db.spillTh = threshold
	db.mu.Unlock()
}

// spillConfig snapshots the spill configuration.
func (db *DB) spillConfig() (dir string, threshold int64, on bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.spillDir, db.spillTh, db.spillOn
}

// SetPlanCache toggles the normalized-statement plan cache (enabled by
// default); disabling it drops the cached entries. The switch exists
// for comparison — the differential tests and the load generator run
// both ways — and as an escape hatch.
func (db *DB) SetPlanCache(on bool) {
	db.cache.setEnabled(on)
}

func (db *DB) streamingEnabled() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return !db.noStream
}

// PipelineStats returns the per-stage morsel counters of the most
// recently completed streamed SELECT (nil when none has streamed yet).
// For a script with nested or multiple SELECTs, the outermost statement
// executed last wins.
func (db *DB) PipelineStats() []exec.StageStats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]exec.StageStats(nil), db.lastPipe...)
}

func (db *DB) storePipelineStats(s []exec.StageStats) {
	db.mu.Lock()
	db.lastPipe = s
	db.mu.Unlock()
}

// Metrics is the database's observable state: the governor's admission
// and per-tenant memory books (embedded, so existing field access keeps
// working) plus the plan cache counters.
type Metrics struct {
	exec.GovernorMetrics
	PlanCache PlanCacheStats
	Spill     exec.SpillStats
}

// Metrics snapshots the governor the database runs under — admission
// state plus per-tenant live/peak bytes and pool counters — and the
// plan cache's hit/miss/invalidation counters.
func (db *DB) Metrics() Metrics {
	db.mu.RLock()
	g := db.governorLocked()
	db.mu.RUnlock()
	return Metrics{
		GovernorMetrics: g.Metrics(),
		PlanCache:       db.cache.stats(),
		Spill:           db.SpillStats(),
	}
}

// SpillStats returns the cumulative out-of-core traffic of every
// statement executed so far: bytes staged to disk, partitions created,
// and individual spill events. Zero until SetSpill enables spilling and
// some operator actually crosses its threshold.
func (db *DB) SpillStats() exec.SpillStats {
	return exec.SpillStats{
		SpilledBytes: db.spillBytes.Load(),
		Partitions:   db.spillParts.Load(),
		Events:       db.spillEvents.Load(),
	}
}

// governorLocked resolves the governor statements run under: an explicit
// Options.Governor wins over the database's own, so a caller that
// configures one through SetRMAOptions gets a single set of books — the
// statement pipeline, the RMA table functions, admission, and Metrics
// all land on the same governor. Callers hold db.mu (either mode).
func (db *DB) governorLocked() *exec.Governor {
	if db.rmaOpts != nil && db.rmaOpts.Governor != nil {
		return db.rmaOpts.Governor
	}
	return db.gov
}

// Register stores a relation under a name, replacing any previous one.
func (db *DB) Register(name string, r *rel.Relation) {
	db.mu.Lock()
	db.tables[name] = r.WithName(name)
	db.mu.Unlock()
	db.cache.invalidate()
}

// Table returns the named relation.
func (db *DB) Table(name string) (*rel.Relation, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("sql: no such table %q", name)
	}
	return r, nil
}

// Tables lists the catalog in sorted order.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Exec parses and executes a script and returns the result of the last
// SELECT (nil if the script contains none) under the database's default
// options. See ExecWith.
func (db *DB) Exec(src string) (*rel.Relation, error) {
	return db.ExecWith(src, nil)
}

// ExecWith is Exec with per-call execution options: a concurrent server
// maps each request to its tenant's options without touching the
// database-wide defaults (nil opts uses those defaults). Every
// statement runs under its own execution context (see stmtCtx), so
// concurrent statements with different parallelism budgets or tenants
// never share a worker knob or an arena. A statement that exceeds its
// memory budget at the configured parallelism is retried once serially
// (the serial plans need less scratch and every operator is
// deterministic across worker budgets); if the retry fails too, the
// typed error — matching exec.ErrMemoryBudget — is returned.
//
// Single-statement SELECTs over plain tables and joins are served
// through the plan cache: a repeat of the same normalized statement
// text skips parsing and planning entirely.
func (db *DB) ExecWith(src string, opts *core.Options) (*rel.Relation, error) {
	if opts == nil {
		db.mu.RLock()
		opts = db.rmaOpts
		db.mu.RUnlock()
	}
	key, normOK := normalizeStmt(src)
	if normOK {
		if e := db.cache.get(key); e != nil {
			return db.execCached(e, opts)
		}
	}
	stmts, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if normOK && len(stmts) == 1 {
		if sel, ok := stmts[0].(*SelectStmt); ok && cacheableSelect(sel) {
			if e := db.cache.put(key, sel); e != nil {
				return db.execCached(e, opts)
			}
		}
	}
	var last *rel.Relation
	for _, s := range stmts {
		res, err := db.runStmt(s, opts, 0, false)
		if err != nil && errors.Is(err, exec.ErrMemoryBudget) && workersOf(opts) > 1 {
			res, err = db.runStmt(s, opts, 1, false)
		}
		if err != nil && errors.Is(err, exec.ErrMemoryBudget) {
			if _, _, on := db.spillConfig(); on {
				// Last rung: serial with spilling forced, shedding every
				// spillable structure to disk.
				res, err = db.runStmt(s, opts, 1, true)
			}
		}
		if err != nil {
			return nil, err
		}
		if res != nil {
			last = res
		}
	}
	return last, nil
}

// execCached executes a cache-served SELECT with the same
// serial-then-spill memory-budget retry ladder as the parse path.
func (db *DB) execCached(e *planEntry, opts *core.Options) (*rel.Relation, error) {
	res, err := db.runCached(e, opts, 0, false)
	if err != nil && errors.Is(err, exec.ErrMemoryBudget) && workersOf(opts) > 1 {
		res, err = db.runCached(e, opts, 1, false)
	}
	if err != nil && errors.Is(err, exec.ErrMemoryBudget) {
		if _, _, on := db.spillConfig(); on {
			res, err = db.runCached(e, opts, 1, true)
		}
	}
	return res, err
}

// runCached runs one execution of a cached statement: the entry's
// stream plan when streaming is on and the planner took the statement
// (planned lazily on the entry's first streamed execution, shared and
// read-only afterwards), the materializing executor otherwise.
func (db *DB) runCached(e *planEntry, opts *core.Options, forceSerial int, forceSpill bool) (res *rel.Relation, err error) {
	c, finish := db.stmtCtx(opts, forceSerial, forceSpill)
	defer finish()
	defer exec.CatchBudget(&err)
	if db.streamingEnabled() && !c.Spill().IsForced() {
		if plan := e.planFor(db, c); plan != nil {
			return db.execPlanned(c, e.sel, plan)
		}
	}
	return db.execSelectMaterialized(c, e.sel)
}

// runStmt admits one statement against the governor, executes it under
// a fresh per-statement context, and tears the context down: the
// statement's arena charges are released and the admission reservation
// is handed back whether the statement succeeded or not. forceSerial
// overrides the configured parallelism for the memory-budget retry.
func (db *DB) runStmt(s Statement, opts *core.Options, forceSerial int, forceSpill bool) (res *rel.Relation, err error) {
	c, finish := db.stmtCtx(opts, forceSerial, forceSpill)
	defer finish()
	defer exec.CatchBudget(&err)
	return db.run(c, s)
}

// workersOf returns the resolved per-statement parallelism of a set of
// options: the configured budget, or the process default when dynamic.
// The serial budget retry keys off this — a statement that already ran
// with one worker would fail identically on a rerun.
func workersOf(opts *core.Options) int {
	if opts != nil && opts.Parallelism > 0 {
		return opts.Parallelism
	}
	return exec.DefaultWorkers()
}

// stmtCtx builds one statement's execution context from its options:
// the Parallelism budget scopes to this statement only (zero follows
// the process default; forceSerial > 0 overrides it), and a
// tenant/memory-budget configuration routes the statement's arena
// traffic through a per-statement accounted arena charging the tenant.
// The statement is admitted against the governor before the context is
// handed out — its declared budget reserves room under the global cap —
// and the returned finish func must be called when the statement ends:
// it closes the arena (releasing the statement's outstanding charges)
// and returns the admission reservation.
//
// The relational operators of the SELECT pipeline run under this
// context; RMA table functions build their own context from the same
// options inside core.Unary/Binary, charging the same tenant — the
// context-to-options registration here is how evalRMA finds the
// statement's options without consulting the database-wide defaults.
func (db *DB) stmtCtx(opts *core.Options, forceSerial int, forceSpill bool) (*exec.Ctx, func()) {
	gov := db.governorFor(opts)
	var workers int
	var budget int64
	var arena *exec.Arena
	if opts != nil {
		workers = opts.Parallelism
		budget = opts.MemoryBudget
		arena = gov.ArenaFor(opts.Tenant, budget)
	}
	if forceSerial > 0 {
		workers = forceSerial
	}
	release := gov.Admit(budget)
	c := exec.NewCtx(workers, arena, nil)
	var sp *exec.Spill
	if dir, th, on := db.spillConfig(); on {
		sp = exec.NewSpill(dir, th)
		if forceSpill {
			sp = sp.Forced()
		}
		c = c.WithSpill(sp)
	}
	db.mu.Lock()
	db.stmtOpts[c] = opts
	db.mu.Unlock()
	return c, func() {
		db.mu.Lock()
		delete(db.stmtOpts, c)
		db.mu.Unlock()
		if st := sp.Stats(); st.Events > 0 {
			db.spillBytes.Add(st.SpilledBytes)
			db.spillParts.Add(st.Partitions)
			db.spillEvents.Add(st.Events)
		}
		sp.Cleanup()
		arena.Close()
		release()
	}
}

// governorFor resolves the governor a statement runs under: an explicit
// Options.Governor wins over the database's own, so a caller that
// configures one gets a single set of books — the statement pipeline,
// the RMA table functions, admission, and Metrics all land on the same
// governor.
func (db *DB) governorFor(opts *core.Options) *exec.Governor {
	if opts != nil && opts.Governor != nil {
		return opts.Governor
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.gov
}

// stmtOptsFor returns the options the statement owning ctx was launched
// with, falling back to the database-wide defaults for contexts this DB
// did not create.
func (db *DB) stmtOptsFor(c *exec.Ctx) *core.Options {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if o, ok := db.stmtOpts[c]; ok {
		return o
	}
	return db.rmaOpts
}

// Query executes a single SELECT statement.
func (db *DB) Query(src string) (*rel.Relation, error) {
	return db.QueryWith(src, nil)
}

// QueryWith is Query with per-call execution options (see ExecWith).
func (db *DB) QueryWith(src string, opts *core.Options) (*rel.Relation, error) {
	res, err := db.ExecWith(src, opts)
	if err != nil {
		return nil, err
	}
	if res == nil {
		return nil, fmt.Errorf("sql: statement returned no result")
	}
	return res, nil
}

// Stmt is a prepared statement: Prepare validates the script once and
// warms the plan cache for cacheable SELECTs; executions go through the
// same normalized-text cache as ExecWith, so a Stmt holds no plan state
// of its own to invalidate.
type Stmt struct {
	db  *DB
	src string
}

// Prepare parses and validates a script and returns a reusable handle.
func (db *DB) Prepare(src string) (*Stmt, error) {
	stmts, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) == 1 {
		if sel, ok := stmts[0].(*SelectStmt); ok && cacheableSelect(sel) {
			if key, ok := normalizeStmt(src); ok {
				db.cache.put(key, sel)
			}
		}
	}
	return &Stmt{db: db, src: src}, nil
}

// Exec executes the prepared statement under the database defaults.
func (s *Stmt) Exec() (*rel.Relation, error) { return s.db.ExecWith(s.src, nil) }

// ExecWith executes the prepared statement under per-call options.
func (s *Stmt) ExecWith(opts *core.Options) (*rel.Relation, error) {
	return s.db.ExecWith(s.src, opts)
}

func (db *DB) run(c *exec.Ctx, s Statement) (*rel.Relation, error) {
	switch x := s.(type) {
	case *SelectStmt:
		src, err := db.execSelect(c, x)
		if err != nil {
			return nil, err
		}
		return src, nil
	case *CreateStmt:
		return nil, db.runCreate(x)
	case *InsertStmt:
		return nil, db.runInsert(c, x)
	case *DropStmt:
		db.mu.Lock()
		if _, ok := db.tables[x.Table]; !ok {
			db.mu.Unlock()
			return nil, fmt.Errorf("sql: no such table %q", x.Table)
		}
		delete(db.tables, x.Table)
		var dropFile string
		if db.persisted[x.Table] {
			delete(db.persisted, x.Table)
			if rd := db.stored[x.Table]; rd != nil {
				rd.Close()
				delete(db.stored, x.Table)
			}
			dropFile = db.segPathLocked(x.Table)
		}
		db.mu.Unlock()
		if dropFile != "" {
			os.Remove(dropFile)
		}
		db.cache.invalidate()
		return nil, nil
	}
	return nil, fmt.Errorf("sql: unsupported statement %T", s)
}

func (db *DB) runCreate(x *CreateStmt) error {
	db.mu.Lock()
	if _, ok := db.tables[x.Name]; ok {
		db.mu.Unlock()
		return fmt.Errorf("sql: table %q already exists", x.Name)
	}
	if x.Persist && db.dataDir == "" {
		db.mu.Unlock()
		return fmt.Errorf("sql: CREATE TABLE %s PERSIST without a data directory (SetDataDir)", x.Name)
	}
	schema := make(rel.Schema, len(x.Columns))
	for k, c := range x.Columns {
		schema[k] = rel.Attr{Name: c.Name, Type: c.Type}
	}
	db.tables[x.Name] = rel.Empty(x.Name, schema)
	if x.Persist {
		db.persisted[x.Name] = true
	}
	db.mu.Unlock()
	db.cache.invalidate()
	if x.Persist {
		return db.checkpoint(x.Name)
	}
	return nil
}

func (db *DB) runInsert(c *exec.Ctx, x *InsertStmt) error {
	tbl, err := db.Table(x.Table)
	if err != nil {
		return err
	}
	var rows *rel.Relation
	if x.Select != nil {
		rows, err = db.execSelect(c, x.Select)
		if err != nil {
			return err
		}
		if rows.NumCols() != tbl.NumCols() {
			return fmt.Errorf("sql: INSERT SELECT arity %d into table of arity %d", rows.NumCols(), tbl.NumCols())
		}
		// Align names/types with the target table for the union.
		rows = &rel.Relation{Name: tbl.Name, Schema: tbl.Schema, Cols: coerceCols(rows, tbl.Schema)}
	} else {
		b := rel.NewBuilder(x.Table, tbl.Schema)
		for _, rowExprs := range x.Rows {
			if len(rowExprs) != tbl.NumCols() {
				return fmt.Errorf("sql: INSERT arity %d into table of arity %d", len(rowExprs), tbl.NumCols())
			}
			vals := make([]bat.Value, len(rowExprs))
			for k, e := range rowExprs {
				c, err := compileExpr(e, nil)
				if err != nil {
					return err
				}
				vals[k] = c.fn(0)
			}
			if err := b.Add(vals...); err != nil {
				return err
			}
		}
		rows = b.Relation()
	}
	merged, err := rel.Union(tbl, rows)
	if err != nil {
		return err
	}
	db.mu.Lock()
	db.tables[x.Table] = merged.WithName(x.Table)
	persist := db.persisted[x.Table]
	db.mu.Unlock()
	db.cache.invalidate()
	if persist {
		return db.checkpoint(x.Table)
	}
	return nil
}

// coerceCols adapts int columns to float where the target schema demands
// it (the single coercion the dialect supports).
func coerceCols(r *rel.Relation, target rel.Schema) []*bat.BAT {
	cols := make([]*bat.BAT, len(r.Cols))
	for k, c := range r.Cols {
		if c.Type() == bat.Int && target[k].Type == bat.Float {
			f, _ := c.Floats()
			cols[k] = bat.FromFloats(f)
			continue
		}
		cols[k] = c
	}
	return cols
}

// --- FROM clause ----------------------------------------------------------

func (db *DB) buildFrom(c *exec.Ctx, te TableExpr) (*source, error) {
	switch x := te.(type) {
	case *TableRef:
		r, err := db.Table(x.Name)
		if err != nil {
			return nil, err
		}
		qual := x.Alias
		if qual == "" {
			qual = x.Name
		}
		src := newSource(r, qual)
		src.stored = db.storedReader(x.Name)
		return src, nil
	case *SubqueryRef:
		r, err := db.execSelect(c, x.Select)
		if err != nil {
			return nil, err
		}
		return newSource(r, x.Alias), nil
	case *RMARef:
		return db.buildRMA(c, x)
	case *JoinExpr:
		return db.buildJoin(c, x)
	}
	return nil, fmt.Errorf("sql: unsupported table expression %T", te)
}

func (db *DB) buildRMA(c *exec.Ctx, x *RMARef) (*source, error) {
	res, err := db.evalRMA(c, x)
	if err != nil {
		return nil, err
	}
	return newSource(res, x.Alias), nil
}

// relationOf evaluates an RMA argument relation with its original
// attribute names intact (BY clauses reference them).
func (db *DB) relationOf(c *exec.Ctx, te TableExpr) (*rel.Relation, error) {
	switch x := te.(type) {
	case *TableRef:
		return db.Table(x.Name)
	case *SubqueryRef:
		return db.execSelect(c, x.Select)
	case *RMARef:
		return db.evalRMA(c, x)
	}
	return nil, fmt.Errorf("sql: unsupported RMA argument %T", te)
}

func (db *DB) evalRMA(c *exec.Ctx, x *RMARef) (*rel.Relation, error) {
	op, err := core.ParseOp(x.Op)
	if err != nil {
		return nil, err
	}
	args := make([]*rel.Relation, len(x.Args))
	for k, a := range x.Args {
		r, err := db.relationOf(c, a.Rel)
		if err != nil {
			return nil, err
		}
		args[k] = r
	}
	opts := db.stmtOptsFor(c)
	gov := db.governorFor(opts)
	// RMA table functions build their own per-invocation context inside
	// core; route them through the database's governor so their tenant
	// accounting lands in the same books as the statement pipeline, and
	// pin them to the statement's resolved worker budget so a
	// forced-serial budget retry does not re-attempt the op in parallel
	// (core would just repeat the failed parallel plan plus its own
	// internal serial retry).
	if opts != nil {
		o := *opts
		if o.Governor == nil {
			o.Governor = gov
		}
		o.Parallelism = c.Workers()
		opts = &o
	}
	if op.Binary() {
		if len(args) != 2 {
			return nil, fmt.Errorf("sql: %s takes two relations", strings.ToUpper(x.Op))
		}
		return core.Binary(op, args[0], x.Args[0].By, args[1], x.Args[1].By, opts)
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("sql: %s takes one relation", strings.ToUpper(x.Op))
	}
	return core.Unary(op, args[0], x.Args[0].By, opts)
}

func (db *DB) buildJoin(c *exec.Ctx, x *JoinExpr) (*source, error) {
	left, err := db.buildFrom(c, x.Left)
	if err != nil {
		return nil, err
	}
	right, err := db.buildFrom(c, x.Right)
	if err != nil {
		return nil, err
	}
	switch x.Kind {
	case JoinCross:
		return crossSources(c, left, right)
	default:
		return joinSources(c, left, right, x.On, x.Kind)
	}
}

// combineSchemas concatenates two sources' schemas with fresh internal
// column names.
func combineSchemas(left, right *source, cols []*bat.BAT) (*source, error) {
	schema := make(rel.Schema, 0, len(left.syms)+len(right.syms))
	syms := make([]sym, 0, cap(schema))
	for k, a := range left.rel.Schema {
		schema = append(schema, rel.Attr{Name: internalName(len(schema)), Type: a.Type})
		syms = append(syms, left.syms[k])
	}
	for k, a := range right.rel.Schema {
		schema = append(schema, rel.Attr{Name: internalName(len(schema)), Type: a.Type})
		syms = append(syms, right.syms[k])
	}
	r, err := rel.New("", schema, cols)
	if err != nil {
		return nil, err
	}
	return &source{rel: r, syms: syms}, nil
}

func crossSources(c *exec.Ctx, left, right *source) (*source, error) {
	nl, nr := left.rel.NumRows(), right.rel.NumRows()
	li := make([]int, 0, nl*nr)
	ri := make([]int, 0, nl*nr)
	for i := 0; i < nl; i++ {
		for j := 0; j < nr; j++ {
			li = append(li, i)
			ri = append(ri, j)
		}
	}
	return gatherPairs(c, left, right, li, ri)
}

func gatherPairs(c *exec.Ctx, left, right *source, li, ri []int) (*source, error) {
	cols := make([]*bat.BAT, 0, len(left.rel.Cols)+len(right.rel.Cols))
	for _, col := range left.rel.Cols {
		cols = append(cols, col.Gather(c, li))
	}
	for _, col := range right.rel.Cols {
		cols = append(cols, gatherPadded(c, col, ri))
	}
	return combineSchemas(left, right, cols)
}

// gatherPadded gathers col by idx, emitting the zero value where idx < 0
// (left-join non-matches).
func gatherPadded(c *exec.Ctx, col *bat.BAT, idx []int) *bat.BAT {
	pad := false
	for _, j := range idx {
		if j < 0 {
			pad = true
			break
		}
	}
	if !pad {
		return col.Gather(c, idx)
	}
	out := bat.NewEmptyVector(col.Type(), len(idx))
	for _, j := range idx {
		if j < 0 {
			switch col.Type() {
			case bat.Float:
				out.Append(bat.FloatValue(0))
			case bat.Int:
				out.Append(bat.IntValue(0))
			default:
				out.Append(bat.StringValue(""))
			}
			continue
		}
		out.Append(col.Get(j))
	}
	return bat.FromVector(out)
}

// extractEqui splits an ON expression into equi-join key pairs (left expr,
// right expr) plus a residual predicate evaluated after the join.
func extractEqui(on Expr, left, right *source) (lk, rk []Expr, residual []Expr) {
	conjuncts := flattenAnd(on)
	for _, c := range conjuncts {
		b, ok := c.(*BinaryExpr)
		if ok && b.Op == "=" {
			lSide := sideOf(b.L, left, right)
			rSide := sideOf(b.R, left, right)
			if lSide == 1 && rSide == 2 {
				lk = append(lk, b.L)
				rk = append(rk, b.R)
				continue
			}
			if lSide == 2 && rSide == 1 {
				lk = append(lk, b.R)
				rk = append(rk, b.L)
				continue
			}
		}
		residual = append(residual, c)
	}
	return lk, rk, residual
}

func flattenAnd(e Expr) []Expr {
	if b, ok := e.(*BinaryExpr); ok && b.Op == "AND" {
		return append(flattenAnd(b.L), flattenAnd(b.R)...)
	}
	return []Expr{e}
}

// sideOf reports which source an expression's columns resolve against:
// 1 = left only, 2 = right only, 0 = mixed/none/unresolvable.
func sideOf(e Expr, left, right *source) int {
	cols := collectCols(e, nil)
	if len(cols) == 0 {
		return 0
	}
	side := 0
	for _, c := range cols {
		_, lerr := left.resolve(c.Qualifier, c.Name)
		_, rerr := right.resolve(c.Qualifier, c.Name)
		var s int
		switch {
		case lerr == nil && rerr != nil:
			s = 1
		case lerr != nil && rerr == nil:
			s = 2
		default:
			return 0
		}
		if side == 0 {
			side = s
		} else if side != s {
			return 0
		}
	}
	return side
}

func collectCols(e Expr, acc []*ColRef) []*ColRef {
	switch x := e.(type) {
	case *ColRef:
		return append(acc, x)
	case *UnaryExpr:
		return collectCols(x.E, acc)
	case *BinaryExpr:
		return collectCols(x.R, collectCols(x.L, acc))
	case *FuncCall:
		for _, a := range x.Args {
			acc = collectCols(a, acc)
		}
	case *InExpr:
		acc = collectCols(x.E, acc)
		for _, a := range x.List {
			acc = collectCols(a, acc)
		}
	case *BetweenExpr:
		acc = collectCols(x.Hi, collectCols(x.Lo, collectCols(x.E, acc)))
	case *LikeExpr:
		acc = collectCols(x.E, acc)
	}
	return acc
}

func joinSources(c *exec.Ctx, left, right *source, on Expr, kind JoinKind) (*source, error) {
	lk, rk, residual := extractEqui(on, left, right)
	if len(lk) == 0 {
		if kind == JoinLeft {
			return nil, fmt.Errorf("sql: LEFT JOIN requires an equi-join condition")
		}
		// Nested-loop fallback: cross then filter on the full ON clause.
		crossed, err := crossSources(c, left, right)
		if err != nil {
			return nil, err
		}
		return filterSource(c, crossed, on)
	}
	// Hash join: build on the right, probe from the left. The key
	// expressions are materialized into typed columns once and joined
	// through rel's 64-bit row hashes — no per-row string keys.
	lkeys, err := keyCols(left, lk)
	if err != nil {
		return nil, err
	}
	rkeys, err := keyCols(right, rk)
	if err != nil {
		return nil, err
	}
	var joined *source
	if c.ShouldSpill(rel.JoinSpillEst(left.rel.NumRows(), right.rel.NumRows())) {
		// Out-of-core: the pair arrays — the join's dominant transient —
		// are staged to disk and the result columns filled block-wise
		// from the pair stream. Bitwise-identical to the in-memory path.
		sp, err := rel.EquiJoinPairsSpilled(c, lkeys, rkeys, kind == JoinLeft)
		if err != nil {
			return nil, err
		}
		cols, err := sp.Fill(c, left.rel.Cols, right.rel.Cols)
		sp.Close()
		if err != nil {
			return nil, err
		}
		if joined, err = combineSchemas(left, right, cols); err != nil {
			return nil, err
		}
	} else {
		li, ri, err := rel.EquiJoinPairs(c, lkeys, rkeys, kind == JoinLeft)
		if err != nil {
			return nil, err
		}
		joined, err = gatherPairs(c, left, right, li, ri)
		bat.FreeInts(li)
		bat.FreeInts(ri)
		if err != nil {
			return nil, err
		}
	}
	for _, res := range residual {
		if joined, err = filterSource(c, joined, res); err != nil {
			return nil, err
		}
	}
	return joined, nil
}

// keyCols materializes join-key expressions into typed columns for the
// hash join. Cross-type numeric keys (an int expression against a float
// one) hash and compare through canonical float bits inside rel, so no
// coercion is needed here.
func keyCols(s *source, exprs []Expr) ([]*bat.BAT, error) {
	n := s.rel.NumRows()
	cols := make([]*bat.BAT, len(exprs))
	for k, e := range exprs {
		c, err := compileExpr(e, s)
		if err != nil {
			return nil, err
		}
		cols[k] = materialize(c, n)
	}
	return cols, nil
}

func filterSource(c *exec.Ctx, s *source, pred Expr) (*source, error) {
	comp, err := compileExpr(pred, s)
	if err != nil {
		return nil, err
	}
	filtered := s.rel.Select(c, func(i int) bool { return truthy(comp.fn(i)) })
	return &source{rel: filtered, syms: s.syms}, nil
}

// --- SELECT pipeline -------------------------------------------------------

// execSelect routes a SELECT through the streaming morsel pipeline when
// the planner can take it, falling back to the materializing pipeline
// otherwise (and whenever streaming is disabled). Both paths produce
// bitwise-identical results; the streaming path just peaks at
// max-per-stage memory instead of sum-of-intermediates.
func (db *DB) execSelect(c *exec.Ctx, sel *SelectStmt) (*rel.Relation, error) {
	// A forced-spill retry runs materialized on purpose: the
	// materializing operators (HashJoin, GroupBy, SortStable) are the
	// ones with disk-backed twins, while the streaming join build has
	// none.
	if db.streamingEnabled() && !c.Spill().IsForced() {
		res, err := db.execSelectStreaming(c, sel)
		if !errors.Is(err, errNeedMaterialize) {
			return res, err
		}
	}
	return db.execSelectMaterialized(c, sel)
}

func (db *DB) execSelectMaterialized(c *exec.Ctx, sel *SelectStmt) (*rel.Relation, error) {
	src, err := db.buildFrom(c, sel.From)
	if err != nil {
		return nil, err
	}
	if sel.Where != nil {
		if src, err = filterSource(c, src, sel.Where); err != nil {
			return nil, err
		}
	}

	items := sel.Items
	// Expand stars against the current symbols.
	var expanded []SelectItem
	for _, it := range items {
		if !it.Star {
			expanded = append(expanded, it)
			continue
		}
		for _, sy := range src.syms {
			expanded = append(expanded, SelectItem{
				Expr: &ColRef{Qualifier: sy.qual, Name: sy.name},
				As:   sy.name,
			})
		}
	}
	items = expanded

	// Aggregation.
	aggs := findAggregates(items, sel.Having)
	if len(aggs) > 0 || len(sel.GroupBy) > 0 {
		if src, err = groupSource(c, src, sel.GroupBy, aggs); err != nil {
			return nil, err
		}
		rewrites := make(map[string]Expr)
		for k, g := range sel.GroupBy {
			rewrites[keyOf(g)] = &ColRef{Qualifier: grpQual, Name: fmt.Sprintf("g%d", k)}
		}
		for k, a := range aggs {
			rewrites[keyOf(a)] = &ColRef{Qualifier: grpQual, Name: fmt.Sprintf("agg%d", k)}
		}
		for k := range items {
			items[k].Expr = rewrite(items[k].Expr, rewrites)
		}
		if sel.Having != nil {
			having := rewrite(sel.Having, rewrites)
			if src, err = filterSource(c, src, having); err != nil {
				return nil, err
			}
		}
	} else if sel.Having != nil {
		return nil, fmt.Errorf("sql: HAVING without aggregation")
	}

	return finishSelect(c, sel, items, src)
}

// projectMeta resolves the projection: compiled evaluators over the
// given source plus the output schema and symbols, with the duplicate
// name disambiguation the dialect applies. Both pipelines (and the
// streaming planner's dry run) funnel through it, so output naming and
// typing can never diverge between them.
func projectMeta(items []SelectItem, src *source) (rel.Schema, []sym, []*compiled, error) {
	outSchema := make(rel.Schema, len(items))
	outSyms := make([]sym, len(items))
	comps := make([]*compiled, len(items))
	seen := map[string]int{}
	for k, it := range items {
		comp, err := compileExpr(it.Expr, src)
		if err != nil {
			return nil, nil, nil, err
		}
		name := it.As
		if name == "" {
			if cr, ok := it.Expr.(*ColRef); ok {
				name = cr.Name
			} else {
				name = fmt.Sprintf("col%d", k+1)
			}
		}
		if prev, dup := seen[name]; dup {
			// Disambiguate duplicate output names with the qualifier.
			if cr, ok := items[prev].Expr.(*ColRef); ok && cr.Qualifier != "" && outSchema[prev].Name == name {
				outSchema[prev].Name = cr.Qualifier + "." + name
			}
			if cr, ok := it.Expr.(*ColRef); ok && cr.Qualifier != "" {
				name = cr.Qualifier + "." + name
			} else {
				name = fmt.Sprintf("%s_%d", name, k+1)
			}
		}
		seen[name] = k
		outSchema[k] = rel.Attr{Name: name, Type: comp.typ}
		outSyms[k] = sym{name: name}
		comps[k] = comp
	}
	return outSchema, outSyms, comps, nil
}

// finishSelect runs the tail of the SELECT pipeline — projection,
// DISTINCT, ORDER BY, LIMIT — over a materialized source. The streaming
// aggregation path funnels through it too (its grouped relation is
// materialized by the time grouping completes), so the tail semantics
// cannot diverge between pipelines.
func finishSelect(c *exec.Ctx, sel *SelectStmt, items []SelectItem, src *source) (*rel.Relation, error) {
	outSchema, outSyms, comps, err := projectMeta(items, src)
	if err != nil {
		return nil, err
	}
	n := src.rel.NumRows()
	outCols := make([]*bat.BAT, len(items))
	for k := range comps {
		outCols[k] = materialize(comps[k], n)
	}
	out, err := rel.New("", outSchema, outCols)
	if err != nil {
		return nil, err
	}
	return finishOutput(c, sel, out, outSyms, src)
}

// finishOutput applies DISTINCT, ORDER BY and LIMIT to the projected
// output. src, when non-nil, is the pre-projection source ORDER BY may
// fall back to for sort keys that were not selected; the streaming
// projection path passes nil (its planner already proved the sort keys
// compile against the output).
func finishOutput(c *exec.Ctx, sel *SelectStmt, out *rel.Relation, outSyms []sym, src *source) (*rel.Relation, error) {
	if sel.Distinct {
		out = out.Distinct(c)
	}

	if len(sel.OrderBy) > 0 {
		outSrc := &source{rel: out, syms: outSyms}
		comps := make([]*compiled, len(sel.OrderBy))
		for k, ob := range sel.OrderBy {
			comp, err := compileExpr(ob.Expr, outSrc)
			if err != nil && src != nil && !sel.Distinct && src.rel.NumRows() == out.NumRows() {
				// Fall back to the pre-projection source: ORDER BY may
				// reference input columns that were not selected.
				comp, err = compileExpr(ob.Expr, src)
			}
			if err != nil {
				return nil, err
			}
			comps[k] = comp
		}
		// Compiled comparators only read at fn(i) time, so the parallel
		// (and, under pressure, disk-merging) stable sort is safe here.
		idx := bat.SortStable(c, out.NumRows(), func(a, b int) bool {
			for k, comp := range comps {
				va, vb := comp.fn(a), comp.fn(b)
				if va.Equal(vb) {
					continue
				}
				if sel.OrderBy[k].Desc {
					return vb.Less(va)
				}
				return va.Less(vb)
			}
			return false
		})
		out = out.Gather(c, idx)
		bat.FreeInts(idx)
	}

	if sel.Limit >= 0 {
		out = out.Limit(c, sel.Limit)
	}
	return out, nil
}

// grpQual is the reserved qualifier for grouped columns.
const grpQual = "#grp"

// findAggregates walks the select items and HAVING clause collecting
// aggregate calls in a deterministic order (deduplicated structurally).
func findAggregates(items []SelectItem, having Expr) []*FuncCall {
	var out []*FuncCall
	seen := map[string]bool{}
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *FuncCall:
			if _, ok := aggFuncs[x.Name]; ok {
				k := keyOf(x)
				if !seen[k] {
					seen[k] = true
					out = append(out, x)
				}
				return // no nested aggregates
			}
			for _, a := range x.Args {
				walk(a)
			}
		case *UnaryExpr:
			walk(x.E)
		case *BinaryExpr:
			walk(x.L)
			walk(x.R)
		}
	}
	for _, it := range items {
		if it.Expr != nil {
			walk(it.Expr)
		}
	}
	if having != nil {
		walk(having)
	}
	return out
}

// groupSource materializes group keys and aggregate inputs, runs the
// grouping operator, and exposes the result under the #grp qualifier.
func groupSource(c *exec.Ctx, src *source, groupBy []Expr, aggs []*FuncCall) (*source, error) {
	n := src.rel.NumRows()
	schema := rel.Schema{}
	cols := []*bat.BAT{}
	var keyNames []string
	for k, g := range groupBy {
		comp, err := compileExpr(g, src)
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("g%d", k)
		schema = append(schema, rel.Attr{Name: name, Type: comp.typ})
		cols = append(cols, materialize(comp, n))
		keyNames = append(keyNames, name)
	}
	specs := make([]rel.AggSpec, len(aggs))
	for k, a := range aggs {
		fn := aggFuncs[a.Name]
		spec := rel.AggSpec{Func: fn, As: fmt.Sprintf("agg%d", k)}
		if !a.Star {
			if len(a.Args) != 1 {
				return nil, fmt.Errorf("sql: %s takes one argument", a.Name)
			}
			comp, err := compileExpr(a.Args[0], src)
			if err != nil {
				return nil, err
			}
			name := fmt.Sprintf("a%d", k)
			schema = append(schema, rel.Attr{Name: name, Type: comp.typ})
			cols = append(cols, materialize(comp, n))
			spec.Attr = name
		} else if fn != rel.Count {
			return nil, fmt.Errorf("sql: %s(*) not supported", a.Name)
		}
		specs[k] = spec
	}
	if len(cols) == 0 {
		// Pure COUNT(*) with no grouping materializes no columns; keep a
		// dummy column so the row count survives into the grouping.
		schema = rel.Schema{{Name: "#dummy", Type: bat.Int}}
		cols = []*bat.BAT{bat.FromInts(make([]int64, n))}
	}
	tmp, err := rel.New("", schema, cols)
	if err != nil {
		return nil, err
	}
	grouped, err := rel.GroupBy(c, tmp, keyNames, specs)
	if err != nil {
		return nil, err
	}
	// Global aggregation over an empty input yields one row of zeros
	// (COUNT(*) = 0), matching SQL semantics.
	if len(keyNames) == 0 && grouped.NumRows() == 0 {
		grouped = zeroAggRow(grouped)
	}
	return newSource(grouped, grpQual), nil
}

// zeroAggRow is the SQL empty-global-aggregation result: a single row of
// zero values (COUNT(*) = 0) in the grouped relation's schema.
func zeroAggRow(grouped *rel.Relation) *rel.Relation {
	b := rel.NewBuilder("", grouped.Schema)
	vals := make([]bat.Value, len(grouped.Schema))
	for k, a := range grouped.Schema {
		switch a.Type {
		case bat.Int:
			vals[k] = bat.IntValue(0)
		case bat.Float:
			vals[k] = bat.FloatValue(0)
		default:
			vals[k] = bat.StringValue("")
		}
	}
	b.MustAdd(vals...)
	return b.Relation()
}

// rewrite replaces sub-expressions whose structural key appears in the map.
func rewrite(e Expr, m map[string]Expr) Expr {
	if e == nil {
		return nil
	}
	if r, ok := m[keyOf(e)]; ok {
		return r
	}
	switch x := e.(type) {
	case *UnaryExpr:
		return &UnaryExpr{Op: x.Op, E: rewrite(x.E, m)}
	case *BinaryExpr:
		return &BinaryExpr{Op: x.Op, L: rewrite(x.L, m), R: rewrite(x.R, m)}
	case *FuncCall:
		args := make([]Expr, len(x.Args))
		for k, a := range x.Args {
			args[k] = rewrite(a, m)
		}
		return &FuncCall{Name: x.Name, Star: x.Star, Args: args}
	case *InExpr:
		list := make([]Expr, len(x.List))
		for k, a := range x.List {
			list[k] = rewrite(a, m)
		}
		return &InExpr{E: rewrite(x.E, m), List: list, Not: x.Not}
	case *BetweenExpr:
		return &BetweenExpr{E: rewrite(x.E, m), Lo: rewrite(x.Lo, m), Hi: rewrite(x.Hi, m), Not: x.Not}
	case *LikeExpr:
		return &LikeExpr{E: rewrite(x.E, m), Pattern: x.Pattern, Not: x.Not}
	}
	return e
}
