// Package sql implements a SQL front end for the relational engine with
// the paper's RMA extension: relational matrix operations appear as table
// functions in the FROM clause, e.g.
//
//	SELECT * FROM INV(rating BY User);
//	SELECT * FROM MMU(w4 BY C, w3 BY U) AS w5 CROSS JOIN (SELECT COUNT(*) AS M FROM w1) AS t;
//
// The supported dialect covers what the paper's workloads need: SELECT
// with WHERE / GROUP BY / HAVING / ORDER BY / LIMIT / DISTINCT, inner,
// left and cross joins, derived tables, scalar and aggregate expressions,
// CREATE TABLE, INSERT, and DROP TABLE.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString // '...' literal
	tokSymbol // punctuation and operators
	tokKeyword
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased, symbols canonical
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "AS": true, "ON": true,
	"JOIN": true, "INNER": true, "LEFT": true, "CROSS": true, "DISTINCT": true,
	"CREATE": true, "TABLE": true, "INSERT": true, "INTO": true, "VALUES": true,
	"DROP": true, "AND": true, "OR": true, "NOT": true, "ASC": true,
	"DESC": true, "NULL": true, "IN": true, "BETWEEN": true, "LIKE": true,
	"PERSIST": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case isIdentStart(rune(c)):
			l.ident()
		case c >= '0' && c <= '9':
			l.number()
		case c == '\'':
			if err := l.stringLit(); err != nil {
				return nil, err
			}
		case c == '"':
			if err := l.quotedIdent(); err != nil {
				return nil, err
			}
		default:
			if err := l.symbol(); err != nil {
				return nil, err
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func isIdentStart(c rune) bool {
	return unicode.IsLetter(c) || c == '_'
}

func isIdentPart(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_'
}

func (l *lexer) ident() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	text := l.src[start:l.pos]
	up := strings.ToUpper(text)
	if keywords[up] {
		l.toks = append(l.toks, token{kind: tokKeyword, text: up, pos: start})
		return
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: text, pos: start})
}

func (l *lexer) number() {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		if (c == 'e' || c == 'E') && l.pos+1 < len(l.src) {
			next := l.src[l.pos+1]
			if next == '+' || next == '-' || (next >= '0' && next <= '9') {
				l.pos += 2
				for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
					l.pos++
				}
			}
		}
		break
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) stringLit() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' { // escaped ''
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string literal at %d", start)
}

// quotedIdent lexes "..." identifiers, needed to reference attributes whose
// names come from column casts (e.g. "5am" after a transpose).
func (l *lexer) quotedIdent() error {
	start := l.pos
	l.pos++
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			l.pos++
			l.toks = append(l.toks, token{kind: tokIdent, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated quoted identifier at %d", start)
}

var twoCharSymbols = map[string]bool{"<>": true, "!=": true, "<=": true, ">=": true}

func (l *lexer) symbol() error {
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		if twoCharSymbols[two] {
			l.toks = append(l.toks, token{kind: tokSymbol, text: two, pos: l.pos})
			l.pos += 2
			return nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', ';', '*', '+', '-', '/', '%', '=', '<', '>', '.':
		l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: l.pos})
		l.pos++
		return nil
	}
	return fmt.Errorf("sql: unexpected character %q at %d", c, l.pos)
}
