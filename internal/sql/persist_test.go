package sql

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/bat"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/rel"
	"repro/internal/store"
)

// Morsel-aligned storage: zone-map pruning skips whole segments, which
// only preserves morsel boundaries (and with them bitwise determinism)
// because segment rows are an exact multiple of the morsel size.
func TestSegmentMorselAlignment(t *testing.T) {
	if store.BlockRows != bat.MorselSize {
		t.Fatalf("store.BlockRows %d != bat.MorselSize %d", store.BlockRows, bat.MorselSize)
	}
	if store.SegRows%bat.MorselSize != 0 {
		t.Fatalf("store.SegRows %d not a multiple of bat.MorselSize %d", store.SegRows, bat.MorselSize)
	}
}

// persistSrc builds a wide source relation spanning several segments:
// ascending int keys (friendly to zone maps), floats with negative
// zero and odd bit patterns, strings with repeats.
func persistSrc(n int) *rel.Relation {
	ks := make([]int64, n)
	vs := make([]float64, n)
	ss := make([]string, n)
	for i := range ks {
		ks[i] = int64(i)
		vs[i] = float64(i%977)*1.25 - 610
		if i%4096 == 7 {
			vs[i] = math.Copysign(0, -1) // -0 must survive the round trip
		}
		ss[i] = []string{"red", "green", "blue", "cyan"}[i%4]
	}
	r, err := rel.New("src", rel.Schema{
		{Name: "k", Type: bat.Int},
		{Name: "v", Type: bat.Float},
		{Name: "s", Type: bat.String},
	}, []*bat.BAT{bat.FromInts(ks), bat.FromFloats(vs), bat.FromStrings(ss)})
	if err != nil {
		panic(err)
	}
	return r
}

func TestPersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	n := 3*store.SegRows + 123 // four segments, last one partial

	db1 := NewDB()
	defer db1.Close()
	if err := db1.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	db1.Register("src", persistSrc(n))
	mustExec := func(db *DB, q string) {
		t.Helper()
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	mustExec(db1, "CREATE TABLE t (k BIGINT, v DOUBLE, s VARCHAR) PERSIST")
	mustExec(db1, "INSERT INTO t SELECT k, v, s FROM src")
	if !db1.Persisted("t") {
		t.Fatal("t not marked persisted")
	}
	if _, err := os.Stat(filepath.Join(dir, "t.seg")); err != nil {
		t.Fatalf("checkpoint file: %v", err)
	}

	// A fresh database — the restart — restores the table bitwise.
	db2 := NewDB()
	defer db2.Close()
	if err := db2.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := db2.LoadPersisted()
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 || loaded[0] != "t" {
		t.Fatalf("loaded %v, want [t]", loaded)
	}
	t1, err := db1.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := db2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := equalBits(t1, t2); err != nil {
		t.Fatalf("restored table differs: %v", err)
	}

	// Queries over the restored table match the original, including a
	// predicate shape the zone maps prune on.
	for _, q := range []string{
		"SELECT k, v, s FROM t WHERE k >= " + strconv.Itoa(n-100) + " ORDER BY k",
		"SELECT COUNT(*) AS n, SUM(v) AS sv FROM t WHERE k BETWEEN 70000 AND 70100",
		"SELECT s AS c, COUNT(*) AS n FROM t WHERE v > 100 GROUP BY s ORDER BY c",
		"SELECT k FROM t WHERE s = 'red' AND k < 50 ORDER BY k",
	} {
		a, err := db1.Query(q)
		if err != nil {
			t.Fatalf("db1 %s: %v", q, err)
		}
		b, err := db2.Query(q)
		if err != nil {
			t.Fatalf("db2 %s: %v", q, err)
		}
		if err := equalBits(a, b); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}

	// Appending to the restored table re-checkpoints; a third database
	// sees the merged rows.
	mustExec(db2, "INSERT INTO t VALUES (9999999, 0.5, 'tail')")
	db3 := NewDB()
	defer db3.Close()
	if err := db3.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := db3.LoadPersisted(); err != nil {
		t.Fatal(err)
	}
	t3, _ := db3.Table("t")
	if t3.NumRows() != n+1 {
		t.Fatalf("after append: %d rows, want %d", t3.NumRows(), n+1)
	}

	// DROP removes the checkpoint file.
	mustExec(db3, "DROP TABLE t")
	if _, err := os.Stat(filepath.Join(dir, "t.seg")); !os.IsNotExist(err) {
		t.Fatalf("checkpoint file survives DROP: %v", err)
	}
}

func TestPersistRequiresDataDir(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE t (k BIGINT) PERSIST"); err == nil {
		t.Fatal("PERSIST without a data directory should fail")
	}
	// The failed create must not leave the table behind.
	if _, err := db.Table("t"); err == nil {
		t.Fatal("table registered despite failed PERSIST create")
	}
}

// TestZoneMapSegmentPruning checks the skip flags directly: ascending
// keys give each segment a disjoint key range, so a tight key bound
// must prune every other segment, and the pruned scan still returns
// exactly the right rows.
func TestZoneMapSegmentPruning(t *testing.T) {
	dir := t.TempDir()
	n := 3 * store.SegRows
	db := NewDB()
	defer db.Close()
	if err := db.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	db.Register("src", persistSrc(n))
	for _, q := range []string{
		"CREATE TABLE t (k BIGINT, v DOUBLE, s VARCHAR) PERSIST",
		"INSERT INTO t SELECT k, v, s FROM src",
	} {
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	rd := db.storedReader("t")
	if rd == nil {
		t.Fatal("no stored reader after checkpoint")
	}
	if rd.NumSegs() != 3 {
		t.Fatalf("%d segments, want 3", rd.NumSegs())
	}
	tbl, _ := db.Table("t")
	src := newSource(tbl, "t")

	// k >= 2*SegRows lives entirely in the last segment.
	pred := &BinaryExpr{Op: ">=",
		L: &ColRef{Name: "k"},
		R: &NumberLit{IsInt: true, Int: int64(2 * store.SegRows)}}
	skip := segSkips(rd, src, []Expr{pred}, n)
	if skip == nil {
		t.Fatal("no pruning for a tight key bound")
	}
	want := []bool{true, true, false}
	for s, w := range want {
		if skip[s] != w {
			t.Fatalf("segment %d: skip=%v, want %v (flags %v)", s, skip[s], w, skip)
		}
	}

	// BETWEEN inside the middle segment prunes the outer two.
	between := &BetweenExpr{E: &ColRef{Name: "k"},
		Lo: &NumberLit{IsInt: true, Int: int64(store.SegRows + 10)},
		Hi: &NumberLit{IsInt: true, Int: int64(store.SegRows + 90)}}
	skip = segSkips(rd, src, []Expr{between}, n)
	if skip == nil || !skip[0] || skip[1] || !skip[2] {
		t.Fatalf("BETWEEN pruning flags %v, want [true false true]", skip)
	}

	// A flipped literal comparison ("literal <= col") prunes the same way.
	flipped := &BinaryExpr{Op: "<=",
		L: &NumberLit{IsInt: true, Int: int64(2 * store.SegRows)},
		R: &ColRef{Name: "k"}}
	skip = segSkips(rd, src, []Expr{flipped}, n)
	if skip == nil || !skip[0] || !skip[1] || skip[2] {
		t.Fatalf("flipped pruning flags %v, want [true true false]", skip)
	}

	// The pruned streaming query agrees with an unpersisted database.
	plain := NewDB()
	plain.Register("t", tbl.WithName("t"))
	q := "SELECT k, v FROM t WHERE k >= " + strconv.Itoa(2*store.SegRows) + " ORDER BY k LIMIT 20"
	a, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := plain.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := equalBits(a, b); err != nil {
		t.Fatalf("pruned scan differs: %v", err)
	}
	if a.NumRows() != 20 {
		t.Fatalf("pruned scan returned %d rows, want 20", a.NumRows())
	}
}

// TestLoadPersistedBudgetBoundary pins the CatchBudget contract on the
// restore path: LoadPersisted runs under the database's RMA options, so
// a tenant budget too small for the segment read buffers must surface
// as the typed error, never a panic unwinding the caller.
// (rmalint/budgetboundary flagged LoadPersisted before it installed the
// handler.)
func TestLoadPersistedBudgetBoundary(t *testing.T) {
	dir := t.TempDir()
	db1 := NewDB()
	defer db1.Close()
	if err := db1.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	db1.Register("src", persistSrc(512))
	if _, err := db1.Exec("CREATE TABLE t (k BIGINT, v DOUBLE, s VARCHAR) PERSIST"); err != nil {
		t.Fatal(err)
	}
	if _, err := db1.Exec("INSERT INTO t SELECT k, v, s FROM src"); err != nil {
		t.Fatal(err)
	}

	db2 := NewDB()
	defer db2.Close()
	if err := db2.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	db2.SetRMAOptions(&core.Options{Tenant: "load-budget", MemoryBudget: 1, Governor: exec.NewGovernor(0, 0)})
	if _, err := db2.LoadPersisted(); !errors.Is(err, exec.ErrMemoryBudget) {
		t.Fatalf("LoadPersisted under a 1-byte budget: err = %v, want ErrMemoryBudget", err)
	}

	// An ungoverned restore of the same directory succeeds.
	db3 := NewDB()
	defer db3.Close()
	if err := db3.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := db3.LoadPersisted()
	if err != nil || len(loaded) != 1 || loaded[0] != "t" {
		t.Fatalf("ungoverned restore: loaded %v, err %v", loaded, err)
	}
}
