package sql

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// The plan cache keys on normalizeStmt, so the one property that must
// never break is: two statements that can evaluate differently must
// never normalize to the same key. String literals are where that is
// easiest to get wrong — whitespace collapsing, case folding, and quote
// re-escaping are all correct OUTSIDE quotes and all wrong INSIDE them.

// TestNormalizeLiteralSensitivity pins pairwise non-collision across
// literals that differ only in ways a sloppy normalizer tends to erase.
func TestNormalizeLiteralSensitivity(t *testing.T) {
	lits := []string{
		"a", "A", // case inside quotes is semantic
		" a", "a ", " a ", "a  b", "a b", // inner/edge whitespace is semantic
		"a\tb", "a\nb", // so are literal tabs/newlines
		"", " ", // empty vs. blank
		"it''s", "it's", // a value holding a doubled quote vs. one holding a single quote
		"--x", "/*x*/", // comment syntax inside quotes is data
		"SELECT", "select", // keywords inside quotes are data
		`he said ""hi""`,
	}
	keys := make(map[string]string, len(lits))
	for _, lit := range lits {
		src := "SELECT x FROM t WHERE s = '" + strings.ReplaceAll(lit, "'", "''") + "'"
		key, ok := normalizeStmt(src)
		if !ok {
			t.Fatalf("%q: not normalizable", src)
		}
		if prev, dup := keys[key]; dup {
			t.Errorf("literals %q and %q share cache key %q", prev, lit, key)
		}
		keys[key] = lit
	}

	// The flip side: differences that are NOT semantic must collapse.
	same := []string{
		"select x from t where s = 'a b'",
		"SELECT x FROM t WHERE s = 'a b'",
		"SELECT  x\n\tFROM t WHERE s='a b'",
		"SELECT x FROM t WHERE s = 'a b' -- trailing comment",
	}
	want, _ := normalizeStmt(same[0])
	for _, src := range same[1:] {
		if got, ok := normalizeStmt(src); !ok || got != want {
			t.Errorf("%q normalized to %q, want %q", src, got, want)
		}
	}
}

// TestNormalizeIdentifierLiteralDisjoint checks the quoting discipline:
// an identifier can never collide with a keyword or a string literal of
// the same spelling.
func TestNormalizeIdentifierLiteralDisjoint(t *testing.T) {
	a, _ := normalizeStmt("SELECT x FROM t WHERE s = 'y'")
	b, ok := normalizeStmt("SELECT x FROM t WHERE s = y")
	if !ok || a == b {
		t.Errorf("literal 'y' and identifier y share key %q", a)
	}
}

// FuzzNormalizeStmt is the property under fuzzing: embed an arbitrary
// byte string as a literal and require (1) normalization succeeds, (2)
// the key round-trips — re-normalizing the key is a fixed point, so a
// cached key can itself be looked up — and (3) two different literal
// values never share a key (checked against a mutated copy).
func FuzzNormalizeStmt(f *testing.F) {
	f.Add("a")
	f.Add("it's")
	f.Add("a  b")
	f.Add("ключ")
	f.Add("'';DROP TABLE t;--")
	f.Add("x\x00y")
	f.Fuzz(func(t *testing.T, lit string) {
		if !utf8.ValidString(lit) || strings.ContainsAny(lit, "\x00") {
			t.Skip() // the lexer is defined over UTF-8 SQL text
		}
		quote := func(s string) string {
			return "SELECT x FROM t WHERE s = '" + strings.ReplaceAll(s, "'", "''") + "'"
		}
		key, ok := normalizeStmt(quote(lit))
		if !ok {
			t.Fatalf("literal %q: not normalizable", lit)
		}
		again, ok := normalizeStmt(key)
		if !ok || again != key {
			t.Fatalf("key not a fixed point: %q -> %q", key, again)
		}
		mutated := lit + "x"
		mkey, ok := normalizeStmt(quote(mutated))
		if !ok {
			t.Fatalf("mutated literal %q: not normalizable", mutated)
		}
		if mkey == key {
			t.Fatalf("literals %q and %q share cache key %q", lit, mutated, key)
		}
	})
}
