package bat

import "fmt"

// BAT is a binary association table with a virtual (dense) OID head and a
// typed tail. The tail is either a dense Vector or, for float columns with
// many zeros, a zero-suppressed Sparse tail — standing in for MonetDB's
// built-in compression that the paper's Table 5 experiment exercises.
type BAT struct {
	vec *Vector
	sp  *Sparse
}

// FromVector wraps a dense vector in a BAT.
func FromVector(v *Vector) *BAT { return &BAT{vec: v} }

// FromFloats builds a dense float BAT (no copy).
func FromFloats(f []float64) *BAT { return &BAT{vec: NewFloatVector(f)} }

// FromInts builds a dense int BAT (no copy).
func FromInts(i []int64) *BAT { return &BAT{vec: NewIntVector(i)} }

// FromStrings builds a dense string BAT (no copy).
func FromStrings(s []string) *BAT { return &BAT{vec: NewStringVector(s)} }

// FromSparse wraps a zero-suppressed tail in a BAT.
func FromSparse(sp *Sparse) *BAT { return &BAT{sp: sp} }

// IsSparse reports whether the tail is zero-suppressed.
func (b *BAT) IsSparse() bool { return b.sp != nil }

// Sparse returns the zero-suppressed tail, or nil for dense BATs.
func (b *BAT) Sparse() *Sparse { return b.sp }

// Type returns the tail domain.
func (b *BAT) Type() Type {
	if b.sp != nil {
		return Float
	}
	return b.vec.Type()
}

// Len returns the number of (virtual OID, value) pairs.
func (b *BAT) Len() int {
	if b.sp != nil {
		return b.sp.Len()
	}
	return b.vec.Len()
}

// Vector returns the dense tail, densifying a sparse tail first.
func (b *BAT) Vector() *Vector {
	if b.sp != nil {
		return NewFloatVector(b.sp.Densify())
	}
	return b.vec
}

// Get returns the tail value at OID k.
func (b *BAT) Get(k int) Value {
	if b.sp != nil {
		return FloatValue(b.sp.Get(k))
	}
	return b.vec.Get(k)
}

// Gather is leftfetchjoin: b↓idx returns a BAT whose k-th tail value is
// b[idx[k]]. Sparse tails are gathered without densifying.
func (b *BAT) Gather(idx []int) *BAT {
	if b.sp != nil {
		return FromSparse(b.sp.Gather(idx))
	}
	return FromVector(b.vec.Gather(idx))
}

// Clone deep-copies the BAT.
func (b *BAT) Clone() *BAT {
	if b.sp != nil {
		return FromSparse(b.sp.Clone())
	}
	return FromVector(b.vec.Clone())
}

// Floats returns the tail as a float64 slice (densifying sparse tails,
// converting int tails). An error is returned for string tails.
func (b *BAT) Floats() ([]float64, error) {
	if b.sp != nil {
		return b.sp.Densify(), nil
	}
	if b.vec.Type() == String {
		return nil, fmt.Errorf("bat: non-numeric column in numeric context")
	}
	f, _ := b.vec.AsFloats()
	return f, nil
}

// --- Vectorized kernels -------------------------------------------------
//
// These are the BAT operations that MonetDB's kernel exposes and that both
// the relational operators and the BAT-native linear algebra (package
// batlin) are written against: elementwise arithmetic between two tails,
// tail-scalar arithmetic, and aggregation. All of them produce new BATs.
//
// Every kernel decomposes its row range through ParallelFor (serial below
// SerialCutoff elements) and draws its output buffer from the arena, so a
// caller that releases dead columns runs allocation-free in steady state.
// The reductions (Sum, Dot) accumulate over fixed-size chunks combined in
// chunk order and are therefore bitwise-reproducible at any worker budget.

func floatsOf(b *BAT) []float64 {
	f, err := b.Floats()
	if err != nil {
		panic(err)
	}
	return f
}

// Add returns b + c elementwise. When both tails are zero-suppressed the
// addition runs on the compressed form (the Table 5 fast path).
func Add(b, c *BAT) *BAT {
	if b.sp != nil && c.sp != nil {
		return FromSparse(SparseAdd(b.sp, c.sp))
	}
	x, y := floatsOf(b), floatsOf(c)
	out := Alloc(len(x))
	if serialFor(len(x)) {
		for k := range x {
			out[k] = x[k] + y[k]
		}
	} else {
		ParallelFor(len(x), SerialCutoff, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				out[k] = x[k] + y[k]
			}
		})
	}
	return FromFloats(out)
}

// Sub returns b - c elementwise.
func Sub(b, c *BAT) *BAT {
	x, y := floatsOf(b), floatsOf(c)
	out := Alloc(len(x))
	if serialFor(len(x)) {
		for k := range x {
			out[k] = x[k] - y[k]
		}
	} else {
		ParallelFor(len(x), SerialCutoff, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				out[k] = x[k] - y[k]
			}
		})
	}
	return FromFloats(out)
}

// Mul returns b * c elementwise.
func Mul(b, c *BAT) *BAT {
	x, y := floatsOf(b), floatsOf(c)
	out := Alloc(len(x))
	if serialFor(len(x)) {
		for k := range x {
			out[k] = x[k] * y[k]
		}
	} else {
		ParallelFor(len(x), SerialCutoff, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				out[k] = x[k] * y[k]
			}
		})
	}
	return FromFloats(out)
}

// Div returns b / c elementwise.
func Div(b, c *BAT) *BAT {
	x, y := floatsOf(b), floatsOf(c)
	out := Alloc(len(x))
	if serialFor(len(x)) {
		for k := range x {
			out[k] = x[k] / y[k]
		}
	} else {
		ParallelFor(len(x), SerialCutoff, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				out[k] = x[k] / y[k]
			}
		})
	}
	return FromFloats(out)
}

// AddScalar returns b + s elementwise.
func AddScalar(b *BAT, s float64) *BAT {
	x := floatsOf(b)
	out := Alloc(len(x))
	if serialFor(len(x)) {
		for k := range x {
			out[k] = x[k] + s
		}
	} else {
		ParallelFor(len(x), SerialCutoff, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				out[k] = x[k] + s
			}
		})
	}
	return FromFloats(out)
}

// MulScalar returns b * s elementwise.
func MulScalar(b *BAT, s float64) *BAT {
	x := floatsOf(b)
	out := Alloc(len(x))
	if serialFor(len(x)) {
		for k := range x {
			out[k] = x[k] * s
		}
	} else {
		ParallelFor(len(x), SerialCutoff, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				out[k] = x[k] * s
			}
		})
	}
	return FromFloats(out)
}

// DivScalar returns b / s elementwise.
func DivScalar(b *BAT, s float64) *BAT {
	x := floatsOf(b)
	out := Alloc(len(x))
	if serialFor(len(x)) {
		for k := range x {
			out[k] = x[k] / s
		}
	} else {
		ParallelFor(len(x), SerialCutoff, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				out[k] = x[k] / s
			}
		})
	}
	return FromFloats(out)
}

// AXPY returns b - c*s elementwise (the update step of Gauss-Jordan
// elimination in the paper's Algorithm 2: B_j <- B_j - B_i * v2).
func AXPY(b, c *BAT, s float64) *BAT {
	x, y := floatsOf(b), floatsOf(c)
	out := Alloc(len(x))
	if serialFor(len(x)) {
		for k := range x {
			out[k] = x[k] - y[k]*s
		}
	} else {
		ParallelFor(len(x), SerialCutoff, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				out[k] = x[k] - y[k]*s
			}
		})
	}
	return FromFloats(out)
}

// AXPYInto subtracts c*s elementwise into dst: dst_k -= c_k*s. It is the
// in-place counterpart of AXPY for accumulation chains (MMU, OPD) that
// would otherwise allocate one column per addend.
func AXPYInto(dst []float64, c *BAT, s float64) {
	y := floatsOf(c)
	if serialFor(len(dst)) {
		for k := range dst {
			dst[k] -= y[k] * s
		}
	} else {
		ParallelFor(len(dst), SerialCutoff, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				dst[k] -= y[k] * s
			}
		})
	}
}

// Sum aggregates the tail: sum(B).
func Sum(b *BAT) float64 {
	if b.sp != nil {
		return b.sp.Sum()
	}
	switch b.vec.Type() {
	case Float:
		x := b.vec.Floats()
		if len(x) <= SerialCutoff { // single chunk: skip the closure
			var s float64
			for _, v := range x {
				s += v
			}
			return s
		}
		return parallelReduce(len(x), func(lo, hi int) float64 {
			var s float64
			for k := lo; k < hi; k++ {
				s += x[k]
			}
			return s
		})
	case Int:
		var si int64
		for _, x := range b.vec.Ints() {
			si += x
		}
		return float64(si)
	}
	return 0
}

// Dot returns the inner product of two tails.
func Dot(b, c *BAT) float64 {
	x, y := floatsOf(b), floatsOf(c)
	if len(x) <= SerialCutoff { // single chunk: skip the closure
		var s float64
		for k := range x {
			s += x[k] * y[k]
		}
		return s
	}
	return parallelReduce(len(x), func(lo, hi int) float64 {
		var s float64
		for k := lo; k < hi; k++ {
			s += x[k] * y[k]
		}
		return s
	})
}

// Sel returns the i-th tail value as a float (the paper's sel(B, i) single
// element access used by Algorithm 2).
func Sel(b *BAT, i int) float64 {
	if b.sp != nil {
		return b.sp.Get(i)
	}
	return b.vec.Get(i).AsFloat()
}
