package bat

import (
	"fmt"

	"repro/internal/exec"
)

// BAT is a binary association table with a virtual (dense) OID head and a
// typed tail. The tail is either a dense Vector or, for float columns with
// many zeros, a zero-suppressed Sparse tail — standing in for MonetDB's
// built-in compression that the paper's Table 5 experiment exercises.
type BAT struct {
	vec *Vector
	sp  *Sparse
}

// FromVector wraps a dense vector in a BAT.
func FromVector(v *Vector) *BAT { return &BAT{vec: v} }

// FromFloats builds a dense float BAT (no copy).
func FromFloats(f []float64) *BAT { return &BAT{vec: NewFloatVector(f)} }

// FromInts builds a dense int BAT (no copy).
func FromInts(i []int64) *BAT { return &BAT{vec: NewIntVector(i)} }

// FromStrings builds a dense string BAT (no copy).
func FromStrings(s []string) *BAT { return &BAT{vec: NewStringVector(s)} }

// FromSparse wraps a zero-suppressed tail in a BAT.
func FromSparse(sp *Sparse) *BAT { return &BAT{sp: sp} }

// IsSparse reports whether the tail is zero-suppressed.
func (b *BAT) IsSparse() bool { return b.sp != nil }

// Sparse returns the zero-suppressed tail, or nil for dense BATs.
func (b *BAT) Sparse() *Sparse { return b.sp }

// Type returns the tail domain.
func (b *BAT) Type() Type {
	if b.sp != nil {
		return Float
	}
	return b.vec.Type()
}

// Len returns the number of (virtual OID, value) pairs.
func (b *BAT) Len() int {
	if b.sp != nil {
		return b.sp.Len()
	}
	return b.vec.Len()
}

// Vector returns the dense tail, densifying a sparse tail first on the
// default execution context. Use VectorCtx inside ctx-threaded operators
// so the densify runs under the invocation's budget and arena.
func (b *BAT) Vector() *Vector { return b.VectorCtx(nil) }

// VectorCtx is Vector on an explicit execution context.
func (b *BAT) VectorCtx(c *exec.Ctx) *Vector {
	if b.sp != nil {
		return NewFloatVector(b.sp.Densify(c))
	}
	return b.vec
}

// Get returns the tail value at OID k.
func (b *BAT) Get(k int) Value {
	if b.sp != nil {
		return FloatValue(b.sp.Get(k))
	}
	return b.vec.Get(k)
}

// Gather is leftfetchjoin: b↓idx returns a BAT whose k-th tail value is
// b[idx[k]], decomposed over the context's workers. Sparse tails are
// gathered without densifying.
func (b *BAT) Gather(c *exec.Ctx, idx []int) *BAT {
	if b.sp != nil {
		return FromSparse(b.sp.Gather(c, idx))
	}
	return FromVector(b.vec.Gather(c, idx))
}

// Clone deep-copies the BAT.
func (b *BAT) Clone() *BAT {
	if b.sp != nil {
		return FromSparse(b.sp.Clone())
	}
	return FromVector(b.vec.Clone())
}

// Floats returns the tail as a float64 slice (densifying sparse tails,
// converting int tails) on the default execution context. An error is
// returned for string tails. Use FloatsCtx inside ctx-threaded operators
// so the densify/convert work runs under the invocation's budget and any
// conversion buffer comes from its arena.
func (b *BAT) Floats() ([]float64, error) { return b.FloatsCtx(nil) }

// FloatsCtx is Floats on an explicit execution context.
func (b *BAT) FloatsCtx(c *exec.Ctx) ([]float64, error) {
	if b.sp != nil {
		return b.sp.Densify(c), nil
	}
	if b.vec.Type() == String {
		return nil, fmt.Errorf("bat: non-numeric column in numeric context")
	}
	f, _ := b.vec.asFloats(c)
	return f, nil
}

// ReleaseFloats hands back a buffer obtained from FloatsCtx once the
// caller is done reading it: buffers FloatsCtx drew from the context's
// arena (densified sparse tails, converted int tails) are freed, while
// views borrowed from a dense float tail are left untouched. The slice
// must not be used afterwards. Nil-safe on the buffer.
func (b *BAT) ReleaseFloats(c *exec.Ctx, f []float64) {
	if f == nil {
		return
	}
	if b.sp != nil || b.vec.Type() == Int {
		c.Arena().FreeFloats(f)
	}
}

// --- Vectorized kernels -------------------------------------------------
//
// These are the BAT operations that MonetDB's kernel exposes and that both
// the relational operators and the BAT-native linear algebra (package
// batlin) are written against: elementwise arithmetic between two tails,
// tail-scalar arithmetic, and aggregation. All of them produce new BATs.
//
// Every kernel takes the invocation's exec.Ctx first (nil is the default
// context), decomposes its row range through Ctx.ParallelFor (serial below
// SerialCutoff elements) and draws its output buffer from Ctx.Arena, so a
// caller that releases dead columns runs allocation-free in steady state.
// The reductions (Sum, Dot) accumulate over fixed-size chunks combined in
// chunk order and are therefore bitwise-reproducible at any worker budget.

func floatsOf(c *exec.Ctx, b *BAT) []float64 {
	f, err := b.FloatsCtx(c)
	if err != nil {
		panic(err)
	}
	return f
}

// Add returns b + x elementwise. When both tails are zero-suppressed the
// addition runs on the compressed form (the Table 5 fast path).
func Add(c *exec.Ctx, b, x *BAT) *BAT {
	if b.sp != nil && x.sp != nil {
		return FromSparse(SparseAdd(c, b.sp, x.sp))
	}
	xs, ys := floatsOf(c, b), floatsOf(c, x)
	out := c.Arena().Floats(len(xs))
	if c.Serial(len(xs)) {
		for k := range xs {
			out[k] = xs[k] + ys[k]
		}
	} else {
		c.ParallelFor(len(xs), SerialCutoff, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				out[k] = xs[k] + ys[k]
			}
		})
	}
	// Conversion views (densified sparse / converted int tails) are dead
	// once the kernel has read them; dense-float views are no-ops here.
	b.ReleaseFloats(c, xs)
	x.ReleaseFloats(c, ys)
	return FromFloats(out)
}

// Sub returns b - x elementwise.
func Sub(c *exec.Ctx, b, x *BAT) *BAT {
	xs, ys := floatsOf(c, b), floatsOf(c, x)
	out := c.Arena().Floats(len(xs))
	if c.Serial(len(xs)) {
		for k := range xs {
			out[k] = xs[k] - ys[k]
		}
	} else {
		c.ParallelFor(len(xs), SerialCutoff, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				out[k] = xs[k] - ys[k]
			}
		})
	}
	b.ReleaseFloats(c, xs)
	x.ReleaseFloats(c, ys)
	return FromFloats(out)
}

// Mul returns b * x elementwise.
func Mul(c *exec.Ctx, b, x *BAT) *BAT {
	xs, ys := floatsOf(c, b), floatsOf(c, x)
	out := c.Arena().Floats(len(xs))
	if c.Serial(len(xs)) {
		for k := range xs {
			out[k] = xs[k] * ys[k]
		}
	} else {
		c.ParallelFor(len(xs), SerialCutoff, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				out[k] = xs[k] * ys[k]
			}
		})
	}
	b.ReleaseFloats(c, xs)
	x.ReleaseFloats(c, ys)
	return FromFloats(out)
}

// Div returns b / x elementwise.
func Div(c *exec.Ctx, b, x *BAT) *BAT {
	xs, ys := floatsOf(c, b), floatsOf(c, x)
	out := c.Arena().Floats(len(xs))
	if c.Serial(len(xs)) {
		for k := range xs {
			out[k] = xs[k] / ys[k]
		}
	} else {
		c.ParallelFor(len(xs), SerialCutoff, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				out[k] = xs[k] / ys[k]
			}
		})
	}
	b.ReleaseFloats(c, xs)
	x.ReleaseFloats(c, ys)
	return FromFloats(out)
}

// AddScalar returns b + s elementwise.
func AddScalar(c *exec.Ctx, b *BAT, s float64) *BAT {
	xs := floatsOf(c, b)
	out := c.Arena().Floats(len(xs))
	if c.Serial(len(xs)) {
		for k := range xs {
			out[k] = xs[k] + s
		}
	} else {
		c.ParallelFor(len(xs), SerialCutoff, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				out[k] = xs[k] + s
			}
		})
	}
	b.ReleaseFloats(c, xs)
	return FromFloats(out)
}

// MulScalar returns b * s elementwise.
func MulScalar(c *exec.Ctx, b *BAT, s float64) *BAT {
	xs := floatsOf(c, b)
	out := c.Arena().Floats(len(xs))
	if c.Serial(len(xs)) {
		for k := range xs {
			out[k] = xs[k] * s
		}
	} else {
		c.ParallelFor(len(xs), SerialCutoff, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				out[k] = xs[k] * s
			}
		})
	}
	b.ReleaseFloats(c, xs)
	return FromFloats(out)
}

// DivScalar returns b / s elementwise.
func DivScalar(c *exec.Ctx, b *BAT, s float64) *BAT {
	xs := floatsOf(c, b)
	out := c.Arena().Floats(len(xs))
	if c.Serial(len(xs)) {
		for k := range xs {
			out[k] = xs[k] / s
		}
	} else {
		c.ParallelFor(len(xs), SerialCutoff, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				out[k] = xs[k] / s
			}
		})
	}
	b.ReleaseFloats(c, xs)
	return FromFloats(out)
}

// AXPY returns b - x*s elementwise (the update step of Gauss-Jordan
// elimination in the paper's Algorithm 2: B_j <- B_j - B_i * v2).
func AXPY(c *exec.Ctx, b, x *BAT, s float64) *BAT {
	xs, ys := floatsOf(c, b), floatsOf(c, x)
	out := c.Arena().Floats(len(xs))
	if c.Serial(len(xs)) {
		for k := range xs {
			out[k] = xs[k] - ys[k]*s
		}
	} else {
		c.ParallelFor(len(xs), SerialCutoff, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				out[k] = xs[k] - ys[k]*s
			}
		})
	}
	b.ReleaseFloats(c, xs)
	x.ReleaseFloats(c, ys)
	return FromFloats(out)
}

// AXPYInto subtracts x*s elementwise into dst: dst_k -= x_k*s. It is the
// in-place counterpart of AXPY for accumulation chains (MMU, OPD) that
// would otherwise allocate one column per addend.
func AXPYInto(c *exec.Ctx, dst []float64, x *BAT, s float64) {
	ys := floatsOf(c, x)
	if c.Serial(len(dst)) {
		for k := range dst {
			dst[k] -= ys[k] * s
		}
	} else {
		c.ParallelFor(len(dst), SerialCutoff, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				dst[k] -= ys[k] * s
			}
		})
	}
	x.ReleaseFloats(c, ys)
}

// Sum aggregates the tail: sum(B).
func Sum(c *exec.Ctx, b *BAT) float64 {
	if b.sp != nil {
		return b.sp.Sum(c)
	}
	switch b.vec.Type() {
	case Float:
		xs := b.vec.Floats()
		if len(xs) <= SerialCutoff { // single chunk: skip the closure
			var s float64
			for _, v := range xs {
				s += v
			}
			return s
		}
		return c.Reduce(len(xs), func(lo, hi int) float64 {
			var s float64
			for k := lo; k < hi; k++ {
				s += xs[k]
			}
			return s
		})
	case Int:
		var si int64
		for _, x := range b.vec.Ints() {
			si += x
		}
		return float64(si)
	}
	return 0
}

// Dot returns the inner product of two tails.
func Dot(c *exec.Ctx, b, x *BAT) float64 {
	xs, ys := floatsOf(c, b), floatsOf(c, x)
	var s float64
	if len(xs) <= SerialCutoff { // single chunk: skip the closure
		for k := range xs {
			s += xs[k] * ys[k]
		}
	} else {
		s = c.Reduce(len(xs), func(lo, hi int) float64 {
			var s float64
			for k := lo; k < hi; k++ {
				s += xs[k] * ys[k]
			}
			return s
		})
	}
	b.ReleaseFloats(c, xs)
	x.ReleaseFloats(c, ys)
	return s
}

// Sel returns the i-th tail value as a float (the paper's sel(B, i) single
// element access used by Algorithm 2).
func Sel(b *BAT, i int) float64 {
	if b.sp != nil {
		return b.sp.Get(i)
	}
	return b.vec.Get(i).AsFloat()
}
