package bat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randDense generates a dense slice with the given zero density: d = 0
// yields all zeros, d = 1 fully dense, in between a random pattern.
func randDense(rng *rand.Rand, n int, density float64) []float64 {
	f := make([]float64, n)
	for k := range f {
		if rng.Float64() < density {
			f[k] = rng.NormFloat64() * 10
		}
	}
	return f
}

// sparseDensities covers the degenerate patterns the kernels special-case
// implicitly: all-zero, fully dense, and mixtures.
func sparseDensities(rng *rand.Rand) float64 {
	switch rng.Intn(4) {
	case 0:
		return 0
	case 1:
		return 1
	default:
		return rng.Float64()
	}
}

// TestQuickSparseAddMatchesDense: SparseAdd densified is bitwise-equal to
// the dense elementwise sum, on randomized sparsity patterns at worker
// budgets 1, 2, and 8.
func TestQuickSparseAddMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		fa := randDense(rng, n, sparseDensities(rng))
		fb := randDense(rng, n, sparseDensities(rng))
		a, b := Compress(fa), Compress(fb)
		for _, w := range []int{1, 2, 8} {
			ok := true
			withParallelism(w, func() {
				got := SparseAdd(nil, a, b).Densify(nil)
				for k := range got {
					if math.Float64bits(got[k]) != math.Float64bits(fa[k]+fb[k]) {
						ok = false
						return
					}
				}
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestSparseAddParallelBoundary drives the range-merged parallel path
// (nnz above the serial cutoff) and pins it to the serial result.
func TestSparseAddParallelBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 2*SerialCutoff + 17
	fa := randDense(rng, n, 0.7)
	fb := randDense(rng, n, 0.7)
	a, b := Compress(fa), Compress(fb)
	var want *Sparse
	withParallelism(1, func() { want = SparseAdd(nil, a, b) })
	for _, w := range []int{2, 8} {
		withParallelism(w, func() {
			got := SparseAdd(nil, a, b)
			if got.NNZ() != want.NNZ() || got.Len() != want.Len() {
				t.Fatalf("workers=%d: nnz %d/%d len %d/%d", w, got.NNZ(), want.NNZ(), got.Len(), want.Len())
			}
			for k := range want.oid {
				if got.oid[k] != want.oid[k] || math.Float64bits(got.val[k]) != math.Float64bits(want.val[k]) {
					t.Fatalf("workers=%d: entry %d differs", w, k)
				}
			}
		})
	}
}

// TestQuickSparseGatherMatchesDense: gathering a zero-suppressed column
// equals gathering its densified form, for random index lists with
// repeats, at worker budgets 1, 2, and 8.
func TestQuickSparseGatherMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		fa := randDense(rng, n, sparseDensities(rng))
		sp := Compress(fa)
		idx := make([]int, rng.Intn(400))
		for k := range idx {
			idx[k] = rng.Intn(n)
		}
		for _, w := range []int{1, 2, 8} {
			ok := true
			withParallelism(w, func() {
				got := sp.Gather(nil, idx).Densify(nil)
				if len(got) != len(idx) {
					ok = false
					return
				}
				for k, j := range idx {
					if math.Float64bits(got[k]) != math.Float64bits(fa[j]) {
						ok = false
						return
					}
				}
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestSparseGatherDensifyParallelBoundary drives the parallel Gather and
// Densify paths above the serial cutoff and pins them to the serial output.
func TestSparseGatherDensifyParallelBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 2*SerialCutoff + 5
	fa := randDense(rng, n, 0.4)
	sp := Compress(fa)
	idx := make([]int, n+3)
	for k := range idx {
		idx[k] = rng.Intn(n)
	}
	var wantG, wantD []float64
	withParallelism(1, func() {
		wantG = sp.Gather(nil, idx).Densify(nil)
		wantD = sp.Densify(nil)
	})
	for _, w := range []int{2, 8} {
		withParallelism(w, func() {
			bitsEqual(t, "sparse-gather", n, wantG, sp.Gather(nil, idx).Densify(nil))
			bitsEqual(t, "sparse-densify", n, wantD, sp.Densify(nil))
		})
	}
}

// TestSparseSumDeterministicAcrossWorkers: the chunked reduction is
// bitwise-identical at any worker budget and approximates the naive sum.
func TestSparseSumDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 3*SerialCutoff + 1
	fa := randDense(rng, n, 0.8)
	sp := Compress(fa)
	var want float64
	withParallelism(1, func() { want = sp.Sum(nil) })
	for _, w := range []int{2, 3, 8} {
		withParallelism(w, func() {
			if got := sp.Sum(nil); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("workers=%d: %v vs %v", w, got, want)
			}
		})
	}
	var naive float64
	for _, v := range fa {
		naive += v
	}
	if d := math.Abs(want - naive); d > 1e-9*math.Max(1, math.Abs(naive)) {
		t.Fatalf("chunked sum %v far from naive %v", want, naive)
	}
}

// TestSparseDifferentialDegenerate pins the all-zero and fully-dense
// corners explicitly (beyond the randomized coverage above).
func TestSparseDifferentialDegenerate(t *testing.T) {
	zero := Compress(make([]float64, 100))
	dense := Compress(randDense(rand.New(rand.NewSource(3)), 100, 1))
	if zero.NNZ() != 0 || dense.NNZ() != 100 {
		t.Fatalf("nnz: zero=%d dense=%d", zero.NNZ(), dense.NNZ())
	}
	sum := SparseAdd(nil, zero, dense)
	for k := 0; k < 100; k++ {
		if sum.Get(k) != dense.Get(k) {
			t.Fatalf("zero+dense at %d: %v vs %v", k, sum.Get(k), dense.Get(k))
		}
	}
	if s := SparseAdd(nil, zero, zero); s.NNZ() != 0 || s.Sum(nil) != 0 {
		t.Fatalf("zero+zero: nnz=%d sum=%v", s.NNZ(), s.Sum(nil))
	}
}
