package bat

import (
	"testing"

	"repro/internal/exec"
)

// TestKernelsReleaseConversionBuffers is the regression test for the
// ROADMAP accounting gap: elementwise kernels convert int and sparse
// tails to float views through the arena, and must hand those views
// back instead of leaving them charged to the tenant until arena
// close. After running every kernel over int and sparse inputs and
// releasing the outputs, the tenant's live byte count must be zero.
func TestKernelsReleaseConversionBuffers(t *testing.T) {
	n := 1000
	ints := make([]int64, n)
	dense := make([]float64, n)
	for k := 0; k < n; k++ {
		ints[k] = int64(k%7) - 3
		dense[k] = float64(k%13) * 0.5
	}
	spDense := make([]float64, n)
	for k := 0; k < n; k += 17 {
		spDense[k] = float64(k)*0.25 + 1
	}
	sp := Compress(spDense)

	inputs := map[string]func() *BAT{
		"int":    func() *BAT { return FromInts(ints) },
		"sparse": func() *BAT { return FromSparse(sp) },
	}
	for name, mk := range inputs {
		t.Run(name, func(t *testing.T) {
			g := exec.NewGovernor(0, 0)
			tn := g.Tenant("release-"+name, 0)
			a := tn.NewArena()
			c := exec.NewCtx(2, a, nil)

			b, x := mk(), FromFloats(dense)
			free := func(r *BAT) {
				if r.IsSparse() {
					return
				}
				if r.Type() == Float {
					c.Arena().FreeFloats(r.Vector().Floats())
				}
			}

			free(Add(c, b, x))
			free(Add(c, x, b)) // conversion on the right operand
			free(Add(c, b, b)) // aliased operands: two distinct views
			free(Sub(c, b, x))
			free(Mul(c, b, x))
			free(Div(c, x, b))
			free(AddScalar(c, b, 1.5))
			free(MulScalar(c, b, 2.0))
			free(DivScalar(c, b, 4.0))
			free(AXPY(c, b, x, 0.5))
			dst := c.Arena().Floats(n)
			clear(dst)
			AXPYInto(c, dst, b, 0.25)
			c.Arena().FreeFloats(dst)
			_ = Sum(c, b)
			_ = Dot(c, b, x)
			_ = Dot(c, b, b)

			if live := tn.LiveBytes(); live != 0 {
				t.Fatalf("tenant live bytes after kernels = %d, want 0 (leaked conversion buffers)", live)
			}
			a.Close()
		})
	}
}
