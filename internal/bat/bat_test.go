package bat

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestValueOrdering(t *testing.T) {
	if !FloatValue(1).Less(FloatValue(2)) {
		t.Error("1.0 < 2.0 expected")
	}
	if FloatValue(2).Less(FloatValue(2)) {
		t.Error("2.0 < 2.0 unexpected")
	}
	if !IntValue(-5).Less(IntValue(0)) {
		t.Error("-5 < 0 expected")
	}
	if !StringValue("a").Less(StringValue("b")) {
		t.Error(`"a" < "b" expected`)
	}
	if !FloatValue(9).Less(IntValue(-9)) {
		t.Error("cross-type order: Float tag sorts before Int tag")
	}
	if FloatValue(1).Equal(IntValue(1)) {
		t.Error("values of different types are not equal")
	}
	if !StringValue("x").Equal(StringValue("x")) {
		t.Error(`"x" == "x" expected`)
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{FloatValue(1.5), "1.5"},
		{IntValue(-7), "-7"},
		{StringValue("Ann"), "Ann"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestVectorBasics(t *testing.T) {
	v := NewFloatVector([]float64{3, 1, 2})
	if v.Len() != 3 || v.Type() != Float {
		t.Fatalf("Len/Type = %d/%v", v.Len(), v.Type())
	}
	if got := v.Get(1); got.F != 1 {
		t.Errorf("Get(1) = %v", got)
	}
	v.Set(1, FloatValue(9))
	if v.Floats()[1] != 9 {
		t.Errorf("Set did not write")
	}
	v.Append(FloatValue(4))
	if v.Len() != 4 {
		t.Errorf("Append length = %d", v.Len())
	}
	c := v.Clone()
	c.Set(0, FloatValue(-1))
	if v.Floats()[0] == -1 {
		t.Error("Clone shares storage")
	}
}

func TestVectorGather(t *testing.T) {
	v := NewStringVector([]string{"a", "b", "c", "d"})
	g := v.Gather(nil, []int{3, 1, 1})
	want := []string{"d", "b", "b"}
	for k, s := range g.Strings() {
		if s != want[k] {
			t.Errorf("gather[%d] = %q, want %q", k, s, want[k])
		}
	}
}

func TestVectorAsFloats(t *testing.T) {
	iv := NewIntVector([]int64{1, 2, 3})
	f, shared := iv.AsFloats()
	if shared {
		t.Error("int conversion must not be shared")
	}
	if f[2] != 3.0 {
		t.Errorf("AsFloats int = %v", f)
	}
	fv := NewFloatVector([]float64{1.5})
	f2, shared2 := fv.AsFloats()
	if !shared2 || f2[0] != 1.5 {
		t.Errorf("AsFloats float shared=%v val=%v", shared2, f2)
	}
}

func TestVectorTypePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on Floats() of string vector")
		}
	}()
	NewStringVector([]string{"x"}).Floats()
}

func TestBATKernels(t *testing.T) {
	a := FromFloats([]float64{1, 2, 3})
	b := FromFloats([]float64{10, 20, 30})
	check := func(name string, got *BAT, want []float64) {
		t.Helper()
		f, err := got.Floats()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for k := range want {
			if f[k] != want[k] {
				t.Errorf("%s[%d] = %v, want %v", name, k, f[k], want[k])
			}
		}
	}
	check("add", Add(nil, a, b), []float64{11, 22, 33})
	check("sub", Sub(nil, b, a), []float64{9, 18, 27})
	check("mul", Mul(nil, a, b), []float64{10, 40, 90})
	check("div", Div(nil, b, a), []float64{10, 10, 10})
	check("addScalar", AddScalar(nil, a, 1), []float64{2, 3, 4})
	check("mulScalar", MulScalar(nil, a, 2), []float64{2, 4, 6})
	check("divScalar", DivScalar(nil, b, 10), []float64{1, 2, 3})
	check("axpy", AXPY(nil, b, a, 2), []float64{8, 16, 24})
	if s := Sum(nil, a); s != 6 {
		t.Errorf("Sum = %v", s)
	}
	if d := Dot(nil, a, b); d != 140 {
		t.Errorf("Dot = %v", d)
	}
	if v := Sel(b, 2); v != 30 {
		t.Errorf("Sel = %v", v)
	}
}

func TestBATIntTail(t *testing.T) {
	a := FromInts([]int64{1, 2, 3})
	if s := Sum(nil, a); s != 6 {
		t.Errorf("int Sum = %v", s)
	}
	f, err := a.Floats()
	if err != nil || f[1] != 2 {
		t.Errorf("int Floats = %v, %v", f, err)
	}
	if _, err := FromStrings([]string{"x"}).Floats(); err == nil {
		t.Error("string Floats should error")
	}
}

func TestSortIndexSingleKey(t *testing.T) {
	b := FromFloats([]float64{3, 1, 2, 1})
	idx := SortIndex(nil, []*BAT{b})
	want := []int{1, 3, 2, 0} // stable: the two 1s keep input order
	for k := range want {
		if idx[k] != want[k] {
			t.Fatalf("idx = %v, want %v", idx, want)
		}
	}
	if KeyUnique([]*BAT{b}, idx) {
		t.Error("column with duplicates reported as key")
	}
}

func TestSortIndexMultiKey(t *testing.T) {
	a := FromStrings([]string{"b", "a", "b", "a"})
	c := FromInts([]int64{1, 2, 0, 1})
	idx := SortIndex(nil, []*BAT{a, c})
	want := []int{3, 1, 2, 0} // (a,1),(a,2),(b,0),(b,1)
	for k := range want {
		if idx[k] != want[k] {
			t.Fatalf("idx = %v, want %v", idx, want)
		}
	}
	if !KeyUnique([]*BAT{a, c}, idx) {
		t.Error("unique pair columns not recognized as key")
	}
}

func TestSortIndexIntAndString(t *testing.T) {
	bi := FromInts([]int64{5, -1, 3})
	if idx := SortIndex(nil, []*BAT{bi}); idx[0] != 1 || idx[1] != 2 || idx[2] != 0 {
		t.Errorf("int sort idx = %v", idx)
	}
	bs := FromStrings([]string{"pear", "apple", "fig"})
	if idx := SortIndex(nil, []*BAT{bs}); idx[0] != 1 || idx[1] != 2 || idx[2] != 0 {
		t.Errorf("string sort idx = %v", idx)
	}
}

func TestIsSortedIndexAndIdentity(t *testing.T) {
	if !IsSortedIndex(Identity(nil, 5)) {
		t.Error("identity should be sorted")
	}
	if IsSortedIndex([]int{0, 2, 1}) {
		t.Error("permutation reported sorted")
	}
	if SortIndex(nil, nil) != nil {
		t.Error("SortIndex(nil) should be nil")
	}
}

func TestSparseRoundTrip(t *testing.T) {
	dense := []float64{0, 1.5, 0, 0, -2, 0}
	sp := Compress(dense)
	if sp.Len() != 6 || sp.NNZ() != 2 {
		t.Fatalf("Len/NNZ = %d/%d", sp.Len(), sp.NNZ())
	}
	back := sp.Densify(nil)
	for k := range dense {
		if back[k] != dense[k] {
			t.Fatalf("round trip mismatch at %d: %v vs %v", k, back[k], dense[k])
		}
	}
	if sp.Get(1) != 1.5 || sp.Get(0) != 0 {
		t.Errorf("Get = %v, %v", sp.Get(1), sp.Get(0))
	}
	if sp.Sum(nil) != -0.5 {
		t.Errorf("Sum = %v", sp.Sum(nil))
	}
}

func TestSparseGather(t *testing.T) {
	sp := Compress([]float64{0, 1, 0, 3})
	g := sp.Gather(nil, []int{3, 0, 1})
	want := []float64{3, 0, 1}
	got := g.Densify(nil)
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("gather = %v, want %v", got, want)
		}
	}
}

func TestSparseAddMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(n int) bool {
		if n < 0 {
			n = -n
		}
		n = n%200 + 1
		a := make([]float64, n)
		b := make([]float64, n)
		for k := 0; k < n; k++ {
			if rng.Intn(3) == 0 {
				a[k] = rng.Float64()*10 - 5
			}
			if rng.Intn(3) == 0 {
				b[k] = rng.Float64()*10 - 5
			}
		}
		got := SparseAdd(nil, Compress(a), Compress(b)).Densify(nil)
		for k := 0; k < n; k++ {
			if math.Abs(got[k]-(a[k]+b[k])) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSparseAddViaBAT(t *testing.T) {
	a := FromSparse(Compress([]float64{0, 1, 0}))
	b := FromSparse(Compress([]float64{2, 0, 0}))
	sum := Add(nil, a, b)
	if !sum.IsSparse() {
		t.Error("sparse+sparse should stay sparse")
	}
	f, _ := sum.Floats()
	if f[0] != 2 || f[1] != 1 || f[2] != 0 {
		t.Errorf("sparse add = %v", f)
	}
	// Cancellation removes the entry.
	c := FromSparse(Compress([]float64{0, -1, 0}))
	z := Add(nil, a, c)
	if z.Sparse().NNZ() != 0 {
		t.Errorf("cancellation kept %d entries", z.Sparse().NNZ())
	}
}

func TestSparseBATOps(t *testing.T) {
	sp := FromSparse(Compress([]float64{0, 4, 0, 6}))
	if sp.Type() != Float || sp.Len() != 4 {
		t.Fatalf("Type/Len = %v/%d", sp.Type(), sp.Len())
	}
	if got := sp.Get(3); got.F != 6 {
		t.Errorf("Get(3) = %v", got)
	}
	if Sel(sp, 1) != 4 {
		t.Errorf("Sel = %v", Sel(sp, 1))
	}
	g := sp.Gather(nil, []int{1, 3})
	if f, _ := g.Floats(); f[0] != 4 || f[1] != 6 {
		t.Errorf("gather floats = %v", f)
	}
	cl := sp.Clone()
	if !cl.IsSparse() || cl.Len() != 4 {
		t.Error("sparse clone broken")
	}
	v := sp.Vector()
	if v.Len() != 4 || v.Floats()[1] != 4 {
		t.Error("sparse Vector() densify broken")
	}
	// Dense + sparse mixes densify transparently.
	d := FromFloats([]float64{1, 1, 1, 1})
	f, _ := Add(nil, sp, d).Floats()
	if f[0] != 1 || f[1] != 5 {
		t.Errorf("mixed add = %v", f)
	}
}

// Property: Gather(SortIndex) yields an ordered column, and the multiset of
// values is preserved.
func TestSortGatherProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for k, x := range xs {
			if math.IsNaN(x) {
				xs[k] = 0
			}
		}
		b := FromFloats(xs)
		idx := SortIndex(nil, []*BAT{b})
		g, _ := b.Gather(nil, idx).Floats()
		want := append([]float64(nil), xs...)
		sort.Float64s(want)
		if len(g) != len(want) {
			return false
		}
		for k := range want {
			if g[k] != want[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
