// Package bat implements a MonetDB-style column store substrate: typed
// column vectors (the tails of binary association tables), virtual object
// identifiers, positional gathers (leftfetchjoin), multi-key sort indexes,
// and vectorized arithmetic kernels.
//
// A BAT (binary association table) in MonetDB is a two-column table of
// (OID, value) pairs. As in modern MonetDB, the OID head is virtual: it is
// the dense sequence 0..n-1 and never materialized. A relation is a list of
// BATs that share the same virtual head, so the i-th tuple is obtained by
// concatenating the i-th tail value of every BAT.
package bat

import (
	"fmt"
	"strconv"
)

// Type identifies the domain of a column tail.
type Type uint8

const (
	// Float is a 64-bit floating point column (the numeric workhorse).
	Float Type = iota
	// Int is a 64-bit signed integer column (also used for dates/times
	// encoded as epoch seconds, mirroring MonetDB's daytime encoding).
	Int
	// String is a variable-length character column.
	String
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Float:
		return "DOUBLE"
	case Int:
		return "BIGINT"
	case String:
		return "VARCHAR"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Numeric reports whether columns of this type can participate in the
// application part of a relational matrix operation.
func (t Type) Numeric() bool { return t == Float || t == Int }

// Value is a single cell: a tagged union over the supported domains.
// The zero Value is the Float 0.0. Value is comparable and can be used as a
// map key (e.g., for hash joins over single attributes).
type Value struct {
	Type Type
	F    float64
	I    int64
	S    string
}

// FloatValue wraps a float64.
func FloatValue(f float64) Value { return Value{Type: Float, F: f} }

// IntValue wraps an int64.
func IntValue(i int64) Value { return Value{Type: Int, I: i} }

// StringValue wraps a string.
func StringValue(s string) Value { return Value{Type: String, S: s} }

// AsFloat converts a numeric value to float64. String values yield 0.
func (v Value) AsFloat() float64 {
	switch v.Type {
	case Float:
		return v.F
	case Int:
		return float64(v.I)
	}
	return 0
}

// String renders the value the way the result printer does.
func (v Value) String() string {
	switch v.Type {
	case Float:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case Int:
		return strconv.FormatInt(v.I, 10)
	case String:
		return v.S
	}
	return "?"
}

// Less orders values. Values of different types order by type tag first,
// which gives a total order across heterogeneous keys (needed by sort-based
// operators); within a type the natural order applies.
func (v Value) Less(w Value) bool {
	if v.Type != w.Type {
		return v.Type < w.Type
	}
	switch v.Type {
	case Float:
		return v.F < w.F
	case Int:
		return v.I < w.I
	case String:
		return v.S < w.S
	}
	return false
}

// Equal reports value equality (types must match).
func (v Value) Equal(w Value) bool {
	if v.Type != w.Type {
		return false
	}
	switch v.Type {
	case Float:
		return v.F == w.F
	case Int:
		return v.I == w.I
	case String:
		return v.S == w.S
	}
	return false
}
