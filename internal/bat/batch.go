package bat

import "repro/internal/exec"

// MorselSize is the row count of one streaming batch: small enough that
// a morsel of a few columns stays cache-resident and cheap to buffer,
// large enough to amortize per-batch overhead. Streaming operators in
// internal/sql pull batches of up to this many rows; correctness never
// depends on the value (operators split work at SerialCutoff-aligned
// chunk edges independently of morsel boundaries).
const MorselSize = 4096

// Batch is one morsel of a streamed statement: a set of equally long
// column vectors. Columns are either zero-copy views into base table
// storage (owned=false) or arena-drawn buffers produced by an operator
// (owned=true); Release hands the owned ones back so peak memory tracks
// batches in flight, not everything ever produced.
type Batch struct {
	cols  []*Vector
	owned []bool
	n     int
}

// NewBatch returns an empty batch of n rows awaiting AddCol.
func NewBatch(n int) *Batch { return &Batch{n: n} }

// Len returns the batch's row count.
func (b *Batch) Len() int { return b.n }

// NumCols returns the number of columns added so far.
func (b *Batch) NumCols() int { return len(b.cols) }

// Col returns column k.
func (b *Batch) Col(k int) *Vector { return b.cols[k] }

// AddCol appends a column. owned marks arena-drawn buffers the batch is
// responsible for releasing; views into longer-lived storage pass false.
func (b *Batch) AddCol(v *Vector, owned bool) {
	b.cols = append(b.cols, v)
	b.owned = append(b.owned, owned)
}

// Bytes returns the accounted size of the batch's owned columns — the
// bytes Release will hand back. View columns cost nothing; they alias
// storage that outlives the batch.
func (b *Batch) Bytes() int64 {
	var total int64
	for k, v := range b.cols {
		if !b.owned[k] {
			continue
		}
		switch v.typ {
		case Float:
			total += int64(cap(v.f)) * 8
		case Int:
			total += int64(cap(v.i)) * 8
		case String:
			total += int64(cap(v.s)) * 16
		}
	}
	return total
}

// Release returns the batch's owned column buffers to the context's
// arena. The batch (and any views derived from it) must not be used
// afterwards. Nil-safe.
func (b *Batch) Release(c *exec.Ctx) {
	if b == nil {
		return
	}
	for k, v := range b.cols {
		if !b.owned[k] {
			continue
		}
		switch v.typ {
		case Float:
			c.Arena().FreeFloats(v.f)
		case Int:
			c.Arena().FreeInt64s(v.i)
		case String:
			c.Arena().FreeStrings(v.s)
		}
	}
	b.cols, b.owned = nil, nil
}

// View returns a zero-copy sub-vector over rows [lo, hi). The view
// shares the backing slice; it must not outlive the vector's buffer.
func (v *Vector) View(lo, hi int) *Vector {
	out := &Vector{typ: v.typ}
	switch v.typ {
	case Float:
		out.f = v.f[lo:hi]
	case Int:
		out.i = v.i[lo:hi]
	case String:
		out.s = v.s[lo:hi]
	}
	return out
}
