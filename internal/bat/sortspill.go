package bat

import (
	"os"
	"sort"

	"repro/internal/exec"
	"repro/internal/store"
)

// sortMergeSpilled is the out-of-core merge phase of SortStable: the
// per-run sorted permutations already sitting in idx are written to
// disk as segment files, then k-way merged back into idx streaming
// one block per run — so the merge needs no second n-int buffer in
// RAM. It runs only when the context's spill policy asks for it and
// reports whether it completed; false means the caller must run the
// in-memory merge instead.
//
// The merge prefers the lowest-numbered run on ties, exactly like the
// pairwise in-memory merge prefers its left input, and the stable
// permutation is unique — so the result is bit-identical to the
// in-memory path at any worker budget.
func sortMergeSpilled(c *exec.Ctx, idx []int, n, size int, less func(a, b int) bool) bool {
	if !c.ShouldSpill(int64(n) * int64(intSizeOf())) {
		return false
	}
	sp := c.Spill()
	runs := (n + size - 1) / size
	if runs < 2 {
		return true // a single run is already sorted in place
	}

	// Phase 1: persist every sorted run. Any failure here aborts
	// cleanly to the in-memory merge — idx is still intact.
	paths := make([]string, runs)
	var spilled int64
	block := make([]int64, 0, MorselSize)
	for r := 0; r < runs; r++ {
		path, err := sp.Path("sortrun")
		if err != nil {
			removeAll(paths[:r])
			return false
		}
		paths[r] = path
		w, err := store.Create(path, "sortrun", []store.ColSpec{{Name: "i", Kind: store.KInt}})
		if err != nil {
			removeAll(paths[:r])
			return false
		}
		run := idx[r*size : min((r+1)*size, n)]
		ok := true
		for lo := 0; lo < len(run); lo += MorselSize {
			hi := min(lo+MorselSize, len(run))
			block = block[:0]
			for _, v := range run[lo:hi] {
				block = append(block, int64(v))
			}
			if err := w.Append(hi-lo, []store.ColData{{I: block}}); err != nil {
				ok = false
				break
			}
		}
		if err := w.Close(); err != nil {
			ok = false
		}
		if !ok {
			removeAll(paths[:r+1])
			return false
		}
		spilled += w.BytesWritten()
	}
	c.NoteSpill(spilled, int64(runs))

	// Phase 2: k-way merge from disk into idx. idx is free to
	// overwrite — the runs live on disk now.
	type runCur struct {
		reader *store.Reader
		cur    *store.Cursor
		block  []int64
		pos    int
		done   bool
	}
	curs := make([]runCur, runs)
	openOK := true
	for r := 0; r < runs && openOK; r++ {
		rd, err := store.Open(paths[r])
		if err != nil {
			openOK = false
			break
		}
		curs[r].reader = rd
		curs[r].cur = store.NewCursor(c, rd, nil)
	}
	closeAll := func() {
		for r := range curs {
			if curs[r].cur != nil {
				curs[r].cur.Close()
			}
			if curs[r].reader != nil {
				curs[r].reader.Close()
			}
		}
		removeAll(paths)
	}
	advance := func(r *runCur) bool {
		r.pos++
		if r.pos < len(r.block) {
			return true
		}
		cols, cn, err := r.cur.Next(MorselSize)
		if err != nil || cn == 0 {
			r.done = true
			r.block = nil
			return err == nil
		}
		r.block, r.pos = cols[0].I, 0
		return true
	}
	ioOK := openOK
	if ioOK {
		for r := range curs {
			curs[r].pos = -1
			if !advance(&curs[r]) {
				ioOK = false
				break
			}
		}
	}
	if ioOK {
		for k := 0; k < n; k++ {
			best := -1
			var bestV int
			for r := range curs {
				if curs[r].done {
					continue
				}
				v := int(curs[r].block[curs[r].pos])
				if best < 0 || less(v, bestV) {
					best, bestV = r, v
				}
			}
			if best < 0 {
				ioOK = false
				break
			}
			idx[k] = bestV
			if !advance(&curs[best]) {
				ioOK = false
				break
			}
		}
	}
	closeAll()
	if !ioOK {
		// The runs in idx may be partially overwritten and the disk
		// copies are unreadable: recompute the permutation serially.
		// Only broken I/O on a file this process just wrote lands here.
		for k := range idx {
			idx[k] = k
		}
		sort.SliceStable(idx, func(a, b int) bool { return less(idx[a], idx[b]) })
	}
	return true
}

func removeAll(paths []string) {
	for _, p := range paths {
		if p != "" {
			os.Remove(p)
		}
	}
}

func intSizeOf() int {
	const s = 32 << (^uint(0) >> 63)
	return s / 8
}
