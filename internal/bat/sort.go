package bat

import "sort"

// SortIndex computes the stable ascending sort permutation over one or more
// key columns (lexicographic, first column most significant). The returned
// slice idx satisfies: gathering any tail of the same relation by idx yields
// that tail ordered by the key columns. This is the "sorting" step of the
// paper's Algorithm 1: G <- sort(D), followed by b↓G for the other tails.
func SortIndex(keys []*BAT) []int {
	if len(keys) == 0 {
		return nil
	}
	n := keys[0].Len()
	// MonetDB tracks sortedness on BATs; one linear pre-scan buys the
	// same effect and turns sorts over already-ordered keys into no-ops —
	// crucially before the permutation buffer below is even allocated.
	if keysSorted(keys) {
		return Identity(n)
	}
	idx := AllocInts(n)
	for k := range idx {
		idx[k] = k
	}
	// Fast path: a single dense key column avoids the per-comparison
	// column loop and interface dispatch.
	if len(keys) == 1 && !keys[0].IsSparse() {
		v := keys[0].vec
		switch v.Type() {
		case Float:
			f := v.Floats()
			sort.SliceStable(idx, func(a, b int) bool { return f[idx[a]] < f[idx[b]] })
		case Int:
			xs := v.Ints()
			sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
		case String:
			ss := v.Strings()
			sort.SliceStable(idx, func(a, b int) bool { return ss[idx[a]] < ss[idx[b]] })
		}
		return idx
	}
	vecs := make([]*Vector, len(keys))
	for k, b := range keys {
		vecs[k] = b.Vector()
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		for _, v := range vecs {
			if c := v.Compare(ia, v, ib); c != 0 {
				return c < 0
			}
		}
		return false
	})
	return idx
}

// keysSorted reports whether the key columns are already in ascending
// lexicographic order.
func keysSorted(keys []*BAT) bool {
	n := keys[0].Len()
	if n < 2 {
		return true
	}
	vecs := make([]*Vector, len(keys))
	for k, b := range keys {
		if b.IsSparse() {
			return false
		}
		vecs[k] = b.vec
	}
	for i := 1; i < n; i++ {
		for _, v := range vecs {
			c := v.Compare(i-1, v, i)
			if c < 0 {
				break
			}
			if c > 0 {
				return false
			}
		}
	}
	return true
}

// IsSortedIndex reports whether idx is the identity permutation, i.e. the
// keys were already in order and the gather can be skipped.
func IsSortedIndex(idx []int) bool {
	for k, j := range idx {
		if k != j {
			return false
		}
	}
	return true
}

// KeyUnique reports whether the key columns contain no duplicate
// combination of values, i.e. whether they form a key of the relation.
// idx must be the sort permutation over exactly those columns.
func KeyUnique(keys []*BAT, idx []int) bool {
	if len(keys) == 0 {
		return false
	}
	vecs := make([]*Vector, len(keys))
	for k, b := range keys {
		vecs[k] = b.Vector()
	}
	for k := 1; k < len(idx); k++ {
		same := true
		for _, v := range vecs {
			if v.Compare(idx[k-1], v, idx[k]) != 0 {
				same = false
				break
			}
		}
		if same {
			return false
		}
	}
	return true
}

// Identity returns the identity permutation of length n. The buffer comes
// from the arena; callers done with a permutation may hand it back with
// FreeInts.
func Identity(n int) []int {
	idx := AllocInts(n)
	for k := range idx {
		idx[k] = k
	}
	return idx
}
