package bat

import (
	"sort"

	"repro/internal/exec"
)

// SortStable computes the stable ascending sort permutation of [0, n) under
// less, a strict weak ordering over original row positions (less(a, b)
// reports whether row a orders before row b). At or below SerialCutoff
// elements — or with a single worker — it defers to sort.SliceStable.
// Above the cutoff it sorts contiguous runs in parallel and combines them
// with a stable pairwise merge that prefers the left run on ties. A run
// always holds smaller original positions than the run to its right, so
// preferring left preserves stability, and because the stable permutation
// of a sequence is unique, the result is identical at any worker budget.
// The permutation buffer comes from the context's arena; callers done with
// it may hand it back with FreeInts.
func SortStable(c *exec.Ctx, n int, less func(a, b int) bool) []int {
	idx := Identity(c, n)
	if n <= SerialCutoff || c.Workers() <= 1 {
		sort.SliceStable(idx, func(a, b int) bool { return less(idx[a], idx[b]) })
		return idx
	}
	runs, size := c.ParallelRuns(n)
	c.ParallelFor(runs, 1, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			s := idx[r*size : min((r+1)*size, n)]
			sort.SliceStable(s, func(a, b int) bool { return less(s[a], s[b]) })
		}
	})
	// Out-of-core merge: when the spill policy asks for it, the sorted
	// runs go to disk and merge back streaming, skipping the second
	// n-int buffer entirely.
	if sortMergeSpilled(c, idx, n, size, less) {
		return idx
	}
	buf := c.Arena().Ints(n)
	src, dst := idx, buf
	for width := size; width < n; width *= 2 {
		pairs := (n + 2*width - 1) / (2 * width)
		w := width // capture per level
		c.ParallelFor(pairs, 1, func(plo, phi int) {
			for p := plo; p < phi; p++ {
				lo := p * 2 * w
				mergeRuns(dst, src, lo, min(lo+w, n), min(lo+2*w, n), less)
			}
		})
		src, dst = dst, src
	}
	if &src[0] != &idx[0] {
		copy(idx, src)
	}
	c.Arena().FreeInts(buf)
	return idx
}

// mergeRuns stably merges the sorted runs src[lo:mid] and src[mid:hi] into
// dst[lo:hi], taking from the left run on ties.
func mergeRuns(dst, src []int, lo, mid, hi int, less func(a, b int) bool) {
	i, j := lo, mid
	for k := lo; k < hi; k++ {
		if i < mid && (j >= hi || !less(src[j], src[i])) {
			dst[k] = src[i]
			i++
		} else {
			dst[k] = src[j]
			j++
		}
	}
}

// SortIndex computes the stable ascending sort permutation over one or more
// key columns (lexicographic, first column most significant). The returned
// slice idx satisfies: gathering any tail of the same relation by idx yields
// that tail ordered by the key columns. This is the "sorting" step of the
// paper's Algorithm 1: G <- sort(D), followed by b↓G for the other tails.
// Above SerialCutoff elements the permutation is computed by the parallel
// merge sort of SortStable; the stable permutation is unique, so the result
// is identical at any worker budget.
func SortIndex(c *exec.Ctx, keys []*BAT) []int {
	if len(keys) == 0 {
		return nil
	}
	n := keys[0].Len()
	// MonetDB tracks sortedness on BATs; one linear pre-scan buys the
	// same effect and turns sorts over already-ordered keys into no-ops —
	// crucially before the permutation buffer below is even allocated.
	if keysSorted(keys) {
		return Identity(c, n)
	}
	// Fast path: a single dense key column avoids the per-comparison
	// column loop and interface dispatch.
	if len(keys) == 1 && !keys[0].IsSparse() {
		v := keys[0].vec
		switch v.Type() {
		case Float:
			f := v.Floats()
			return SortStable(c, n, func(a, b int) bool { return f[a] < f[b] })
		case Int:
			xs := v.Ints()
			return SortStable(c, n, func(a, b int) bool { return xs[a] < xs[b] })
		case String:
			ss := v.Strings()
			return SortStable(c, n, func(a, b int) bool { return ss[a] < ss[b] })
		}
	}
	vecs := make([]*Vector, len(keys))
	for k, b := range keys {
		vecs[k] = b.VectorCtx(c)
	}
	return SortStable(c, n, func(a, b int) bool {
		for _, v := range vecs {
			if cmp := v.Compare(a, v, b); cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
}

// keysSorted reports whether the key columns are already in ascending
// lexicographic order.
func keysSorted(keys []*BAT) bool {
	n := keys[0].Len()
	if n < 2 {
		return true
	}
	vecs := make([]*Vector, len(keys))
	for k, b := range keys {
		if b.IsSparse() {
			return false
		}
		vecs[k] = b.vec
	}
	for i := 1; i < n; i++ {
		for _, v := range vecs {
			c := v.Compare(i-1, v, i)
			if c < 0 {
				break
			}
			if c > 0 {
				return false
			}
		}
	}
	return true
}

// IsSortedIndex reports whether idx is the identity permutation, i.e. the
// keys were already in order and the gather can be skipped.
func IsSortedIndex(idx []int) bool {
	for k, j := range idx {
		if k != j {
			return false
		}
	}
	return true
}

// KeyUnique reports whether the key columns contain no duplicate
// combination of values, i.e. whether they form a key of the relation.
// idx must be the sort permutation over exactly those columns.
func KeyUnique(keys []*BAT, idx []int) bool {
	if len(keys) == 0 {
		return false
	}
	vecs := make([]*Vector, len(keys))
	for k, b := range keys {
		vecs[k] = b.Vector()
	}
	for k := 1; k < len(idx); k++ {
		same := true
		for _, v := range vecs {
			if v.Compare(idx[k-1], v, idx[k]) != 0 {
				same = false
				break
			}
		}
		if same {
			return false
		}
	}
	return true
}

// Identity returns the identity permutation of length n. The buffer comes
// from the context's arena; callers done with a permutation may hand it
// back with FreeInts.
func Identity(c *exec.Ctx, n int) []int {
	idx := c.Arena().Ints(n)
	for k := range idx {
		idx[k] = k
	}
	return idx
}
