package bat

import (
	"math/bits"
	"sync"
)

// The arena recycles the float64 and int buffers that the vectorized
// kernels produce. Kernels allocate every output through Alloc/AllocZero;
// callers that know a column is dead — the iterative algorithms of package
// batlin retire one scratch column per elimination or orthogonalization
// step — hand it back with Free (or Release at the BAT level) and the next
// kernel call reuses the memory instead of growing the heap. Buffers are
// pooled in power-of-two size classes backed by sync.Pool, so anything
// never freed is simply garbage collected and a Get after a GC falls back
// to make; the arena can only reduce allocations, never retain memory
// beyond what the GC allows.

const (
	// minPoolShift is the smallest pooled capacity (64 elements): below
	// that the pool bookkeeping costs more than the allocation.
	minPoolShift = 6
	// maxPoolShift caps pooled buffers at 16Mi elements (128 MiB of
	// float64s); larger columns go straight to the allocator.
	maxPoolShift = 24
	poolClasses  = maxPoolShift - minPoolShift + 1
)

var (
	floatPools [poolClasses]sync.Pool // class c holds *[]float64 of cap 1<<(minPoolShift+c)
	intPools   [poolClasses]sync.Pool // class c holds *[]int of cap 1<<(minPoolShift+c)
)

// classFor returns the pool class whose capacity 1<<(minPoolShift+class)
// is the smallest one holding n elements, or -1 when n is outside the
// pooled range.
func classFor(n int) int {
	if n <= 0 || n > 1<<maxPoolShift {
		return -1
	}
	shift := bits.Len(uint(n - 1))
	if shift < minPoolShift {
		shift = minPoolShift
	}
	return shift - minPoolShift
}

// capClass returns the pool class for a buffer of exactly capacity c, or
// -1 when c is not a pooled class size. Only exact class capacities are
// accepted so foreign slices cannot poison the pool with odd sizes.
func capClass(c int) int {
	if c < 1<<minPoolShift || c > 1<<maxPoolShift || c&(c-1) != 0 {
		return -1
	}
	return bits.Len(uint(c)) - 1 - minPoolShift
}

// Alloc returns a float64 slice of length n, recycled from the arena when
// a buffer of a suitable class is available. The contents are undefined;
// use AllocZero when the kernel does not overwrite every element.
func Alloc(n int) []float64 {
	c := classFor(n)
	if c < 0 {
		return make([]float64, n)
	}
	if p, _ := floatPools[c].Get().(*[]float64); p != nil {
		return (*p)[:n]
	}
	return make([]float64, n, 1<<(c+minPoolShift))
}

// AllocZero returns a zeroed float64 slice of length n from the arena.
func AllocZero(n int) []float64 {
	f := Alloc(n)
	clear(f)
	return f
}

// Free returns a float64 slice to the arena. The caller asserts sole
// ownership: the slice (and any BAT or Vector wrapping it) must not be
// used afterwards. Slices whose capacity is not an exact arena class are
// left to the garbage collector.
func Free(f []float64) {
	c := capClass(cap(f))
	if c < 0 {
		return
	}
	f = f[:0]
	floatPools[c].Put(&f)
}

// AllocInts returns an int slice of length n from the arena (the
// permutation buffers of SortIndex and Identity).
func AllocInts(n int) []int {
	c := classFor(n)
	if c < 0 {
		return make([]int, n)
	}
	if p, _ := intPools[c].Get().(*[]int); p != nil {
		return (*p)[:n]
	}
	return make([]int, n, 1<<(c+minPoolShift))
}

// FreeInts returns an int slice to the arena under the same ownership
// contract as Free.
func FreeInts(idx []int) {
	c := capClass(cap(idx))
	if c < 0 {
		return
	}
	idx = idx[:0]
	intPools[c].Put(&idx)
}

// Release returns a BAT's dense float tail to the arena. The caller
// asserts sole ownership of the BAT; neither it nor any slice obtained
// from it may be used afterwards. Sparse, int, and string tails are left
// to the garbage collector. This is the retirement half of the kernel
// contract: every kernel output came from Alloc, so the iterative
// algorithms in package batlin release superseded columns to keep their
// working set flat across iterations.
func Release(b *BAT) {
	if b == nil || b.vec == nil || b.vec.typ != Float {
		return
	}
	f := b.vec.f
	b.vec.f = nil
	Free(f)
}
