package bat

import "repro/internal/exec"

// The buffer arena moved to package exec as part of the per-query
// execution-context refactor: every Ctx carries an arena handle
// (Ctx.Arena), and kernels draw their outputs from it. The helpers below
// are thin delegates kept so call sites without a context — tests,
// examples, and the deprecated global-knob paths — stay terse; they all
// operate on the shared arena.
//
// Governed queries carry an accounted arena instead (exec.Tenant's
// NewArena): every allocation a kernel makes through its Ctx is then
// charged against the tenant's memory budget, and an allocation that
// cannot fit unwinds the kernel as a typed panic that the nearest
// error-returning caller converts to exec.ErrMemoryBudget (see
// exec.CatchBudget). Kernels themselves need no budget awareness —
// which is why the BAT kernel signatures are unchanged — but they must
// route every buffer through the arena for the accounting to hold,
// and release dead buffers (bat.Release, FreeInts) so budgeted queries
// do not pay twice for scratch that could have been recycled.

// Alloc returns a float64 slice of length n from the shared arena. The
// contents are undefined; use AllocZero when the kernel does not
// overwrite every element.
//
//lint:ignore rmalint/ctxfirst shared-arena shim kept for context-free callers (tests, deprecated knobs)
func Alloc(n int) []float64 { return exec.Shared().Floats(n) }

// AllocZero returns a zeroed float64 slice of length n from the shared
// arena.
//
//lint:ignore rmalint/ctxfirst shared-arena shim kept for context-free callers (tests, deprecated knobs)
func AllocZero(n int) []float64 { return exec.Shared().FloatsZero(n) }

// Free returns a float64 slice to the shared arena. The caller asserts
// sole ownership: the slice (and any BAT or Vector wrapping it) must not
// be used afterwards.
//
//lint:ignore rmalint/ctxfirst shared-arena shim kept for context-free callers (tests, deprecated knobs)
func Free(f []float64) { exec.Shared().FreeFloats(f) }

// AllocInts returns an int slice of length n from the shared arena (the
// permutation buffers of SortIndex and Identity).
//
//lint:ignore rmalint/ctxfirst shared-arena shim kept for context-free callers (tests, deprecated knobs)
func AllocInts(n int) []int { return exec.Shared().Ints(n) }

// FreeInts returns an int slice to the shared arena under the same
// ownership contract as Free.
//
//lint:ignore rmalint/ctxfirst shared-arena shim kept for context-free callers (tests, deprecated knobs)
func FreeInts(idx []int) { exec.Shared().FreeInts(idx) }

// Release returns a BAT's dense tail to the arena of c. The caller
// asserts sole ownership of the BAT; neither it nor any slice obtained
// from it may be used afterwards. Float, int64, and string tails are all
// recycled (sparse tails are left to the garbage collector). This is the
// retirement half of the kernel contract: every kernel output came from
// the context's arena, so the iterative algorithms in package batlin
// release superseded columns to keep their working set flat across
// iterations. On an accounted arena the release also uncharges the
// tail's bytes from the tenant's budget — after verifying through the
// arena's ledger that the tail was actually drawn from this arena, so a
// column migrating in from elsewhere cannot corrupt the byte count.
func Release(c *exec.Ctx, b *BAT) {
	if b == nil || b.vec == nil {
		return
	}
	a := c.Arena()
	switch b.vec.typ {
	case Float:
		f := b.vec.f
		b.vec.f = nil
		a.FreeFloats(f)
	case Int:
		xs := b.vec.i
		b.vec.i = nil
		a.FreeInt64s(xs)
	case String:
		ss := b.vec.s
		b.vec.s = nil
		a.FreeStrings(ss)
	}
}
