package bat

import "sort"

// Sparse is a zero-suppressed float column: only non-zero values are stored
// together with their OIDs (ascending). It stands in for the lightweight
// compression MonetDB applies to value-repetitive columns, which the
// paper's Table 5 experiment shows speeds up add on sparse relations.
type Sparse struct {
	n   int   // logical length
	oid []int // positions of the non-zero values, strictly ascending
	val []float64
}

// NewSparse builds a zero-suppressed column from parallel (oid, val) lists.
// OIDs must be strictly ascending and < n; values should be non-zero.
func NewSparse(n int, oid []int, val []float64) *Sparse {
	return &Sparse{n: n, oid: oid, val: val}
}

// Compress converts a dense float slice to zero-suppressed form.
func Compress(f []float64) *Sparse {
	nnz := 0
	for _, x := range f {
		if x != 0 {
			nnz++
		}
	}
	sp := &Sparse{n: len(f), oid: make([]int, 0, nnz), val: make([]float64, 0, nnz)}
	for k, x := range f {
		if x != 0 {
			sp.oid = append(sp.oid, k)
			sp.val = append(sp.val, x)
		}
	}
	return sp
}

// Len returns the logical length of the column.
func (s *Sparse) Len() int { return s.n }

// NNZ returns the number of stored non-zero values.
func (s *Sparse) NNZ() int { return len(s.val) }

// Get returns the value at OID k (0 when suppressed).
func (s *Sparse) Get(k int) float64 {
	i := sort.SearchInts(s.oid, k)
	if i < len(s.oid) && s.oid[i] == k {
		return s.val[i]
	}
	return 0
}

// Densify materializes the column as a dense slice.
func (s *Sparse) Densify() []float64 {
	out := make([]float64, s.n)
	for i, k := range s.oid {
		out[k] = s.val[i]
	}
	return out
}

// Sum returns the sum of all values.
func (s *Sparse) Sum() float64 {
	var t float64
	for _, x := range s.val {
		t += x
	}
	return t
}

// Clone deep-copies the column.
func (s *Sparse) Clone() *Sparse {
	return &Sparse{
		n:   s.n,
		oid: append([]int(nil), s.oid...),
		val: append([]float64(nil), s.val...),
	}
}

// Gather applies a positional fetch. The result stays zero-suppressed.
func (s *Sparse) Gather(idx []int) *Sparse {
	out := &Sparse{n: len(idx)}
	for k, j := range idx {
		if v := s.Get(j); v != 0 {
			out.oid = append(out.oid, k)
			out.val = append(out.val, v)
		}
	}
	return out
}

// SparseAdd adds two zero-suppressed columns without densifying: a merge
// over the non-zero positions. Runtime is O(nnz(a)+nnz(b)), which is what
// makes add on sparse relations faster than on dense ones (Table 5).
func SparseAdd(a, b *Sparse) *Sparse {
	out := &Sparse{n: a.n}
	i, j := 0, 0
	for i < len(a.oid) && j < len(b.oid) {
		switch {
		case a.oid[i] < b.oid[j]:
			out.oid = append(out.oid, a.oid[i])
			out.val = append(out.val, a.val[i])
			i++
		case a.oid[i] > b.oid[j]:
			out.oid = append(out.oid, b.oid[j])
			out.val = append(out.val, b.val[j])
			j++
		default:
			if v := a.val[i] + b.val[j]; v != 0 {
				out.oid = append(out.oid, a.oid[i])
				out.val = append(out.val, v)
			}
			i++
			j++
		}
	}
	for ; i < len(a.oid); i++ {
		out.oid = append(out.oid, a.oid[i])
		out.val = append(out.val, a.val[i])
	}
	for ; j < len(b.oid); j++ {
		out.oid = append(out.oid, b.oid[j])
		out.val = append(out.val, b.val[j])
	}
	return out
}
