package bat

import (
	"sort"

	"repro/internal/exec"
)

// Sparse is a zero-suppressed float column: only non-zero values are stored
// together with their OIDs (ascending). It stands in for the lightweight
// compression MonetDB applies to value-repetitive columns, which the
// paper's Table 5 experiment shows speeds up add on sparse relations.
//
// The kernels below (SparseAdd, Gather, Densify, Sum) take the
// invocation's exec.Ctx and decompose their work through its ParallelFor
// like the dense kernels in bat.go. Each one produces
// output that is uniquely determined by its inputs — merges and gathers
// concatenate per-range results in range order, and Sum reduces over fixed
// chunks combined in chunk order — so results are identical (bitwise, for
// the float payloads) at any worker budget.
type Sparse struct {
	n   int   // logical length
	oid []int // positions of the non-zero values, strictly ascending
	val []float64
}

// NewSparse builds a zero-suppressed column from parallel (oid, val) lists.
// OIDs must be strictly ascending and < n; values should be non-zero.
func NewSparse(n int, oid []int, val []float64) *Sparse {
	return &Sparse{n: n, oid: oid, val: val}
}

// Compress converts a dense float slice to zero-suppressed form.
func Compress(f []float64) *Sparse {
	nnz := 0
	for _, x := range f {
		if x != 0 {
			nnz++
		}
	}
	sp := &Sparse{n: len(f), oid: make([]int, 0, nnz), val: make([]float64, 0, nnz)}
	for k, x := range f {
		if x != 0 {
			sp.oid = append(sp.oid, k)
			sp.val = append(sp.val, x)
		}
	}
	return sp
}

// Len returns the logical length of the column.
func (s *Sparse) Len() int { return s.n }

// NNZ returns the number of stored non-zero values.
func (s *Sparse) NNZ() int { return len(s.val) }

// Get returns the value at OID k (0 when suppressed).
func (s *Sparse) Get(k int) float64 {
	i := sort.SearchInts(s.oid, k)
	if i < len(s.oid) && s.oid[i] == k {
		return s.val[i]
	}
	return 0
}

// Densify materializes the column as a dense slice. The buffer comes from
// the context's arena; the zero-fill and the non-zero scatter are both
// decomposed over the context's workers (scatter positions are distinct,
// so the writes are disjoint).
func (s *Sparse) Densify(c *exec.Ctx) []float64 {
	out := c.Arena().Floats(s.n)
	if c.Serial(s.n) {
		clear(out)
	} else {
		c.ParallelFor(s.n, SerialCutoff, func(lo, hi int) {
			clear(out[lo:hi])
		})
	}
	if c.Serial(len(s.oid)) {
		for i, k := range s.oid {
			out[k] = s.val[i]
		}
	} else {
		c.ParallelFor(len(s.oid), SerialCutoff, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[s.oid[i]] = s.val[i]
			}
		})
	}
	return out
}

// Sum returns the sum of all values, accumulating over fixed-size chunks
// combined in chunk order (bitwise-identical at any worker budget).
func (s *Sparse) Sum(c *exec.Ctx) float64 {
	if len(s.val) <= SerialCutoff { // single chunk: skip the closure
		var t float64
		for _, x := range s.val {
			t += x
		}
		return t
	}
	return c.Reduce(len(s.val), func(lo, hi int) float64 {
		var t float64
		for k := lo; k < hi; k++ {
			t += s.val[k]
		}
		return t
	})
}

// Clone deep-copies the column.
func (s *Sparse) Clone() *Sparse {
	return &Sparse{
		n:   s.n,
		oid: append([]int(nil), s.oid...),
		val: append([]float64(nil), s.val...),
	}
}

// Gather applies a positional fetch. The result stays zero-suppressed.
// Ranges of the index list are gathered in parallel and concatenated in
// range order.
func (s *Sparse) Gather(c *exec.Ctx, idx []int) *Sparse {
	out := &Sparse{n: len(idx)}
	if c.Serial(len(idx)) {
		for k, j := range idx {
			if v := s.Get(j); v != 0 {
				out.oid = append(out.oid, k)
				out.val = append(out.val, v)
			}
		}
		return out
	}
	runs, size := c.ParallelRuns(len(idx))
	oids := make([][]int, runs)
	vals := make([][]float64, runs)
	// The per-run staging buffers are charged to the invocation's arena
	// (sized to the run's upper bound) and handed back after the
	// concatenation, so a budgeted tenant sees the gather's transient
	// footprint instead of untracked heap growth.
	c.ParallelFor(runs, 1, func(rlo, rhi int) {
		for r := rlo; r < rhi; r++ {
			lo, hi := r*size, min((r+1)*size, len(idx))
			o := c.Arena().Ints(hi - lo)[:0]
			v := c.Arena().Floats(hi - lo)[:0]
			for k := lo; k < hi; k++ {
				if x := s.Get(idx[k]); x != 0 {
					o = append(o, k)
					v = append(v, x)
				}
			}
			oids[r], vals[r] = o, v
		}
	})
	total := 0
	for _, o := range oids {
		total += len(o)
	}
	out.oid = make([]int, 0, total)
	out.val = make([]float64, 0, total)
	for r := range oids {
		out.oid = append(out.oid, oids[r]...)
		out.val = append(out.val, vals[r]...)
		c.Arena().FreeInts(oids[r])
		c.Arena().FreeFloats(vals[r])
	}
	return out
}

// SparseAdd adds two zero-suppressed columns without densifying: a merge
// over the non-zero positions. Runtime is O(nnz(a)+nnz(b)), which is what
// makes add on sparse relations faster than on dense ones (Table 5). The
// result has a's logical length; like the dense kernels, the columns are
// expected to be equally long, and OIDs of b beyond a's length are dropped
// on both the serial and the parallel path. Above the serial cutoff the
// OID domain is split into ranges merged in parallel and concatenated in
// range order; the merge result is unique, so the output is independent of
// the worker budget.
func SparseAdd(c *exec.Ctx, a, b *Sparse) *Sparse {
	work := len(a.oid) + len(b.oid)
	if c.Serial(work) {
		out := &Sparse{n: a.n}
		mergeSparse(out, a, 0, len(a.oid), b, 0, sort.SearchInts(b.oid, a.n))
		return out
	}
	runs, size := c.ParallelRuns(a.n)
	parts := make([]Sparse, runs)
	// Each range's merge output is at most the stored entries of both
	// inputs in that range, so the staging buffers can be arena-charged
	// at their exact upper bound — the appends in mergeSparse never
	// reallocate past the ledgered capacity.
	c.ParallelFor(runs, 1, func(rlo, rhi int) {
		for r := rlo; r < rhi; r++ {
			lo, hi := r*size, min((r+1)*size, a.n)
			ai, aj := sort.SearchInts(a.oid, lo), sort.SearchInts(a.oid, hi)
			bi, bj := sort.SearchInts(b.oid, lo), sort.SearchInts(b.oid, hi)
			bound := (aj - ai) + (bj - bi)
			parts[r].oid = c.Arena().Ints(bound)[:0]
			parts[r].val = c.Arena().Floats(bound)[:0]
			mergeSparse(&parts[r], a, ai, aj, b, bi, bj)
		}
	})
	total := 0
	for r := range parts {
		total += len(parts[r].oid)
	}
	out := &Sparse{n: a.n, oid: make([]int, 0, total), val: make([]float64, 0, total)}
	for r := range parts {
		out.oid = append(out.oid, parts[r].oid...)
		out.val = append(out.val, parts[r].val...)
		c.Arena().FreeInts(parts[r].oid)
		c.Arena().FreeFloats(parts[r].val)
	}
	return out
}

// mergeSparse merges a.oid[ai:aj] with b.oid[bi:bj] into out, summing
// values on shared OIDs and suppressing exact-zero results.
func mergeSparse(out *Sparse, a *Sparse, ai, aj int, b *Sparse, bi, bj int) {
	i, j := ai, bi
	for i < aj && j < bj {
		switch {
		case a.oid[i] < b.oid[j]:
			out.oid = append(out.oid, a.oid[i])
			out.val = append(out.val, a.val[i])
			i++
		case a.oid[i] > b.oid[j]:
			out.oid = append(out.oid, b.oid[j])
			out.val = append(out.val, b.val[j])
			j++
		default:
			if v := a.val[i] + b.val[j]; v != 0 {
				out.oid = append(out.oid, a.oid[i])
				out.val = append(out.val, v)
			}
			i++
			j++
		}
	}
	for ; i < aj; i++ {
		out.oid = append(out.oid, a.oid[i])
		out.val = append(out.val, a.val[i])
	}
	for ; j < bj; j++ {
		out.oid = append(out.oid, b.oid[j])
		out.val = append(out.val, b.val[j])
	}
}
