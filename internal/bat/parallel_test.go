package bat

import (
	"math"
	"math/rand"
	"testing"
)

// chunkBoundarySizes probes the parallel decomposition exactly where the
// fixed-size chunking of the kernels changes shape.
func chunkBoundarySizes() []int {
	return []int{1, 7, SerialCutoff - 1, SerialCutoff, SerialCutoff + 1, 3*SerialCutoff + 17}
}

func randomFloats(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	f := make([]float64, n)
	for k := range f {
		f[k] = rng.NormFloat64() * 100
	}
	return f
}

// withParallelism runs f under the given worker budget and restores the
// previous budget afterwards.
func withParallelism(workers int, f func()) {
	prev := SetParallelism(workers)
	defer SetParallelism(prev)
	f()
}

func bitsEqual(t *testing.T, name string, n int, serial, parallel []float64) {
	t.Helper()
	if len(serial) != len(parallel) {
		t.Fatalf("%s n=%d: length %d vs %d", name, n, len(serial), len(parallel))
	}
	for k := range serial {
		if math.Float64bits(serial[k]) != math.Float64bits(parallel[k]) {
			t.Fatalf("%s n=%d: element %d differs: %v vs %v", name, n, k, serial[k], parallel[k])
		}
	}
}

// TestElementwiseBitwiseIdentical asserts that every elementwise kernel
// produces bitwise-identical tails at worker budgets 1 and 8, across
// chunk-boundary sizes. Run with -race this also exercises the parallel
// writes for data races.
func TestElementwiseBitwiseIdentical(t *testing.T) {
	kernels := []struct {
		name string
		run  func(b, c *BAT) *BAT
	}{
		{"add", func(b, c *BAT) *BAT { return Add(nil, b, c) }},
		{"sub", func(b, c *BAT) *BAT { return Sub(nil, b, c) }},
		{"mul", func(b, c *BAT) *BAT { return Mul(nil, b, c) }},
		{"div", func(b, c *BAT) *BAT { return Div(nil, b, c) }},
		{"axpy", func(b, c *BAT) *BAT { return AXPY(nil, b, c, 1.5) }},
		{"addscalar", func(b, c *BAT) *BAT { return AddScalar(nil, b, 2.25) }},
		{"mulscalar", func(b, c *BAT) *BAT { return MulScalar(nil, b, -3.5) }},
		{"divscalar", func(b, c *BAT) *BAT { return DivScalar(nil, b, 7) }},
	}
	for _, n := range chunkBoundarySizes() {
		b := FromFloats(randomFloats(n, 1))
		c := FromFloats(randomFloats(n, 2))
		for _, k := range kernels {
			var serial, parallel *BAT
			withParallelism(1, func() { serial = k.run(b, c) })
			withParallelism(8, func() { parallel = k.run(b, c) })
			bitsEqual(t, k.name, n, serial.Vector().Floats(), parallel.Vector().Floats())
		}
	}
}

// TestReductionsBitwiseIdentical asserts that Sum and Dot — whose fixed
// chunk decomposition is combined in chunk order — are bitwise-identical
// at any worker budget.
func TestReductionsBitwiseIdentical(t *testing.T) {
	for _, n := range chunkBoundarySizes() {
		b := FromFloats(randomFloats(n, 3))
		c := FromFloats(randomFloats(n, 4))
		for _, workers := range []int{2, 3, 8} {
			var sum1, sumP, dot1, dotP float64
			withParallelism(1, func() { sum1, dot1 = Sum(nil, b), Dot(nil, b, c) })
			withParallelism(workers, func() { sumP, dotP = Sum(nil, b), Dot(nil, b, c) })
			if math.Float64bits(sum1) != math.Float64bits(sumP) {
				t.Fatalf("sum n=%d workers=%d: %v vs %v", n, workers, sum1, sumP)
			}
			if math.Float64bits(dot1) != math.Float64bits(dotP) {
				t.Fatalf("dot n=%d workers=%d: %v vs %v", n, workers, dot1, dotP)
			}
		}
	}
}

// TestGatherBitwiseIdentical covers the parallel leftfetchjoin for all
// three tail types.
func TestGatherBitwiseIdentical(t *testing.T) {
	for _, n := range chunkBoundarySizes() {
		idx := make([]int, n)
		for k := range idx {
			idx[k] = n - 1 - k
		}
		fb := FromFloats(randomFloats(n, 5))
		var serial, parallel *BAT
		withParallelism(1, func() { serial = fb.Gather(nil, idx) })
		withParallelism(8, func() { parallel = fb.Gather(nil, idx) })
		bitsEqual(t, "gather-float", n, serial.Vector().Floats(), parallel.Vector().Floats())

		ints := make([]int64, n)
		for k := range ints {
			ints[k] = int64(k * 3)
		}
		ib := FromInts(ints)
		var is, ip *BAT
		withParallelism(1, func() { is = ib.Gather(nil, idx) })
		withParallelism(8, func() { ip = ib.Gather(nil, idx) })
		for k := 0; k < n; k++ {
			if is.Vector().Ints()[k] != ip.Vector().Ints()[k] {
				t.Fatalf("gather-int n=%d: element %d differs", n, k)
			}
		}
	}
}

// TestAXPYIntoMatchesAXPY pins the in-place accumulation kernel to the
// allocating one.
func TestAXPYIntoMatchesAXPY(t *testing.T) {
	for _, n := range chunkBoundarySizes() {
		b := FromFloats(randomFloats(n, 6))
		c := FromFloats(randomFloats(n, 7))
		want := AXPY(nil, b, c, 0.75).Vector().Floats()
		dst := append([]float64(nil), b.Vector().Floats()...)
		AXPYInto(nil, dst, c, 0.75)
		bitsEqual(t, "axpyinto", n, want, dst)
	}
}

// TestArenaRoundTrip checks the allocation classes, the zeroing contract
// of AllocZero against recycled dirty buffers, and that foreign slices
// with non-class capacities are rejected rather than pooled.
func TestArenaRoundTrip(t *testing.T) {
	f := Alloc(100)
	if len(f) != 100 || cap(f) != 128 {
		t.Fatalf("Alloc(100): len=%d cap=%d, want 100/128", len(f), cap(f))
	}
	for k := range f {
		f[k] = 42
	}
	Free(f)
	z := AllocZero(100)
	for k, v := range z {
		if v != 0 {
			t.Fatalf("AllocZero: element %d = %v after recycling a dirty buffer", k, v)
		}
	}
	Free(z)

	got := Alloc(0)
	if len(got) != 0 {
		t.Fatalf("Alloc(0): len=%d", len(got))
	}
	Free(got)
	Free(make([]float64, 100)) // cap 100 is no class size: must be dropped, not pooled

	idx := AllocInts(1000)
	if len(idx) != 1000 || cap(idx) != 1024 {
		t.Fatalf("AllocInts(1000): len=%d cap=%d", len(idx), cap(idx))
	}
	FreeInts(idx)
}

// TestReleaseOwnership checks Release's gating: dense tails return to
// the arena (all three domains since the per-query context refactor),
// nil and sparse BATs are no-ops, and non-class capacities are dropped.
func TestReleaseOwnership(t *testing.T) {
	Release(nil, nil)
	Release(nil, FromInts([]int64{1, 2, 3}))
	Release(nil, FromSparse(Compress([]float64{0, 1, 0})))
	b := Add(nil, FromFloats(randomFloats(200, 8)), FromFloats(randomFloats(200, 9)))
	Release(nil, b) // kernel output came from the arena; returns cleanly
}
