package bat

import "repro/internal/exec"

// SerialCutoff re-exports the serial/parallel boundary of the execution
// substrate; the chunked kernels and their boundary-probing tests reference
// it through this package.
const SerialCutoff = exec.SerialCutoff

// SetParallelism sets the process-wide fallback worker budget and returns
// the previous value. Values below 1 are clamped to 1.
//
// Deprecated: the budget is per-invocation now — pass an exec.Ctx built
// with exec.New(workers) to the kernels instead. This shim only seeds the
// default context (exec.SetDefaultWorkers) that nil contexts resolve
// against; concurrent callers setting different budgets see the last
// write, which is exactly the global-knob race the context API removes.
func SetParallelism(n int) int { return exec.SetDefaultWorkers(n) }

// Parallelism returns the fallback worker budget of the default context.
//
// Deprecated: use exec.Ctx.Workers on the invocation's context.
func Parallelism() int { return exec.DefaultWorkers() }

// ParallelFor runs body over [0, n) on the default context.
//
// Deprecated: call ParallelFor on the invocation's exec.Ctx.
//
//lint:ignore rmalint/ctxfirst deprecated default-context shim; callers are migrating to exec.Ctx
func ParallelFor(n, minWork int, body func(lo, hi int)) {
	exec.Default().ParallelFor(n, minWork, body)
}

// ParallelRuns returns the default context's contiguous-range
// decomposition of n elements.
//
// Deprecated: call ParallelRuns on the invocation's exec.Ctx.
//
//lint:ignore rmalint/ctxfirst deprecated default-context shim; callers are migrating to exec.Ctx
func ParallelRuns(n int) (runs, size int) { return exec.Default().ParallelRuns(n) }
