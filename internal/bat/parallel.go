package bat

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// SerialCutoff is the number of elements at or below which the vectorized
// kernels stay on a single goroutine: at 16Ki float64s (128 KiB, two L2
// tiles) the per-goroutine scheduling cost exceeds the work saved. The
// first parallel size is SerialCutoff+1. It is also the fixed chunk edge
// of the deterministic reductions, so tests probe the serial→parallel
// boundary at SerialCutoff-1, SerialCutoff, SerialCutoff+1.
const SerialCutoff = 1 << 14

// parallelism is the process-wide worker budget for the column kernels,
// defaulting to GOMAXPROCS. It is read atomically on every kernel call so
// core.Options.Parallelism can override it per invocation.
var parallelism atomic.Int32

func init() { parallelism.Store(int32(runtime.GOMAXPROCS(0))) }

// SetParallelism sets the worker budget for all parallel kernels in this
// package and returns the previous value. Values below 1 are clamped to 1
// (fully serial execution). The knob is process-wide: concurrent callers
// setting different budgets see the last write.
func SetParallelism(n int) int {
	if n < 1 {
		n = 1
	}
	return int(parallelism.Swap(int32(n)))
}

// Parallelism returns the current worker budget.
func Parallelism() int { return int(parallelism.Load()) }

// ParallelFor splits [0, n) into at most Parallelism() contiguous ranges
// and runs body on every range, on the calling goroutine when n does not
// exceed minWork (so parallelism engages at n = minWork+1; ranges can be
// as small as ⌈minWork/workers⌉ right above the boundary). This is the
// shared parallel driver of the BAT execution stack: the kernels below,
// the column loops of package batlin, and the copy-in/copy-out loops of
// package core all decompose their work through it.
func ParallelFor(n, minWork int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := Parallelism()
	if minWork < 1 {
		minWork = 1
	}
	if ceil := (n + minWork - 1) / minWork; workers > ceil {
		workers = ceil
	}
	if workers <= 1 {
		body(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ParallelRuns returns the contiguous-range decomposition the
// range-concatenating kernels share: at most Parallelism() runs of at
// least SerialCutoff elements each, as (count, size) with
// count = ceil(n/size). Kernels that concatenate per-run outputs in run
// order produce the same result for any decomposition, so the run count
// may depend on the worker budget without breaking determinism.
func ParallelRuns(n int) (runs, size int) {
	runs = min(Parallelism(), (n+SerialCutoff-1)/SerialCutoff)
	size = (n + runs - 1) / runs
	return (n + size - 1) / size, size
}

// serialFor reports whether ParallelFor would run a range of n elements
// with minWork SerialCutoff on the calling goroutine. Kernels branch on it
// before building their ParallelFor closure: a closure capturing the
// operand slices is a heap allocation, which on the serial path would cost
// more than it saves.
func serialFor(n int) bool {
	return n <= SerialCutoff || Parallelism() <= 1
}

// parallelReduce sums per-chunk partial results over fixed-size chunks of
// SerialCutoff elements. Chunk boundaries depend only on n — never on the
// worker budget — and partials are combined in ascending chunk order, so
// the result is bitwise-identical at any parallelism (the property the
// -race tests in parallel_test.go assert).
func parallelReduce(n int, partial func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	chunks := (n + SerialCutoff - 1) / SerialCutoff
	if chunks == 1 {
		return partial(0, n)
	}
	if Parallelism() <= 1 {
		var s float64
		for c := 0; c < chunks; c++ {
			s += partial(c*SerialCutoff, min((c+1)*SerialCutoff, n))
		}
		return s
	}
	parts := make([]float64, chunks)
	ParallelFor(chunks, 1, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			parts[c] = partial(c*SerialCutoff, min((c+1)*SerialCutoff, n))
		}
	})
	var s float64
	for _, p := range parts {
		s += p
	}
	return s
}
