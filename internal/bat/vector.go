package bat

import (
	"fmt"

	"repro/internal/exec"
)

// Vector is a dense typed column: the tail of a BAT. Exactly one of the
// backing slices is in use, selected by typ. Vectors are the unit of
// vectorized execution; all kernels in this package operate on whole
// vectors, mirroring MonetDB's column-at-a-time processing model.
type Vector struct {
	typ Type
	f   []float64
	i   []int64
	s   []string
}

// NewFloatVector wraps a float64 slice (no copy).
func NewFloatVector(f []float64) *Vector { return &Vector{typ: Float, f: f} }

// NewIntVector wraps an int64 slice (no copy).
func NewIntVector(i []int64) *Vector { return &Vector{typ: Int, i: i} }

// NewStringVector wraps a string slice (no copy).
func NewStringVector(s []string) *Vector { return &Vector{typ: String, s: s} }

// NewEmptyVector returns a vector of the given type with capacity hint n.
func NewEmptyVector(t Type, n int) *Vector {
	v := &Vector{typ: t}
	switch t {
	case Float:
		v.f = make([]float64, 0, n)
	case Int:
		v.i = make([]int64, 0, n)
	case String:
		v.s = make([]string, 0, n)
	}
	return v
}

// Type returns the domain of the vector.
func (v *Vector) Type() Type { return v.typ }

// Len returns the number of values.
func (v *Vector) Len() int {
	switch v.typ {
	case Float:
		return len(v.f)
	case Int:
		return len(v.i)
	case String:
		return len(v.s)
	}
	return 0
}

// Floats returns the backing float64 slice. It panics when the vector is
// not a Float column; callers check Type first.
func (v *Vector) Floats() []float64 {
	if v.typ != Float {
		panic(fmt.Sprintf("bat: Floats on %v vector", v.typ))
	}
	return v.f
}

// Ints returns the backing int64 slice (panics unless Type == Int).
func (v *Vector) Ints() []int64 {
	if v.typ != Int {
		panic(fmt.Sprintf("bat: Ints on %v vector", v.typ))
	}
	return v.i
}

// Strings returns the backing string slice (panics unless Type == String).
func (v *Vector) Strings() []string {
	if v.typ != String {
		panic(fmt.Sprintf("bat: Strings on %v vector", v.typ))
	}
	return v.s
}

// Get returns the value at position k.
func (v *Vector) Get(k int) Value {
	switch v.typ {
	case Float:
		return Value{Type: Float, F: v.f[k]}
	case Int:
		return Value{Type: Int, I: v.i[k]}
	case String:
		return Value{Type: String, S: v.s[k]}
	}
	return Value{}
}

// Set overwrites position k. The value type must match the vector type.
func (v *Vector) Set(k int, val Value) {
	if val.Type != v.typ {
		panic(fmt.Sprintf("bat: Set %v value into %v vector", val.Type, v.typ))
	}
	switch v.typ {
	case Float:
		v.f[k] = val.F
	case Int:
		v.i[k] = val.I
	case String:
		v.s[k] = val.S
	}
}

// Append appends a value; the type must match.
func (v *Vector) Append(val Value) {
	if val.Type != v.typ {
		panic(fmt.Sprintf("bat: Append %v value to %v vector", val.Type, v.typ))
	}
	switch v.typ {
	case Float:
		v.f = append(v.f, val.F)
	case Int:
		v.i = append(v.i, val.I)
	case String:
		v.s = append(v.s, val.S)
	}
}

// AppendVector appends all values of w (same type) to v.
func (v *Vector) AppendVector(w *Vector) {
	if w.typ != v.typ {
		panic(fmt.Sprintf("bat: AppendVector %v to %v", w.typ, v.typ))
	}
	switch v.typ {
	case Float:
		v.f = append(v.f, w.f...)
	case Int:
		v.i = append(v.i, w.i...)
	case String:
		v.s = append(v.s, w.s...)
	}
}

// Clone returns a deep copy of the vector. Float copies come from the
// arena so cloned scratch columns can be recycled with Free/Release.
func (v *Vector) Clone() *Vector {
	c := &Vector{typ: v.typ}
	switch v.typ {
	case Float:
		c.f = Alloc(len(v.f))
		copy(c.f, v.f)
	case Int:
		c.i = append([]int64(nil), v.i...)
	case String:
		c.s = append([]string(nil), v.s...)
	}
	return c
}

// Gather returns a new vector whose k-th value is v[idx[k]]. This is
// MonetDB's leftfetchjoin: a positional fetch that reorders or filters a
// tail by a list of OIDs. The fetch is decomposed over the context's
// workers; all three tail domains draw their output from the context's
// arena.
func (v *Vector) Gather(c *exec.Ctx, idx []int) *Vector {
	out := &Vector{typ: v.typ}
	switch v.typ {
	case Float:
		out.f = c.Arena().Floats(len(idx))
		if c.Serial(len(idx)) {
			for k, j := range idx {
				out.f[k] = v.f[j]
			}
		} else {
			c.ParallelFor(len(idx), SerialCutoff, func(lo, hi int) {
				for k := lo; k < hi; k++ {
					out.f[k] = v.f[idx[k]]
				}
			})
		}
	case Int:
		out.i = c.Arena().Int64s(len(idx))
		if c.Serial(len(idx)) {
			for k, j := range idx {
				out.i[k] = v.i[j]
			}
		} else {
			c.ParallelFor(len(idx), SerialCutoff, func(lo, hi int) {
				for k := lo; k < hi; k++ {
					out.i[k] = v.i[idx[k]]
				}
			})
		}
	case String:
		out.s = c.Arena().Strings(len(idx))
		if c.Serial(len(idx)) {
			for k, j := range idx {
				out.s[k] = v.s[j]
			}
		} else {
			c.ParallelFor(len(idx), SerialCutoff, func(lo, hi int) {
				for k := lo; k < hi; k++ {
					out.s[k] = v.s[idx[k]]
				}
			})
		}
	}
	return out
}

// AsFloats returns the column as a float64 slice on the default context,
// converting integer columns. Float columns are returned without copying;
// the second result reports whether the slice is shared with the vector
// (callers that intend to write must copy when shared is true). String
// columns yield an error at the BAT level before this is reached.
func (v *Vector) AsFloats() (vals []float64, shared bool) { return v.asFloats(nil) }

// asFloats is AsFloats on an explicit execution context.
func (v *Vector) asFloats(c *exec.Ctx) (vals []float64, shared bool) {
	switch v.typ {
	case Float:
		return v.f, true
	case Int:
		out := c.Arena().Floats(len(v.i))
		if c.Serial(len(v.i)) {
			for k, x := range v.i {
				out[k] = float64(x)
			}
		} else {
			c.ParallelFor(len(v.i), SerialCutoff, func(lo, hi int) {
				for k := lo; k < hi; k++ {
					out[k] = float64(v.i[k])
				}
			})
		}
		return out, false
	}
	panic("bat: AsFloats on string vector")
}

// Compare compares v[i] with w[j] without boxing: -1, 0, or +1.
// Both vectors must have the same type.
func (v *Vector) Compare(i int, w *Vector, j int) int {
	switch v.typ {
	case Float:
		a, b := v.f[i], w.f[j]
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	case Int:
		a, b := v.i[i], w.i[j]
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	case String:
		a, b := v.s[i], w.s[j]
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	return 0
}
