package bat

import (
	"math/rand"
	"sort"
	"testing"
)

// refStablePerm is the single-goroutine reference permutation the parallel
// merge sort is pinned against.
func refStablePerm(n int, less func(a, b int) bool) []int {
	idx := make([]int, n)
	for k := range idx {
		idx[k] = k
	}
	sort.SliceStable(idx, func(a, b int) bool { return less(idx[a], idx[b]) })
	return idx
}

func permsEqual(t *testing.T, name string, n, workers int, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s n=%d workers=%d: length %d vs %d", name, n, workers, len(got), len(want))
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("%s n=%d workers=%d: position %d = %d, want %d", name, n, workers, k, got[k], want[k])
		}
	}
}

// TestSortIndexIdenticalAcrossWorkers asserts the merge-sorted permutation
// over a duplicate-heavy float key is identical to the serial stable sort
// at worker budgets 1, 2, and 8, across the chunk-boundary sizes. Run with
// -race this also exercises the parallel run sorts and merges.
func TestSortIndexIdenticalAcrossWorkers(t *testing.T) {
	for _, n := range chunkBoundarySizes() {
		rng := rand.New(rand.NewSource(int64(n)))
		f := make([]float64, n)
		for k := range f {
			f[k] = float64(rng.Intn(97)) / 3 // heavy duplication → stability matters
		}
		want := refStablePerm(n, func(a, b int) bool { return f[a] < f[b] })
		b := FromFloats(f)
		for _, workers := range []int{1, 2, 8} {
			withParallelism(workers, func() {
				idx := SortIndex(nil, []*BAT{b})
				permsEqual(t, "sortindex-float", n, workers, idx, want)
				FreeInts(idx)
			})
		}
	}
}

// TestSortIndexMultiKeyIdenticalAcrossWorkers covers the multi-key
// comparator path (int then string) above the serial cutoff.
func TestSortIndexMultiKeyIdenticalAcrossWorkers(t *testing.T) {
	n := SerialCutoff + 1
	rng := rand.New(rand.NewSource(42))
	ints := make([]int64, n)
	strs := make([]string, n)
	tags := []string{"p", "q", "r", "s"}
	for k := range ints {
		ints[k] = int64(rng.Intn(5))
		strs[k] = tags[rng.Intn(len(tags))]
	}
	bi, bs := FromInts(ints), FromStrings(strs)
	want := refStablePerm(n, func(a, b int) bool {
		if ints[a] != ints[b] {
			return ints[a] < ints[b]
		}
		return strs[a] < strs[b]
	})
	for _, workers := range []int{1, 2, 8} {
		withParallelism(workers, func() {
			idx := SortIndex(nil, []*BAT{bi, bs})
			permsEqual(t, "sortindex-multikey", n, workers, idx, want)
			FreeInts(idx)
		})
	}
}

// TestSortStableIsStable verifies the defining property directly: among
// equal keys, original positions stay ascending — at sizes on both sides
// of the parallel boundary.
func TestSortStableIsStable(t *testing.T) {
	for _, n := range []int{SerialCutoff - 1, SerialCutoff + 1, 3*SerialCutoff + 17} {
		keys := make([]int, n)
		for k := range keys {
			keys[k] = k % 7
		}
		withParallelism(8, func() {
			idx := SortStable(nil, n, func(a, b int) bool { return keys[a] < keys[b] })
			for k := 1; k < n; k++ {
				ka, kb := keys[idx[k-1]], keys[idx[k]]
				if ka > kb {
					t.Fatalf("n=%d: not sorted at %d", n, k)
				}
				if ka == kb && idx[k-1] > idx[k] {
					t.Fatalf("n=%d: stability violated at %d: %d before %d", n, k, idx[k-1], idx[k])
				}
			}
			FreeInts(idx)
		})
	}
}
