package bat

import (
	"math/rand"
	"os"
	"testing"

	"repro/internal/exec"
)

// TestSortStableSpillBitwise checks that the out-of-core merge produces
// the exact permutation of the in-memory path, records its spill
// activity, and leaves no run files behind.
func TestSortStableSpillBitwise(t *testing.T) {
	n := 5*SerialCutoff + 321
	rng := rand.New(rand.NewSource(7))
	keys := make([]float64, n)
	for k := range keys {
		keys[k] = float64(rng.Intn(n / 4)) // many duplicates: stability matters
	}
	less := func(a, b int) bool { return keys[a] < keys[b] }

	cm := exec.NewCtx(4, nil, nil)
	want := SortStable(cm, n, less)

	dir := t.TempDir()
	sp := exec.NewSpill(dir, 0).Forced()
	defer sp.Cleanup()
	var stats exec.Stats
	cs := exec.NewCtx(4, nil, &stats).WithSpill(sp)
	got := SortStable(cs, n, less)

	if len(got) != len(want) {
		t.Fatalf("length %d != %d", len(got), len(want))
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("permutation diverges at %d: %d != %d", k, got[k], want[k])
		}
	}
	st := sp.Stats()
	if st.SpilledBytes == 0 || st.Partitions < 2 {
		t.Fatalf("spill not recorded: %+v", st)
	}
	if stats.SpilledBytes.Load() != st.SpilledBytes {
		t.Fatalf("Stats.SpilledBytes %d != spill manager %d", stats.SpilledBytes.Load(), st.SpilledBytes)
	}
	// Run files are removed eagerly after the merge.
	d, err := sp.Dir()
	if err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill dir not empty after merge: %d entries", len(ents))
	}
}

// TestSortStableSpillSerialNoop: a serial context never reaches the
// parallel merge, so a forced spill manager must not change anything.
func TestSortStableSpillSerialNoop(t *testing.T) {
	n := 2 * SerialCutoff
	keys := make([]float64, n)
	for k := range keys {
		keys[k] = float64(n - k)
	}
	less := func(a, b int) bool { return keys[a] < keys[b] }
	sp := exec.NewSpill(t.TempDir(), 0).Forced()
	defer sp.Cleanup()
	c := exec.NewCtx(1, nil, nil).WithSpill(sp)
	got := SortStable(c, n, less)
	for k := 1; k < n; k++ {
		if keys[got[k-1]] > keys[got[k]] {
			t.Fatalf("not sorted at %d", k)
		}
	}
	if st := sp.Stats(); st.SpilledBytes != 0 {
		t.Fatalf("serial sort spilled: %+v", st)
	}
}
