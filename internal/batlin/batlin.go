// Package batlin implements matrix operations directly over lists of BATs
// — the paper's "no-copy implementation in the kernel of MonetDB"
// (RMA+BAT, Section 7.3). A matrix is represented as its columns: a slice
// of float BATs of equal length. Standard value-based algorithms are
// reduced to vectorized BAT operations (whole-column arithmetic), with
// single-element access (sel) kept to a minimum, exactly as the paper
// prescribes.
//
// The operations implemented here are the ones the paper runs on BATs:
// the elementwise family (add, sub, emu), multiplication-family operations
// reduced to column arithmetic (mmu, cpd, opd), restructuring (tra),
// Gauss-Jordan inversion (the paper's Algorithm 2), Gram-Schmidt QR (the
// paper's Section 8.3 baseline), determinant, and solve. The spectral
// operations (eigen, SVD, Cholesky) delegate to the dense kernel even in
// BAT mode, mirroring the paper's policy of delegating complex operations.
package batlin

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/bat"
)

// ErrSingular is returned when elimination meets a vanishing pivot.
var ErrSingular = errors.New("batlin: singular matrix")

// ErrShape is returned on dimension mismatches.
var ErrShape = errors.New("batlin: dimension mismatch")

func rows(cols []*bat.BAT) int {
	if len(cols) == 0 {
		return 0
	}
	return cols[0].Len()
}

// IDMatrix returns the identity matrix of size n as a list of BATs (the
// paper's IDmatrix helper in Algorithm 2).
func IDMatrix(n int) []*bat.BAT {
	out := make([]*bat.BAT, n)
	for j := range out {
		col := make([]float64, n)
		col[j] = 1
		out[j] = bat.FromFloats(col)
	}
	return out
}

// Add returns the columnwise sum of two equally-shaped column lists.
func Add(a, b []*bat.BAT) ([]*bat.BAT, error) {
	if len(a) != len(b) || rows(a) != rows(b) {
		return nil, ErrShape
	}
	out := make([]*bat.BAT, len(a))
	for j := range a {
		out[j] = bat.Add(a[j], b[j])
	}
	return out, nil
}

// Sub returns the columnwise difference a - b.
func Sub(a, b []*bat.BAT) ([]*bat.BAT, error) {
	if len(a) != len(b) || rows(a) != rows(b) {
		return nil, ErrShape
	}
	out := make([]*bat.BAT, len(a))
	for j := range a {
		out[j] = bat.Sub(a[j], b[j])
	}
	return out, nil
}

// EMU returns the columnwise Hadamard product.
func EMU(a, b []*bat.BAT) ([]*bat.BAT, error) {
	if len(a) != len(b) || rows(a) != rows(b) {
		return nil, ErrShape
	}
	out := make([]*bat.BAT, len(a))
	for j := range a {
		out[j] = bat.Mul(a[j], b[j])
	}
	return out, nil
}

// MMU multiplies an m×k column list by a k×n column list: result column j
// is Σ_l a[l]·b[j][l], computed as a chain of scalar AXPYs over whole
// columns — k vectorized BAT operations per result column.
func MMU(a, b []*bat.BAT) ([]*bat.BAT, error) {
	k := len(a)
	if k == 0 || rows(b) != k {
		return nil, ErrShape
	}
	m := rows(a)
	out := make([]*bat.BAT, len(b))
	for j := range b {
		acc := bat.FromFloats(make([]float64, m))
		for l := 0; l < k; l++ {
			w := bat.Sel(b[j], l)
			if w == 0 {
				continue
			}
			acc = bat.AXPY(acc, a[l], -w) // acc + a[l]*w
		}
		out[j] = acc
	}
	return out, nil
}

// CPD computes the cross product aᵀ·b of two column lists with the same
// number of rows. Each result cell is a whole-column dot product; the
// result has len(a) rows and len(b) columns. This is the pattern the paper
// calls out as requiring single-element access when done over BATs, which
// is why RMA+MKL wins by 24-70x on the covariance workload (Fig. 17b).
func CPD(a, b []*bat.BAT) ([]*bat.BAT, error) {
	if rows(a) != rows(b) {
		return nil, ErrShape
	}
	out := make([]*bat.BAT, len(b))
	for j := range b {
		col := make([]float64, len(a))
		for p := range a {
			col[p] = bat.Dot(a[p], b[j])
		}
		out[j] = bat.FromFloats(col)
	}
	return out, nil
}

// OPD computes the outer product a·bᵀ of two column lists with the same
// number of columns: result[i][q] = Σ_l a[l][i]·b[l][q].
func OPD(a, b []*bat.BAT) ([]*bat.BAT, error) {
	if len(a) != len(b) {
		return nil, ErrShape
	}
	m := rows(a)
	n := rows(b)
	out := make([]*bat.BAT, n)
	for q := 0; q < n; q++ {
		acc := bat.FromFloats(make([]float64, m))
		for l := range a {
			w := bat.Sel(b[l], q)
			if w == 0 {
				continue
			}
			acc = bat.AXPY(acc, a[l], -w)
		}
		out[q] = acc
	}
	return out, nil
}

// Tra transposes a column list: the result has rows(a) columns of length
// len(a). Transposition over columns is inherently element-at-a-time.
func Tra(a []*bat.BAT) []*bat.BAT {
	m := rows(a)
	n := len(a)
	cols := make([][]float64, m)
	for i := range cols {
		cols[i] = make([]float64, n)
	}
	for j, c := range a {
		f, err := c.Floats()
		if err != nil {
			panic(fmt.Sprintf("batlin: %v", err))
		}
		for i, v := range f {
			cols[i][j] = v
		}
	}
	out := make([]*bat.BAT, m)
	for i := range out {
		out[i] = bat.FromFloats(cols[i])
	}
	return out
}

// Inv inverts a square matrix held as columns using the paper's
// Algorithm 2 (Gauss-Jordan elimination reduced to BAT operations), with
// column pivoting added for numerical robustness: at step i the column
// with the largest |value| in row i is swapped in. All updates are
// whole-column BAT operations; only pivots use single-element sel.
func Inv(b []*bat.BAT) ([]*bat.BAT, error) {
	n := len(b)
	if n == 0 || rows(b) != n {
		return nil, ErrShape
	}
	work := make([]*bat.BAT, n)
	for j := range b {
		work[j] = b[j].Clone()
	}
	br := IDMatrix(n)
	for i := 0; i < n; i++ {
		// Column pivot: argmax_j>=i |work[j][i]|.
		p := i
		mx := math.Abs(bat.Sel(work[i], i))
		for j := i + 1; j < n; j++ {
			if v := math.Abs(bat.Sel(work[j], i)); v > mx {
				mx, p = v, j
			}
		}
		if mx == 0 {
			return nil, ErrSingular
		}
		if p != i {
			work[i], work[p] = work[p], work[i]
			br[i], br[p] = br[p], br[i]
		}
		v1 := bat.Sel(work[i], i)
		work[i] = bat.DivScalar(work[i], v1)
		br[i] = bat.DivScalar(br[i], v1)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v2 := bat.Sel(work[j], i)
			if v2 == 0 {
				continue
			}
			work[j] = bat.AXPY(work[j], work[i], v2)
			br[j] = bat.AXPY(br[j], br[i], v2)
		}
	}
	return br, nil
}

// QR computes the thin QR decomposition of an m×n column list (m >= n)
// with modified Gram-Schmidt — the BAT baseline the paper measures against
// MKL in Section 8.3. Q has orthonormal columns; R is returned as n
// columns of length n (upper triangular).
func QR(a []*bat.BAT) (q, r []*bat.BAT, err error) {
	n := len(a)
	m := rows(a)
	if n == 0 || m < n {
		return nil, nil, ErrShape
	}
	q = make([]*bat.BAT, n)
	rCols := make([][]float64, n)
	for j := range rCols {
		rCols[j] = make([]float64, n)
	}
	for j := 0; j < n; j++ {
		v := a[j].Clone()
		orig := math.Sqrt(bat.Dot(v, v))
		for k := 0; k < j; k++ {
			rkj := bat.Dot(q[k], v)
			rCols[j][k] = rkj
			if rkj != 0 {
				v = bat.AXPY(v, q[k], rkj)
			}
		}
		norm := math.Sqrt(bat.Dot(v, v))
		if norm <= 1e-12*orig {
			return nil, nil, ErrSingular
		}
		rCols[j][j] = norm
		q[j] = bat.DivScalar(v, norm)
	}
	r = make([]*bat.BAT, n)
	for j := range r {
		r[j] = bat.FromFloats(rCols[j])
	}
	return q, r, nil
}

// Det computes the determinant by Gaussian elimination over columns with
// column pivoting: adding a multiple of one column to another preserves
// the determinant, swaps flip its sign.
func Det(b []*bat.BAT) (float64, error) {
	n := len(b)
	if n == 0 || rows(b) != n {
		return 0, ErrShape
	}
	work := make([]*bat.BAT, n)
	for j := range b {
		work[j] = b[j].Clone()
	}
	det := 1.0
	for i := 0; i < n; i++ {
		p := i
		mx := math.Abs(bat.Sel(work[i], i))
		for j := i + 1; j < n; j++ {
			if v := math.Abs(bat.Sel(work[j], i)); v > mx {
				mx, p = v, j
			}
		}
		if mx == 0 {
			return 0, nil
		}
		if p != i {
			work[i], work[p] = work[p], work[i]
			det = -det
		}
		pivot := bat.Sel(work[i], i)
		det *= pivot
		for j := i + 1; j < n; j++ {
			v := bat.Sel(work[j], i)
			if v == 0 {
				continue
			}
			work[j] = bat.AXPY(work[j], work[i], v/pivot)
		}
	}
	return det, nil
}

// Solve solves A·x = rhs for square or overdetermined A (least squares via
// Gram-Schmidt QR): x = R⁻¹·Qᵀ·rhs.
func Solve(a []*bat.BAT, rhs *bat.BAT) (*bat.BAT, error) {
	n := len(a)
	if rows(a) != rhs.Len() {
		return nil, ErrShape
	}
	q, r, err := QR(a)
	if err != nil {
		return nil, err
	}
	qtb := make([]float64, n)
	for k := 0; k < n; k++ {
		qtb[k] = bat.Dot(q[k], rhs)
	}
	// Back substitution on the columnar R (r[j][k] = R[k][j]).
	x := make([]float64, n)
	for k := n - 1; k >= 0; k-- {
		s := qtb[k]
		for j := k + 1; j < n; j++ {
			s -= bat.Sel(r[j], k) * x[j]
		}
		rkk := bat.Sel(r[k], k)
		if rkk == 0 {
			return nil, ErrSingular
		}
		x[k] = s / rkk
	}
	return bat.FromFloats(x), nil
}
