// Package batlin implements matrix operations directly over lists of BATs
// — the paper's "no-copy implementation in the kernel of MonetDB"
// (RMA+BAT, Section 7.3). A matrix is represented as its columns: a slice
// of float BATs of equal length. Standard value-based algorithms are
// reduced to vectorized BAT operations (whole-column arithmetic), with
// single-element access (sel) kept to a minimum, exactly as the paper
// prescribes.
//
// The operations implemented here are the ones the paper runs on BATs:
// the elementwise family (add, sub, emu), multiplication-family operations
// reduced to column arithmetic (mmu, cpd, opd), restructuring (tra),
// Gauss-Jordan inversion (the paper's Algorithm 2), Gram-Schmidt QR (the
// paper's Section 8.3 baseline), determinant, and solve. The spectral
// operations (eigen, SVD, Cholesky) delegate to the dense kernel even in
// BAT mode, mirroring the paper's policy of delegating complex operations.
//
// Every operation takes the invocation's exec.Ctx first; execution is
// parallel on two axes under that context's worker budget. Within a
// column, every bat kernel decomposes its row range through
// Ctx.ParallelFor (serial below exec.SerialCutoff rows). Across columns,
// the independent per-column loops — the elementwise family, the result
// columns of mmu/cpd/opd, the scatter of tra, and the pivot-elimination
// fan-out of Algorithm 2 — are spread over goroutines with the same
// driver, so wide-and-short matrices parallelize over columns while
// tall-and-narrow ones parallelize over rows. Scratch columns come from
// the context's arena: the iterative algorithms (the elimination loop of
// Inv/Det, the orthogonalization loop of QR) release each superseded
// column with bat.Release, so one matrix worth of buffers is recycled
// across all iterations instead of allocating O(n) fresh columns per
// step.
package batlin

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/bat"
	"repro/internal/exec"
)

// ErrSingular is returned when elimination meets a vanishing pivot.
var ErrSingular = errors.New("batlin: singular matrix")

// ErrShape is returned on dimension mismatches.
var ErrShape = errors.New("batlin: dimension mismatch")

func rows(cols []*bat.BAT) int {
	if len(cols) == 0 {
		return 0
	}
	return cols[0].Len()
}

// colMinWork is the minimum number of columns one goroutine of a
// column-parallel loop handles. One column is already a whole vectorized
// kernel call, so even a single column per worker amortizes the spawn.
const colMinWork = 1

// IDMatrix returns the identity matrix of size n as a list of BATs (the
// paper's IDmatrix helper in Algorithm 2). Columns come from the arena.
func IDMatrix(c *exec.Ctx, n int) []*bat.BAT {
	out := make([]*bat.BAT, n)
	for j := range out {
		col := c.Arena().FloatsZero(n)
		col[j] = 1
		out[j] = bat.FromFloats(col)
	}
	return out
}

// Add returns the columnwise sum of two equally-shaped column lists,
// computed column-parallel.
func Add(c *exec.Ctx, a, b []*bat.BAT) (res []*bat.BAT, err error) {
	defer exec.CatchBudget(&err)
	if len(a) != len(b) || rows(a) != rows(b) {
		return nil, ErrShape
	}
	out := make([]*bat.BAT, len(a))
	c.ParallelFor(len(a), colMinWork, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			out[j] = bat.Add(c, a[j], b[j])
		}
	})
	return out, nil
}

// Sub returns the columnwise difference a - b, computed column-parallel.
func Sub(c *exec.Ctx, a, b []*bat.BAT) (res []*bat.BAT, err error) {
	defer exec.CatchBudget(&err)
	if len(a) != len(b) || rows(a) != rows(b) {
		return nil, ErrShape
	}
	out := make([]*bat.BAT, len(a))
	c.ParallelFor(len(a), colMinWork, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			out[j] = bat.Sub(c, a[j], b[j])
		}
	})
	return out, nil
}

// EMU returns the columnwise Hadamard product, computed column-parallel.
func EMU(c *exec.Ctx, a, b []*bat.BAT) (res []*bat.BAT, err error) {
	defer exec.CatchBudget(&err)
	if len(a) != len(b) || rows(a) != rows(b) {
		return nil, ErrShape
	}
	out := make([]*bat.BAT, len(a))
	c.ParallelFor(len(a), colMinWork, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			out[j] = bat.Mul(c, a[j], b[j])
		}
	})
	return out, nil
}

// MMU multiplies an m×k column list by a k×n column list: result column j
// is Σ_l a[l]·b[j][l], accumulated in-place into one arena column per
// result column (k AXPYInto calls instead of k allocating AXPYs). The
// independent result columns are computed in parallel.
func MMU(c *exec.Ctx, a, b []*bat.BAT) (res []*bat.BAT, err error) {
	defer exec.CatchBudget(&err)
	k := len(a)
	if k == 0 || rows(b) != k {
		return nil, ErrShape
	}
	m := rows(a)
	out := make([]*bat.BAT, len(b))
	c.ParallelFor(len(b), colMinWork, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			acc := c.Arena().FloatsZero(m)
			for l := 0; l < k; l++ {
				w := bat.Sel(b[j], l)
				if w == 0 {
					continue
				}
				bat.AXPYInto(c, acc, a[l], -w) // acc += a[l]*w
			}
			out[j] = bat.FromFloats(acc)
		}
	})
	return out, nil
}

// CPD computes the cross product aᵀ·b of two column lists with the same
// number of rows. Each result cell is a whole-column dot product; the
// result has len(a) rows and len(b) columns. This is the pattern the paper
// calls out as requiring single-element access when done over BATs, which
// is why RMA+MKL wins by 24-70x on the covariance workload (Fig. 17b).
// The result columns are independent and computed in parallel.
func CPD(c *exec.Ctx, a, b []*bat.BAT) (res []*bat.BAT, err error) {
	defer exec.CatchBudget(&err)
	if rows(a) != rows(b) {
		return nil, ErrShape
	}
	out := make([]*bat.BAT, len(b))
	c.ParallelFor(len(b), colMinWork, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			col := c.Arena().Floats(len(a))
			for p := range a {
				col[p] = bat.Dot(c, a[p], b[j])
			}
			out[j] = bat.FromFloats(col)
		}
	})
	return out, nil
}

// OPD computes the outer product a·bᵀ of two column lists with the same
// number of columns: result[i][q] = Σ_l a[l][i]·b[l][q], accumulated
// in-place per result column, columns in parallel.
func OPD(c *exec.Ctx, a, b []*bat.BAT) (res []*bat.BAT, err error) {
	defer exec.CatchBudget(&err)
	if len(a) != len(b) {
		return nil, ErrShape
	}
	m := rows(a)
	n := rows(b)
	out := make([]*bat.BAT, n)
	c.ParallelFor(n, colMinWork, func(lo, hi int) {
		for q := lo; q < hi; q++ {
			acc := c.Arena().FloatsZero(m)
			for l := range a {
				w := bat.Sel(b[l], q)
				if w == 0 {
					continue
				}
				bat.AXPYInto(c, acc, a[l], -w)
			}
			out[q] = bat.FromFloats(acc)
		}
	})
	return out, nil
}

// Tra transposes a column list: the result has rows(a) columns of length
// len(a). Transposition over columns is inherently element-at-a-time; the
// scatter is parallelized over source columns (each source column writes a
// distinct row of every output column, so the writes are disjoint).
func Tra(c *exec.Ctx, a []*bat.BAT) []*bat.BAT {
	m := rows(a)
	n := len(a)
	cols := make([][]float64, m)
	for i := range cols {
		cols[i] = c.Arena().Floats(n)
	}
	c.ParallelFor(n, colMinWork, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			f, err := a[j].FloatsCtx(c)
			if err != nil {
				panic(fmt.Sprintf("batlin: %v", err))
			}
			for i, v := range f {
				cols[i][j] = v
			}
			a[j].ReleaseFloats(c, f)
		}
	})
	out := make([]*bat.BAT, m)
	for i := range out {
		out[i] = bat.FromFloats(cols[i])
	}
	return out
}

// Inv inverts a square matrix held as columns using the paper's
// Algorithm 2 (Gauss-Jordan elimination reduced to BAT operations), with
// column pivoting added for numerical robustness: at step i the column
// with the largest |value| in row i is swapped in. All updates are
// whole-column BAT operations; only pivots use single-element sel. The
// elimination fan-out over the n-1 non-pivot columns runs column-parallel,
// and every superseded scratch column is released back to the arena, so
// the n-step elimination recycles two matrices worth of buffers instead
// of allocating ~2n² fresh columns.
func Inv(c *exec.Ctx, b []*bat.BAT) (res []*bat.BAT, err error) {
	defer exec.CatchBudget(&err)
	n := len(b)
	if n == 0 || rows(b) != n {
		return nil, ErrShape
	}
	work := make([]*bat.BAT, n)
	for j := range b {
		work[j] = b[j].Clone()
	}
	br := IDMatrix(c, n)
	releaseAll := func(cols []*bat.BAT) {
		for _, col := range cols {
			bat.Release(c, col)
		}
	}
	for i := 0; i < n; i++ {
		// Column pivot: argmax_j>=i |work[j][i]|.
		p := i
		mx := math.Abs(bat.Sel(work[i], i))
		for j := i + 1; j < n; j++ {
			if v := math.Abs(bat.Sel(work[j], i)); v > mx {
				mx, p = v, j
			}
		}
		if mx == 0 {
			releaseAll(work)
			releaseAll(br)
			return nil, ErrSingular
		}
		if p != i {
			work[i], work[p] = work[p], work[i]
			br[i], br[p] = br[p], br[i]
		}
		v1 := bat.Sel(work[i], i)
		oldW, oldB := work[i], br[i]
		work[i] = bat.DivScalar(c, oldW, v1)
		br[i] = bat.DivScalar(c, oldB, v1)
		bat.Release(c, oldW)
		bat.Release(c, oldB)
		// Pivot-elimination fan-out: the updates of the n-1 other columns
		// only read work[i]/br[i] and are independent of each other.
		c.ParallelFor(n, colMinWork, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				if i == j {
					continue
				}
				v2 := bat.Sel(work[j], i)
				if v2 == 0 {
					continue
				}
				oldW, oldB := work[j], br[j]
				work[j] = bat.AXPY(c, oldW, work[i], v2)
				br[j] = bat.AXPY(c, oldB, br[i], v2)
				bat.Release(c, oldW)
				bat.Release(c, oldB)
			}
		})
	}
	releaseAll(work)
	return br, nil
}

// QR computes the thin QR decomposition of an m×n column list (m >= n)
// with modified Gram-Schmidt — the BAT baseline the paper measures against
// MKL in Section 8.3. Q has orthonormal columns; R is returned as n
// columns of length n (upper triangular). The orthogonalization loop is
// inherently sequential in j and k (each projection reads the updated v),
// so parallelism comes from the row-parallel Dot/AXPY kernels; the scratch
// column superseded by each projection is released to the arena, keeping
// the loop's footprint at one column.
func QR(c *exec.Ctx, a []*bat.BAT) (q, r []*bat.BAT, err error) {
	defer exec.CatchBudget(&err)
	n := len(a)
	m := rows(a)
	if n == 0 || m < n {
		return nil, nil, ErrShape
	}
	q = make([]*bat.BAT, n)
	rCols := make([][]float64, n)
	for j := range rCols {
		rCols[j] = c.Arena().FloatsZero(n)
	}
	for j := 0; j < n; j++ {
		v := a[j].Clone()
		orig := math.Sqrt(bat.Dot(c, v, v))
		for k := 0; k < j; k++ {
			rkj := bat.Dot(c, q[k], v)
			rCols[j][k] = rkj
			if rkj != 0 {
				old := v
				v = bat.AXPY(c, old, q[k], rkj)
				bat.Release(c, old)
			}
		}
		norm := math.Sqrt(bat.Dot(c, v, v))
		if norm <= 1e-12*orig {
			bat.Release(c, v)
			for k := 0; k < j; k++ {
				bat.Release(c, q[k])
			}
			for k := range rCols {
				c.Arena().FreeFloats(rCols[k])
			}
			return nil, nil, ErrSingular
		}
		rCols[j][j] = norm
		q[j] = bat.DivScalar(c, v, norm)
		bat.Release(c, v)
	}
	r = make([]*bat.BAT, n)
	for j := range r {
		r[j] = bat.FromFloats(rCols[j])
	}
	return q, r, nil
}

// Det computes the determinant by Gaussian elimination over columns with
// column pivoting: adding a multiple of one column to another preserves
// the determinant, swaps flip its sign. Like Inv, the per-step update of
// the trailing columns fans out over goroutines and superseded scratch
// columns return to the arena.
func Det(c *exec.Ctx, b []*bat.BAT) (d float64, err error) {
	defer exec.CatchBudget(&err)
	n := len(b)
	if n == 0 || rows(b) != n {
		return 0, ErrShape
	}
	work := make([]*bat.BAT, n)
	for j := range b {
		work[j] = b[j].Clone()
	}
	det := 1.0
	for i := 0; i < n; i++ {
		p := i
		mx := math.Abs(bat.Sel(work[i], i))
		for j := i + 1; j < n; j++ {
			if v := math.Abs(bat.Sel(work[j], i)); v > mx {
				mx, p = v, j
			}
		}
		if mx == 0 {
			for j := range work {
				bat.Release(c, work[j])
			}
			return 0, nil
		}
		if p != i {
			work[i], work[p] = work[p], work[i]
			det = -det
		}
		pivot := bat.Sel(work[i], i)
		det *= pivot
		c.ParallelFor(n-i-1, colMinWork, func(lo, hi int) {
			for j := i + 1 + lo; j < i+1+hi; j++ {
				v := bat.Sel(work[j], i)
				if v == 0 {
					continue
				}
				old := work[j]
				work[j] = bat.AXPY(c, old, work[i], v/pivot)
				bat.Release(c, old)
			}
		})
	}
	for j := range work {
		bat.Release(c, work[j])
	}
	return det, nil
}

// Solve solves A·x = rhs for square or overdetermined A (least squares via
// Gram-Schmidt QR): x = R⁻¹·Qᵀ·rhs.
func Solve(c *exec.Ctx, a []*bat.BAT, rhs *bat.BAT) (res *bat.BAT, err error) {
	defer exec.CatchBudget(&err)
	n := len(a)
	if rows(a) != rhs.Len() {
		return nil, ErrShape
	}
	q, r, err := QR(c, a)
	if err != nil {
		return nil, err
	}
	release := func() {
		for k := range q {
			bat.Release(c, q[k])
			bat.Release(c, r[k])
		}
	}
	qtb := make([]float64, n)
	for k := 0; k < n; k++ {
		qtb[k] = bat.Dot(c, q[k], rhs)
	}
	// Back substitution on the columnar R (r[j][k] = R[k][j]).
	x := make([]float64, n)
	for k := n - 1; k >= 0; k-- {
		s := qtb[k]
		for j := k + 1; j < n; j++ {
			s -= bat.Sel(r[j], k) * x[j]
		}
		rkk := bat.Sel(r[k], k)
		if rkk == 0 {
			release()
			return nil, ErrSingular
		}
		x[k] = s / rkk
	}
	release()
	return bat.FromFloats(x), nil
}
