package batlin

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bat"
	"repro/internal/linalg"
	"repro/internal/matrix"
)

// toCols converts a dense matrix to a BAT column list.
func toCols(m *matrix.Matrix) []*bat.BAT {
	cols := m.Columns()
	out := make([]*bat.BAT, len(cols))
	for j, c := range cols {
		out[j] = bat.FromFloats(c)
	}
	return out
}

// toMatrix converts a BAT column list back to a dense matrix.
func toMatrix(cols []*bat.BAT) *matrix.Matrix {
	ff := make([][]float64, len(cols))
	for j, c := range cols {
		f, err := c.Floats()
		if err != nil {
			panic(err)
		}
		ff[j] = f
	}
	return matrix.FromColumns(ff)
}

func randMat(rng *rand.Rand, m, n int) *matrix.Matrix {
	a := matrix.New(m, n)
	for k := range a.Data {
		a.Data[k] = rng.NormFloat64()
	}
	return a
}

func TestElementwiseAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randMat(rng, 20, 5)
	b := randMat(rng, 20, 5)
	sum, err := Add(nil, toCols(a), toCols(b))
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.ApproxEqual(toMatrix(sum), matrix.Add(a, b), 1e-12) {
		t.Error("Add mismatch")
	}
	diff, _ := Sub(nil, toCols(a), toCols(b))
	if !matrix.ApproxEqual(toMatrix(diff), matrix.Sub(a, b), 1e-12) {
		t.Error("Sub mismatch")
	}
	had, _ := EMU(nil, toCols(a), toCols(b))
	if !matrix.ApproxEqual(toMatrix(had), matrix.EMU(a, b), 1e-12) {
		t.Error("EMU mismatch")
	}
	if _, err := Add(nil, toCols(a), toCols(randMat(rng, 19, 5))); err != ErrShape {
		t.Error("shape mismatch accepted")
	}
	if _, err := Sub(nil, toCols(a), toCols(randMat(rng, 20, 4))); err != ErrShape {
		t.Error("shape mismatch accepted")
	}
	if _, err := EMU(nil, toCols(a), toCols(randMat(rng, 20, 4))); err != ErrShape {
		t.Error("shape mismatch accepted")
	}
}

func TestMMUAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMat(rng, 9, 4)
	b := randMat(rng, 4, 6)
	got, err := MMU(nil, toCols(a), toCols(b))
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.ApproxEqual(toMatrix(got), linalg.MatMul(nil, a, b), 1e-10) {
		t.Error("MMU mismatch")
	}
	if _, err := MMU(nil, toCols(a), toCols(randMat(rng, 5, 2))); err != ErrShape {
		t.Error("inner mismatch accepted")
	}
}

func TestCPDOPDAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMat(rng, 12, 3)
	b := randMat(rng, 12, 5)
	got, err := CPD(nil, toCols(a), toCols(b))
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.ApproxEqual(toMatrix(got), linalg.CrossProduct(nil, a, b), 1e-10) {
		t.Error("CPD mismatch")
	}
	c := randMat(rng, 4, 3)
	d := randMat(rng, 7, 3)
	god, err := OPD(nil, toCols(c), toCols(d))
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.ApproxEqual(toMatrix(god), linalg.OuterProduct(nil, c, d), 1e-10) {
		t.Error("OPD mismatch")
	}
	if _, err := CPD(nil, toCols(a), toCols(c)); err != ErrShape {
		t.Error("CPD row mismatch accepted")
	}
	if _, err := OPD(nil, toCols(a), toCols(b)); err != ErrShape {
		t.Error("OPD col mismatch accepted")
	}
}

func TestTra(t *testing.T) {
	a := matrix.FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := toMatrix(Tra(nil, toCols(a)))
	if !matrix.ApproxEqual(got, a.T(), 0) {
		t.Errorf("Tra = %v", got)
	}
}

func TestInvAlgorithm2(t *testing.T) {
	// The paper's Figure 3 example.
	a := matrix.FromRows([][]float64{{6, 7}, {8, 5}})
	inv, err := Inv(nil, toCols(a))
	if err != nil {
		t.Fatal(err)
	}
	dense, _ := linalg.Inverse(a)
	if !matrix.ApproxEqual(toMatrix(inv), dense, 1e-12) {
		t.Errorf("Inv = %v, want %v", toMatrix(inv), dense)
	}
}

func TestInvRandomAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 3, 8, 25} {
		a := randMat(rng, n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+2)
		}
		got, err := Inv(nil, toCols(a))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !matrix.ApproxEqual(linalg.MatMul(nil, a, toMatrix(got)), matrix.Identity(n), 1e-8) {
			t.Fatalf("n=%d: A·A⁻¹ != I", n)
		}
	}
}

func TestInvNeedsPivoting(t *testing.T) {
	// Zero on the diagonal: plain Algorithm 2 would divide by zero.
	a := matrix.FromRows([][]float64{{0, 1}, {1, 0}})
	inv, err := Inv(nil, toCols(a))
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.ApproxEqual(toMatrix(inv), a, 1e-12) { // a is its own inverse
		t.Errorf("Inv = %v", toMatrix(inv))
	}
}

func TestInvErrors(t *testing.T) {
	if _, err := Inv(nil, toCols(matrix.New(2, 3))); err != ErrShape {
		t.Error("non-square accepted")
	}
	if _, err := Inv(nil, toCols(matrix.FromRows([][]float64{{1, 2}, {2, 4}}))); err != ErrSingular {
		t.Error("singular accepted")
	}
	if _, err := Inv(nil, nil); err != ErrShape {
		t.Error("empty accepted")
	}
}

func TestGramSchmidtQR(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, dims := range [][2]int{{4, 4}, {12, 5}, {60, 10}} {
		a := randMat(rng, dims[0], dims[1])
		q, r, err := QR(nil, toCols(a))
		if err != nil {
			t.Fatal(err)
		}
		qm, rm := toMatrix(q), toMatrix(r)
		if !matrix.ApproxEqual(linalg.MatMul(nil, qm, rm), a, 1e-8) {
			t.Fatalf("%v: Q·R != A", dims)
		}
		if !matrix.ApproxEqual(linalg.CrossProduct(nil, qm, qm), matrix.Identity(dims[1]), 1e-8) {
			t.Fatalf("%v: QᵀQ != I", dims)
		}
		for j := 0; j < dims[1]; j++ {
			for i := j + 1; i < dims[1]; i++ {
				if rm.At(i, j) != 0 {
					t.Fatalf("R not upper triangular")
				}
			}
		}
	}
	if _, _, err := QR(nil, toCols(matrix.New(2, 3))); err != ErrShape {
		t.Error("wide QR accepted")
	}
	if _, _, err := QR(nil, toCols(matrix.FromRows([][]float64{{1, 1}, {1, 1}}))); err != ErrSingular {
		t.Error("rank-deficient QR accepted")
	}
}

func TestDetAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{1, 2, 5, 12} {
		a := randMat(rng, n, n)
		got, err := Det(nil, toCols(a))
		if err != nil {
			t.Fatal(err)
		}
		want, _ := linalg.Det(a)
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("n=%d: det = %v, want %v", n, got, want)
		}
	}
	if d, err := Det(nil, toCols(matrix.FromRows([][]float64{{1, 2}, {2, 4}}))); err != nil || d != 0 {
		t.Errorf("singular det = %v, %v", d, err)
	}
	if _, err := Det(nil, toCols(matrix.New(2, 3))); err != ErrShape {
		t.Error("non-square det accepted")
	}
}

func TestSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randMat(rng, 10, 3)
	want := []float64{2, -1, 0.5}
	rhs := linalg.MatVec(a, want)
	x, err := Solve(nil, toCols(a), bat.FromFloats(rhs))
	if err != nil {
		t.Fatal(err)
	}
	f, _ := x.Floats()
	for i := range want {
		if math.Abs(f[i]-want[i]) > 1e-8 {
			t.Fatalf("solve = %v", f)
		}
	}
	if _, err := Solve(nil, toCols(a), bat.FromFloats(make([]float64, 9))); err != ErrShape {
		t.Error("rhs length mismatch accepted")
	}
}

func TestIDMatrix(t *testing.T) {
	id := toMatrix(IDMatrix(nil, 4))
	if !matrix.ApproxEqual(id, matrix.Identity(4), 0) {
		t.Errorf("IDMatrix = %v", id)
	}
}
