package batlin

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bat"
)

func randomCols(rows, cols int, seed int64) []*bat.BAT {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*bat.BAT, cols)
	for j := range out {
		f := make([]float64, rows)
		for k := range f {
			f[k] = rng.NormFloat64() * 10
		}
		out[j] = bat.FromFloats(f)
	}
	return out
}

func withParallelism(workers int, f func()) {
	prev := bat.SetParallelism(workers)
	defer bat.SetParallelism(prev)
	f()
}

func colsBitsEqual(t *testing.T, name string, rows int, serial, parallel []*bat.BAT) {
	t.Helper()
	if len(serial) != len(parallel) {
		t.Fatalf("%s rows=%d: %d vs %d columns", name, rows, len(serial), len(parallel))
	}
	for j := range serial {
		sf, pf := serial[j].Vector().Floats(), parallel[j].Vector().Floats()
		for k := range sf {
			if math.Float64bits(sf[k]) != math.Float64bits(pf[k]) {
				t.Fatalf("%s rows=%d: column %d element %d differs: %v vs %v",
					name, rows, j, k, sf[k], pf[k])
			}
		}
	}
}

// TestColumnKernelsBitwiseIdentical asserts that the column-parallel
// Add/Sub/EMU/MMU/Tra produce bitwise-identical results at worker budgets
// 1 and 8, across row counts straddling the kernels' serial cutoff. Under
// -race this doubles as the data-race check for the column fan-out nested
// inside the row-parallel kernels.
func TestColumnKernelsBitwiseIdentical(t *testing.T) {
	for _, rows := range []int{bat.SerialCutoff - 1, bat.SerialCutoff, bat.SerialCutoff + 1} {
		const k = 5
		a := randomCols(rows, k, int64(rows))
		b := randomCols(rows, k, int64(rows)+1)
		sq := randomCols(k, 3, int64(rows)+2) // k×3 right operand for MMU

		run := func(name string, f func() ([]*bat.BAT, error)) {
			var serial, parallel []*bat.BAT
			var err1, err2 error
			withParallelism(1, func() { serial, err1 = f() })
			withParallelism(8, func() { parallel, err2 = f() })
			if err1 != nil || err2 != nil {
				t.Fatalf("%s rows=%d: %v / %v", name, rows, err1, err2)
			}
			colsBitsEqual(t, name, rows, serial, parallel)
		}
		run("add", func() ([]*bat.BAT, error) { return Add(nil, a, b) })
		run("sub", func() ([]*bat.BAT, error) { return Sub(nil, a, b) })
		run("emu", func() ([]*bat.BAT, error) { return EMU(nil, a, b) })
		run("mmu", func() ([]*bat.BAT, error) { return MMU(nil, a, sq) })
		run("tra", func() ([]*bat.BAT, error) { return Tra(nil, a), nil })
	}
}

// TestInvDetParallelFanOut runs the elimination fan-out of Algorithm 2 at
// several worker budgets and checks the results agree with the serial
// path to rounding (pivoting decisions are scalar and identical, and each
// column update is elementwise, so the agreement is in fact bitwise).
func TestInvDetParallelFanOut(t *testing.T) {
	n := 24
	a := randomCols(n, n, 99)
	var invSerial, invParallel []*bat.BAT
	var detSerial, detParallel float64
	var err1, err2, err3, err4 error
	withParallelism(1, func() {
		invSerial, err1 = Inv(nil, a)
		detSerial, err2 = Det(nil, a)
	})
	withParallelism(8, func() {
		invParallel, err3 = Inv(nil, a)
		detParallel, err4 = Det(nil, a)
	})
	for _, err := range []error{err1, err2, err3, err4} {
		if err != nil {
			t.Fatal(err)
		}
	}
	colsBitsEqual(t, "inv", n, invSerial, invParallel)
	if math.Float64bits(detSerial) != math.Float64bits(detParallel) {
		t.Fatalf("det: %v vs %v", detSerial, detParallel)
	}
}

// TestQRScratchReuse checks that QR still produces an orthonormal Q when
// its scratch columns cycle through the arena, at a size large enough
// that released buffers are actually recycled within the loop.
func TestQRScratchReuse(t *testing.T) {
	m, n := 512, 8
	a := randomCols(m, n, 7)
	q, r, err := QR(nil, a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			got := bat.Dot(nil, q[i], q[j])
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("qᵢ·qⱼ (%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
	// Reconstruct a = q·r and compare.
	recon, err := MMU(nil, q, r)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a {
		af, rf := a[j].Vector().Floats(), recon[j].Vector().Floats()
		for k := range af {
			if math.Abs(af[k]-rf[k]) > 1e-8 {
				t.Fatalf("reconstruction column %d element %d: %v vs %v", j, k, af[k], rf[k])
			}
		}
	}
}
