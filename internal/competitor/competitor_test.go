// Package competitor_test exercises the four competitor simulations
// against each other and against the native engine: all five must agree
// on workload results (they differ only in how they compute them).
package competitor_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/bat"
	"repro/internal/competitor/aida"
	"repro/internal/competitor/arraydb"
	"repro/internal/competitor/madlib"
	"repro/internal/competitor/rsim"
	"repro/internal/dataset"
	"repro/internal/linalg"
	"repro/internal/matrix"
	"repro/internal/rel"
)

func sampleRel() *rel.Relation {
	b := rel.NewBuilder("t", rel.Schema{
		{Name: "id", Type: bat.Int},
		{Name: "x", Type: bat.Float},
		{Name: "y", Type: bat.Float},
		{Name: "tag", Type: bat.String},
	})
	b.MustAdd(bat.IntValue(1), bat.FloatValue(1), bat.FloatValue(10), bat.StringValue("a"))
	b.MustAdd(bat.IntValue(2), bat.FloatValue(2), bat.FloatValue(20), bat.StringValue("b"))
	b.MustAdd(bat.IntValue(3), bat.FloatValue(3), bat.FloatValue(30), bat.StringValue("a"))
	return b.Relation()
}

// --- rsim ---------------------------------------------------------------

func TestRsimDataFrame(t *testing.T) {
	df := rsim.FromRelation(sampleRel())
	if df.NumRows() != 3 {
		t.Fatalf("rows = %d", df.NumRows())
	}
	x, err := df.Col("x")
	if err != nil {
		t.Fatal(err)
	}
	filtered := df.Filter(func(i int) bool { return x.Floats()[i] >= 2 })
	if filtered.NumRows() != 2 {
		t.Errorf("filter rows = %d", filtered.NumRows())
	}
	counts, err := df.GroupCount("tag")
	if err != nil || counts["a"] != 2 || counts["b"] != 1 {
		t.Errorf("group counts = %v, %v", counts, err)
	}
	if _, err := df.Col("nope"); err == nil {
		t.Error("missing column accepted")
	}
}

func TestRsimCSVRoundTrip(t *testing.T) {
	df := rsim.FromRelation(sampleRel())
	var sb strings.Builder
	df.WriteCSV(&sb)
	back, err := rsim.LoadCSV(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 3 || len(back.Names) != 4 {
		t.Fatalf("csv round trip = %dx%d", back.NumRows(), len(back.Names))
	}
	y, _ := back.Col("y")
	if y.Type() != bat.Float && y.Type() != bat.Int {
		t.Errorf("y inferred as %v", y.Type())
	}
	tag, _ := back.Col("tag")
	if tag.Type() != bat.String {
		t.Errorf("tag inferred as %v", tag.Type())
	}
	if _, err := rsim.LoadCSV("a,b\n1"); err == nil {
		t.Error("ragged csv accepted")
	}
}

func TestRsimMerge(t *testing.T) {
	l := rsim.FromRelation(sampleRel())
	rr := rsim.FromRelation(rel.MustNew("u", rel.Schema{
		{Name: "id2", Type: bat.Int},
		{Name: "z", Type: bat.Float},
	}, []*bat.BAT{bat.FromInts([]int64{1, 3}), bat.FromFloats([]float64{100, 300})}))
	m, err := rsim.Merge(l, rr, "id", "id2")
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRows() != 2 {
		t.Fatalf("merge rows = %d", m.NumRows())
	}
	z, _ := m.Col("z")
	if z.Floats()[0] != 100 || z.Floats()[1] != 300 {
		t.Errorf("merge z = %v", z.Floats())
	}
}

func TestRsimMatrixConversion(t *testing.T) {
	df := rsim.FromRelation(sampleRel())
	m, err := df.ToMatrix([]string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 2 || m.At(2, 1) != 30 {
		t.Fatalf("matrix = %v", m)
	}
	if _, err := df.ToMatrix([]string{"tag"}); err == nil {
		t.Error("character column converted to numeric matrix")
	}
	back := rsim.FromMatrix(m, []string{"x", "y"})
	if back.NumRows() != 3 {
		t.Errorf("FromMatrix rows = %d", back.NumRows())
	}
}

func TestRsimCharMatrix(t *testing.T) {
	df := rsim.FromRelation(sampleRel())
	cm := df.ToCharMatrix()
	if len(cm.Rows) != 3 || cm.Rows[0][3] != "a" {
		t.Fatalf("char matrix = %v", cm.Rows)
	}
	joined, err := rsim.MergeChar(cm, cm, "id", "id")
	if err != nil {
		t.Fatal(err)
	}
	if len(joined.Rows) != 3 {
		t.Errorf("char self join rows = %d", len(joined.Rows))
	}
	if _, err := rsim.MergeChar(cm, cm, "nope", "id"); err == nil {
		t.Error("missing char key accepted")
	}
}

// --- aida ----------------------------------------------------------------

func TestAidaBoundary(t *testing.T) {
	ht := aida.CrossBoundary(sampleRel())
	x, err := ht.Col("x")
	if err != nil {
		t.Fatal(err)
	}
	if !x.Shared {
		t.Error("float column should cross by pointer")
	}
	id, _ := ht.Col("id")
	if id.Objects == nil {
		t.Error("int column should be converted to host objects")
	}
	tag, _ := ht.Col("tag")
	if tag.Objects == nil || tag.Objects[0] != "a" {
		t.Error("string column should materialize host objects")
	}
	m, err := ht.Matrix([]string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 1) != 20 {
		t.Errorf("matrix = %v", m)
	}
	if _, err := ht.Matrix([]string{"tag"}); err == nil {
		t.Error("object column used as numeric")
	}
	if _, err := ht.Matrix(nil); err == nil {
		t.Error("empty column list accepted")
	}
}

// --- madlib ----------------------------------------------------------------

func TestMadlibRowStore(t *testing.T) {
	tb := madlib.FromRelation(sampleRel())
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	f := tb.Filter(func(row []bat.Value) bool { return row[1].F > 1.5 })
	if len(f.Rows) != 2 {
		t.Errorf("filter rows = %d", len(f.Rows))
	}
	counts, err := tb.GroupCount("tag")
	if err != nil || counts["a"] != 2 {
		t.Errorf("group = %v, %v", counts, err)
	}
	joined, err := madlib.HashJoin(tb, tb.Filter(func([]bat.Value) bool { return true }), "id", "id")
	if err != nil {
		t.Fatal(err)
	}
	if len(joined.Rows) != 3 {
		t.Errorf("join rows = %d", len(joined.Rows))
	}
}

func TestMadlibLinAlg(t *testing.T) {
	// OLS through exact points must recover coefficients.
	x := [][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}}
	y := []float64{1, 3, 5, 7}
	beta, err := madlib.LinRegr(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta[0]-1) > 1e-9 || math.Abs(beta[1]-2) > 1e-9 {
		t.Fatalf("beta = %v", beta)
	}
	// MatMul/Invert against the dense kernel.
	a := [][]float64{{4, 1}, {1, 3}}
	inv, err := madlib.Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	am := matrix.FromRows(a)
	want, _ := linalg.Inverse(am)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(inv[i][j]-want.At(i, j)) > 1e-12 {
				t.Fatalf("invert = %v, want %v", inv, want)
			}
		}
	}
	if _, err := madlib.Invert([][]float64{{0, 0}, {0, 0}}); err == nil {
		t.Error("singular inversion accepted")
	}
	cov := madlib.Covariance([][]float64{{2, 1.5}, {1, 4}})
	if math.Abs(cov[0][0]-0.5) > 1e-12 {
		t.Errorf("cov = %v", cov)
	}
	arrays, err := tbArrays()
	if err != nil {
		t.Fatal(err)
	}
	if len(arrays) != 3 || arrays[2][1] != 30 {
		t.Errorf("ToArrays = %v", arrays)
	}
}

func tbArrays() ([][]float64, error) {
	tb := madlib.FromRelation(sampleRel())
	return tb.ToArrays([]string{"x", "y"})
}

// --- arraydb ----------------------------------------------------------------

func TestArrayDBAddMatchesVectorAdd(t *testing.T) {
	cols1 := [][]float64{{1, 2, 3}, {4, 5, 6}}
	cols2 := [][]float64{{10, 20, 30}, {40, 50, 60}}
	a := arraydb.FromColumns(cols1, 2)
	b := arraydb.FromColumns(cols2, 2)
	sum, err := arraydb.Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.Get(0, 0); got != 11 {
		t.Errorf("sum(0,0) = %v", got)
	}
	if got := sum.Get(2, 1); got != 66 {
		t.Errorf("sum(2,1) = %v", got)
	}
	if sum.NumCells() != 6 {
		t.Errorf("cells = %d", sum.NumCells())
	}
	if _, err := arraydb.Add(a, arraydb.FromColumns([][]float64{{1}}, 2)); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestArrayDBFilter(t *testing.T) {
	a := arraydb.FromColumns([][]float64{{1, 5, 9}}, 0)
	f := a.Filter(func(v float64) bool { return v > 4 })
	if f.NumCells() != 2 {
		t.Errorf("filtered cells = %d", f.NumCells())
	}
	if f.Get(0, 0) != 0 || f.Get(1, 0) != 5 {
		t.Errorf("filter contents: %v %v", f.Get(0, 0), f.Get(1, 0))
	}
}

// --- cross-engine agreement on a real workload ----------------------------

func TestEnginesAgreeOnOLS(t *testing.T) {
	// All engines compute the same OLS coefficients for the same data.
	trips := dataset.Trips(2000, 50, 11)
	dur, _ := trips.Col("duration")
	f, _ := dur.Floats()
	n := len(f)
	x := matrix.New(n, 2)
	y := make([]float64, n)
	xr := make([][]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, 1)
		x.Set(i, 1, f[i])
		y[i] = 2*f[i] + 5
		xr[i] = []float64{1, f[i]}
	}
	// Native dense path.
	xtx := linalg.CrossProduct(nil, x, x)
	inv, err := linalg.Inverse(xtx)
	if err != nil {
		t.Fatal(err)
	}
	ym := matrix.New(n, 1)
	for i, v := range y {
		ym.Set(i, 0, v)
	}
	beta := linalg.MatMul(nil, inv, linalg.CrossProduct(nil, x, ym))
	// MADlib path.
	mbeta, err := madlib.LinRegr(xr, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta.At(0, 0)-mbeta[0]) > 1e-6 || math.Abs(beta.At(1, 0)-mbeta[1]) > 1e-6 {
		t.Fatalf("engines disagree: native %v vs madlib %v", beta, mbeta)
	}
	if math.Abs(mbeta[1]-2) > 1e-6 {
		t.Errorf("OLS slope = %v, want 2", mbeta[1])
	}
}
