// Package aida simulates AIDA (D'silva et al., VLDB 2018), the paper's
// strongest in-database competitor: relational operations run inside
// MonetDB (here: the shared internal/rel engine — the same engine RMA+
// uses, which is why AIDA matches RMA+ on purely numeric relational work,
// Figure 16a), while matrix operations run in the host language over
// NumPy-style arrays.
//
// The asymmetry the paper measures in Figure 15a is the boundary crossing:
// AIDA passes float64 columns by pointer (zero copy), but date, time,
// string, and integer columns have different storage formats in MonetDB
// and Python and must be converted value by value. CrossBoundary models
// exactly that: float columns are shared, int columns are widened
// per-value, and string/date columns materialize new host objects.
package aida

import (
	"fmt"
	"strconv"

	"repro/internal/bat"
	"repro/internal/matrix"
	"repro/internal/rel"
)

// HostColumn is a column living in the host-language runtime.
type HostColumn struct {
	Name string
	// Floats is set for numeric columns (possibly shared with the BAT —
	// the zero-copy pointer pass).
	Floats []float64
	// Objects is set for non-numeric columns after per-value conversion.
	Objects []string
	// Shared records whether Floats aliases database memory.
	Shared bool
}

// HostTable is the host-language view of a relation.
type HostTable struct {
	Cols []HostColumn
}

// CrossBoundary moves a relation from the database into the host runtime.
// float64 columns cross by pointer; every other type pays a per-value
// conversion, mirroring AIDA's documented behavior.
func CrossBoundary(r *rel.Relation) *HostTable {
	t := &HostTable{}
	for k, c := range r.Cols {
		name := r.Schema[k].Name
		switch c.Type() {
		case bat.Float:
			if !c.IsSparse() {
				t.Cols = append(t.Cols, HostColumn{Name: name, Floats: c.Vector().Floats(), Shared: true})
				continue
			}
			f, _ := c.Floats()
			t.Cols = append(t.Cols, HostColumn{Name: name, Floats: f})
		case bat.Int:
			// Integer/date columns: storage formats differ; convert
			// value by value into host objects (datetime strings).
			iv := c.Vector().Ints()
			objs := make([]string, len(iv))
			for i, v := range iv {
				objs[i] = strconv.FormatInt(v, 10)
			}
			t.Cols = append(t.Cols, HostColumn{Name: name, Objects: objs})
		default:
			sv := c.Vector().Strings()
			objs := make([]string, len(sv))
			copy(objs, sv) // new host string objects
			t.Cols = append(t.Cols, HostColumn{Name: name, Objects: objs})
		}
	}
	return t
}

// Col returns the named host column.
func (t *HostTable) Col(name string) (*HostColumn, error) {
	for k := range t.Cols {
		if t.Cols[k].Name == name {
			return &t.Cols[k], nil
		}
	}
	return nil, fmt.Errorf("aida: no host column %q", name)
}

// Matrix assembles named numeric host columns into a contiguous array for
// the NumPy-style math (a copy: MonetDB does not guarantee that multiple
// columns are contiguous, which is the copy the paper notes for
// MonetDB→NumPy result passing).
func (t *HostTable) Matrix(cols []string) (*matrix.Matrix, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("aida: no columns")
	}
	first, err := t.Col(cols[0])
	if err != nil {
		return nil, err
	}
	n := len(first.Floats)
	m := matrix.New(n, len(cols))
	for j, name := range cols {
		c, err := t.Col(name)
		if err != nil {
			return nil, err
		}
		if c.Floats == nil {
			return nil, fmt.Errorf("aida: column %q is not numeric in the host runtime", name)
		}
		for i := 0; i < n; i++ {
			m.Data[i*len(cols)+j] = c.Floats[i]
		}
	}
	return m, nil
}
