// Package madlib simulates the MADlib analytics library on PostgreSQL as
// the paper's §8 competitor. Two architectural properties explain every
// MADlib measurement in the paper, and both are reproduced here:
//
//   - PostgreSQL is a row store: relations are materialized as rows of
//     boxed values and all relational operators are row-at-a-time loops;
//   - MADlib's matrix routines are single-threaded UDFs over an
//     array-per-row input format, with no blocking or parallelism.
package madlib

import (
	"fmt"

	"repro/internal/bat"
	"repro/internal/rel"
)

// Table is a row-store relation: a schema plus boxed rows.
type Table struct {
	Schema rel.Schema
	Rows   [][]bat.Value
}

// FromRelation materializes a columnar relation into rows (loading data
// into PostgreSQL).
func FromRelation(r *rel.Relation) *Table {
	t := &Table{Schema: r.Schema.Clone()}
	n := r.NumRows()
	t.Rows = make([][]bat.Value, n)
	for i := 0; i < n; i++ {
		t.Rows[i] = r.Row(i)
	}
	return t
}

// ColIndex resolves an attribute position.
func (t *Table) ColIndex(name string) (int, error) {
	k := t.Schema.Index(name)
	if k < 0 {
		return 0, fmt.Errorf("madlib: no column %q", name)
	}
	return k, nil
}

// Filter keeps rows satisfying the predicate — a sequential scan.
func (t *Table) Filter(pred func(row []bat.Value) bool) *Table {
	out := &Table{Schema: t.Schema}
	for _, row := range t.Rows {
		if pred(row) {
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// HashJoin joins two row tables on one key column each — single core,
// with per-row key boxing and row concatenation.
func HashJoin(l, r *Table, lKey, rKey string) (*Table, error) {
	lk, err := l.ColIndex(lKey)
	if err != nil {
		return nil, err
	}
	rk, err := r.ColIndex(rKey)
	if err != nil {
		return nil, err
	}
	build := make(map[string][]int, len(r.Rows))
	for j, row := range r.Rows {
		key := row[rk].String()
		build[key] = append(build[key], j)
	}
	out := &Table{Schema: append(l.Schema.Clone(), r.Schema...)}
	for _, lrow := range l.Rows {
		for _, j := range build[lrow[lk].String()] {
			row := make([]bat.Value, 0, len(lrow)+len(r.Rows[j]))
			row = append(row, lrow...)
			row = append(row, r.Rows[j]...)
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// GroupCount counts rows per key — single core over boxed rows.
func (t *Table) GroupCount(key string) (map[string]int, error) {
	k, err := t.ColIndex(key)
	if err != nil {
		return nil, err
	}
	out := make(map[string]int)
	for _, row := range t.Rows {
		out[row[k].String()]++
	}
	return out, nil
}

// ToArrays converts rows into MADlib's matrix input format: one float
// array per row (the "array-valued attribute" the paper describes).
func (t *Table) ToArrays(cols []string) ([][]float64, error) {
	idx := make([]int, len(cols))
	for j, name := range cols {
		k, err := t.ColIndex(name)
		if err != nil {
			return nil, err
		}
		idx[j] = k
	}
	out := make([][]float64, len(t.Rows))
	for i, row := range t.Rows {
		arr := make([]float64, len(cols))
		for j, k := range idx {
			if row[k].Type == bat.String {
				return nil, fmt.Errorf("madlib: column %q is text", cols[j])
			}
			arr[j] = row[k].AsFloat()
		}
		out[i] = arr
	}
	return out, nil
}

// MatMul is the UDF matrix multiply: naive triple loop, one core.
func MatMul(a, b [][]float64) [][]float64 {
	m := len(a)
	if m == 0 {
		return nil
	}
	kk := len(b)
	n := len(b[0])
	out := make([][]float64, m)
	for i := range out {
		out[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			var s float64
			for l := 0; l < kk; l++ {
				s += a[i][l] * b[l][j]
			}
			out[i][j] = s
		}
	}
	return out
}

// Transpose flips an array-of-rows matrix.
func Transpose(a [][]float64) [][]float64 {
	if len(a) == 0 {
		return nil
	}
	out := make([][]float64, len(a[0]))
	for j := range out {
		out[j] = make([]float64, len(a))
		for i := range a {
			out[j][i] = a[i][j]
		}
	}
	return out
}

// Invert is the UDF Gauss-Jordan inversion — single core, row-at-a-time,
// no vectorization.
func Invert(a [][]float64) ([][]float64, error) {
	n := len(a)
	w := make([][]float64, n)
	inv := make([][]float64, n)
	for i := range a {
		w[i] = append([]float64(nil), a[i]...)
		inv[i] = make([]float64, n)
		inv[i][i] = 1
	}
	for col := 0; col < n; col++ {
		p := col
		for i := col + 1; i < n; i++ {
			if abs(w[i][col]) > abs(w[p][col]) {
				p = i
			}
		}
		if w[p][col] == 0 {
			return nil, fmt.Errorf("madlib: singular matrix")
		}
		w[col], w[p] = w[p], w[col]
		inv[col], inv[p] = inv[p], inv[col]
		d := w[col][col]
		for j := 0; j < n; j++ {
			w[col][j] /= d
			inv[col][j] /= d
		}
		for i := 0; i < n; i++ {
			if i == col || w[i][col] == 0 {
				continue
			}
			f := w[i][col]
			for j := 0; j < n; j++ {
				w[i][j] -= f * w[col][j]
				inv[i][j] -= f * inv[col][j]
			}
		}
	}
	return inv, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// LinRegr is MADlib's linregr_train: ordinary least squares by normal
// equations, entirely single-threaded.
func LinRegr(x [][]float64, y []float64) ([]float64, error) {
	if len(x) != len(y) || len(x) == 0 {
		return nil, fmt.Errorf("madlib: shape mismatch")
	}
	xt := Transpose(x)
	xtx := MatMul(xt, x)
	inv, err := Invert(xtx)
	if err != nil {
		return nil, err
	}
	ycol := make([][]float64, len(y))
	for i, v := range y {
		ycol[i] = []float64{v}
	}
	xty := MatMul(xt, ycol)
	beta := MatMul(inv, xty)
	out := make([]float64, len(beta))
	for i := range beta {
		out[i] = beta[i][0]
	}
	return out, nil
}

// Covariance is MADlib's cov(): single-core covariance of the columns.
func Covariance(rows [][]float64) [][]float64 {
	if len(rows) == 0 {
		return nil
	}
	n := len(rows)
	k := len(rows[0])
	means := make([]float64, k)
	for _, row := range rows {
		for j, v := range row {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= float64(n)
	}
	out := make([][]float64, k)
	for j := range out {
		out[j] = make([]float64, k)
	}
	for _, row := range rows {
		for a := 0; a < k; a++ {
			da := row[a] - means[a]
			for b := a; b < k; b++ {
				out[a][b] += da * (row[b] - means[b])
			}
		}
	}
	for a := 0; a < k; a++ {
		for b := a; b < k; b++ {
			out[a][b] /= float64(n - 1)
			out[b][a] = out[a][b]
		}
	}
	return out
}
