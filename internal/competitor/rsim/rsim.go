// Package rsim simulates the R statistical package as the paper's §8
// non-database competitor. The architectural properties that the paper's
// measurements attribute to R are modeled structurally, not by fiat:
//
//   - data.frame relational operations run on a single core and without a
//     query optimizer (Filter, Merge, GroupCount are sequential loops);
//   - matrix operations require converting a data.frame to the matrix
//     type — a full copy that the caller times (Figure 14a measures its
//     share);
//   - matrix math itself is fast and multi-core (R links a tuned BLAS), so
//     it delegates to the shared dense kernels of internal/linalg;
//   - character matrices hold every cell as a string and are grossly
//     inefficient for relational work (§8.5's 40s vs 2s join);
//   - data is loaded from CSV text, whose parse time Figure 15a shows as
//     the dark bar.
package rsim

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/bat"
	"repro/internal/matrix"
	"repro/internal/rel"
)

// DataFrame is R's data.frame / data.table: named typed columns.
type DataFrame struct {
	Names []string
	Cols  []*bat.Vector
}

// FromRelation copies a relation into a data.frame (R holds its own data).
func FromRelation(r *rel.Relation) *DataFrame {
	df := &DataFrame{Names: append([]string(nil), r.Schema.Names()...)}
	for _, c := range r.Cols {
		df.Cols = append(df.Cols, c.Vector().Clone())
	}
	return df
}

// NumRows returns the number of rows.
func (df *DataFrame) NumRows() int {
	if len(df.Cols) == 0 {
		return 0
	}
	return df.Cols[0].Len()
}

// Col returns the named column.
func (df *DataFrame) Col(name string) (*bat.Vector, error) {
	for k, n := range df.Names {
		if n == name {
			return df.Cols[k], nil
		}
	}
	return nil, fmt.Errorf("rsim: no column %q", name)
}

// WriteCSV renders the data.frame as CSV text (test fixture for LoadCSV).
func (df *DataFrame) WriteCSV(sb *strings.Builder) {
	sb.WriteString(strings.Join(df.Names, ","))
	sb.WriteByte('\n')
	n := df.NumRows()
	for i := 0; i < n; i++ {
		for k, c := range df.Cols {
			if k > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(c.Get(i).String())
		}
		sb.WriteByte('\n')
	}
}

// LoadCSV parses CSV text into a data.frame, inferring column types from
// the first data row (read.csv). This is the load cost of Figure 15a.
func LoadCSV(text string) (*DataFrame, error) {
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) < 1 {
		return nil, fmt.Errorf("rsim: empty csv")
	}
	names := strings.Split(lines[0], ",")
	df := &DataFrame{Names: names}
	if len(lines) == 1 {
		for range names {
			df.Cols = append(df.Cols, bat.NewEmptyVector(bat.Float, 0))
		}
		return df, nil
	}
	first := strings.Split(lines[1], ",")
	types := make([]bat.Type, len(names))
	for k, cell := range first {
		if _, err := strconv.ParseInt(cell, 10, 64); err == nil {
			types[k] = bat.Int
		} else if _, err := strconv.ParseFloat(cell, 64); err == nil {
			types[k] = bat.Float
		} else {
			types[k] = bat.String
		}
	}
	for k := range names {
		df.Cols = append(df.Cols, bat.NewEmptyVector(types[k], len(lines)-1))
	}
	for _, line := range lines[1:] {
		cells := strings.Split(line, ",")
		if len(cells) != len(names) {
			return nil, fmt.Errorf("rsim: ragged csv row")
		}
		for k, cell := range cells {
			switch types[k] {
			case bat.Int:
				v, err := strconv.ParseInt(cell, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("rsim: %v", err)
				}
				df.Cols[k].Append(bat.IntValue(v))
			case bat.Float:
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, fmt.Errorf("rsim: %v", err)
				}
				df.Cols[k].Append(bat.FloatValue(v))
			default:
				df.Cols[k].Append(bat.StringValue(cell))
			}
		}
	}
	return df, nil
}

// Filter keeps rows satisfying the predicate — sequential, single core.
func (df *DataFrame) Filter(pred func(i int) bool) *DataFrame {
	var idx []int
	n := df.NumRows()
	for i := 0; i < n; i++ {
		if pred(i) {
			idx = append(idx, i)
		}
	}
	out := &DataFrame{Names: df.Names}
	for _, c := range df.Cols {
		out.Cols = append(out.Cols, c.Gather(nil, idx))
	}
	return out
}

// Merge is R's merge(): an equi-join executed on a single core with
// per-row key boxing and no join-order optimization.
func Merge(l, r *DataFrame, lKey, rKey string) (*DataFrame, error) {
	lc, err := l.Col(lKey)
	if err != nil {
		return nil, err
	}
	rc, err := r.Col(rKey)
	if err != nil {
		return nil, err
	}
	build := make(map[string][]int, rc.Len())
	for j := 0; j < rc.Len(); j++ {
		build[rc.Get(j).String()] = append(build[rc.Get(j).String()], j)
	}
	var li, ri []int
	for i := 0; i < lc.Len(); i++ {
		for _, j := range build[lc.Get(i).String()] {
			li = append(li, i)
			ri = append(ri, j)
		}
	}
	out := &DataFrame{}
	for k, c := range l.Cols {
		out.Names = append(out.Names, l.Names[k])
		out.Cols = append(out.Cols, c.Gather(nil, li))
	}
	for k, c := range r.Cols {
		if r.Names[k] == rKey {
			continue
		}
		out.Names = append(out.Names, r.Names[k])
		out.Cols = append(out.Cols, c.Gather(nil, ri))
	}
	return out, nil
}

// GroupCount counts rows per key column value (table()), single core.
func (df *DataFrame) GroupCount(key string) (map[string]int, error) {
	c, err := df.Col(key)
	if err != nil {
		return nil, err
	}
	out := make(map[string]int)
	for i := 0; i < c.Len(); i++ {
		out[c.Get(i).String()]++
	}
	return out, nil
}

// ToMatrix converts the named numeric columns to R's matrix type — a full
// copy into contiguous storage. This is the transformation whose share of
// the query time Figure 14a reports.
func (df *DataFrame) ToMatrix(cols []string) (*matrix.Matrix, error) {
	n := df.NumRows()
	m := matrix.New(n, len(cols))
	for j, name := range cols {
		c, err := df.Col(name)
		if err != nil {
			return nil, err
		}
		if c.Type() == bat.String {
			return nil, fmt.Errorf("rsim: column %q is character", name)
		}
		f, _ := c.AsFloats()
		for i := 0; i < n; i++ {
			m.Data[i*len(cols)+j] = f[i]
		}
	}
	return m, nil
}

// FromMatrix converts a matrix back to a data.frame (the copy-back half).
func FromMatrix(m *matrix.Matrix, names []string) *DataFrame {
	df := &DataFrame{Names: names}
	for j := 0; j < m.Cols; j++ {
		df.Cols = append(df.Cols, bat.NewFloatVector(m.Column(j)))
	}
	return df
}

// CharMatrix is R's character matrix: every cell a string. Mixing types
// forces this representation, and §8.5 measures how badly it performs.
type CharMatrix struct {
	Names []string
	Rows  [][]string
}

// ToCharMatrix converts the whole data.frame to a character matrix,
// formatting every cell.
func (df *DataFrame) ToCharMatrix() *CharMatrix {
	n := df.NumRows()
	cm := &CharMatrix{Names: append([]string(nil), df.Names...)}
	cm.Rows = make([][]string, n)
	for i := 0; i < n; i++ {
		row := make([]string, len(df.Cols))
		for k, c := range df.Cols {
			row[k] = c.Get(i).String()
		}
		cm.Rows[i] = row
	}
	return cm
}

// MergeChar joins two character matrices on key columns — string
// comparisons and whole-row copies everywhere (the 40s-vs-2s case).
func MergeChar(l, r *CharMatrix, lKey, rKey string) (*CharMatrix, error) {
	lk, rk := -1, -1
	for k, n := range l.Names {
		if n == lKey {
			lk = k
		}
	}
	for k, n := range r.Names {
		if n == rKey {
			rk = k
		}
	}
	if lk < 0 || rk < 0 {
		return nil, fmt.Errorf("rsim: key not found")
	}
	build := make(map[string][]int, len(r.Rows))
	for j, row := range r.Rows {
		build[row[rk]] = append(build[row[rk]], j)
	}
	out := &CharMatrix{Names: append(append([]string(nil), l.Names...), r.Names...)}
	for _, lrow := range l.Rows {
		for _, j := range build[lrow[lk]] {
			row := make([]string, 0, len(l.Names)+len(r.Names))
			row = append(row, lrow...)
			row = append(row, r.Rows[j]...)
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}
