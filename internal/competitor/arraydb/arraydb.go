// Package arraydb simulates SciDB, the paper's §8.4 array-database
// competitor. Arrays are stored as coordinate-chunked two-dimensional
// objects. The property that decides Table 7 is reproduced faithfully: an
// elementwise operation over two arrays must first align their cells by
// coordinates — SciDB's array join — before any arithmetic happens,
// whereas RMA+ adds entire BATs positionally. The alignment is a real
// per-cell coordinate merge, not a constant factor.
package arraydb

import "fmt"

// Array is a chunked 2-D array. Cells are stored per chunk as explicit
// (row, col, value) coordinates in row-major order, SciDB's coordinate
// representation for its chunk payloads.
type Array struct {
	Rows, Cols int
	ChunkRows  int
	chunks     []*chunk // one per chunk-row stripe
}

type chunk struct {
	rowLo int
	rows  []int32
	cols  []int32
	vals  []float64
}

// DefaultChunkRows is the stripe height used when building arrays.
const DefaultChunkRows = 4096

// FromColumns builds an array from column-major data.
func FromColumns(cols [][]float64, chunkRows int) *Array {
	if chunkRows <= 0 {
		chunkRows = DefaultChunkRows
	}
	nCols := len(cols)
	nRows := 0
	if nCols > 0 {
		nRows = len(cols[0])
	}
	a := &Array{Rows: nRows, Cols: nCols, ChunkRows: chunkRows}
	for lo := 0; lo < nRows; lo += chunkRows {
		hi := lo + chunkRows
		if hi > nRows {
			hi = nRows
		}
		ch := &chunk{rowLo: lo}
		for i := lo; i < hi; i++ {
			for j := 0; j < nCols; j++ {
				ch.rows = append(ch.rows, int32(i))
				ch.cols = append(ch.cols, int32(j))
				ch.vals = append(ch.vals, cols[j][i])
			}
		}
		a.chunks = append(a.chunks, ch)
	}
	return a
}

// NumCells returns the number of stored cells.
func (a *Array) NumCells() int {
	n := 0
	for _, ch := range a.chunks {
		n += len(ch.vals)
	}
	return n
}

// Add performs AQL's elementwise addition: an array join aligning the
// cells of both operands by (row, col) coordinates, then adding. The
// coordinate comparison per cell is the cost RMA+ avoids (Table 7).
func Add(a, b *Array) (*Array, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols || len(a.chunks) != len(b.chunks) {
		return nil, fmt.Errorf("arraydb: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := &Array{Rows: a.Rows, Cols: a.Cols, ChunkRows: a.ChunkRows}
	for c := range a.chunks {
		ca, cb := a.chunks[c], b.chunks[c]
		oc := &chunk{
			rowLo: ca.rowLo,
			rows:  make([]int32, 0, len(ca.rows)),
			cols:  make([]int32, 0, len(ca.cols)),
			vals:  make([]float64, 0, len(ca.vals)),
		}
		// Coordinate merge join over the two cell streams.
		i, j := 0, 0
		for i < len(ca.vals) && j < len(cb.vals) {
			cmp := compareCoord(ca.rows[i], ca.cols[i], cb.rows[j], cb.cols[j])
			switch {
			case cmp == 0:
				oc.rows = append(oc.rows, ca.rows[i])
				oc.cols = append(oc.cols, ca.cols[i])
				oc.vals = append(oc.vals, ca.vals[i]+cb.vals[j])
				i++
				j++
			case cmp < 0:
				oc.rows = append(oc.rows, ca.rows[i])
				oc.cols = append(oc.cols, ca.cols[i])
				oc.vals = append(oc.vals, ca.vals[i])
				i++
			default:
				oc.rows = append(oc.rows, cb.rows[j])
				oc.cols = append(oc.cols, cb.cols[j])
				oc.vals = append(oc.vals, cb.vals[j])
				j++
			}
		}
		for ; i < len(ca.vals); i++ {
			oc.rows = append(oc.rows, ca.rows[i])
			oc.cols = append(oc.cols, ca.cols[i])
			oc.vals = append(oc.vals, ca.vals[i])
		}
		for ; j < len(cb.vals); j++ {
			oc.rows = append(oc.rows, cb.rows[j])
			oc.cols = append(oc.cols, cb.cols[j])
			oc.vals = append(oc.vals, cb.vals[j])
		}
		out.chunks = append(out.chunks, oc)
	}
	return out, nil
}

func compareCoord(r1, c1, r2, c2 int32) int {
	switch {
	case r1 < r2:
		return -1
	case r1 > r2:
		return 1
	case c1 < c2:
		return -1
	case c1 > c2:
		return 1
	}
	return 0
}

// Filter implements the selection that follows the addition in the
// Table 7 workload: it scans all cells and keeps the matching ones.
func (a *Array) Filter(pred func(v float64) bool) *Array {
	out := &Array{Rows: a.Rows, Cols: a.Cols, ChunkRows: a.ChunkRows}
	for _, ch := range a.chunks {
		oc := &chunk{rowLo: ch.rowLo}
		for k, v := range ch.vals {
			if pred(v) {
				oc.rows = append(oc.rows, ch.rows[k])
				oc.cols = append(oc.cols, ch.cols[k])
				oc.vals = append(oc.vals, v)
			}
		}
		out.chunks = append(out.chunks, oc)
	}
	return out
}

// Get returns the value at (i, j), zero when absent.
func (a *Array) Get(i, j int) float64 {
	for _, ch := range a.chunks {
		if i < ch.rowLo || (len(ch.rows) > 0 && i > int(ch.rows[len(ch.rows)-1])) {
			continue
		}
		for k := range ch.vals {
			if int(ch.rows[k]) == i && int(ch.cols[k]) == j {
				return ch.vals[k]
			}
		}
	}
	return 0
}
