package store

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"repro/internal/exec"
)

// Reader is an open segment file: the footer is parsed eagerly, the
// payload stays memory-mapped (or, where mmap is unavailable, read
// once) and segments decode on demand into arena-charged buffers —
// the governed side of the buffer pool.
type Reader struct {
	path   string
	data   []byte
	mapped bool
	name   string
	rows   int64
	cols   []colMeta
}

// Open maps the segment file at path and parses its footer.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	size := st.Size()
	if size < int64(len(magicHead)+len(magicTail)+8) {
		return nil, fmt.Errorf("store: %s: truncated segment file", path)
	}
	data, mapped, err := mapFile(f, size)
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	r := &Reader{path: path, data: data, mapped: mapped}
	if err := r.parse(); err != nil {
		r.Close()
		return nil, err
	}
	return r, nil
}

func (r *Reader) parse() error {
	data := r.data
	if string(data[:len(magicHead)]) != magicHead {
		return fmt.Errorf("store: %s: bad magic", r.path)
	}
	tail := data[len(data)-len(magicTail):]
	if string(tail) != magicTail {
		return fmt.Errorf("store: %s: bad tail magic", r.path)
	}
	ftLen := le.Uint64(data[len(data)-len(magicTail)-8:])
	ftEnd := int64(len(data)) - int64(len(magicTail)) - 8
	ftOff := ftEnd - int64(ftLen)
	if ftOff < int64(len(magicHead)) || ftOff > ftEnd {
		return fmt.Errorf("store: %s: bad footer length", r.path)
	}
	var ft footer
	if err := json.Unmarshal(data[ftOff:ftEnd], &ft); err != nil {
		return fmt.Errorf("store: %s: footer: %w", r.path, err)
	}
	if len(ft.Cols) == 0 {
		return fmt.Errorf("store: %s: no columns", r.path)
	}
	for _, cm := range ft.Cols {
		var rows int64
		for _, sg := range cm.Segs {
			if sg.Off < int64(len(magicHead)) || sg.Off+sg.Len > ftOff {
				return fmt.Errorf("store: %s: segment out of bounds", r.path)
			}
			rows += int64(sg.Rows)
		}
		if rows != ft.Rows {
			return fmt.Errorf("store: %s: column %q has %d rows, file claims %d", r.path, cm.Name, rows, ft.Rows)
		}
	}
	r.name, r.rows, r.cols = ft.Name, ft.Rows, ft.Cols
	return nil
}

// Close unmaps the file. Decoded segments already handed out stay
// valid (they are copies); the Reader itself must not be used after.
func (r *Reader) Close() error {
	data := r.data
	r.data = nil
	if data != nil && r.mapped {
		return unmapFile(data)
	}
	return nil
}

// Name returns the stored relation name.
func (r *Reader) Name() string { return r.name }

// Rows returns the total row count.
func (r *Reader) Rows() int64 { return r.rows }

// Specs returns the column schema.
func (r *Reader) Specs() []ColSpec {
	specs := make([]ColSpec, len(r.cols))
	for k := range r.cols {
		specs[k] = r.cols[k].ColSpec
	}
	return specs
}

// NumSegs returns the per-column segment count (all columns agree).
func (r *Reader) NumSegs() int { return len(r.cols[0].Segs) }

// Seg returns segment metadata (offsets, encoding, zone map) for
// column col, segment seg.
func (r *Reader) Seg(col, seg int) *SegMeta { return &r.cols[col].Segs[seg] }

// SegStart returns the first global row of segment seg (the segments
// of every column cover identical row ranges).
func (r *Reader) SegStart(seg int) int64 { return int64(seg) * SegRows }

// ReadSeg decodes column col's segment seg into buffers drawn from
// the context's arena — charged to the owning tenant. Release with
// ReleaseColData when done.
func (r *Reader) ReadSeg(c *exec.Ctx, col, seg int) (ColData, error) {
	if r.data == nil {
		return ColData{}, fmt.Errorf("store: %s: reader closed", r.path)
	}
	cm := &r.cols[col]
	sg := &cm.Segs[seg]
	payload := r.data[sg.Off : sg.Off+sg.Len]
	switch cm.Kind {
	case KFloat:
		out := c.Arena().Floats(sg.Rows)
		if err := decodeWords(payload, sg, func(i int, w uint64) { out[i] = math.Float64frombits(w) }); err != nil {
			c.Arena().FreeFloats(out)
			return ColData{}, fmt.Errorf("store: %s: %w", r.path, err)
		}
		return ColData{F: out}, nil
	case KInt:
		out := c.Arena().Int64s(sg.Rows)
		if err := decodeWords(payload, sg, func(i int, w uint64) { out[i] = int64(w) }); err != nil {
			c.Arena().FreeInt64s(out)
			return ColData{}, fmt.Errorf("store: %s: %w", r.path, err)
		}
		return ColData{I: out}, nil
	default:
		out := c.Arena().Strings(sg.Rows)
		if err := decodeStrings(payload, sg, out); err != nil {
			c.Arena().FreeStrings(out)
			return ColData{}, fmt.Errorf("store: %s: %w", r.path, err)
		}
		return ColData{S: out}, nil
	}
}

// ReleaseColData hands a decoded segment's buffers back to the arena.
func ReleaseColData(c *exec.Ctx, d ColData) {
	switch {
	case d.F != nil:
		c.Arena().FreeFloats(d.F)
	case d.I != nil:
		c.Arena().FreeInt64s(d.I)
	case d.S != nil:
		c.Arena().FreeStrings(d.S)
	}
}

// decodeWords walks a numeric segment payload, invoking set for every
// row's 64-bit word.
func decodeWords(p []byte, sg *SegMeta, set func(i int, w uint64)) error {
	n := sg.Rows
	switch sg.Enc {
	case encRaw:
		if len(p) < 8*n {
			return fmt.Errorf("raw segment truncated")
		}
		for i := 0; i < n; i++ {
			set(i, le.Uint64(p[8*i:]))
		}
	case encRLE:
		if len(p) < 4 {
			return fmt.Errorf("rle segment truncated")
		}
		runs := int(le.Uint32(p))
		p = p[4:]
		if len(p) < runs*12 {
			return fmt.Errorf("rle segment truncated")
		}
		i := 0
		for r := 0; r < runs; r++ {
			count := int(le.Uint32(p[r*12:]))
			w := le.Uint64(p[r*12+4:])
			if i+count > n {
				return fmt.Errorf("rle run overflow")
			}
			for j := 0; j < count; j++ {
				set(i, w)
				i++
			}
		}
		if i != n {
			return fmt.Errorf("rle rows %d, want %d", i, n)
		}
	case encDict:
		if len(p) < 4 {
			return fmt.Errorf("dict segment truncated")
		}
		d := int(le.Uint32(p))
		p = p[4:]
		if len(p) < d*8 {
			return fmt.Errorf("dict segment truncated")
		}
		dict := make([]uint64, d)
		for k := 0; k < d; k++ {
			dict[k] = le.Uint64(p[8*k:])
		}
		p = p[8*d:]
		codeW := 1
		if d > maxDict1 {
			codeW = 2
		}
		if len(p) < n*codeW {
			return fmt.Errorf("dict codes truncated")
		}
		for i := 0; i < n; i++ {
			var c int
			if codeW == 1 {
				c = int(p[i])
			} else {
				c = int(p[2*i]) | int(p[2*i+1])<<8
			}
			if c >= d {
				return fmt.Errorf("dict code out of range")
			}
			set(i, dict[c])
		}
	default:
		return fmt.Errorf("unknown encoding %d", sg.Enc)
	}
	return nil
}

func decodeStrings(p []byte, sg *SegMeta, out []string) error {
	n := sg.Rows
	switch sg.Enc {
	case encRaw:
		for i := 0; i < n; i++ {
			if len(p) < 4 {
				return fmt.Errorf("string segment truncated")
			}
			l := int(le.Uint32(p))
			p = p[4:]
			if len(p) < l {
				return fmt.Errorf("string segment truncated")
			}
			out[i] = string(p[:l])
			p = p[l:]
		}
	case encDict:
		if len(p) < 4 {
			return fmt.Errorf("dict segment truncated")
		}
		d := int(le.Uint32(p))
		p = p[4:]
		dict := make([]string, d)
		for k := 0; k < d; k++ {
			if len(p) < 4 {
				return fmt.Errorf("dict segment truncated")
			}
			l := int(le.Uint32(p))
			p = p[4:]
			if len(p) < l {
				return fmt.Errorf("dict segment truncated")
			}
			dict[k] = string(p[:l])
			p = p[l:]
		}
		codeW := 1
		if d > maxDict1 {
			codeW = 2
		}
		if len(p) < n*codeW {
			return fmt.Errorf("dict codes truncated")
		}
		for i := 0; i < n; i++ {
			var c int
			if codeW == 1 {
				c = int(p[i])
			} else {
				c = int(p[2*i]) | int(p[2*i+1])<<8
			}
			if c >= d {
				return fmt.Errorf("dict code out of range")
			}
			out[i] = dict[c]
		}
	default:
		return fmt.Errorf("unknown string encoding %d", sg.Enc)
	}
	return nil
}
