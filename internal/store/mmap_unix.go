//go:build unix

package store

import (
	"io"
	"os"
	"syscall"
)

// mapFile maps the file read-only. On mmap failure (exotic
// filesystems, size 0) it falls back to reading the file into memory;
// the returned flag says whether unmapFile must be called.
func mapFile(f *os.File, size int64) ([]byte, bool, error) {
	if size > 0 && size <= int64(int(^uint(0)>>1)) {
		data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
		if err == nil {
			return data, true, nil
		}
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, false, err
	}
	return data, false, nil
}

func unmapFile(data []byte) error { return syscall.Munmap(data) }
