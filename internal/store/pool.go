package store

import (
	"repro/internal/exec"
)

// Pool is a per-statement buffer pool over one Reader: decoded
// segments stay resident up to a byte cap and are evicted
// least-recently-used. Residency is charged to the owning tenant
// through the context's arena — the decoded slices are arena
// allocations, and string segments additionally reserve their byte
// content — so the governor's ledger covers exactly what the pool
// keeps in RAM. The pool is not safe for concurrent use; each scan
// stream owns one.
type Pool struct {
	c   *exec.Ctx
	r   *Reader
	cap int64

	used    int64
	tick    int64
	entries map[poolKey]*poolEntry
}

type poolKey struct{ col, seg int }

type poolEntry struct {
	data  ColData
	bytes int64 // arena bytes of the decoded slices
	extra int64 // reserved string-content bytes
	last  int64
}

// NewPool builds a pool over r with the given residency cap in bytes
// (<= 0 defaults to four segments of float data).
func NewPool(c *exec.Ctx, r *Reader, capBytes int64) *Pool {
	if capBytes <= 0 {
		capBytes = 4 * SegRows * 8
	}
	return &Pool{c: c, r: r, cap: capBytes, entries: make(map[poolKey]*poolEntry)}
}

// Seg returns the decoded segment (col, seg), reading and caching it
// on a miss. The returned ColData stays valid until the entry is
// evicted — callers must not retain it across other Seg calls beyond
// one segment's worth of work.
func (p *Pool) Seg(col, seg int) (ColData, error) {
	key := poolKey{col, seg}
	p.tick++
	if e, ok := p.entries[key]; ok {
		e.last = p.tick
		return e.data, nil
	}
	data, err := p.r.ReadSeg(p.c, col, seg)
	if err != nil {
		return ColData{}, err
	}
	e := &poolEntry{data: data, last: p.tick}
	switch {
	case data.F != nil:
		e.bytes = int64(cap(data.F)) * 8
	case data.I != nil:
		e.bytes = int64(cap(data.I)) * 8
	case data.S != nil:
		e.bytes = int64(cap(data.S)) * 16
		for _, s := range data.S {
			e.extra += int64(len(s))
		}
		if err := p.c.Arena().Reserve(e.extra); err != nil {
			ReleaseColData(p.c, data)
			return ColData{}, err
		}
	}
	p.entries[key] = e
	p.used += e.bytes + e.extra
	p.evict(key)
	return e.data, nil
}

// evict drops least-recently-used entries (never keep, the entry just
// inserted) until residency fits the cap.
func (p *Pool) evict(keep poolKey) {
	for p.used > p.cap && len(p.entries) > 1 {
		var victim poolKey
		var oldest int64 = 1<<63 - 1
		for k, e := range p.entries {
			if k != keep && e.last < oldest {
				oldest, victim = e.last, k
			}
		}
		if oldest == 1<<63-1 {
			return
		}
		p.drop(victim)
	}
}

func (p *Pool) drop(k poolKey) {
	e := p.entries[k]
	delete(p.entries, k)
	p.used -= e.bytes + e.extra
	ReleaseColData(p.c, e.data)
	p.c.Arena().Unreserve(e.extra)
}

// Resident returns the bytes currently held.
func (p *Pool) Resident() int64 { return p.used }

// Close releases every resident segment.
func (p *Pool) Close() {
	for k := range p.entries {
		p.drop(k)
	}
}

// Cursor iterates a segment file's rows sequentially in column
// lockstep, holding exactly one decoded segment per column at a time
// (arena-charged, released as the cursor advances). Spill consumers
// replay their partitions through it.
type Cursor struct {
	c    *exec.Ctx
	r    *Reader
	cols []int
	data []ColData
	seg  int
	off  int // row offset inside the current segment
	segN int
}

// NewCursor opens a cursor over the given columns (nil means all).
func NewCursor(c *exec.Ctx, r *Reader, cols []int) *Cursor {
	if cols == nil {
		cols = make([]int, len(r.cols))
		for k := range cols {
			cols[k] = k
		}
	}
	return &Cursor{c: c, r: r, cols: cols, data: make([]ColData, len(cols)), seg: -1}
}

// Next returns views of up to limit rows across the cursor's columns,
// never crossing a segment boundary. n == 0 signals end of data.
func (cu *Cursor) Next(limit int) ([]ColData, int, error) {
	for {
		if cu.seg >= 0 && cu.off < cu.segN {
			n := cu.segN - cu.off
			if limit > 0 && n > limit {
				n = limit
			}
			out := make([]ColData, len(cu.cols))
			for k := range cu.cols {
				out[k] = cu.data[k].Slice(cu.off, cu.off+n)
			}
			cu.off += n
			return out, n, nil
		}
		if cu.seg+1 >= cu.r.NumSegs() {
			return nil, 0, nil
		}
		cu.releaseSeg()
		cu.seg++
		cu.off = 0
		cu.segN = cu.r.Seg(cu.cols[0], cu.seg).Rows
		for k, col := range cu.cols {
			d, err := cu.r.ReadSeg(cu.c, col, cu.seg)
			if err != nil {
				cu.Close()
				return nil, 0, err
			}
			cu.data[k] = d
		}
	}
}

func (cu *Cursor) releaseSeg() {
	for k := range cu.data {
		if cu.data[k].Len() > 0 || cu.data[k].F != nil || cu.data[k].I != nil || cu.data[k].S != nil {
			ReleaseColData(cu.c, cu.data[k])
			cu.data[k] = ColData{}
		}
	}
}

// Close releases the cursor's resident segment.
func (cu *Cursor) Close() { cu.releaseSeg() }
