package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// Writer streams rows into a segment file. Rows are appended in
// column batches; every column buffers until a full segment
// (SegRows rows) accumulates, then the segment is encoded — raw,
// run-length, or dictionary, whichever is smallest — zone-mapped, and
// written. Close flushes the partial tail segments and the footer.
// All columns advance in lockstep, so their segment boundaries align
// and readers can iterate them side by side.
type Writer struct {
	f     *os.File
	bw    *bufio.Writer
	path  string
	name  string
	specs []ColSpec
	cols  []colBuilder
	off   int64
	rows  int64
	err   error
}

type colBuilder struct {
	kind ColKind
	f    []float64
	i    []int64
	s    []string
	segs []SegMeta
}

// Create opens a new segment file at path for the given schema,
// truncating any previous file.
func Create(path, name string, specs []ColSpec) (*Writer, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("store: create %s: no columns", path)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	w := &Writer{f: f, bw: bufio.NewWriterSize(f, 1<<16), path: path, name: name, specs: specs}
	w.cols = make([]colBuilder, len(specs))
	for k, sp := range specs {
		w.cols[k].kind = sp.Kind
	}
	if _, err := w.bw.WriteString(magicHead); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	w.off = int64(len(magicHead))
	return w, nil
}

// Append adds n rows: cols[k] must carry exactly n values of column
// k's kind.
func (w *Writer) Append(n int, cols []ColData) error {
	if w.err != nil {
		return w.err
	}
	if len(cols) != len(w.specs) {
		return w.fail(fmt.Errorf("store: append: %d columns, want %d", len(cols), len(w.specs)))
	}
	for k := range cols {
		if cols[k].Len() != n {
			return w.fail(fmt.Errorf("store: append: column %d has %d rows, want %d", k, cols[k].Len(), n))
		}
		b := &w.cols[k]
		switch b.kind {
		case KFloat:
			if cols[k].F == nil {
				return w.fail(fmt.Errorf("store: append: column %d is not float", k))
			}
			b.f = append(b.f, cols[k].F...)
		case KInt:
			if cols[k].I == nil {
				return w.fail(fmt.Errorf("store: append: column %d is not int", k))
			}
			b.i = append(b.i, cols[k].I...)
		case KString:
			if cols[k].S == nil {
				return w.fail(fmt.Errorf("store: append: column %d is not string", k))
			}
			b.s = append(b.s, cols[k].S...)
		}
	}
	w.rows += int64(n)
	// Flush full segments column by column; all builders cross the
	// boundary together because Append advances them together.
	for w.buffered() >= SegRows {
		if err := w.flushSeg(SegRows); err != nil {
			return err
		}
	}
	return nil
}

func (w *Writer) buffered() int {
	b := &w.cols[0]
	switch b.kind {
	case KFloat:
		return len(b.f)
	case KInt:
		return len(b.i)
	default:
		return len(b.s)
	}
}

func (w *Writer) fail(err error) error {
	if w.err == nil {
		w.err = err
	}
	return w.err
}

// flushSeg encodes and writes the first n buffered rows of every
// column as one segment each.
func (w *Writer) flushSeg(n int) error {
	if w.err != nil {
		return w.err
	}
	for k := range w.cols {
		b := &w.cols[k]
		var payload []byte
		var meta SegMeta
		switch b.kind {
		case KFloat:
			payload, meta = encodeFloats(b.f[:n])
			b.f = b.f[:copy(b.f, b.f[n:])]
		case KInt:
			payload, meta = encodeInts(b.i[:n])
			b.i = b.i[:copy(b.i, b.i[n:])]
		case KString:
			payload, meta = encodeStrings(b.s[:n])
			b.s = b.s[:copy(b.s, b.s[n:])]
		}
		meta.Off = w.off
		meta.Len = int64(len(payload))
		meta.Rows = n
		if _, err := w.bw.Write(payload); err != nil {
			return w.fail(fmt.Errorf("store: %w", err))
		}
		w.off += int64(len(payload))
		b.segs = append(b.segs, meta)
	}
	return nil
}

// BytesWritten returns the bytes emitted so far (payload only; the
// footer lands at Close).
func (w *Writer) BytesWritten() int64 { return w.off }

// Rows returns the rows appended so far.
func (w *Writer) Rows() int64 { return w.rows }

// Close flushes the tail segments and the footer and closes the file.
func (w *Writer) Close() error {
	if w.f == nil {
		return w.err
	}
	if w.err == nil {
		if n := w.buffered(); n > 0 {
			w.flushSeg(n)
		}
	}
	if w.err == nil {
		ft := footer{Name: w.name, Rows: w.rows, Cols: make([]colMeta, len(w.specs))}
		for k, sp := range w.specs {
			ft.Cols[k] = colMeta{ColSpec: sp, Segs: w.cols[k].segs}
		}
		data, err := json.Marshal(ft)
		if err != nil {
			w.fail(fmt.Errorf("store: footer: %w", err))
		} else {
			tail := put64(data, uint64(len(data)))
			tail = append(tail, magicTail...)
			if _, err := w.bw.Write(tail); err != nil {
				w.fail(fmt.Errorf("store: %w", err))
			}
			w.off += int64(len(tail))
		}
	}
	if err := w.bw.Flush(); err != nil {
		w.fail(fmt.Errorf("store: %w", err))
	}
	if err := w.f.Close(); err != nil {
		w.fail(fmt.Errorf("store: %w", err))
	}
	w.f = nil
	return w.err
}

// ---- segment encoders ----
//
// Floats are handled through their IEEE bit patterns end to end so the
// round trip is bitwise (NaN payloads, -0). The encoder measures the
// three candidate encodings in one pass and emits the smallest.

const (
	maxDict1 = 256   // 1-byte codes
	maxDict2 = 65536 // 2-byte codes
)

func encodeFloats(vals []float64) ([]byte, SegMeta) {
	bits := make([]uint64, len(vals))
	for i, v := range vals {
		bits[i] = math.Float64bits(v)
	}
	payload, meta := encodeWords(bits)
	// Zone map over value order; disabled when NaNs are present.
	meta.HasZone = len(vals) > 0
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if v != v {
			meta.HasZone = false
			break
		}
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	if meta.HasZone {
		meta.MinBits = math.Float64bits(mn)
		meta.MaxBits = math.Float64bits(mx)
	}
	return payload, meta
}

func encodeInts(vals []int64) ([]byte, SegMeta) {
	bits := make([]uint64, len(vals))
	for i, v := range vals {
		bits[i] = uint64(v)
	}
	payload, meta := encodeWords(bits)
	if len(vals) > 0 {
		meta.HasZone = true
		mn, mx := vals[0], vals[0]
		for _, v := range vals[1:] {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		meta.MinI, meta.MaxI = mn, mx
	}
	return payload, meta
}

// encodeWords picks raw / RLE / dict for a segment of 64-bit words.
func encodeWords(bits []uint64) ([]byte, SegMeta) {
	n := len(bits)
	runs := 1
	dict := make(map[uint64]int)
	for i, w := range bits {
		if i > 0 && w != bits[i-1] {
			runs++
		}
		if len(dict) <= maxDict2 {
			if _, ok := dict[w]; !ok {
				dict[w] = len(dict)
			}
		}
	}
	if n == 0 {
		runs = 0
	}
	rawSz := 8 * n
	rleSz := 4 + runs*12
	codeW := 1
	if len(dict) > maxDict1 {
		codeW = 2
	}
	dictSz := 4 + len(dict)*8 + n*codeW
	if len(dict) > maxDict2 {
		dictSz = rawSz + 1 // out of range
	}

	switch {
	case n > 0 && dictSz < rawSz && dictSz <= rleSz:
		// Dictionary: codes reference first-appearance order.
		out := make([]byte, 0, dictSz)
		out = put32(out, uint32(len(dict)))
		ordered := make([]uint64, len(dict))
		for w, c := range dict {
			ordered[c] = w
		}
		for _, w := range ordered {
			out = put64(out, w)
		}
		for _, w := range bits {
			c := dict[w]
			if codeW == 1 {
				out = append(out, byte(c))
			} else {
				out = append(out, byte(c), byte(c>>8))
			}
		}
		return out, SegMeta{Enc: encDict}
	case n > 0 && rleSz < rawSz:
		out := make([]byte, 0, rleSz)
		out = put32(out, uint32(runs))
		count := uint32(1)
		for i := 1; i <= n; i++ {
			if i < n && bits[i] == bits[i-1] {
				count++
				continue
			}
			out = put32(out, count)
			out = put64(out, bits[i-1])
			count = 1
		}
		return out, SegMeta{Enc: encRLE}
	default:
		out := make([]byte, 0, rawSz)
		for _, w := range bits {
			out = put64(out, w)
		}
		return out, SegMeta{Enc: encRaw}
	}
}

func encodeStrings(vals []string) ([]byte, SegMeta) {
	n := len(vals)
	dict := make(map[string]int)
	rawSz := 0
	dictBytes := 0
	for _, s := range vals {
		rawSz += 4 + len(s)
		if len(dict) <= maxDict2 {
			if _, ok := dict[s]; !ok {
				dict[s] = len(dict)
				dictBytes += 4 + len(s)
			}
		}
	}
	codeW := 1
	if len(dict) > maxDict1 {
		codeW = 2
	}
	dictSz := 4 + dictBytes + n*codeW

	var meta SegMeta
	if n > 0 {
		meta.HasZone = true
		mn, mx := vals[0], vals[0]
		for _, s := range vals[1:] {
			if s < mn {
				mn = s
			}
			if s > mx {
				mx = s
			}
		}
		meta.MinS, meta.MaxS = []byte(mn), []byte(mx)
	}

	if n > 0 && len(dict) <= maxDict2 && dictSz < rawSz {
		meta.Enc = encDict
		out := make([]byte, 0, dictSz)
		out = put32(out, uint32(len(dict)))
		ordered := make([]string, len(dict))
		for s, c := range dict {
			ordered[c] = s
		}
		for _, s := range ordered {
			out = put32(out, uint32(len(s)))
			out = append(out, s...)
		}
		for _, s := range vals {
			c := dict[s]
			if codeW == 1 {
				out = append(out, byte(c))
			} else {
				out = append(out, byte(c), byte(c>>8))
			}
		}
		return out, meta
	}
	meta.Enc = encRaw
	out := make([]byte, 0, rawSz)
	for _, s := range vals {
		out = put32(out, uint32(len(s)))
		out = append(out, s...)
	}
	return out, meta
}
