//go:build !unix

package store

import (
	"io"
	"os"
)

// mapFile reads the whole file on platforms without mmap support.
func mapFile(f *os.File, size int64) ([]byte, bool, error) {
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, false, err
	}
	return data, false, nil
}

func unmapFile(data []byte) error { return nil }
