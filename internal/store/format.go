// Package store implements the on-disk column-segment format of the
// engine: per-column segments of MorselSize-aligned blocks, each
// segment independently encoded (raw, run-length, or dictionary for
// low-cardinality data) and carrying a min/max zone map for scan
// pruning. Files are written streaming (data first, JSON footer last)
// and read back through mmap, decoding one segment at a time into
// arena-charged buffers so the governor's ledger covers disk-resident
// data exactly like RAM-resident data.
//
// The format serves two masters: durable named tables
// (CREATE TABLE ... PERSIST, checkpoint/restore across rmaserver
// restarts) and the spill paths of the big memory consumers (hash-join
// partitions, aggregation partials, sort runs), which stage transient
// partitions in the same segment files.
//
// Layout:
//
//	magic "RMASEG1\n"
//	segment payloads, back to back, any column interleaving
//	footer JSON (schema, per-segment offsets/encodings/zone maps)
//	footer length (8 bytes LE) ++ tail magic "RMASEGF\n"
//
// Values round-trip bitwise: floats are stored and compared through
// their IEEE bit patterns (NaN payloads and -0 survive), ints exactly,
// strings byte for byte.
package store

import (
	"encoding/binary"
	"fmt"
	"math"
)

// BlockRows is the row alignment of segment blocks. It equals
// bat.MorselSize (asserted by the sql layer's tests) so a decoded
// segment slices into exact execution morsels.
const BlockRows = 4096

// SegRows is the number of rows per segment: 16 morsel-aligned blocks.
// Zone maps and encoding decisions are per segment.
const SegRows = 16 * BlockRows

const (
	magicHead = "RMASEG1\n"
	magicTail = "RMASEGF\n"
)

// ColKind is the storage type of one column.
type ColKind uint8

const (
	KFloat ColKind = iota
	KInt
	KString
)

func (k ColKind) String() string {
	switch k {
	case KFloat:
		return "float"
	case KInt:
		return "int"
	case KString:
		return "string"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ColSpec names and types one column of a segment file.
type ColSpec struct {
	Name string  `json:"name"`
	Kind ColKind `json:"kind"`
}

// ColData carries one column's values (or a view of them): exactly the
// slice matching the column's kind is non-nil.
type ColData struct {
	F []float64
	I []int64
	S []string
}

// Len returns the number of rows the ColData holds.
func (d ColData) Len() int {
	switch {
	case d.F != nil:
		return len(d.F)
	case d.I != nil:
		return len(d.I)
	case d.S != nil:
		return len(d.S)
	}
	return 0
}

// Slice returns the [lo:hi) view of the data.
func (d ColData) Slice(lo, hi int) ColData {
	switch {
	case d.F != nil:
		return ColData{F: d.F[lo:hi]}
	case d.I != nil:
		return ColData{I: d.I[lo:hi]}
	case d.S != nil:
		return ColData{S: d.S[lo:hi]}
	}
	return ColData{}
}

// Segment encodings.
const (
	encRaw  = 0 // fixed-width values (strings: len-prefixed bytes)
	encRLE  = 1 // numeric run-length: (count u32, value 8B) runs
	encDict = 2 // dictionary + 1- or 2-byte codes
)

// SegMeta describes one stored segment: its byte extent in the file,
// row count, encoding, and zone map. The zone map is the segment's
// min/max in value order — float columns through canonical bit
// patterns, ints exactly, strings byte-wise — and HasZone is false
// when the segment holds NaNs (pruning must not misjudge them) or no
// rows.
type SegMeta struct {
	Off  int64 `json:"off"`
	Len  int64 `json:"len"`
	Rows int   `json:"rows"`
	Enc  uint8 `json:"enc"`

	HasZone bool   `json:"zone,omitempty"`
	MinBits uint64 `json:"minb,omitempty"` // float64 bits of the minimum
	MaxBits uint64 `json:"maxb,omitempty"`
	MinI    int64  `json:"mini,omitempty"`
	MaxI    int64  `json:"maxi,omitempty"`
	MinS    []byte `json:"mins,omitempty"`
	MaxS    []byte `json:"maxs,omitempty"`
}

// MayContainNum reports whether the segment can hold a numeric value
// in [lo, hi] according to its zone map; a segment without a zone map
// always may. Int zone maps are widened one ulp on conversion so
// float-precision loss can never prune a matching segment.
func (m *SegMeta) MayContainNum(kind ColKind, lo, hi float64) bool {
	if !m.HasZone {
		return true
	}
	var mn, mx float64
	switch kind {
	case KFloat:
		mn, mx = math.Float64frombits(m.MinBits), math.Float64frombits(m.MaxBits)
	case KInt:
		mn = math.Nextafter(float64(m.MinI), math.Inf(-1))
		mx = math.Nextafter(float64(m.MaxI), math.Inf(1))
	default:
		return true
	}
	return !(hi < mn || lo > mx)
}

// MayContainStr is the string-column counterpart of MayContainNum.
// Empty bounds with the matching has-flag false are unbounded.
func (m *SegMeta) MayContainStr(lo, hi string, hasLo, hasHi bool) bool {
	if !m.HasZone || m.MinS == nil {
		return true
	}
	if hasHi && hi < string(m.MinS) {
		return false
	}
	if hasLo && lo > string(m.MaxS) {
		return false
	}
	return true
}

// colMeta is one column's footer entry.
type colMeta struct {
	ColSpec
	Segs []SegMeta `json:"segs"`
}

// footer is the file's trailing JSON document.
type footer struct {
	Name string    `json:"name"`
	Rows int64     `json:"rows"`
	Cols []colMeta `json:"cols"`
}

var le = binary.LittleEndian

func put64(b []byte, v uint64) []byte { return le.AppendUint64(b, v) }
func put32(b []byte, v uint32) []byte { return le.AppendUint32(b, v) }
