package store

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/exec"
)

// writeFile writes one segment file with the given columns and returns
// its path.
func writeFile(t *testing.T, name string, n int, specs []ColSpec, cols []ColData) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name+".seg")
	w, err := Create(path, name, specs)
	if err != nil {
		t.Fatal(err)
	}
	// Append in uneven batches to exercise the builder buffering.
	for lo := 0; lo < n; {
		hi := lo + 3000
		if hi > n {
			hi = n
		}
		part := make([]ColData, len(cols))
		for k := range cols {
			part[k] = cols[k].Slice(lo, hi)
		}
		if err := w.Append(hi-lo, part); err != nil {
			t.Fatal(err)
		}
		lo = hi
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRoundTripAllEncodings(t *testing.T) {
	n := 2*SegRows + 1234 // three segments, one partial
	f := make([]float64, n)
	i64 := make([]int64, n)
	s := make([]string, n)
	lowCard := make([]int64, n) // dictionary candidate
	runs := make([]float64, n)  // RLE candidate
	weird := make([]float64, n) // NaN / -0 / Inf bit patterns
	for k := 0; k < n; k++ {
		f[k] = float64(k)*0.5 - 100
		i64[k] = int64(k * 3)
		s[k] = "row-" + string(rune('a'+k%26))
		lowCard[k] = int64(k % 7)
		runs[k] = float64(k / 1000)
		weird[k] = float64(k)
	}
	weird[0] = math.NaN()
	weird[1] = math.Copysign(0, -1)
	weird[2] = math.Inf(1)
	weird[3] = math.Float64frombits(0x7ff8000000000123) // NaN payload

	specs := []ColSpec{
		{Name: "f", Kind: KFloat},
		{Name: "i", Kind: KInt},
		{Name: "s", Kind: KString},
		{Name: "low", Kind: KInt},
		{Name: "runs", Kind: KFloat},
		{Name: "weird", Kind: KFloat},
	}
	cols := []ColData{{F: f}, {I: i64}, {S: s}, {I: lowCard}, {F: runs}, {F: weird}}
	path := writeFile(t, "rt", n, specs, cols)

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Rows() != int64(n) {
		t.Fatalf("rows = %d, want %d", r.Rows(), n)
	}
	if r.Name() != "rt" {
		t.Fatalf("name = %q", r.Name())
	}

	// Low-cardinality and run columns must not be stored raw.
	if enc := r.Seg(3, 0).Enc; enc == encRaw {
		t.Errorf("low-cardinality int column stored raw")
	}
	if enc := r.Seg(4, 0).Enc; enc == encRaw {
		t.Errorf("long-run float column stored raw")
	}

	c := exec.Default()
	for col := 0; col < len(specs); col++ {
		got := 0
		for seg := 0; seg < r.NumSegs(); seg++ {
			d, err := r.ReadSeg(c, col, seg)
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < d.Len(); j++ {
				k := got + j
				switch col {
				case 0, 4, 5:
					want := cols[col].F[k]
					if math.Float64bits(d.F[j]) != math.Float64bits(want) {
						t.Fatalf("col %d row %d: %x != %x", col, k, math.Float64bits(d.F[j]), math.Float64bits(want))
					}
				case 1, 3:
					if d.I[j] != cols[col].I[k] {
						t.Fatalf("col %d row %d: %d != %d", col, k, d.I[j], cols[col].I[k])
					}
				case 2:
					if d.S[j] != cols[col].S[k] {
						t.Fatalf("col %d row %d: %q != %q", col, k, d.S[j], cols[col].S[k])
					}
				}
			}
			got += d.Len()
			ReleaseColData(c, d)
		}
		if got != n {
			t.Fatalf("col %d decoded %d rows, want %d", col, got, n)
		}
	}
}

func TestZoneMaps(t *testing.T) {
	n := 2 * SegRows
	f := make([]float64, n)
	i64 := make([]int64, n)
	s := make([]string, n)
	for k := 0; k < n; k++ {
		f[k] = float64(k) // segment 0: [0, SegRows), segment 1: [SegRows, 2*SegRows)
		i64[k] = int64(k)
		if k < SegRows {
			s[k] = "aaa"
		} else {
			s[k] = "zzz"
		}
	}
	path := writeFile(t, "zм", n, []ColSpec{
		{Name: "f", Kind: KFloat}, {Name: "i", Kind: KInt}, {Name: "s", Kind: KString},
	}, []ColData{{F: f}, {I: i64}, {S: s}})

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Segment 0 covers [0, SegRows): a predicate band above it must
	// prune, one inside must not.
	if r.Seg(0, 0).MayContainNum(KFloat, float64(SegRows)+10, math.Inf(1)) {
		t.Error("float zone map failed to prune segment 0")
	}
	if !r.Seg(0, 0).MayContainNum(KFloat, 100, 200) {
		t.Error("float zone map wrongly pruned a matching band")
	}
	if r.Seg(1, 1).MayContainNum(KInt, 0, float64(SegRows-1)) {
		t.Error("int zone map failed to prune segment 1")
	}
	if !r.Seg(1, 1).MayContainNum(KInt, float64(SegRows), float64(SegRows)) {
		t.Error("int zone map wrongly pruned its own minimum")
	}
	if r.Seg(2, 0).MayContainStr("b", "y", true, true) {
		t.Error("string zone map failed to prune segment 0")
	}
	if !r.Seg(2, 1).MayContainStr("z", "zzzz", true, true) {
		t.Error("string zone map wrongly pruned segment 1")
	}
}

func TestNaNDisablesZoneMap(t *testing.T) {
	f := make([]float64, 100)
	f[50] = math.NaN()
	path := writeFile(t, "nan", 100, []ColSpec{{Name: "f", Kind: KFloat}}, []ColData{{F: f}})
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Seg(0, 0).HasZone {
		t.Fatal("segment with NaN must not carry a zone map")
	}
	if !r.Seg(0, 0).MayContainNum(KFloat, 1e12, 2e12) {
		t.Fatal("zone-less segment must never prune")
	}
}

func TestPoolEvictionAndCharging(t *testing.T) {
	n := 4 * SegRows
	f := make([]float64, n)
	for k := range f {
		f[k] = float64(k) * 1.5
	}
	path := writeFile(t, "pool", n, []ColSpec{{Name: "f", Kind: KFloat}}, []ColData{{F: f}})
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	gov := exec.NewGovernor(0, 0)
	tn := gov.Tenant("pool-test", 1<<30)
	ar := tn.NewArena()
	defer ar.Close()
	c := exec.NewCtx(1, ar, nil)

	p := NewPool(c, r, 2*SegRows*8) // room for two segments
	for seg := 0; seg < 4; seg++ {
		if _, err := p.Seg(0, seg); err != nil {
			t.Fatal(err)
		}
	}
	if p.Resident() > 2*SegRows*8 {
		t.Fatalf("pool resident %d exceeds cap %d", p.Resident(), 2*SegRows*8)
	}
	if live := tn.LiveBytes(); live <= 0 {
		t.Fatalf("pool residency not charged to tenant (live=%d)", live)
	}
	// A re-read of a resident segment must hit the cache (same backing
	// array).
	d1, _ := p.Seg(0, 3)
	d2, _ := p.Seg(0, 3)
	if &d1.F[0] != &d2.F[0] {
		t.Fatal("pool did not cache the resident segment")
	}
	p.Close()
	if live := tn.LiveBytes(); live != 0 {
		t.Fatalf("pool close left %d bytes charged", live)
	}
}

func TestCursorLockstep(t *testing.T) {
	n := SegRows + 777
	f := make([]float64, n)
	s := make([]string, n)
	for k := range f {
		f[k] = float64(k)
		s[k] = "v"
	}
	path := writeFile(t, "cur", n, []ColSpec{
		{Name: "f", Kind: KFloat}, {Name: "s", Kind: KString},
	}, []ColData{{F: f}, {S: s}})
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	cu := NewCursor(exec.Default(), r, nil)
	defer cu.Close()
	row := 0
	for {
		cols, cn, err := cu.Next(BlockRows)
		if err != nil {
			t.Fatal(err)
		}
		if cn == 0 {
			break
		}
		if len(cols) != 2 || cols[0].Len() != cn || cols[1].Len() != cn {
			t.Fatalf("cursor column lengths out of lockstep at row %d", row)
		}
		for j := 0; j < cn; j++ {
			if cols[0].F[j] != float64(row+j) {
				t.Fatalf("row %d: got %v", row+j, cols[0].F[j])
			}
		}
		row += cn
	}
	if row != n {
		t.Fatalf("cursor yielded %d rows, want %d", row, n)
	}
}

func TestEmptyTable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.seg")
	w, err := Create(path, "empty", []ColSpec{{Name: "x", Kind: KFloat}})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Rows() != 0 || r.NumSegs() != 0 {
		t.Fatalf("rows=%d segs=%d, want 0/0", r.Rows(), r.NumSegs())
	}
	cu := NewCursor(exec.Default(), r, nil)
	if _, cn, _ := cu.Next(BlockRows); cn != 0 {
		t.Fatal("cursor over empty table yielded rows")
	}
}
