// Package csvio reads and writes relations as CSV, the interchange format
// a downstream user needs to get real data (e.g. the BIXI trips the paper
// evaluates on) in and out of the engine. Types are inferred per column
// from the data unless a schema is supplied: a column is BIGINT if every
// value parses as an integer, DOUBLE if every value parses as a number,
// and VARCHAR otherwise.
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/bat"
	"repro/internal/rel"
)

// Read parses CSV with a header row into a relation, inferring column
// types from the data.
func Read(r io.Reader, name string) (*rel.Relation, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csvio: header: %v", err)
	}
	names := append([]string(nil), header...)
	var rows [][]string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("csvio: %v", err)
		}
		rows = append(rows, append([]string(nil), rec...))
	}
	schema := make(rel.Schema, len(names))
	for k, n := range names {
		schema[k] = rel.Attr{Name: n, Type: inferType(rows, k)}
	}
	return build(name, schema, rows)
}

// ReadWithSchema parses CSV with a header row against a declared schema.
func ReadWithSchema(r io.Reader, name string, schema rel.Schema) (*rel.Relation, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csvio: header: %v", err)
	}
	if len(header) != len(schema) {
		return nil, fmt.Errorf("csvio: %d header fields for schema of arity %d", len(header), len(schema))
	}
	var rows [][]string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("csvio: %v", err)
		}
		rows = append(rows, append([]string(nil), rec...))
	}
	return build(name, schema, rows)
}

func inferType(rows [][]string, k int) bat.Type {
	t := bat.Int
	for _, row := range rows {
		cell := row[k]
		if t == bat.Int {
			if _, err := strconv.ParseInt(cell, 10, 64); err == nil {
				continue
			}
			t = bat.Float
		}
		if t == bat.Float {
			if _, err := strconv.ParseFloat(cell, 64); err == nil {
				continue
			}
			return bat.String
		}
	}
	return t
}

func build(name string, schema rel.Schema, rows [][]string) (*rel.Relation, error) {
	b := rel.NewBuilder(name, schema)
	vals := make([]bat.Value, len(schema))
	for i, row := range rows {
		if len(row) != len(schema) {
			return nil, fmt.Errorf("csvio: row %d has %d fields, want %d", i+1, len(row), len(schema))
		}
		for k, cell := range row {
			switch schema[k].Type {
			case bat.Int:
				v, err := strconv.ParseInt(cell, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("csvio: row %d, column %s: %v", i+1, schema[k].Name, err)
				}
				vals[k] = bat.IntValue(v)
			case bat.Float:
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, fmt.Errorf("csvio: row %d, column %s: %v", i+1, schema[k].Name, err)
				}
				vals[k] = bat.FloatValue(v)
			default:
				vals[k] = bat.StringValue(cell)
			}
		}
		if err := b.Add(vals...); err != nil {
			return nil, fmt.Errorf("csvio: row %d: %v", i+1, err)
		}
	}
	return b.Relation(), nil
}

// Write renders the relation as CSV with a header row.
func Write(w io.Writer, r *rel.Relation) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Schema.Names()); err != nil {
		return fmt.Errorf("csvio: %v", err)
	}
	n := r.NumRows()
	rec := make([]string, r.NumCols())
	for i := 0; i < n; i++ {
		for k, c := range r.Cols {
			rec[k] = c.Get(i).String()
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("csvio: %v", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
