package csvio

import (
	"strings"
	"testing"

	"repro/internal/bat"
	"repro/internal/rel"
)

const sample = `id,name,score
1,Ann,2.5
2,"Bob, Jr.",3
3,Cid,-1.25
`

func TestReadInference(t *testing.T) {
	r, err := Read(strings.NewReader(sample), "t")
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRows() != 3 || r.NumCols() != 3 {
		t.Fatalf("size = %dx%d", r.NumRows(), r.NumCols())
	}
	if r.Schema[0].Type != bat.Int || r.Schema[1].Type != bat.String || r.Schema[2].Type != bat.Float {
		t.Fatalf("inferred types = %v %v %v", r.Schema[0].Type, r.Schema[1].Type, r.Schema[2].Type)
	}
	if r.Value(1, 1).S != "Bob, Jr." {
		t.Errorf("quoted cell = %q", r.Value(1, 1).S)
	}
	if r.Value(2, 2).F != -1.25 {
		t.Errorf("score = %v", r.Value(2, 2))
	}
}

func TestRoundTrip(t *testing.T) {
	r, err := Read(strings.NewReader(sample), "t")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, r); err != nil {
		t.Fatal(err)
	}
	back, err := Read(strings.NewReader(sb.String()), "t")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != r.NumRows() {
		t.Fatalf("round trip rows = %d", back.NumRows())
	}
	for i := 0; i < r.NumRows(); i++ {
		for k := 0; k < r.NumCols(); k++ {
			if !back.Value(i, k).Equal(r.Value(i, k)) {
				t.Fatalf("cell %d,%d: %v vs %v", i, k, back.Value(i, k), r.Value(i, k))
			}
		}
	}
}

func TestReadWithSchema(t *testing.T) {
	schema := rel.Schema{
		{Name: "id", Type: bat.Float}, // force float even though ints parse
		{Name: "name", Type: bat.String},
		{Name: "score", Type: bat.Float},
	}
	r, err := ReadWithSchema(strings.NewReader(sample), "t", schema)
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema[0].Type != bat.Float {
		t.Errorf("declared type ignored: %v", r.Schema[0].Type)
	}
	if _, err := ReadWithSchema(strings.NewReader(sample), "t", schema[:2]); err == nil {
		t.Error("arity mismatch accepted")
	}
	bad := rel.Schema{
		{Name: "id", Type: bat.Int},
		{Name: "name", Type: bat.Int}, // names do not parse as ints
		{Name: "score", Type: bat.Float},
	}
	if _, err := ReadWithSchema(strings.NewReader(sample), "t", bad); err == nil {
		t.Error("unparseable cell accepted")
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader(""), "t"); err == nil {
		t.Error("empty input accepted")
	}
	// encoding/csv rejects ragged rows.
	if _, err := Read(strings.NewReader("a,b\n1\n"), "t"); err == nil {
		t.Error("ragged row accepted")
	}
	// Header-only input yields an empty relation.
	r, err := Read(strings.NewReader("a,b\n"), "t")
	if err != nil || r.NumRows() != 0 || r.NumCols() != 2 {
		t.Errorf("header-only: %v, %v", r, err)
	}
}

func TestIntThenFloatPromotion(t *testing.T) {
	r, err := Read(strings.NewReader("x\n1\n2.5\n"), "t")
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema[0].Type != bat.Float {
		t.Errorf("mixed int/float column inferred as %v", r.Schema[0].Type)
	}
}
