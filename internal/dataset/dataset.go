// Package dataset generates the workloads of the paper's evaluation
// (Section 8). The real BIXI (Kaggle) and DBLP dumps are not available
// offline, so seeded synthetic generators reproduce their schemas, type
// mixes (numeric + date + string), and key distributions; every generator
// is deterministic in its seed. Scaled-down sizes are documented per
// experiment in EXPERIMENTS.md.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bat"
	"repro/internal/rel"
)

// Stations generates a BIXI-like station table: code (int key), name
// (string), latitude and longitude (Montreal-ish box).
func Stations(n int, seed int64) *rel.Relation {
	rng := rand.New(rand.NewSource(seed))
	codes := make([]int64, n)
	names := make([]string, n)
	lats := make([]float64, n)
	lons := make([]float64, n)
	for i := 0; i < n; i++ {
		codes[i] = int64(1000 + i)
		names[i] = fmt.Sprintf("Station-%04d", i)
		lats[i] = 45.40 + rng.Float64()*0.25
		lons[i] = -73.75 + rng.Float64()*0.35
	}
	return rel.MustNew("stations", rel.Schema{
		{Name: "code", Type: bat.Int},
		{Name: "name", Type: bat.String},
		{Name: "lat", Type: bat.Float},
		{Name: "lon", Type: bat.Float},
	}, []*bat.BAT{
		bat.FromInts(codes), bat.FromStrings(names),
		bat.FromFloats(lats), bat.FromFloats(lons),
	})
}

// Trips generates a BIXI-like trip table with the type mix the paper's
// §8.6(1) workload depends on: dates (int64 epoch seconds), station codes
// (int), duration (float seconds), and a member flag stored as a string
// ("yes"/"no") so that non-numeric data flows through the pipeline.
// Station popularity is Zipf-distributed so that frequent (start,end)
// pairs exist for the "performed at least 50 times" filter, and durations
// grow with the geographic distance between the endpoint stations (riding
// a bicycle takes time), so the regression workloads recover a meaningful
// speed. Passing the same seed as Stations aligns the coordinates.
func Trips(n, nStations int, seed int64) *rel.Relation {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(nStations-1))
	stations := Stations(nStations, seed)
	latC, _ := stations.Col("lat")
	lonC, _ := stations.Col("lon")
	lat, _ := latC.Floats()
	lon, _ := lonC.Floats()
	id := make([]int64, n)
	startDate := make([]int64, n)
	startStation := make([]int64, n)
	endDate := make([]int64, n)
	endStation := make([]int64, n)
	duration := make([]float64, n)
	member := make([]string, n)
	const yearStart = 1388534400 // 2014-01-01 UTC
	for i := 0; i < n; i++ {
		s := int(zipf.Uint64())
		e := int(zipf.Uint64())
		for e == s { // riders go somewhere: no zero-distance self-loops
			e = (e + 1 + rng.Intn(nStations-1)) % nStations
		}
		begin := yearStart + rng.Int63n(365*24*3600)
		dy := (lat[s] - lat[e]) * 111.0
		dx := (lon[s] - lon[e]) * 78.8
		km := math.Sqrt(dx*dx + dy*dy)
		// ~15 km/h plus stop-and-go noise and a dock/undock overhead.
		dur := 120 + km*240*(0.8+0.4*rng.Float64()) + rng.ExpFloat64()*120
		id[i] = int64(i)
		startDate[i] = begin
		startStation[i] = int64(1000 + s)
		endDate[i] = begin + int64(dur)
		endStation[i] = int64(1000 + e)
		duration[i] = dur
		if rng.Intn(3) > 0 {
			member[i] = "yes"
		} else {
			member[i] = "no"
		}
	}
	return rel.MustNew("trips", rel.Schema{
		{Name: "id", Type: bat.Int},
		{Name: "start_date", Type: bat.Int},
		{Name: "start_station", Type: bat.Int},
		{Name: "end_date", Type: bat.Int},
		{Name: "end_station", Type: bat.Int},
		{Name: "duration", Type: bat.Float},
		{Name: "member", Type: bat.String},
	}, []*bat.BAT{
		bat.FromInts(id), bat.FromInts(startDate), bat.FromInts(startStation),
		bat.FromInts(endDate), bat.FromInts(endStation),
		bat.FromFloats(duration), bat.FromStrings(member),
	})
}

// RiderTripCounts generates the §8.6(4) relation: one row per rider with
// the trip counts to 10 destinations for one year. Seed differentiates
// years.
func RiderTripCounts(nRiders int, seed int64) *rel.Relation {
	rng := rand.New(rand.NewSource(seed))
	schema := rel.Schema{{Name: "rider", Type: bat.Int}}
	cols := make([]*bat.BAT, 0, 11)
	riders := make([]int64, nRiders)
	for i := range riders {
		riders[i] = int64(i)
	}
	cols = append(cols, bat.FromInts(riders))
	for d := 0; d < 10; d++ {
		schema = append(schema, rel.Attr{Name: fmt.Sprintf("dest%d", d), Type: bat.Float})
		counts := make([]float64, nRiders)
		for i := range counts {
			counts[i] = float64(rng.Intn(40))
		}
		cols = append(cols, bat.FromFloats(counts))
	}
	return rel.MustNew("rider_trips", schema, cols)
}

// Publications generates the DBLP-like pivot table of §8.6(3): one row per
// author, one column per conference holding publication counts (sparse,
// most zero). Column names are conference ids c0000..cNNNN.
func Publications(nAuthors, nConfs int, seed int64) *rel.Relation {
	rng := rand.New(rand.NewSource(seed))
	schema := make(rel.Schema, 0, nConfs+1)
	schema = append(schema, rel.Attr{Name: "author", Type: bat.Int})
	authors := make([]int64, nAuthors)
	for i := range authors {
		authors[i] = int64(i)
	}
	cols := make([]*bat.BAT, 0, nConfs+1)
	cols = append(cols, bat.FromInts(authors))
	for c := 0; c < nConfs; c++ {
		schema = append(schema, rel.Attr{Name: ConferenceName(c), Type: bat.Float})
		counts := make([]float64, nAuthors)
		for i := range counts {
			if rng.Intn(20) == 0 { // ~5% of authors publish at a venue
				counts[i] = float64(1 + rng.Intn(8))
			}
		}
		cols = append(cols, bat.FromFloats(counts))
	}
	return rel.MustNew("publications", schema, cols)
}

// ConferenceName formats the conference id used by Publications and
// Rankings.
func ConferenceName(c int) string { return fmt.Sprintf("c%04d", c) }

// Rankings generates the DBLP-like conference rating table. About 5% of
// conferences are rated A++ (the selection target of the workload).
func Rankings(nConfs int, seed int64) *rel.Relation {
	rng := rand.New(rand.NewSource(seed))
	ratings := []string{"A++", "A+", "A", "B", "C"}
	names := make([]string, nConfs)
	rates := make([]string, nConfs)
	for c := 0; c < nConfs; c++ {
		names[c] = ConferenceName(c)
		if rng.Intn(20) == 0 {
			rates[c] = "A++"
		} else {
			rates[c] = ratings[1+rng.Intn(len(ratings)-1)]
		}
	}
	return rel.MustNew("ranking", rel.Schema{
		{Name: "conf", Type: bat.String},
		{Name: "rating", Type: bat.String},
	}, []*bat.BAT{bat.FromStrings(names), bat.FromStrings(rates)})
}

// Uniform generates the synthetic relation of §8.2/8.3: an int key k plus
// nCols float columns uniform in [0, 10000).
func Uniform(nRows, nCols int, seed int64) *rel.Relation {
	rng := rand.New(rand.NewSource(seed))
	schema := make(rel.Schema, 0, nCols+1)
	schema = append(schema, rel.Attr{Name: "k", Type: bat.Int})
	keys := make([]int64, nRows)
	for i := range keys {
		keys[i] = int64(i)
	}
	cols := make([]*bat.BAT, 0, nCols+1)
	cols = append(cols, bat.FromInts(keys))
	for c := 0; c < nCols; c++ {
		schema = append(schema, rel.Attr{Name: fmt.Sprintf("a%04d", c), Type: bat.Float})
		vals := make([]float64, nRows)
		for i := range vals {
			vals[i] = rng.Float64() * 10000
		}
		cols = append(cols, bat.FromFloats(vals))
	}
	return rel.MustNew("uniform", schema, cols)
}

// Sparse generates the Table 5 relation: an int key plus nCols float
// columns where zeroFrac of the values are exactly zero (positions
// random); non-zero values are uniform in [1, 5M). Columns are stored
// zero-suppressed, standing in for MonetDB's compression.
func Sparse(nRows, nCols int, zeroFrac float64, seed int64) *rel.Relation {
	rng := rand.New(rand.NewSource(seed))
	schema := make(rel.Schema, 0, nCols+1)
	schema = append(schema, rel.Attr{Name: "k", Type: bat.Int})
	keys := make([]int64, nRows)
	for i := range keys {
		keys[i] = int64(i)
	}
	cols := make([]*bat.BAT, 0, nCols+1)
	cols = append(cols, bat.FromInts(keys))
	for c := 0; c < nCols; c++ {
		schema = append(schema, rel.Attr{Name: fmt.Sprintf("a%04d", c), Type: bat.Float})
		vals := make([]float64, nRows)
		for i := range vals {
			if rng.Float64() >= zeroFrac {
				vals[i] = 1 + rng.Float64()*4999999
			}
		}
		cols = append(cols, bat.FromSparse(bat.Compress(vals)))
	}
	return rel.MustNew("sparse", schema, cols)
}

// WideOrder generates the Figure 13 relation: nOrder order columns (whose
// combination is a key: the first is unique) and a single application
// column.
func WideOrder(nRows, nOrder int, seed int64) (*rel.Relation, []string) {
	rng := rand.New(rand.NewSource(seed))
	schema := make(rel.Schema, 0, nOrder+1)
	cols := make([]*bat.BAT, 0, nOrder+1)
	orderNames := make([]string, nOrder)
	perm := rng.Perm(nRows)
	for c := 0; c < nOrder; c++ {
		name := fmt.Sprintf("o%04d", c)
		orderNames[c] = name
		schema = append(schema, rel.Attr{Name: name, Type: bat.Int})
		vals := make([]int64, nRows)
		if c == 0 {
			for i := range vals {
				vals[i] = int64(perm[i])
			}
		} else {
			for i := range vals {
				vals[i] = int64(rng.Intn(1000))
			}
		}
		cols = append(cols, bat.FromInts(vals))
	}
	schema = append(schema, rel.Attr{Name: "val", Type: bat.Float})
	vals := make([]float64, nRows)
	for i := range vals {
		vals[i] = rng.Float64() * 10000
	}
	cols = append(cols, bat.FromFloats(vals))
	return rel.MustNew("wideorder", schema, cols), orderNames
}
