package dataset

import (
	"testing"

	"repro/internal/bat"
)

func TestStations(t *testing.T) {
	s := Stations(50, 1)
	if s.NumRows() != 50 || s.NumCols() != 4 {
		t.Fatalf("stations = %dx%d", s.NumRows(), s.NumCols())
	}
	lat, _ := s.Col("lat")
	f, _ := lat.Floats()
	for _, v := range f {
		if v < 45.0 || v > 46.0 {
			t.Fatalf("lat out of range: %v", v)
		}
	}
	// Deterministic in the seed.
	s2 := Stations(50, 1)
	f2, _ := func() ([]float64, error) { c, _ := s2.Col("lat"); return c.Floats() }()
	for k := range f {
		if f[k] != f2[k] {
			t.Fatal("not deterministic")
		}
	}
}

func TestTrips(t *testing.T) {
	tr := Trips(1000, 100, 2)
	if tr.NumRows() != 1000 {
		t.Fatalf("trips = %d", tr.NumRows())
	}
	// Durations positive; end after start.
	d, _ := tr.Col("duration")
	f, _ := d.Floats()
	sd, _ := tr.Col("start_date")
	ed, _ := tr.Col("end_date")
	sdi := sd.Vector().Ints()
	edi := ed.Vector().Ints()
	for i := range f {
		if f[i] <= 0 {
			t.Fatalf("duration %v", f[i])
		}
		if edi[i] < sdi[i] {
			t.Fatalf("end before start at %d", i)
		}
	}
	// Station codes within range.
	ss, _ := tr.Col("start_station")
	for _, c := range ss.Vector().Ints() {
		if c < 1000 || c >= 1100 {
			t.Fatalf("station code %d", c)
		}
	}
	// Member is a string flag.
	m, _ := tr.Col("member")
	if m.Type() != bat.String {
		t.Error("member should be a string column")
	}
}

func TestRiderTripCounts(t *testing.T) {
	r := RiderTripCounts(200, 3)
	if r.NumRows() != 200 || r.NumCols() != 11 {
		t.Fatalf("riders = %dx%d", r.NumRows(), r.NumCols())
	}
	// Different seeds differ (different years).
	r2 := RiderTripCounts(200, 4)
	c1, _ := r.Col("dest0")
	c2, _ := r2.Col("dest0")
	f1, _ := c1.Floats()
	f2, _ := c2.Floats()
	same := true
	for k := range f1 {
		if f1[k] != f2[k] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds should differentiate years")
	}
}

func TestPublicationsAndRankings(t *testing.T) {
	p := Publications(500, 30, 5)
	if p.NumRows() != 500 || p.NumCols() != 31 {
		t.Fatalf("pubs = %dx%d", p.NumRows(), p.NumCols())
	}
	// Sparse counts: majority zero.
	c, _ := p.Col(ConferenceName(0))
	f, _ := c.Floats()
	zeros := 0
	for _, v := range f {
		if v == 0 {
			zeros++
		}
	}
	if zeros < 400 {
		t.Errorf("only %d zeros out of 500", zeros)
	}
	rk := Rankings(30, 5)
	if rk.NumRows() != 30 {
		t.Fatalf("rankings = %d", rk.NumRows())
	}
	rc, _ := rk.Col("conf")
	if rc.Vector().Strings()[0] != ConferenceName(0) {
		t.Error("ranking conference ids do not match publications")
	}
}

func TestUniform(t *testing.T) {
	u := Uniform(100, 5, 6)
	if u.NumRows() != 100 || u.NumCols() != 6 {
		t.Fatalf("uniform = %dx%d", u.NumRows(), u.NumCols())
	}
	c, _ := u.Col("a0000")
	f, _ := c.Floats()
	for _, v := range f {
		if v < 0 || v >= 10000 {
			t.Fatalf("value out of range: %v", v)
		}
	}
}

func TestSparse(t *testing.T) {
	s := Sparse(1000, 3, 0.8, 7)
	c, _ := s.Col("a0000")
	if !c.IsSparse() {
		t.Fatal("sparse columns should be zero-suppressed")
	}
	nnz := c.Sparse().NNZ()
	if nnz < 120 || nnz > 280 { // ~20% of 1000
		t.Errorf("nnz = %d, want ~200", nnz)
	}
	// zeroFrac = 0 → dense content.
	d := Sparse(100, 1, 0, 8)
	cd, _ := d.Col("a0000")
	if cd.Sparse().NNZ() != 100 {
		t.Errorf("zeroFrac 0 nnz = %d", cd.Sparse().NNZ())
	}
}

func TestWideOrder(t *testing.T) {
	r, names := WideOrder(200, 10, 9)
	if r.NumCols() != 11 || len(names) != 10 {
		t.Fatalf("wideorder cols = %d names = %d", r.NumCols(), len(names))
	}
	// First order column unique (forms a key).
	c, _ := r.Col(names[0])
	seen := map[int64]bool{}
	for _, v := range c.Vector().Ints() {
		if seen[v] {
			t.Fatal("first order column not unique")
		}
		seen[v] = true
	}
}
