package linalg

import (
	"math"
	"sync"

	"repro/internal/exec"
	"repro/internal/matrix"
)

// QR holds a Householder QR factorization of an m×n matrix with m >= n:
// A = Q·R with Q m×n (thin, orthonormal columns) and R n×n upper
// triangular. The working representation is column-major — Householder
// reflections walk columns, so contiguous columns are what makes the
// kernel fast — with the Householder vectors stored below the diagonal and
// R strictly above it; R's diagonal lives in tau.
type QR struct {
	v       [][]float64 // n columns of length m
	tau     []float64
	rows    int
	cols    int
	workers int // the factoring context's budget, reused by Q accumulation
}

// NewQR factors a with Householder reflections using the context's
// worker budget for the trailing-column updates (the LAPACK/MKL
// behavior). Requires Rows >= Cols.
func NewQR(c *exec.Ctx, a *matrix.Matrix) (*QR, error) {
	return newQR(a, c.Workers())
}

// NewQRSerial factors on a single core — the behavior of R's default
// LINPACK qr(), which the Table 6 experiment compares against.
func NewQRSerial(a *matrix.Matrix) (*QR, error) { return newQR(a, 1) }

func newQR(a *matrix.Matrix, workers int) (*QR, error) {
	if a.Rows < a.Cols {
		return nil, ErrShape
	}
	m, n := a.Rows, a.Cols
	v := make([][]float64, n)
	for j := 0; j < n; j++ {
		v[j] = a.Column(j)
	}
	tau := make([]float64, n)
	for k := 0; k < n; k++ {
		ck := v[k]
		var norm float64
		for _, x := range ck[k:] {
			norm = math.Hypot(norm, x)
		}
		if norm == 0 {
			tau[k] = 0
			continue
		}
		// Choose the sign that avoids cancellation in v_kk = a_kk/norm + 1.
		if ck[k] < 0 {
			norm = -norm
		}
		inv := 1 / norm
		for i := k; i < m; i++ {
			ck[i] *= inv
		}
		ck[k]++
		applyReflector(v, k, m, n, workers)
		// The diagonal of R cannot live in v (that slot holds the
		// Householder vector), so it is carried in tau.
		tau[k] = -norm
	}
	return &QR{v: v, tau: tau, rows: m, cols: n, workers: workers}, nil
}

// applyReflectorTo applies the reflector stored in ck (column k) to
// one column cj. Both the flat Householder loop and the panel-blocked
// QRBlocked funnel every column update through this one body, which
// is what makes the two factorizations bitwise-identical: a trailing
// column receives the same reflectors in the same ascending order
// with the same arithmetic, no matter how the sweeps are batched.
func applyReflectorTo(ck, cj []float64, k, m int) {
	beta := ck[k]
	var s float64
	for i := k; i < m; i++ {
		s += ck[i] * cj[i]
	}
	s = -s / beta
	for i := k; i < m; i++ {
		cj[i] += s * ck[i]
	}
}

// applyReflector updates columns k+1..n with the reflector stored in
// column k, splitting the columns across workers when the block is large.
func applyReflector(v [][]float64, k, m, n, workers int) {
	ck := v[k]
	update := func(jLo, jHi int) {
		for j := jLo; j < jHi; j++ {
			applyReflectorTo(ck, v[j], k, m)
		}
	}
	cols := n - (k + 1)
	if workers <= 1 || cols < 2 || (m-k)*cols < 1<<15 {
		update(k+1, n)
		return
	}
	if workers > cols {
		workers = cols
	}
	var wg sync.WaitGroup
	chunk := (cols + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := k + 1 + w*chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			update(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// R returns the n×n upper-triangular factor.
func (d *QR) R() *matrix.Matrix {
	n := d.cols
	r := matrix.New(n, n)
	for i := 0; i < n; i++ {
		r.Set(i, i, d.tau[i])
		for j := i + 1; j < n; j++ {
			r.Set(i, j, d.v[j][i])
		}
	}
	return r
}

// Q returns the thin m×n orthonormal factor.
func (d *QR) Q() *matrix.Matrix {
	return d.q(d.cols)
}

// FullQ returns the full m×m orthogonal factor.
func (d *QR) FullQ() *matrix.Matrix {
	return d.q(d.rows)
}

// q accumulates the Householder reflectors against the first w identity
// columns, producing an m×w orthonormal matrix. The per-column
// accumulations are independent and run on all cores for large factors.
func (d *QR) q(w int) *matrix.Matrix {
	m, n := d.rows, d.cols
	qcols := make([][]float64, w)
	apply := func(jLo, jHi int) {
		for j := jLo; j < jHi; j++ {
			col := make([]float64, m)
			if j < m {
				col[j] = 1
			}
			for k := n - 1; k >= 0; k-- {
				ck := d.v[k]
				beta := ck[k]
				if beta == 0 {
					continue
				}
				var s float64
				for i := k; i < m; i++ {
					s += ck[i] * col[i]
				}
				s = -s / beta
				for i := k; i < m; i++ {
					col[i] += s * ck[i]
				}
			}
			qcols[j] = col
		}
	}
	workers := d.workers
	if workers <= 1 || w < 2 || m*n < 1<<15 {
		apply(0, w)
	} else {
		if workers > w {
			workers = w
		}
		var wg sync.WaitGroup
		chunk := (w + workers - 1) / workers
		for wk := 0; wk < workers; wk++ {
			lo, hi := wk*chunk, (wk+1)*chunk
			if hi > w {
				hi = w
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				apply(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}
	return matrix.FromColumns(qcols)
}

// QQR returns matrix Q of the QR decomposition (the paper's QQR, shape
// (r1,c1): m×n in, m×n out).
func QQR(c *exec.Ctx, a *matrix.Matrix) (*matrix.Matrix, error) {
	d, err := NewQR(c, a)
	if err != nil {
		return nil, err
	}
	return d.Q(), nil
}

// RQR returns matrix R of the QR decomposition (the paper's RQR, shape
// (c1,c1): m×n in, n×n out).
func RQR(c *exec.Ctx, a *matrix.Matrix) (*matrix.Matrix, error) {
	d, err := NewQR(c, a)
	if err != nil {
		return nil, err
	}
	return d.R(), nil
}

// lstsq solves min ‖a·x − b‖₂ for overdetermined a via QR, applying the
// reflectors to b directly (no Q materialization).
func lstsq(c *exec.Ctx, a *matrix.Matrix, b []float64) ([]float64, error) {
	d, err := NewQR(c, a)
	if err != nil {
		return nil, err
	}
	m, n := d.rows, d.cols
	qtb := append([]float64(nil), b...)
	for k := 0; k < n; k++ {
		ck := d.v[k]
		beta := ck[k]
		if beta == 0 {
			continue
		}
		var s float64
		for i := k; i < m; i++ {
			s += ck[i] * qtb[i]
		}
		s = -s / beta
		for i := k; i < m; i++ {
			qtb[i] += s * ck[i]
		}
	}
	// Back substitution on R (diagonal in tau, strict upper in v).
	x := qtb[:n]
	for k := n - 1; k >= 0; k-- {
		if d.tau[k] == 0 {
			return nil, ErrSingular
		}
		for j := k + 1; j < n; j++ {
			x[k] -= d.v[j][k] * x[j]
		}
		x[k] /= d.tau[k]
	}
	return append([]float64(nil), x...), nil
}
