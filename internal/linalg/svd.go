package linalg

import (
	"math"
	"sort"
	"sync"

	"repro/internal/exec"
	"repro/internal/matrix"
)

// SVD holds a singular value decomposition A = U·diag(S)·Vᵀ computed with
// the one-sided Jacobi (Hestenes) method. For an m×n input with m >= n,
// U is m×n with orthonormal columns, S has n non-negative values in
// descending order, and V is n×n orthogonal. Inputs with m < n are handled
// by factoring the transpose and swapping U and V.
type SVD struct {
	U *matrix.Matrix
	S []float64
	V *matrix.Matrix
}

const (
	svdMaxSweeps = 60
	svdEps       = 1e-14
)

// NewSVD computes the decomposition under the context's worker budget.
func NewSVD(c *exec.Ctx, a *matrix.Matrix) (*SVD, error) {
	if a.Rows == 0 || a.Cols == 0 {
		return nil, ErrShape
	}
	if a.Rows < a.Cols {
		t, err := NewSVD(c, a.T())
		if err != nil {
			return nil, err
		}
		return &SVD{U: t.V, S: t.S, V: t.U}, nil
	}
	m, n := a.Rows, a.Cols
	// Work on columns: u[j] is the j-th column of the rotating A, and
	// vcols[j] the j-th column of the accumulating V.
	u := make([][]float64, n)
	for j := range u {
		u[j] = a.Column(j)
	}
	vcols := make([][]float64, n)
	for j := range vcols {
		vcols[j] = make([]float64, n)
		vcols[j][j] = 1
	}

	// Each sweep visits every column pair once. A round-robin tournament
	// schedule makes the pairs within a round disjoint, so rounds
	// parallelize across cores (the classic parallel one-sided Jacobi).
	workers := c.Workers()
	players := n
	if players%2 == 1 {
		players++
	}
	seat := make([]int, players)
	for i := range seat {
		seat[i] = i
		if i >= n {
			seat[i] = -1 // bye for odd n
		}
	}
	rotate := func(p, q int) bool {
		var alpha, beta, gamma float64
		up, uq := u[p], u[q]
		for i := 0; i < m; i++ {
			alpha += up[i] * up[i]
			beta += uq[i] * uq[i]
			gamma += up[i] * uq[i]
		}
		if math.Abs(gamma) <= svdEps*math.Sqrt(alpha*beta) || gamma == 0 {
			return false
		}
		zeta := (beta - alpha) / (2 * gamma)
		t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
		c := 1 / math.Sqrt(1+t*t)
		s := c * t
		for i := 0; i < m; i++ {
			pi, qi := up[i], uq[i]
			up[i] = c*pi - s*qi
			uq[i] = s*pi + c*qi
		}
		vp, vq := vcols[p], vcols[q]
		for i := 0; i < n; i++ {
			pi, qi := vp[i], vq[i]
			vp[i] = c*pi - s*qi
			vq[i] = s*pi + c*qi
		}
		return true
	}
	parallel := workers > 1 && players >= 8 && m*n > 1<<14
	for sweep := 0; sweep < svdMaxSweeps; sweep++ {
		rotatedAny := false
		for round := 0; round < players-1; round++ {
			type pair struct{ p, q int }
			pairs := make([]pair, 0, players/2)
			for i := 0; i < players/2; i++ {
				p, q := seat[i], seat[players-1-i]
				if p >= 0 && q >= 0 {
					if p > q {
						p, q = q, p
					}
					pairs = append(pairs, pair{p, q})
				}
			}
			if !parallel || len(pairs) < 2 {
				for _, pr := range pairs {
					if rotate(pr.p, pr.q) {
						rotatedAny = true
					}
				}
			} else {
				rotated := make([]bool, len(pairs))
				var wg sync.WaitGroup
				nw := workers
				if nw > len(pairs) {
					nw = len(pairs)
				}
				chunk := (len(pairs) + nw - 1) / nw
				for w := 0; w < nw; w++ {
					lo, hi := w*chunk, (w+1)*chunk
					if hi > len(pairs) {
						hi = len(pairs)
					}
					if lo >= hi {
						break
					}
					wg.Add(1)
					go func(lo, hi int) {
						defer wg.Done()
						for x := lo; x < hi; x++ {
							rotated[x] = rotate(pairs[x].p, pairs[x].q)
						}
					}(lo, hi)
				}
				wg.Wait()
				for _, r := range rotated {
					if r {
						rotatedAny = true
					}
				}
			}
			// Rotate the tournament seats (seat 0 fixed).
			last := seat[players-1]
			copy(seat[2:], seat[1:players-1])
			seat[1] = last
		}
		if !rotatedAny {
			break
		}
	}
	v := matrix.FromColumns(vcols)

	// Singular values are the column norms; normalize the columns into U.
	sv := make([]float64, n)
	for j := range u {
		var norm float64
		for _, x := range u[j] {
			norm += x * x
		}
		sv[j] = math.Sqrt(norm)
	}

	// Sort descending, permuting U and V consistently.
	order := make([]int, n)
	for k := range order {
		order[k] = k
	}
	sort.SliceStable(order, func(a, b int) bool { return sv[order[a]] > sv[order[b]] })

	uMat := matrix.New(m, n)
	vMat := matrix.New(n, n)
	sOut := make([]float64, n)
	maxSV := 0.0
	for _, j := range order {
		if sv[j] > maxSV {
			maxSV = sv[j]
		}
	}
	zeroTol := float64(m) * svdEps * maxSV
	for dst, src := range order {
		sOut[dst] = sv[src]
		if sv[src] > zeroTol && sv[src] > 0 {
			inv := 1 / sv[src]
			for i := 0; i < m; i++ {
				uMat.Set(i, dst, u[src][i]*inv)
			}
		}
		for i := 0; i < n; i++ {
			vMat.Set(i, dst, v.At(i, src))
		}
	}
	// Columns for (near-)zero singular values are arbitrary up to
	// orthonormality; fill them by Gram-Schmidt against identity vectors.
	completeOrthonormal(uMat, sOut, zeroTol)
	return &SVD{U: uMat, S: sOut, V: vMat}, nil
}

// completeOrthonormal replaces columns of u whose singular value is below
// tol with vectors orthonormal to all other columns.
func completeOrthonormal(u *matrix.Matrix, sv []float64, tol float64) {
	m := u.Rows
	for j, s := range sv {
		if s > tol && s > 0 {
			continue
		}
		// Try identity candidates until one survives projection.
		for e := 0; e < m; e++ {
			cand := make([]float64, m)
			cand[e] = 1
			for c := 0; c < u.Cols; c++ {
				if c == j {
					continue
				}
				var dot float64
				for i := 0; i < m; i++ {
					dot += cand[i] * u.At(i, c)
				}
				for i := 0; i < m; i++ {
					cand[i] -= dot * u.At(i, c)
				}
			}
			var norm float64
			for _, x := range cand {
				norm += x * x
			}
			norm = math.Sqrt(norm)
			if norm > 1e-6 {
				for i := 0; i < m; i++ {
					u.Set(i, j, cand[i]/norm)
				}
				break
			}
		}
	}
}

// FullU extends the thin U factor to an m×m orthogonal matrix; the first
// n columns are U itself, the rest an orthonormal complement. This is what
// the paper's USV (shape (r1,r1): m×n in, m×m out) returns.
func (d *SVD) FullU() *matrix.Matrix { return extendOrthonormal(d.U) }

// FullV extends the V factor to a square orthogonal matrix; V is already
// square except when the input had fewer rows than columns.
func (d *SVD) FullV() *matrix.Matrix { return extendOrthonormal(d.V) }

// extendOrthonormal completes an m×n (m >= n) matrix with orthonormal
// columns to an m×m orthogonal matrix.
func extendOrthonormal(u *matrix.Matrix) *matrix.Matrix {
	m, n := u.Rows, u.Cols
	if m == n {
		return u.Clone()
	}
	full := matrix.New(m, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			full.Set(i, j, u.At(i, j))
		}
	}
	// Gram-Schmidt identity candidates into the remaining m-n slots.
	next := n
	for e := 0; e < m && next < m; e++ {
		cand := make([]float64, m)
		cand[e] = 1
		for c := 0; c < next; c++ {
			var dot float64
			for i := 0; i < m; i++ {
				dot += cand[i] * full.At(i, c)
			}
			for i := 0; i < m; i++ {
				cand[i] -= dot * full.At(i, c)
			}
		}
		var norm float64
		for _, x := range cand {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm > 1e-6 {
			for i := 0; i < m; i++ {
				full.Set(i, next, cand[i]/norm)
			}
			next++
		}
	}
	return full
}

// SingularValues returns the singular values of a in descending order
// (the DSV base result is diag of these).
func SingularValues(c *exec.Ctx, a *matrix.Matrix) ([]float64, error) {
	d, err := NewSVD(c, a)
	if err != nil {
		return nil, err
	}
	return d.S, nil
}

// Rank returns the numerical rank: the number of singular values above
// max(m,n)·eps·σmax (the RNK operation).
func Rank(c *exec.Ctx, a *matrix.Matrix) (int, error) {
	d, err := NewSVD(c, a)
	if err != nil {
		return 0, err
	}
	if len(d.S) == 0 || d.S[0] == 0 {
		return 0, nil
	}
	dim := a.Rows
	if a.Cols > dim {
		dim = a.Cols
	}
	tol := float64(dim) * 2.220446049250313e-16 * d.S[0]
	r := 0
	for _, s := range d.S {
		if s > tol {
			r++
		}
	}
	return r, nil
}
