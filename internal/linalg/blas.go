// Package linalg implements the decomposition-based matrix operations of
// the paper over contiguous dense arrays: LU (inversion, determinant,
// solve), Householder QR, one-sided Jacobi SVD, eigensolvers, and Cholesky,
// plus a cache-blocked, goroutine-parallel matrix multiply.
//
// This package is the repository's stand-in for Intel MKL (Section 7.3 of
// the paper): a tuned kernel over contiguous arrays that the RMA layer can
// delegate to after copying BATs out — and whose copy-in/copy-out overhead
// the paper measures in Figure 14. It is deliberately independent of the
// BAT layer; the column-at-a-time algorithms live in internal/batlin.
package linalg

import (
	"sync"

	"repro/internal/exec"
	"repro/internal/matrix"
)

// blockSize is the cache tile edge for the matmul kernels; 64 keeps three
// float64 tiles well inside a typical 256 KiB L2.
const blockSize = 64

// parallelThreshold is the flop count below which MatMul stays serial.
// The fan-out decision is per *worker*, not per call: each goroutine
// must clear this much work or its spawn/synchronization setup costs
// more than it saves, so the kernels shed workers until every stripe
// does (fanoutWorkers) instead of comparing the total flop count alone.
// A mid-sized input on a small budget therefore stays serial where the
// old total-flops test would have paid the fan-out setup for nothing —
// see the `linalg.MatMul(serial-mid)` regression note in BENCH_8.json.
const parallelThreshold = 1 << 18

// fanoutWorkers resolves how many goroutines a kernel of the given
// total flop count should fan out to under the context's budget: at
// most one per parallelThreshold of work, never more than the budget,
// and 1 (serial) when even two workers could not each clear the
// threshold.
func fanoutWorkers(c *exec.Ctx, flops int) int {
	workers := c.Workers()
	if byWork := flops / parallelThreshold; byWork < workers {
		workers = byWork
	}
	return max(workers, 1)
}

// MatMul returns a·b (MMU) using an ikj loop order with cache blocking,
// parallelized over row stripes under the context's worker budget.
func MatMul(c *exec.Ctx, a, b *matrix.Matrix) *matrix.Matrix {
	if a.Cols != b.Rows {
		panic("linalg: matmul inner dimension mismatch")
	}
	m, kk, n := a.Rows, a.Cols, b.Cols
	out := matrix.New(m, n)
	workers := fanoutWorkers(c, m*kk*n)
	if workers == 1 || m == 1 {
		mulStripe(a, b, out, 0, m)
		return out
	}
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulStripe(a, b, out, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// mulStripe computes rows [lo,hi) of out = a·b with k/j blocking.
func mulStripe(a, b, out *matrix.Matrix, lo, hi int) {
	kk, n := a.Cols, b.Cols
	for k0 := 0; k0 < kk; k0 += blockSize {
		k1 := k0 + blockSize
		if k1 > kk {
			k1 = kk
		}
		for j0 := 0; j0 < n; j0 += blockSize {
			j1 := j0 + blockSize
			if j1 > n {
				j1 = n
			}
			for i := lo; i < hi; i++ {
				arow := a.Row(i)
				orow := out.Row(i)
				for l := k0; l < k1; l++ {
					ail := arow[l]
					if ail == 0 {
						continue
					}
					brow := b.Row(l)
					for j := j0; j < j1; j++ {
						orow[j] += ail * brow[j]
					}
				}
			}
		}
	}
}

// CrossProduct returns aᵀ·b (CPD). Implemented as an explicit transpose
// followed by the blocked multiply; the O(mn) transpose is negligible next
// to the O(mnk) product.
func CrossProduct(c *exec.Ctx, a, b *matrix.Matrix) *matrix.Matrix {
	if a.Rows != b.Rows {
		panic("linalg: cross product row mismatch")
	}
	return MatMul(c, a.T(), b)
}

// OuterProduct returns a·bᵀ (OPD); the operands must have the same number
// of columns.
func OuterProduct(c *exec.Ctx, a, b *matrix.Matrix) *matrix.Matrix {
	if a.Cols != b.Cols {
		panic("linalg: outer product column mismatch")
	}
	return MatMul(c, a, b.T())
}

// SYRK returns aᵀ·a exploiting the symmetry of the result (the
// cblas_dsyrk route the paper uses for covariance, Section 8.6(3)): only
// the upper triangle is computed and then mirrored.
func SYRK(c *exec.Ctx, a *matrix.Matrix) *matrix.Matrix {
	n := a.Cols
	out := matrix.New(n, n)
	m := a.Rows
	if n == 0 {
		return out
	}
	workers := fanoutWorkers(c, m*n*n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		syrkCols(a, out, 0, n)
	} else {
		var wg sync.WaitGroup
		chunk := (n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				syrkCols(a, out, lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out.Set(j, i, out.At(i, j))
		}
	}
	return out
}

// syrkCols fills out[i][j] for i in [lo,hi), j >= i.
func syrkCols(a, out *matrix.Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		orow := out.Row(i)
		for r := 0; r < a.Rows; r++ {
			arow := a.Row(r)
			ari := arow[i]
			if ari == 0 {
				continue
			}
			for j := i; j < a.Cols; j++ {
				orow[j] += ari * arow[j]
			}
		}
	}
}

// MatVec returns a·x for a vector x.
func MatVec(a *matrix.Matrix, x []float64) []float64 {
	if a.Cols != len(x) {
		panic("linalg: matvec dimension mismatch")
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}
