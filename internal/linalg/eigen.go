package linalg

import (
	"errors"
	"math"
	"sort"

	"repro/internal/matrix"
)

// ErrComplexEigen is returned for non-symmetric matrices whose spectrum
// contains complex conjugate pairs; like the paper (which inherits the
// semantics of R's eigen over relational data), only real spectra are
// representable in a result relation.
var ErrComplexEigen = errors.New("linalg: matrix has complex eigenvalues")

// Eigen holds an eigendecomposition: Values in descending order and, when
// requested, the matching unit eigenvectors as columns of Vectors.
type Eigen struct {
	Values  []float64
	Vectors *matrix.Matrix
}

const (
	jacobiMaxSweeps = 64
	qrMaxIter       = 120
)

// NewEigen computes eigenvalues (and eigenvectors when withVectors) of a
// square matrix. Symmetric inputs use the cyclic Jacobi method; general
// inputs are reduced to Hessenberg form and iterated with shifted QR, with
// eigenvectors recovered by inverse iteration.
func NewEigen(a *matrix.Matrix, withVectors bool) (*Eigen, error) {
	if a.Rows != a.Cols {
		return nil, ErrShape
	}
	if a.Rows == 0 {
		return &Eigen{Values: nil, Vectors: matrix.New(0, 0)}, nil
	}
	symTol := 1e-10 * (1 + a.MaxAbs())
	if a.IsSymmetric(symTol) {
		return symmetricJacobi(a, withVectors)
	}
	return generalEigen(a, withVectors)
}

// symmetricJacobi runs cyclic Jacobi rotations until off-diagonal mass
// vanishes. Unconditionally stable for symmetric matrices.
func symmetricJacobi(a *matrix.Matrix, withVectors bool) (*Eigen, error) {
	n := a.Rows
	w := a.Clone()
	var v *matrix.Matrix
	if withVectors {
		v = matrix.Identity(n)
	}
	for sweep := 0; sweep < jacobiMaxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-28*(1+w.MaxAbs()*w.MaxAbs()) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(1+theta*theta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				// Rotate rows/columns p and q of w.
				for k := 0; k < n; k++ {
					wkp, wkq := w.At(k, p), w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk, wqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				if withVectors {
					for k := 0; k < n; k++ {
						vkp, vkq := v.At(k, p), v.At(k, q)
						v.Set(k, p, c*vkp-s*vkq)
						v.Set(k, q, s*vkp+c*vkq)
					}
				}
			}
		}
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = w.At(i, i)
	}
	order := make([]int, n)
	for k := range order {
		order[k] = k
	}
	sort.SliceStable(order, func(a, b int) bool { return vals[order[a]] > vals[order[b]] })
	out := &Eigen{Values: make([]float64, n)}
	for dst, src := range order {
		out.Values[dst] = vals[src]
	}
	if withVectors {
		vm := matrix.New(n, n)
		for dst, src := range order {
			for i := 0; i < n; i++ {
				vm.Set(i, dst, v.At(i, src))
			}
		}
		out.Vectors = vm
	}
	return out, nil
}

// hessenberg reduces a to upper Hessenberg form by Householder similarity
// transformations (in place on a copy).
func hessenberg(a *matrix.Matrix) *matrix.Matrix {
	n := a.Rows
	h := a.Clone()
	for k := 0; k < n-2; k++ {
		var norm float64
		for i := k + 1; i < n; i++ {
			norm = math.Hypot(norm, h.At(i, k))
		}
		if norm == 0 {
			continue
		}
		if h.At(k+1, k) < 0 {
			norm = -norm
		}
		v := make([]float64, n)
		for i := k + 1; i < n; i++ {
			v[i] = h.At(i, k) / norm
		}
		v[k+1] += 1
		beta := v[k+1]
		// H <- P·H
		for j := k; j < n; j++ {
			var s float64
			for i := k + 1; i < n; i++ {
				s += v[i] * h.At(i, j)
			}
			s = -s / beta
			for i := k + 1; i < n; i++ {
				h.Set(i, j, h.At(i, j)+s*v[i])
			}
		}
		// H <- H·P
		for i := 0; i < n; i++ {
			var s float64
			for j := k + 1; j < n; j++ {
				s += h.At(i, j) * v[j]
			}
			s = -s / beta
			for j := k + 1; j < n; j++ {
				h.Set(i, j, h.At(i, j)+s*v[j])
			}
		}
	}
	return h
}

// generalEigen computes the real spectrum of a general matrix via shifted
// QR on the Hessenberg form; complex pairs yield ErrComplexEigen.
func generalEigen(a *matrix.Matrix, withVectors bool) (*Eigen, error) {
	n := a.Rows
	h := hessenberg(a)
	scale := 1 + a.MaxAbs()
	vals := make([]float64, 0, n)
	hi := n - 1
	iter := 0
	for hi >= 0 {
		// Deflate converged subdiagonal entries.
		for hi > 0 && math.Abs(h.At(hi, hi-1)) < 1e-13*scale {
			vals = append(vals, h.At(hi, hi))
			hi--
			iter = 0
		}
		if hi == 0 {
			vals = append(vals, h.At(0, 0))
			break
		}
		if iter++; iter > qrMaxIter {
			// The trailing 2×2 block refuses to split: complex pair?
			p, q := hi-1, hi
			tr := h.At(p, p) + h.At(q, q)
			det := h.At(p, p)*h.At(q, q) - h.At(p, q)*h.At(q, p)
			disc := tr*tr/4 - det
			if disc < 0 {
				return nil, ErrComplexEigen
			}
			r := math.Sqrt(disc)
			vals = append(vals, tr/2+r, tr/2-r)
			hi -= 2
			iter = 0
			continue
		}
		// Wilkinson shift from the trailing 2×2 block.
		p, q := hi-1, hi
		tr := h.At(p, p) + h.At(q, q)
		det := h.At(p, p)*h.At(q, q) - h.At(p, q)*h.At(q, p)
		disc := tr*tr/4 - det
		var shift float64
		if disc >= 0 {
			r := math.Sqrt(disc)
			e1, e2 := tr/2+r, tr/2-r
			if math.Abs(e1-h.At(q, q)) < math.Abs(e2-h.At(q, q)) {
				shift = e1
			} else {
				shift = e2
			}
		} else {
			shift = h.At(q, q) // complex pair: use the real part; the
			// 2×2 deflation above will catch persistent blocks
		}
		qrStepHessenberg(h, hi, shift)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	out := &Eigen{Values: vals}
	if withVectors {
		vecs, err := inverseIterationVectors(a, vals)
		if err != nil {
			return nil, err
		}
		out.Vectors = vecs
	}
	return out, nil
}

// qrStepHessenberg applies one shifted QR step (Givens based) to the
// leading (hi+1)×(hi+1) block of the Hessenberg matrix h.
func qrStepHessenberg(h *matrix.Matrix, hi int, shift float64) {
	n := hi + 1
	cs := make([]float64, n-1)
	sn := make([]float64, n-1)
	for i := 0; i < n; i++ {
		h.Set(i, i, h.At(i, i)-shift)
	}
	// QR by Givens rotations on the subdiagonal.
	for k := 0; k < n-1; k++ {
		x, y := h.At(k, k), h.At(k+1, k)
		r := math.Hypot(x, y)
		if r == 0 {
			cs[k], sn[k] = 1, 0
			continue
		}
		c, s := x/r, y/r
		cs[k], sn[k] = c, s
		for j := k; j < n; j++ {
			a1, a2 := h.At(k, j), h.At(k+1, j)
			h.Set(k, j, c*a1+s*a2)
			h.Set(k+1, j, -s*a1+c*a2)
		}
	}
	// RQ: apply the transposed rotations on the right.
	for k := 0; k < n-1; k++ {
		c, s := cs[k], sn[k]
		for i := 0; i <= k+1 && i < n; i++ {
			a1, a2 := h.At(i, k), h.At(i, k+1)
			h.Set(i, k, c*a1+s*a2)
			h.Set(i, k+1, -s*a1+c*a2)
		}
	}
	for i := 0; i < n; i++ {
		h.Set(i, i, h.At(i, i)+shift)
	}
}

// inverseIterationVectors recovers unit eigenvectors for the (real)
// eigenvalues via inverse iteration with a slightly perturbed shift.
func inverseIterationVectors(a *matrix.Matrix, vals []float64) (*matrix.Matrix, error) {
	n := a.Rows
	vecs := matrix.New(n, len(vals))
	scale := 1 + a.MaxAbs()
	for j, lambda := range vals {
		shift := lambda + 1e-9*scale // keep A-λI invertible
		shifted := a.Clone()
		for i := 0; i < n; i++ {
			shifted.Set(i, i, shifted.At(i, i)-shift)
		}
		lu, err := NewLU(shifted)
		if err != nil {
			// Exactly singular even with perturbation: nudge more.
			for i := 0; i < n; i++ {
				shifted.Set(i, i, shifted.At(i, i)-1e-6*scale)
			}
			lu, err = NewLU(shifted)
			if err != nil {
				return nil, err
			}
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = 1 / float64(n+i+1) // deterministic, not an eigvector of anything
		}
		for it := 0; it < 4; it++ {
			y, err := lu.SolveVec(x)
			if err != nil {
				return nil, err
			}
			var norm float64
			for _, v := range y {
				norm += v * v
			}
			norm = math.Sqrt(norm)
			if norm == 0 {
				break
			}
			for i := range y {
				y[i] /= norm
			}
			x = y
		}
		// Sign convention: largest-magnitude component positive.
		mi, mv := 0, math.Abs(x[0])
		for i, v := range x {
			if math.Abs(v) > mv {
				mi, mv = i, math.Abs(v)
			}
		}
		if x[mi] < 0 {
			for i := range x {
				x[i] = -x[i]
			}
		}
		for i := 0; i < n; i++ {
			vecs.Set(i, j, x[i])
		}
	}
	return vecs, nil
}

// Eigenvalues returns the spectrum in descending order (EVL).
func Eigenvalues(a *matrix.Matrix) ([]float64, error) {
	e, err := NewEigen(a, false)
	if err != nil {
		return nil, err
	}
	return e.Values, nil
}

// Eigenvectors returns the matrix of unit eigenvectors, one per column,
// ordered by descending eigenvalue (EVC).
func Eigenvectors(a *matrix.Matrix) (*matrix.Matrix, error) {
	e, err := NewEigen(a, true)
	if err != nil {
		return nil, err
	}
	return e.Vectors, nil
}
