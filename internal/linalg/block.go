package linalg

import (
	"math"
	"sync"

	"repro/internal/exec"
	"repro/internal/matrix"
)

// This file holds the tiled (block-partitioned) kernels over
// matrix.BlockMatrix grids. The parallel unit is an output tile —
// each output tile is produced by exactly one worker, and the inner
// reduction over input tiles runs in fixed ascending order — so
// results are bitwise-identical at any worker budget and any tile
// edge. MatMulBlocked and SYRKBlocked moreover visit every scalar
// product in exactly the order of their flat counterparts (ascending
// k with the same zero-skip), and QRBlocked applies reflectors to
// each column in the same ascending order as the flat Householder
// loop, so those three are bitwise-identical to the flat kernels too.
// CholeskyBlocked uses a genuinely blocked right-looking update whose
// association differs from the flat column loop; it is deterministic
// across workers and tile counts but only approximately equal to
// Cholesky.

// collectErr funnels the first error out of a ParallelFor body.
type collectErr struct {
	mu  sync.Mutex
	err error
}

func (e *collectErr) set(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
}

// inherit copies the spill regime of src (falling back to alt) onto a
// freshly built output matrix, so kernel outputs stay out-of-core
// when their inputs are.
func inherit(out, src, alt *matrix.BlockMatrix) {
	if sp, maxRes := src.SpillConfig(); sp != nil {
		out.EnableSpill(sp, maxRes)
	} else if alt != nil {
		if sp, maxRes := alt.SpillConfig(); sp != nil {
			out.EnableSpill(sp, maxRes)
		}
	}
}

// MatMulBlocked returns a·b over tile grids (SUMMA-style: each output
// tile accumulates its row-of-a × column-of-b tile products in
// ascending k-tile order). Requires matching tile edges. The result
// is bitwise-identical to MatMul on the flattened operands: per
// output element both kernels add the products a[i][k]·b[k][j] in
// ascending k, skipping a[i][k] == 0.
func MatMulBlocked(c *exec.Ctx, a, b *matrix.BlockMatrix) (*matrix.BlockMatrix, error) {
	if a.Cols != b.Rows {
		return nil, ErrShape
	}
	if a.Edge != b.Edge {
		return nil, ErrShape
	}
	out := matrix.NewBlockEdge(a.Rows, b.Cols, a.Edge)
	inherit(out, a, b)
	kt := a.TileCols()
	var ce collectErr
	c.ParallelFor(out.TileRows()*out.TileCols(), 1, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			if err := matMulTile(c, a, b, out, t/out.TileCols(), t%out.TileCols(), kt); err != nil {
				ce.set(err)
				return
			}
		}
	})
	if ce.err != nil {
		out.Free(c)
		return nil, ce.err
	}
	return out, nil
}

func matMulTile(c *exec.Ctx, a, b, out *matrix.BlockMatrix, ti, tj, kt int) error {
	h, w := out.TileDims(ti, tj)
	ot, err := out.Pin(c, ti, tj)
	if err != nil {
		return err
	}
	defer out.Unpin(ti, tj)
	for tk := 0; tk < kt; tk++ {
		at, err := a.PinRead(c, ti, tk)
		if err != nil {
			return err
		}
		bt, err := b.PinRead(c, tk, tj)
		if err != nil {
			a.Unpin(ti, tk)
			return err
		}
		_, ka := a.TileDims(ti, tk)
		for i := 0; i < h; i++ {
			arow := at[i*ka : (i+1)*ka]
			orow := ot[i*w : (i+1)*w]
			for l, ail := range arow {
				if ail == 0 {
					continue
				}
				brow := bt[l*w : (l+1)*w]
				for j, bv := range brow {
					orow[j] += ail * bv
				}
			}
		}
		a.Unpin(ti, tk)
		b.Unpin(tk, tj)
	}
	return nil
}

// SYRKBlocked returns aᵀ·a over a tile grid, computing upper-triangle
// output tiles (each accumulating its column-pair tile products in
// ascending row-tile order) and mirroring the lower triangle.
// Bitwise-identical to SYRK on the flattened operand: per output
// element both kernels add a[r][i]·a[r][j] in ascending r, skipping
// a[r][i] == 0, and the mirror is a copy.
func SYRKBlocked(c *exec.Ctx, a *matrix.BlockMatrix) (*matrix.BlockMatrix, error) {
	n := a.Cols
	out := matrix.NewBlockEdge(n, n, a.Edge)
	inherit(out, a, nil)
	tc := out.TileCols()
	// Upper-triangle tile list in fixed (row-major) order.
	var upper [][2]int
	for ti := 0; ti < tc; ti++ {
		for tj := ti; tj < tc; tj++ {
			upper = append(upper, [2]int{ti, tj})
		}
	}
	rt := a.TileRows()
	var ce collectErr
	c.ParallelFor(len(upper), 1, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			if err := syrkTile(c, a, out, upper[t][0], upper[t][1], rt); err != nil {
				ce.set(err)
				return
			}
		}
	})
	if ce.err == nil {
		// Mirror the strict lower triangle from the computed upper.
		var lower [][2]int
		for ti := 1; ti < tc; ti++ {
			for tj := 0; tj < ti; tj++ {
				lower = append(lower, [2]int{ti, tj})
			}
		}
		c.ParallelFor(len(lower), 1, func(lo, hi int) {
			for t := lo; t < hi; t++ {
				ti, tj := lower[t][0], lower[t][1]
				if err := mirrorTile(c, out, ti, tj); err != nil {
					ce.set(err)
					return
				}
			}
		})
		if ce.err == nil {
			// Diagonal tiles mirror within themselves.
			for ti := 0; ti < tc; ti++ {
				h, w := out.TileDims(ti, ti)
				ot, err := out.Pin(c, ti, ti)
				if err != nil {
					ce.set(err)
					break
				}
				for i := 0; i < h; i++ {
					for j := i + 1; j < w; j++ {
						ot[j*w+i] = ot[i*w+j]
					}
				}
				out.Unpin(ti, ti)
			}
		}
	}
	if ce.err != nil {
		out.Free(c)
		return nil, ce.err
	}
	return out, nil
}

func syrkTile(c *exec.Ctx, a, out *matrix.BlockMatrix, ti, tj, rt int) error {
	h, w := out.TileDims(ti, tj)
	ot, err := out.Pin(c, ti, tj)
	if err != nil {
		return err
	}
	defer out.Unpin(ti, tj)
	for tr := 0; tr < rt; tr++ {
		ai, err := a.PinRead(c, tr, ti)
		if err != nil {
			return err
		}
		aj := ai
		if tj != ti {
			aj, err = a.PinRead(c, tr, tj)
			if err != nil {
				a.Unpin(tr, ti)
				return err
			}
		}
		rh, wi := a.TileDims(tr, ti)
		for r := 0; r < rh; r++ {
			irow := ai[r*wi : (r+1)*wi]
			jrow := aj[r*w : (r+1)*w]
			for i := 0; i < h; i++ {
				ari := irow[i]
				if ari == 0 {
					continue
				}
				orow := ot[i*w : (i+1)*w]
				j0 := 0
				if tj == ti {
					j0 = i // only j ≥ i on diagonal tiles
				}
				for j := j0; j < w; j++ {
					orow[j] += ari * jrow[j]
				}
			}
		}
		a.Unpin(tr, ti)
		if tj != ti {
			a.Unpin(tr, tj)
		}
	}
	return nil
}

// mirrorTile fills lower tile (ti, tj) with the transpose of upper
// tile (tj, ti).
func mirrorTile(c *exec.Ctx, out *matrix.BlockMatrix, ti, tj int) error {
	h, w := out.TileDims(ti, tj)
	ot, err := out.Pin(c, ti, tj)
	if err != nil {
		return err
	}
	defer out.Unpin(ti, tj)
	src, err := out.PinRead(c, tj, ti)
	if err != nil {
		return err
	}
	defer out.Unpin(tj, ti)
	_, sw := out.TileDims(tj, ti)
	for i := 0; i < h; i++ {
		for j := 0; j < w; j++ {
			ot[i*w+j] = src[j*sw+i]
		}
	}
	return nil
}

// QRBlocked factors a block matrix with panel-organized Householder
// reflections: each Edge-wide column panel is factored in place, then
// the panel's reflectors update the trailing columns panel-parallel
// through the context's ParallelFor. Per trailing column the
// reflectors apply in the same ascending order (with identical
// per-reflector arithmetic) as the flat loop, so the returned
// factorization — v, tau, and everything derived from them — is
// bitwise-identical to NewQR on the flattened operand.
func QRBlocked(c *exec.Ctx, a *matrix.BlockMatrix) (*QR, error) {
	if a.Rows < a.Cols {
		return nil, ErrShape
	}
	m, n := a.Rows, a.Cols
	// Gather tile columns into the column-major working form, panel by
	// panel (no intermediate flat row-major copy).
	v := make([][]float64, n)
	for j := 0; j < n; j++ {
		v[j] = make([]float64, m)
	}
	var ce collectErr
	c.ParallelFor(a.TileRows()*a.TileCols(), 1, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			ti, tj := t/a.TileCols(), t%a.TileCols()
			h, w := a.TileDims(ti, tj)
			data, err := a.PinRead(c, ti, tj)
			if err != nil {
				ce.set(err)
				return
			}
			for r := 0; r < h; r++ {
				gi := ti*a.Edge + r
				for jj := 0; jj < w; jj++ {
					v[tj*a.Edge+jj][gi] = data[r*w+jj]
				}
			}
			a.Unpin(ti, tj)
		}
	})
	if ce.err != nil {
		return nil, ce.err
	}
	tau := make([]float64, n)
	qrPanels(c, v, tau, m, n, a.Edge)
	return &QR{v: v, tau: tau, rows: m, cols: n, workers: c.Workers()}, nil
}

// qrPanels runs the Householder loop in column panels of width panel:
// reflectors within the current panel are formed and applied to the
// panel serially (they depend on each other), then the whole panel's
// reflectors sweep the trailing columns through ParallelFor. Each
// trailing column receives every reflector in ascending order, so the
// factorization matches the flat newQR bit for bit.
func qrPanels(c *exec.Ctx, v [][]float64, tau []float64, m, n, panel int) {
	if panel < 1 {
		panel = 1
	}
	// Engage the trailing fan-out on the same work scale as the flat
	// applyReflector (about 1<<15 flops per sweep).
	minCols := max(1, (1<<15)/(m*panel)+1)
	for p0 := 0; p0 < n; p0 += panel {
		p1 := min(p0+panel, n)
		for k := p0; k < p1; k++ {
			ck := v[k]
			var norm float64
			for _, x := range ck[k:] {
				norm = math.Hypot(norm, x)
			}
			if norm == 0 {
				tau[k] = 0
				continue
			}
			if ck[k] < 0 {
				norm = -norm
			}
			inv := 1 / norm
			for i := k; i < m; i++ {
				ck[i] *= inv
			}
			ck[k]++
			for j := k + 1; j < p1; j++ {
				applyReflectorTo(ck, v[j], k, m)
			}
			tau[k] = -norm
		}
		if p1 < n {
			c.ParallelFor(n-p1, minCols, func(lo, hi int) {
				for j := p1 + lo; j < p1+hi; j++ {
					cj := v[j]
					for k := p0; k < p1; k++ {
						if v[k][k] == 0 {
							continue // zero-norm column: no reflector stored
						}
						applyReflectorTo(v[k], cj, k, m)
					}
				}
			})
		}
	}
}

// CholeskyBlocked factors a symmetric positive definite block matrix
// into its upper Cholesky factor R (A = Rᵀ·R) with a right-looking
// panel algorithm: factor the diagonal tile, triangular-solve the
// tile row to its right (tile-parallel), rank-update the trailing
// tiles (tile-parallel, each tile owned by one worker with the panel
// rows folded in ascending order). Deterministic at any worker budget
// and tile edge; the association differs from the flat Cholesky, so
// results agree with it only to rounding.
func CholeskyBlocked(c *exec.Ctx, a *matrix.BlockMatrix) (*matrix.BlockMatrix, error) {
	if a.Rows != a.Cols {
		return nil, ErrShape
	}
	if err := checkBlockSymmetric(c, a); err != nil {
		return nil, err
	}
	n := a.Cols
	u := matrix.NewBlockEdge(n, n, a.Edge)
	inherit(u, a, nil)
	tc := u.TileCols()
	// Copy the upper triangle of a into the working factor.
	var ce collectErr
	c.ParallelFor(tc*(tc+1)/2, 1, func(lo, hi int) {
		t := 0
		for ti := 0; ti < tc; ti++ {
			for tj := ti; tj < tc; tj++ {
				if t >= lo && t < hi {
					if err := copyTile(c, a, u, ti, tj); err != nil {
						ce.set(err)
						return
					}
				}
				t++
			}
		}
	})
	if ce.err != nil {
		u.Free(c)
		return nil, ce.err
	}
	for tk := 0; tk < tc; tk++ {
		if err := cholStep(c, u, tk, tc); err != nil {
			u.Free(c)
			return nil, err
		}
	}
	return u, nil
}

func copyTile(c *exec.Ctx, src, dst *matrix.BlockMatrix, ti, tj int) error {
	s, err := src.PinRead(c, ti, tj)
	if err != nil {
		return err
	}
	defer src.Unpin(ti, tj)
	d, err := dst.Pin(c, ti, tj)
	if err != nil {
		return err
	}
	copy(d, s)
	dst.Unpin(ti, tj)
	return nil
}

// cholStep performs one right-looking panel step on tile row tk.
func cholStep(c *exec.Ctx, u *matrix.BlockMatrix, tk, tc int) error {
	diag, err := u.Pin(c, tk, tk)
	if err != nil {
		return err
	}
	h, _ := u.TileDims(tk, tk)
	// In-place upper Cholesky of the (already updated) diagonal tile —
	// the same column loop as the flat kernel, confined to one tile.
	for j := 0; j < h; j++ {
		var d float64
		for k := 0; k < j; k++ {
			var s float64
			for i := 0; i < k; i++ {
				s += diag[i*h+k] * diag[i*h+j]
			}
			if diag[k*h+k] == 0 {
				u.Unpin(tk, tk)
				return ErrNotPositiveDefinite
			}
			s = (diag[k*h+j] - s) / diag[k*h+k]
			diag[k*h+j] = s
			d += s * s
		}
		d = diag[j*h+j] - d
		if d <= 0 {
			u.Unpin(tk, tk)
			return ErrNotPositiveDefinite
		}
		diag[j*h+j] = math.Sqrt(d)
		for i := j + 1; i < h; i++ {
			diag[i*h+j] = 0 // keep the factor's lower triangle clean
		}
	}
	// Triangular solve of the tile row: U[tk][tj] = R_kkᵀ⁻¹ · T.
	var ce collectErr
	c.ParallelFor(tc-(tk+1), 1, func(lo, hi int) {
		for tj := tk + 1 + lo; tj < tk+1+hi; tj++ {
			t, err := u.Pin(c, tk, tj)
			if err != nil {
				ce.set(err)
				return
			}
			_, w := u.TileDims(tk, tj)
			for jj := 0; jj < w; jj++ {
				for k := 0; k < h; k++ {
					s := t[k*w+jj]
					for i := 0; i < k; i++ {
						s -= diag[i*h+k] * t[i*w+jj]
					}
					t[k*w+jj] = s / diag[k*h+k]
				}
			}
			u.Unpin(tk, tj)
		}
	})
	u.Unpin(tk, tk)
	if ce.err != nil {
		return ce.err
	}
	// Trailing rank update: tile (ti, tj) -= U[tk][ti]ᵀ · U[tk][tj],
	// one worker per trailing tile, panel rows folded ascending.
	var trail [][2]int
	for ti := tk + 1; ti < tc; ti++ {
		for tj := ti; tj < tc; tj++ {
			trail = append(trail, [2]int{ti, tj})
		}
	}
	c.ParallelFor(len(trail), 1, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			ti, tj := trail[t][0], trail[t][1]
			ki, err := u.PinRead(c, tk, ti)
			if err != nil {
				ce.set(err)
				return
			}
			kj := ki
			if tj != ti {
				kj, err = u.PinRead(c, tk, tj)
				if err != nil {
					u.Unpin(tk, ti)
					ce.set(err)
					return
				}
			}
			dst, err := u.Pin(c, ti, tj)
			if err != nil {
				u.Unpin(tk, ti)
				if tj != ti {
					u.Unpin(tk, tj)
				}
				ce.set(err)
				return
			}
			hi2, wi := u.TileDims(tk, ti)
			_, w := u.TileDims(ti, tj)
			for r := 0; r < hi2; r++ {
				irow := ki[r*wi : (r+1)*wi]
				jrow := kj[r*w : (r+1)*w]
				for i := 0; i < wi; i++ {
					uri := irow[i]
					if uri == 0 {
						continue
					}
					drow := dst[i*w : (i+1)*w]
					for j := 0; j < w; j++ {
						drow[j] -= uri * jrow[j]
					}
				}
			}
			u.Unpin(ti, tj)
			u.Unpin(tk, ti)
			if tj != ti {
				u.Unpin(tk, tj)
			}
		}
	})
	return ce.err
}

// checkBlockSymmetric mirrors the flat Cholesky's precondition: the
// matrix must be symmetric within 1e-8·(1+max|a|).
func checkBlockSymmetric(c *exec.Ctx, a *matrix.BlockMatrix) error {
	tc := a.TileCols()
	maxAbs := 0.0
	for ti := 0; ti < tc; ti++ {
		for tj := 0; tj < tc; tj++ {
			data, err := a.PinRead(c, ti, tj)
			if err != nil {
				return err
			}
			for _, v := range data {
				if av := math.Abs(v); av > maxAbs {
					maxAbs = av
				}
			}
			a.Unpin(ti, tj)
		}
	}
	tol := 1e-8 * (1 + maxAbs)
	for ti := 0; ti < tc; ti++ {
		for tj := ti; tj < tc; tj++ {
			up, err := a.PinRead(c, ti, tj)
			if err != nil {
				return err
			}
			lo := up
			if tj != ti {
				lo, err = a.PinRead(c, tj, ti)
				if err != nil {
					a.Unpin(ti, tj)
					return err
				}
			}
			h, w := a.TileDims(ti, tj)
			_, lw := a.TileDims(tj, ti)
			bad := false
			for i := 0; i < h && !bad; i++ {
				for j := 0; j < w; j++ {
					if math.Abs(up[i*w+j]-lo[j*lw+i]) > tol {
						bad = true
						break
					}
				}
			}
			a.Unpin(ti, tj)
			if tj != ti {
				a.Unpin(tj, ti)
			}
			if bad {
				return ErrNotPositiveDefinite
			}
		}
	}
	return nil
}
