package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

// TestQuickSolveRoundTrip: x = Solve(nil, A, A·x₀) recovers x₀ for random
// well-conditioned systems.
func TestQuickSolveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := wellConditioned(rng, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := MatVec(a, want)
		got, err := Solve(nil, a, b)
		if err != nil {
			return false
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-7*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickDetProduct: det(A·B) = det(A)·det(B).
func TestQuickDetProduct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(7)
		a := wellConditioned(rng, n)
		b := wellConditioned(rng, n)
		da, err := Det(a)
		if err != nil {
			return false
		}
		db, err := Det(b)
		if err != nil {
			return false
		}
		dab, err := Det(MatMul(nil, a, b))
		if err != nil {
			return false
		}
		return math.Abs(dab-da*db) <= 1e-6*(1+math.Abs(da*db))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickQRReconstruction: Q·R = A and QᵀQ = I for random tall
// matrices, both parallel and serial variants.
func TestQuickQRReconstruction(t *testing.T) {
	f := func(seed int64, serial bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		m := n + rng.Intn(20)
		a := randMatrix(rng, m, n)
		var d *QR
		var err error
		if serial {
			d, err = NewQRSerial(a)
		} else {
			d, err = NewQR(nil, a)
		}
		if err != nil {
			return false
		}
		q, r := d.Q(), d.R()
		return matrix.ApproxEqual(MatMul(nil, q, r), a, 1e-8) &&
			matrix.ApproxEqual(CrossProduct(nil, q, q), matrix.Identity(n), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickSVDSingularValuesMatchEigen: the singular values of A are the
// square roots of the eigenvalues of AᵀA.
func TestQuickSVDSingularValuesMatchEigen(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		m := n + rng.Intn(10)
		a := randMatrix(rng, m, n)
		sv, err := SingularValues(nil, a)
		if err != nil {
			return false
		}
		ev, err := Eigenvalues(CrossProduct(nil, a, a))
		if err != nil {
			return false
		}
		for i := range sv {
			lam := ev[i]
			if lam < 0 {
				lam = 0
			}
			if math.Abs(sv[i]-math.Sqrt(lam)) > 1e-6*(1+sv[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickCholeskySolvesSPD: RᵀR = A with R upper triangular, for random
// SPD matrices.
func TestQuickCholeskySolvesSPD(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a := spd(rng, n)
		r, err := Cholesky(a)
		if err != nil {
			return false
		}
		return matrix.ApproxEqual(CrossProduct(nil, r, r), a, 1e-7*(1+a.MaxAbs()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickRankBounds: rank is at most min(m,n) and equals n for
// well-conditioned square matrices.
func TestQuickRankBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		m := n + rng.Intn(10)
		a := randMatrix(rng, m, n)
		r, err := Rank(nil, a)
		if err != nil {
			return false
		}
		if r > n {
			return false
		}
		sq := wellConditioned(rng, n)
		rs, err := Rank(nil, sq)
		if err != nil {
			return false
		}
		return rs == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickMatMulAssociativity: (A·B)·C = A·(B·C) on small random chains.
func TestQuickMatMulAssociativity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(8)
		k := 1 + rng.Intn(8)
		l := 1 + rng.Intn(8)
		n := 1 + rng.Intn(8)
		a := randMatrix(rng, m, k)
		b := randMatrix(rng, k, l)
		c := randMatrix(rng, l, n)
		lhs := MatMul(nil, MatMul(nil, a, b), c)
		rhs := MatMul(nil, a, MatMul(nil, b, c))
		return matrix.ApproxEqual(lhs, rhs, 1e-8*(1+lhs.MaxAbs()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
