package linalg

import (
	"errors"
	"math"

	"repro/internal/matrix"
)

// ErrNotPositiveDefinite is returned by Cholesky for inputs that are not
// symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky returns the upper-triangular factor R with A = Rᵀ·R (the CHF
// operation; R's chol returns the upper factor). The input must be
// symmetric positive definite.
func Cholesky(a *matrix.Matrix) (*matrix.Matrix, error) {
	if a.Rows != a.Cols {
		return nil, ErrShape
	}
	n := a.Rows
	if !a.IsSymmetric(1e-8 * (1 + a.MaxAbs())) {
		return nil, ErrNotPositiveDefinite
	}
	r := matrix.New(n, n)
	for j := 0; j < n; j++ {
		var d float64
		for k := 0; k < j; k++ {
			var s float64
			for i := 0; i < k; i++ {
				s += r.At(i, k) * r.At(i, j)
			}
			if r.At(k, k) == 0 {
				return nil, ErrNotPositiveDefinite
			}
			s = (a.At(k, j) - s) / r.At(k, k)
			r.Set(k, j, s)
			d += s * s
		}
		d = a.At(j, j) - d
		if d <= 0 {
			return nil, ErrNotPositiveDefinite
		}
		r.Set(j, j, math.Sqrt(d))
	}
	return r, nil
}
