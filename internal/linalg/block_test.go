package linalg

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/exec"
	"repro/internal/matrix"
)

// blockRandMatrix builds a deterministic test matrix with negatives,
// exact zeros (to exercise the kernels' zero-skip), and magnitude
// spread.
func blockRandMatrix(rng *rand.Rand, rows, cols int) *matrix.Matrix {
	m := matrix.New(rows, cols)
	for i := range m.Data {
		switch rng.Intn(8) {
		case 0:
			m.Data[i] = 0
		case 1:
			m.Data[i] = -rng.Float64() * 100
		default:
			m.Data[i] = (rng.Float64() - 0.5) * 10
		}
	}
	return m
}

// edgeForTiles picks a tile edge so an n-wide matrix splits into
// exactly `tiles` tile columns (the last one possibly ragged).
func edgeForTiles(n, tiles int) int {
	return max(1, (n+tiles-1)/tiles)
}

func sameBits(t *testing.T, name string, got, want *matrix.Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("%s: element %d = %v (bits %x), want %v (bits %x)",
				name, i, got.Data[i], math.Float64bits(got.Data[i]), want.Data[i], math.Float64bits(want.Data[i]))
		}
	}
}

var blockWorkerGrid = []int{1, 2, 8}
var blockTileGrid = []int{1, 2, 7, 16}

// TestBlockedMatMulBitwiseFlat: the tiled product must be
// bitwise-identical to the flat kernel at every worker budget and
// tile count, including non-divisible edges (n = tile ± 1 cases fall
// out of the 7- and 16-tile grids over prime-ish sizes).
func TestBlockedMatMulBitwiseFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, dims := range [][3]int{{97, 53, 61}, {64, 64, 64}, {33, 65, 31}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := blockRandMatrix(rng, m, k)
		b := blockRandMatrix(rng, k, n)
		want := MatMul(exec.New(1), a, b)
		for _, workers := range blockWorkerGrid {
			c := exec.New(workers)
			for _, tiles := range blockTileGrid {
				edge := edgeForTiles(max(m, max(k, n)), tiles)
				ab, err := matrix.BlockOf(c, a, edge)
				if err != nil {
					t.Fatal(err)
				}
				bb, err := matrix.BlockOf(c, b, edge)
				if err != nil {
					t.Fatal(err)
				}
				ob, err := MatMulBlocked(c, ab, bb)
				if err != nil {
					t.Fatalf("MatMulBlocked(%v, workers=%d, tiles=%d): %v", dims, workers, tiles, err)
				}
				got, err := ob.Flatten(c)
				if err != nil {
					t.Fatal(err)
				}
				sameBits(t, "blocked matmul", got, want)
				c.Arena().FreeFloats(got.Data)
				ab.Free(c)
				bb.Free(c)
				ob.Free(c)
			}
		}
	}
}

// TestBlockedSYRKBitwiseFlat mirrors the MatMul test for aᵀ·a.
func TestBlockedSYRKBitwiseFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range [][2]int{{89, 47}, {50, 17}} {
		m, n := dims[0], dims[1]
		a := blockRandMatrix(rng, m, n)
		want := SYRK(exec.New(1), a)
		for _, workers := range blockWorkerGrid {
			c := exec.New(workers)
			for _, tiles := range blockTileGrid {
				edge := edgeForTiles(max(m, n), tiles)
				ab, err := matrix.BlockOf(c, a, edge)
				if err != nil {
					t.Fatal(err)
				}
				ob, err := SYRKBlocked(c, ab)
				if err != nil {
					t.Fatalf("SYRKBlocked(%v, workers=%d, tiles=%d): %v", dims, workers, tiles, err)
				}
				got, err := ob.Flatten(c)
				if err != nil {
					t.Fatal(err)
				}
				sameBits(t, "blocked syrk", got, want)
				c.Arena().FreeFloats(got.Data)
				ab.Free(c)
				ob.Free(c)
			}
		}
	}
}

// TestBlockedQRBitwiseFlat: the panel-blocked factorization must
// reproduce the flat Householder loop bit for bit — Q and R both.
func TestBlockedQRBitwiseFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, dims := range [][2]int{{90, 37}, {65, 65}, {33, 9}} {
		m, n := dims[0], dims[1]
		a := blockRandMatrix(rng, m, n)
		ref, err := NewQRSerial(a)
		if err != nil {
			t.Fatal(err)
		}
		wantQ, wantR := ref.Q(), ref.R()
		for _, workers := range blockWorkerGrid {
			c := exec.New(workers)
			for _, tiles := range blockTileGrid {
				edge := edgeForTiles(m, tiles)
				ab, err := matrix.BlockOf(c, a, edge)
				if err != nil {
					t.Fatal(err)
				}
				d, err := QRBlocked(c, ab)
				if err != nil {
					t.Fatalf("QRBlocked(%v, workers=%d, tiles=%d): %v", dims, workers, tiles, err)
				}
				sameBits(t, "blocked QR: Q", d.Q(), wantQ)
				sameBits(t, "blocked QR: R", d.R(), wantR)
				ab.Free(c)
			}
		}
	}
}

// TestBlockedCholeskyDeterministic: the blocked Cholesky is only
// approximately equal to the flat kernel (its blocked association
// rounds differently) but must be bitwise self-identical across
// worker budgets for a fixed tile edge, and close to the flat factor.
func TestBlockedCholeskyDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 61
	g := blockRandMatrix(rng, n+9, n)
	spd := SYRK(exec.New(1), g) // gᵀg is SPD (full rank w.h.p.)
	for i := 0; i < n; i++ {
		spd.Set(i, i, spd.At(i, i)+float64(n)) // safely away from singular
	}
	want, err := Cholesky(spd)
	if err != nil {
		t.Fatal(err)
	}
	for _, tiles := range blockTileGrid {
		edge := edgeForTiles(n, tiles)
		var ref *matrix.Matrix
		for _, workers := range blockWorkerGrid {
			c := exec.New(workers)
			ab, err := matrix.BlockOf(c, spd, edge)
			if err != nil {
				t.Fatal(err)
			}
			ub, err := CholeskyBlocked(c, ab)
			if err != nil {
				t.Fatalf("CholeskyBlocked(workers=%d, tiles=%d): %v", workers, tiles, err)
			}
			got, err := ub.Flatten(c)
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = got
				if !matrix.ApproxEqual(got, want, 1e-6*(1+want.MaxAbs())) {
					t.Fatalf("blocked Cholesky drifted from flat factor (tiles=%d)", tiles)
				}
			} else {
				sameBits(t, "blocked cholesky across workers", got, ref)
			}
			ab.Free(c)
			ub.Free(c)
		}
	}
	// Reject a non-SPD input like the flat kernel does.
	c := exec.New(2)
	bad := blockRandMatrix(rng, 8, 8)
	bb, err := matrix.BlockOf(c, bad, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CholeskyBlocked(c, bb); err != ErrNotPositiveDefinite {
		t.Fatalf("CholeskyBlocked(non-SPD) = %v, want ErrNotPositiveDefinite", err)
	}
}

// TestBlockedMatMulSerialHeuristic: a 1-worker context and a
// mid-sized input must both stay serial under the per-worker
// threshold (the PR-8 heuristic fix) while producing identical
// results either way.
func TestBlockedMatMulSerialHeuristic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := blockRandMatrix(rng, 48, 48) // 48³ ≈ 110k flops < parallelThreshold
	b := blockRandMatrix(rng, 48, 48)
	if w := fanoutWorkers(exec.New(8), 48*48*48); w != 1 {
		t.Fatalf("fanoutWorkers(mid-sized) = %d, want 1 (per-worker threshold)", w)
	}
	if w := fanoutWorkers(exec.New(1), 1<<30); w != 1 {
		t.Fatalf("fanoutWorkers(1-worker ctx) = %d, want 1", w)
	}
	if w := fanoutWorkers(exec.New(4), 1<<30); w != 4 {
		t.Fatalf("fanoutWorkers(big input) = %d, want the full budget 4", w)
	}
	sameBits(t, "heuristic respects results", MatMul(exec.New(8), a, b), MatMul(exec.New(1), a, b))
}
