package linalg

import (
	"errors"
	"math"

	"repro/internal/exec"
	"repro/internal/matrix"
)

// ErrSingular is returned when a factorization or solve encounters a
// (numerically) singular matrix.
var ErrSingular = errors.New("linalg: singular matrix")

// ErrShape is returned when operand dimensions do not satisfy the
// operation's shape restriction (paper Table 1).
var ErrShape = errors.New("linalg: dimension mismatch")

// LU holds a compact LU factorization with partial pivoting: P·A = L·U.
// L (unit lower) and U share the factors matrix; piv records row swaps.
type LU struct {
	factors *matrix.Matrix
	piv     []int
	sign    float64 // determinant sign from the permutation
}

// NewLU factors a square matrix with partial pivoting.
func NewLU(a *matrix.Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, ErrShape
	}
	n := a.Rows
	f := a.Clone()
	piv := make([]int, n)
	sign := 1.0
	for k := 0; k < n; k++ {
		// Pivot: largest |value| in column k at or below the diagonal.
		p := k
		mx := math.Abs(f.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(f.At(i, k)); v > mx {
				mx, p = v, i
			}
		}
		if mx == 0 {
			return nil, ErrSingular
		}
		piv[k] = p
		if p != k {
			rk, rp := f.Row(k), f.Row(p)
			for j := 0; j < n; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
			sign = -sign
		}
		pivot := f.At(k, k)
		for i := k + 1; i < n; i++ {
			l := f.At(i, k) / pivot
			f.Set(i, k, l)
			if l == 0 {
				continue
			}
			ri, rk := f.Row(i), f.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= l * rk[j]
			}
		}
	}
	return &LU{factors: f, piv: piv, sign: sign}, nil
}

// Det returns the determinant of the factored matrix.
func (lu *LU) Det() float64 {
	d := lu.sign
	n := lu.factors.Rows
	for i := 0; i < n; i++ {
		d *= lu.factors.At(i, i)
	}
	return d
}

// SolveVec solves A·x = b in place of a copy of b.
func (lu *LU) SolveVec(b []float64) ([]float64, error) {
	n := lu.factors.Rows
	if len(b) != n {
		return nil, ErrShape
	}
	x := append([]float64(nil), b...)
	// Apply the permutation, then forward and back substitution.
	for k := 0; k < n; k++ {
		if p := lu.piv[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	for k := 0; k < n; k++ {
		row := lu.factors.Row(k)
		for j := 0; j < k; j++ {
			x[k] -= row[j] * x[j]
		}
	}
	for k := n - 1; k >= 0; k-- {
		row := lu.factors.Row(k)
		for j := k + 1; j < n; j++ {
			x[k] -= row[j] * x[j]
		}
		x[k] /= row[k]
	}
	return x, nil
}

// Solve solves A·X = B column by column.
func (lu *LU) Solve(b *matrix.Matrix) (*matrix.Matrix, error) {
	if b.Rows != lu.factors.Rows {
		return nil, ErrShape
	}
	out := matrix.New(b.Rows, b.Cols)
	for j := 0; j < b.Cols; j++ {
		x, err := lu.SolveVec(b.Column(j))
		if err != nil {
			return nil, err
		}
		for i, v := range x {
			out.Set(i, j, v)
		}
	}
	return out, nil
}

// Inverse returns A⁻¹ (the INV operation) via LU with partial pivoting.
func Inverse(a *matrix.Matrix) (*matrix.Matrix, error) {
	lu, err := NewLU(a)
	if err != nil {
		return nil, err
	}
	return lu.Solve(matrix.Identity(a.Rows))
}

// Det returns the determinant (the DET operation).
func Det(a *matrix.Matrix) (float64, error) {
	if a.Rows != a.Cols {
		return 0, ErrShape
	}
	lu, err := NewLU(a)
	if err == ErrSingular {
		return 0, nil // exact zero pivot: determinant is 0
	}
	if err != nil {
		return 0, err
	}
	return lu.Det(), nil
}

// Solve implements the SOL operation: A·x = b. For square A it solves
// exactly via LU; for overdetermined systems (Rows > Cols) it returns the
// least-squares solution via QR, matching the paper's use of sol for
// regression workloads.
func Solve(c *exec.Ctx, a *matrix.Matrix, b []float64) ([]float64, error) {
	if a.Rows != len(b) {
		return nil, ErrShape
	}
	switch {
	case a.Rows == a.Cols:
		lu, err := NewLU(a)
		if err != nil {
			return nil, err
		}
		return lu.SolveVec(b)
	case a.Rows > a.Cols:
		return lstsq(c, a, b)
	default:
		return nil, ErrShape
	}
}
