package linalg

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

func randMatrix(rng *rand.Rand, m, n int) *matrix.Matrix {
	a := matrix.New(m, n)
	for k := range a.Data {
		a.Data[k] = rng.NormFloat64()
	}
	return a
}

// wellConditioned returns A = Q·D·Qᵀ-ish random square matrix with singular
// values bounded away from zero: random + n·I dominance trick.
func wellConditioned(rng *rand.Rand, n int) *matrix.Matrix {
	a := randMatrix(rng, n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n)+2)
	}
	return a
}

func spd(rng *rand.Rand, n int) *matrix.Matrix {
	b := randMatrix(rng, n, n)
	a := CrossProduct(nil, b, b) // BᵀB is PSD
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+1) // make it PD
	}
	return a
}

func TestMatMulSmall(t *testing.T) {
	a := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	b := matrix.FromRows([][]float64{{5, 6}, {7, 8}})
	got := MatMul(nil, a, b)
	want := matrix.FromRows([][]float64{{19, 22}, {43, 50}})
	if !matrix.ApproxEqual(got, want, 1e-12) {
		t.Fatalf("MatMul = %v", got)
	}
}

func TestMatMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 4, 5}, {64, 64, 64}, {65, 127, 33}, {200, 50, 120}} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randMatrix(rng, m, k), randMatrix(rng, k, n)
		got := MatMul(nil, a, b)
		want := matrix.New(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for l := 0; l < k; l++ {
					s += a.At(i, l) * b.At(l, j)
				}
				want.Set(i, j, s)
			}
		}
		if !matrix.ApproxEqual(got, want, 1e-9) {
			t.Fatalf("MatMul %v mismatch", dims)
		}
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("inner dimension mismatch should panic")
		}
	}()
	MatMul(nil, matrix.New(2, 3), matrix.New(2, 3))
}

func TestCrossOuterProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMatrix(rng, 7, 3)
	b := randMatrix(rng, 7, 4)
	cpd := CrossProduct(nil, a, b)
	if cpd.Rows != 3 || cpd.Cols != 4 {
		t.Fatalf("CPD shape %dx%d", cpd.Rows, cpd.Cols)
	}
	if !matrix.ApproxEqual(cpd, MatMul(nil, a.T(), b), 1e-12) {
		t.Error("CPD != AᵀB")
	}
	c := randMatrix(rng, 5, 3)
	d := randMatrix(rng, 6, 3)
	opd := OuterProduct(nil, c, d)
	if opd.Rows != 5 || opd.Cols != 6 {
		t.Fatalf("OPD shape %dx%d", opd.Rows, opd.Cols)
	}
	if !matrix.ApproxEqual(opd, MatMul(nil, c, d.T()), 1e-12) {
		t.Error("OPD != ABᵀ")
	}
}

func TestSYRK(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dims := range [][2]int{{5, 3}, {100, 20}, {301, 57}} {
		a := randMatrix(rng, dims[0], dims[1])
		got := SYRK(nil, a)
		want := CrossProduct(nil, a, a)
		if !matrix.ApproxEqual(got, want, 1e-9) {
			t.Fatalf("SYRK %v mismatch", dims)
		}
		if !got.IsSymmetric(0) {
			t.Fatal("SYRK result not symmetric")
		}
	}
	if SYRK(nil, matrix.New(0, 0)).Rows != 0 {
		t.Error("SYRK of empty broken")
	}
}

func TestMatVec(t *testing.T) {
	a := matrix.FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got := MatVec(a, []float64{1, -1})
	want := []float64{-1, -1, -1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MatVec = %v", got)
		}
	}
}

func TestLUInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 5, 20, 60} {
		a := wellConditioned(rng, n)
		inv, err := Inverse(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !matrix.ApproxEqual(MatMul(nil, a, inv), matrix.Identity(n), 1e-8) {
			t.Fatalf("n=%d: A·A⁻¹ != I", n)
		}
	}
}

func TestInversePaperExample(t *testing.T) {
	// Figure 3 of the paper: inv of [[6,7],[8,5]].
	a := matrix.FromRows([][]float64{{6, 7}, {8, 5}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.FromRows([][]float64{{-5.0 / 26, 7.0 / 26}, {8.0 / 26, -6.0 / 26}})
	if !matrix.ApproxEqual(inv, want, 1e-12) {
		t.Fatalf("inv = %v, want %v", inv, want)
	}
	// Rounded to the paper's two decimals: -0.19, 0.27, 0.31, -0.23.
	if math.Abs(inv.At(0, 0)-(-0.19)) > 0.005 || math.Abs(inv.At(1, 1)-(-0.23)) > 0.005 {
		t.Errorf("does not match paper rounding: %v", inv)
	}
}

func TestSingularInverse(t *testing.T) {
	a := matrix.FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Inverse(a); err != ErrSingular {
		t.Errorf("singular inverse err = %v", err)
	}
	if _, err := Inverse(matrix.New(2, 3)); err != ErrShape {
		t.Errorf("non-square inverse err = %v", err)
	}
}

func TestDet(t *testing.T) {
	a := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	d, err := Det(a)
	if err != nil || math.Abs(d-(-2)) > 1e-12 {
		t.Errorf("det = %v, %v", d, err)
	}
	s := matrix.FromRows([][]float64{{1, 2}, {2, 4}})
	d2, err := Det(s)
	if err != nil || d2 != 0 {
		t.Errorf("det singular = %v, %v", d2, err)
	}
	if _, err := Det(matrix.New(1, 2)); err != ErrShape {
		t.Error("non-square det accepted")
	}
	// det(AB) = det(A)det(B)
	rng := rand.New(rand.NewSource(5))
	x, y := wellConditioned(rng, 6), wellConditioned(rng, 6)
	dx, _ := Det(x)
	dy, _ := Det(y)
	dxy, _ := Det(MatMul(nil, x, y))
	if math.Abs(dxy-dx*dy) > 1e-6*math.Abs(dx*dy) {
		t.Errorf("det(AB)=%v, det(A)det(B)=%v", dxy, dx*dy)
	}
}

func TestSolveSquare(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := wellConditioned(rng, 10)
	want := make([]float64, 10)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := MatVec(a, want)
	got, err := Solve(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Fatalf("solve[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSolveLeastSquares(t *testing.T) {
	// Overdetermined: best fit of y = 2x + 1 through noisy-free points is exact.
	a := matrix.FromRows([][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}})
	b := []float64{1, 3, 5, 7}
	x, err := Solve(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-10 || math.Abs(x[1]-2) > 1e-10 {
		t.Fatalf("lstsq = %v", x)
	}
	if _, err := Solve(nil, matrix.New(2, 3), []float64{1, 2}); err != ErrShape {
		t.Error("underdetermined solve accepted")
	}
	if _, err := Solve(nil, matrix.New(2, 2), []float64{1}); err != ErrShape {
		t.Error("rhs length mismatch accepted")
	}
}

func TestQRReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range [][2]int{{3, 3}, {10, 4}, {50, 50}, {100, 7}} {
		m, n := dims[0], dims[1]
		a := randMatrix(rng, m, n)
		d, err := NewQR(nil, a)
		if err != nil {
			t.Fatal(err)
		}
		q, r := d.Q(), d.R()
		if q.Rows != m || q.Cols != n || r.Rows != n || r.Cols != n {
			t.Fatalf("QR shapes: Q %dx%d R %dx%d", q.Rows, q.Cols, r.Rows, r.Cols)
		}
		if !matrix.ApproxEqual(MatMul(nil, q, r), a, 1e-9) {
			t.Fatalf("Q·R != A for %v", dims)
		}
		// QᵀQ = I (orthonormal columns).
		if !matrix.ApproxEqual(CrossProduct(nil, q, q), matrix.Identity(n), 1e-9) {
			t.Fatalf("QᵀQ != I for %v", dims)
		}
		// R upper triangular.
		for i := 1; i < n; i++ {
			for j := 0; j < i; j++ {
				if math.Abs(r.At(i, j)) > 1e-12 {
					t.Fatalf("R not upper triangular at %d,%d", i, j)
				}
			}
		}
	}
}

func TestFullQ(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randMatrix(rng, 6, 2)
	d, _ := NewQR(nil, a)
	fq := d.FullQ()
	if fq.Rows != 6 || fq.Cols != 6 {
		t.Fatalf("FullQ shape %dx%d", fq.Rows, fq.Cols)
	}
	if !matrix.ApproxEqual(CrossProduct(nil, fq, fq), matrix.Identity(6), 1e-9) {
		t.Error("FullQ not orthogonal")
	}
}

func TestQQRRQRAndErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randMatrix(rng, 5, 3)
	q, err := QQR(nil, a)
	if err != nil || q.Rows != 5 || q.Cols != 3 {
		t.Fatalf("QQR: %v %v", q, err)
	}
	r, err := RQR(nil, a)
	if err != nil || r.Rows != 3 || r.Cols != 3 {
		t.Fatalf("RQR: %v %v", r, err)
	}
	if _, err := NewQR(nil, matrix.New(2, 3)); err != ErrShape {
		t.Error("wide QR accepted")
	}
	// Rank-deficient column (zero) must not crash.
	z := matrix.New(4, 2)
	for i := 0; i < 4; i++ {
		z.Set(i, 0, float64(i+1))
	}
	if _, err := NewQR(nil, z); err != nil {
		t.Errorf("QR with zero column: %v", err)
	}
}

func TestSVDReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, dims := range [][2]int{{4, 4}, {10, 3}, {3, 10}, {60, 20}} {
		m, n := dims[0], dims[1]
		a := randMatrix(rng, m, n)
		d, err := NewSVD(nil, a)
		if err != nil {
			t.Fatal(err)
		}
		k := n
		if m < n {
			k = m
		}
		if len(d.S) != k {
			t.Fatalf("%v: %d singular values, want %d", dims, len(d.S), k)
		}
		for i := 1; i < len(d.S); i++ {
			if d.S[i] > d.S[i-1] {
				t.Fatalf("%v: singular values not descending: %v", dims, d.S)
			}
		}
		recon := MatMul(nil, MatMul(nil, d.U, matrix.Diag(d.S)), d.V.T())
		if !matrix.ApproxEqual(recon, a, 1e-8) {
			t.Fatalf("%v: U·S·Vᵀ != A", dims)
		}
		if !matrix.ApproxEqual(CrossProduct(nil, d.U, d.U), matrix.Identity(d.U.Cols), 1e-8) {
			t.Fatalf("%v: U columns not orthonormal", dims)
		}
		if !matrix.ApproxEqual(CrossProduct(nil, d.V, d.V), matrix.Identity(d.V.Cols), 1e-8) {
			t.Fatalf("%v: V not orthogonal", dims)
		}
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Rank-1 matrix: second singular value ~0, U completion must still be
	// orthonormal.
	a := matrix.FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	d, err := NewSVD(nil, a)
	if err != nil {
		t.Fatal(err)
	}
	if d.S[1] > 1e-10 {
		t.Errorf("rank-1 second singular value = %v", d.S[1])
	}
	if !matrix.ApproxEqual(CrossProduct(nil, d.U, d.U), matrix.Identity(2), 1e-8) {
		t.Error("U completion not orthonormal")
	}
	r, err := Rank(nil, a)
	if err != nil || r != 1 {
		t.Errorf("Rank = %d, %v", r, err)
	}
}

func TestFullU(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randMatrix(rng, 7, 3)
	d, _ := NewSVD(nil, a)
	fu := d.FullU()
	if fu.Rows != 7 || fu.Cols != 7 {
		t.Fatalf("FullU shape %dx%d", fu.Rows, fu.Cols)
	}
	if !matrix.ApproxEqual(CrossProduct(nil, fu, fu), matrix.Identity(7), 1e-8) {
		t.Error("FullU not orthogonal")
	}
	sq := randMatrix(rng, 4, 4)
	dsq, _ := NewSVD(nil, sq)
	if fsq := dsq.FullU(); fsq.Rows != 4 || fsq.Cols != 4 {
		t.Error("square FullU shape")
	}
}

func TestRankAndSingularValues(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := wellConditioned(rng, 8)
	r, err := Rank(nil, a)
	if err != nil || r != 8 {
		t.Errorf("full rank = %d, %v", r, err)
	}
	sv, err := SingularValues(nil, a)
	if err != nil || len(sv) != 8 {
		t.Errorf("SingularValues = %v, %v", sv, err)
	}
	z := matrix.New(3, 3)
	rz, err := Rank(nil, z)
	if err != nil || rz != 0 {
		t.Errorf("zero matrix rank = %d, %v", rz, err)
	}
	if _, err := NewSVD(nil, matrix.New(0, 0)); err != ErrShape {
		t.Error("empty SVD accepted")
	}
}

func TestSymmetricEigen(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{2, 5, 12, 30} {
		a := spd(rng, n)
		e, err := NewEigen(a, true)
		if err != nil {
			t.Fatal(err)
		}
		if len(e.Values) != n {
			t.Fatalf("n=%d: %d eigenvalues", n, len(e.Values))
		}
		for i := 1; i < n; i++ {
			if e.Values[i] > e.Values[i-1]+1e-10 {
				t.Fatalf("eigenvalues not descending: %v", e.Values)
			}
		}
		// A·v = λ·v for every pair.
		for j := 0; j < n; j++ {
			v := e.Vectors.Column(j)
			av := MatVec(a, v)
			for i := 0; i < n; i++ {
				if math.Abs(av[i]-e.Values[j]*v[i]) > 1e-7*(1+math.Abs(e.Values[j])) {
					t.Fatalf("n=%d: A·v != λ·v for eigenpair %d", n, j)
				}
			}
		}
		// Trace = sum of eigenvalues.
		var tr, sum float64
		for i := 0; i < n; i++ {
			tr += a.At(i, i)
			sum += e.Values[i]
		}
		if math.Abs(tr-sum) > 1e-7*(1+math.Abs(tr)) {
			t.Fatalf("trace %v != eigenvalue sum %v", tr, sum)
		}
	}
}

func TestGeneralEigenRealSpectrum(t *testing.T) {
	// Upper triangular: eigenvalues are the diagonal.
	a := matrix.FromRows([][]float64{
		{3, 1, 0},
		{0, 2, 5},
		{0, 0, -1},
	})
	vals, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, -1}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-8 {
			t.Fatalf("eigenvalues = %v, want %v", vals, want)
		}
	}
	vecs, err := Eigenvectors(a)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		v := vecs.Column(j)
		av := MatVec(a, v)
		for i := range v {
			if math.Abs(av[i]-want[j]*v[i]) > 1e-6 {
				t.Fatalf("general eigenvector %d fails A·v=λ·v", j)
			}
		}
	}
}

func TestComplexEigenRejected(t *testing.T) {
	// Rotation by 90°: eigenvalues ±i.
	a := matrix.FromRows([][]float64{{0, -1}, {1, 0}})
	if _, err := Eigenvalues(a); err != ErrComplexEigen {
		t.Errorf("complex spectrum err = %v", err)
	}
}

func TestEigenShapeErrors(t *testing.T) {
	if _, err := NewEigen(matrix.New(2, 3), false); err != ErrShape {
		t.Error("non-square eigen accepted")
	}
	e, err := NewEigen(matrix.New(0, 0), true)
	if err != nil || len(e.Values) != 0 {
		t.Errorf("empty eigen: %v %v", e, err)
	}
}

func TestCholesky(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, n := range []int{1, 3, 10, 25} {
		a := spd(rng, n)
		r, err := Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.ApproxEqual(CrossProduct(nil, r, r), a, 1e-7*(1+a.MaxAbs())) {
			t.Fatalf("n=%d: Rᵀ·R != A", n)
		}
		for i := 1; i < n; i++ {
			for j := 0; j < i; j++ {
				if r.At(i, j) != 0 {
					t.Fatalf("R not upper triangular")
				}
			}
		}
	}
	if _, err := Cholesky(matrix.FromRows([][]float64{{-1}})); err != ErrNotPositiveDefinite {
		t.Error("negative definite accepted")
	}
	if _, err := Cholesky(matrix.FromRows([][]float64{{1, 2}, {3, 4}})); err != ErrNotPositiveDefinite {
		t.Error("asymmetric accepted")
	}
	if _, err := Cholesky(matrix.New(2, 3)); err != ErrShape {
		t.Error("non-square accepted")
	}
}

func TestPaperRQRExample(t *testing.T) {
	// Figure 8: RQR of g = [[1,3],[1,4],[6,7],[8,5]] ≈ [[-10.1,-8.8],[0,-4.6]]
	g := matrix.FromRows([][]float64{{1, 3}, {1, 4}, {6, 7}, {8, 5}})
	r, err := RQR(nil, g)
	if err != nil {
		t.Fatal(err)
	}
	// QR is unique up to column signs; compare magnitudes against the paper.
	if math.Abs(math.Abs(r.At(0, 0))-10.1) > 0.05 {
		t.Errorf("R[0,0] = %v, paper -10.1", r.At(0, 0))
	}
	if math.Abs(math.Abs(r.At(0, 1))-8.8) > 0.05 {
		t.Errorf("R[0,1] = %v, paper -8.8", r.At(0, 1))
	}
	if math.Abs(math.Abs(r.At(1, 1))-4.6) > 0.05 {
		t.Errorf("R[1,1] = %v, paper -4.6", r.At(1, 1))
	}
	if math.Abs(r.At(1, 0)) > 1e-12 {
		t.Errorf("R[1,0] = %v, want 0", r.At(1, 0))
	}
}

func TestOLSViaPaperFormula(t *testing.T) {
	// The paper's OLS: MMU(INV(CPD(A,A)), CPD(A,V)) — exact fit recovery.
	rng := rand.New(rand.NewSource(15))
	n := 200
	a := matrix.New(n, 2)
	v := matrix.New(n, 1)
	for i := 0; i < n; i++ {
		x := rng.Float64() * 10
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
		v.Set(i, 0, 3+2*x)
	}
	ata := CrossProduct(nil, a, a)
	atv := CrossProduct(nil, a, v)
	inv, err := Inverse(ata)
	if err != nil {
		t.Fatal(err)
	}
	beta := MatMul(nil, inv, atv)
	if math.Abs(beta.At(0, 0)-3) > 1e-8 || math.Abs(beta.At(1, 0)-2) > 1e-8 {
		t.Fatalf("OLS beta = %v", beta)
	}
}
