package linalg

import "repro/internal/exec"

// The dense kernels (MatMul, SYRK, Householder QR's trailing updates, the
// Jacobi SVD sweeps) resolve their worker budget from the exec.Ctx passed
// per invocation; NewQRSerial pins a single worker by construction. The
// process-wide knob below survives as a compatibility shim over the
// default context's fallback budget.

// SetParallelism sets the fallback worker budget of the default context
// and returns the previous value. Values below 1 are clamped to 1.
//
// Deprecated: pass an exec.Ctx built with exec.New(workers) to the
// kernels instead; this shim writes the same process-wide default as
// bat.SetParallelism and is only kept for legacy callers and tests.
func SetParallelism(n int) int { return exec.SetDefaultWorkers(n) }

// Parallelism returns the fallback worker budget of the default context.
//
// Deprecated: use exec.Ctx.Workers on the invocation's context.
func Parallelism() int { return exec.DefaultWorkers() }
