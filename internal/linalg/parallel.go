package linalg

import (
	"runtime"
	"sync/atomic"
)

// parallelism is the process-wide worker budget of the dense kernels
// (MatMul, SYRK, Householder QR's trailing updates, the Jacobi SVD
// sweeps), defaulting to GOMAXPROCS. core.Options.Parallelism overrides it
// per invocation; NewQRSerial ignores it by construction.
var parallelism atomic.Int32

func init() { parallelism.Store(int32(runtime.GOMAXPROCS(0))) }

// SetParallelism sets the dense-kernel worker budget and returns the
// previous value. Values below 1 are clamped to 1. The knob is
// process-wide: concurrent callers setting different budgets see the last
// write.
func SetParallelism(n int) int {
	if n < 1 {
		n = 1
	}
	return int(parallelism.Swap(int32(n)))
}

// Parallelism returns the current dense-kernel worker budget.
func Parallelism() int { return int(parallelism.Load()) }
