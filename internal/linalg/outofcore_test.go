package linalg

import (
	"errors"
	"math"
	"testing"

	"repro/internal/exec"
	"repro/internal/matrix"
)

// oocElem is the deterministic fill pattern for the out-of-core
// operand: spread over [-9, 9] with exact zeros to exercise the
// kernel's zero-skip.
func oocElem(i, l int) float64 {
	return float64((i*7+l*13)%19) - 9
}

// TestBlockedMatMulOutOfCore is the PR-8 acceptance test: a blocked
// product over a matrix larger than any single arena size-class
// (> 1<<24 float64 elements, the largest pooled class) completes
// under a memory budget that the flat path's one contiguous
// allocation cannot even charge. The blocked operand spills
// tile-at-a-time through exec.Spill, keeps residency bounded, and the
// result is bitwise-identical to the flat accumulation order.
func TestBlockedMatMulOutOfCore(t *testing.T) {
	const (
		rows = (1 << 24) / 8 // 2,097,152 rows ...
		kk   = 8             // ... of 8 columns: 16.8M+8K elements, one class above the largest pool
		n    = 8
		edge = 4096
	)
	totalElems := (rows + 1024) * kk // > 1<<24: no pooled size-class can hold it
	if totalElems <= 1<<24 {
		t.Fatal("test operand no longer exceeds the largest arena size-class")
	}
	m := rows + 1024

	budget := int64(64 << 20) // 64 MiB: under half the 134.3 MiB flat operand
	g := exec.NewGovernor(budget*2, 2)
	tenant := g.Tenant("ooc", budget)
	c := exec.NewCtx(4, tenant.NewArena(), nil)

	// Flat leg: one contiguous charge for the operand blows the budget.
	flatErr := func() (err error) {
		defer exec.CatchBudget(&err)
		buf := c.Arena().Floats(m * kk)
		c.Arena().FreeFloats(buf)
		return nil
	}()
	if !errors.Is(flatErr, exec.ErrMemoryBudget) {
		t.Fatalf("flat contiguous allocation err = %v, want ErrMemoryBudget", flatErr)
	}

	// Blocked leg: build the operand tile by tile under a spill regime
	// with a small residency cap, then multiply.
	sp := exec.NewSpill(t.TempDir(), 1)
	defer sp.Cleanup()
	cs := c.WithSpill(sp)

	a := matrix.NewBlockEdge(m, kk, edge)
	a.EnableSpill(sp, 8) // 8 tiles × 4096×8 × 8B = 2 MiB resident
	for ti := 0; ti < a.TileRows(); ti++ {
		h, w := a.TileDims(ti, 0)
		buf, err := a.Pin(cs, ti, 0)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < h; r++ {
			gi := ti*edge + r
			for l := 0; l < w; l++ {
				buf[r*w+l] = oocElem(gi, l)
			}
		}
		a.Unpin(ti, 0)
	}
	b := matrix.NewBlockEdge(kk, n, edge)
	bbuf, err := b.Pin(cs, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < kk; l++ {
		for j := 0; j < n; j++ {
			bbuf[l*n+j] = float64((l*3+j)%7) - 3
		}
	}
	b.Unpin(0, 0)

	var out *matrix.BlockMatrix
	blockedErr := func() (err error) {
		defer exec.CatchBudget(&err)
		out, err = MatMulBlocked(cs, a, b)
		return err
	}()
	if blockedErr != nil {
		t.Fatalf("blocked out-of-core product failed under the same budget: %v", blockedErr)
	}
	if got := tenant.PeakBytes(); got > budget {
		t.Fatalf("tenant peak %d bytes exceeds budget %d", got, budget)
	}
	if sp.Stats().SpilledBytes == 0 {
		t.Fatal("blocked product never spilled despite the residency cap")
	}

	// Spot-check a spread of rows bitwise against the flat accumulation
	// order (ascending k, skipping zero multiplicands).
	for _, gi := range []int{0, 1, edge - 1, edge, 3*edge + 17, m - 2, m - 1} {
		for j := 0; j < n; j++ {
			var want float64
			for l := 0; l < kk; l++ {
				av := oocElem(gi, l)
				if av == 0 {
					continue
				}
				want += av * (float64((l*3+j)%7) - 3)
			}
			got, err := out.At(cs, gi, j)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("out(%d,%d) = %v, want %v (bitwise)", gi, j, got, want)
			}
		}
	}
	out.Free(cs)
	a.Free(cs)
	b.Free(cs)
	if live := tenant.LiveBytes(); live != 0 {
		t.Fatalf("%d bytes still charged after Free", live)
	}
}
