// Package bat (under the ctxfirst fixture tree) exercises the kernel
// calling convention: its import path ends in internal/bat, so every
// exported function that allocates or fans out must take *exec.Ctx
// first.
package bat

import "repro/internal/exec"

// Scale allocates through the shared arena without taking a context.
func Scale(xs []float64, s float64) []float64 { // want `exported function Scale allocates through \(\*exec\.Arena\)\.Floats`
	out := exec.Shared().Floats(len(xs))
	for i, x := range xs {
		out[i] = x * s
	}
	return out
}

// ScaleCtx is the conforming version.
func ScaleCtx(c *exec.Ctx, xs []float64, s float64) []float64 {
	out := c.Arena().Floats(len(xs))
	for i, x := range xs {
		out[i] = x * s
	}
	return out
}

// Fan fans out through a context it did not receive.
func Fan(xs []float64) { // want `exported function Fan fans out through \(\*exec\.Ctx\)\.ParallelFor`
	exec.Default().ParallelFor(len(xs), 1, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			xs[k] *= 2
		}
	})
}

// Forward passes a live context along without conforming itself.
func Forward(c2 *exec.Ctx, xs []float64) []float64 { // clean: first param IS a ctx
	return ScaleCtx(c2, xs, 2)
}

// ForwardHidden smuggles a context that is not the first parameter.
func ForwardHidden(xs []float64, c2 *exec.Ctx) []float64 { // want `exported function ForwardHidden forwards a non-nil context to ScaleCtx`
	return ScaleCtx(c2, xs, 2)
}

// NilWrapper delegates with an explicit nil context: the documented
// convenience idiom, allowed.
func NilWrapper(xs []float64) []float64 {
	return ScaleCtx(nil, xs, 2)
}

// Meta neither allocates nor fans out: exempt.
func Meta(xs []float64) int { return len(xs) }

// Exported methods on exported types follow the same rule.
type Column struct{ f []float64 }

func (c *Column) Double() { // want `exported method Double fans out through \(\*exec\.Ctx\)\.ParallelFor`
	exec.Default().ParallelFor(len(c.f), 1, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			c.f[k] *= 2
		}
	})
}

func (c *Column) DoubleCtx(ctx *exec.Ctx) {
	ctx.ParallelFor(len(c.f), 1, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			c.f[k] *= 2
		}
	})
}

// methods on unexported types are not API surface.
type scratch struct{ f []float64 }

func (s *scratch) Grow(n int) {
	s.f = exec.Shared().Floats(n)
}
