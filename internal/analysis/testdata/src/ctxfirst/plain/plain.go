// Package plain lives outside the kernel package list: identical
// context-free allocating code that ctxfirst must ignore.
package plain

import "repro/internal/exec"

// Scale allocates without a context — legal here, since
// ctxfirst/plain is not one of the kernel packages.
func Scale(xs []float64, s float64) []float64 {
	out := exec.Shared().Floats(len(xs))
	for i, x := range xs {
		out[i] = x * s
	}
	return out
}
