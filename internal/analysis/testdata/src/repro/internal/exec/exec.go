// Package exec is the fixture stub of repro/internal/exec: the same
// type and method names the analyzers key on, with trivial bodies.
package exec

type Arena struct{}

func (a *Arena) Floats(n int) []float64     { return make([]float64, n) }
func (a *Arena) FloatsZero(n int) []float64 { return make([]float64, n) }
func (a *Arena) Ints(n int) []int           { return make([]int, n) }
func (a *Arena) Int64s(n int) []int64       { return make([]int64, n) }
func (a *Arena) Strings(n int) []string     { return make([]string, n) }
func (a *Arena) FreeFloats(f []float64)     {}
func (a *Arena) FreeInts(idx []int)         {}
func (a *Arena) FreeInt64s(xs []int64)      {}
func (a *Arena) FreeStrings(ss []string)    {}
func (a *Arena) Close()                     {}

func Shared() *Arena   { return &shared }
func NewArena() *Arena { return &Arena{} }

var shared Arena

type Ctx struct{ arena Arena }

func Default() *Ctx { return &defaultCtx }

var defaultCtx Ctx

func (c *Ctx) Arena() *Arena { return &c.arena }
func (c *Ctx) Workers() int  { return 1 }
func (c *Ctx) Serial(n int) bool {
	return true
}
func (c *Ctx) ParallelFor(n, minWork int, body func(lo, hi int)) { body(0, n) }
func (c *Ctx) Reduce(n int, partial func(lo, hi int) float64) float64 {
	return partial(0, n)
}

func CatchBudget(err *error) {}
