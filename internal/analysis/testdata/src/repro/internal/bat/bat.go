// Package bat is the fixture stub of repro/internal/bat.
package bat

import "repro/internal/exec"

type BAT struct{ f []float64 }

func FromFloats(f []float64) *BAT { return &BAT{f: f} }

func (b *BAT) Len() int { return len(b.f) }

func (b *BAT) ReleaseFloats(c *exec.Ctx, f []float64) {}

func Alloc(n int) []float64     { return exec.Shared().Floats(n) }
func AllocZero(n int) []float64 { return exec.Shared().FloatsZero(n) }
func AllocInts(n int) []int     { return exec.Shared().Ints(n) }
func Free(f []float64)          { exec.Shared().FreeFloats(f) }
func FreeInts(idx []int)        { exec.Shared().FreeInts(idx) }

func Release(c *exec.Ctx, b *BAT) {}

// Kernel stands in for a bat kernel that allocates from the context's
// arena and returns no error: a budget overrun unwinds it as a panic.
func Kernel(c *exec.Ctx, n int) []float64 { return c.Arena().Floats(n) }

// Sum stands in for a pure reduction that still allocates scratch.
func Sum(c *exec.Ctx, xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}
