// Package d exercises the detorder analyzer: map-iteration order must
// not reach output, and wall-clock/global-rand reads are banned in
// result-affecting code.
package d

import (
	"math/rand"
	"sort"
	"time"
)

// Keys publishes map order directly: the classic nondeterminism bug.
func Keys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k) // want `map iteration order leaks into "ks"`
	}
	return ks
}

// SortedKeys collects and then canonically sorts: the documented
// pattern, allowed.
func SortedKeys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// SortedSlice uses sort.Slice on a struct collection: also allowed.
type pair struct {
	k string
	v int
}

func SortedPairs(m map[string]int) []pair {
	var ps []pair
	for k, v := range m {
		ps = append(ps, pair{k, v})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].k < ps[j].k })
	return ps
}

// SumFloats accumulates floats in map order: not associative, so no
// downstream sort can recover the bits.
func SumFloats(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // want `floating-point accumulation over map iteration order`
	}
	return s
}

// CountValues is order-insensitive integer aggregation: allowed.
func CountValues(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// CopyToMap lands in another map: order cannot be observed.
func CopyToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// LocalAppend collects into a slice scoped inside the loop: it dies
// before order can leak.
func LocalAppend(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var tmp []int
		tmp = append(tmp, vs...)
		total += len(tmp)
	}
	return total
}

// Publish streams map entries through a channel in iteration order.
func Publish(m map[string]int, ch chan<- string) {
	for k := range m {
		ch <- k // want `channel send inside map iteration`
	}
}

// Stamp reads the wall clock in library code.
func Stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now in result-affecting code`
}

// Draw uses the globally-seeded source.
func Draw() int {
	return rand.Intn(10) // want `global math/rand\.Intn is nondeterministic`
}

// Seeded uses a deterministic generator: allowed.
func Seeded() float64 {
	r := rand.New(rand.NewSource(42))
	return r.Float64()
}
