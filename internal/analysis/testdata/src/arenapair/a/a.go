// Positive and negative cases for the arenapair analyzer.
package a

import (
	"repro/internal/bat"
	"repro/internal/exec"
)

// EarlyReturnLeak is the canonical bug class: the error path returns
// before the buffer is freed.
func EarlyReturnLeak(c *exec.Ctx, n int, fail bool) []float64 {
	buf := c.Arena().Floats(n)
	if fail {
		return nil // want `arena buffer "buf" \(allocated at a.go:\d+\) is neither freed nor escaped`
	}
	return buf
}

// Balanced frees on the early path and escapes on the main path.
func Balanced(c *exec.Ctx, n int, fail bool) []float64 {
	buf := c.Arena().Floats(n)
	if fail {
		c.Arena().FreeFloats(buf)
		return nil
	}
	return buf
}

// DeferredFree settles every path at once.
func DeferredFree(c *exec.Ctx, n int, fail bool) float64 {
	buf := c.Arena().Floats(n)
	defer c.Arena().FreeFloats(buf)
	if fail {
		return 0
	}
	return buf[0]
}

// EscapeViaCall hands the buffer to another function: ownership moved,
// nothing to report.
func EscapeViaCall(c *exec.Ctx, n int) *bat.BAT {
	out := c.Arena().Floats(n)
	return bat.FromFloats(out)
}

// EscapeViaField stores the buffer into a struct: ownership moved.
type holder struct{ f []float64 }

func EscapeViaField(c *exec.Ctx, h *holder, n int) {
	h.f = c.Arena().Floats(n)
}

// ImplicitReturnLeak falls off the end of the function with the buffer
// still live.
func ImplicitReturnLeak(c *exec.Ctx, n int) {
	buf := c.Arena().Ints(n)
	for i := range buf {
		buf[i] = i
	}
} // want `arena buffer "buf" \(allocated at a.go:\d+\) is neither freed nor escaped`

// AliasFree frees through a re-slice alias: the root is settled.
func AliasFree(c *exec.Ctx, n int) {
	buf := c.Arena().Floats(n)
	head := buf[:n/2]
	_ = head[0]
	c.Arena().FreeFloats(buf)
}

// ShimPair uses the package-level bat.Alloc / bat.Free shims.
func ShimPair(n int, fail bool) float64 {
	buf := bat.Alloc(n)
	if fail {
		return 0 // want `arena buffer "buf"`
	}
	bat.Free(buf)
	return 0
}

// ReleaseViaBAT retires a conversion view through BAT.ReleaseFloats.
func ReleaseViaBAT(c *exec.Ctx, b *bat.BAT, n int) {
	view := c.Arena().Floats(n)
	b.ReleaseFloats(c, view)
}

// BranchBothFree frees in both arms: nothing live after the if.
func BranchBothFree(c *exec.Ctx, n int, cond bool) {
	buf := c.Arena().Floats(n)
	if cond {
		c.Arena().FreeFloats(buf)
	} else {
		bat.Free(buf)
	}
}

// BranchOneLeaks frees only in one arm; the other path reaches the
// return with the buffer live.
func BranchOneLeaks(c *exec.Ctx, n int, cond bool) (err error) {
	buf := c.Arena().Floats(n)
	if cond {
		c.Arena().FreeFloats(buf)
	}
	return nil // want `arena buffer "buf"`
}

// LoopEscape appends each loop allocation into an outer collection:
// every buffer escapes.
func LoopEscape(c *exec.Ctx, n int) [][]float64 {
	var bufs [][]float64
	for i := 0; i < n; i++ {
		b := c.Arena().Floats(n)
		bufs = append(bufs, b)
	}
	return bufs
}

// ClosureCapture hands the buffer to a parallel body: captured, so the
// walk treats it as escaped.
func ClosureCapture(c *exec.Ctx, n int) {
	out := c.Arena().Floats(n)
	c.ParallelFor(n, 1, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			out[k] = float64(k)
		}
	})
}

// DeferClose settles everything drawn from the arena.
func DeferClose(c *exec.Ctx, n int, fail bool) error {
	a := exec.NewArena()
	defer a.Close()
	buf := a.Floats(n)
	if fail {
		return nil
	}
	_ = buf[0]
	return nil
}
