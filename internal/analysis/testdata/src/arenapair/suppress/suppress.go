// Package suppress exercises the //lint:ignore escape hatch: the leak
// below is real but silenced, so the analyzer reports nothing and the
// driver records one suppression with its reason.
package suppress

import "repro/internal/exec"

// Intentional parks a buffer in a process-global on purpose via a path
// the walk cannot prove; the suppression documents why.
func Intentional(c *exec.Ctx, n int, fail bool) []float64 {
	buf := c.Arena().Floats(n)
	if fail {
		//lint:ignore rmalint/arenapair fixture: demonstrates the escape hatch
		return nil
	}
	return buf
}
