// Package pr7 reproduces the historical build-side leak the PR 7
// satellite sweep fixed by hand: a streaming join's pushed-down filter
// gathered the build-side columns into fresh arena buffers, and the
// early exits (error paths, stream close) returned before handing the
// gathered intermediates back. With the fix reverted — as Leaky below
// reverts it — arenapair re-detects the shape; Fixed is the
// freeFiltered version that passes clean.
package pr7

import "repro/internal/exec"

// Leaky is the pre-fix shape: the gathered filter output leaks on both
// the validation early-return and the error path of the build step.
func Leaky(c *exec.Ctx, rows []float64, keep []int, build func([]float64) error) error {
	filtered := c.Arena().Floats(len(keep))
	for i, k := range keep {
		filtered[i] = rows[k]
	}
	if len(keep) == 0 {
		return nil // want `arena buffer "filtered" \(allocated at pr7.go:\d+\) is neither freed nor escaped`
	}
	if err := build(filtered); err != nil {
		return err
	}
	c.Arena().FreeFloats(filtered)
	return nil
}

// Fixed is the post-PR-7 shape: every exit path settles the gathered
// intermediates, matching freeFiltered at stream close and on error
// paths.
func Fixed(c *exec.Ctx, rows []float64, keep []int, build func([]float64) error) error {
	filtered := c.Arena().Floats(len(keep))
	for i, k := range keep {
		filtered[i] = rows[k]
	}
	if len(keep) == 0 {
		c.Arena().FreeFloats(filtered)
		return nil
	}
	if err := build(filtered); err != nil {
		c.Arena().FreeFloats(filtered)
		return err
	}
	c.Arena().FreeFloats(filtered)
	return nil
}
