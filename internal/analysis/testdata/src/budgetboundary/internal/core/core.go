// Package core (under the budgetboundary fixture tree) exercises the
// budget-panic containment rule: exported error-returning functions
// whose call graph reaches an accounted-arena allocation must defer
// exec.CatchBudget.
package core

import (
	"repro/internal/bat"
	"repro/internal/exec"
)

// Compute is the conforming boundary: it allocates and catches.
func Compute(c *exec.Ctx, n int) (out []float64, err error) {
	defer exec.CatchBudget(&err)
	out = c.Arena().Floats(n)
	return out, nil
}

// Leaky allocates directly but lets a budget panic escape.
func Leaky(c *exec.Ctx, n int) ([]float64, error) { // want `exported function Leaky can reach an accounted-arena allocation but does not defer exec\.CatchBudget`
	buf := c.Arena().Floats(n)
	return buf, nil
}

// helper reaches the arena on Indirect's behalf.
func helper(c *exec.Ctx, n int) []float64 {
	return c.Arena().Floats(n)
}

// Indirect reaches the allocation through an unprotected in-package
// helper.
func Indirect(c *exec.Ctx, n int) ([]float64, error) { // want `exported function Indirect can reach an accounted-arena allocation`
	return helper(c, n), nil
}

// KernelCall reaches the allocation through a kernel function with no
// error result — the panic passes straight through it.
func KernelCall(c *exec.Ctx, n int) ([]float64, error) { // want `exported function KernelCall can reach an accounted-arena allocation`
	return bat.Kernel(c, n), nil
}

// KernelCaught is the conforming version of KernelCall.
func KernelCaught(c *exec.Ctx, n int) (out []float64, err error) {
	defer exec.CatchBudget(&err)
	return bat.Kernel(c, n), nil
}

// CallsProtected only reaches the arena through Compute, which catches
// the panic itself: no boundary needed here.
func CallsProtected(c *exec.Ctx, n int) ([]float64, error) {
	return Compute(c, n)
}

// ClosureCatch defers the conversion inside a closure; still counts.
func ClosureCatch(c *exec.Ctx, n int) (out []float64, err error) {
	defer func() {
		exec.CatchBudget(&err)
	}()
	return c.Arena().Floats(n), nil
}

// Pure never touches an arena: exempt regardless of signature.
func Pure(n int) (int, error) { return n * 2, nil }

// NoError allocates but returns no error: there is no error boundary
// to install, so the panic is the caller's concern (and that caller is
// what this analyzer flags).
func NoError(c *exec.Ctx, n int) []float64 {
	return c.Arena().Floats(n)
}
