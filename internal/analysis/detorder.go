package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// DetOrder checks the bitwise-determinism invariant the differential
// tests depend on, in two parts.
//
// Map iteration: a `range` over a map whose body appends into an outer
// slice (a result column, key list, or output ordering in the making)
// is flagged unless the slice is canonically sorted later in the same
// function; a body that accumulates floating-point values into outer
// state is always flagged (float addition is not associative, so even
// a sorted downstream cannot recover the bits). Order-insensitive
// bodies — integer counting, set membership, map-to-map copies,
// deletes — pass.
//
// Nondeterministic inputs: time.Now and the global math/rand functions
// are banned outside _test.go files, internal/bench, cmd, and
// examples. Seeded generators (rand.New(rand.NewSource(k))) are
// deterministic and stay legal everywhere.
var DetOrder = &Analyzer{
	Name: "detorder",
	Doc:  "no map-iteration order or wall-clock/global-rand values may feed results",
	Run:  runDetOrder,
}

// detOrderExemptSegments name path segments whose packages are exempt
// from the nondeterministic-input ban: drivers, benchmarks, and
// example programs own their clocks.
var detOrderExemptSegments = []string{"cmd", "bench", "examples"}

func runDetOrder(pass *Pass) error {
	exemptInputs := false
	for _, seg := range detOrderExemptSegments {
		if pathHasSegment(pass.Pkg.Path(), seg) {
			exemptInputs = true
			break
		}
	}
	for _, f := range pass.Files {
		isTest := inTestFile(pass, f)
		if !exemptInputs && !isTest {
			checkNondetInputs(pass, f)
		}
		if isTest {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkMapRanges(pass, fd.Body)
			return true
		})
	}
	return nil
}

// checkNondetInputs flags time.Now calls and global math/rand calls.
func checkNondetInputs(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || recvType(fn) != nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "time":
			if fn.Name() == "Now" {
				pass.Report(Diagnostic{
					Pos:     call.Pos(),
					Message: "time.Now in result-affecting code breaks bitwise determinism; inject the clock or move the timing to cmd/bench",
				})
			}
		case "math/rand", "math/rand/v2":
			// Constructors of seeded generators are deterministic;
			// the package-level functions draw from the global source.
			switch fn.Name() {
			case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
				return true
			}
			pass.Report(Diagnostic{
				Pos:     call.Pos(),
				Message: fmt.Sprintf("global math/rand.%s is nondeterministic; use a seeded rand.New(rand.NewSource(k))", fn.Name()),
			})
		}
		return true
	})
}

// checkMapRanges flags order-sensitive map iteration in one function
// body.
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkOneMapRange(pass, body, rs)
		return true
	})
}

func checkOneMapRange(pass *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt) {
	info := pass.TypesInfo
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// x = append(x, ...) into a slice declared outside the
			// range: iteration order becomes element order.
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok && isBuiltinCall(info, call, "append") {
					if v := assignTargetVar(info, n.Lhs[0]); v != nil && declaredOutside(v, rs) {
						if !sortedAfter(pass, fnBody, rs, v) {
							pass.Report(Diagnostic{
								Pos: n.Pos(),
								Message: fmt.Sprintf(
									"map iteration order leaks into %q; sort the slice (or iterate sorted keys) before it feeds output", v.Name()),
							})
						}
						return true
					}
				}
			}
			// Compound floating-point accumulation into outer state:
			// never recoverable downstream.
			if n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN ||
				n.Tok == token.MUL_ASSIGN || n.Tok == token.QUO_ASSIGN {
				for _, l := range n.Lhs {
					if !isFloatExpr(info, l) {
						continue
					}
					if v := assignTargetVar(info, l); v == nil || declaredOutside(v, rs) {
						pass.Report(Diagnostic{
							Pos:     n.Pos(),
							Message: "floating-point accumulation over map iteration order is not bitwise-deterministic; accumulate over sorted keys",
						})
						break
					}
				}
			}
		case *ast.SendStmt:
			pass.Report(Diagnostic{
				Pos:     n.Pos(),
				Message: "channel send inside map iteration publishes values in nondeterministic order",
			})
		}
		return true
	})
}

// assignTargetVar resolves the variable an assignment target names:
// the base variable for index/selector targets (s[i], x.f), or the
// identifier itself.
func assignTargetVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, _ := info.Uses[t].(*types.Var)
			if v == nil {
				v, _ = info.Defs[t].(*types.Var)
			}
			return v
		case *ast.IndexExpr:
			e = t.X
		case *ast.SelectorExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether v's declaration precedes the range
// statement (true) or lives inside it (false).
func declaredOutside(v *types.Var, rs *ast.RangeStmt) bool {
	return v.Pos() < rs.Pos() || v.Pos() > rs.End()
}

// isFloatExpr reports whether the expression has floating-point (or
// complex) type.
func isFloatExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// sortedAfter reports whether, somewhere after the range statement in
// the same function body, the collected slice is passed to a canonical
// sort (sort.* or slices.Sort*).
func sortedAfter(pass *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, v *types.Var) bool {
	info := pass.TypesInfo
	sorted := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		f := calleeFunc(info, call)
		if f == nil || f.Pkg() == nil {
			return true
		}
		switch f.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, a := range call.Args {
			if av := assignTargetVar(info, a); av == v {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}
