package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// The standalone driver runs the suite over package patterns without
// cmd/go's vet orchestration: `rmalint -json ./...`. It shells out to
// `go list -deps -export -json` once to obtain, for every package in
// the dependency closure, its sources and its compiled export data,
// then type-checks and analyzes the packages matching the patterns.
// This is the mode future tooling consumes: the JSON report carries
// live findings and suppressions (with reasons) as first-class rows.

// listPkg is the subset of `go list -json` output the driver needs.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	ForTest    string
	Module     *struct{ Path string }
}

// runStandalone analyzes the packages matching the given patterns
// (default "./...") and returns the process exit code.
func runStandalone(patterns []string, jsonOut bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	universe, err := goList(append([]string{"-deps", "-export"}, patterns...))
	if err != nil {
		fmt.Fprintf(os.Stderr, "rmalint: %v\n", err)
		return 1
	}
	targets, err := goList(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rmalint: %v\n", err)
		return 1
	}
	exportFor := map[string]string{}
	for _, p := range universe {
		if p.Export != "" {
			exportFor[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	results := map[string]pkgResult{}
	exit := 0
	var order []string
	for _, p := range targets {
		if p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		var paths []string
		for _, f := range p.GoFiles {
			paths = append(paths, filepath.Join(p.Dir, f))
		}
		files, err := parseFiles(fset, paths)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rmalint: %s: %v\n", p.ImportPath, err)
			exit = 1
			continue
		}
		cfg := &vetConfig{
			Compiler:    "gc",
			ImportPath:  p.ImportPath,
			PackageFile: exportFor,
			GoVersion:   "go1.22",
		}
		pkg, info, err := typeCheck(fset, files, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rmalint: typecheck %s: %v\n", p.ImportPath, err)
			exit = 1
			continue
		}
		diags, supp, err := RunPackage(fset, files, pkg, info, Suite())
		if err != nil {
			fmt.Fprintf(os.Stderr, "rmalint: %s: %v\n", p.ImportPath, err)
			exit = 1
			continue
		}
		results[p.ImportPath] = pkgResult{diags, supp}
		order = append(order, p.ImportPath)
	}

	if jsonOut {
		emitJSON(os.Stdout, fset, results)
		return exit
	}
	sort.Strings(order)
	nDiags := 0
	for _, path := range order {
		for _, d := range results[path].Diags {
			fmt.Fprintf(os.Stderr, "%s: %s [rmalint/%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
			nDiags++
		}
	}
	if nDiags > 0 && exit == 0 {
		exit = 2
	}
	return exit
}

// goList runs `go list -json` with the given arguments and decodes the
// newline-concatenated JSON stream.
func goList(args []string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	cmd.Env = os.Environ()
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		msg := strings.TrimSpace(stderr.String())
		return nil, fmt.Errorf("go list %s: %v: %s", strings.Join(args, " "), err, msg)
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPkg
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}
