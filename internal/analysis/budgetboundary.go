package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// BudgetBoundary checks the budget-panic containment invariant: an
// accounted arena rejects an over-budget allocation by panicking with a
// typed value that exec.CatchBudget converts back into ErrMemoryBudget
// at the nearest error-returning API boundary. Every exported
// error-returning function in internal/core, internal/sql, and
// cmd/rmaserver whose call graph can reach an accounted-arena
// allocation must therefore defer exec.CatchBudget — otherwise a
// tenant hitting its budget crashes the process instead of receiving a
// typed error.
//
// Reachability is approximated per package: a function is "risky" if
// it allocates from an arena directly, calls a kernel-package function
// that does not return an error (those let the panic through by
// design), or calls an in-package risky function that does not itself
// defer CatchBudget. Cross-package calls that return an error are
// assumed protected — that is the convention this analyzer enforces on
// the packages it covers.
var BudgetBoundary = &Analyzer{
	Name: "budgetboundary",
	Doc:  "exported error boundaries reaching accounted allocations defer exec.CatchBudget",
	Run:  runBudgetBoundary,
}

func runBudgetBoundary(pass *Pass) error {
	if !inSuffixList(pass.Pkg.Path(), budgetBoundaryPkgs) {
		return nil
	}

	type funcInfo struct {
		decl       *ast.FuncDecl
		catches    bool
		directRisk bool
		inPkgCalls []*types.Func
		risky      bool
	}
	infos := map[*types.Func]*funcInfo{}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fi := &funcInfo{decl: fd}
			fi.catches = defersCatchBudget(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(pass.TypesInfo, call)
				if callee == nil {
					return true
				}
				switch {
				case isArenaMethod(callee, "Floats", "FloatsZero", "Ints", "Int64s", "Strings"):
					fi.directRisk = true
				case callee.Pkg() != nil && callee.Pkg() == pass.Pkg:
					fi.inPkgCalls = append(fi.inPkgCalls, callee)
				case callee.Pkg() != nil && inSuffixList(callee.Pkg().Path(), kernelPkgs):
					// Kernel calls that return an error install their
					// own CatchBudget (the PR 4 convention); calls
					// with no error result let the panic through.
					if !lastResultIsError(callee) && !isBudgetSafeKernelCall(callee) {
						fi.directRisk = true
					}
				}
				return true
			})
			infos[obj] = fi
		}
	}

	// Fixpoint: riskiness propagates through unprotected in-package
	// calls.
	for _, fi := range infos {
		fi.risky = fi.directRisk
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range infos {
			if fi.risky {
				continue
			}
			for _, callee := range fi.inPkgCalls {
				ci := infos[callee]
				if ci != nil && ci.risky && !ci.catches {
					fi.risky = true
					changed = true
					break
				}
			}
		}
	}

	for obj, fi := range infos {
		fd := fi.decl
		if !fd.Name.IsExported() || recvIsUnexported(fd) || inTestFile(pass, fd) {
			continue
		}
		if !lastResultIsError(obj) {
			continue
		}
		if fi.risky && !fi.catches {
			kind := "function"
			if fd.Recv != nil {
				kind = "method"
			}
			pass.Report(Diagnostic{
				Pos: fd.Name.Pos(),
				Message: fmt.Sprintf(
					"exported %s %s can reach an accounted-arena allocation but does not defer exec.CatchBudget",
					kind, fd.Name.Name),
			})
		}
	}
	return nil
}

// isBudgetSafeKernelCall exempts kernel functions that cannot unwind
// with a budget panic despite not returning an error: pure readers and
// the free/release family (uncharging never allocates).
func isBudgetSafeKernelCall(f *types.Func) bool {
	switch f.Name() {
	case "Free", "FreeInts", "FreeFloats", "FreeInt64s", "FreeStrings",
		"Release", "ReleaseFloats", "Close", "Unreserve",
		"Len", "Type", "IsSparse", "Sparse", "Workers", "Stats", "Arena",
		"Serial", "Tenant", "Name", "String":
		return true
	}
	return false
}

// defersCatchBudget reports whether the body contains
// `defer exec.CatchBudget(...)`, directly or inside a deferred closure.
func defersCatchBudget(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeferStmt)
		if !ok || found {
			return !found
		}
		if isCatchBudgetCall(pass, ds.Call) {
			found = true
			return false
		}
		if fl, ok := ast.Unparen(ds.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(fl.Body, func(m ast.Node) bool {
				if c, ok := m.(*ast.CallExpr); ok && isCatchBudgetCall(pass, c) {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

func isCatchBudgetCall(pass *Pass, call *ast.CallExpr) bool {
	f := calleeFunc(pass.TypesInfo, call)
	return isPkgFunc(f, execPkgSuffix, "CatchBudget")
}
