// Package atest is a fixture harness for the rmalint analyzers,
// modeled on golang.org/x/tools/go/analysis/analysistest but built on
// the standard library alone.
//
// Fixtures live in a GOPATH-shaped tree: testdata/src/<pkgpath>/*.go.
// Imports inside fixtures resolve through that tree (stub packages such
// as repro/internal/exec live beside the fixtures) or through GOROOT
// for the standard library, using go/importer's source importer with
// module resolution disabled.
//
// Expected findings are declared in the fixture source:
//
//	buf := arena.Floats(n) // want `regexp matching the message`
//
// Each `// want` comment must match exactly one diagnostic on its line
// and vice versa; unmatched diagnostics and unmatched expectations both
// fail the test.
package atest

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"testing"

	"repro/internal/analysis"
)

var setupOnce sync.Once

// setupGopath points go/build at the fixture tree and disables module
// resolution so srcDir probing cannot shell out to the go command.
func setupGopath(testdata string) {
	setupOnce.Do(func() {
		os.Setenv("GO111MODULE", "off")
		build.Default.GOPATH = testdata
	})
}

// wantRe extracts the expectation regexps from a comment:
// one backquoted pattern per `want`, several allowed per line.
var wantRe = regexp.MustCompile("//\\s*want\\s+((?:`[^`]*`\\s*)+)")

var patRe = regexp.MustCompile("`([^`]*)`")

// Run loads the fixture package at testdata/src/<pkgpath>, runs the
// single analyzer over it, and diffs the findings against the `want`
// comments. It returns the suppressions the run recorded so tests can
// assert on the //lint:ignore escape hatch.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpath string) []analysis.Suppression {
	t.Helper()
	abs, err := filepath.Abs(testdata)
	if err != nil {
		t.Fatal(err)
	}
	setupGopath(abs)

	dir := filepath.Join(abs, "src", filepath.FromSlash(pkgpath))
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	info := analysis.NewInfo()
	pkg, err := conf.Check(pkgpath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", pkgpath, err)
	}

	diags, supp, err := analysis.RunPackage(fset, files, pkg, info, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, pm := range patRe.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(pm[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pm[1], err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	var leftover []string
	for k, res := range wants {
		for _, re := range res {
			leftover = append(leftover, fmt.Sprintf("%s:%d: no diagnostic matching %q", k.file, k.line, re))
		}
	}
	sort.Strings(leftover)
	for _, l := range leftover {
		t.Errorf("%s", l)
	}
	return supp
}
