// Package analysis is rmalint: a suite of static analyzers that
// machine-check the engine's cross-cutting invariants — arena buffers
// are freed or escape on every control-flow path (arenapair), kernels
// that allocate or fan out take a *exec.Ctx first (ctxfirst), exported
// error boundaries over accounted arenas defer exec.CatchBudget
// (budgetboundary), and nothing feeds nondeterministic map order or
// wall-clock/random values into result-affecting code (detorder).
//
// The types mirror golang.org/x/tools/go/analysis deliberately, but the
// implementation is standard-library only: the repository carries no
// module dependencies, so the suite includes its own vet -vettool
// driver (unitchecker.go), a go-list-based standalone driver
// (standalone.go), and a fixture harness (atest). Should the tree ever
// vendor x/tools, each Analyzer.Run ports over mechanically.
//
// # Suppressions
//
// A finding is silenced by a comment on the offending line or the line
// directly above it:
//
//	//lint:ignore rmalint/<analyzer> <reason>
//
// The reason is mandatory and is surfaced in `rmalint -json` output so
// tooling can count (and trend) suppressions over time.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. The shape follows
// golang.org/x/tools/go/analysis.Analyzer so the checks port
// mechanically if the tree ever vendors x/tools.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore rmalint/<Name> suppression comments.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Run reports findings on one package through pass.Report.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report records one finding. The driver applies suppression
	// comments after the analyzer runs.
	Report func(Diagnostic)
}

// A Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// A Suppression records a diagnostic that a //lint:ignore comment
// silenced, with the comment's stated reason.
type Suppression struct {
	Analyzer string
	Pos      token.Pos
	Reason   string
}

// ignoreRe matches the suppression comment. The analyzer name and a
// non-empty reason are both required; a bare "//lint:ignore rmalint/x"
// suppresses nothing.
var ignoreRe = regexp.MustCompile(`^//\s*lint:ignore\s+rmalint/([a-z]+)\s+(\S.*)$`)

// ignoreSite is one //lint:ignore comment: the analyzer it silences,
// the file line it governs (its own line — suppressing same-line or
// next-line findings), and the stated reason.
type ignoreSite struct {
	analyzer string
	file     string
	line     int
	reason   string
}

// collectIgnores scans every comment in the files for suppression
// directives.
func collectIgnores(fset *token.FileSet, files []*ast.File) []ignoreSite {
	var sites []ignoreSite
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				sites = append(sites, ignoreSite{
					analyzer: m[1],
					file:     pos.Filename,
					line:     pos.Line,
					reason:   strings.TrimSpace(m[2]),
				})
			}
		}
	}
	return sites
}

// RunPackage runs every analyzer over one type-checked package and
// splits the findings into live diagnostics and suppressed ones.
// Diagnostics are returned in deterministic position order.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) (diags []Diagnostic, supp []Suppression, err error) {
	ignores := collectIgnores(fset, files)
	for _, a := range analyzers {
		var raw []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d Diagnostic) {
				d.Analyzer = a.Name
				raw = append(raw, d)
			},
		}
		if rerr := a.Run(pass); rerr != nil {
			return nil, nil, fmt.Errorf("analyzer %s: %w", a.Name, rerr)
		}
		for _, d := range raw {
			if s, ok := suppressedBy(fset, d, ignores); ok {
				supp = append(supp, s)
				continue
			}
			diags = append(diags, d)
		}
	}
	sortDiags(fset, diags)
	sort.Slice(supp, func(i, j int) bool { return supp[i].Pos < supp[j].Pos })
	return diags, supp, nil
}

// suppressedBy reports whether an ignore comment on the diagnostic's
// line (or the line directly above it) silences the diagnostic.
func suppressedBy(fset *token.FileSet, d Diagnostic, ignores []ignoreSite) (Suppression, bool) {
	if len(ignores) == 0 {
		return Suppression{}, false
	}
	pos := fset.Position(d.Pos)
	for _, ig := range ignores {
		if ig.analyzer != d.Analyzer || ig.file != pos.Filename {
			continue
		}
		if ig.line == pos.Line || ig.line == pos.Line-1 {
			return Suppression{Analyzer: d.Analyzer, Pos: d.Pos, Reason: ig.reason}, true
		}
	}
	return Suppression{}, false
}

func sortDiags(fset *token.FileSet, diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// NewInfo returns a types.Info with every map populated, ready for
// types.Config.Check.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// Suite returns the rmalint analyzers in stable order.
func Suite() []*Analyzer {
	return []*Analyzer{ArenaPair, CtxFirst, BudgetBoundary, DetOrder}
}

// pathHasSuffix reports whether an import path ends with the given
// slash-separated suffix on a path-segment boundary, so
// "internal/bat" matches "repro/internal/bat" but not
// "repro/internal/xbat".
func pathHasSuffix(path, suffix string) bool {
	if path == suffix {
		return true
	}
	return strings.HasSuffix(path, "/"+suffix)
}

// pathHasSegment reports whether one slash-separated segment of the
// import path equals seg.
func pathHasSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}
