package analysis

import (
	"fmt"
	"go/ast"
)

// CtxFirst checks the kernel calling convention: an exported function
// or method in internal/bat, internal/batlin, internal/linalg,
// internal/rel, or internal/matrix that allocates (any exec.Arena
// method) or fans out (any exec.Ctx method, or a call that forwards a
// non-nil *exec.Ctx) must take *exec.Ctx as its first parameter.
// Convenience wrappers that delegate with an explicit nil context are
// allowed — nil-safety is part of the Ctx contract.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "exported kernel functions that allocate or fan out take *exec.Ctx first",
	Run:  runCtxFirst,
}

func runCtxFirst(pass *Pass) error {
	if !inSuffixList(pass.Pkg.Path(), ctxFirstPkgs) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if inTestFile(pass, fd) {
				continue
			}
			if recvIsUnexported(fd) {
				continue
			}
			if funcTakesCtxFirst(pass, fd) {
				continue
			}
			if reason := ctxFirstTrigger(pass, fd.Body); reason != "" {
				kind := "function"
				if fd.Recv != nil {
					kind = "method"
				}
				pass.Report(Diagnostic{
					Pos: fd.Name.Pos(),
					Message: fmt.Sprintf(
						"exported %s %s %s but does not take *exec.Ctx as its first parameter",
						kind, fd.Name.Name, reason),
				})
			}
		}
	}
	return nil
}

// recvIsUnexported reports whether fd is a method on an unexported
// type (not externally reachable, so not part of the convention).
func recvIsUnexported(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if ix, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = ix.X
	}
	id, ok := t.(*ast.Ident)
	return ok && !id.IsExported()
}

// funcTakesCtxFirst reports whether the declared function's first
// parameter is *exec.Ctx.
func funcTakesCtxFirst(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil || len(fd.Type.Params.List) == 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[fd.Type.Params.List[0].Type]
	return ok && isCtxType(tv.Type)
}

// ctxFirstTrigger scans a body for allocation or fan-out and returns a
// human-readable description of the first trigger, or "".
func ctxFirstTrigger(pass *Pass, body *ast.BlockStmt) string {
	var reason string
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(pass.TypesInfo, call)
		if f == nil {
			return true
		}
		switch {
		case isCtxMethod(f):
			reason = fmt.Sprintf("fans out through (*exec.Ctx).%s", f.Name())
		case isArenaMethod(f):
			reason = fmt.Sprintf("allocates through (*exec.Arena).%s", f.Name())
		case firstParamIsCtx(f) && len(call.Args) > 0 && !isNilIdent(pass.TypesInfo, call.Args[0]):
			reason = fmt.Sprintf("forwards a non-nil context to %s", f.Name())
		}
		return reason == ""
	})
	return reason
}
