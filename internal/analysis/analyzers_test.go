package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/atest"
)

func TestArenaPair(t *testing.T) {
	atest.Run(t, "testdata", analysis.ArenaPair, "arenapair/a")
}

// TestArenaPairPR7Shape pins the historical regression: the build-side
// filtered-intermediate leak PR 7 fixed by hand, reverted inside the
// fixture, must be re-detected; the fixed shape must pass clean.
func TestArenaPairPR7Shape(t *testing.T) {
	atest.Run(t, "testdata", analysis.ArenaPair, "arenapair/pr7")
}

func TestArenaPairSuppression(t *testing.T) {
	supp := atest.Run(t, "testdata", analysis.ArenaPair, "arenapair/suppress")
	if len(supp) != 1 {
		t.Fatalf("suppressions = %d, want 1", len(supp))
	}
	if supp[0].Analyzer != "arenapair" || !strings.Contains(supp[0].Reason, "escape hatch") {
		t.Fatalf("unexpected suppression: %+v", supp[0])
	}
}

func TestCtxFirst(t *testing.T) {
	atest.Run(t, "testdata", analysis.CtxFirst, "ctxfirst/internal/bat")
}

func TestBudgetBoundary(t *testing.T) {
	atest.Run(t, "testdata", analysis.BudgetBoundary, "budgetboundary/internal/core")
}

func TestDetOrder(t *testing.T) {
	atest.Run(t, "testdata", analysis.DetOrder, "detorder/d")
}

// TestCtxFirstIgnoresForeignPackages guards the path filter: the same
// fixture source under a non-kernel import path must produce nothing.
func TestCtxFirstIgnoresForeignPackages(t *testing.T) {
	// ctxfirst/plain is not under any ctxfirst target suffix; running
	// CtxFirst over it must stay silent even though it allocates
	// without a context.
	supp := atest.Run(t, "testdata", analysis.CtxFirst, "ctxfirst/plain")
	if len(supp) != 0 {
		t.Fatalf("unexpected suppressions: %+v", supp)
	}
}
