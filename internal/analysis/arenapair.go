package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// ArenaPair checks the arena ownership invariant: within a function,
// every buffer obtained from an arena allocator (exec.Arena Floats /
// FloatsZero / Ints / Int64s / Strings, or the bat.Alloc* shims) must,
// on every control-flow path to a return, either be freed (Arena.Free*,
// bat.Free / bat.FreeInts, BAT.ReleaseFloats, a deferred Arena.Close)
// or escape the function (returned, passed to a call, stored into a
// field, slice, map, or closure). A path that returns while a buffer is
// still exclusively local leaks the buffer's pool charge — the exact
// bug class PRs 4, 5, and 7 fixed by hand.
//
// The analysis is a conservative abstract interpretation over the AST:
// aliases made with plain assignment or re-slicing are tracked
// together, any escape ends tracking (no report), and functions using
// goto are skipped entirely.
var ArenaPair = &Analyzer{
	Name: "arenapair",
	Doc:  "arena allocations must be freed or escape on every control-flow path",
	Run:  runArenaPair,
}

func runArenaPair(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkArenaFunc(pass, fd.Body)
			// Function literals are their own scopes: buffers they
			// allocate must balance within them (a captured outer
			// buffer already counts as escaped for the outer walk).
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					checkArenaFunc(pass, fl.Body)
				}
				return true
			})
		}
	}
	return nil
}

// apTracker is the per-function state of the arenapair walk.
type apTracker struct {
	pass *Pass
	// root maps every tracked variable (and its aliases) to a
	// canonical representative. It only grows: escapes and frees end
	// liveness on a path, never the alias relation itself.
	root map[*types.Var]*types.Var
	// site records each root's allocation position.
	site map[*types.Var]token.Pos
	// settled marks roots covered by a deferred free: they are
	// released on every exit, so no path can leak them.
	settled map[*types.Var]bool
	// gaveUp is set on constructs the walk does not model (goto);
	// the function is then skipped without reports.
	gaveUp bool
	// deferCloseAll is set when the function defers an
	// (*exec.Arena).Close(): every allocation in scope is settled by
	// the close, so nothing leaks past a return.
	deferCloseAll bool
}

// apState is the set of roots that are live (allocated, not yet freed
// or escaped) on the current path.
type apState map[*types.Var]bool

func (s apState) clone() apState {
	c := make(apState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func (s apState) union(o apState) {
	for k := range o {
		s[k] = true
	}
}

func checkArenaFunc(pass *Pass, body *ast.BlockStmt) {
	t := &apTracker{
		pass:    pass,
		root:    map[*types.Var]*types.Var{},
		site:    map[*types.Var]token.Pos{},
		settled: map[*types.Var]bool{},
	}
	st := apState{}
	terminated := t.walkStmts(body.List, st)
	if t.gaveUp {
		return
	}
	if !terminated {
		// Implicit return at the end of the body.
		t.checkExit(st, body.End())
	}
}

// rootOf resolves a variable to its tracked representative, or nil.
func (t *apTracker) rootOf(v *types.Var) *types.Var {
	if v == nil {
		return nil
	}
	return t.root[v]
}

// identVar resolves an expression to the local variable it names, or
// nil.
func (t *apTracker) identVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := t.pass.TypesInfo.Uses[id].(*types.Var)
	if v == nil {
		v, _ = t.pass.TypesInfo.Defs[id].(*types.Var)
	}
	return v
}

// trackedRootOf resolves an expression to the representative of a
// tracked variable. Re-slices of a tracked variable (x[:n], x[a:b])
// resolve to the same root.
func (t *apTracker) trackedRootOf(e ast.Expr) *types.Var {
	e = ast.Unparen(e)
	if sl, ok := e.(*ast.SliceExpr); ok {
		return t.trackedRootOf(sl.X)
	}
	return t.rootOf(t.identVar(e))
}

// isAllocCall reports whether the call allocates an arena buffer.
func (t *apTracker) isAllocCall(call *ast.CallExpr) bool {
	f := calleeFunc(t.pass.TypesInfo, call)
	if f == nil {
		return false
	}
	if isArenaMethod(f, "Floats", "FloatsZero", "Ints", "Int64s", "Strings") {
		return true
	}
	return isPkgFunc(f, batPkgSuffix, "Alloc", "AllocZero", "AllocInts")
}

// freeArgs returns the argument expressions a call consumes as frees,
// or nil when the call is not a free.
func (t *apTracker) freeArgs(call *ast.CallExpr) []ast.Expr {
	f := calleeFunc(t.pass.TypesInfo, call)
	if f == nil {
		return nil
	}
	if isArenaMethod(f, "FreeFloats", "FreeInts", "FreeInt64s", "FreeStrings") {
		return call.Args[:1]
	}
	if isPkgFunc(f, batPkgSuffix, "Free", "FreeInts") {
		return call.Args[:1]
	}
	// (*bat.BAT).ReleaseFloats(c, view) retires the view in arg 1.
	if rt := recvType(f); rt != nil && isNamedIn(rt, "BAT", batPkgSuffix) && f.Name() == "ReleaseFloats" && len(call.Args) == 2 {
		return call.Args[1:2]
	}
	return nil
}

// isArenaClose reports whether the call is (*exec.Arena).Close.
func (t *apTracker) isArenaClose(call *ast.CallExpr) bool {
	f := calleeFunc(t.pass.TypesInfo, call)
	return isArenaMethod(f, "Close")
}

// checkExit reports every root still live when a path leaves the
// function.
func (t *apTracker) checkExit(st apState, at token.Pos) {
	if t.deferCloseAll {
		return
	}
	for v := range st {
		if t.settled[v] {
			continue
		}
		pos := t.pass.Fset.Position(t.site[v])
		t.pass.Report(Diagnostic{
			Pos: at,
			Message: fmt.Sprintf(
				"arena buffer %q (allocated at %s:%d) is neither freed nor escaped on this return path",
				v.Name(), shortName(pos.Filename), pos.Line),
		})
	}
}

func shortName(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// walkStmts walks a statement list, returning whether every path
// through it terminates (returns or panics).
func (t *apTracker) walkStmts(list []ast.Stmt, st apState) bool {
	for _, s := range list {
		if t.gaveUp {
			return true
		}
		if t.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (t *apTracker) walkStmt(s ast.Stmt, st apState) (terminated bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		t.walkAssign(s, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						t.bind(name, vs.Values[i], st)
					}
				}
			}
		}
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			t.walkCallStmt(call, st)
		} else {
			t.scanEscapes(s.X, st)
		}
	case *ast.DeferStmt:
		t.walkDefer(s.Call, st)
	case *ast.GoStmt:
		// The goroutine captures whatever it references.
		t.scanEscapes(s.Call.Fun, st)
		for _, a := range s.Call.Args {
			t.scanEscapes(a, st)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			t.scanEscapes(r, st)
		}
		t.checkExit(st, s.Pos())
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			t.walkStmt(s.Init, st)
		}
		t.scanEscapes(s.Cond, st)
		thenSt := st.clone()
		thenTerm := t.walkStmts(s.Body.List, thenSt)
		elseSt := st.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = t.walkStmt(s.Else, elseSt)
		}
		for k := range st {
			delete(st, k)
		}
		if !thenTerm {
			st.union(thenSt)
		}
		if !elseTerm {
			st.union(elseSt)
		}
		return thenTerm && elseTerm
	case *ast.BlockStmt:
		return t.walkStmts(s.List, st)
	case *ast.ForStmt:
		if s.Init != nil {
			t.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			t.scanEscapes(s.Cond, st)
		}
		entry := st.clone()
		t.walkStmts(s.Body.List, st)
		if s.Post != nil {
			t.walkStmt(s.Post, st)
		}
		st.union(entry) // the loop may run zero times
	case *ast.RangeStmt:
		// Ranging over a buffer reads it; it does not move ownership.
		t.scanEscapesRead(s.X, st)
		entry := st.clone()
		t.walkStmts(s.Body.List, st)
		st.union(entry)
	case *ast.SwitchStmt:
		if s.Init != nil {
			t.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			t.scanEscapes(s.Tag, st)
		}
		t.walkClauses(s.Body.List, st, hasDefaultClause(s.Body.List))
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			t.walkStmt(s.Init, st)
		}
		t.walkClauses(s.Body.List, st, hasDefaultClause(s.Body.List))
	case *ast.SelectStmt:
		t.walkClauses(s.Body.List, st, true)
	case *ast.SendStmt:
		t.scanEscapes(s.Value, st)
	case *ast.IncDecStmt:
		// numeric only; nothing to do
	case *ast.LabeledStmt:
		return t.walkStmt(s.Stmt, st)
	case *ast.BranchStmt:
		if s.Tok == token.GOTO {
			t.gaveUp = true
		}
		// break/continue leave the enclosing construct; the loop
		// union already keeps the entry state alive.
		return true
	}
	return false
}

func hasDefaultClause(clauses []ast.Stmt) bool {
	for _, c := range clauses {
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				return true
			}
		case *ast.CommClause:
			if cc.Comm == nil {
				return true
			}
		}
	}
	return false
}

// walkClauses walks switch/select clauses, each from a copy of the
// entry state, merging the live sets of the non-terminating ones.
func (t *apTracker) walkClauses(clauses []ast.Stmt, st apState, exhaustive bool) {
	entry := st.clone()
	for k := range st {
		delete(st, k)
	}
	anyOpen := false
	for _, c := range clauses {
		var body []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				t.scanEscapes(e, entry)
			}
			body = cc.Body
		case *ast.CommClause:
			if cc.Comm != nil {
				t.walkStmt(cc.Comm, entry)
			}
			body = cc.Body
		}
		cs := entry.clone()
		if !t.walkStmts(body, cs) {
			st.union(cs)
			anyOpen = true
		}
	}
	if !exhaustive || !anyOpen {
		// Fall-through past the switch without entering any clause
		// (or every clause terminated): the entry state survives.
		st.union(entry)
	}
}

// bind handles `name := rhs` and `var name = rhs`.
func (t *apTracker) bind(name *ast.Ident, rhs ast.Expr, st apState) {
	rhs = ast.Unparen(rhs)
	v, _ := t.pass.TypesInfo.Defs[name].(*types.Var)
	if v == nil {
		v, _ = t.pass.TypesInfo.Uses[name].(*types.Var)
	}
	if call, ok := rhs.(*ast.CallExpr); ok {
		if t.isAllocCall(call) {
			// Receiver/argument expressions cannot smuggle tracked
			// buffers (they are sizes and arenas); start tracking.
			if v != nil {
				t.root[v] = v
				t.site[v] = call.Pos()
				st[v] = true
			}
			return
		}
		t.walkCallStmt(call, st)
		return
	}
	// Alias: x := tracked (or a re-slice of it) joins the root's
	// alias set instead of escaping.
	if r := t.trackedRootOf(rhs); r != nil && v != nil {
		t.root[v] = r
		return
	}
	t.scanEscapes(rhs, st)
}

func (t *apTracker) walkAssign(s *ast.AssignStmt, st apState) {
	// Single-assignment forms get alias/alloc treatment.
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		lhs := ast.Unparen(s.Lhs[0])
		if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
			t.bind(id, s.Rhs[0], st)
			return
		}
		// Field/index/deref store: the RHS escapes.
		t.scanEscapes(s.Rhs[0], st)
		t.scanEscapes(lhs, st)
		return
	}
	// Multi-assign: every RHS escapes conservatively; alloc calls in
	// multi-assign position (none exist today) are not tracked.
	for _, r := range s.Rhs {
		t.scanEscapes(r, st)
	}
	for _, l := range s.Lhs {
		if _, ok := ast.Unparen(l).(*ast.Ident); !ok {
			t.scanEscapes(l, st)
		}
	}
}

// walkCallStmt processes a call in statement position: frees consume
// their arguments, Close settles everything, anything else is an
// escape of every tracked argument.
func (t *apTracker) walkCallStmt(call *ast.CallExpr, st apState) {
	if args := t.freeArgs(call); args != nil {
		for _, a := range args {
			if r := t.trackedRootOf(a); r != nil {
				delete(st, r)
			} else {
				t.scanEscapes(a, st)
			}
		}
		// The receiver (arena or BAT) expression itself cannot hold a
		// tracked buffer.
		return
	}
	if t.isArenaClose(call) {
		// An explicit inline Close settles every live buffer from
		// that arena; without per-arena provenance, settle all.
		for k := range st {
			delete(st, k)
		}
		return
	}
	t.scanEscapes(call, st)
}

// walkDefer processes a deferred call. Deferred frees and closes run
// on every exit, so their targets are settled immediately; a deferred
// closure is scanned for frees first, then for captures.
func (t *apTracker) walkDefer(call *ast.CallExpr, st apState) {
	if args := t.freeArgs(call); args != nil {
		for _, a := range args {
			if r := t.trackedRootOf(a); r != nil {
				t.deferredSettle(r, st)
			}
		}
		return
	}
	if t.isArenaClose(call) {
		t.deferCloseAll = true
		return
	}
	if fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// Frees inside the deferred closure run at every exit.
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			c, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if args := t.freeArgs(c); args != nil {
				for _, a := range args {
					if r := t.trackedRootOf(a); r != nil {
						t.deferredSettle(r, st)
					}
				}
			}
			if t.isArenaClose(c) {
				t.deferCloseAll = true
			}
			return true
		})
		// Remaining references inside the closure are captures.
		t.scanEscapes(fl, st)
		return
	}
	t.scanEscapes(call, st)
}

// deferredSettle marks a root as settled on every exit (a deferred
// free covers all paths).
func (t *apTracker) deferredSettle(r *types.Var, st apState) {
	t.settled[r] = true
	delete(st, r)
}

// escape ends a root's liveness on the current path only: an escape in
// one branch says nothing about the sibling branch.
func (t *apTracker) escape(r *types.Var, st apState) {
	delete(st, r)
}

// scanEscapes walks an expression; every reference to a tracked
// variable in escaping position ends its tracking without a report.
// Non-escaping positions: indexing (x[i]), slicing used in place,
// len/cap, nil comparisons.
func (t *apTracker) scanEscapes(e ast.Expr, st apState) {
	if e == nil {
		return
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if r := t.rootOf(t.identVar(e)); r != nil {
			t.escape(r, st)
		}
	case *ast.CallExpr:
		if isBuiltinCall(t.pass.TypesInfo, e, "len") || isBuiltinCall(t.pass.TypesInfo, e, "cap") {
			return
		}
		if args := t.freeArgs(e); args != nil {
			// A free in expression position still consumes.
			for _, a := range args {
				if r := t.trackedRootOf(a); r != nil {
					delete(st, r)
				}
			}
			return
		}
		t.scanEscapes(e.Fun, st)
		for _, a := range e.Args {
			t.scanEscapes(a, st)
		}
	case *ast.SelectorExpr:
		t.scanEscapes(e.X, st)
	case *ast.IndexExpr:
		// Reading or writing an element does not move the buffer.
		t.scanEscapesRead(e.X, st)
		t.scanEscapes(e.Index, st)
	case *ast.SliceExpr:
		// A re-slice in escaping position escapes the base.
		t.scanEscapes(e.X, st)
		t.scanEscapes(e.Low, st)
		t.scanEscapes(e.High, st)
		t.scanEscapes(e.Max, st)
	case *ast.StarExpr:
		t.scanEscapes(e.X, st)
	case *ast.UnaryExpr:
		t.scanEscapes(e.X, st)
	case *ast.BinaryExpr:
		// Comparisons and arithmetic read values; a slice can only
		// appear in == nil / != nil, which does not escape it.
		t.scanEscapesRead(e.X, st)
		t.scanEscapesRead(e.Y, st)
	case *ast.KeyValueExpr:
		t.scanEscapes(e.Key, st)
		t.scanEscapes(e.Value, st)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			t.scanEscapes(el, st)
		}
	case *ast.TypeAssertExpr:
		t.scanEscapes(e.X, st)
	case *ast.FuncLit:
		// Capturing a tracked buffer hands it to code whose timing
		// the walk cannot see: escape.
		ast.Inspect(e.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if r := t.rootOf(t.identVar(id)); r != nil {
					t.escape(r, st)
				}
			}
			return true
		})
	}
}

// scanEscapesRead walks an expression in read-only position: bare
// tracked identifiers stay tracked, everything else falls back to the
// escape scan.
func (t *apTracker) scanEscapesRead(e ast.Expr, st apState) {
	if e == nil {
		return
	}
	if _, ok := ast.Unparen(e).(*ast.Ident); ok {
		return
	}
	t.scanEscapes(e, st)
}
