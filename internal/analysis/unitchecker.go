package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"go/version"
	"io"
	"os"
	"strings"
)

// This file implements the `go vet -vettool` protocol from scratch:
// the go command invokes the tool once per package with a JSON config
// file listing the package's sources and the export-data files of its
// dependencies. x/tools calls this driver the "unitchecker"; since the
// repository carries no dependencies, rmalint speaks the protocol
// directly on top of go/parser, go/types, and the gc export-data
// importer in the standard library.
//
// Protocol, as exercised by cmd/go:
//
//	rmalint -V=full         print a version line the build cache can key on
//	rmalint -flags          print the tool's flags as JSON
//	rmalint [-json] x.cfg   analyze one package described by x.cfg
//
// A .cfg run exits 0 with no findings, 2 with findings (plain mode),
// and always 0 in -json mode, matching x/tools' unitchecker.

// vetConfig mirrors the JSON config cmd/go writes for each package.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for cmd/rmalint. It dispatches between the
// vet protocol (a single .cfg argument) and the standalone package-
// pattern driver (standalone.go), and returns the process exit code.
func Main(args []string) int {
	jsonOut := false
	var rest []string
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "-V":
			printVersion()
			return 0
		case a == "-flags":
			printFlags()
			return 0
		case a == "-json" || a == "-json=true":
			jsonOut = true
		case a == "-json=false":
			jsonOut = false
		case strings.HasPrefix(a, "-"):
			// Analyzer enable flags (-arenapair etc.) are accepted
			// for vet compatibility; the suite always runs whole.
		default:
			rest = append(rest, a)
		}
	}
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVetConfig(rest[0], jsonOut)
	}
	return runStandalone(rest, jsonOut)
}

// printVersion emits the line cmd/go's buildID machinery parses: the
// executable path, the literal words "version devel", and a content
// hash of the binary so the vet cache invalidates when rmalint changes.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		exe = "rmalint"
	}
	h := sha256.New()
	if f, err := os.Open(exe); err == nil {
		io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel buildID=%x\n", exe, h.Sum(nil)[:16])
}

// printFlags describes the tool's flags to cmd/go so it knows which
// vet flags to forward.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{
		{"V", true, "print version and exit"},
		{"json", true, "emit JSON output"},
	}
	for _, a := range Suite() {
		flags = append(flags, jsonFlag{a.Name, true, "enable " + a.Name + " analysis"})
	}
	data, _ := json.Marshal(flags)
	fmt.Println(string(data))
}

// runVetConfig analyzes the single package described by a cmd/go vet
// config file.
func runVetConfig(cfgFile string, jsonOut bool) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rmalint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "rmalint: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// rmalint exports no facts, but cmd/go expects the output file to
	// exist for caching.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "rmalint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	files, err := parseFiles(fset, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "rmalint: %v\n", err)
		return 1
	}
	pkg, info, err := typeCheck(fset, files, &cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "rmalint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags, supp, err := RunPackage(fset, files, pkg, info, Suite())
	if err != nil {
		fmt.Fprintf(os.Stderr, "rmalint: %v\n", err)
		return 1
	}
	if jsonOut {
		emitJSON(os.Stdout, fset, map[string]pkgResult{cfg.ImportPath: {diags, supp}})
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [rmalint/%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func parseFiles(fset *token.FileSet, paths []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, p := range paths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// typeCheck type-checks the package using gc export data for imports:
// the config's ImportMap translates source-level import paths to
// canonical ones, PackageFile locates each canonical path's export
// file, and the standard library's gc importer reads them.
func typeCheck(fset *token.FileSet, files []*ast.File, cfg *vetConfig) (*types.Package, *types.Info, error) {
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	tc := types.Config{
		Importer:  importer.ForCompiler(fset, cfg.Compiler, lookup),
		GoVersion: version.Lang(cfg.GoVersion),
		Sizes:     types.SizesFor(cfg.Compiler, "amd64"),
		Error:     func(error) {}, // collect via returned error
	}
	info := NewInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}

// pkgResult pairs one package's live and suppressed findings.
type pkgResult struct {
	Diags []Diagnostic
	Supp  []Suppression
}

// jsonDiag is the serialized form of one finding.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	Posn     string `json:"posn"`
	Message  string `json:"message,omitempty"`
	Reason   string `json:"reason,omitempty"`
}

// jsonOutput is the machine-readable report of a run. Suppressions are
// first-class so trajectory tooling can count them over time.
type jsonOutput struct {
	Packages map[string]jsonPkg `json:"packages"`
	Counts   struct {
		Diagnostics  int `json:"diagnostics"`
		Suppressions int `json:"suppressions"`
	} `json:"counts"`
}

type jsonPkg struct {
	Diagnostics  []jsonDiag `json:"diagnostics,omitempty"`
	Suppressions []jsonDiag `json:"suppressions,omitempty"`
}

func emitJSON(w io.Writer, fset *token.FileSet, results map[string]pkgResult) {
	out := jsonOutput{Packages: map[string]jsonPkg{}}
	for path, r := range results {
		var jp jsonPkg
		for _, d := range r.Diags {
			jp.Diagnostics = append(jp.Diagnostics, jsonDiag{
				Analyzer: d.Analyzer,
				Posn:     fset.Position(d.Pos).String(),
				Message:  d.Message,
			})
		}
		for _, s := range r.Supp {
			jp.Suppressions = append(jp.Suppressions, jsonDiag{
				Analyzer: s.Analyzer,
				Posn:     fset.Position(s.Pos).String(),
				Reason:   s.Reason,
			})
		}
		out.Counts.Diagnostics += len(jp.Diagnostics)
		out.Counts.Suppressions += len(jp.Suppressions)
		out.Packages[path] = jp
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	enc.Encode(out)
}
