package analysis

import (
	"go/ast"
	"go/types"
)

// Package-path suffixes the analyzers key on. Matching is by suffix on
// a segment boundary (pathHasSuffix) so the same analyzers run
// unchanged against the real tree ("repro/internal/bat") and against
// fixture packages ("ctxfirst/internal/bat").
const (
	execPkgSuffix = "internal/exec"
	batPkgSuffix  = "internal/bat"
)

// ctxFirstPkgs are the kernel packages whose exported allocating or
// fanning-out functions must take *exec.Ctx first.
var ctxFirstPkgs = []string{
	"internal/bat", "internal/batlin", "internal/linalg",
	"internal/rel", "internal/matrix",
}

// budgetBoundaryPkgs are the packages whose exported error-returning
// functions form the API boundary above the budget-panicking kernels.
var budgetBoundaryPkgs = []string{
	"internal/core", "internal/sql", "cmd/rmaserver",
}

// kernelPkgs are the packages whose functions may allocate from an
// accounted arena (and therefore unwind with a budget panic).
// internal/exec is deliberately absent: arena allocations are matched
// as *exec.Arena method calls directly (including inside closures), so
// listing the package here would only poison benign helpers such as
// exec.DefaultWorkers or exec.Shared with phantom risk.
var kernelPkgs = []string{
	"internal/bat", "internal/batlin", "internal/linalg",
	"internal/rel", "internal/matrix", "internal/store",
}

func inSuffixList(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if pathHasSuffix(path, s) {
			return true
		}
	}
	return false
}

// namedOf unwraps pointers and aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// isNamedIn reports whether t (possibly behind pointers) is the named
// type name declared in a package whose path ends in pkgSuffix.
func isNamedIn(t types.Type, name, pkgSuffix string) bool {
	n := namedOf(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == name && pathHasSuffix(n.Obj().Pkg().Path(), pkgSuffix)
}

func isArenaType(t types.Type) bool { return isNamedIn(t, "Arena", execPkgSuffix) }
func isCtxType(t types.Type) bool   { return isNamedIn(t, "Ctx", execPkgSuffix) }

// calleeFunc resolves the static callee of a call, or nil for calls
// through function values, builtins, and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified call
		}
	}
	f, _ := obj.(*types.Func)
	return f
}

// isBuiltinCall reports whether the call invokes the named builtin.
func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// recvType returns the receiver type of a method, or nil for plain
// functions.
func recvType(f *types.Func) types.Type {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// isArenaMethod reports whether f is a method on exec.Arena with one of
// the given names (any name if names is empty).
func isArenaMethod(f *types.Func, names ...string) bool {
	if f == nil {
		return false
	}
	rt := recvType(f)
	if rt == nil || !isArenaType(rt) {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}

// isCtxMethod reports whether f is a method on exec.Ctx.
func isCtxMethod(f *types.Func) bool {
	if f == nil {
		return false
	}
	rt := recvType(f)
	return rt != nil && isCtxType(rt)
}

// isPkgFunc reports whether f is a package-level function with one of
// the given names in a package whose path ends in pkgSuffix.
func isPkgFunc(f *types.Func, pkgSuffix string, names ...string) bool {
	if f == nil || f.Pkg() == nil || recvType(f) != nil {
		return false
	}
	if !pathHasSuffix(f.Pkg().Path(), pkgSuffix) {
		return false
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}

// firstParamIsCtx reports whether f's first parameter is *exec.Ctx.
func firstParamIsCtx(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return false
	}
	return isCtxType(sig.Params().At(0).Type())
}

// lastResultIsError reports whether f's final result is error.
func lastResultIsError(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	n := namedOf(last)
	return n != nil && n.Obj() != nil && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

// isNilIdent reports whether the expression is the untyped nil
// identifier.
func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name != "nil" {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// inTestFile reports whether pos falls in a _test.go file.
func inTestFile(pass *Pass, pos ast.Node) bool {
	name := pass.Fset.Position(pos.Pos()).Filename
	return len(name) >= 8 && name[len(name)-8:] == "_test.go"
}
