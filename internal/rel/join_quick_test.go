package rel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bat"
)

// withWorkers runs f under the given worker budget and restores the
// previous budget afterwards.
func withWorkers(w int, f func()) {
	prev := bat.SetParallelism(w)
	defer bat.SetParallelism(prev)
	f()
}

// naiveJoin is the nested-loop reference implementation HashJoin is tested
// against: probe rows in r order, matches per probe row in s order, key
// equality by typed value comparison.
func naiveJoin(t *testing.T, r, s *Relation, rKeys, sKeys []string, jt JoinType) *Relation {
	t.Helper()
	rc := make([]*bat.BAT, len(rKeys))
	sc := make([]*bat.BAT, len(sKeys))
	for k := range rKeys {
		var err error
		if rc[k], err = r.Col(rKeys[k]); err != nil {
			t.Fatal(err)
		}
		if sc[k], err = s.Col(sKeys[k]); err != nil {
			t.Fatal(err)
		}
	}
	eq := func(i, j int) bool {
		for k := range rc {
			va, vb := rc[k].Get(i), sc[k].Get(j)
			if va.Type == bat.String || vb.Type == bat.String {
				if va.Type != vb.Type || va.S != vb.S {
					return false
				}
			} else if va.AsFloat() != vb.AsFloat() {
				return false
			}
		}
		return true
	}
	var li, ri []int
	for i := 0; i < r.NumRows(); i++ {
		found := false
		for j := 0; j < s.NumRows(); j++ {
			if eq(i, j) {
				li = append(li, i)
				ri = append(ri, j)
				found = true
			}
		}
		if !found && jt == Left {
			li = append(li, i)
			ri = append(ri, -1)
		}
	}
	dropped := make(map[string]bool, len(sKeys))
	for _, a := range sKeys {
		dropped[a] = true
	}
	left := r.Gather(nil, li)
	schema := left.Schema.Clone()
	cols := append([]*bat.BAT(nil), left.Cols...)
	for _, a := range s.Schema {
		if dropped[a.Name] {
			continue
		}
		c := s.Cols[s.Schema.Index(a.Name)]
		v := bat.NewEmptyVector(c.Type(), len(ri))
		for _, j := range ri {
			if j < 0 {
				switch c.Type() {
				case bat.Float:
					v.Append(bat.FloatValue(0))
				case bat.Int:
					v.Append(bat.IntValue(0))
				case bat.String:
					v.Append(bat.StringValue(""))
				}
				continue
			}
			v.Append(c.Get(j))
		}
		schema = append(schema, a)
		cols = append(cols, bat.FromVector(v))
	}
	out, err := New(r.Name, schema, cols)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// equalRelations compares schema names and every cell; floats compare
// bitwise.
func equalRelations(a, b *Relation) bool {
	if a.NumRows() != b.NumRows() || a.NumCols() != b.NumCols() {
		return false
	}
	for k := range a.Schema {
		if a.Schema[k] != b.Schema[k] {
			return false
		}
	}
	for i := 0; i < a.NumRows(); i++ {
		for k := range a.Cols {
			va, vb := a.Cols[k].Get(i), b.Cols[k].Get(i)
			if va.Type != vb.Type {
				return false
			}
			switch va.Type {
			case bat.Float:
				if math.Float64bits(va.F) != math.Float64bits(vb.F) {
					return false
				}
			case bat.Int:
				if va.I != vb.I {
					return false
				}
			case bat.String:
				if va.S != vb.S {
					return false
				}
			}
		}
	}
	return true
}

// TestQuickHashJoinMatchesNaive checks the partitioned hash join against
// the nested-loop reference on randomized relations with duplicate keys:
// Inner and Left, single (int) and multi (int, string) key, at worker
// budgets 1, 2, and 8.
func TestQuickHashJoinMatchesNaive(t *testing.T) {
	cases := []struct {
		name  string
		jt    JoinType
		multi bool
	}{
		{"inner-single", Inner, false},
		{"inner-multi", Inner, true},
		{"left-single", Left, false},
		{"left-multi", Left, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				r := randRel(rng, "r", 1+rng.Intn(60))
				s := randRel(rng, "s", 1+rng.Intn(60))
				rKeys, sKeys := []string{"r_k"}, []string{"s_k"}
				if tc.multi {
					rKeys = append(rKeys, "r_t")
					sKeys = append(sKeys, "s_t")
				}
				want := naiveJoin(t, r, s, rKeys, sKeys, tc.jt)
				for _, w := range []int{1, 2, 8} {
					ok := false
					withWorkers(w, func() {
						got, err := HashJoin(nil, r, s, rKeys, sKeys, tc.jt)
						ok = err == nil && equalRelations(got, want)
					})
					if !ok {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestHashJoinEmptyInputs pins the degenerate shapes: empty probe, empty
// build (Inner drops everything, Left zero-fills).
func TestHashJoinEmptyInputs(t *testing.T) {
	empty := Empty("r", Schema{{Name: "r_k", Type: bat.Int}, {Name: "r_v", Type: bat.Float}})
	s := MustNew("s", Schema{{Name: "s_k", Type: bat.Int}, {Name: "s_v", Type: bat.Float}},
		[]*bat.BAT{bat.FromInts([]int64{1, 2}), bat.FromFloats([]float64{10, 20})})
	j, err := HashJoin(nil, empty, s, []string{"r_k"}, []string{"s_k"}, Inner)
	if err != nil || j.NumRows() != 0 {
		t.Fatalf("empty probe: %v rows, err %v", j.NumRows(), err)
	}
	sEmpty := Empty("s", Schema{{Name: "s_k", Type: bat.Int}, {Name: "s_v", Type: bat.Float}})
	r := MustNew("r", Schema{{Name: "r_k", Type: bat.Int}},
		[]*bat.BAT{bat.FromInts([]int64{1, 2})})
	if j, err = HashJoin(nil, r, sEmpty, []string{"r_k"}, []string{"s_k"}, Inner); err != nil || j.NumRows() != 0 {
		t.Fatalf("empty build inner: %v rows, err %v", j.NumRows(), err)
	}
	if j, err = HashJoin(nil, r, sEmpty, []string{"r_k"}, []string{"s_k"}, Left); err != nil || j.NumRows() != 2 {
		t.Fatalf("empty build left: %v rows, err %v", j.NumRows(), err)
	}
	v, _ := j.Col("s_v")
	f, _ := v.Floats()
	if f[0] != 0 || f[1] != 0 {
		t.Errorf("left join zero fill = %v", f)
	}
}
