package rel

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bat"
	"repro/internal/exec"
)

// This file implements radix-partitioned (exchange) execution for the
// pipeline breakers: rows are hash-partitioned into P shards on their
// typed 64-bit key hashes (shard = hash % P — the mix64 finalizer
// spreads entropy over all bits, so the low bits select shards as well
// as they select the join table's radix partitions), each shard joins
// or aggregates independently, and the shard results are recombined in
// a fixed order. Everything is bitwise-identical to the single-table
// operators at any worker budget and any shard count:
//
//   - ExchangeJoin reproduces HashJoinSized's canonical output order
//     because every probe row lives in exactly one shard: the per-shard
//     probes write disjoint entries of one global per-row match-count
//     array, a single serial prefix sum assigns output offsets in probe
//     order, and the per-shard scatters fill disjoint output ranges.
//   - ExchangeGroupBy reproduces GroupBySized because every group's
//     rows live in one shard and still fold on the global
//     bat.SerialCutoff chunk boundaries — the per-group combine
//     sequence is chunk-ascending either way — and the shard group
//     lists are merged by ascending first-seen row, which is exactly
//     the global first-seen order.
//
// The streaming counterparts (PartitionedBuild, ShardedAgg) give the
// SQL pipeline the same shard-parallel build and accumulate with the
// same bitwise contracts.

// buildIndex is the lookup seam shared by the single radix-partitioned
// join table and the sharded exchange table: probePairs only needs the
// candidate build rows of a probe hash.
type buildIndex interface {
	lookup(h uint64) []int
}

// shardedTable is the exchange counterpart of joinTable: one hash map
// per shard, selected by hash % shards.
type shardedTable struct {
	shards uint64
	parts  []map[uint64][]int
}

func (t *shardedTable) lookup(h uint64) []int {
	return t.parts[h%t.shards][h]
}

// partitionRows splits row indices [0, len(h)) into per-shard row lists
// by h[i] % shards: rows holds the concatenated lists, start[p]:start[p+1]
// delimits shard p. The scatter is chunk-major (per-chunk histograms,
// then prefix offsets), so every shard's list is ascending regardless of
// the worker budget — the property all the determinism arguments above
// lean on. rows comes from the context's arena; callers hand it back
// with FreeInts.
func partitionRows(c *exec.Ctx, h []uint64, shards int) (rows []int, start []int) {
	m := len(h)
	p := uint64(shards)
	chunks, size := c.ParallelRuns(m)

	hist := c.Arena().Ints(chunks * shards)
	clear(hist)
	c.ParallelFor(chunks, 1, func(clo, chi int) {
		for ch := clo; ch < chi; ch++ {
			row := hist[ch*shards : (ch+1)*shards]
			for j := ch * size; j < min((ch+1)*size, m); j++ {
				row[h[j]%p]++
			}
		}
	})
	start = make([]int, shards+1)
	pos := c.Arena().Ints(chunks * shards)
	off := 0
	for pt := 0; pt < shards; pt++ {
		start[pt] = off
		for ch := 0; ch < chunks; ch++ {
			pos[ch*shards+pt] = off
			off += hist[ch*shards+pt]
		}
	}
	start[shards] = off

	rows = c.Arena().Ints(m)
	c.ParallelFor(chunks, 1, func(clo, chi int) {
		for ch := clo; ch < chi; ch++ {
			cursor := pos[ch*shards : (ch+1)*shards]
			for j := ch * size; j < min((ch+1)*size, m); j++ {
				pt := h[j] % p
				rows[cursor[pt]] = j
				cursor[pt]++
			}
		}
	})
	c.Arena().FreeInts(hist)
	c.Arena().FreeInts(pos)
	return rows, start
}

// ExchangeJoin computes r ⋈ s through a radix exchange: both sides are
// hash-partitioned into shards, each shard builds and probes its own
// hash table, and the shard outputs land in the canonical probe-order
// layout through one global offset array. The result is
// bitwise-identical to HashJoinSized at any worker budget and shard
// count. When ps is non-nil, one stage per shard reports the shard's
// build rows and emitted pairs.
func ExchangeJoin(c *exec.Ctx, r, s *Relation, rKeys, sKeys []string, jt JoinType, shards int, ps *exec.PipelineStats) (res *Relation, err error) {
	defer exec.CatchBudget(&err)
	if shards < 1 {
		return nil, fmt.Errorf("rel: exchange join needs at least one shard, got %d", shards)
	}
	if len(rKeys) != len(sKeys) || len(rKeys) == 0 {
		return nil, fmt.Errorf("rel: join needs matching non-empty key lists")
	}
	rkc, err := newKeyCols(c, r, rKeys)
	if err != nil {
		return nil, err
	}
	defer rkc.release(c)
	skc, err := newKeyCols(c, s, sKeys)
	if err != nil {
		return nil, err
	}
	defer skc.release(c)
	dropped := make(map[string]bool, len(sKeys))
	for _, a := range sKeys {
		dropped[a] = true
	}
	var sAttrs []string
	for _, a := range s.Schema {
		if !dropped[a.Name] {
			if r.Schema.Index(a.Name) >= 0 {
				return nil, fmt.Errorf("rel: join: attribute %q appears on both sides; rename first", a.Name)
			}
			sAttrs = append(sAttrs, a.Name)
		}
	}
	leftOuter := jt == Left

	// Shard the build side and build one hash table per shard. Row
	// lists stay ascending (partitionRows is chunk-major), which is
	// what keeps per-probe matches in build order.
	sh := skc.hashes(c)
	sRows, sStart := partitionRows(c, sh, shards)
	tables := make([]map[uint64][]int, shards)
	shardBuild := make([]int, shards)
	c.ParallelFor(shards, 1, func(plo, phi int) {
		for pt := plo; pt < phi; pt++ {
			span := sRows[sStart[pt]:sStart[pt+1]]
			mp := make(map[uint64][]int, len(span)/2+1)
			for _, j := range span {
				mp[sh[j]] = append(mp[sh[j]], j)
			}
			tables[pt] = mp
			shardBuild[pt] = len(span)
		}
	})
	c.Arena().FreeInts(sRows)

	// Shard the probe side. Probe pass 1: per-shard match counting into
	// one global per-row array — rows are disjoint across shards.
	rh := rkc.hashes(c)
	n := rkc.n
	rRows, rStart := partitionRows(c, rh, shards)
	counts := c.Arena().Ints(n)
	c.ParallelFor(shards, 1, func(plo, phi int) {
		for pt := plo; pt < phi; pt++ {
			mp := tables[pt]
			for _, i := range rRows[rStart[pt]:rStart[pt+1]] {
				cnt := 0
				for _, j := range mp[rh[i]] {
					if rkc.equal(i, skc, j) {
						cnt++
					}
				}
				counts[i] = cnt
			}
		}
	})

	// The same fixed serial prefix sum as probePairs: output offsets in
	// probe order, independent of the sharding.
	total := 0
	anyUnmatched := false
	for i := 0; i < n; i++ {
		cnt := counts[i]
		if cnt == 0 && leftOuter {
			cnt = 1
			anyUnmatched = true
		}
		counts[i] = total
		total += cnt
	}

	// Probe pass 2: per-shard scatter into disjoint ranges of the
	// canonical output.
	li := c.Arena().Ints(total)
	ri := c.Arena().Ints(total)
	shardPairs := make([]int, shards)
	c.ParallelFor(shards, 1, func(plo, phi int) {
		for pt := plo; pt < phi; pt++ {
			mp := tables[pt]
			pairs := 0
			for _, i := range rRows[rStart[pt]:rStart[pt+1]] {
				k := counts[i]
				wrote := false
				for _, j := range mp[rh[i]] {
					if rkc.equal(i, skc, j) {
						li[k] = i
						ri[k] = j
						k++
						wrote = true
						pairs++
					}
				}
				if !wrote && leftOuter {
					li[k] = i
					ri[k] = -1
					pairs++
				}
			}
			shardPairs[pt] = pairs
		}
	})
	c.Arena().FreeInts(counts)
	c.Arena().FreeInts(rRows)
	if ps != nil {
		for pt := 0; pt < shards; pt++ {
			ps.Stage(fmt.Sprintf("exchange.join[shard %d/%d]", pt, shards)).
				Batch(shardPairs[pt], int64(shardBuild[pt])*8+int64(shardPairs[pt])*16)
		}
	}
	rkc.release(c)
	skc.release(c)

	left := r.Gather(c, li)
	schema := left.Schema.Clone()
	cols := append([]*bat.BAT(nil), left.Cols...)
	for _, name := range sAttrs {
		j := s.Schema.Index(name)
		schema = append(schema, s.Schema[j])
		cols = append(cols, gatherWithNulls(c, s.Cols[j], ri, leftOuter && anyUnmatched))
	}
	c.Arena().FreeInts(li)
	c.Arena().FreeInts(ri)
	return New(r.Name, schema, cols)
}

// ExchangeGroupBy computes ϑ through a radix exchange: rows are
// hash-partitioned into shards, each shard aggregates its rows on the
// global bat.SerialCutoff chunk boundaries, and the shard group lists
// are merged by ascending first-seen row. Bitwise-identical to
// GroupBySized at any worker budget and shard count. An empty key list
// (one global group) has nothing to partition on and delegates. When
// ps is non-nil, one stage per shard reports the shard's group count.
func ExchangeGroupBy(c *exec.Ctx, r *Relation, keys []string, aggs []AggSpec, shards, groupHint int, ps *exec.PipelineStats) (res *Relation, err error) {
	defer exec.CatchBudget(&err)
	if shards < 1 {
		return nil, fmt.Errorf("rel: exchange group-by needs at least one shard, got %d", shards)
	}
	if len(keys) == 0 {
		return GroupBySized(c, r, keys, aggs, groupHint)
	}
	if len(aggs) == 0 {
		return nil, fmt.Errorf("rel: group by without aggregates")
	}
	inCols := make([][]float64, len(aggs))
	srcCols := make([]*bat.BAT, len(aggs))
	defer func() {
		for k, f := range inCols {
			if srcCols[k] != nil {
				srcCols[k].ReleaseFloats(c, f)
			}
		}
	}()
	for k, a := range aggs {
		if a.Attr == "" {
			if a.Func != Count {
				return nil, fmt.Errorf("rel: %v(*) not supported", a.Func)
			}
			continue
		}
		col, err := r.Col(a.Attr)
		if err != nil {
			return nil, err
		}
		f, err := col.FloatsCtx(c)
		if err != nil {
			return nil, fmt.Errorf("rel: aggregate %v over non-numeric %q", a.Func, a.Attr)
		}
		inCols[k], srcCols[k] = f, col
	}
	kc, err := newKeyCols(c, r, keys)
	if err != nil {
		return nil, err
	}
	defer kc.release(c)
	hash := kc.hashes(c)

	rows, start := partitionRows(c, hash, shards)
	mergeds := make([]*aggTable, shards)
	c.ParallelFor(shards, 1, func(plo, phi int) {
		for pt := plo; pt < phi; pt++ {
			span := rows[start[pt]:start[pt+1]]
			hint := len(span)/4 + 1
			if groupHint > 0 && groupHint/shards < hint {
				hint = groupHint/shards + 1
			}
			merged := newAggTable(hint)
			// The shard's rows ascend, so each global SerialCutoff chunk
			// is one contiguous run: fold it into a fresh partial, then
			// combine partials in ascending chunk order — the exact
			// association GroupBySized uses (combining into a fresh
			// merged state reproduces a lone partial bitwise; see the
			// StreamAgg chunk-flush note).
			idx := 0
			for idx < len(span) {
				ch := span[idx] / bat.SerialCutoff
				t := newAggTable(hint/4 + 1)
				for idx < len(span) && span[idx]/bat.SerialCutoff == ch {
					i := span[idx]
					g := t.find(kc, hash, i, len(aggs))
					for k := range aggs {
						g.st[k].accumulate(inCols[k], i)
					}
					idx++
				}
				for li := range t.groups {
					lg := &t.groups[li]
					g := merged.find(kc, hash, lg.row, len(aggs))
					for k := range aggs {
						g.st[k].combine(&lg.st[k])
					}
				}
			}
			mergeds[pt] = merged
		}
	})
	c.Arena().FreeInts(rows)
	if ps != nil {
		for pt := 0; pt < shards; pt++ {
			ps.Stage(fmt.Sprintf("exchange.group[shard %d/%d]", pt, shards)).
				Batch(len(mergeds[pt].groups), int64(start[pt+1]-start[pt])*8)
		}
	}

	// Merge the shard group lists in global first-seen order. A group's
	// stored row is its first (minimum) global row — shards fold rows
	// ascending — and first rows are unique across groups, so sorting
	// by row reproduces GroupBySized's output order exactly.
	type ent struct{ pt, gi int }
	var ents []ent
	for pt, m := range mergeds {
		for gi := range m.groups {
			ents = append(ents, ent{pt, gi})
		}
	}
	sort.Slice(ents, func(i, j int) bool {
		return mergeds[ents[i].pt].groups[ents[i].gi].row < mergeds[ents[j].pt].groups[ents[j].gi].row
	})
	groups := make([]int, len(ents))
	states := make([][]aggState, len(ents))
	for k, e := range ents {
		g := &mergeds[e.pt].groups[e.gi]
		groups[k] = g.row
		states[k] = g.st
	}
	kc.release(c)

	schema := make(Schema, 0, len(keys)+len(aggs))
	cols := make([]*bat.BAT, 0, len(keys)+len(aggs))
	rep := r.Gather(c, groups)
	for _, name := range keys {
		j := rep.Schema.Index(name)
		schema = append(schema, rep.Schema[j])
		cols = append(cols, rep.Cols[j])
	}
	for k, a := range aggs {
		name := a.As
		if name == "" {
			name = fmt.Sprintf("%s_%s", strings.ToLower(a.Func.String()), a.Attr)
		}
		switch a.Func {
		case Count:
			out := make([]int64, len(groups))
			for g := range groups {
				out[g] = states[g][k].count
			}
			schema = append(schema, Attr{Name: name, Type: bat.Int})
			cols = append(cols, bat.FromInts(out))
		default:
			out := make([]float64, len(groups))
			for g := range groups {
				st := &states[g][k]
				switch a.Func {
				case Sum:
					out[g] = st.sum
				case Avg:
					out[g] = st.sum / float64(st.count)
				case Min:
					out[g] = st.min
				case Max:
					out[g] = st.max
				}
			}
			schema = append(schema, Attr{Name: name, Type: bat.Float})
			cols = append(cols, bat.FromFloats(out))
		}
	}
	return New(r.Name, schema, cols)
}

// PartitionedBuild is the exchange counterpart of JoinBuild for the
// streaming pipeline: the build side is hash-partitioned into shards
// with one hash table each, probed one morsel at a time through the
// same canonical probePairs path — so the morsel outputs concatenate
// to exactly the single-table streamed join, and to HashJoinSized.
type PartitionedBuild struct {
	skc       *keyCols
	table     *shardedTable
	shardRows []int
}

// NewPartitionedBuild shards the build-side key columns. hint is the
// expected number of distinct build keys (≤ 0 for the default sizing).
func NewPartitionedBuild(c *exec.Ctx, buildKeys []*bat.BAT, shards, hint int) (*PartitionedBuild, error) {
	if len(buildKeys) == 0 {
		return nil, fmt.Errorf("rel: join build needs a non-empty key list")
	}
	if shards < 1 {
		return nil, fmt.Errorf("rel: partitioned build needs at least one shard, got %d", shards)
	}
	skc := keyColsOf(c, buildKeys[0].Len(), buildKeys)
	sh := skc.hashes(c)
	rows, start := partitionRows(c, sh, shards)
	parts := make([]map[uint64][]int, shards)
	shardRows := make([]int, shards)
	c.ParallelFor(shards, 1, func(plo, phi int) {
		for pt := plo; pt < phi; pt++ {
			span := rows[start[pt]:start[pt+1]]
			szHint := len(span)/2 + 1
			if hint > 0 && hint/shards < szHint {
				szHint = hint/shards + 1
			}
			mp := make(map[uint64][]int, szHint)
			for _, j := range span {
				mp[sh[j]] = append(mp[sh[j]], j)
			}
			parts[pt] = mp
			shardRows[pt] = len(span)
		}
	})
	c.Arena().FreeInts(rows)
	return &PartitionedBuild{
		skc:       skc,
		table:     &shardedTable{shards: uint64(shards), parts: parts},
		shardRows: shardRows,
	}, nil
}

// Rows returns the build-side row count.
func (b *PartitionedBuild) Rows() int { return b.skc.n }

// Shards returns the shard count.
func (b *PartitionedBuild) Shards() int { return len(b.shardRows) }

// ShardRows returns the number of build rows in shard pt.
func (b *PartitionedBuild) ShardRows(pt int) int { return b.shardRows[pt] }

// Probe joins one probe morsel against the sharded build side, with
// JoinBuild.Probe's exact output contract.
func (b *PartitionedBuild) Probe(c *exec.Ctx, probeKeys []*bat.BAT, leftOuter bool) (li, ri []int, anyUnmatched bool, err error) {
	defer exec.CatchBudget(&err)
	if len(probeKeys) == 0 {
		return nil, nil, false, fmt.Errorf("rel: join probe needs a non-empty key list")
	}
	rkc := keyColsOf(c, probeKeys[0].Len(), probeKeys)
	li, ri, anyUnmatched = probePairs(c, b.table, rkc, b.skc, leftOuter)
	rkc.release(c)
	return li, ri, anyUnmatched, nil
}

// Release hands back the build side's densified key buffers. The
// PartitionedBuild must not be probed afterwards.
func (b *PartitionedBuild) Release(c *exec.Ctx) {
	if b == nil {
		return
	}
	b.skc.release(c)
	b.table = nil
}

// ShardedAgg is the exchange counterpart of StreamAgg: every row is
// routed by key hash to one of P shard accumulators, all of which
// flush their chunk partials on the *global* bat.SerialCutoff
// boundaries (one shared chunk clock) — so each group's combine
// sequence is identical to the single accumulator's, and Finish can
// merge the shard groups by ascending first-seen row into exactly the
// single accumulator's output. Sharded accumulators run in memory
// (spilling aggregation stays with the materialized retry path).
type ShardedAgg struct {
	shards      []*StreamAgg
	first       [][]int64 // per shard: global first-seen row per group
	rowsInChunk int
	seen        int64
}

// NewShardedAgg returns a sharded accumulator over the given grouping
// keys; keys must be non-empty (a single global group has nothing to
// partition on — use StreamAgg).
func NewShardedAgg(name string, keys []string, keyTypes []bat.Type, aggs []AggSpec, shards, hint int) (*ShardedAgg, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("rel: sharded group-by needs grouping keys")
	}
	if shards < 1 {
		return nil, fmt.Errorf("rel: sharded group-by needs at least one shard, got %d", shards)
	}
	sa := &ShardedAgg{
		shards: make([]*StreamAgg, shards),
		first:  make([][]int64, shards),
	}
	for p := range sa.shards {
		a, err := NewStreamAgg(name, keys, keyTypes, aggs, hint/shards+1)
		if err != nil {
			return nil, err
		}
		sa.shards[p] = a
	}
	return sa, nil
}

// Shards returns the shard count.
func (a *ShardedAgg) Shards() int { return len(a.shards) }

// ShardGroups returns the number of groups shard pt holds so far.
func (a *ShardedAgg) ShardGroups(pt int) int { return a.shards[pt].NumGroups() }

// NumGroups returns the number of groups seen so far across shards.
func (a *ShardedAgg) NumGroups() int {
	n := 0
	for _, s := range a.shards {
		n += s.NumGroups()
	}
	return n
}

// Consume folds one morsel with StreamAgg.Consume's contract. Rows are
// routed to shards by key hash; the chunk clock is global, so chunk
// boundaries fall on the same absolute rows as the single accumulator's.
func (a *ShardedAgg) Consume(keys []*bat.Vector, aggIn [][]float64, n int) error {
	p := uint64(len(a.shards))
	for i := 0; i < n; i++ {
		if a.rowsInChunk == bat.SerialCutoff {
			for _, s := range a.shards {
				s.flushChunk()
			}
			a.rowsInChunk = 0
		}
		h := a.shards[0].hashKeyRow(keys, i)
		pt := int(h % p)
		s := a.shards[pt]
		before := len(s.states)
		if err := s.consumeRow(keys, aggIn, i, h); err != nil {
			return err
		}
		if len(s.states) > before {
			a.first[pt] = append(a.first[pt], a.seen)
		}
		a.rowsInChunk++
		a.seen++
	}
	return nil
}

// Finish assembles the grouped relation: each shard finishes
// independently, and the shard group lists merge by ascending global
// first-seen row — StreamAgg.Finish's exact output, shape and order.
func (a *ShardedAgg) Finish() (*Relation, error) {
	rels := make([]*Relation, len(a.shards))
	for pt, s := range a.shards {
		r, err := s.Finish()
		if err != nil {
			return nil, err
		}
		rels[pt] = r
	}
	type ent struct {
		pt, gi int
		row    int64
	}
	var ents []ent
	for pt, rows := range a.first {
		for gi, row := range rows {
			ents = append(ents, ent{pt, gi, row})
		}
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].row < ents[j].row })

	schema := rels[0].Schema
	cols := make([]*bat.BAT, len(schema))
	for j := range schema {
		switch schema[j].Type {
		case bat.Int:
			views := make([][]int64, len(rels))
			for pt := range rels {
				views[pt] = rels[pt].Cols[j].Vector().Ints()
			}
			out := make([]int64, len(ents))
			for k, e := range ents {
				out[k] = views[e.pt][e.gi]
			}
			cols[j] = bat.FromInts(out)
		case bat.String:
			views := make([][]string, len(rels))
			for pt := range rels {
				views[pt] = rels[pt].Cols[j].Vector().Strings()
			}
			out := make([]string, len(ents))
			for k, e := range ents {
				out[k] = views[e.pt][e.gi]
			}
			cols[j] = bat.FromStrings(out)
		default:
			views := make([][]float64, len(rels))
			for pt := range rels {
				views[pt] = rels[pt].Cols[j].Vector().Floats()
			}
			out := make([]float64, len(ents))
			for k, e := range ents {
				out[k] = views[e.pt][e.gi]
			}
			cols[j] = bat.FromFloats(out)
		}
	}
	return New(rels[0].Name, schema, cols)
}
