package rel

import (
	"strings"
	"testing"

	"repro/internal/bat"
)

// ratings is the example database of the paper's Figure 5.
func ratings() *Relation {
	b := NewBuilder("rating", Schema{
		{Name: "User", Type: bat.String},
		{Name: "Balto", Type: bat.Float},
		{Name: "Heat", Type: bat.Float},
		{Name: "Net", Type: bat.Float},
	})
	b.MustAdd(bat.StringValue("Ann"), bat.FloatValue(2.0), bat.FloatValue(1.5), bat.FloatValue(0.5))
	b.MustAdd(bat.StringValue("Tom"), bat.FloatValue(0.0), bat.FloatValue(0.0), bat.FloatValue(1.5))
	b.MustAdd(bat.StringValue("Jan"), bat.FloatValue(1.0), bat.FloatValue(4.0), bat.FloatValue(1.0))
	return b.Relation()
}

func users() *Relation {
	b := NewBuilder("user", Schema{
		{Name: "User", Type: bat.String},
		{Name: "State", Type: bat.String},
		{Name: "YoB", Type: bat.Int},
	})
	b.MustAdd(bat.StringValue("Ann"), bat.StringValue("CA"), bat.IntValue(1980))
	b.MustAdd(bat.StringValue("Tom"), bat.StringValue("FL"), bat.IntValue(1965))
	b.MustAdd(bat.StringValue("Jan"), bat.StringValue("CA"), bat.IntValue(1970))
	return b.Relation()
}

func TestNewValidation(t *testing.T) {
	if _, err := New("x", Schema{{Name: "A", Type: bat.Float}}, nil); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := New("x",
		Schema{{Name: "A", Type: bat.Float}},
		[]*bat.BAT{bat.FromInts([]int64{1})}); err == nil {
		t.Error("type mismatch accepted")
	}
	if _, err := New("x",
		Schema{{Name: "A", Type: bat.Float}, {Name: "A", Type: bat.Float}},
		[]*bat.BAT{bat.FromFloats([]float64{1}), bat.FromFloats([]float64{2})}); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if _, err := New("x",
		Schema{{Name: "A", Type: bat.Float}, {Name: "B", Type: bat.Float}},
		[]*bat.BAT{bat.FromFloats([]float64{1}), bat.FromFloats([]float64{2, 3})}); err == nil {
		t.Error("ragged columns accepted")
	}
}

func TestBuilderCoercion(t *testing.T) {
	b := NewBuilder("t", Schema{{Name: "A", Type: bat.Float}})
	if err := b.Add(bat.IntValue(3)); err != nil {
		t.Fatalf("int into float column: %v", err)
	}
	r := b.Relation()
	if got := r.Value(0, 0); got.Type != bat.Float || got.F != 3 {
		t.Errorf("coerced value = %v", got)
	}
	if err := b.Add(bat.StringValue("x")); err == nil {
		t.Error("string into float column accepted")
	}
	if err := b.Add(); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestSelectProject(t *testing.T) {
	r := ratings()
	pred, err := r.FloatPred("Heat", func(v float64) bool { return v >= 1.5 })
	if err != nil {
		t.Fatal(err)
	}
	sel := r.Select(nil, pred)
	if sel.NumRows() != 2 {
		t.Fatalf("selected %d rows", sel.NumRows())
	}
	p, err := sel.Project("User", "Heat")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCols() != 2 || p.Schema[0].Name != "User" {
		t.Errorf("projection schema %v", p.Schema.Names())
	}
	if got := p.Value(1, 0).S; got != "Jan" {
		t.Errorf("row 1 user = %q", got)
	}
	if _, err := r.Project("Nope"); err == nil {
		t.Error("projecting missing attribute accepted")
	}
}

func TestStringPredAndDrop(t *testing.T) {
	u := users()
	pred, err := u.StringPred("State", func(s string) bool { return s == "CA" })
	if err != nil {
		t.Fatal(err)
	}
	ca := u.Select(nil, pred)
	if ca.NumRows() != 2 {
		t.Fatalf("CA users = %d", ca.NumRows())
	}
	d, err := ca.Drop("YoB")
	if err != nil {
		t.Fatal(err)
	}
	if d.NumCols() != 2 {
		t.Errorf("drop left %d cols", d.NumCols())
	}
	if _, err := u.StringPred("YoB", nil); err == nil {
		t.Error("string predicate over int column accepted")
	}
	if _, err := u.FloatPred("User", nil); err == nil {
		t.Error("float predicate over string column accepted")
	}
}

func TestRename(t *testing.T) {
	r := ratings()
	rn, err := r.Rename(map[string]string{"User": "U"})
	if err != nil {
		t.Fatal(err)
	}
	if rn.Schema.Index("U") != 0 || rn.Schema.Index("User") != -1 {
		t.Errorf("rename schema = %v", rn.Schema.Names())
	}
	// Original unchanged (schema cloned).
	if r.Schema.Index("User") != 0 {
		t.Error("rename mutated the argument")
	}
	if _, err := r.Rename(map[string]string{"Nope": "X"}); err == nil {
		t.Error("renaming missing attribute accepted")
	}
}

func TestHashJoinInner(t *testing.T) {
	// The paper's w1 preparation: users ⋈ ratings on User, CA only.
	u := users()
	r := ratings()
	j, err := HashJoin(nil, u, r, []string{"User"}, []string{"User"}, Inner)
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 3 {
		t.Fatalf("join rows = %d", j.NumRows())
	}
	want := []string{"User", "State", "YoB", "Balto", "Heat", "Net"}
	got := j.Schema.Names()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("join schema = %v", got)
	}
	pred, _ := j.StringPred("State", func(s string) bool { return s == "CA" })
	ca := j.Select(nil, pred)
	if ca.NumRows() != 2 {
		t.Errorf("CA join rows = %d", ca.NumRows())
	}
}

func TestHashJoinMultiKeyAndDuplicates(t *testing.T) {
	b1 := NewBuilder("l", Schema{{Name: "A", Type: bat.Int}, {Name: "B", Type: bat.Int}, {Name: "X", Type: bat.Float}})
	b1.MustAdd(bat.IntValue(1), bat.IntValue(1), bat.FloatValue(10))
	b1.MustAdd(bat.IntValue(1), bat.IntValue(2), bat.FloatValue(20))
	b1.MustAdd(bat.IntValue(2), bat.IntValue(1), bat.FloatValue(30))
	l := b1.Relation()
	b2 := NewBuilder("r", Schema{{Name: "C", Type: bat.Int}, {Name: "D", Type: bat.Int}, {Name: "Y", Type: bat.Float}})
	b2.MustAdd(bat.IntValue(1), bat.IntValue(1), bat.FloatValue(100))
	b2.MustAdd(bat.IntValue(1), bat.IntValue(1), bat.FloatValue(200)) // duplicate key
	b2.MustAdd(bat.IntValue(9), bat.IntValue(9), bat.FloatValue(300))
	rr := b2.Relation()
	j, err := HashJoin(nil, l, rr, []string{"A", "B"}, []string{"C", "D"}, Inner)
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 2 { // (1,1) matches two right rows
		t.Fatalf("join rows = %d", j.NumRows())
	}
	ys, _ := j.Col("Y")
	f, _ := ys.Floats()
	if f[0]+f[1] != 300 {
		t.Errorf("joined Y values = %v", f)
	}
}

func TestHashJoinLeft(t *testing.T) {
	l := MustNew("l", Schema{{Name: "K", Type: bat.Int}},
		[]*bat.BAT{bat.FromInts([]int64{1, 2})})
	r := MustNew("r", Schema{{Name: "K2", Type: bat.Int}, {Name: "V", Type: bat.Float}},
		[]*bat.BAT{bat.FromInts([]int64{1}), bat.FromFloats([]float64{7})})
	j, err := HashJoin(nil, l, r, []string{"K"}, []string{"K2"}, Left)
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 2 {
		t.Fatalf("left join rows = %d", j.NumRows())
	}
	v, _ := j.Col("V")
	f, _ := v.Floats()
	if f[0] != 7 || f[1] != 0 {
		t.Errorf("left join V = %v", f)
	}
}

func TestJoinErrors(t *testing.T) {
	l := MustNew("l", Schema{{Name: "K", Type: bat.Int}}, []*bat.BAT{bat.FromInts([]int64{1})})
	r := MustNew("r", Schema{{Name: "K", Type: bat.Int}, {Name: "V", Type: bat.Float}},
		[]*bat.BAT{bat.FromInts([]int64{1}), bat.FromFloats([]float64{7})})
	if _, err := HashJoin(nil, l, r, nil, nil, Inner); err == nil {
		t.Error("empty key list accepted")
	}
	// Name clash: r.V vs a second relation also exposing V.
	l2 := MustNew("l2", Schema{{Name: "K", Type: bat.Int}, {Name: "V", Type: bat.Float}},
		[]*bat.BAT{bat.FromInts([]int64{1}), bat.FromFloats([]float64{1})})
	if _, err := HashJoin(nil, l2, r, []string{"K"}, []string{"K"}, Inner); err == nil {
		t.Error("duplicate non-key attribute accepted")
	}
}

func TestCross(t *testing.T) {
	a := MustNew("a", Schema{{Name: "X", Type: bat.Int}}, []*bat.BAT{bat.FromInts([]int64{1, 2})})
	b := MustNew("b", Schema{{Name: "Y", Type: bat.Int}}, []*bat.BAT{bat.FromInts([]int64{10, 20, 30})})
	c, err := Cross(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumRows() != 6 || c.NumCols() != 2 {
		t.Fatalf("cross size = %dx%d", c.NumRows(), c.NumCols())
	}
	if _, err := Cross(nil, a, a); err == nil {
		t.Error("cross with duplicate attributes accepted")
	}
}

func TestUnionDistinct(t *testing.T) {
	a := MustNew("a", Schema{{Name: "X", Type: bat.Int}}, []*bat.BAT{bat.FromInts([]int64{1, 2})})
	b := MustNew("b", Schema{{Name: "X", Type: bat.Int}}, []*bat.BAT{bat.FromInts([]int64{2, 3})})
	u, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumRows() != 4 {
		t.Fatalf("bag union rows = %d", u.NumRows())
	}
	d := u.Distinct(nil)
	if d.NumRows() != 3 {
		t.Errorf("distinct rows = %d", d.NumRows())
	}
	c := MustNew("c", Schema{{Name: "X", Type: bat.Float}}, []*bat.BAT{bat.FromFloats([]float64{1})})
	if _, err := Union(a, c); err == nil {
		t.Error("union of incompatible types accepted")
	}
}

func TestGroupBy(t *testing.T) {
	j, _ := HashJoin(nil, users(), ratings(), []string{"User"}, []string{"User"}, Inner)
	g, err := GroupBy(nil, j, []string{"State"}, []AggSpec{
		{Func: Count, As: "n"},
		{Func: Avg, Attr: "Heat", As: "avg_heat"},
		{Func: Sum, Attr: "Balto", As: "sum_balto"},
		{Func: Min, Attr: "Net", As: "min_net"},
		{Func: Max, Attr: "Net", As: "max_net"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRows() != 2 {
		t.Fatalf("groups = %d", g.NumRows())
	}
	// First-seen order: CA (Ann) then FL (Tom).
	if g.Value(0, 0).S != "CA" || g.Value(1, 0).S != "FL" {
		t.Fatalf("group order: %v, %v", g.Value(0, 0), g.Value(1, 0))
	}
	if n := g.Value(0, 1).I; n != 2 {
		t.Errorf("CA count = %d", n)
	}
	if avg := g.Value(0, 2).F; avg != (1.5+4.0)/2 {
		t.Errorf("CA avg heat = %v", avg)
	}
	if s := g.Value(0, 3).F; s != 3.0 {
		t.Errorf("CA sum balto = %v", s)
	}
	if mn, mx := g.Value(0, 4).F, g.Value(0, 5).F; mn != 0.5 || mx != 1.0 {
		t.Errorf("CA min/max net = %v/%v", mn, mx)
	}
}

func TestGroupByGlobal(t *testing.T) {
	r := ratings()
	g, err := GroupBy(nil, r, nil, []AggSpec{{Func: Count, As: "M"}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRows() != 1 || g.Value(0, 0).I != 3 {
		t.Fatalf("global count = %v", g.Value(0, 0))
	}
	empty := Empty("e", Schema{{Name: "A", Type: bat.Float}})
	g2, err := GroupBy(nil, empty, nil, []AggSpec{{Func: Count, As: "M"}})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumRows() != 0 {
		t.Errorf("global count over empty = %d rows", g2.NumRows())
	}
}

func TestGroupByErrors(t *testing.T) {
	r := ratings()
	if _, err := GroupBy(nil, r, nil, nil); err == nil {
		t.Error("no aggregates accepted")
	}
	if _, err := GroupBy(nil, r, nil, []AggSpec{{Func: Avg}}); err == nil {
		t.Error("AVG(*) accepted")
	}
	if _, err := GroupBy(nil, r, nil, []AggSpec{{Func: Sum, Attr: "User"}}); err == nil {
		t.Error("SUM over string accepted")
	}
	if _, err := GroupBy(nil, r, []string{"Nope"}, []AggSpec{{Func: Count}}); err == nil {
		t.Error("grouping on missing attribute accepted")
	}
}

func TestSortLimit(t *testing.T) {
	r := ratings()
	s, err := r.Sort(nil, OrderSpec{Attr: "Heat", Desc: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.Value(0, 0).S != "Jan" {
		t.Errorf("desc sort first = %v", s.Value(0, 0))
	}
	s2, _ := r.Sort(nil, OrderSpec{Attr: "User"})
	if s2.Value(0, 0).S != "Ann" || s2.Value(2, 0).S != "Tom" {
		t.Errorf("asc sort = %v %v", s2.Value(0, 0), s2.Value(2, 0))
	}
	l := s2.Limit(nil, 2)
	if l.NumRows() != 2 {
		t.Errorf("limit rows = %d", l.NumRows())
	}
	if s2.Limit(nil, 99).NumRows() != 3 {
		t.Error("limit beyond size should clamp")
	}
	if _, err := r.Sort(nil, OrderSpec{Attr: "Nope"}); err == nil {
		t.Error("sorting on missing attribute accepted")
	}
}

func TestPrint(t *testing.T) {
	r := ratings()
	out := r.String()
	if !strings.Contains(out, "User") || !strings.Contains(out, "Ann") {
		t.Errorf("print output missing content:\n%s", out)
	}
	h := r.Head(1)
	if !strings.Contains(h, "(3 rows total)") {
		t.Errorf("head output missing total note:\n%s", h)
	}
	// Float formatting: integers print bare, fractions with 4 decimals.
	if !strings.Contains(out, "1.5000") {
		t.Errorf("fractional formatting missing:\n%s", out)
	}
}

func TestCloneIndependence(t *testing.T) {
	r := ratings()
	c := r.Clone()
	c.Cols[1].Vector().Set(0, bat.FloatValue(-99))
	if r.Value(0, 1).F == -99 {
		t.Error("clone shares column storage")
	}
	w := r.WithName("other")
	if w.Name != "other" || r.Name != "rating" {
		t.Error("WithName broken")
	}
}

func TestValueAndRow(t *testing.T) {
	r := ratings()
	row := r.Row(1)
	if row[0].S != "Tom" || row[3].F != 1.5 {
		t.Errorf("row = %v", row)
	}
	if r.NumCols() != 4 {
		t.Errorf("NumCols = %d", r.NumCols())
	}
	if _, err := r.Col("Nope"); err == nil {
		t.Error("missing column accepted")
	}
}
