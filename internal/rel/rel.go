// Package rel implements a column-oriented relational algebra engine on top
// of the BAT substrate: selection, projection, joins, grouping/aggregation,
// renaming, set operations, sorting, and pretty printing. It is the
// relational half of the mixed workloads in the paper; the RMA operations in
// internal/core produce and consume the same Relation type, which is what
// makes the algebra closed.
//
// The hash-based operators (HashJoin, GroupBy, Distinct) identify rows by
// typed 64-bit key hashes with collision resolution against the actual key
// columns (see key.go) and decompose their scans over the exec.Ctx passed
// per invocation — concurrent queries with different worker budgets each
// carry their own context and never share a knob. HashJoin, GroupBy, and
// Sort are deterministic at any worker budget: the same row order and
// bitwise-identical float payloads whether they run serially or on eight
// workers.
package rel

import (
	"fmt"
	"strings"

	"repro/internal/bat"
)

// Attr is an attribute: a name and a domain.
type Attr struct {
	Name string
	Type bat.Type
}

// Schema is a finite ordered list of attributes.
type Schema []Attr

// Names returns the attribute names in schema order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for k, a := range s {
		out[k] = a.Name
	}
	return out
}

// Index returns the position of the named attribute, or -1.
func (s Schema) Index(name string) int {
	for k, a := range s {
		if a.Name == name {
			return k
		}
	}
	return -1
}

// Clone copies the schema.
func (s Schema) Clone() Schema { return append(Schema(nil), s...) }

// Relation is a relation instance: a schema plus one BAT per attribute, all
// sharing the same virtual OID head. Name is optional and used for error
// messages and for the row origin of shape-(1,1) operations (det, rnk).
type Relation struct {
	Name   string
	Schema Schema
	Cols   []*bat.BAT
}

// New builds a relation from a schema and matching columns.
func New(name string, schema Schema, cols []*bat.BAT) (*Relation, error) {
	if len(schema) != len(cols) {
		return nil, fmt.Errorf("rel: %d attributes but %d columns", len(schema), len(cols))
	}
	n := -1
	for k, c := range cols {
		if c.Type() != schema[k].Type {
			return nil, fmt.Errorf("rel: attribute %s declared %v but column is %v",
				schema[k].Name, schema[k].Type, c.Type())
		}
		if n == -1 {
			n = c.Len()
		} else if c.Len() != n {
			return nil, fmt.Errorf("rel: ragged columns (%d vs %d)", n, c.Len())
		}
	}
	seen := make(map[string]bool, len(schema))
	for _, a := range schema {
		if seen[a.Name] {
			return nil, fmt.Errorf("rel: duplicate attribute %q", a.Name)
		}
		seen[a.Name] = true
	}
	return &Relation{Name: name, Schema: schema, Cols: cols}, nil
}

// MustNew is New that panics on error; for tests and literals.
func MustNew(name string, schema Schema, cols []*bat.BAT) *Relation {
	r, err := New(name, schema, cols)
	if err != nil {
		panic(err)
	}
	return r
}

// Empty returns a zero-row relation with the given schema.
func Empty(name string, schema Schema) *Relation {
	cols := make([]*bat.BAT, len(schema))
	for k, a := range schema {
		cols[k] = bat.FromVector(bat.NewEmptyVector(a.Type, 0))
	}
	return &Relation{Name: name, Schema: schema, Cols: cols}
}

// NumRows returns |r|.
func (r *Relation) NumRows() int {
	if len(r.Cols) == 0 {
		return 0
	}
	return r.Cols[0].Len()
}

// NumCols returns the arity.
func (r *Relation) NumCols() int { return len(r.Schema) }

// Col returns the column of the named attribute.
func (r *Relation) Col(name string) (*bat.BAT, error) {
	k := r.Schema.Index(name)
	if k < 0 {
		return nil, fmt.Errorf("rel: no attribute %q in %s", name, r.describe())
	}
	return r.Cols[k], nil
}

// Value returns the cell at row i, attribute position k.
func (r *Relation) Value(i, k int) bat.Value { return r.Cols[k].Get(i) }

// Row materializes row i.
func (r *Relation) Row(i int) []bat.Value {
	row := make([]bat.Value, len(r.Cols))
	for k, c := range r.Cols {
		row[k] = c.Get(i)
	}
	return row
}

// Clone deep-copies the relation.
func (r *Relation) Clone() *Relation {
	cols := make([]*bat.BAT, len(r.Cols))
	for k, c := range r.Cols {
		cols[k] = c.Clone()
	}
	return &Relation{Name: r.Name, Schema: r.Schema.Clone(), Cols: cols}
}

// WithName returns a shallow copy carrying a new relation name.
func (r *Relation) WithName(name string) *Relation {
	return &Relation{Name: name, Schema: r.Schema, Cols: r.Cols}
}

func (r *Relation) describe() string {
	if r.Name != "" {
		return fmt.Sprintf("%s(%s)", r.Name, strings.Join(r.Schema.Names(), ","))
	}
	return "(" + strings.Join(r.Schema.Names(), ",") + ")"
}

// Builder accumulates rows and produces a Relation; used by INSERT, by the
// data generators, and by tests.
type Builder struct {
	name   string
	schema Schema
	vecs   []*bat.Vector
}

// NewBuilder returns a row builder for the given schema.
func NewBuilder(name string, schema Schema) *Builder {
	b := &Builder{name: name, schema: schema, vecs: make([]*bat.Vector, len(schema))}
	for k, a := range schema {
		b.vecs[k] = bat.NewEmptyVector(a.Type, 16)
	}
	return b
}

// Add appends one row; values must match the schema arity and types.
func (b *Builder) Add(vals ...bat.Value) error {
	if len(vals) != len(b.schema) {
		return fmt.Errorf("rel: row arity %d, schema arity %d", len(vals), len(b.schema))
	}
	for k, v := range vals {
		if v.Type != b.schema[k].Type {
			// Permit int literals flowing into float columns, the one
			// coercion SQL needs constantly.
			if v.Type == bat.Int && b.schema[k].Type == bat.Float {
				vals[k] = bat.FloatValue(float64(v.I))
				continue
			}
			return fmt.Errorf("rel: value %v for attribute %s (%v)", v, b.schema[k].Name, b.schema[k].Type)
		}
	}
	for k, v := range vals {
		b.vecs[k].Append(v)
	}
	return nil
}

// MustAdd is Add that panics on error.
func (b *Builder) MustAdd(vals ...bat.Value) {
	if err := b.Add(vals...); err != nil {
		panic(err)
	}
}

// Relation finalizes the builder.
func (b *Builder) Relation() *Relation {
	cols := make([]*bat.BAT, len(b.vecs))
	for k, v := range b.vecs {
		cols[k] = bat.FromVector(v)
	}
	return &Relation{Name: b.name, Schema: b.schema, Cols: cols}
}
