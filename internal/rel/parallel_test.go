package rel

import (
	"testing"

	"repro/internal/bat"
)

// boundaryRel builds a deterministic relation of n rows with a
// moderate-cardinality int key, a float value, and a low-cardinality
// string tag, using direct column construction (fast enough for
// chunk-boundary sizes).
func boundaryRel(name string, n int, card int64) *Relation {
	keys := make([]int64, n)
	vals := make([]float64, n)
	tags := make([]string, n)
	tagset := []string{"x", "y", "z"}
	for i := 0; i < n; i++ {
		keys[i] = (int64(i)*7919 + 13) % card
		vals[i] = float64((int64(i)*104729+7)%2000-1000) / 3.0
		tags[i] = tagset[(i*31)%len(tagset)]
	}
	return MustNew(name, Schema{
		{Name: name + "_k", Type: bat.Int},
		{Name: name + "_v", Type: bat.Float},
		{Name: name + "_t", Type: bat.String},
	}, []*bat.BAT{bat.FromInts(keys), bat.FromFloats(vals), bat.FromStrings(tags)})
}

// boundarySizes probes the fixed-chunk decomposition of the relational
// operators exactly where it changes shape, matching the PR-1 pattern in
// bat/parallel_test.go.
func boundarySizes() []int {
	return []int{1, 7, bat.SerialCutoff - 1, bat.SerialCutoff, bat.SerialCutoff + 1, 2*bat.SerialCutoff + 3}
}

// TestGroupByBitwiseIdenticalAcrossWorkers asserts that grouped
// aggregation — group order, counts, and float sums — is bitwise-identical
// at worker budgets 1, 2, and 8, across chunk-boundary sizes. Under -race
// this also exercises the parallel partial tables for data races.
func TestGroupByBitwiseIdenticalAcrossWorkers(t *testing.T) {
	aggs := []AggSpec{
		{Func: Count, As: "n"},
		{Func: Sum, Attr: "r_v", As: "s"},
		{Func: Avg, Attr: "r_v", As: "a"},
		{Func: Min, Attr: "r_v", As: "lo"},
		{Func: Max, Attr: "r_v", As: "hi"},
	}
	for _, n := range boundarySizes() {
		r := boundaryRel("r", n, 64)
		var want *Relation
		withWorkers(1, func() {
			g, err := GroupBy(nil, r, []string{"r_k", "r_t"}, aggs)
			if err != nil {
				t.Fatal(err)
			}
			want = g
		})
		for _, w := range []int{2, 8} {
			withWorkers(w, func() {
				got, err := GroupBy(nil, r, []string{"r_k", "r_t"}, aggs)
				if err != nil {
					t.Fatal(err)
				}
				if !equalRelations(got, want) {
					t.Fatalf("GroupBy n=%d workers=%d differs from serial", n, w)
				}
			})
		}
		// Global group (no keys): the chunked sum must also be stable.
		var wantG *Relation
		withWorkers(1, func() { wantG, _ = GroupBy(nil, r, nil, aggs) })
		for _, w := range []int{2, 8} {
			withWorkers(w, func() {
				got, _ := GroupBy(nil, r, nil, aggs)
				if !equalRelations(got, wantG) {
					t.Fatalf("global GroupBy n=%d workers=%d differs from serial", n, w)
				}
			})
		}
	}
}

// TestHashJoinBitwiseIdenticalAcrossWorkers asserts the partitioned join
// produces the same rows in the same order at worker budgets 1, 2, and 8,
// across chunk-boundary sizes (duplicate keys included).
func TestHashJoinBitwiseIdenticalAcrossWorkers(t *testing.T) {
	for _, n := range []int{1, 7, bat.SerialCutoff - 1, bat.SerialCutoff + 1} {
		r := boundaryRel("r", n, int64(n/3+2))
		s := boundaryRel("s", n, int64(n/3+2))
		for _, jt := range []JoinType{Inner, Left} {
			var want *Relation
			withWorkers(1, func() {
				j, err := HashJoin(nil, r, s, []string{"r_k"}, []string{"s_k"}, jt)
				if err != nil {
					t.Fatal(err)
				}
				want = j
			})
			for _, w := range []int{2, 8} {
				withWorkers(w, func() {
					got, err := HashJoin(nil, r, s, []string{"r_k"}, []string{"s_k"}, jt)
					if err != nil {
						t.Fatal(err)
					}
					if !equalRelations(got, want) {
						t.Fatalf("HashJoin n=%d jt=%d workers=%d differs from serial", n, jt, w)
					}
				})
			}
		}
	}
}

// TestSortBitwiseIdenticalAcrossWorkers asserts relation sorting through
// bat.SortStable yields identical row orders at any worker budget,
// including descending and multi-key specs with heavy duplication.
func TestSortBitwiseIdenticalAcrossWorkers(t *testing.T) {
	for _, n := range boundarySizes() {
		r := boundaryRel("r", n, 16)
		specs := []OrderSpec{{Attr: "r_t"}, {Attr: "r_k", Desc: true}}
		var want *Relation
		withWorkers(1, func() {
			s, err := r.Sort(nil, specs...)
			if err != nil {
				t.Fatal(err)
			}
			want = s
		})
		for _, w := range []int{2, 8} {
			withWorkers(w, func() {
				got, err := r.Sort(nil, specs...)
				if err != nil {
					t.Fatal(err)
				}
				if !equalRelations(got, want) {
					t.Fatalf("Sort n=%d workers=%d differs from serial", n, w)
				}
			})
		}
	}
}

// nulRel builds the two-string-column relation whose rows collided under
// the former NUL-joined composite keys: ("a\x00", "b") and ("a", "\x00b")
// both rendered as "a\x00\x00b\x00".
func nulRel(name, a1, a2 string) *Relation {
	return MustNew(name, Schema{
		{Name: a1, Type: bat.String},
		{Name: a2, Type: bat.String},
	}, []*bat.BAT{
		bat.FromStrings([]string{"a\x00", "a"}),
		bat.FromStrings([]string{"b", "\x00b"}),
	})
}

// TestHashJoinNulSeparatorRegression: keys containing NUL bytes must not
// alias across cell boundaries.
func TestHashJoinNulSeparatorRegression(t *testing.T) {
	l := nulRel("l", "A", "B")
	r := nulRel("r", "C", "D")
	j, err := HashJoin(nil, l, r, []string{"A", "B"}, []string{"C", "D"}, Inner)
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 matches row 0, row 1 matches row 1 — and nothing crosses.
	if j.NumRows() != 2 {
		t.Fatalf("NUL-key join rows = %d, want 2 (cell-boundary aliasing)", j.NumRows())
	}
	for i := 0; i < 2; i++ {
		if j.Value(i, 0).S != l.Value(i, 0).S || j.Value(i, 1).S != l.Value(i, 1).S {
			t.Errorf("row %d joined across the NUL boundary: %v", i, j.Row(i))
		}
	}
}

// TestDistinctNulSeparatorRegression: the two distinct rows must both
// survive.
func TestDistinctNulSeparatorRegression(t *testing.T) {
	if got := nulRel("r", "A", "B").Distinct(nil).NumRows(); got != 2 {
		t.Fatalf("distinct over NUL keys = %d rows, want 2", got)
	}
}

// TestGroupByNulSeparatorRegression: the two rows form two groups.
func TestGroupByNulSeparatorRegression(t *testing.T) {
	g, err := GroupBy(nil, nulRel("r", "A", "B"), []string{"A", "B"}, []AggSpec{{Func: Count, As: "n"}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRows() != 2 {
		t.Fatalf("NUL-key groups = %d, want 2", g.NumRows())
	}
}
