package rel

import (
	"fmt"
	"os"
	"sort"

	"repro/internal/bat"
	"repro/internal/exec"
	"repro/internal/store"
)

// Out-of-core grouped aggregation. When the resident group table
// freezes (StreamAgg.groupOf), rows of keys unseen at freeze time are
// staged to aggParts hash-partitioned segment files, each record
// carrying its global row number, its key cells, and its aggregate
// inputs. Finish replays one partition at a time: a key's rows all land
// in one partition in global row order, so per-group chunk partials
// rebuild on the exact bat.SerialCutoff boundaries the in-memory fold
// uses and combine in the same ascending chunk order — bitwise the same
// states. Every resident group was created before every spilled key's
// first row, so appending the recovered groups sorted by first global
// row restores global first-seen order.
const aggParts = 8

// aggSpillState is the staging side of a frozen StreamAgg.
type aggSpillState struct {
	hasIn   []bool          // which aggregates carry an input column
	specs   []store.ColSpec // g, then key cells, then inputs
	paths   [aggParts]string
	writers [aggParts]*store.Writer
	bufs    [aggParts]*aggPartBuf
	bytes   int64
	rows    int64
}

// aggPartBuf buffers one partition's pending records.
type aggPartBuf struct {
	n    int
	grow []int64
	keyF [][]float64
	keyI [][]int64
	keyS [][]string
	in   [][]float64
}

func newAggPartBuf(keys, aggs int) *aggPartBuf {
	return &aggPartBuf{
		keyF: make([][]float64, keys),
		keyI: make([][]int64, keys),
		keyS: make([][]string, keys),
		in:   make([][]float64, aggs),
	}
}

func (b *aggPartBuf) reset() {
	b.n = 0
	b.grow = b.grow[:0]
	for k := range b.keyF {
		if b.keyF[k] != nil {
			b.keyF[k] = b.keyF[k][:0]
		}
		if b.keyI[k] != nil {
			b.keyI[k] = b.keyI[k][:0]
		}
		if b.keyS[k] != nil {
			b.keyS[k] = b.keyS[k][:0]
		}
	}
	for k := range b.in {
		if b.in[k] != nil {
			b.in[k] = b.in[k][:0]
		}
	}
}

// spillRow stages row i of the morsel (key hash h) to its partition.
func (a *StreamAgg) spillRow(keys []*bat.Vector, aggIn [][]float64, i int, h uint64) error {
	if a.spill == nil {
		st := &aggSpillState{hasIn: make([]bool, len(a.aggs))}
		st.specs = append(st.specs, store.ColSpec{Name: "g", Kind: store.KInt})
		for k := range a.keys {
			kind := store.KFloat
			switch a.kt[k] {
			case bat.Int:
				kind = store.KInt
			case bat.String:
				kind = store.KString
			}
			st.specs = append(st.specs, store.ColSpec{Name: fmt.Sprintf("k%d", k), Kind: kind})
		}
		for k := range a.aggs {
			if aggIn[k] != nil {
				st.hasIn[k] = true
				st.specs = append(st.specs, store.ColSpec{Name: fmt.Sprintf("a%d", k), Kind: store.KFloat})
			}
		}
		a.spill = st
	}
	st := a.spill
	pt := int(h & (aggParts - 1))
	b := st.bufs[pt]
	if b == nil {
		b = newAggPartBuf(len(a.keys), len(a.aggs))
		st.bufs[pt] = b
	}
	b.grow = append(b.grow, a.seen)
	for k := range a.kt {
		switch a.kt[k] {
		case bat.Int:
			b.keyI[k] = append(b.keyI[k], keys[k].Ints()[i])
		case bat.String:
			b.keyS[k] = append(b.keyS[k], keys[k].Strings()[i])
		default:
			b.keyF[k] = append(b.keyF[k], keys[k].Floats()[i])
		}
	}
	for k := range a.aggs {
		if st.hasIn[k] {
			b.in[k] = append(b.in[k], aggIn[k][i])
		}
	}
	b.n++
	st.rows++
	if b.n == bat.MorselSize {
		return a.flushPart(pt)
	}
	return nil
}

// flushPart appends one partition's buffered records to its writer,
// creating the file lazily.
func (a *StreamAgg) flushPart(pt int) error {
	st := a.spill
	b := st.bufs[pt]
	if b == nil || b.n == 0 {
		return nil
	}
	if st.writers[pt] == nil {
		path, err := a.c.Spill().Path("aggpart")
		if err != nil {
			return err
		}
		w, err := store.Create(path, "aggpart", st.specs)
		if err != nil {
			return err
		}
		st.paths[pt], st.writers[pt] = path, w
	}
	cols := make([]store.ColData, 0, len(st.specs))
	cols = append(cols, store.ColData{I: b.grow})
	for k := range a.kt {
		switch a.kt[k] {
		case bat.Int:
			cols = append(cols, store.ColData{I: b.keyI[k]})
		case bat.String:
			cols = append(cols, store.ColData{S: b.keyS[k]})
		default:
			cols = append(cols, store.ColData{F: b.keyF[k]})
		}
	}
	for k := range a.aggs {
		if st.hasIn[k] {
			cols = append(cols, store.ColData{F: b.in[k]})
		}
	}
	if err := st.writers[pt].Append(b.n, cols); err != nil {
		return err
	}
	b.reset()
	return nil
}

// replaySpilled folds the staged partitions back into the group table
// (see the file comment for why the result is bitwise-identical).
func (a *StreamAgg) replaySpilled() error {
	st := a.spill
	var parts int64
	for pt := range st.writers {
		if err := a.flushPart(pt); err != nil {
			return err
		}
		if st.writers[pt] != nil {
			if err := st.writers[pt].Close(); err != nil {
				return err
			}
			st.bytes += st.writers[pt].BytesWritten()
			parts++
		}
	}
	a.c.NoteSpill(st.bytes, parts)
	defer func() {
		for _, p := range st.paths {
			if p != "" {
				os.Remove(p)
			}
		}
	}()

	// Recovered groups, keyed like the resident table.
	var (
		rfirst  []int64
		rhash   []uint64
		rstates [][]aggState
		rcur    [][]aggState
		rchunk  []int64
	)
	rkf := make([][]float64, len(a.keys))
	rki := make([][]int64, len(a.keys))
	rks := make([][]string, len(a.keys))
	rby := make(map[uint64][]int)
	equalAt := func(kvecs []*bat.Vector, i, g int) bool {
		for k := range a.kt {
			switch a.kt[k] {
			case bat.Int:
				if kvecs[k].Ints()[i] != rki[k][g] {
					return false
				}
			case bat.String:
				if kvecs[k].Strings()[i] != rks[k][g] {
					return false
				}
			default:
				if canonBits(kvecs[k].Floats()[i]) != canonBits(rkf[k][g]) {
					return false
				}
			}
		}
		return true
	}
	inCol := make([]int, len(a.aggs))
	ci := 1 + len(a.keys)
	for k := range a.aggs {
		if st.hasIn[k] {
			inCol[k] = ci
			ci++
		} else {
			inCol[k] = -1
		}
	}

	for pt := range st.paths {
		if st.paths[pt] == "" {
			continue
		}
		rd, err := store.Open(st.paths[pt])
		if err != nil {
			return err
		}
		cu := store.NewCursor(a.c, rd, nil)
		g0 := len(rstates)
		for {
			cols, n, err := cu.Next(bat.MorselSize)
			if err != nil {
				cu.Close()
				rd.Close()
				return err
			}
			if n == 0 {
				break
			}
			kvecs := make([]*bat.Vector, len(a.keys))
			for k := range a.keys {
				d := cols[1+k]
				switch a.kt[k] {
				case bat.Int:
					kvecs[k] = bat.FromInts(d.I).Vector()
				case bat.String:
					kvecs[k] = bat.FromStrings(d.S).Vector()
				default:
					kvecs[k] = bat.FromFloats(d.F).Vector()
				}
			}
			for j := 0; j < n; j++ {
				h := a.hashKeyRow(kvecs, j)
				chunk := cols[0].I[j] / int64(bat.SerialCutoff)
				g := -1
				for _, cand := range rby[h] {
					if equalAt(kvecs, j, cand) {
						g = cand
						break
					}
				}
				if g < 0 {
					g = len(rstates)
					rby[h] = append(rby[h], g)
					rfirst = append(rfirst, cols[0].I[j])
					rhash = append(rhash, h)
					rstates = append(rstates, newAggStates(len(a.aggs)))
					rcur = append(rcur, newAggStates(len(a.aggs)))
					rchunk = append(rchunk, chunk)
					for k := range a.kt {
						switch a.kt[k] {
						case bat.Int:
							rki[k] = append(rki[k], kvecs[k].Ints()[j])
						case bat.String:
							rks[k] = append(rks[k], kvecs[k].Strings()[j])
						default:
							rkf[k] = append(rkf[k], kvecs[k].Floats()[j])
						}
					}
				} else if rchunk[g] != chunk {
					// Crossing a global chunk boundary: fold the chunk
					// partial in, ascending order as ever.
					for k := range a.aggs {
						rstates[g][k].combine(&rcur[g][k])
					}
					rcur[g] = newAggStates(len(a.aggs))
					rchunk[g] = chunk
				}
				for k := range a.aggs {
					if inCol[k] >= 0 {
						rcur[g][k].accumulate(cols[inCol[k]].F, j)
					} else {
						rcur[g][k].accumulate(nil, 0)
					}
				}
			}
		}
		cu.Close()
		rd.Close()
		for g := g0; g < len(rstates); g++ {
			for k := range a.aggs {
				rstates[g][k].combine(&rcur[g][k])
			}
			rcur[g] = nil
		}
	}

	// Append in global first-seen order (first rows are unique).
	ord := make([]int, len(rstates))
	for g := range ord {
		ord[g] = g
	}
	sort.Slice(ord, func(x, y int) bool { return rfirst[ord[x]] < rfirst[ord[y]] })
	for _, g := range ord {
		a.ghash = append(a.ghash, rhash[g])
		a.states = append(a.states, rstates[g])
		for k := range a.kt {
			switch a.kt[k] {
			case bat.Int:
				a.ki[k] = append(a.ki[k], rki[k][g])
			case bat.String:
				a.ks[k] = append(a.ks[k], rks[k][g])
			default:
				a.kf[k] = append(a.kf[k], rkf[k][g])
			}
		}
	}
	a.spill = nil
	return nil
}

// groupSpillEst is the rough per-input-row footprint the materializing
// GroupBy would take for its chunk partials and merged table, assuming
// the pessimistic half-distinct default.
func groupSpillEst(n, keys, aggs int) int64 {
	return int64(n) * int64(16+8*keys+16*aggs) / 2
}

// groupBySpilled routes a materialized GroupBy through a spilling
// StreamAgg: one serial pass over the input (the accumulator's chunking
// reproduces the parallel fold bitwise), with the tail of the key space
// staged to disk.
func groupBySpilled(c *exec.Ctx, r *Relation, keys []string, aggs []AggSpec, hint int, inCols [][]float64) (*Relation, error) {
	kt := make([]bat.Type, len(keys))
	kvecs := make([]*bat.Vector, len(keys))
	for k, name := range keys {
		col, err := r.Col(name)
		if err != nil {
			return nil, err
		}
		kvecs[k] = col.VectorCtx(c)
		kt[k] = kvecs[k].Type()
	}
	sa, err := NewStreamAggCtx(c, r.Name, keys, kt, aggs, hint)
	if err != nil {
		return nil, err
	}
	if err := sa.Consume(kvecs, inCols, r.NumRows()); err != nil {
		return nil, err
	}
	return sa.Finish()
}
