package rel

import (
	"sync"
	"testing"

	"repro/internal/bat"
	"repro/internal/exec"
)

// This file tests the per-query execution contexts of the relational
// operators: explicit exec.Ctx budgets (no process-wide knob), results
// bitwise-identical across budgets {1, 2, 8} while two contexts run
// simultaneously, and the EquiJoinPairs entry point the SQL layer uses.

// relPipeline runs join → group → sort under one context, the mixed
// relational pipeline of the concurrency property test. It returns an
// error instead of failing the test so goroutines other than the test's
// own can call it (FailNow must not run off the test goroutine).
func relPipeline(c *exec.Ctx, r, s *Relation) (*Relation, error) {
	j, err := HashJoin(c, r, s, []string{"r_k"}, []string{"s_k"}, Inner)
	if err != nil {
		return nil, err
	}
	g, err := GroupBy(c, j, []string{"r_t"}, []AggSpec{
		{Func: Count, As: "n"},
		{Func: Sum, Attr: "r_v", As: "sv"},
		{Func: Sum, Attr: "s_v", As: "sw"},
	})
	if err != nil {
		return nil, err
	}
	return g.Sort(c, OrderSpec{Attr: "sv", Desc: true}, OrderSpec{Attr: "r_t"})
}

// TestSimultaneousCtxsBitwiseIdentical runs the join/group/sort pipeline
// under budgets {1, 2, 8} from concurrent goroutines — every context
// carries its own budget, nothing is process-wide — and asserts each
// result is bitwise-identical to the serial baseline. Run with -race this
// is the operator-level half of the mixed-budget acceptance criterion.
func TestSimultaneousCtxsBitwiseIdentical(t *testing.T) {
	n := bat.SerialCutoff + 101
	r := boundaryRel("r", n, 64)
	s := boundaryRel("s", n, 64)
	want, err := relPipeline(exec.New(1), r, s)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for _, budget := range []int{1, 2, 8} {
		wg.Add(1)
		go func(budget int) {
			defer wg.Done()
			c := exec.New(budget)
			for round := 0; round < 3; round++ {
				got, err := relPipeline(c, r, s)
				if err != nil {
					t.Errorf("budget %d: %v", budget, err)
					return
				}
				if !equalRelations(got, want) {
					t.Errorf("budget %d: pipeline differs from serial", budget)
					return
				}
			}
		}(budget)
	}
	wg.Wait()
}

// TestEquiJoinPairsMatchesHashJoin checks the SQL layer's typed-key entry
// point against HashJoin's canonical pair order: joining on materialized
// key columns yields exactly the pairs the relation-level join produces,
// for inner and left-outer semantics and across worker budgets.
func TestEquiJoinPairsMatchesHashJoin(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1000, bat.SerialCutoff + 1} {
		r := boundaryRel("r", n, int64(n/3+2))
		s := boundaryRel("s", n, int64(n/3+2))
		rKey, _ := r.Col("r_k")
		sKey, _ := s.Col("s_k")
		for _, leftOuter := range []bool{false, true} {
			var wantL, wantR []int
			rkc := keyColsOf(nil, n, []*bat.BAT{rKey})
			skc := keyColsOf(nil, n, []*bat.BAT{sKey})
			wantL, wantR, _ = joinPairs(exec.New(1), rkc, skc, leftOuter)
			for _, budget := range []int{1, 8} {
				li, ri, err := EquiJoinPairs(exec.New(budget), []*bat.BAT{rKey}, []*bat.BAT{sKey}, leftOuter)
				if err != nil {
					t.Fatal(err)
				}
				if len(li) != len(wantL) {
					t.Fatalf("n=%d outer=%v budget=%d: %d pairs, want %d", n, leftOuter, budget, len(li), len(wantL))
				}
				for k := range li {
					if li[k] != wantL[k] || ri[k] != wantR[k] {
						t.Fatalf("n=%d outer=%v budget=%d: pair %d = (%d,%d), want (%d,%d)",
							n, leftOuter, budget, k, li[k], ri[k], wantL[k], wantR[k])
					}
				}
				bat.FreeInts(li)
				bat.FreeInts(ri)
			}
			bat.FreeInts(wantL)
			bat.FreeInts(wantR)
		}
	}
	// Mismatched and empty key lists are rejected.
	if _, _, err := EquiJoinPairs(nil, nil, nil, false); err == nil {
		t.Error("EquiJoinPairs accepted empty key lists")
	}
}

// TestCrossTypeEquiJoinPairs asserts int and float key columns holding
// the same values join against each other (canonical float-bit hashing),
// the coercion the SQL layer leans on after dropping string keys.
func TestCrossTypeEquiJoinPairs(t *testing.T) {
	ints := bat.FromInts([]int64{1, 2, 3, 4})
	floats := bat.FromFloats([]float64{2, 4, 6, 2})
	li, ri, err := EquiJoinPairs(nil, []*bat.BAT{ints}, []*bat.BAT{floats}, false)
	if err != nil {
		t.Fatal(err)
	}
	type pair struct{ l, r int }
	want := []pair{{1, 0}, {1, 3}, {3, 1}} // 2 matches twice, 4 once
	if len(li) != len(want) {
		t.Fatalf("got %d pairs, want %d", len(li), len(want))
	}
	for k, w := range want {
		if li[k] != w.l || ri[k] != w.r {
			t.Fatalf("pair %d = (%d,%d), want (%d,%d)", k, li[k], ri[k], w.l, w.r)
		}
	}
}
