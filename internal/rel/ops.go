package rel

import (
	"fmt"

	"repro/internal/bat"
	"repro/internal/exec"
)

// Gather returns the relation restricted/reordered to the given row indexes
// (the relational counterpart of leftfetchjoin across all columns),
// decomposed over the context's workers.
func (r *Relation) Gather(c *exec.Ctx, idx []int) *Relation {
	cols := make([]*bat.BAT, len(r.Cols))
	for k, col := range r.Cols {
		cols[k] = col.Gather(c, idx)
	}
	return &Relation{Name: r.Name, Schema: r.Schema, Cols: cols}
}

// Select returns σ_pred(r). The predicate sees the row index and reads
// columns through the relation; scans stay columnar for the common
// comparison shapes via the helper constructors below.
func (r *Relation) Select(c *exec.Ctx, pred func(i int) bool) *Relation {
	n := r.NumRows()
	idx := make([]int, 0, n/4+1)
	for i := 0; i < n; i++ {
		if pred(i) {
			idx = append(idx, i)
		}
	}
	return r.Gather(c, idx)
}

// FloatPred builds a vectorized predicate over one float/int column.
func (r *Relation) FloatPred(attr string, test func(float64) bool) (func(i int) bool, error) {
	c, err := r.Col(attr)
	if err != nil {
		return nil, err
	}
	f, err := c.Floats()
	if err != nil {
		return nil, fmt.Errorf("rel: predicate over non-numeric %q", attr)
	}
	return func(i int) bool { return test(f[i]) }, nil
}

// StringPred builds a predicate over one string column.
func (r *Relation) StringPred(attr string, test func(string) bool) (func(i int) bool, error) {
	c, err := r.Col(attr)
	if err != nil {
		return nil, err
	}
	if c.Type() != bat.String {
		return nil, fmt.Errorf("rel: string predicate over %v column %q", c.Type(), attr)
	}
	s := c.Vector().Strings()
	return func(i int) bool { return test(s[i]) }, nil
}

// Project returns π_attrs(r) preserving the requested order.
func (r *Relation) Project(attrs ...string) (*Relation, error) {
	schema := make(Schema, len(attrs))
	cols := make([]*bat.BAT, len(attrs))
	for k, name := range attrs {
		j := r.Schema.Index(name)
		if j < 0 {
			return nil, fmt.Errorf("rel: project: no attribute %q in %s", name, r.describe())
		}
		schema[k] = r.Schema[j]
		cols[k] = r.Cols[j]
	}
	return New(r.Name, schema, cols)
}

// Drop returns r without the named attributes.
func (r *Relation) Drop(attrs ...string) (*Relation, error) {
	dropped := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		dropped[a] = true
	}
	keep := make([]string, 0, len(r.Schema))
	for _, a := range r.Schema {
		if !dropped[a.Name] {
			keep = append(keep, a.Name)
		}
	}
	return r.Project(keep...)
}

// Rename returns ρ(r) with attributes renamed per the mapping.
func (r *Relation) Rename(mapping map[string]string) (*Relation, error) {
	schema := r.Schema.Clone()
	for old, new_ := range mapping {
		k := schema.Index(old)
		if k < 0 {
			return nil, fmt.Errorf("rel: rename: no attribute %q in %s", old, r.describe())
		}
		schema[k].Name = new_
	}
	return New(r.Name, schema, r.Cols)
}

// Cross returns r × s. Attribute names must be disjoint.
func Cross(c *exec.Ctx, r, s *Relation) (*Relation, error) {
	for _, a := range s.Schema {
		if r.Schema.Index(a.Name) >= 0 {
			return nil, fmt.Errorf("rel: cross: duplicate attribute %q", a.Name)
		}
	}
	nr, ns := r.NumRows(), s.NumRows()
	li := make([]int, 0, nr*ns)
	ri := make([]int, 0, nr*ns)
	for i := 0; i < nr; i++ {
		for j := 0; j < ns; j++ {
			li = append(li, i)
			ri = append(ri, j)
		}
	}
	left := r.Gather(c, li)
	right := s.Gather(c, ri)
	return New(r.Name, append(left.Schema.Clone(), right.Schema...), append(left.Cols, right.Cols...))
}

// Union returns r ∪ s (bag semantics: concatenation). Schemas must be
// union-compatible (same arity and types; names from r win).
func Union(r, s *Relation) (*Relation, error) {
	if len(r.Schema) != len(s.Schema) {
		return nil, fmt.Errorf("rel: union: arity %d vs %d", len(r.Schema), len(s.Schema))
	}
	cols := make([]*bat.BAT, len(r.Cols))
	for k := range r.Cols {
		if r.Schema[k].Type != s.Schema[k].Type {
			return nil, fmt.Errorf("rel: union: attribute %d type %v vs %v", k, r.Schema[k].Type, s.Schema[k].Type)
		}
		v := r.Cols[k].Vector().Clone()
		v.AppendVector(s.Cols[k].Vector())
		cols[k] = bat.FromVector(v)
	}
	return New(r.Name, r.Schema.Clone(), cols)
}

// Distinct returns r with duplicate rows removed (first occurrence kept).
// Rows are compared through the typed key hashes of key.go (hash computed
// in parallel, collisions resolved by column comparison), not through
// rendered strings.
func (r *Relation) Distinct(c *exec.Ctx) *Relation {
	n := r.NumRows()
	kc := keyColsOf(c, n, r.Cols)
	h := kc.hashes(c)
	seen := make(map[uint64][]int, n)
	idx := make([]int, 0, n)
	for i := 0; i < n; i++ {
		dup := false
		for _, j := range seen[h[i]] {
			if kc.equal(i, kc, j) {
				dup = true
				break
			}
		}
		if !dup {
			seen[h[i]] = append(seen[h[i]], i)
			idx = append(idx, i)
		}
	}
	kc.release(c)
	return r.Gather(c, idx)
}

// OrderSpec describes one ORDER BY item.
type OrderSpec struct {
	Attr string
	Desc bool
}

// Sort returns r ordered by the given attributes (stable). The permutation
// comes from bat.SortStable — a parallel merge sort above the serial
// cutoff — and the stable permutation is unique, so the row order is
// identical at any worker budget.
func (r *Relation) Sort(c *exec.Ctx, specs ...OrderSpec) (res *Relation, err error) {
	defer exec.CatchBudget(&err)
	vecs := make([]*bat.Vector, len(specs))
	for k, sp := range specs {
		col, err := r.Col(sp.Attr)
		if err != nil {
			return nil, err
		}
		vecs[k] = col.VectorCtx(c)
	}
	idx := bat.SortStable(c, r.NumRows(), func(a, b int) bool {
		for k, v := range vecs {
			cmp := v.Compare(a, v, b)
			if cmp != 0 {
				if specs[k].Desc {
					return cmp > 0
				}
				return cmp < 0
			}
		}
		return false
	})
	out := r.Gather(c, idx)
	c.Arena().FreeInts(idx)
	return out, nil
}

// Limit returns the first n rows.
func (r *Relation) Limit(c *exec.Ctx, n int) *Relation {
	if n > r.NumRows() {
		n = r.NumRows()
	}
	idx := make([]int, n)
	for k := range idx {
		idx[k] = k
	}
	return r.Gather(c, idx)
}
