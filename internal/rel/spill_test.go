package rel

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/bat"
	"repro/internal/exec"
)

// bitwiseSame compares two relations cell by cell with floats compared
// by bit pattern.
func bitwiseSame(t *testing.T, label string, a, b *Relation) {
	t.Helper()
	if a.NumRows() != b.NumRows() || a.NumCols() != b.NumCols() {
		t.Fatalf("%s: shape %dx%d != %dx%d", label, a.NumRows(), a.NumCols(), b.NumRows(), b.NumCols())
	}
	for j := range a.Cols {
		av, bv := a.Cols[j].Vector(), b.Cols[j].Vector()
		if av.Type() != bv.Type() {
			t.Fatalf("%s: col %d type %v != %v", label, j, av.Type(), bv.Type())
		}
		for i := 0; i < a.NumRows(); i++ {
			switch av.Type() {
			case bat.Float:
				if math.Float64bits(av.Floats()[i]) != math.Float64bits(bv.Floats()[i]) {
					t.Fatalf("%s: col %d row %d: %x != %x", label, j, i,
						math.Float64bits(av.Floats()[i]), math.Float64bits(bv.Floats()[i]))
				}
			case bat.Int:
				if av.Ints()[i] != bv.Ints()[i] {
					t.Fatalf("%s: col %d row %d: %d != %d", label, j, i, av.Ints()[i], bv.Ints()[i])
				}
			default:
				if av.Strings()[i] != bv.Strings()[i] {
					t.Fatalf("%s: col %d row %d: %q != %q", label, j, i, av.Strings()[i], bv.Strings()[i])
				}
			}
		}
	}
}

// spillCtx returns a context with a forced spill manager staging under
// a test temp dir, plus the manager for stats assertions.
func spillCtx(t *testing.T, workers int) (*exec.Ctx, *exec.Spill) {
	t.Helper()
	sp := exec.NewSpill(t.TempDir(), 0).Forced()
	t.Cleanup(sp.Cleanup)
	return exec.NewCtx(workers, nil, nil).WithSpill(sp), sp
}

// joinRels builds a probe/build pair with duplicate int keys (fan-out
// matches), a string attribute, and unmatched rows on both sides.
func joinRels(n, m int) (*Relation, *Relation) {
	rk := make([]int64, n)
	rv := make([]float64, n)
	rs := make([]string, n)
	for i := range rk {
		rk[i] = int64((i * 13) % (m + m/2)) // some keys miss the build side
		rv[i] = float64(i)*0.75 - 3
		rs[i] = fmt.Sprintf("p%d", i%11)
	}
	sk := make([]int64, m)
	sv := make([]float64, m)
	for j := range sk {
		sk[j] = int64(j % m) // duplicate-free here, fan-out via probe dups
		sv[j] = float64(j) * 1.5
	}
	r, err := New("r", Schema{
		{Name: "ka", Type: bat.Int}, {Name: "va", Type: bat.Float}, {Name: "ta", Type: bat.String},
	}, []*bat.BAT{bat.FromInts(rk), bat.FromFloats(rv), bat.FromStrings(rs)})
	if err != nil {
		panic(err)
	}
	s, err := New("s", Schema{
		{Name: "kb", Type: bat.Int}, {Name: "vb", Type: bat.Float},
	}, []*bat.BAT{bat.FromInts(sk), bat.FromFloats(sv)})
	if err != nil {
		panic(err)
	}
	return r, s
}

func TestHashJoinSpillBitwise(t *testing.T) {
	r, s := joinRels(3*bat.SerialCutoff+17, bat.SerialCutoff)
	for _, jt := range []JoinType{Inner, Left} {
		base, err := HashJoin(exec.New(4), r, s, []string{"ka"}, []string{"kb"}, jt)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 8} {
			c, sp := spillCtx(t, workers)
			got, err := HashJoin(c, r, s, []string{"ka"}, []string{"kb"}, jt)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("join jt=%d workers=%d", jt, workers)
			bitwiseSame(t, label, base, got)
			if st := sp.Stats(); st.SpilledBytes == 0 || st.Partitions == 0 {
				t.Fatalf("%s: join did not spill: %+v", label, st)
			}
		}
	}
}

func TestGroupBySpillBitwise(t *testing.T) {
	aggs := []AggSpec{
		{Func: Count, As: "n"},
		{Func: Sum, Attr: "a", As: "sa"},
		{Func: Avg, Attr: "b", As: "ab"},
		{Func: Min, Attr: "a", As: "ma"},
		{Func: Max, Attr: "b", As: "xb"},
	}
	// Three-plus chunks so the replay must reproduce chunk-partial
	// combines; cardinality high enough for many spilled keys.
	r := aggRel(3*bat.SerialCutoff+257, 4096)
	base, err := GroupBy(exec.New(4), r, []string{"k", "tag"}, aggs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		c, sp := spillCtx(t, workers)
		got, err := GroupBy(c, r, []string{"k", "tag"}, aggs)
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("groupby workers=%d", workers)
		bitwiseSame(t, label, base, got)
		if st := sp.Stats(); st.SpilledBytes == 0 {
			t.Fatalf("%s: group by did not spill: %+v", label, st)
		}
	}
}

// TestStreamAggSpillMatchesGroupBy drives the spilling accumulator one
// unaligned morsel at a time — the streaming grouped path — against the
// materializing GroupBy.
func TestStreamAggSpillMatchesGroupBy(t *testing.T) {
	aggs := []AggSpec{
		{Func: Count, As: "n"},
		{Func: Sum, Attr: "a", As: "sa"},
		{Func: Min, Attr: "b", As: "mb"},
	}
	n := 2*bat.SerialCutoff + 999
	r := aggRel(n, 1031)
	base, err := GroupBy(exec.New(4), r, []string{"k", "tag"}, aggs)
	if err != nil {
		t.Fatal(err)
	}
	kcol, _ := r.Col("k")
	tcol, _ := r.Col("tag")
	acol, _ := r.Col("a")
	bcol, _ := r.Col("b")
	ints := kcol.Vector().Ints()
	tags := tcol.Vector().Strings()
	af := acol.Vector().Floats()
	bf := bcol.Vector().Floats()

	c, sp := spillCtx(t, 4)
	sa, err := NewStreamAggCtx(c, "r", []string{"k", "tag"}, []bat.Type{bat.Int, bat.String}, aggs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < n; {
		hi := min(lo+1000, n)
		keys := []*bat.Vector{bat.NewIntVector(ints[lo:hi]), bat.NewStringVector(tags[lo:hi])}
		aggIn := [][]float64{nil, af[lo:hi], bf[lo:hi]}
		if err := sa.Consume(keys, aggIn, hi-lo); err != nil {
			t.Fatal(err)
		}
		lo = hi
	}
	got, err := sa.Finish()
	if err != nil {
		t.Fatal(err)
	}
	bitwiseSame(t, "streamagg spill", base, got)
	if st := sp.Stats(); st.SpilledBytes == 0 {
		t.Fatalf("streaming aggregation did not spill: %+v", st)
	}
}
