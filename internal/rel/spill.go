package rel

import (
	"fmt"
	"os"

	"repro/internal/bat"
	"repro/internal/exec"
	"repro/internal/store"
)

// This file holds the out-of-core equi-join: instead of materializing
// the (probe, build) pair arrays — 16 bytes per match, the dominant
// allocation of a fan-out join — the pairs are staged to per-partition
// segment files and streamed back in canonical order, so the only
// full-size in-memory structures left are the result columns
// themselves. Partitioning by key hash also shrinks the transient build
// table to one partition's share. The pair order on disk is exactly the
// in-memory order (probe rows ascending, matches per probe row in build
// order), so the streamed join is bitwise-identical to HashJoin.

// pairParts is the partition fan-out of the spilled join. Each probe
// row's matches land wholly in one partition (selected by key hash), so
// a front-merge over the partition streams restores global probe order.
const pairParts = 16

// SpilledPairs is the on-disk result of a spilled equi-join pair
// computation: per-partition segment files of (probe, build) row pairs,
// with -1 build rows marking left-outer non-matches.
type SpilledPairs struct {
	paths [pairParts]string
	rows  [pairParts]int64
	total int
	any   bool // any unmatched probe row (left outer)
}

// Total returns the number of pairs (including left-outer non-matches).
func (sp *SpilledPairs) Total() int { return sp.total }

// AnyUnmatched reports whether any left-outer non-match was emitted.
func (sp *SpilledPairs) AnyUnmatched() bool { return sp.any }

// Close removes the staged partition files. Idempotent.
func (sp *SpilledPairs) Close() {
	for pt := range sp.paths {
		if sp.paths[pt] != "" {
			os.Remove(sp.paths[pt])
			sp.paths[pt] = ""
		}
	}
}

var pairSpecs = []store.ColSpec{
	{Name: "l", Kind: store.KInt},
	{Name: "r", Kind: store.KInt},
}

// spilledJoinPairs computes the equi-join pairs of rkc (probe) against
// skc (build) partition by partition, staging the pairs to disk. The
// build table only ever holds one partition's rows, and the pair arrays
// never exist in memory.
func spilledJoinPairs(c *exec.Ctx, rkc, skc *keyCols, leftOuter bool) (*SpilledPairs, error) {
	sh := skc.hashes(c)
	rh := rkc.hashes(c)
	sp := &SpilledPairs{}
	var spilledBytes int64
	parts := int64(0)

	bufL := make([]int64, 0, bat.MorselSize)
	bufR := make([]int64, 0, bat.MorselSize)
	for pt := uint64(0); pt < pairParts; pt++ {
		// Build this partition's table: build rows in ascending order,
		// so per-key match lists replay in build order.
		mp := make(map[uint64][]int, len(sh)/pairParts+1)
		for j, hv := range sh {
			if hv&(pairParts-1) == pt {
				mp[hv] = append(mp[hv], j)
			}
		}
		var w *store.Writer
		flush := func() error {
			if len(bufL) == 0 {
				return nil
			}
			if w == nil {
				path, err := c.Spill().Path("joinpairs")
				if err != nil {
					sp.Close()
					return err
				}
				sp.paths[pt] = path
				w, err = store.Create(path, "joinpairs", pairSpecs)
				if err != nil {
					sp.Close()
					return err
				}
			}
			err := w.Append(len(bufL), []store.ColData{{I: bufL}, {I: bufR}})
			bufL, bufR = bufL[:0], bufR[:0]
			return err
		}
		emit := func(i, j int) error {
			bufL = append(bufL, int64(i))
			bufR = append(bufR, int64(j))
			sp.rows[pt]++
			sp.total++
			if len(bufL) == bat.MorselSize {
				return flush()
			}
			return nil
		}
		for i, hv := range rh {
			if hv&(pairParts-1) != pt {
				continue
			}
			wrote := false
			for _, j := range mp[hv] {
				if rkc.equal(i, skc, j) {
					if err := emit(i, j); err != nil {
						sp.Close()
						return nil, err
					}
					wrote = true
				}
			}
			if !wrote && leftOuter {
				sp.any = true
				if err := emit(i, -1); err != nil {
					sp.Close()
					return nil, err
				}
			}
		}
		if err := flush(); err != nil {
			sp.Close()
			return nil, err
		}
		if w != nil {
			if err := w.Close(); err != nil {
				sp.Close()
				return nil, err
			}
			spilledBytes += w.BytesWritten()
			parts++
		}
	}
	c.NoteSpill(spilledBytes, parts)
	return sp, nil
}

// Each streams the pairs back in canonical join order — probe rows
// ascending, matches per probe row in build order — in blocks of at
// most bat.MorselSize, calling fn with borrowed slices (valid only for
// the duration of the call).
func (sp *SpilledPairs) Each(c *exec.Ctx, fn func(li, ri []int) error) error {
	type partCur struct {
		reader *store.Reader
		cur    *store.Cursor
		l, r   []int64
		pos    int
		done   bool
	}
	var curs []*partCur
	defer func() {
		for _, pc := range curs {
			if pc.cur != nil {
				pc.cur.Close()
			}
			if pc.reader != nil {
				pc.reader.Close()
			}
		}
	}()
	advance := func(pc *partCur) error {
		pc.pos++
		if pc.pos < len(pc.l) {
			return nil
		}
		cols, n, err := pc.cur.Next(bat.MorselSize)
		if err != nil {
			return err
		}
		if n == 0 {
			pc.done = true
			pc.l, pc.r = nil, nil
			return nil
		}
		pc.l, pc.r, pc.pos = cols[0].I, cols[1].I, 0
		return nil
	}
	for pt := 0; pt < pairParts; pt++ {
		if sp.paths[pt] == "" {
			continue
		}
		rd, err := store.Open(sp.paths[pt])
		if err != nil {
			return err
		}
		pc := &partCur{reader: rd, cur: store.NewCursor(c, rd, nil), pos: -1}
		curs = append(curs, pc)
		if err := advance(pc); err != nil {
			return err
		}
	}
	liB := make([]int, 0, bat.MorselSize)
	riB := make([]int, 0, bat.MorselSize)
	emitted := 0
	for emitted < sp.total {
		// The next pair in global order sits at the front holding the
		// smallest probe row; fronts never tie (a probe row's matches
		// live in exactly one partition).
		var best *partCur
		for _, pc := range curs {
			if pc.done {
				continue
			}
			if best == nil || pc.l[pc.pos] < best.l[best.pos] {
				best = pc
			}
		}
		if best == nil {
			return fmt.Errorf("rel: spilled join truncated at %d of %d pairs", emitted, sp.total)
		}
		liB = append(liB, int(best.l[best.pos]))
		riB = append(riB, int(best.r[best.pos]))
		if err := advance(best); err != nil {
			return err
		}
		emitted++
		if len(liB) == bat.MorselSize {
			if err := fn(liB, riB); err != nil {
				return err
			}
			liB, riB = liB[:0], riB[:0]
		}
	}
	if len(liB) > 0 {
		return fn(liB, riB)
	}
	return nil
}

// colFiller scatters gathered values for one output column into a
// pre-sized arena destination, block by block, so a spilled join never
// holds the full pair index in memory.
type colFiller struct {
	fill   func(at int, idx []int)
	finish func() *bat.BAT
}

// newColFiller prepares the typed fill loop for col into a fresh
// destination of the given total length. Negative indices (left-outer
// non-matches) produce the column type's zero value, matching
// gatherWithNulls.
func newColFiller(c *exec.Ctx, col *bat.BAT, total int) colFiller {
	switch col.Type() {
	case bat.Float:
		f, _ := col.FloatsCtx(c)
		out := c.Arena().Floats(total)
		return colFiller{
			fill: func(at int, idx []int) {
				for k, j := range idx {
					if j >= 0 {
						out[at+k] = f[j]
					} else {
						out[at+k] = 0
					}
				}
			},
			finish: func() *bat.BAT {
				col.ReleaseFloats(c, f)
				return bat.FromFloats(out)
			},
		}
	case bat.Int:
		xs := col.VectorCtx(c).Ints()
		out := c.Arena().Int64s(total)
		return colFiller{
			fill: func(at int, idx []int) {
				for k, j := range idx {
					if j >= 0 {
						out[at+k] = xs[j]
					} else {
						out[at+k] = 0
					}
				}
			},
			finish: func() *bat.BAT { return bat.FromInts(out) },
		}
	default:
		ss := col.VectorCtx(c).Strings()
		out := c.Arena().Strings(total)
		return colFiller{
			fill: func(at int, idx []int) {
				for k, j := range idx {
					if j >= 0 {
						out[at+k] = ss[j]
					} else {
						out[at+k] = ""
					}
				}
			},
			finish: func() *bat.BAT { return bat.FromStrings(out) },
		}
	}
}

// joinSpillEst is the rough in-memory footprint the materializing join
// would take beyond its inputs: the build table (~48 bytes per build
// row between map headers and row lists) plus the pair arrays and probe
// counts (~24 bytes per probe row before fan-out).
func joinSpillEst(probeRows, buildRows int) int64 {
	return int64(buildRows)*48 + int64(probeRows)*24
}

// JoinSpillEst exposes the estimate to callers that drive their own
// join assembly over EquiJoinPairsSpilled (the SQL executor), so the
// spill decision is made with the same arithmetic everywhere.
func JoinSpillEst(probeRows, buildRows int) int64 {
	return joinSpillEst(probeRows, buildRows)
}

// EquiJoinPairsSpilled is the out-of-core form of EquiJoinPairs: the
// pair arrays are staged to per-partition segment files instead of
// materializing 16 bytes per match in memory. Callers stream them back
// with Each or fill result columns directly with Fill, then Close.
func EquiJoinPairsSpilled(c *exec.Ctx, probeKeys, buildKeys []*bat.BAT, leftOuter bool) (sp *SpilledPairs, err error) {
	defer exec.CatchBudget(&err)
	if len(probeKeys) != len(buildKeys) || len(probeKeys) == 0 {
		return nil, fmt.Errorf("rel: equi-join needs matching non-empty key lists")
	}
	rkc := keyColsOf(c, probeKeys[0].Len(), probeKeys)
	skc := keyColsOf(c, buildKeys[0].Len(), buildKeys)
	sp, err = spilledJoinPairs(c, rkc, skc, leftOuter)
	rkc.release(c)
	skc.release(c)
	return sp, err
}

// Fill gathers result columns through the staged pair stream block by
// block: leftCols index by probe row, rightCols by build row, with -1
// build rows (left-outer non-matches) producing the column type's zero
// value. The returned columns are leftCols followed by rightCols, and
// the full pair index never exists in memory.
func (sp *SpilledPairs) Fill(c *exec.Ctx, leftCols, rightCols []*bat.BAT) ([]*bat.BAT, error) {
	total := sp.Total()
	fillers := make([]colFiller, 0, len(leftCols)+len(rightCols))
	sides := make([]bool, 0, cap(fillers)) // true = right side (uses ri)
	for _, col := range leftCols {
		fillers = append(fillers, newColFiller(c, col, total))
		sides = append(sides, false)
	}
	for _, col := range rightCols {
		fillers = append(fillers, newColFiller(c, col, total))
		sides = append(sides, true)
	}
	at := 0
	err := sp.Each(c, func(li, ri []int) error {
		for k := range fillers {
			if sides[k] {
				fillers[k].fill(at, ri)
			} else {
				fillers[k].fill(at, li)
			}
		}
		at += len(li)
		return nil
	})
	if err != nil {
		return nil, err
	}
	cols := make([]*bat.BAT, len(fillers))
	for k := range fillers {
		cols[k] = fillers[k].finish()
	}
	return cols, nil
}

// hashJoinSpilled is HashJoinSized's out-of-core path: pairs staged to
// disk, result columns filled block-wise from the pair stream. The
// result is bitwise-identical to the in-memory join.
func hashJoinSpilled(c *exec.Ctx, r, s *Relation, rkc, skc *keyCols, sAttrs []string, jt JoinType) (*Relation, error) {
	sp, err := spilledJoinPairs(c, rkc, skc, jt == Left)
	if err != nil {
		return nil, err
	}
	defer sp.Close()
	rkc.release(c)
	skc.release(c)

	total := sp.Total()
	schema := make(Schema, 0, len(r.Schema)+len(sAttrs))
	fillers := make([]colFiller, 0, len(r.Schema)+len(sAttrs))
	sides := make([]bool, 0, len(r.Schema)+len(sAttrs)) // true = right side (uses ri)
	for j, a := range r.Schema {
		schema = append(schema, a)
		fillers = append(fillers, newColFiller(c, r.Cols[j], total))
		sides = append(sides, false)
	}
	for _, name := range sAttrs {
		j := s.Schema.Index(name)
		schema = append(schema, s.Schema[j])
		fillers = append(fillers, newColFiller(c, s.Cols[j], total))
		sides = append(sides, true)
	}
	at := 0
	err = sp.Each(c, func(li, ri []int) error {
		for k := range fillers {
			if sides[k] {
				fillers[k].fill(at, ri)
			} else {
				fillers[k].fill(at, li)
			}
		}
		at += len(li)
		return nil
	})
	if err != nil {
		return nil, err
	}
	cols := make([]*bat.BAT, len(fillers))
	for k := range fillers {
		cols[k] = fillers[k].finish()
	}
	return New(r.Name, schema, cols)
}
