package rel

import (
	"fmt"
	"os"

	"repro/internal/bat"
	"repro/internal/exec"
	"repro/internal/store"
)

// This file holds the out-of-core equi-join: instead of materializing
// the (probe, build) pair arrays — 16 bytes per match, the dominant
// allocation of a fan-out join — the pairs are staged to per-partition
// segment files and streamed back in canonical order, so the only
// full-size in-memory structures left are the result columns
// themselves. Partitioning by key hash also shrinks the transient build
// table to one partition's share. The pair order on disk is exactly the
// in-memory order (probe rows ascending, matches per probe row in build
// order), so the streamed join is bitwise-identical to HashJoin.

// pairParts is the partition fan-out of the spilled join. Each probe
// row's matches land wholly in one partition (selected by key hash), so
// a front-merge over the partition streams restores global probe order.
const pairParts = 16

// SpilledPairs is the on-disk result of a spilled equi-join pair
// computation: per-partition segment files of (probe, build) row pairs,
// with -1 build rows marking left-outer non-matches.
type SpilledPairs struct {
	paths [pairParts]string
	rows  [pairParts]int64
	total int
	any   bool // any unmatched probe row (left outer)
}

// Total returns the number of pairs (including left-outer non-matches).
func (sp *SpilledPairs) Total() int { return sp.total }

// AnyUnmatched reports whether any left-outer non-match was emitted.
func (sp *SpilledPairs) AnyUnmatched() bool { return sp.any }

// Close removes the staged partition files. Idempotent.
func (sp *SpilledPairs) Close() {
	for pt := range sp.paths {
		if sp.paths[pt] != "" {
			os.Remove(sp.paths[pt])
			sp.paths[pt] = ""
		}
	}
}

var pairSpecs = []store.ColSpec{
	{Name: "l", Kind: store.KInt},
	{Name: "r", Kind: store.KInt},
}

// spilledJoinPairs computes the equi-join pairs of rkc (probe) against
// skc (build) partition by partition, staging the pairs to disk. The
// build table only ever holds one partition's rows, and the pair arrays
// never exist in memory.
func spilledJoinPairs(c *exec.Ctx, rkc, skc *keyCols, leftOuter bool) (*SpilledPairs, error) {
	sh := skc.hashes(c)
	rh := rkc.hashes(c)
	sp := &SpilledPairs{}
	var spilledBytes int64
	parts := int64(0)

	bufL := make([]int64, 0, bat.MorselSize)
	bufR := make([]int64, 0, bat.MorselSize)
	for pt := uint64(0); pt < pairParts; pt++ {
		// Build this partition's table: build rows in ascending order,
		// so per-key match lists replay in build order.
		mp := make(map[uint64][]int, len(sh)/pairParts+1)
		for j, hv := range sh {
			if hv&(pairParts-1) == pt {
				mp[hv] = append(mp[hv], j)
			}
		}
		var w *store.Writer
		flush := func() error {
			if len(bufL) == 0 {
				return nil
			}
			if w == nil {
				path, err := c.Spill().Path("joinpairs")
				if err != nil {
					sp.Close()
					return err
				}
				sp.paths[pt] = path
				w, err = store.Create(path, "joinpairs", pairSpecs)
				if err != nil {
					sp.Close()
					return err
				}
			}
			err := w.Append(len(bufL), []store.ColData{{I: bufL}, {I: bufR}})
			bufL, bufR = bufL[:0], bufR[:0]
			return err
		}
		emit := func(i, j int) error {
			bufL = append(bufL, int64(i))
			bufR = append(bufR, int64(j))
			sp.rows[pt]++
			sp.total++
			if len(bufL) == bat.MorselSize {
				return flush()
			}
			return nil
		}
		for i, hv := range rh {
			if hv&(pairParts-1) != pt {
				continue
			}
			wrote := false
			for _, j := range mp[hv] {
				if rkc.equal(i, skc, j) {
					if err := emit(i, j); err != nil {
						sp.Close()
						return nil, err
					}
					wrote = true
				}
			}
			if !wrote && leftOuter {
				sp.any = true
				if err := emit(i, -1); err != nil {
					sp.Close()
					return nil, err
				}
			}
		}
		if err := flush(); err != nil {
			sp.Close()
			return nil, err
		}
		if w != nil {
			if err := w.Close(); err != nil {
				sp.Close()
				return nil, err
			}
			spilledBytes += w.BytesWritten()
			parts++
		}
	}
	c.NoteSpill(spilledBytes, parts)
	return sp, nil
}

// Each streams the pairs back in canonical join order — probe rows
// ascending, matches per probe row in build order — in blocks of at
// most bat.MorselSize, calling fn with borrowed slices (valid only for
// the duration of the call).
func (sp *SpilledPairs) Each(c *exec.Ctx, fn func(li, ri []int) error) error {
	type partCur struct {
		reader *store.Reader
		cur    *store.Cursor
		l, r   []int64
		pos    int
		done   bool
	}
	var curs []*partCur
	defer func() {
		for _, pc := range curs {
			if pc.cur != nil {
				pc.cur.Close()
			}
			if pc.reader != nil {
				pc.reader.Close()
			}
		}
	}()
	advance := func(pc *partCur) error {
		pc.pos++
		if pc.pos < len(pc.l) {
			return nil
		}
		cols, n, err := pc.cur.Next(bat.MorselSize)
		if err != nil {
			return err
		}
		if n == 0 {
			pc.done = true
			pc.l, pc.r = nil, nil
			return nil
		}
		pc.l, pc.r, pc.pos = cols[0].I, cols[1].I, 0
		return nil
	}
	for pt := 0; pt < pairParts; pt++ {
		if sp.paths[pt] == "" {
			continue
		}
		rd, err := store.Open(sp.paths[pt])
		if err != nil {
			return err
		}
		pc := &partCur{reader: rd, cur: store.NewCursor(c, rd, nil), pos: -1}
		curs = append(curs, pc)
		if err := advance(pc); err != nil {
			return err
		}
	}
	liB := make([]int, 0, bat.MorselSize)
	riB := make([]int, 0, bat.MorselSize)
	emitted := 0
	for emitted < sp.total {
		// The next pair in global order sits at the front holding the
		// smallest probe row; fronts never tie (a probe row's matches
		// live in exactly one partition).
		var best *partCur
		for _, pc := range curs {
			if pc.done {
				continue
			}
			if best == nil || pc.l[pc.pos] < best.l[best.pos] {
				best = pc
			}
		}
		if best == nil {
			return fmt.Errorf("rel: spilled join truncated at %d of %d pairs", emitted, sp.total)
		}
		liB = append(liB, int(best.l[best.pos]))
		riB = append(riB, int(best.r[best.pos]))
		if err := advance(best); err != nil {
			return err
		}
		emitted++
		if len(liB) == bat.MorselSize {
			if err := fn(liB, riB); err != nil {
				return err
			}
			liB, riB = liB[:0], riB[:0]
		}
	}
	if len(liB) > 0 {
		return fn(liB, riB)
	}
	return nil
}

// stagedFill assembles the output columns of a spilled join without
// ever holding all of them in flight at once. One pass over the staged
// pair stream appends every column's gathered values block-wise to a
// shared segment file — the gathered column intermediates spill exactly
// like the pair arrays do — and the arena-backed result columns are
// then materialized from that file one at a time. The in-flight
// footprint is one morsel-sized block buffer per column during the
// pass, and the finished columns plus a single decoded segment during
// assembly. The previous scheme allocated every destination up-front
// and held them through the whole pass; on wide tables the destinations
// — not the pairs — dominate the join's footprint, and a spilled wide
// join could peak above the in-memory path it was supposed to undercut.
//
// rightSide[k] selects which half of each pair indexes cols[k] (false =
// probe row, true = build row); build rows of -1 (left-outer
// non-matches) produce the column type's zero value, matching
// gatherWithNulls. The returned columns are in cols order.
func stagedFill(c *exec.Ctx, sp *SpilledPairs, cols []*bat.BAT, rightSide []bool) ([]*bat.BAT, error) {
	total := sp.Total()
	w := len(cols)

	// Typed source views (densified sparse tails are the only charged
	// ones, handed back right after the staging pass) and one reusable
	// block buffer per column.
	fsrc := make([][]float64, w)
	isrc := make([][]int64, w)
	ssrc := make([][]string, w)
	specs := make([]store.ColSpec, w)
	bufs := make([]store.ColData, w)
	releaseViews := func() {
		for k := range fsrc {
			if fsrc[k] != nil {
				cols[k].ReleaseFloats(c, fsrc[k])
				fsrc[k] = nil
			}
		}
	}
	for k, col := range cols {
		specs[k] = store.ColSpec{Name: fmt.Sprintf("c%d", k)}
		switch col.Type() {
		case bat.Float:
			f, err := col.FloatsCtx(c)
			if err != nil {
				releaseViews()
				return nil, err
			}
			fsrc[k] = f
			specs[k].Kind = store.KFloat
			bufs[k].F = make([]float64, bat.MorselSize)
		case bat.Int:
			isrc[k] = col.VectorCtx(c).Ints()
			specs[k].Kind = store.KInt
			bufs[k].I = make([]int64, bat.MorselSize)
		default:
			ssrc[k] = col.VectorCtx(c).Strings()
			specs[k].Kind = store.KString
			bufs[k].S = make([]string, bat.MorselSize)
		}
	}

	path, err := c.Spill().Path("joincols")
	if err != nil {
		releaseViews()
		return nil, err
	}
	defer os.Remove(path)
	wr, err := store.Create(path, "joincols", specs)
	if err != nil {
		releaseViews()
		return nil, err
	}
	err = sp.Each(c, func(li, ri []int) error {
		n := len(li)
		data := make([]store.ColData, w)
		for k := range cols {
			idx := li
			if rightSide[k] {
				idx = ri
			}
			switch specs[k].Kind {
			case store.KFloat:
				buf := bufs[k].F[:n]
				for t, j := range idx {
					if j >= 0 {
						buf[t] = fsrc[k][j]
					} else {
						buf[t] = 0
					}
				}
				data[k] = store.ColData{F: buf}
			case store.KInt:
				buf := bufs[k].I[:n]
				for t, j := range idx {
					if j >= 0 {
						buf[t] = isrc[k][j]
					} else {
						buf[t] = 0
					}
				}
				data[k] = store.ColData{I: buf}
			default:
				buf := bufs[k].S[:n]
				for t, j := range idx {
					if j >= 0 {
						buf[t] = ssrc[k][j]
					} else {
						buf[t] = ""
					}
				}
				data[k] = store.ColData{S: buf}
			}
		}
		return wr.Append(n, data)
	})
	releaseViews()
	if err != nil {
		wr.Close()
		return nil, err
	}
	if err := wr.Close(); err != nil {
		return nil, err
	}
	c.NoteSpill(wr.BytesWritten(), 1)

	// Assembly: materialize one column at a time from the staged file.
	rd, err := store.Open(path)
	if err != nil {
		return nil, err
	}
	outs := make([]*bat.BAT, w)
	fail := func(err error) ([]*bat.BAT, error) {
		for _, b := range outs {
			if b != nil {
				bat.Release(c, b)
			}
		}
		rd.Close()
		return nil, err
	}
	for k := range cols {
		cur := store.NewCursor(c, rd, []int{k})
		at := 0
		switch specs[k].Kind {
		case store.KFloat:
			dst := c.Arena().Floats(total)
			for {
				data, n, err := cur.Next(0)
				if err != nil {
					c.Arena().FreeFloats(dst)
					return fail(err)
				}
				if n == 0 {
					break
				}
				copy(dst[at:], data[0].F)
				at += n
			}
			outs[k] = bat.FromFloats(dst)
		case store.KInt:
			dst := c.Arena().Int64s(total)
			for {
				data, n, err := cur.Next(0)
				if err != nil {
					c.Arena().FreeInt64s(dst)
					return fail(err)
				}
				if n == 0 {
					break
				}
				copy(dst[at:], data[0].I)
				at += n
			}
			outs[k] = bat.FromInts(dst)
		default:
			dst := c.Arena().Strings(total)
			for {
				data, n, err := cur.Next(0)
				if err != nil {
					c.Arena().FreeStrings(dst)
					return fail(err)
				}
				if n == 0 {
					break
				}
				copy(dst[at:], data[0].S)
				at += n
			}
			outs[k] = bat.FromStrings(dst)
		}
		cur.Close()
		if at != total {
			return fail(fmt.Errorf("rel: staged join column %d truncated at %d of %d rows", k, at, total))
		}
	}
	rd.Close()
	return outs, nil
}

// joinSpillEst is the rough in-memory footprint the materializing join
// would take beyond its inputs: the build table (~48 bytes per build
// row between map headers and row lists) plus the pair arrays and probe
// counts (~24 bytes per probe row before fan-out).
func joinSpillEst(probeRows, buildRows int) int64 {
	return int64(buildRows)*48 + int64(probeRows)*24
}

// JoinSpillEst exposes the estimate to callers that drive their own
// join assembly over EquiJoinPairsSpilled (the SQL executor), so the
// spill decision is made with the same arithmetic everywhere.
func JoinSpillEst(probeRows, buildRows int) int64 {
	return joinSpillEst(probeRows, buildRows)
}

// EquiJoinPairsSpilled is the out-of-core form of EquiJoinPairs: the
// pair arrays are staged to per-partition segment files instead of
// materializing 16 bytes per match in memory. Callers stream them back
// with Each or fill result columns directly with Fill, then Close.
func EquiJoinPairsSpilled(c *exec.Ctx, probeKeys, buildKeys []*bat.BAT, leftOuter bool) (sp *SpilledPairs, err error) {
	defer exec.CatchBudget(&err)
	if len(probeKeys) != len(buildKeys) || len(probeKeys) == 0 {
		return nil, fmt.Errorf("rel: equi-join needs matching non-empty key lists")
	}
	rkc := keyColsOf(c, probeKeys[0].Len(), probeKeys)
	skc := keyColsOf(c, buildKeys[0].Len(), buildKeys)
	sp, err = spilledJoinPairs(c, rkc, skc, leftOuter)
	rkc.release(c)
	skc.release(c)
	return sp, err
}

// Fill gathers result columns through the staged pair stream block by
// block: leftCols index by probe row, rightCols by build row, with -1
// build rows (left-outer non-matches) producing the column type's zero
// value. The gathered column intermediates themselves are staged to a
// segment file and the result columns materialized from it one at a
// time, so neither the full pair index nor all destinations at once
// ever exist in memory. The returned columns are leftCols followed by
// rightCols.
func (sp *SpilledPairs) Fill(c *exec.Ctx, leftCols, rightCols []*bat.BAT) ([]*bat.BAT, error) {
	cols := make([]*bat.BAT, 0, len(leftCols)+len(rightCols))
	cols = append(cols, leftCols...)
	cols = append(cols, rightCols...)
	sides := make([]bool, len(cols)) // true = right side (uses ri)
	for k := len(leftCols); k < len(cols); k++ {
		sides[k] = true
	}
	return stagedFill(c, sp, cols, sides)
}

// hashJoinSpilled is HashJoinSized's out-of-core path: pairs staged to
// disk, gathered column intermediates staged likewise, result columns
// materialized one at a time. The result is bitwise-identical to the
// in-memory join.
func hashJoinSpilled(c *exec.Ctx, r, s *Relation, rkc, skc *keyCols, sAttrs []string, jt JoinType) (*Relation, error) {
	sp, err := spilledJoinPairs(c, rkc, skc, jt == Left)
	if err != nil {
		return nil, err
	}
	defer sp.Close()
	rkc.release(c)
	skc.release(c)

	schema := make(Schema, 0, len(r.Schema)+len(sAttrs))
	srcCols := make([]*bat.BAT, 0, cap(schema))
	sides := make([]bool, 0, cap(schema)) // true = right side (uses ri)
	for j, a := range r.Schema {
		schema = append(schema, a)
		srcCols = append(srcCols, r.Cols[j])
		sides = append(sides, false)
	}
	for _, name := range sAttrs {
		j := s.Schema.Index(name)
		schema = append(schema, s.Schema[j])
		srcCols = append(srcCols, s.Cols[j])
		sides = append(sides, true)
	}
	cols, err := stagedFill(c, sp, srcCols, sides)
	if err != nil {
		return nil, err
	}
	return New(r.Name, schema, cols)
}
