package rel

import (
	"fmt"
	"testing"

	"repro/internal/bat"
	"repro/internal/exec"
)

// aggRel builds a relation with an int key column of the given
// cardinality, a string tag column, and two float value columns.
func aggRel(n, card int) *Relation {
	keys := make([]int64, n)
	tags := make([]string, n)
	v1 := make([]float64, n)
	v2 := make([]float64, n)
	for i := 0; i < n; i++ {
		keys[i] = int64((i*7919 + 13) % card)
		tags[i] = fmt.Sprintf("t%d", i%3)
		v1[i] = float64(i%101)*0.25 - 12.5
		v2[i] = float64((i*31)%997) * 0.125
	}
	r, err := New("r", Schema{
		{Name: "k", Type: bat.Int},
		{Name: "tag", Type: bat.String},
		{Name: "a", Type: bat.Float},
		{Name: "b", Type: bat.Float},
	}, []*bat.BAT{bat.FromInts(keys), bat.FromStrings(tags), bat.FromFloats(v1), bat.FromFloats(v2)})
	if err != nil {
		panic(err)
	}
	return r
}

// TestStreamingAggMatchesGroupBy feeds the same rows through StreamAgg
// one morsel at a time and through the materializing GroupBy at several
// worker budgets, asserting bitwise-identical results. Sizes straddle
// the SerialCutoff chunk edges (where the streaming accumulator flushes)
// and the morsel feed is deliberately not aligned to them.
func TestStreamingAggMatchesGroupBy(t *testing.T) {
	aggs := []AggSpec{
		{Func: Count, As: "n"},
		{Func: Sum, Attr: "a", As: "sa"},
		{Func: Avg, Attr: "b", As: "ab"},
		{Func: Min, Attr: "a", As: "ma"},
		{Func: Max, Attr: "b", As: "xb"},
	}
	sizes := []int{0, 1, bat.SerialCutoff - 1, bat.SerialCutoff, bat.SerialCutoff + 1, 3*bat.SerialCutoff + 257}
	for _, n := range sizes {
		for _, morsel := range []int{bat.MorselSize, 1000} {
			r := aggRel(n, 97)
			kcol, _ := r.Col("k")
			tcol, _ := r.Col("tag")
			acol, _ := r.Col("a")
			bcol, _ := r.Col("b")

			sa, err := NewStreamAgg("r", []string{"k", "tag"}, []bat.Type{bat.Int, bat.String}, aggs, 0)
			if err != nil {
				t.Fatal(err)
			}
			ints := kcol.Vector().Ints()
			tags := tcol.Vector().Strings()
			af := acol.Vector().Floats()
			bf := bcol.Vector().Floats()
			for lo := 0; lo < n; lo += morsel {
				hi := min(lo+morsel, n)
				keys := []*bat.Vector{bat.NewIntVector(ints[lo:hi]), bat.NewStringVector(tags[lo:hi])}
				aggIn := [][]float64{nil, af[lo:hi], bf[lo:hi], af[lo:hi], bf[lo:hi]}
				sa.Consume(keys, aggIn, hi-lo)
			}
			streamed, err := sa.Finish()
			if err != nil {
				t.Fatal(err)
			}

			for _, workers := range []int{1, 2, 8} {
				c := exec.NewCtx(workers, nil, nil)
				want, err := GroupBy(c, r, []string{"k", "tag"}, aggs)
				if err != nil {
					t.Fatal(err)
				}
				if !equalRelations(streamed, want) {
					t.Fatalf("n=%d morsel=%d workers=%d: streamed aggregation differs from GroupBy", n, morsel, workers)
				}
			}
		}
	}
}

// TestStreamingAggGlobalGroup checks the keyless (single global group)
// path against GroupBy at chunk-edge sizes.
func TestStreamingAggGlobalGroup(t *testing.T) {
	aggs := []AggSpec{
		{Func: Count, As: "n"},
		{Func: Sum, Attr: "a", As: "sa"},
		{Func: Min, Attr: "b", As: "mb"},
	}
	for _, n := range []int{1, bat.SerialCutoff, 2*bat.SerialCutoff + 5} {
		r := aggRel(n, 7)
		acol, _ := r.Col("a")
		bcol, _ := r.Col("b")
		af := acol.Vector().Floats()
		bf := bcol.Vector().Floats()

		sa, err := NewStreamAgg("r", nil, nil, aggs, 0)
		if err != nil {
			t.Fatal(err)
		}
		for lo := 0; lo < n; lo += bat.MorselSize {
			hi := min(lo+bat.MorselSize, n)
			sa.Consume(nil, [][]float64{nil, af[lo:hi], bf[lo:hi]}, hi-lo)
		}
		streamed, err := sa.Finish()
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 8} {
			want, err := GroupBy(exec.NewCtx(workers, nil, nil), r, nil, aggs)
			if err != nil {
				t.Fatal(err)
			}
			if !equalRelations(streamed, want) {
				t.Fatalf("n=%d workers=%d: streamed global aggregation differs from GroupBy", n, workers)
			}
		}
	}
}

// TestStreamingJoinProbeMatchesEquiJoinPairs probes a JoinBuild one
// morsel at a time and asserts the concatenated pair lists equal the
// all-at-once EquiJoinPairs output, inner and left outer, at several
// worker budgets.
func TestStreamingJoinProbeMatchesEquiJoinPairs(t *testing.T) {
	pn, bn := 3*bat.SerialCutoff+41, 2000
	probe := make([]int64, pn)
	build := make([]int64, bn)
	for i := range probe {
		probe[i] = int64((i*7919 + 3) % 1500) // some keys unmatched
	}
	for j := range build {
		build[j] = int64((j*104729 + 1) % 1500)
	}
	probeKeys := []*bat.BAT{bat.FromInts(probe)}
	buildKeys := []*bat.BAT{bat.FromInts(build)}

	for _, leftOuter := range []bool{false, true} {
		for _, workers := range []int{1, 2, 8} {
			c := exec.NewCtx(workers, nil, nil)
			wantLi, wantRi, err := EquiJoinPairs(c, probeKeys, buildKeys, leftOuter)
			if err != nil {
				t.Fatal(err)
			}

			jb, err := NewJoinBuild(c, buildKeys, 0)
			if err != nil {
				t.Fatal(err)
			}
			var gotLi, gotRi []int
			for lo := 0; lo < pn; lo += bat.MorselSize {
				hi := min(lo+bat.MorselSize, pn)
				mk := []*bat.BAT{bat.FromInts(probe[lo:hi])}
				li, ri, _, err := jb.Probe(c, mk, leftOuter)
				if err != nil {
					t.Fatal(err)
				}
				for k := range li {
					gotLi = append(gotLi, li[k]+lo)
					gotRi = append(gotRi, ri[k])
				}
				c.Arena().FreeInts(li)
				c.Arena().FreeInts(ri)
			}
			jb.Release(c)

			if len(gotLi) != len(wantLi) {
				t.Fatalf("leftOuter=%v workers=%d: %d streamed pairs, want %d", leftOuter, workers, len(gotLi), len(wantLi))
			}
			for k := range wantLi {
				if gotLi[k] != wantLi[k] || gotRi[k] != wantRi[k] {
					t.Fatalf("leftOuter=%v workers=%d: pair %d = (%d,%d), want (%d,%d)",
						leftOuter, workers, k, gotLi[k], gotRi[k], wantLi[k], wantRi[k])
				}
			}
		}
	}
}

// TestStreamingSizedVariantsMatchBase pins HashJoinSized and GroupBySized
// to their default-sized originals: the hint may only change allocation
// behavior, never the result.
func TestStreamingSizedVariantsMatchBase(t *testing.T) {
	n := 2*bat.SerialCutoff + 17
	r := aggRel(n, 512)
	s, err := aggRel(3000, 512).Rename(map[string]string{"tag": "stag", "a": "sa", "b": "sb"})
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 8} {
		c := exec.NewCtx(workers, nil, nil)
		for _, hint := range []int{1, 512, 10 * n} {
			base, err := HashJoin(c, r, s, []string{"k"}, []string{"k"}, Inner)
			if err != nil {
				t.Fatal(err)
			}
			sized, err := HashJoinSized(c, r, s, []string{"k"}, []string{"k"}, Inner, hint)
			if err != nil {
				t.Fatal(err)
			}
			if !equalRelations(base, sized) {
				t.Fatalf("workers=%d hint=%d: HashJoinSized differs from HashJoin", workers, hint)
			}

			aggs := []AggSpec{{Func: Sum, Attr: "a", As: "sa"}, {Func: Count, As: "n"}}
			gbase, err := GroupBy(c, r, []string{"k"}, aggs)
			if err != nil {
				t.Fatal(err)
			}
			gsized, err := GroupBySized(c, r, []string{"k"}, aggs, hint)
			if err != nil {
				t.Fatal(err)
			}
			if !equalRelations(gbase, gsized) {
				t.Fatalf("workers=%d hint=%d: GroupBySized differs from GroupBy", workers, hint)
			}
		}
	}
}
