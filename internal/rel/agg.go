package rel

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/bat"
	"repro/internal/exec"
)

// AggFunc enumerates the supported aggregation functions.
type AggFunc uint8

const (
	// Count counts rows (COUNT(*) when Attr is empty).
	Count AggFunc = iota
	// Sum adds values of a numeric attribute.
	Sum
	// Avg averages a numeric attribute.
	Avg
	// Min takes the minimum of a numeric attribute.
	Min
	// Max takes the maximum of a numeric attribute.
	Max
)

// String returns the SQL name of the function.
func (f AggFunc) String() string {
	switch f {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	}
	return "AGG?"
}

// AggSpec is one aggregate in a ϑ operation: Func applied to Attr, output
// named As.
type AggSpec struct {
	Func AggFunc
	Attr string // empty means * (Count only)
	As   string
}

type aggState struct {
	count int64
	sum   float64
	min   float64
	max   float64
}

func newAggStates(k int) []aggState {
	st := make([]aggState, k)
	for i := range st {
		st[i].min = math.Inf(1)
		st[i].max = math.Inf(-1)
	}
	return st
}

// accumulate folds row value v (valid when col != nil) into the state.
func (st *aggState) accumulate(col []float64, i int) {
	st.count++
	if col != nil {
		v := col[i]
		st.sum += v
		if v < st.min {
			st.min = v
		}
		if v > st.max {
			st.max = v
		}
	}
}

// combine folds a later chunk's partial state into st (chunk order).
func (st *aggState) combine(o *aggState) {
	st.count += o.count
	st.sum += o.sum
	if o.min < st.min {
		st.min = o.min
	}
	if o.max > st.max {
		st.max = o.max
	}
}

// aggGroup is one group of a partial (per-chunk) or merged aggregation
// table: the first row carrying the group's key, plus one running state per
// aggregate.
type aggGroup struct {
	row int
	st  []aggState
}

// aggTable accumulates groups in first-seen order with hash lookup; the
// same structure serves the per-chunk partials and the merged result.
type aggTable struct {
	groups []aggGroup
	byHash map[uint64][]int // hash -> indices into groups
}

func newAggTable(hint int) *aggTable {
	return &aggTable{byHash: make(map[uint64][]int, hint)}
}

// find returns the group of row i (keyed by kc/h), creating it when absent.
func (t *aggTable) find(kc *keyCols, h []uint64, i, nAggs int) *aggGroup {
	hv := h[i]
	for _, g := range t.byHash[hv] {
		if kc.equal(i, kc, t.groups[g].row) {
			return &t.groups[g]
		}
	}
	t.byHash[hv] = append(t.byHash[hv], len(t.groups))
	t.groups = append(t.groups, aggGroup{row: i, st: newAggStates(nAggs)})
	return &t.groups[len(t.groups)-1]
}

// GroupBy computes ϑ: grouping on the key attributes (none means a single
// global group) with the given aggregates. The result schema is the keys
// followed by one column per aggregate. Count yields BIGINT; the other
// functions yield DOUBLE. Groups appear in first-seen row order.
//
// The aggregation is chunk-parallel: rows are split into fixed chunks of
// bat.SerialCutoff (boundaries depend only on the row count, never on the
// worker budget), each chunk folds its rows into a partial group table in
// row order, and the partials are merged in ascending chunk order. Sums
// therefore associate identically at any parallelism, making the output
// bitwise-reproducible — the same discipline as bat.Sum and bat.Dot.
func GroupBy(c *exec.Ctx, r *Relation, keys []string, aggs []AggSpec) (*Relation, error) {
	return GroupBySized(c, r, keys, aggs, 0)
}

// GroupBySized is GroupBy with a group-cardinality hint: the expected
// number of distinct groups, used to pre-size the per-chunk and merged
// hash tables instead of growing them incrementally. A hint ≤ 0 falls
// back to the default sizing; the hint never affects the result, only
// allocation behavior.
func GroupBySized(c *exec.Ctx, r *Relation, keys []string, aggs []AggSpec, groupHint int) (res *Relation, err error) {
	defer exec.CatchBudget(&err)
	if len(aggs) == 0 {
		return nil, fmt.Errorf("rel: group by without aggregates")
	}
	inCols := make([][]float64, len(aggs))
	srcCols := make([]*bat.BAT, len(aggs))
	// The aggregate views may be arena-drawn (densified sparse or
	// converted int tails); hand them back on every exit — including a
	// budget unwind — so they neither stay charged to the tenant nor
	// bypass the pools.
	defer func() {
		for k, f := range inCols {
			if srcCols[k] != nil {
				srcCols[k].ReleaseFloats(c, f)
			}
		}
	}()
	for k, a := range aggs {
		if a.Attr == "" {
			if a.Func != Count {
				return nil, fmt.Errorf("rel: %v(*) not supported", a.Func)
			}
			continue
		}
		col, err := r.Col(a.Attr)
		if err != nil {
			return nil, err
		}
		f, err := col.FloatsCtx(c)
		if err != nil {
			return nil, fmt.Errorf("rel: aggregate %v over non-numeric %q", a.Func, a.Attr)
		}
		inCols[k], srcCols[k] = f, col
	}

	// Out-of-core path: fold through a spilling stream accumulator, which
	// stages the tail of the key space to disk instead of growing the
	// group tables. Same result, bit for bit.
	if len(keys) > 0 && c.ShouldSpill(groupSpillEst(r.NumRows(), len(keys), len(aggs))) {
		return groupBySpilled(c, r, keys, aggs, groupHint, inCols)
	}

	var kc *keyCols
	var hash []uint64
	if len(keys) > 0 {
		var err error
		kc, err = newKeyCols(c, r, keys)
		if err != nil {
			return nil, err
		}
		hash = kc.hashes(c)
	}

	n := r.NumRows()
	chunks := (n + bat.SerialCutoff - 1) / bat.SerialCutoff
	partials := make([]*aggTable, chunks)
	c.ParallelFor(chunks, 1, func(clo, chi int) {
		for ch := clo; ch < chi; ch++ {
			lo, hi := ch*bat.SerialCutoff, min((ch+1)*bat.SerialCutoff, n)
			hint := (hi-lo)/4 + 1
			if groupHint > 0 && groupHint < hint {
				hint = groupHint + 1
			}
			t := newAggTable(hint)
			if kc == nil {
				g := aggGroup{row: lo, st: newAggStates(len(aggs))}
				for i := lo; i < hi; i++ {
					for k := range aggs {
						g.st[k].accumulate(inCols[k], i)
					}
				}
				t.groups = append(t.groups, g)
			} else {
				for i := lo; i < hi; i++ {
					g := t.find(kc, hash, i, len(aggs))
					for k := range aggs {
						g.st[k].accumulate(inCols[k], i)
					}
				}
			}
			partials[ch] = t
		}
	})

	// Merge the chunk partials in ascending chunk order. Global group ids
	// follow global first-seen order because chunks are contiguous row
	// ranges visited in order.
	var merged *aggTable
	if chunks == 1 {
		merged = partials[0]
	} else {
		merged = newAggTable(max(groupHint, 0))
		for _, t := range partials {
			for li := range t.groups {
				lg := &t.groups[li]
				if kc == nil {
					if len(merged.groups) == 0 {
						merged.groups = append(merged.groups, aggGroup{row: lg.row, st: newAggStates(len(aggs))})
					}
					g := &merged.groups[0]
					for k := range aggs {
						g.st[k].combine(&lg.st[k])
					}
					continue
				}
				g := merged.find(kc, hash, lg.row, len(aggs))
				for k := range aggs {
					g.st[k].combine(&lg.st[k])
				}
			}
		}
	}
	groups := make([]int, len(merged.groups))
	for g := range merged.groups {
		groups[g] = merged.groups[g].row
	}
	// The key views are done once the groups are merged; return any
	// densified sparse tails to the per-query arena before the result
	// assembly below draws from it.
	kc.release(c)

	// Assemble the result: key columns first (one representative row per
	// group), then aggregate columns.
	schema := make(Schema, 0, len(keys)+len(aggs))
	cols := make([]*bat.BAT, 0, len(keys)+len(aggs))
	if len(keys) > 0 {
		rep := r.Gather(c, groups)
		for _, name := range keys {
			j := rep.Schema.Index(name)
			schema = append(schema, rep.Schema[j])
			cols = append(cols, rep.Cols[j])
		}
	}
	for k, a := range aggs {
		name := a.As
		if name == "" {
			name = fmt.Sprintf("%s_%s", strings.ToLower(a.Func.String()), a.Attr)
		}
		switch a.Func {
		case Count:
			out := make([]int64, len(groups))
			for g := range groups {
				out[g] = merged.groups[g].st[k].count
			}
			schema = append(schema, Attr{Name: name, Type: bat.Int})
			cols = append(cols, bat.FromInts(out))
		default:
			out := make([]float64, len(groups))
			for g := range groups {
				st := &merged.groups[g].st[k]
				switch a.Func {
				case Sum:
					out[g] = st.sum
				case Avg:
					out[g] = st.sum / float64(st.count)
				case Min:
					out[g] = st.min
				case Max:
					out[g] = st.max
				}
			}
			schema = append(schema, Attr{Name: name, Type: bat.Float})
			cols = append(cols, bat.FromFloats(out))
		}
	}
	return New(r.Name, schema, cols)
}
