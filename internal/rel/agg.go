package rel

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/bat"
)

// AggFunc enumerates the supported aggregation functions.
type AggFunc uint8

const (
	// Count counts rows (COUNT(*) when Attr is empty).
	Count AggFunc = iota
	// Sum adds values of a numeric attribute.
	Sum
	// Avg averages a numeric attribute.
	Avg
	// Min takes the minimum of a numeric attribute.
	Min
	// Max takes the maximum of a numeric attribute.
	Max
)

// String returns the SQL name of the function.
func (f AggFunc) String() string {
	switch f {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	}
	return "AGG?"
}

// AggSpec is one aggregate in a ϑ operation: Func applied to Attr, output
// named As.
type AggSpec struct {
	Func AggFunc
	Attr string // empty means * (Count only)
	As   string
}

type aggState struct {
	count int64
	sum   float64
	min   float64
	max   float64
}

// GroupBy computes ϑ: grouping on the key attributes (none means a single
// global group) with the given aggregates. The result schema is the keys
// followed by one column per aggregate. Count yields BIGINT; the other
// functions yield DOUBLE.
func GroupBy(r *Relation, keys []string, aggs []AggSpec) (*Relation, error) {
	if len(aggs) == 0 {
		return nil, fmt.Errorf("rel: group by without aggregates")
	}
	inCols := make([][]float64, len(aggs))
	for k, a := range aggs {
		if a.Attr == "" {
			if a.Func != Count {
				return nil, fmt.Errorf("rel: %v(*) not supported", a.Func)
			}
			continue
		}
		c, err := r.Col(a.Attr)
		if err != nil {
			return nil, err
		}
		f, err := c.Floats()
		if err != nil {
			return nil, fmt.Errorf("rel: aggregate %v over non-numeric %q", a.Func, a.Attr)
		}
		inCols[k] = f
	}

	keyCols := make([]*bat.BAT, len(keys))
	for k, name := range keys {
		c, err := r.Col(name)
		if err != nil {
			return nil, err
		}
		keyCols[k] = c
	}

	n := r.NumRows()
	groupOf := make([]int, n)
	var groups []int // first row of each group, in first-seen order
	if len(keys) == 0 {
		for i := range groupOf {
			groupOf[i] = 0
		}
		groups = []int{0}
		if n == 0 {
			groups = groups[:0]
		}
	} else {
		seen := make(map[string]int, n/4+1)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.Reset()
			for _, c := range keyCols {
				sb.WriteString(c.Get(i).String())
				sb.WriteByte(0)
			}
			key := sb.String()
			g, ok := seen[key]
			if !ok {
				g = len(groups)
				seen[key] = g
				groups = append(groups, i)
			}
			groupOf[i] = g
		}
	}

	states := make([][]aggState, len(aggs))
	for k := range states {
		states[k] = make([]aggState, len(groups))
		for g := range states[k] {
			states[k][g].min = math.Inf(1)
			states[k][g].max = math.Inf(-1)
		}
	}
	for i := 0; i < n; i++ {
		g := groupOf[i]
		for k := range aggs {
			st := &states[k][g]
			st.count++
			if inCols[k] != nil {
				v := inCols[k][i]
				st.sum += v
				if v < st.min {
					st.min = v
				}
				if v > st.max {
					st.max = v
				}
			}
		}
	}

	// Assemble the result: key columns first (one representative row per
	// group), then aggregate columns.
	schema := make(Schema, 0, len(keys)+len(aggs))
	cols := make([]*bat.BAT, 0, len(keys)+len(aggs))
	if len(keys) > 0 {
		rep := r.Gather(groups)
		for _, name := range keys {
			j := rep.Schema.Index(name)
			schema = append(schema, rep.Schema[j])
			cols = append(cols, rep.Cols[j])
		}
	}
	for k, a := range aggs {
		name := a.As
		if name == "" {
			name = fmt.Sprintf("%s_%s", strings.ToLower(a.Func.String()), a.Attr)
		}
		switch a.Func {
		case Count:
			out := make([]int64, len(groups))
			for g := range groups {
				out[g] = states[k][g].count
			}
			schema = append(schema, Attr{Name: name, Type: bat.Int})
			cols = append(cols, bat.FromInts(out))
		default:
			out := make([]float64, len(groups))
			for g := range groups {
				st := states[k][g]
				switch a.Func {
				case Sum:
					out[g] = st.sum
				case Avg:
					out[g] = st.sum / float64(st.count)
				case Min:
					out[g] = st.min
				case Max:
					out[g] = st.max
				}
			}
			schema = append(schema, Attr{Name: name, Type: bat.Float})
			cols = append(cols, bat.FromFloats(out))
		}
	}
	return New(r.Name, schema, cols)
}
