package rel

import (
	"math"

	"repro/internal/bat"
	"repro/internal/exec"
)

// This file implements typed multi-column row keys for the hash-based
// relational operators (HashJoin, GroupBy, Distinct). Rows are identified
// by a 64-bit hash computed from typed cell values — no per-row string
// materialization — and candidate collisions are resolved by comparing the
// key columns directly. Cells are hashed in isolation (strings contribute
// their length through the byte-wise FNV walk, numerics contribute a fixed
// 8-byte word), so composite keys cannot collide through embedded
// separator bytes the way the former NUL-joined string keys could.

// keyCols binds typed views of a relation's key columns. Sparse float
// columns are densified once at construction so the per-row accessors are
// branch-free slice reads; those densified buffers come from the
// per-query arena and are the only views keyCols owns, so every operator
// that builds a keyCols hands them back with release once the hashes and
// collision comparisons are done.
type keyCols struct {
	n     int
	f     [][]float64 // non-nil for Float columns (and densified sparse tails)
	i     [][]int64   // non-nil for Int columns
	s     [][]string  // non-nil for String columns
	owned [][]float64 // densified sparse tails drawn from the arena
}

// release returns the densified sparse-key buffers to the context's
// arena. The keyCols (and any row accessor derived from it) must not be
// used afterwards. Dense column views are borrowed, not owned, and are
// untouched. Nil-safe.
func (kc *keyCols) release(c *exec.Ctx) {
	if kc == nil {
		return
	}
	for _, f := range kc.owned {
		c.Arena().FreeFloats(f)
	}
	kc.owned = nil
}

// newKeyCols resolves the named attributes of r into typed key views.
func newKeyCols(c *exec.Ctx, r *Relation, attrs []string) (*keyCols, error) {
	cols := make([]*bat.BAT, len(attrs))
	for k, a := range attrs {
		col, err := r.Col(a)
		if err != nil {
			return nil, err
		}
		cols[k] = col
	}
	return keyColsOf(c, r.NumRows(), cols), nil
}

// keyColsOf builds typed key views over already-resolved columns.
func keyColsOf(c *exec.Ctx, n int, cols []*bat.BAT) *keyCols {
	kc := &keyCols{
		n: n,
		f: make([][]float64, len(cols)),
		i: make([][]int64, len(cols)),
		s: make([][]string, len(cols)),
	}
	for k, col := range cols {
		if col.IsSparse() {
			kc.f[k] = col.Sparse().Densify(c)
			kc.owned = append(kc.owned, kc.f[k])
			continue
		}
		v := col.Vector()
		switch v.Type() {
		case bat.Float:
			kc.f[k] = v.Floats()
		case bat.Int:
			kc.i[k] = v.Ints()
		case bat.String:
			kc.s[k] = v.Strings()
		}
	}
	return kc
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// canonBits returns the canonical bit pattern of a float key value: both
// zeros map to +0 and every NaN maps to one quiet NaN, so hashing and
// equality agree with IEEE equality (extended with NaN = NaN, which keeps
// NaN keys joinable like any other value).
func canonBits(f float64) uint64 {
	if f == 0 {
		return 0
	}
	if f != f {
		return 0x7ff8_0000_0000_0001
	}
	return math.Float64bits(f)
}

// mix64 is the splitmix64 finalizer: it spreads the combined cell hashes
// over all 64 bits so the partition selector can use the low bits.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// hashRow computes the composite key hash of row i. Numeric cells hash
// through their canonical float bits so an Int key column hashes
// identically to a Float key column holding the same values (cross-type
// equi-joins land in the same bucket; exactness is restored by equal).
func (kc *keyCols) hashRow(i int) uint64 {
	h := uint64(fnvOffset64)
	for k := range kc.f {
		switch {
		case kc.f[k] != nil:
			w := canonBits(kc.f[k][i])
			for b := 0; b < 64; b += 8 {
				h = (h ^ (w >> b & 0xff)) * fnvPrime64
			}
		case kc.i[k] != nil:
			w := canonBits(float64(kc.i[k][i]))
			for b := 0; b < 64; b += 8 {
				h = (h ^ (w >> b & 0xff)) * fnvPrime64
			}
		default:
			s := kc.s[k][i]
			for b := 0; b < len(s); b++ {
				h = (h ^ uint64(s[b])) * fnvPrime64
			}
			// Terminate the cell with its length so cell boundaries
			// cannot be shifted between adjacent string keys.
			w := uint64(len(s))
			for b := 0; b < 64; b += 8 {
				h = (h ^ (w >> b & 0xff)) * fnvPrime64
			}
		}
	}
	return mix64(h)
}

// hashes computes the key hash of every row, decomposed over the
// context's workers.
func (kc *keyCols) hashes(c *exec.Ctx) []uint64 {
	h := make([]uint64, kc.n)
	c.ParallelFor(kc.n, bat.SerialCutoff, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			h[i] = kc.hashRow(i)
		}
	})
	return h
}

// equal reports whether row i of kc and row j of other hold the same
// composite key. Numeric columns compare through their canonical float
// bits (Int against Int compares exactly); string columns compare bytes;
// a string column never equals a numeric one.
func (kc *keyCols) equal(i int, other *keyCols, j int) bool {
	for k := range kc.f {
		switch {
		case kc.i[k] != nil && other.i[k] != nil:
			if kc.i[k][i] != other.i[k][j] {
				return false
			}
		case kc.s[k] != nil || other.s[k] != nil:
			if kc.s[k] == nil || other.s[k] == nil {
				return false
			}
			if kc.s[k][i] != other.s[k][j] {
				return false
			}
		default:
			a := numAt(kc, k, i)
			b := numAt(other, k, j)
			if canonBits(a) != canonBits(b) {
				return false
			}
		}
	}
	return true
}

// numAt reads the numeric cell (k, i) as a float64.
func numAt(kc *keyCols, k, i int) float64 {
	if kc.f[k] != nil {
		return kc.f[k][i]
	}
	return float64(kc.i[k][i])
}
