package rel

import (
	"fmt"

	"repro/internal/bat"
)

// JoinType selects the join semantics.
type JoinType uint8

const (
	// Inner keeps matching pairs only.
	Inner JoinType = iota
	// Left keeps all left rows; unmatched right attributes get zero values.
	Left
)

// joinTable is the hash-partitioned build-side index of HashJoin: rows of
// the build relation grouped by key hash, split over 2^k partitions
// selected by the low hash bits. Row lists are ascending, so probing
// reproduces the canonical (build-order) match order no matter how the
// table was built.
type joinTable struct {
	mask  uint64
	parts []map[uint64][]int
}

func (t *joinTable) lookup(h uint64) []int {
	return t.parts[h&t.mask][h]
}

// buildJoinTable indexes the build side from its row hashes. Small inputs
// (or a single-worker budget) build one partition serially; larger ones are
// radix-partitioned in two parallel passes — per-chunk histograms, then a
// scatter through chunk-major offsets — and the per-partition hash tables
// are built in parallel. Chunk-major offsets keep every partition's row
// list ascending regardless of the chunk decomposition, which is what makes
// the join output independent of the worker budget.
func buildJoinTable(h []uint64) *joinTable {
	m := len(h)
	if m <= bat.SerialCutoff || bat.Parallelism() <= 1 {
		part := make(map[uint64][]int, m/2+1)
		for j, hv := range h {
			part[hv] = append(part[hv], j)
		}
		return &joinTable{mask: 0, parts: []map[uint64][]int{part}}
	}
	p := 1
	for p < bat.Parallelism() && p < 64 {
		p <<= 1
	}
	mask := uint64(p - 1)
	chunks, size := bat.ParallelRuns(m)

	hist := make([]int, chunks*p)
	bat.ParallelFor(chunks, 1, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			row := hist[c*p : (c+1)*p]
			for j := c * size; j < min((c+1)*size, m); j++ {
				row[h[j]&mask]++
			}
		}
	})
	// Chunk-major prefix sums: partition pt holds chunk 0's rows, then
	// chunk 1's, …, each ascending — so the whole partition is ascending.
	partStart := make([]int, p+1)
	pos := make([]int, chunks*p)
	off := 0
	for pt := 0; pt < p; pt++ {
		partStart[pt] = off
		for c := 0; c < chunks; c++ {
			pos[c*p+pt] = off
			off += hist[c*p+pt]
		}
	}
	partStart[p] = off

	rows := make([]int, m)
	bat.ParallelFor(chunks, 1, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			cursor := pos[c*p : (c+1)*p]
			for j := c * size; j < min((c+1)*size, m); j++ {
				pt := h[j] & mask
				rows[cursor[pt]] = j
				cursor[pt]++
			}
		}
	})

	parts := make([]map[uint64][]int, p)
	bat.ParallelFor(p, 1, func(plo, phi int) {
		for pt := plo; pt < phi; pt++ {
			span := rows[partStart[pt]:partStart[pt+1]]
			mp := make(map[uint64][]int, len(span)/2+1)
			for _, j := range span {
				mp[h[j]] = append(mp[h[j]], j)
			}
			parts[pt] = mp
		}
	})
	return &joinTable{mask: mask, parts: parts}
}

// HashJoin computes r ⋈ s on equality of the paired key attributes. The
// result schema is r's schema followed by s's non-key attributes (key
// attributes of s would duplicate r's and are dropped, matching the
// natural-join convention the paper's examples use). For Left joins,
// unmatched rows carry zero values in the right-hand attributes.
//
// The join is hash-partitioned: typed 64-bit key hashes (no per-row string
// materialization) index the build side s, and the probe over r runs in two
// parallel passes — match counting, then a scatter through per-row output
// offsets. Output order is canonical at any worker budget: probe rows in r
// order, matches per probe row in s order.
func HashJoin(r, s *Relation, rKeys, sKeys []string, jt JoinType) (*Relation, error) {
	if len(rKeys) != len(sKeys) || len(rKeys) == 0 {
		return nil, fmt.Errorf("rel: join needs matching non-empty key lists")
	}
	rkc, err := newKeyCols(r, rKeys)
	if err != nil {
		return nil, err
	}
	skc, err := newKeyCols(s, sKeys)
	if err != nil {
		return nil, err
	}
	dropped := make(map[string]bool, len(sKeys))
	for _, a := range sKeys {
		dropped[a] = true
	}
	var sAttrs []string
	for _, a := range s.Schema {
		if !dropped[a.Name] {
			if r.Schema.Index(a.Name) >= 0 {
				return nil, fmt.Errorf("rel: join: attribute %q appears on both sides; rename first", a.Name)
			}
			sAttrs = append(sAttrs, a.Name)
		}
	}

	// Build on s, probe with r.
	table := buildJoinTable(skc.hashes())
	rh := rkc.hashes()
	n := r.NumRows()

	// Probe pass 1: matches per probe row.
	counts := bat.AllocInts(n)
	bat.ParallelFor(n, bat.SerialCutoff, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cnt := 0
			for _, j := range table.lookup(rh[i]) {
				if rkc.equal(i, skc, j) {
					cnt++
				}
			}
			counts[i] = cnt
		}
	})

	// Prefix sum into output offsets (fixed serial combine).
	total := 0
	anyUnmatched := false
	for i := 0; i < n; i++ {
		c := counts[i]
		if c == 0 && jt == Left {
			c = 1
			anyUnmatched = true
		}
		counts[i] = total
		total += c
	}

	// Probe pass 2: scatter the match pairs; rows write disjoint ranges.
	li := bat.AllocInts(total)
	ri := bat.AllocInts(total)
	bat.ParallelFor(n, bat.SerialCutoff, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			k := counts[i]
			wrote := false
			for _, j := range table.lookup(rh[i]) {
				if rkc.equal(i, skc, j) {
					li[k] = i
					ri[k] = j
					k++
					wrote = true
				}
			}
			if !wrote && jt == Left {
				li[k] = i
				ri[k] = -1
			}
		}
	})
	bat.FreeInts(counts)

	left := r.Gather(li)
	schema := left.Schema.Clone()
	cols := append([]*bat.BAT(nil), left.Cols...)
	for _, name := range sAttrs {
		j := s.Schema.Index(name)
		schema = append(schema, s.Schema[j])
		cols = append(cols, gatherWithNulls(s.Cols[j], ri, jt == Left && anyUnmatched))
	}
	bat.FreeInts(li)
	bat.FreeInts(ri)
	return New(r.Name, schema, cols)
}

// gatherWithNulls gathers c by idx; positions with idx < 0 (left-join
// non-matches) produce the zero value of the column type. The fill is
// decomposed over ParallelFor with one typed loop per tail domain.
func gatherWithNulls(c *bat.BAT, idx []int, anyUnmatched bool) *bat.BAT {
	if !anyUnmatched {
		return c.Gather(idx)
	}
	switch c.Type() {
	case bat.Float:
		f, _ := c.Floats()
		out := bat.Alloc(len(idx))
		bat.ParallelFor(len(idx), bat.SerialCutoff, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				if j := idx[k]; j >= 0 {
					out[k] = f[j]
				} else {
					out[k] = 0
				}
			}
		})
		return bat.FromFloats(out)
	case bat.Int:
		xs := c.Vector().Ints()
		out := make([]int64, len(idx))
		bat.ParallelFor(len(idx), bat.SerialCutoff, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				if j := idx[k]; j >= 0 {
					out[k] = xs[j]
				}
			}
		})
		return bat.FromInts(out)
	default:
		ss := c.Vector().Strings()
		out := make([]string, len(idx))
		bat.ParallelFor(len(idx), bat.SerialCutoff, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				if j := idx[k]; j >= 0 {
					out[k] = ss[j]
				}
			}
		})
		return bat.FromStrings(out)
	}
}
