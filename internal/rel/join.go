package rel

import (
	"fmt"
	"strings"

	"repro/internal/bat"
)

// JoinType selects the join semantics.
type JoinType uint8

const (
	// Inner keeps matching pairs only.
	Inner JoinType = iota
	// Left keeps all left rows; unmatched right attributes get zero values.
	Left
)

// hashKeys renders the join key of every row as a byte-string. Single
// numeric keys take a fast path without string formatting.
func hashKeys(r *Relation, attrs []string) ([]string, error) {
	cols := make([]*bat.BAT, len(attrs))
	for k, a := range attrs {
		c, err := r.Col(a)
		if err != nil {
			return nil, err
		}
		cols[k] = c
	}
	n := r.NumRows()
	keys := make([]string, n)
	if len(cols) == 1 && cols[0].Type() == bat.String && !cols[0].IsSparse() {
		copy(keys, cols[0].Vector().Strings())
		return keys, nil
	}
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.Reset()
		for _, c := range cols {
			sb.WriteString(c.Get(i).String())
			sb.WriteByte(0)
		}
		keys[i] = sb.String()
	}
	return keys, nil
}

// HashJoin computes r ⋈ s on equality of the paired key attributes. The
// result schema is r's schema followed by s's non-key attributes (key
// attributes of s would duplicate r's and are dropped, matching the
// natural-join convention the paper's examples use). For Left joins,
// unmatched rows carry zero values in the right-hand attributes.
func HashJoin(r, s *Relation, rKeys, sKeys []string, jt JoinType) (*Relation, error) {
	if len(rKeys) != len(sKeys) || len(rKeys) == 0 {
		return nil, fmt.Errorf("rel: join needs matching non-empty key lists")
	}
	rk, err := hashKeys(r, rKeys)
	if err != nil {
		return nil, err
	}
	sk, err := hashKeys(s, sKeys)
	if err != nil {
		return nil, err
	}
	// Build on s, probe with r.
	build := make(map[string][]int, len(sk))
	for j, key := range sk {
		build[key] = append(build[key], j)
	}
	li := make([]int, 0, len(rk))
	ri := make([]int, 0, len(rk))
	matched := make([]bool, 0, len(rk)) // parallel to li for Left joins
	for i, key := range rk {
		js := build[key]
		if len(js) == 0 {
			if jt == Left {
				li = append(li, i)
				ri = append(ri, -1)
				matched = append(matched, false)
			}
			continue
		}
		for _, j := range js {
			li = append(li, i)
			ri = append(ri, j)
			matched = append(matched, true)
		}
	}

	dropped := make(map[string]bool, len(sKeys))
	for _, a := range sKeys {
		dropped[a] = true
	}
	var sAttrs []string
	for _, a := range s.Schema {
		if !dropped[a.Name] {
			if r.Schema.Index(a.Name) >= 0 {
				return nil, fmt.Errorf("rel: join: attribute %q appears on both sides; rename first", a.Name)
			}
			sAttrs = append(sAttrs, a.Name)
		}
	}

	left := r.Gather(li)
	schema := left.Schema.Clone()
	cols := append([]*bat.BAT(nil), left.Cols...)
	for _, name := range sAttrs {
		j := s.Schema.Index(name)
		schema = append(schema, s.Schema[j])
		cols = append(cols, gatherWithNulls(s.Cols[j], ri, matched))
	}
	return New(r.Name, schema, cols)
}

// gatherWithNulls gathers c by idx; positions with idx < 0 (left-join
// non-matches) produce the zero value of the column type.
func gatherWithNulls(c *bat.BAT, idx []int, matched []bool) *bat.BAT {
	allMatched := true
	for _, m := range matched {
		if !m {
			allMatched = false
			break
		}
	}
	if allMatched {
		return c.Gather(idx)
	}
	out := bat.NewEmptyVector(c.Type(), len(idx))
	for _, j := range idx {
		if j < 0 {
			switch c.Type() {
			case bat.Float:
				out.Append(bat.FloatValue(0))
			case bat.Int:
				out.Append(bat.IntValue(0))
			case bat.String:
				out.Append(bat.StringValue(""))
			}
			continue
		}
		out.Append(c.Get(j))
	}
	return bat.FromVector(out)
}
