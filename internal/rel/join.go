package rel

import (
	"fmt"

	"repro/internal/bat"
	"repro/internal/exec"
)

// JoinType selects the join semantics.
type JoinType uint8

const (
	// Inner keeps matching pairs only.
	Inner JoinType = iota
	// Left keeps all left rows; unmatched right attributes get zero values.
	Left
)

// joinTable is the hash-partitioned build-side index of HashJoin: rows of
// the build relation grouped by key hash, split over 2^k partitions
// selected by the low hash bits. Row lists are ascending, so probing
// reproduces the canonical (build-order) match order no matter how the
// table was built.
type joinTable struct {
	mask  uint64
	parts []map[uint64][]int
}

func (t *joinTable) lookup(h uint64) []int {
	return t.parts[h&t.mask][h]
}

// buildJoinTable indexes the build side from its row hashes with the
// default sizing (half the rows distinct).
func buildJoinTable(c *exec.Ctx, h []uint64) *joinTable {
	return buildJoinTableSized(c, h, 0)
}

// buildJoinTableSized indexes the build side from its row hashes. Small
// inputs (or a single-worker budget) build one partition serially; larger
// ones are radix-partitioned in two parallel passes — per-chunk histograms,
// then a scatter through chunk-major offsets — and the per-partition hash
// tables are built in parallel. Chunk-major offsets keep every partition's
// row list ascending regardless of the chunk decomposition, which is what
// makes the join output independent of the worker budget.
//
// hint is the expected number of distinct keys: the hash maps are
// pre-sized to it instead of growing incrementally. The partitioning
// staging (histograms, offsets, the scattered row list) is charged to the
// invocation's arena and released before return.
func buildJoinTableSized(c *exec.Ctx, h []uint64, hint int) *joinTable {
	m := len(h)
	if hint <= 0 {
		hint = m/2 + 1
	}
	if m <= bat.SerialCutoff || c.Workers() <= 1 {
		part := make(map[uint64][]int, hint)
		for j, hv := range h {
			part[hv] = append(part[hv], j)
		}
		return &joinTable{mask: 0, parts: []map[uint64][]int{part}}
	}
	p := 1
	for p < c.Workers() && p < 64 {
		p <<= 1
	}
	mask := uint64(p - 1)
	chunks, size := c.ParallelRuns(m)

	hist := c.Arena().Ints(chunks * p)
	clear(hist)
	c.ParallelFor(chunks, 1, func(clo, chi int) {
		for ch := clo; ch < chi; ch++ {
			row := hist[ch*p : (ch+1)*p]
			for j := ch * size; j < min((ch+1)*size, m); j++ {
				row[h[j]&mask]++
			}
		}
	})
	// Chunk-major prefix sums: partition pt holds chunk 0's rows, then
	// chunk 1's, …, each ascending — so the whole partition is ascending.
	partStart := make([]int, p+1)
	pos := c.Arena().Ints(chunks * p)
	off := 0
	for pt := 0; pt < p; pt++ {
		partStart[pt] = off
		for ch := 0; ch < chunks; ch++ {
			pos[ch*p+pt] = off
			off += hist[ch*p+pt]
		}
	}
	partStart[p] = off

	rows := c.Arena().Ints(m)
	c.ParallelFor(chunks, 1, func(clo, chi int) {
		for ch := clo; ch < chi; ch++ {
			cursor := pos[ch*p : (ch+1)*p]
			for j := ch * size; j < min((ch+1)*size, m); j++ {
				pt := h[j] & mask
				rows[cursor[pt]] = j
				cursor[pt]++
			}
		}
	})

	parts := make([]map[uint64][]int, p)
	c.ParallelFor(p, 1, func(plo, phi int) {
		for pt := plo; pt < phi; pt++ {
			span := rows[partStart[pt]:partStart[pt+1]]
			szHint := len(span) / 2
			if est := hint / p; est < szHint {
				szHint = est
			}
			mp := make(map[uint64][]int, szHint+1)
			for _, j := range span {
				mp[h[j]] = append(mp[h[j]], j)
			}
			parts[pt] = mp
		}
	})
	c.Arena().FreeInts(hist)
	c.Arena().FreeInts(pos)
	c.Arena().FreeInts(rows)
	return &joinTable{mask: mask, parts: parts}
}

// joinPairs computes the matching (probe, build) row index pairs of an
// equi-join between two typed key views: build a hash table on skc, probe
// with rkc in two parallel passes — match counting, then a scatter through
// per-row output offsets. leftOuter emits (i, -1) for unmatched probe
// rows. Output order is canonical at any worker budget: probe rows in
// probe order, matches per probe row in build order. The returned index
// slices come from the context's arena; callers done with them hand them
// back with FreeInts.
func joinPairs(c *exec.Ctx, rkc, skc *keyCols, leftOuter bool) (li, ri []int, anyUnmatched bool) {
	table := buildJoinTable(c, skc.hashes(c))
	return probePairs(c, table, rkc, skc, leftOuter)
}

// probePairs is the probe phase of joinPairs over an already-built table:
// two parallel passes (match counting, then a scatter through per-row
// output offsets) whose output order is canonical at any worker budget —
// probe rows in probe order, matches per probe row in build order. The
// streaming join probes the same table once per morsel through this
// path, so morsel-probe pair sequences concatenate to exactly the
// all-at-once sequence.
func probePairs(c *exec.Ctx, table buildIndex, rkc, skc *keyCols, leftOuter bool) (li, ri []int, anyUnmatched bool) {
	rh := rkc.hashes(c)
	n := rkc.n

	// Probe pass 1: matches per probe row.
	counts := c.Arena().Ints(n)
	c.ParallelFor(n, bat.SerialCutoff, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cnt := 0
			for _, j := range table.lookup(rh[i]) {
				if rkc.equal(i, skc, j) {
					cnt++
				}
			}
			counts[i] = cnt
		}
	})

	// Prefix sum into output offsets (fixed serial combine).
	total := 0
	for i := 0; i < n; i++ {
		cnt := counts[i]
		if cnt == 0 && leftOuter {
			cnt = 1
			anyUnmatched = true
		}
		counts[i] = total
		total += cnt
	}

	// Probe pass 2: scatter the match pairs; rows write disjoint ranges.
	li = c.Arena().Ints(total)
	ri = c.Arena().Ints(total)
	c.ParallelFor(n, bat.SerialCutoff, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			k := counts[i]
			wrote := false
			for _, j := range table.lookup(rh[i]) {
				if rkc.equal(i, skc, j) {
					li[k] = i
					ri[k] = j
					k++
					wrote = true
				}
			}
			if !wrote && leftOuter {
				li[k] = i
				ri[k] = -1
			}
		}
	})
	c.Arena().FreeInts(counts)
	return li, ri, anyUnmatched
}

// EquiJoinPairs computes the matching (probe, build) row index pairs of an
// equi-join keyed by two already-materialized column lists of equal arity
// (probeKeys[k] pairs with buildKeys[k]). It is the entry point the SQL
// layer uses for expression-keyed joins: the key expressions are
// materialized into typed columns once, and the join runs over typed
// 64-bit hashes — no per-row string keys. leftOuter emits (i, -1) for
// unmatched probe rows. The returned slices come from the context's arena;
// callers done with them may hand them back with bat.FreeInts.
func EquiJoinPairs(c *exec.Ctx, probeKeys, buildKeys []*bat.BAT, leftOuter bool) (li, ri []int, err error) {
	defer exec.CatchBudget(&err)
	if len(probeKeys) != len(buildKeys) || len(probeKeys) == 0 {
		return nil, nil, fmt.Errorf("rel: equi-join needs matching non-empty key lists")
	}
	pn, bn := probeKeys[0].Len(), buildKeys[0].Len()
	rkc := keyColsOf(c, pn, probeKeys)
	skc := keyColsOf(c, bn, buildKeys)
	li, ri, _ = joinPairs(c, rkc, skc, leftOuter)
	rkc.release(c)
	skc.release(c)
	return li, ri, nil
}

// HashJoin computes r ⋈ s on equality of the paired key attributes. The
// result schema is r's schema followed by s's non-key attributes (key
// attributes of s would duplicate r's and are dropped, matching the
// natural-join convention the paper's examples use). For Left joins,
// unmatched rows carry zero values in the right-hand attributes.
//
// The join is hash-partitioned: typed 64-bit key hashes (no per-row string
// materialization) index the build side s, and the probe over r runs in two
// parallel passes — match counting, then a scatter through per-row output
// offsets. Output order is canonical at any worker budget: probe rows in r
// order, matches per probe row in s order.
func HashJoin(c *exec.Ctx, r, s *Relation, rKeys, sKeys []string, jt JoinType) (*Relation, error) {
	return HashJoinSized(c, r, s, rKeys, sKeys, jt, 0)
}

// HashJoinSized is HashJoin with a build-side cardinality hint: the
// expected number of distinct build keys, used to pre-size the build hash
// table instead of growing it incrementally. A hint ≤ 0 falls back to the
// default sizing (half the build rows); the hint never affects the result,
// only allocation behavior.
func HashJoinSized(c *exec.Ctx, r, s *Relation, rKeys, sKeys []string, jt JoinType, buildHint int) (res *Relation, err error) {
	defer exec.CatchBudget(&err)
	if len(rKeys) != len(sKeys) || len(rKeys) == 0 {
		return nil, fmt.Errorf("rel: join needs matching non-empty key lists")
	}
	rkc, err := newKeyCols(c, r, rKeys)
	if err != nil {
		return nil, err
	}
	defer rkc.release(c) // idempotent: a no-op after the early release below
	skc, err := newKeyCols(c, s, sKeys)
	if err != nil {
		return nil, err
	}
	defer skc.release(c)
	dropped := make(map[string]bool, len(sKeys))
	for _, a := range sKeys {
		dropped[a] = true
	}
	var sAttrs []string
	for _, a := range s.Schema {
		if !dropped[a.Name] {
			if r.Schema.Index(a.Name) >= 0 {
				return nil, fmt.Errorf("rel: join: attribute %q appears on both sides; rename first", a.Name)
			}
			sAttrs = append(sAttrs, a.Name)
		}
	}

	// Out-of-core path: stage the pair arrays to disk instead of
	// materializing them (and shrink the build table to one partition at
	// a time). Same result, bit for bit.
	if c.ShouldSpill(joinSpillEst(rkc.n, skc.n)) {
		return hashJoinSpilled(c, r, s, rkc, skc, sAttrs, jt)
	}

	// Build on s, probe with r.
	table := buildJoinTableSized(c, skc.hashes(c), buildHint)
	li, ri, anyUnmatched := probePairs(c, table, rkc, skc, jt == Left)
	// The key views are done once the pairs exist; hand any densified
	// sparse tails back to the per-query arena before the gathers below
	// allocate the result columns.
	rkc.release(c)
	skc.release(c)

	left := r.Gather(c, li)
	schema := left.Schema.Clone()
	cols := append([]*bat.BAT(nil), left.Cols...)
	for _, name := range sAttrs {
		j := s.Schema.Index(name)
		schema = append(schema, s.Schema[j])
		cols = append(cols, gatherWithNulls(c, s.Cols[j], ri, jt == Left && anyUnmatched))
	}
	c.Arena().FreeInts(li)
	c.Arena().FreeInts(ri)
	return New(r.Name, schema, cols)
}

// gatherWithNulls gathers col by idx; positions with idx < 0 (left-join
// non-matches) produce the zero value of the column type. The fill is
// decomposed over the context's workers with one typed loop per tail
// domain; all three domains draw their output from the context's arena.
func gatherWithNulls(c *exec.Ctx, col *bat.BAT, idx []int, anyUnmatched bool) *bat.BAT {
	if !anyUnmatched {
		return col.Gather(c, idx)
	}
	switch col.Type() {
	case bat.Float:
		f, _ := col.FloatsCtx(c)
		out := c.Arena().Floats(len(idx))
		c.ParallelFor(len(idx), bat.SerialCutoff, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				if j := idx[k]; j >= 0 {
					out[k] = f[j]
				} else {
					out[k] = 0
				}
			}
		})
		col.ReleaseFloats(c, f)
		return bat.FromFloats(out)
	case bat.Int:
		xs := col.VectorCtx(c).Ints()
		out := c.Arena().Int64s(len(idx))
		c.ParallelFor(len(idx), bat.SerialCutoff, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				if j := idx[k]; j >= 0 {
					out[k] = xs[j]
				} else {
					out[k] = 0
				}
			}
		})
		return bat.FromInts(out)
	default:
		ss := col.VectorCtx(c).Strings()
		out := c.Arena().Strings(len(idx))
		c.ParallelFor(len(idx), bat.SerialCutoff, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				if j := idx[k]; j >= 0 {
					out[k] = ss[j]
				} else {
					out[k] = ""
				}
			}
		})
		return bat.FromStrings(out)
	}
}
