package rel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bat"
)

// randRel builds a relation with an int key (with duplicates), a float
// value, and a low-cardinality string tag.
func randRel(rng *rand.Rand, name string, n int) *Relation {
	b := NewBuilder(name, Schema{
		{Name: name + "_k", Type: bat.Int},
		{Name: name + "_v", Type: bat.Float},
		{Name: name + "_t", Type: bat.String},
	})
	tags := []string{"a", "b", "c"}
	for i := 0; i < n; i++ {
		b.MustAdd(
			bat.IntValue(int64(rng.Intn(n/2+1))),
			bat.FloatValue(rng.NormFloat64()),
			bat.StringValue(tags[rng.Intn(len(tags))]),
		)
	}
	return b.Relation()
}

// TestQuickJoinCardinality: |r ⋈ s| equals the sum over keys of
// count_r(key)·count_s(key).
func TestQuickJoinCardinality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randRel(rng, "r", 1+rng.Intn(60))
		s := randRel(rng, "s", 1+rng.Intn(60))
		j, err := HashJoin(nil, r, s, []string{"r_k"}, []string{"s_k"}, Inner)
		if err != nil {
			return false
		}
		// Count occurrences per key on both sides.
		rc := map[int64]int{}
		sc := map[int64]int{}
		rk, _ := r.Col("r_k")
		sk, _ := s.Col("s_k")
		for _, v := range rk.Vector().Ints() {
			rc[v]++
		}
		for _, v := range sk.Vector().Ints() {
			sc[v]++
		}
		want := 0
		for k, n := range rc {
			want += n * sc[k]
		}
		return j.NumRows() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickGroupBySums: the per-group sums add up to the global sum, and
// the counts add up to the relation size.
func TestQuickGroupBySums(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randRel(rng, "r", 1+rng.Intn(80))
		g, err := GroupBy(nil, r, []string{"r_t"}, []AggSpec{
			{Func: Count, As: "n"},
			{Func: Sum, Attr: "r_v", As: "s"},
		})
		if err != nil {
			return false
		}
		var totalN int64
		var totalS float64
		for i := 0; i < g.NumRows(); i++ {
			totalN += g.Value(i, 1).I
			totalS += g.Value(i, 2).F
		}
		vc, _ := r.Col("r_v")
		var want float64
		for _, v := range vc.Vector().Floats() {
			want += v
		}
		return totalN == int64(r.NumRows()) && approxEq(totalS, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func approxEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := 1.0
	if b > 1 || b < -1 {
		if b < 0 {
			m = -b
		} else {
			m = b
		}
	}
	return d < 1e-9*m
}

// TestQuickSelectPartition: a predicate and its negation partition the
// relation.
func TestQuickSelectPartition(t *testing.T) {
	f := func(seed int64, cut float64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randRel(rng, "r", 1+rng.Intn(80))
		pred, err := r.FloatPred("r_v", func(v float64) bool { return v < cut })
		if err != nil {
			return false
		}
		neg, err := r.FloatPred("r_v", func(v float64) bool { return !(v < cut) })
		if err != nil {
			return false
		}
		return r.Select(nil, pred).NumRows()+r.Select(nil, neg).NumRows() == r.NumRows()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickDistinctIdempotent: distinct(distinct(r)) == distinct(r) and
// never grows.
func TestQuickDistinctIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randRel(rng, "r", 1+rng.Intn(60))
		d1 := r.Distinct(nil)
		d2 := d1.Distinct(nil)
		return d1.NumRows() <= r.NumRows() && d1.NumRows() == d2.NumRows()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickSortPermutation: sorting preserves the multiset of rows and
// orders the sort column.
func TestQuickSortPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randRel(rng, "r", 1+rng.Intn(60))
		s, err := r.Sort(nil, OrderSpec{Attr: "r_v"})
		if err != nil {
			return false
		}
		if s.NumRows() != r.NumRows() {
			return false
		}
		vc, _ := s.Col("r_v")
		vals := vc.Vector().Floats()
		for i := 1; i < len(vals); i++ {
			if vals[i-1] > vals[i] {
				return false
			}
		}
		var sumR, sumS float64
		rc, _ := r.Col("r_v")
		for _, v := range rc.Vector().Floats() {
			sumR += v
		}
		for _, v := range vals {
			sumS += v
		}
		return approxEq(sumR, sumS)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickUnionCardinality: |r ∪ s| = |r| + |s| under bag semantics.
func TestQuickUnionCardinality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randRel(rng, "r", 1+rng.Intn(40))
		s2 := randRel(rng, "r", 1+rng.Intn(40)) // same schema names
		u, err := Union(r, s2)
		if err != nil {
			return false
		}
		return u.NumRows() == r.NumRows()+s2.NumRows()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
