package rel

import (
	"strings"
	"testing"

	"repro/internal/bat"
	"repro/internal/exec"
)

var exchangeShardGrid = []int{1, 2, 7, 16}

// TestExchangeJoinBitwiseHashJoin: the radix-exchange join must be
// bitwise-identical to HashJoinSized — same rows, same canonical order
// — at worker budgets {1,2,8} and shard counts {1,2,7,16}, inner and
// left outer, on sizes spanning multiple SerialCutoff chunks.
func TestExchangeJoinBitwiseHashJoin(t *testing.T) {
	for _, n := range []int{7, bat.SerialCutoff + 1, 2*bat.SerialCutoff + 3} {
		r := boundaryRel("r", n, int64(n/3+2))
		s := boundaryRel("s", n/2+1, int64(n/3+2))
		for _, jt := range []JoinType{Inner, Left} {
			var want *Relation
			withWorkers(1, func() {
				j, err := HashJoinSized(nil, r, s, []string{"r_k"}, []string{"s_k"}, jt, 0)
				if err != nil {
					t.Fatal(err)
				}
				want = j
			})
			for _, w := range []int{1, 2, 8} {
				for _, shards := range exchangeShardGrid {
					withWorkers(w, func() {
						got, err := ExchangeJoin(nil, r, s, []string{"r_k"}, []string{"s_k"}, jt, shards, nil)
						if err != nil {
							t.Fatal(err)
						}
						if !equalRelations(got, want) {
							t.Fatalf("ExchangeJoin n=%d jt=%d workers=%d shards=%d differs from HashJoinSized", n, jt, w, shards)
						}
					})
				}
			}
		}
	}
}

// TestExchangeJoinShardStats: with a stats sink, the exchange join
// reports one stage per shard whose pair counts sum to the result size.
func TestExchangeJoinShardStats(t *testing.T) {
	n := bat.SerialCutoff + 17
	r := boundaryRel("r", n, 64)
	s := boundaryRel("s", n/2, 64)
	ps := exec.NewPipelineStats()
	got, err := ExchangeJoin(exec.New(4), r, s, []string{"r_k"}, []string{"s_k"}, Inner, 7, ps)
	if err != nil {
		t.Fatal(err)
	}
	snap := ps.Snapshot()
	shardStages, totalPairs := 0, 0
	for _, st := range snap {
		if strings.HasPrefix(st.Name, "exchange.join[shard ") {
			shardStages++
			totalPairs += int(st.Rows)
		}
	}
	if shardStages != 7 {
		t.Fatalf("%d shard stages, want 7 (snapshot: %+v)", shardStages, snap)
	}
	if totalPairs != got.NumRows() {
		t.Fatalf("shard stages report %d pairs, result has %d rows", totalPairs, got.NumRows())
	}
}

// TestExchangeGroupByBitwiseGroupBy: the radix-exchange aggregation
// must be bitwise-identical to GroupBySized — group order, counts,
// float sums — at worker budgets {1,2,8} and shard counts {1,2,7,16},
// including sizes that span multiple SerialCutoff chunks.
func TestExchangeGroupByBitwiseGroupBy(t *testing.T) {
	aggs := []AggSpec{
		{Func: Count, As: "n"},
		{Func: Sum, Attr: "r_v", As: "s"},
		{Func: Avg, Attr: "r_v", As: "a"},
		{Func: Min, Attr: "r_v", As: "lo"},
		{Func: Max, Attr: "r_v", As: "hi"},
	}
	for _, n := range []int{1, 7, bat.SerialCutoff + 1, 2*bat.SerialCutoff + 3} {
		r := boundaryRel("r", n, 64)
		var want *Relation
		withWorkers(1, func() {
			g, err := GroupBySized(nil, r, []string{"r_k", "r_t"}, aggs, 0)
			if err != nil {
				t.Fatal(err)
			}
			want = g
		})
		for _, w := range []int{1, 2, 8} {
			for _, shards := range exchangeShardGrid {
				withWorkers(w, func() {
					got, err := ExchangeGroupBy(nil, r, []string{"r_k", "r_t"}, aggs, shards, 0, nil)
					if err != nil {
						t.Fatal(err)
					}
					if !equalRelations(got, want) {
						t.Fatalf("ExchangeGroupBy n=%d workers=%d shards=%d differs from GroupBySized", n, w, shards)
					}
				})
			}
		}
	}
}

// TestExchangePartitionedBuildMatchesJoinBuild probes a sharded build
// and a single-table build with the same morsel stream and asserts the
// pair sequences are identical morsel for morsel.
func TestExchangePartitionedBuildMatchesJoinBuild(t *testing.T) {
	pn, bn := 2*bat.SerialCutoff+41, 3000
	probe := boundaryRel("p", pn, 500)
	build := boundaryRel("b", bn, 500)
	pk, _ := probe.Col("p_k")
	bk, _ := build.Col("b_k")
	for _, w := range []int{1, 2, 8} {
		c := exec.New(w)
		jb, err := NewJoinBuild(c, []*bat.BAT{bk}, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range exchangeShardGrid {
			pb, err := NewPartitionedBuild(c, []*bat.BAT{bk}, shards, 0)
			if err != nil {
				t.Fatal(err)
			}
			if pb.Rows() != bn || pb.Shards() != shards {
				t.Fatalf("build shape: rows=%d shards=%d", pb.Rows(), pb.Shards())
			}
			rowSum := 0
			for pt := 0; pt < shards; pt++ {
				rowSum += pb.ShardRows(pt)
			}
			if rowSum != bn {
				t.Fatalf("shard rows sum to %d, want %d", rowSum, bn)
			}
			for _, leftOuter := range []bool{false, true} {
				for lo := 0; lo < pn; lo += bat.MorselSize {
					hi := min(lo+bat.MorselSize, pn)
					morselKeys := []*bat.BAT{pk.Gather(c, identityRange(lo, hi))}
					li1, ri1, u1, err := jb.Probe(c, morselKeys, leftOuter)
					if err != nil {
						t.Fatal(err)
					}
					li2, ri2, u2, err := pb.Probe(c, morselKeys, leftOuter)
					if err != nil {
						t.Fatal(err)
					}
					if u1 != u2 || len(li1) != len(li2) {
						t.Fatalf("w=%d shards=%d morsel@%d: shape mismatch (%d/%v vs %d/%v)", w, shards, lo, len(li1), u1, len(li2), u2)
					}
					for k := range li1 {
						if li1[k] != li2[k] || ri1[k] != ri2[k] {
							t.Fatalf("w=%d shards=%d morsel@%d pair %d: (%d,%d) vs (%d,%d)", w, shards, lo, k, li1[k], ri1[k], li2[k], ri2[k])
						}
					}
					c.Arena().FreeInts(li1)
					c.Arena().FreeInts(ri1)
					c.Arena().FreeInts(li2)
					c.Arena().FreeInts(ri2)
				}
			}
			pb.Release(c)
		}
		jb.Release(c)
	}
}

func identityRange(lo, hi int) []int {
	idx := make([]int, hi-lo)
	for i := range idx {
		idx[i] = lo + i
	}
	return idx
}

// TestExchangeShardedAggMatchesStreamAgg feeds one morsel stream to a
// single StreamAgg and to ShardedAggs at every shard count, asserting
// bitwise-identical grouped relations. Morsel sizes are deliberately
// unaligned to the SerialCutoff chunk clock.
func TestExchangeShardedAggMatchesStreamAgg(t *testing.T) {
	aggs := []AggSpec{
		{Func: Count, As: "n"},
		{Func: Sum, Attr: "a", As: "sa"},
		{Func: Avg, Attr: "b", As: "ab"},
		{Func: Min, Attr: "a", As: "ma"},
		{Func: Max, Attr: "b", As: "xb"},
	}
	keys := []string{"k", "tag"}
	kt := []bat.Type{bat.Int, bat.String}
	for _, n := range []int{0, 1, bat.SerialCutoff + 1, 2*bat.SerialCutoff + 257} {
		for _, morsel := range []int{bat.MorselSize, 777} {
			r := aggRel(n, 97)
			kcol, _ := r.Col("k")
			tcol, _ := r.Col("tag")
			acol, _ := r.Col("a")
			bcol, _ := r.Col("b")
			ints := kcol.Vector().Ints()
			tags := tcol.Vector().Strings()
			af := acol.Vector().Floats()
			bf := bcol.Vector().Floats()

			feed := func(consume func([]*bat.Vector, [][]float64, int) error) {
				for lo := 0; lo < n; lo += morsel {
					hi := min(lo+morsel, n)
					kv := []*bat.Vector{bat.NewIntVector(ints[lo:hi]), bat.NewStringVector(tags[lo:hi])}
					aggIn := [][]float64{nil, af[lo:hi], bf[lo:hi], af[lo:hi], bf[lo:hi]}
					if err := consume(kv, aggIn, hi-lo); err != nil {
						t.Fatal(err)
					}
				}
			}

			single, err := NewStreamAgg("r", keys, kt, aggs, 0)
			if err != nil {
				t.Fatal(err)
			}
			feed(single.Consume)
			want, err := single.Finish()
			if err != nil {
				t.Fatal(err)
			}

			for _, shards := range exchangeShardGrid {
				sa, err := NewShardedAgg("r", keys, kt, aggs, shards, 0)
				if err != nil {
					t.Fatal(err)
				}
				feed(sa.Consume)
				if sa.NumGroups() != single.NumGroups() {
					t.Fatalf("n=%d shards=%d: %d groups vs %d", n, shards, sa.NumGroups(), single.NumGroups())
				}
				got, err := sa.Finish()
				if err != nil {
					t.Fatal(err)
				}
				if !equalRelations(got, want) {
					t.Fatalf("n=%d morsel=%d shards=%d: sharded aggregation differs from StreamAgg", n, morsel, shards)
				}
			}
		}
	}
}
