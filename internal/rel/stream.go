package rel

import (
	"fmt"
	"strings"

	"repro/internal/bat"
	"repro/internal/exec"
)

// This file holds the streaming (morsel-driven) counterparts of the
// pipeline breakers: a reusable join build side probed one morsel at a
// time, and a group-by accumulator fed one morsel at a time. Both
// preserve the determinism contract of their materializing originals —
// the streamed result is bitwise-identical to HashJoin/GroupBy over the
// concatenated input at any worker count — because probing is stateless
// per row and aggregation folds rows into the same SerialCutoff-aligned
// chunks regardless of how the morsels slice the input.

// JoinBuild is the hash-partitioned build side of a streaming equi-join:
// constructed once from the materialized build keys, then probed once
// per morsel. Probe emits pairs in probe order with matches in build
// order — the same canonical order as EquiJoinPairs — so concatenating
// the per-morsel pair lists reproduces the all-at-once join exactly.
type JoinBuild struct {
	skc   *keyCols
	table *joinTable
}

// NewJoinBuild indexes the build-side key columns. hint is the expected
// number of distinct build keys (≤ 0 for the default sizing).
func NewJoinBuild(c *exec.Ctx, buildKeys []*bat.BAT, hint int) (*JoinBuild, error) {
	if len(buildKeys) == 0 {
		return nil, fmt.Errorf("rel: join build needs a non-empty key list")
	}
	bn := buildKeys[0].Len()
	skc := keyColsOf(c, bn, buildKeys)
	return &JoinBuild{skc: skc, table: buildJoinTableSized(c, skc.hashes(c), hint)}, nil
}

// Rows returns the build-side row count.
func (b *JoinBuild) Rows() int { return b.skc.n }

// Probe joins one probe morsel against the build side. probeKeys are the
// morsel's key columns (same arity and pairing as the build keys).
// leftOuter emits (i, -1) for unmatched probe rows. The returned index
// slices come from the context's arena; callers hand them back with
// FreeInts when the morsel's output has been gathered.
func (b *JoinBuild) Probe(c *exec.Ctx, probeKeys []*bat.BAT, leftOuter bool) (li, ri []int, anyUnmatched bool, err error) {
	defer exec.CatchBudget(&err)
	if len(probeKeys) == 0 {
		return nil, nil, false, fmt.Errorf("rel: join probe needs a non-empty key list")
	}
	rkc := keyColsOf(c, probeKeys[0].Len(), probeKeys)
	li, ri, anyUnmatched = probePairs(c, b.table, rkc, b.skc, leftOuter)
	rkc.release(c)
	return li, ri, anyUnmatched, nil
}

// Release hands back the build side's densified key buffers. The
// JoinBuild must not be probed afterwards.
func (b *JoinBuild) Release(c *exec.Ctx) {
	if b == nil {
		return
	}
	b.skc.release(c)
	b.table = nil
}

// StreamAgg folds a stream of morsels into the same grouped result
// GroupBy computes over the materialized input. Bitwise identity holds
// because rows are folded into the same fixed chunks of bat.SerialCutoff
// global rows regardless of morsel boundaries: each chunk accumulates
// into fresh per-chunk states, and chunk partials are combined into the
// merged states in ascending chunk order — the exact association
// GroupBy uses. (Flushing every chunk, including the first, is safe:
// combining a chunk partial into a zero-initialized merged state
// reproduces the partial bitwise, since accumulated sums starting at +0
// can never be -0 and min/max copy through the ±Inf sentinels.)
//
// Group identity and order also match: groups are created in global
// first-seen order, keys compare with the same semantics as the
// materializing key columns (ints exactly, floats by canonical bits,
// strings by bytes), and the first-seen row's key values are stored as
// the group's representative — the value GroupBy gathers.
type StreamAgg struct {
	name string
	keys []string
	aggs []AggSpec
	kt   []bat.Type

	// Persistent per-group storage, in global first-seen order: one
	// typed column per key (kf/ki/ks selected by kt), the group's key
	// hash, and the merged aggregate states.
	kf     [][]float64
	ki     [][]int64
	ks     [][]string
	ghash  []uint64
	states [][]aggState
	byHash map[uint64][]int // hash -> group ids

	// Current chunk: per-group partial states, keyed by merged group id,
	// touched ids in chunk-local first-seen order.
	chunkStates  [][]aggState
	chunkTouched []int
	chunkSlot    map[int]int
	rowsInChunk  int

	// Out-of-core state (nil ctx disables spilling): once the resident
	// group table crosses the spill policy's threshold it freezes — rows
	// of resident groups keep folding in memory, rows of unseen keys are
	// staged to hash-partitioned disk files and replayed at Finish.
	c      *exec.Ctx
	seen   int64 // global rows consumed, spilled rows included
	frozen bool
	spill  *aggSpillState
}

// NewStreamAgg returns an accumulator for the given grouping keys (with
// their column types) and aggregates; an empty key list aggregates into
// a single global group. name names the result relation; hint is the
// expected group count (≤ 0 for default sizing).
func NewStreamAgg(name string, keys []string, keyTypes []bat.Type, aggs []AggSpec, hint int) (*StreamAgg, error) {
	return NewStreamAggCtx(nil, name, keys, keyTypes, aggs, hint)
}

// NewStreamAggCtx is NewStreamAgg bound to an execution context: when
// the context carries a spill manager, a group table crossing the spill
// threshold degrades to disk (see the StreamAgg doc) instead of growing
// without bound. A nil context keeps the purely in-memory behavior.
func NewStreamAggCtx(c *exec.Ctx, name string, keys []string, keyTypes []bat.Type, aggs []AggSpec, hint int) (*StreamAgg, error) {
	if len(aggs) == 0 {
		return nil, fmt.Errorf("rel: group by without aggregates")
	}
	if len(keys) != len(keyTypes) {
		return nil, fmt.Errorf("rel: %d grouping keys with %d types", len(keys), len(keyTypes))
	}
	if hint < 0 {
		hint = 0
	}
	a := &StreamAgg{
		name:      name,
		keys:      keys,
		aggs:      aggs,
		kt:        keyTypes,
		c:         c,
		kf:        make([][]float64, len(keys)),
		ki:        make([][]int64, len(keys)),
		ks:        make([][]string, len(keys)),
		byHash:    make(map[uint64][]int, hint),
		chunkSlot: make(map[int]int, hint),
	}
	return a, nil
}

// hashKeyRow computes the composite key hash of row i of the morsel's
// key vectors — the same canonical FNV-then-mix scheme as the
// materializing keyCols, so equal keys always share a hash.
func (a *StreamAgg) hashKeyRow(keys []*bat.Vector, i int) uint64 {
	h := uint64(fnvOffset64)
	for k, v := range keys {
		switch a.kt[k] {
		case bat.String:
			s := v.Strings()[i]
			for b := 0; b < len(s); b++ {
				h = (h ^ uint64(s[b])) * fnvPrime64
			}
			w := uint64(len(s))
			for b := 0; b < 64; b += 8 {
				h = (h ^ (w >> b & 0xff)) * fnvPrime64
			}
		default:
			var f float64
			if a.kt[k] == bat.Int {
				f = float64(v.Ints()[i])
			} else {
				f = v.Floats()[i]
			}
			w := canonBits(f)
			for b := 0; b < 64; b += 8 {
				h = (h ^ (w >> b & 0xff)) * fnvPrime64
			}
		}
	}
	return mix64(h)
}

// equalKeyRow reports whether row i of the morsel's key vectors matches
// stored group g, with the materializing equality semantics.
func (a *StreamAgg) equalKeyRow(keys []*bat.Vector, i, g int) bool {
	for k := range a.kt {
		switch a.kt[k] {
		case bat.Int:
			if keys[k].Ints()[i] != a.ki[k][g] {
				return false
			}
		case bat.String:
			if keys[k].Strings()[i] != a.ks[k][g] {
				return false
			}
		default:
			if canonBits(keys[k].Floats()[i]) != canonBits(a.kf[k][g]) {
				return false
			}
		}
	}
	return true
}

// groupOfHash returns the merged group id of row i (whose key hash is
// h), creating the group (and storing the row's key values as its
// representative) when absent. Once the table is frozen, rows of unseen
// keys return ok == false and must be spilled; resident groups keep
// folding in memory.
func (a *StreamAgg) groupOfHash(h uint64, keys []*bat.Vector, i int) (id int, ok bool) {
	for _, g := range a.byHash[h] {
		if a.equalKeyRow(keys, i, g) {
			return g, true
		}
	}
	if a.frozen {
		return 0, false
	}
	// The resident table is about to grow: freeze it when the spill
	// policy says its footprint is large enough to stage the tail of the
	// key space on disk instead.
	if !a.frozen && a.c.ShouldSpill(a.residentEst()) {
		a.frozen = true
		return 0, false
	}
	g := len(a.states)
	a.byHash[h] = append(a.byHash[h], g)
	a.ghash = append(a.ghash, h)
	a.states = append(a.states, newAggStates(len(a.aggs)))
	for k := range a.kt {
		switch a.kt[k] {
		case bat.Int:
			a.ki[k] = append(a.ki[k], keys[k].Ints()[i])
		case bat.String:
			a.ks[k] = append(a.ks[k], keys[k].Strings()[i])
		default:
			a.kf[k] = append(a.kf[k], keys[k].Floats()[i])
		}
	}
	return g, true
}

// residentEst is the rough in-memory footprint of the resident group
// table: states, key representatives, and hash-map overhead per group.
func (a *StreamAgg) residentEst() int64 {
	per := int64(64 + 32*len(a.aggs) + 24*len(a.keys))
	return int64(len(a.states)) * per
}

// chunkStateOf returns the current chunk's partial states for merged
// group g, creating them on the group's first row in this chunk.
func (a *StreamAgg) chunkStateOf(g int) []aggState {
	if slot, ok := a.chunkSlot[g]; ok {
		return a.chunkStates[slot]
	}
	st := newAggStates(len(a.aggs))
	a.chunkSlot[g] = len(a.chunkTouched)
	a.chunkTouched = append(a.chunkTouched, g)
	a.chunkStates = append(a.chunkStates, st)
	return st
}

// flushChunk combines the chunk partials into the merged states in
// chunk-local first-seen order and resets the chunk.
func (a *StreamAgg) flushChunk() {
	for slot, g := range a.chunkTouched {
		for k := range a.aggs {
			a.states[g][k].combine(&a.chunkStates[slot][k])
		}
	}
	a.chunkStates = a.chunkStates[:0]
	a.chunkTouched = a.chunkTouched[:0]
	clear(a.chunkSlot)
	a.rowsInChunk = 0
}

// Consume folds one morsel: keys holds the grouping key vectors (nil or
// empty for the global group), aggIn one float view per aggregate (nil
// for COUNT(*)), n the morsel's row count. Morsels must arrive in
// stream order; rows are folded serially — at MorselSize ≤ SerialCutoff
// the materializing path's chunks are serial too. The error is always
// nil unless the accumulator is spilling and disk I/O fails.
func (a *StreamAgg) Consume(keys []*bat.Vector, aggIn [][]float64, n int) error {
	for i := 0; i < n; i++ {
		if a.rowsInChunk == bat.SerialCutoff {
			a.flushChunk()
		}
		var h uint64
		if len(a.keys) > 0 {
			h = a.hashKeyRow(keys, i)
		}
		if err := a.consumeRow(keys, aggIn, i, h); err != nil {
			return err
		}
		a.rowsInChunk++
	}
	return nil
}

// consumeRow folds one row whose key hash is h (ignored for the global
// group). The caller owns the chunk clock: ShardedAgg flushes all of
// its shard accumulators on global SerialCutoff boundaries, while
// Consume above keeps the single-accumulator clock.
func (a *StreamAgg) consumeRow(keys []*bat.Vector, aggIn [][]float64, i int, h uint64) error {
	g := 0
	if len(a.keys) > 0 {
		gg, ok := a.groupOfHash(h, keys, i)
		if !ok {
			// Unseen key after the freeze: stage the row to disk. It
			// still occupies its global chunk position.
			if err := a.spillRow(keys, aggIn, i, h); err != nil {
				return err
			}
			a.seen++
			return nil
		}
		g = gg
	} else if len(a.states) == 0 {
		a.ghash = append(a.ghash, 0)
		a.states = append(a.states, newAggStates(len(a.aggs)))
	}
	st := a.chunkStateOf(g)
	for k := range a.aggs {
		var col []float64
		if aggIn[k] != nil {
			col = aggIn[k][i : i+1]
		}
		st[k].accumulate(col, 0)
	}
	a.seen++
	return nil
}

// NumGroups returns the number of groups seen so far.
func (a *StreamAgg) NumGroups() int { return len(a.states) }

// Finish flushes the last partial chunk and assembles the grouped
// relation: key columns first (the stored representatives, in global
// first-seen order), then one column per aggregate — Count as BIGINT,
// the rest as DOUBLE — exactly GroupBy's output shape.
func (a *StreamAgg) Finish() (*Relation, error) {
	a.flushChunk()
	if a.spill != nil {
		// Replay the staged partitions: every spilled key's rows fold on
		// their original chunk boundaries and the recovered groups are
		// appended in global first-seen order, so the result below is
		// bitwise what the unfrozen accumulator would have produced.
		if err := a.replaySpilled(); err != nil {
			return nil, err
		}
	}
	nGroups := len(a.states)
	schema := make(Schema, 0, len(a.keys)+len(a.aggs))
	cols := make([]*bat.BAT, 0, len(a.keys)+len(a.aggs))
	for k, name := range a.keys {
		schema = append(schema, Attr{Name: name, Type: a.kt[k]})
		switch a.kt[k] {
		case bat.Int:
			cols = append(cols, bat.FromInts(a.ki[k][:nGroups:nGroups]))
		case bat.String:
			cols = append(cols, bat.FromStrings(a.ks[k][:nGroups:nGroups]))
		default:
			cols = append(cols, bat.FromFloats(a.kf[k][:nGroups:nGroups]))
		}
	}
	for k, sp := range a.aggs {
		name := sp.As
		if name == "" {
			name = fmt.Sprintf("%s_%s", strings.ToLower(sp.Func.String()), sp.Attr)
		}
		switch sp.Func {
		case Count:
			out := make([]int64, nGroups)
			for g := range out {
				out[g] = a.states[g][k].count
			}
			schema = append(schema, Attr{Name: name, Type: bat.Int})
			cols = append(cols, bat.FromInts(out))
		default:
			out := make([]float64, nGroups)
			for g := range out {
				st := &a.states[g][k]
				switch sp.Func {
				case Sum:
					out[g] = st.sum
				case Avg:
					out[g] = st.sum / float64(st.count)
				case Min:
					out[g] = st.min
				case Max:
					out[g] = st.max
				}
			}
			schema = append(schema, Attr{Name: name, Type: bat.Float})
			cols = append(cols, bat.FromFloats(out))
		}
	}
	return New(a.name, schema, cols)
}
