package rel

import (
	"testing"

	"repro/internal/bat"
	"repro/internal/exec"
)

// sparseKeyRel builds a single-column relation whose column is
// zero-suppressed, so every keyCols built over it densifies from the
// per-query arena.
func sparseKeyRel(name, attr string, n, stride int, seed float64) *Relation {
	f := make([]float64, n)
	for i := 0; i < n; i += stride {
		f[i] = float64(i) + seed
	}
	return MustNew(name, Schema{{Name: attr, Type: bat.Float}},
		[]*bat.BAT{bat.FromSparse(bat.Compress(f))})
}

// tenantCtx returns a context drawing from a fresh accounted arena, so
// the test can observe the arena's free counters and live bytes.
func tenantCtx(name string) (*exec.Ctx, *exec.Tenant) {
	tn := exec.NewGovernor(0, 0).Tenant(name, 0)
	return exec.NewCtx(2, tn.NewArena(), nil), tn
}

// TestHashJoinReleasesSparseKeyBuffers is the regression test for the
// sparse-key arena leak: keyColsOf densifies sparse key columns from
// the per-query arena, and HashJoin used to drop those buffers on the
// floor. Both sides' densified views must be freed — and with a single
// sparse column on each side nothing else in the join retains arena
// floats, so the tenant must drain to zero live bytes.
func TestHashJoinReleasesSparseKeyBuffers(t *testing.T) {
	const n = 256
	r := sparseKeyRel("r", "k", n, 4, 1)
	s := sparseKeyRel("s", "k2", n, 4, 1)
	c, tn := tenantCtx("join-keys")

	if _, err := HashJoin(c, r, s, []string{"k"}, []string{"k2"}, Inner); err != nil {
		t.Fatal(err)
	}
	if got := tn.Stats().Floats.Frees; got < 2 {
		t.Fatalf("float frees after HashJoin = %d, want >= 2 (both densified key views)", got)
	}
	if got := tn.LiveBytes(); got != 0 {
		t.Fatalf("live bytes after HashJoin = %d, want 0 (no arena buffer may leak)", got)
	}

	// The freed buffers must actually be reusable: repeated joins serve
	// their densify allocations from the pool. sync.Pool drops a
	// fraction of Puts under the race detector, so the hit is asserted
	// with a bounded retry.
	for i := 0; i < 20 && tn.Stats().Floats.PoolHits == 0; i++ {
		if _, err := HashJoin(c, r, s, []string{"k"}, []string{"k2"}, Inner); err != nil {
			t.Fatal(err)
		}
	}
	if tn.Stats().Floats.PoolHits == 0 {
		t.Fatal("densified key buffers were never served from the pool")
	}
}

// TestGroupByReleasesSparseKeyBuffers checks the same contract on the
// aggregation path.
func TestGroupByReleasesSparseKeyBuffers(t *testing.T) {
	const n = 256
	f := make([]float64, n)
	for i := 0; i < n; i += 4 {
		f[i] = float64(i % 32)
	}
	r := MustNew("g", Schema{
		{Name: "k", Type: bat.Float},
		{Name: "v", Type: bat.Float},
	}, []*bat.BAT{
		bat.FromSparse(bat.Compress(f)),
		bat.FromFloats(seqF(n)),
	})
	c, tn := tenantCtx("group-keys")

	aggs := []AggSpec{{Func: Sum, Attr: "v", As: "s"}}
	if _, err := GroupBy(c, r, []string{"k"}, aggs); err != nil {
		t.Fatal(err)
	}
	if got := tn.Stats().Floats.Frees; got < 1 {
		t.Fatalf("float frees after GroupBy = %d, want >= 1 (the densified key view)", got)
	}
}

// TestGroupByReleasesSparseAggregateBuffers is the regression test for
// the aggregate-view leak: FloatsCtx densifies a sparse (or converts an
// int) aggregate column from the per-query arena, and GroupBy used to
// drop those buffers on the floor. With a sparse key AND a sparse
// aggregate column, nothing in the aggregation retains arena floats, so
// the tenant must drain to zero live bytes.
func TestGroupByReleasesSparseAggregateBuffers(t *testing.T) {
	const n = 256
	k := make([]float64, n)
	v := make([]float64, n)
	for i := 0; i < n; i += 4 {
		k[i] = float64(i % 32)
		v[i] = float64(i)
	}
	r := MustNew("ga", Schema{
		{Name: "k", Type: bat.Float},
		{Name: "v", Type: bat.Float},
	}, []*bat.BAT{
		bat.FromSparse(bat.Compress(k)),
		bat.FromSparse(bat.Compress(v)),
	})
	c, tn := tenantCtx("group-aggs")

	aggs := []AggSpec{{Func: Sum, Attr: "v", As: "s"}}
	if _, err := GroupBy(c, r, []string{"k"}, aggs); err != nil {
		t.Fatal(err)
	}
	if got := tn.Stats().Floats.Frees; got < 2 {
		t.Fatalf("float frees after GroupBy = %d, want >= 2 (densified key and aggregate views)", got)
	}
	if got := tn.LiveBytes(); got != 0 {
		t.Fatalf("live bytes after GroupBy = %d, want 0 (no arena buffer may leak)", got)
	}
}

// TestJoinReleasesSparseGatheredColumns covers gatherWithNulls: a left
// join with unmatched rows densifies every sparse non-key column of the
// right side; those views must go back to the arena (the gathered
// output columns themselves are the result and leave the governed scope
// with it).
func TestJoinReleasesSparseGatheredColumns(t *testing.T) {
	const n = 256
	k := seqF(n)
	v := make([]float64, n)
	for i := 0; i < n; i += 4 {
		v[i] = float64(i) + 1
	}
	r := MustNew("jl", Schema{{Name: "k", Type: bat.Float}},
		[]*bat.BAT{bat.FromFloats(k)})
	s := MustNew("jr", Schema{
		{Name: "k2", Type: bat.Float},
		{Name: "v", Type: bat.Float},
	}, []*bat.BAT{
		bat.FromFloats(seqF(n / 2)), // half the keys match; the rest pad with nulls
		bat.FromSparse(bat.Compress(v[:n/2])),
	})
	c, tn := tenantCtx("join-gather")

	res, err := HashJoin(c, r, s, []string{"k"}, []string{"k2"}, Left)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != n {
		t.Fatalf("left join rows = %d, want %d", res.NumRows(), n)
	}
	st := tn.Stats().Floats
	// One densify for the gathered sparse column; the output buffer it
	// scatters into stays live as the result. Everything else (the li/ri
	// int buffers) is int-domain.
	if st.Frees < 1 {
		t.Fatalf("float frees after left join = %d, want >= 1 (the densified gathered view)", st.Frees)
	}
}

func seqF(n int) []float64 {
	f := make([]float64, n)
	for i := range f {
		f[i] = float64(i)
	}
	return f
}

// TestDistinctReleasesSparseKeyBuffers checks the contract on the
// deduplication path, where every column is a key column.
func TestDistinctReleasesSparseKeyBuffers(t *testing.T) {
	const n = 256
	r := sparseKeyRel("d", "k", n, 4, 1)
	c, tn := tenantCtx("distinct-keys")

	r.Distinct(c)
	if got := tn.Stats().Floats.Frees; got < 1 {
		t.Fatalf("float frees after Distinct = %d, want >= 1 (the densified view)", got)
	}
	if got := tn.LiveBytes(); got != 0 {
		t.Fatalf("live bytes after Distinct = %d, want 0", got)
	}
}
