package rel

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/bat"
)

// String renders the relation as an aligned text table (all rows); use
// Head for a bounded render.
func (r *Relation) String() string { return r.render(r.NumRows()) }

// Head renders at most n rows.
func (r *Relation) Head(n int) string { return r.render(n) }

func formatCell(v bat.Value) string {
	if v.Type == bat.Float {
		f := v.F
		if f == float64(int64(f)) && f < 1e15 && f > -1e15 {
			return strconv.FormatInt(int64(f), 10)
		}
		return strconv.FormatFloat(f, 'f', 4, 64)
	}
	return v.String()
}

func (r *Relation) render(limit int) string {
	n := r.NumRows()
	shown := n
	if shown > limit {
		shown = limit
	}
	widths := make([]int, len(r.Schema))
	cells := make([][]string, shown)
	for k, a := range r.Schema {
		widths[k] = len(a.Name)
	}
	for i := 0; i < shown; i++ {
		cells[i] = make([]string, len(r.Cols))
		for k, c := range r.Cols {
			s := formatCell(c.Get(i))
			cells[i][k] = s
			if len(s) > widths[k] {
				widths[k] = len(s)
			}
		}
	}
	var sb strings.Builder
	for k, a := range r.Schema {
		if k > 0 {
			sb.WriteString("  ")
		}
		fmt.Fprintf(&sb, "%-*s", widths[k], a.Name)
	}
	sb.WriteByte('\n')
	for i := 0; i < shown; i++ {
		for k := range r.Cols {
			if k > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[k], cells[i][k])
		}
		sb.WriteByte('\n')
	}
	if shown < n {
		fmt.Fprintf(&sb, "... (%d rows total)\n", n)
	}
	return sb.String()
}
