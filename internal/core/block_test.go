package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bat"
	"repro/internal/rel"
)

// blockRel builds a relation with an int key K and nApp float
// application columns, rows added in shuffled key order so the sort
// permutation is exercised by the tiled materialization.
func blockRel(rows, nApp int, seed int64) *rel.Relation {
	rng := rand.New(rand.NewSource(seed))
	schema := rel.Schema{{Name: "K", Type: bat.Int}}
	for j := 0; j < nApp; j++ {
		schema = append(schema, rel.Attr{Name: "x" + string(rune('a'+j)), Type: bat.Float})
	}
	b := rel.NewBuilder("r", schema)
	perm := rng.Perm(rows)
	for _, k := range perm {
		vals := []bat.Value{bat.IntValue(int64(k))}
		for j := 0; j < nApp; j++ {
			v := (rng.Float64() - 0.5) * 10
			if rng.Intn(8) == 0 {
				v = 0
			}
			vals = append(vals, bat.FloatValue(v))
		}
		b.MustAdd(vals...)
	}
	return b.Relation()
}

// runBoth runs op with the blocked materialization forced on and
// forced off and asserts the two result relations are bitwise
// identical, returning the flat-path result.
func runBoth(t *testing.T, name string, op func() (*rel.Relation, error)) {
	t.Helper()
	saved := blockedMinElems
	defer func() { blockedMinElems = saved }()

	blockedMinElems = 1 << 40 // flat route
	flat, err := op()
	if err != nil {
		t.Fatalf("%s flat: %v", name, err)
	}
	blockedMinElems = 1 // tiled route
	blocked, err := op()
	if err != nil {
		t.Fatalf("%s blocked: %v", name, err)
	}
	if flat.NumRows() != blocked.NumRows() || len(flat.Schema) != len(blocked.Schema) {
		t.Fatalf("%s: shape %dx%d vs %dx%d", name,
			blocked.NumRows(), len(blocked.Schema), flat.NumRows(), len(flat.Schema))
	}
	for i := 0; i < flat.NumRows(); i++ {
		for j := range flat.Schema {
			fv, bv := flat.Value(i, j), blocked.Value(i, j)
			if fv.Type != bv.Type || fv.I != bv.I || fv.S != bv.S ||
				math.Float64bits(fv.F) != math.Float64bits(bv.F) {
				t.Fatalf("%s: cell (%d,%d) = %v blocked vs %v flat", name, i, j, bv, fv)
			}
		}
	}
}

// TestBlockedMaterializationBitwise: the tiled toBlockMatrix +
// blocked-kernel route through Mmu, Cpd (SYRK), and Qqr/Rqr must be
// bitwise-identical to the contiguous toMatrix + flat-kernel route.
func TestBlockedMaterializationBitwise(t *testing.T) {
	r := blockRel(97, 5, 1)
	s := blockRel(5, 3, 2) // inner dim: 5 app cols of r × 5 rows of s
	opts := &Options{Parallelism: 4}
	runBoth(t, "mmu", func() (*rel.Relation, error) {
		return Mmu(r, []string{"K"}, s, []string{"K"}, opts)
	})
	runBoth(t, "cpd-syrk", func() (*rel.Relation, error) {
		return Cpd(r, []string{"K"}, r, []string{"K"}, opts)
	})
	runBoth(t, "qqr", func() (*rel.Relation, error) {
		return Qqr(r, []string{"K"}, opts)
	})
	runBoth(t, "rqr", func() (*rel.Relation, error) {
		return Rqr(r, []string{"K"}, opts)
	})
}
