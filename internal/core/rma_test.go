package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/bat"
	"repro/internal/rel"
)

// weather is relation r of the paper's Figure 2: T (order), H, W.
func weather() *rel.Relation {
	b := rel.NewBuilder("r", rel.Schema{
		{Name: "T", Type: bat.String},
		{Name: "H", Type: bat.Float},
		{Name: "W", Type: bat.Float},
	})
	b.MustAdd(bat.StringValue("5am"), bat.FloatValue(1), bat.FloatValue(3))
	b.MustAdd(bat.StringValue("8am"), bat.FloatValue(8), bat.FloatValue(5))
	b.MustAdd(bat.StringValue("7am"), bat.FloatValue(6), bat.FloatValue(7))
	b.MustAdd(bat.StringValue("6am"), bat.FloatValue(1), bat.FloatValue(4))
	return b.Relation()
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestInvPaperFigure3 reproduces v = inv_T(σ_{T>6am}(r)) end to end.
func TestInvPaperFigure3(t *testing.T) {
	r := weather()
	pred, err := r.StringPred("T", func(s string) bool { return s > "6am" })
	if err != nil {
		t.Fatal(err)
	}
	sel := r.Select(nil, pred)
	if sel.NumRows() != 2 {
		t.Fatalf("selection rows = %d", sel.NumRows())
	}
	v, err := Inv(sel, []string{"T"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(v.Schema.Names(), ","); got != "T,H,W" {
		t.Fatalf("result schema = %s", got)
	}
	// Sorted by T: 7am then 8am; values from the paper (2 decimals).
	if v.Value(0, 0).S != "7am" || v.Value(1, 0).S != "8am" {
		t.Fatalf("order part = %v, %v", v.Value(0, 0), v.Value(1, 0))
	}
	want := [][]float64{{-5.0 / 26, 7.0 / 26}, {8.0 / 26, -6.0 / 26}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !approx(v.Value(i, j+1).F, want[i][j], 1e-12) {
				t.Errorf("v[%d][%d] = %v, want %v", i, j, v.Value(i, j+1).F, want[i][j])
			}
		}
	}
}

// TestTraPaperFigure4b reproduces tra_T(r): schema (C,5am,6am,7am,8am).
func TestTraPaperFigure4b(t *testing.T) {
	v, err := Tra(weather(), []string{"T"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(v.Schema.Names(), ","); got != "C,5am,6am,7am,8am" {
		t.Fatalf("tra schema = %s", got)
	}
	if v.NumRows() != 2 {
		t.Fatalf("tra rows = %d", v.NumRows())
	}
	// Row H: 1 1 6 8; row W: 3 4 7 5 (values sorted by T).
	if v.Value(0, 0).S != "H" || v.Value(1, 0).S != "W" {
		t.Fatalf("C column = %v, %v", v.Value(0, 0), v.Value(1, 0))
	}
	wantH := []float64{1, 1, 6, 8}
	wantW := []float64{3, 4, 7, 5}
	for j := 0; j < 4; j++ {
		if v.Value(0, j+1).F != wantH[j] || v.Value(1, j+1).F != wantW[j] {
			t.Errorf("tra values col %d = %v/%v, want %v/%v",
				j, v.Value(0, j+1).F, v.Value(1, j+1).F, wantH[j], wantW[j])
		}
	}
}

// TestTraTwicePaperFigure10 checks tra_C(tra_T(r)) recovers r sorted by T.
func TestTraTwicePaperFigure10(t *testing.T) {
	r := weather()
	r1, err := Tra(r, []string{"T"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Tra(r1, []string{"C"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(r2.Schema.Names(), ","); got != "C,H,W" {
		t.Fatalf("double tra schema = %s", got)
	}
	wantT := []string{"5am", "6am", "7am", "8am"}
	wantH := []float64{1, 1, 6, 8}
	wantW := []float64{3, 4, 7, 5}
	for i := 0; i < 4; i++ {
		if r2.Value(i, 0).S != wantT[i] || r2.Value(i, 1).F != wantH[i] || r2.Value(i, 2).F != wantW[i] {
			t.Errorf("row %d = %v %v %v", i, r2.Value(i, 0), r2.Value(i, 1), r2.Value(i, 2))
		}
	}
}

// TestRnkPaperFigure9 mirrors p1 = rnk_H(π_{H,W}(r)) from Figure 9: a
// shape-(1,1) operation over a single application column returns one row
// (C='r', rnk=1). The paper's instance uses H as the order attribute even
// though H has duplicate values (1 at 5am and 6am); since RMA requires the
// order schema to form a key — which our engine enforces — the test orders
// by W, whose values are unique, keeping H as the single application
// column with rank 1.
func TestRnkPaperFigure9(t *testing.T) {
	r := weather()
	p, err := r.Project("W", "H")
	if err != nil {
		t.Fatal(err)
	}
	v, err := Rnk(p, []string{"W"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(v.Schema.Names(), ","); got != "C,rnk" {
		t.Fatalf("rnk schema = %s", got)
	}
	if v.NumRows() != 1 {
		t.Fatalf("rnk rows = %d", v.NumRows())
	}
	if v.Value(0, 0).S != "r" {
		t.Errorf("row origin = %v, want r", v.Value(0, 0))
	}
	if v.Value(0, 1).F != 1 {
		t.Errorf("rnk = %v, want 1 (single column)", v.Value(0, 1))
	}
}

// TestUsvPaperFigure9 checks the shape and origins of usv_T(r).
func TestUsvPaperFigure9(t *testing.T) {
	v, err := Usv(weather(), []string{"T"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(v.Schema.Names(), ","); got != "T,5am,6am,7am,8am" {
		t.Fatalf("usv schema = %s", got)
	}
	if v.NumRows() != 4 {
		t.Fatalf("usv rows = %d", v.NumRows())
	}
	// Row origins: T sorted ascending.
	want := []string{"5am", "6am", "7am", "8am"}
	for i, w := range want {
		if v.Value(i, 0).S != w {
			t.Errorf("row %d origin = %v, want %s", i, v.Value(i, 0), w)
		}
	}
	// U must be orthogonal: UᵀU = I. Check via column dot products.
	for a := 1; a <= 4; a++ {
		for b := a; b <= 4; b++ {
			var dot float64
			for i := 0; i < 4; i++ {
				dot += v.Value(i, a).F * v.Value(i, b).F
			}
			want := 0.0
			if a == b {
				want = 1.0
			}
			if !approx(dot, want, 1e-8) {
				t.Errorf("U col %d·%d = %v, want %v", a, b, dot, want)
			}
		}
	}
}

// TestQqrOrderSchema2 mirrors Figure 9's p3 = qqr_{W,T}(r): two order
// attributes, one application attribute.
func TestQqrOrderSchema2(t *testing.T) {
	v, err := Qqr(weather(), []string{"W", "T"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(v.Schema.Names(), ","); got != "W,T,H" {
		t.Fatalf("qqr schema = %s", got)
	}
	// Rows ordered by (W,T): 3,4,5,7 → 5am,6am,8am,7am.
	wantW := []float64{3, 4, 5, 7}
	wantT := []string{"5am", "6am", "8am", "7am"}
	for i := range wantW {
		if v.Value(i, 0).F != wantW[i] || v.Value(i, 1).S != wantT[i] {
			t.Errorf("row %d = (%v,%v), want (%v,%s)", i, v.Value(i, 0), v.Value(i, 1), wantW[i], wantT[i])
		}
	}
	// Q column is the normalized H column: unit norm.
	var norm float64
	for i := 0; i < 4; i++ {
		norm += v.Value(i, 2).F * v.Value(i, 2).F
	}
	if !approx(norm, 1, 1e-10) {
		t.Errorf("Q column norm² = %v", norm)
	}
}

func TestAddBinary(t *testing.T) {
	b1 := rel.NewBuilder("y1", rel.Schema{
		{Name: "Rider", Type: bat.String},
		{Name: "A", Type: bat.Float},
		{Name: "B", Type: bat.Float},
	})
	b1.MustAdd(bat.StringValue("ann"), bat.FloatValue(1), bat.FloatValue(2))
	b1.MustAdd(bat.StringValue("bob"), bat.FloatValue(3), bat.FloatValue(4))
	r := b1.Relation()
	b2 := rel.NewBuilder("y2", rel.Schema{
		{Name: "Rider2", Type: bat.String},
		{Name: "A", Type: bat.Float},
		{Name: "B", Type: bat.Float},
	})
	// Reversed row order: add must align by the order schemas.
	b2.MustAdd(bat.StringValue("bob"), bat.FloatValue(30), bat.FloatValue(40))
	b2.MustAdd(bat.StringValue("ann"), bat.FloatValue(10), bat.FloatValue(20))
	s := b2.Relation()

	v, err := Add(r, []string{"Rider"}, s, []string{"Rider2"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(v.Schema.Names(), ","); got != "Rider,Rider2,A,B" {
		t.Fatalf("add schema = %s", got)
	}
	// Sorted by Rider: ann, bob — aligned by rank.
	if v.Value(0, 0).S != "ann" || v.Value(0, 1).S != "ann" {
		t.Fatalf("row 0 origins = %v, %v", v.Value(0, 0), v.Value(0, 1))
	}
	if v.Value(0, 2).F != 11 || v.Value(0, 3).F != 22 || v.Value(1, 2).F != 33 || v.Value(1, 3).F != 44 {
		t.Errorf("add values = %v %v %v %v", v.Value(0, 2), v.Value(0, 3), v.Value(1, 2), v.Value(1, 3))
	}
}

func TestAddOptimizedRelativeSortMatchesFull(t *testing.T) {
	b1 := rel.NewBuilder("r", rel.Schema{{Name: "K", Type: bat.Int}, {Name: "X", Type: bat.Float}})
	b2 := rel.NewBuilder("s", rel.Schema{{Name: "L", Type: bat.Int}, {Name: "X", Type: bat.Float}})
	for i := 0; i < 50; i++ {
		b1.MustAdd(bat.IntValue(int64((i*37)%100)), bat.FloatValue(float64(i)))
		b2.MustAdd(bat.IntValue(int64((i*53)%100)), bat.FloatValue(float64(100-i)))
	}
	r, s := b1.Relation(), b2.Relation()
	full, err := Add(r, []string{"K"}, s, []string{"L"}, &Options{SortMode: SortFull})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Add(r, []string{"K"}, s, []string{"L"}, &Options{SortMode: SortOptimized})
	if err != nil {
		t.Fatal(err)
	}
	// Same set of tuples (row order may differ): sort both by K.
	fs, _ := full.Sort(nil, rel.OrderSpec{Attr: "K"})
	os_, _ := opt.Sort(nil, rel.OrderSpec{Attr: "K"})
	if fs.NumRows() != os_.NumRows() {
		t.Fatalf("row counts differ: %d vs %d", fs.NumRows(), os_.NumRows())
	}
	for i := 0; i < fs.NumRows(); i++ {
		for k := 0; k < fs.NumCols(); k++ {
			if !fs.Value(i, k).Equal(os_.Value(i, k)) {
				t.Fatalf("tuple %d attr %d: %v vs %v", i, k, fs.Value(i, k), os_.Value(i, k))
			}
		}
	}
}

func TestMmuAndCpd(t *testing.T) {
	// w4 (2x... ) from the paper's Figure 7 would need the full pipeline;
	// use a small closed-form example instead: A·A⁻¹ = I via mmu.
	b := rel.NewBuilder("m", rel.Schema{
		{Name: "K", Type: bat.String},
		{Name: "x", Type: bat.Float},
		{Name: "y", Type: bat.Float},
	})
	b.MustAdd(bat.StringValue("a"), bat.FloatValue(6), bat.FloatValue(7))
	b.MustAdd(bat.StringValue("b"), bat.FloatValue(8), bat.FloatValue(5))
	r := b.Relation()
	inv, err := Inv(r, []string{"K"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := Mmu(r, []string{"K"}, inv, []string{"K"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(prod.Schema.Names(), ","); got != "K,x,y" {
		t.Fatalf("mmu schema = %s", got)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := 0.0
			if i == j {
				want = 1.0
			}
			if !approx(prod.Value(i, j+1).F, want, 1e-10) {
				t.Errorf("prod[%d][%d] = %v", i, j, prod.Value(i, j+1).F)
			}
		}
	}
	// cpd: AᵀA — 2x2, row origin C carries the app schema names.
	cpd, err := Cpd(r, []string{"K"}, r.WithName("s"), []string{"K"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(cpd.Schema.Names(), ","); got != "C,x,y" {
		t.Fatalf("cpd schema = %s", got)
	}
	if cpd.Value(0, 0).S != "x" || cpd.Value(1, 0).S != "y" {
		t.Errorf("cpd C column = %v, %v", cpd.Value(0, 0), cpd.Value(1, 0))
	}
	if !approx(cpd.Value(0, 1).F, 6*6+8*8, 1e-10) {
		t.Errorf("cpd[0][x] = %v", cpd.Value(0, 1).F)
	}
}

func TestOpdShape(t *testing.T) {
	b1 := rel.NewBuilder("r", rel.Schema{{Name: "I", Type: bat.Int}, {Name: "v", Type: bat.Float}})
	b1.MustAdd(bat.IntValue(1), bat.FloatValue(2))
	b1.MustAdd(bat.IntValue(2), bat.FloatValue(3))
	b1.MustAdd(bat.IntValue(3), bat.FloatValue(4))
	r := b1.Relation()
	b2 := rel.NewBuilder("s", rel.Schema{{Name: "J", Type: bat.Int}, {Name: "w", Type: bat.Float}})
	b2.MustAdd(bat.IntValue(10), bat.FloatValue(5))
	b2.MustAdd(bat.IntValue(20), bat.FloatValue(6))
	s := b2.Relation()
	v, err := Opd(r, []string{"I"}, s, []string{"J"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Shape (r1,r2): 3 rows, columns named by ▽J = 10, 20.
	if got := strings.Join(v.Schema.Names(), ","); got != "I,10,20" {
		t.Fatalf("opd schema = %s", got)
	}
	if v.NumRows() != 3 {
		t.Fatalf("opd rows = %d", v.NumRows())
	}
	// v[i][j] = r.v[i] * s.w[j].
	if v.Value(1, 1).F != 3*5 || v.Value(2, 2).F != 4*6 {
		t.Errorf("opd values wrong: %v %v", v.Value(1, 1), v.Value(2, 2))
	}
}

func TestSolLeastSquares(t *testing.T) {
	// y = 1 + 2x fitted through 4 exact points.
	b1 := rel.NewBuilder("a", rel.Schema{
		{Name: "I", Type: bat.Int},
		{Name: "one", Type: bat.Float},
		{Name: "x", Type: bat.Float},
	})
	b2 := rel.NewBuilder("b", rel.Schema{{Name: "J", Type: bat.Int}, {Name: "y", Type: bat.Float}})
	for i := 0; i < 4; i++ {
		x := float64(i)
		b1.MustAdd(bat.IntValue(int64(i)), bat.FloatValue(1), bat.FloatValue(x))
		b2.MustAdd(bat.IntValue(int64(i)), bat.FloatValue(1+2*x))
	}
	v, err := Sol(b1.Relation(), []string{"I"}, b2.Relation(), []string{"J"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(v.Schema.Names(), ","); got != "C,y" {
		t.Fatalf("sol schema = %s", got)
	}
	// Row origins: the app schema names of a (one, x).
	if v.Value(0, 0).S != "one" || v.Value(1, 0).S != "x" {
		t.Fatalf("sol origins = %v, %v", v.Value(0, 0), v.Value(1, 0))
	}
	if !approx(v.Value(0, 1).F, 1, 1e-9) || !approx(v.Value(1, 1).F, 2, 1e-9) {
		t.Errorf("sol coefficients = %v, %v", v.Value(0, 1), v.Value(1, 1))
	}
}

func TestEvlEvcChfDetOnSPD(t *testing.T) {
	// SPD matrix [[4,1],[1,3]] keyed by K.
	b := rel.NewBuilder("m", rel.Schema{
		{Name: "K", Type: bat.String},
		{Name: "a", Type: bat.Float},
		{Name: "b", Type: bat.Float},
	})
	b.MustAdd(bat.StringValue("a"), bat.FloatValue(4), bat.FloatValue(1))
	b.MustAdd(bat.StringValue("b"), bat.FloatValue(1), bat.FloatValue(3))
	r := b.Relation()

	evl, err := Evl(r, []string{"K"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(evl.Schema.Names(), ","); got != "K,evl" {
		t.Fatalf("evl schema = %s", got)
	}
	// Eigenvalues of [[4,1],[1,3]]: (7±√5)/2.
	l1 := (7 + math.Sqrt(5)) / 2
	l2 := (7 - math.Sqrt(5)) / 2
	if !approx(evl.Value(0, 1).F, l1, 1e-9) || !approx(evl.Value(1, 1).F, l2, 1e-9) {
		t.Errorf("evl = %v, %v; want %v, %v", evl.Value(0, 1).F, evl.Value(1, 1).F, l1, l2)
	}

	evc, err := Evc(r, []string{"K"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(evc.Schema.Names(), ","); got != "K,a,b" {
		t.Fatalf("evc schema = %s", got)
	}

	chf, err := Chf(r, []string{"K"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// RᵀR = A: check the 2x2 by hand. R = [[2, .5],[0, sqrt(2.75)]].
	if !approx(chf.Value(0, 1).F, 2, 1e-12) || !approx(chf.Value(0, 2).F, 0.5, 1e-12) {
		t.Errorf("chf row 0 = %v, %v", chf.Value(0, 1), chf.Value(0, 2))
	}

	det, err := Det(r, []string{"K"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(det.Schema.Names(), ","); got != "C,det" {
		t.Fatalf("det schema = %s", got)
	}
	if det.Value(0, 0).S != "m" { // relation name
		t.Errorf("det origin = %v", det.Value(0, 0))
	}
	if !approx(det.Value(0, 1).F, 11, 1e-12) {
		t.Errorf("det = %v, want 11", det.Value(0, 1))
	}
}

func TestDsvVsvShapes(t *testing.T) {
	r := weather()
	dsv, err := Dsv(r, []string{"T"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(dsv.Schema.Names(), ","); got != "C,H,W" {
		t.Fatalf("dsv schema = %s", got)
	}
	if dsv.NumRows() != 2 {
		t.Fatalf("dsv rows = %d", dsv.NumRows())
	}
	// Diagonal with descending singular values; off-diagonal zero.
	if dsv.Value(0, 2).F != 0 || dsv.Value(1, 1).F != 0 {
		t.Error("dsv off-diagonal not zero")
	}
	if dsv.Value(0, 1).F < dsv.Value(1, 2).F {
		t.Error("dsv singular values not descending")
	}

	vsv, err := Vsv(r, []string{"T"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(vsv.Schema.Names(), ","); got != "C,H,W" {
		t.Fatalf("vsv schema = %s", got)
	}
	// V orthogonal 2x2.
	var dot float64
	for i := 0; i < 2; i++ {
		dot += vsv.Value(i, 1).F * vsv.Value(i, 2).F
	}
	if !approx(dot, 0, 1e-10) {
		t.Errorf("vsv columns not orthogonal: %v", dot)
	}
}

func TestErrorCases(t *testing.T) {
	r := weather()
	// Unknown order attribute.
	if _, err := Inv(r, []string{"Nope"}, nil); err == nil {
		t.Error("missing order attribute accepted")
	}
	// Duplicate order attribute.
	if _, err := Inv(r, []string{"T", "T"}, nil); err == nil {
		t.Error("duplicate order attribute accepted")
	}
	// Non-numeric application attribute (T not in order schema).
	if _, err := Inv(r, []string{"H", "W"}, nil); err == nil {
		t.Error("string application attribute accepted")
	}
	// Empty application schema.
	if _, err := Inv(r, []string{"T", "H", "W"}, nil); err == nil {
		t.Error("empty application schema accepted")
	}
	// Non-square inv (4 rows × 2 app cols).
	if _, err := Inv(r, []string{"T"}, nil); err == nil {
		t.Error("non-square inv accepted")
	}
	// Order schema not a key.
	b := rel.NewBuilder("dup", rel.Schema{{Name: "K", Type: bat.Int}, {Name: "x", Type: bat.Float}})
	b.MustAdd(bat.IntValue(1), bat.FloatValue(1))
	b.MustAdd(bat.IntValue(1), bat.FloatValue(2))
	if _, err := Qqr(b.Relation(), []string{"K"}, nil); err == nil {
		t.Error("non-key order schema accepted")
	}
	// Column cast with 2 order attributes (usv requires |U| = 1).
	if _, err := Usv(r, []string{"T", "H"}, nil); err == nil {
		t.Error("usv with cardinality-2 order schema accepted")
	}
	// Unary called with binary op and vice versa.
	if _, err := Unary(OpADD, r, []string{"T"}, nil); err == nil {
		t.Error("Unary(add) accepted")
	}
	if _, err := Binary(OpINV, r, []string{"T"}, r, []string{"T"}, nil); err == nil {
		t.Error("Binary(inv) accepted")
	}
	// Binary shape violations.
	small := rel.MustNew("s", rel.Schema{{Name: "J", Type: bat.Int}, {Name: "v", Type: bat.Float}},
		[]*bat.BAT{bat.FromInts([]int64{1}), bat.FromFloats([]float64{1})})
	if _, err := Add(r, []string{"T"}, small, []string{"J"}, nil); err == nil {
		t.Error("add with unequal rows accepted")
	}
	if _, err := Cpd(r, []string{"T"}, small, []string{"J"}, nil); err == nil {
		t.Error("cpd with unequal rows accepted")
	}
	// Overlapping order schemas for add.
	r2 := rel.MustNew("r2", rel.Schema{{Name: "T", Type: bat.String}, {Name: "H", Type: bat.Float}, {Name: "W", Type: bat.Float}},
		[]*bat.BAT{bat.FromStrings([]string{"x", "y", "z", "w"}), bat.FromFloats([]float64{1, 2, 3, 4}), bat.FromFloats([]float64{1, 2, 3, 4})})
	if _, err := Add(r, []string{"T"}, r2, []string{"T"}, nil); err == nil {
		t.Error("overlapping order schemas accepted")
	}
	// ParseOp.
	if _, err := ParseOp("nope"); err == nil {
		t.Error("unknown op parsed")
	}
	if op, err := ParseOp("inv"); err != nil || op != OpINV {
		t.Errorf("ParseOp(inv) = %v, %v", op, err)
	}
}

func TestPolicyEquivalence(t *testing.T) {
	// INV under BAT and Dense policies must agree.
	b := rel.NewBuilder("m", rel.Schema{
		{Name: "K", Type: bat.Int},
		{Name: "c1", Type: bat.Float},
		{Name: "c2", Type: bat.Float},
		{Name: "c3", Type: bat.Float},
	})
	vals := [][]float64{{4, 1, 2}, {1, 5, 1}, {2, 1, 6}}
	for i, row := range vals {
		b.MustAdd(bat.IntValue(int64(i)), bat.FloatValue(row[0]), bat.FloatValue(row[1]), bat.FloatValue(row[2]))
	}
	r := b.Relation()
	for _, op := range []func(*rel.Relation, []string, *Options) (*rel.Relation, error){Inv, Qqr, Rqr, Det, Tra} {
		denseRes, err := op(r, []string{"K"}, &Options{Policy: PolicyDense})
		if err != nil {
			t.Fatal(err)
		}
		batRes, err := op(r, []string{"K"}, &Options{Policy: PolicyBAT})
		if err != nil {
			t.Fatal(err)
		}
		if denseRes.NumRows() != batRes.NumRows() || denseRes.NumCols() != batRes.NumCols() {
			t.Fatalf("policy shapes differ: %dx%d vs %dx%d",
				denseRes.NumRows(), denseRes.NumCols(), batRes.NumRows(), batRes.NumCols())
		}
		for i := 0; i < denseRes.NumRows(); i++ {
			for k := 0; k < denseRes.NumCols(); k++ {
				dv, bv := denseRes.Value(i, k), batRes.Value(i, k)
				if dv.Type == bat.Float {
					// QR is unique only up to column signs between
					// Householder and Gram-Schmidt; compare magnitudes.
					if !approx(math.Abs(dv.F), math.Abs(bv.F), 1e-8) {
						t.Fatalf("policy values differ at %d,%d: %v vs %v", i, k, dv, bv)
					}
				} else if !dv.Equal(bv) {
					t.Fatalf("policy context differs at %d,%d: %v vs %v", i, k, dv, bv)
				}
			}
		}
	}
}

func TestStatsInstrumentation(t *testing.T) {
	r := weather()
	st := &Stats{}
	if _, err := Qqr(r, []string{"T"}, &Options{Policy: PolicyDense, Stats: st}); err != nil {
		t.Fatal(err)
	}
	if !st.UsedDense {
		t.Error("dense policy not recorded")
	}
	if st.Total() <= 0 {
		t.Error("no time recorded")
	}
	if st.TransformShare() < 0 || st.TransformShare() > 1 {
		t.Errorf("transform share = %v", st.TransformShare())
	}
	st2 := &Stats{}
	if _, err := Qqr(r, []string{"T"}, &Options{Policy: PolicyBAT, Stats: st2}); err != nil {
		t.Fatal(err)
	}
	if st2.UsedDense {
		t.Error("BAT policy recorded as dense")
	}
	if st2.Transform != 0 {
		t.Error("no-copy path recorded transform time")
	}
	if (&Stats{}).TransformShare() != 0 {
		t.Error("empty stats transform share should be 0")
	}
}

func TestNoSortOptimizationKeepsTuples(t *testing.T) {
	// qqr with SortOptimized must yield the same set of tuples as full.
	r := weather()
	full, err := Qqr(r, []string{"T"}, &Options{SortMode: SortFull})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Qqr(r, []string{"T"}, &Options{SortMode: SortOptimized})
	if err != nil {
		t.Fatal(err)
	}
	fs, _ := full.Sort(nil, rel.OrderSpec{Attr: "T"})
	os_, _ := opt.Sort(nil, rel.OrderSpec{Attr: "T"})
	for i := 0; i < fs.NumRows(); i++ {
		if fs.Value(i, 0).S != os_.Value(i, 0).S {
			t.Fatalf("origin mismatch row %d", i)
		}
		for k := 1; k < fs.NumCols(); k++ {
			if !approx(math.Abs(fs.Value(i, k).F), math.Abs(os_.Value(i, k).F), 1e-9) {
				t.Fatalf("value mismatch at %d,%d: %v vs %v", i, k, fs.Value(i, k), os_.Value(i, k))
			}
		}
	}
}

func TestSingleRowEmptyOrderSchema(t *testing.T) {
	// A single-row relation admits an empty order schema (det of 1x1).
	r := rel.MustNew("one", rel.Schema{{Name: "x", Type: bat.Float}},
		[]*bat.BAT{bat.FromFloats([]float64{7})})
	v, err := Det(r, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Value(0, 1).F != 7 {
		t.Errorf("det = %v", v.Value(0, 1))
	}
	// Multi-row without order schema must fail.
	r2 := rel.MustNew("two", rel.Schema{{Name: "x", Type: bat.Float}},
		[]*bat.BAT{bat.FromFloats([]float64{1, 2})})
	if _, err := Rnk(r2, nil, nil); err == nil {
		t.Error("multi-row empty order schema accepted")
	}
}
