package core

import (
	"time"

	"repro/internal/exec"
)

// Policy selects the execution engine for the base result (paper §7.3).
type Policy uint8

const (
	// PolicyAuto mirrors the paper's optimizer decision: the linear
	// elementwise family (add, sub, emu) runs no-copy over BATs, all
	// other operations are delegated to the dense kernel, paying the
	// copy-in/copy-out.
	PolicyAuto Policy = iota
	// PolicyBAT forces the no-copy column-at-a-time implementation
	// (RMA+BAT). Operations without a BAT algorithm (evc, evl, chf, dsv,
	// usv, vsv, rnk) fall back to the dense kernel.
	PolicyBAT
	// PolicyDense forces delegation to the dense kernel (RMA+MKL),
	// including the data transformation.
	PolicyDense
)

// String names the policy as in the paper's figures.
func (p Policy) String() string {
	switch p {
	case PolicyAuto:
		return "RMA+"
	case PolicyBAT:
		return "RMA+BAT"
	case PolicyDense:
		return "RMA+MKL"
	}
	return "Policy?"
}

// SortMode toggles the sorting optimizations of Section 8.1.
type SortMode uint8

const (
	// SortFull always sorts every argument by its order schema and
	// verifies that the order schema forms a key.
	SortFull SortMode = iota
	// SortOptimized skips sorting for operations whose base result is
	// invariant/equivariant under row permutation and uses relative
	// sorting for binary elementwise operations.
	SortOptimized
)

// Stats instruments one relational matrix operation, splitting the runtime
// the way the paper's Figures 13 and 14 do.
type Stats struct {
	// Context is the time spent handling contextual information:
	// splitting, computing sort indexes, gathering order and application
	// BATs, morphing, and assembling the result relation.
	Context time.Duration
	// Transform is the time spent copying the application part from BATs
	// into the contiguous dense format and the base result back — zero
	// for the no-copy BAT path.
	Transform time.Duration
	// Kernel is the time spent in the matrix operation itself.
	Kernel time.Duration
	// Sorted records whether any argument was actually sorted.
	Sorted bool
	// UsedDense records whether the dense kernel computed the base result.
	UsedDense bool
	// Workers is the worker budget the invocation ran with: the
	// Parallelism option when set, the process default otherwise. It is
	// recorded from the invocation's own execution context, so two
	// concurrent invocations with different budgets each report their
	// own value.
	Workers int
	// ParallelSections counts the parallel fan-outs of the invocation's
	// context (sections that actually spawned goroutines), and
	// ParallelGoroutines the goroutines those sections spawned. Both
	// accumulate across invocations sharing one Stats, like the phase
	// timings.
	ParallelSections   int64
	ParallelGoroutines int64
	// SerialFallback records that the invocation exceeded its memory
	// budget at the configured parallelism and was retried — and
	// completed — serially (see Options.MemoryBudget). It stays false
	// when the serial retry failed too.
	SerialFallback bool
	// Arena is the tenant's counter snapshot at the end of the
	// invocation: live/peak bytes and per-domain pool hit/miss/free
	// counts. Only populated for budgeted/tenant invocations (zero
	// otherwise). The counters are cumulative for the tenant — shared
	// with every other invocation charging the same tenant — so
	// consecutive snapshots overwrite rather than accumulate.
	Arena exec.TenantStats
}

// Total returns the instrumented wall time.
func (s *Stats) Total() time.Duration { return s.Context + s.Transform + s.Kernel }

// TransformShare returns the fraction of total time spent transforming
// data (the quantity plotted in Figure 14b).
func (s *Stats) TransformShare() float64 {
	t := s.Total()
	if t == 0 {
		return 0
	}
	return float64(s.Transform) / float64(t)
}

// Options configures an RMA operation invocation. The zero value is
// PolicyAuto with full sorting, default-budget parallelism, and no
// instrumentation.
type Options struct {
	Policy   Policy
	SortMode SortMode
	// Parallelism bounds the number of workers used by the invocation's
	// kernels and copy loops on both the BAT and dense paths. Zero (the
	// default) follows the process default budget (exec.DefaultWorkers,
	// GOMAXPROCS unless the deprecated SetParallelism shims moved it);
	// 1 forces serial execution.
	Parallelism int
	// Tenant names the accounting principal the invocation's arena
	// buffers are charged to. Empty with a zero MemoryBudget means
	// ungoverned execution on the shared arena; empty with a budget set
	// charges the "default" tenant.
	Tenant string
	// MemoryBudget, when positive, caps the tenant's live arena bytes.
	// The invocation draws every kernel buffer from a private accounted
	// arena charging the tenant; an allocation that would push the
	// tenant past the cap fails the invocation with an error matching
	// exec.ErrMemoryBudget — after one serial retry, since a serial run
	// needs less scratch (see Stats.SerialFallback). The budget governs
	// in-flight execution memory: the result relation returned to the
	// caller leaves the governed scope when the invocation ends.
	//
	// Tenant caps persist on the governor: zero leaves a previously set
	// cap in place (repeated invocations need not restate it), so going
	// back to MemoryBudget 0 with a Tenant still set does NOT lift an
	// earlier cap. A negative MemoryBudget explicitly removes the
	// tenant's cap — accounting continues unlimited.
	MemoryBudget int64
	// Governor resolves the tenant; nil uses exec.DefaultGovernor().
	// Admission control (queueing whole queries against a global cap) is
	// the governor's job and is applied by callers that own a query
	// boundary, like sql.DB — not per operation here.
	Governor *exec.Governor
	// Stats, when non-nil, receives the phase timings of the invocation.
	Stats *Stats
}

func (o *Options) orDefault() *Options {
	if o == nil {
		return &Options{}
	}
	return o
}

// ctxWorkers builds the per-invocation execution context from the
// options with an explicit worker budget (so the memory-budget serial
// fallback can rebuild the context at parallelism 1 without mutating
// the caller's options): the arena is a private accounted arena
// charging the options' tenant when Tenant or MemoryBudget is set, the
// shared arena otherwise, and a fresh stats sink is attached when Stats
// is set. Nothing process-wide is touched — concurrent invocations with
// different budgets each carry their own context, which is what makes
// mixed-budget query streams race-free. Unary/Binary own the context's
// lifecycle: finishCtx must run when the invocation ends, because it is
// what closes an accounted arena and releases its charges — which is
// why this constructor is not exported.
func (o *Options) ctxWorkers(workers int) *exec.Ctx {
	var sink *exec.Stats
	if o.Stats != nil {
		sink = &exec.Stats{}
	}
	gov := o.Governor
	if gov == nil {
		gov = exec.DefaultGovernor()
	}
	c := exec.NewCtx(workers, gov.ArenaFor(o.Tenant, o.MemoryBudget), sink)
	if o.Stats != nil {
		o.Stats.Workers = sink.Workers
	}
	return c
}

// finishCtx folds the context's execution counters back into Stats at the
// end of one invocation and, for governed invocations, snapshots the
// tenant's arena counters and closes the per-invocation arena so its
// outstanding charges (the result columns, typically) leave the
// governed scope.
func (o *Options) finishCtx(c *exec.Ctx) {
	if tn := c.Arena().Tenant(); tn != nil {
		if o.Stats != nil {
			o.Stats.Arena = tn.Stats()
		}
		c.Arena().Close()
	}
	if o.Stats == nil {
		return
	}
	if s := c.Stats(); s != nil {
		o.Stats.ParallelSections += s.Sections.Load()
		o.Stats.ParallelGoroutines += s.Goroutines.Load()
	}
}

type phaseClock struct {
	stats *Stats
	start time.Time
}

func (c *phaseClock) begin() {
	if c.stats != nil {
		//lint:ignore rmalint/detorder wall-clock phase timing feeds Stats observability only, never result bits
		c.start = time.Now()
	}
}

func (c *phaseClock) endContext() {
	if c.stats != nil {
		c.stats.Context += time.Since(c.start)
	}
}

func (c *phaseClock) endTransform() {
	if c.stats != nil {
		c.stats.Transform += time.Since(c.start)
	}
}

func (c *phaseClock) endKernel() {
	if c.stats != nil {
		c.stats.Kernel += time.Since(c.start)
	}
}
