package core

import (
	"time"

	"repro/internal/exec"
)

// Policy selects the execution engine for the base result (paper §7.3).
type Policy uint8

const (
	// PolicyAuto mirrors the paper's optimizer decision: the linear
	// elementwise family (add, sub, emu) runs no-copy over BATs, all
	// other operations are delegated to the dense kernel, paying the
	// copy-in/copy-out.
	PolicyAuto Policy = iota
	// PolicyBAT forces the no-copy column-at-a-time implementation
	// (RMA+BAT). Operations without a BAT algorithm (evc, evl, chf, dsv,
	// usv, vsv, rnk) fall back to the dense kernel.
	PolicyBAT
	// PolicyDense forces delegation to the dense kernel (RMA+MKL),
	// including the data transformation.
	PolicyDense
)

// String names the policy as in the paper's figures.
func (p Policy) String() string {
	switch p {
	case PolicyAuto:
		return "RMA+"
	case PolicyBAT:
		return "RMA+BAT"
	case PolicyDense:
		return "RMA+MKL"
	}
	return "Policy?"
}

// SortMode toggles the sorting optimizations of Section 8.1.
type SortMode uint8

const (
	// SortFull always sorts every argument by its order schema and
	// verifies that the order schema forms a key.
	SortFull SortMode = iota
	// SortOptimized skips sorting for operations whose base result is
	// invariant/equivariant under row permutation and uses relative
	// sorting for binary elementwise operations.
	SortOptimized
)

// Stats instruments one relational matrix operation, splitting the runtime
// the way the paper's Figures 13 and 14 do.
type Stats struct {
	// Context is the time spent handling contextual information:
	// splitting, computing sort indexes, gathering order and application
	// BATs, morphing, and assembling the result relation.
	Context time.Duration
	// Transform is the time spent copying the application part from BATs
	// into the contiguous dense format and the base result back — zero
	// for the no-copy BAT path.
	Transform time.Duration
	// Kernel is the time spent in the matrix operation itself.
	Kernel time.Duration
	// Sorted records whether any argument was actually sorted.
	Sorted bool
	// UsedDense records whether the dense kernel computed the base result.
	UsedDense bool
	// Workers is the worker budget the invocation ran with: the
	// Parallelism option when set, the process default otherwise. It is
	// recorded from the invocation's own execution context, so two
	// concurrent invocations with different budgets each report their
	// own value.
	Workers int
	// ParallelSections counts the parallel fan-outs of the invocation's
	// context (sections that actually spawned goroutines), and
	// ParallelGoroutines the goroutines those sections spawned. Both
	// accumulate across invocations sharing one Stats, like the phase
	// timings.
	ParallelSections   int64
	ParallelGoroutines int64
}

// Total returns the instrumented wall time.
func (s *Stats) Total() time.Duration { return s.Context + s.Transform + s.Kernel }

// TransformShare returns the fraction of total time spent transforming
// data (the quantity plotted in Figure 14b).
func (s *Stats) TransformShare() float64 {
	t := s.Total()
	if t == 0 {
		return 0
	}
	return float64(s.Transform) / float64(t)
}

// Options configures an RMA operation invocation. The zero value is
// PolicyAuto with full sorting, default-budget parallelism, and no
// instrumentation.
type Options struct {
	Policy   Policy
	SortMode SortMode
	// Parallelism bounds the number of workers used by the invocation's
	// kernels and copy loops on both the BAT and dense paths. Zero (the
	// default) follows the process default budget (exec.DefaultWorkers,
	// GOMAXPROCS unless the deprecated SetParallelism shims moved it);
	// 1 forces serial execution.
	Parallelism int
	// Stats, when non-nil, receives the phase timings of the invocation.
	Stats *Stats
}

func (o *Options) orDefault() *Options {
	if o == nil {
		return &Options{}
	}
	return o
}

// Ctx builds the per-invocation execution context from the options: the
// Parallelism budget (zero follows the process default), the shared
// arena, and a fresh stats sink when Stats is set. Nothing process-wide
// is touched — concurrent invocations with different budgets each carry
// their own context, which is what makes mixed-budget query streams
// race-free. A nil receiver yields the default context.
func (o *Options) Ctx() *exec.Ctx {
	if o == nil {
		return exec.Default()
	}
	var sink *exec.Stats
	if o.Stats != nil {
		sink = &exec.Stats{}
	}
	c := exec.NewCtx(o.Parallelism, nil, sink)
	if o.Stats != nil {
		o.Stats.Workers = sink.Workers
	}
	return c
}

// finishCtx folds the context's execution counters back into Stats at the
// end of one invocation.
func (o *Options) finishCtx(c *exec.Ctx) {
	if o.Stats == nil {
		return
	}
	if s := c.Stats(); s != nil {
		o.Stats.ParallelSections += s.Sections.Load()
		o.Stats.ParallelGoroutines += s.Goroutines.Load()
	}
}

type phaseClock struct {
	stats *Stats
	start time.Time
}

func (c *phaseClock) begin() {
	if c.stats != nil {
		c.start = time.Now()
	}
}

func (c *phaseClock) endContext() {
	if c.stats != nil {
		c.stats.Context += time.Since(c.start)
	}
}

func (c *phaseClock) endTransform() {
	if c.stats != nil {
		c.stats.Transform += time.Since(c.start)
	}
}

func (c *phaseClock) endKernel() {
	if c.stats != nil {
		c.stats.Kernel += time.Since(c.start)
	}
}
