package core

import (
	"fmt"

	"repro/internal/bat"
	"repro/internal/batlin"
	"repro/internal/exec"
	"repro/internal/linalg"
	"repro/internal/matrix"
)

// checkUnaryShape validates the dimension requirements of a unary
// operation before the kernel runs (paper Table 1, first column).
func checkUnaryShape(op Op, a *argument) error {
	m, n := a.rows(), len(a.appCols)
	switch op {
	case OpINV, OpEVC, OpEVL, OpCHF, OpDET:
		if m != n {
			return fmt.Errorf("rma: %s needs a square application part, got %dx%d", op, m, n)
		}
	case OpQQR, OpRQR:
		if m < n {
			return fmt.Errorf("rma: %s needs at least as many rows as application attributes, got %dx%d", op, m, n)
		}
	}
	if m == 0 {
		switch op {
		case OpADD, OpSUB, OpEMU, OpTRA:
		default:
			return fmt.Errorf("rma: %s over an empty relation", op)
		}
	}
	return nil
}

// evalDenseUnary computes the base result of a unary operation with the
// dense kernels.
func evalDenseUnary(c *exec.Ctx, op Op, a *matrix.Matrix) (*matrix.Matrix, error) {
	switch op {
	case OpTRA:
		return a.T(), nil
	case OpINV:
		return linalg.Inverse(a)
	case OpEVC:
		return linalg.Eigenvectors(a)
	case OpEVL:
		vals, err := linalg.Eigenvalues(a)
		if err != nil {
			return nil, err
		}
		out := matrix.New(len(vals), 1)
		for i, v := range vals {
			out.Set(i, 0, v)
		}
		return out, nil
	case OpQQR:
		return linalg.QQR(c, a)
	case OpRQR:
		return linalg.RQR(c, a)
	case OpDSV:
		sv, err := linalg.SingularValues(c, a)
		if err != nil {
			return nil, err
		}
		// Shape (c1,c1): pad to #columns when rows < columns.
		d := make([]float64, a.Cols)
		copy(d, sv)
		return matrix.Diag(d), nil
	case OpUSV:
		d, err := linalg.NewSVD(c, a)
		if err != nil {
			return nil, err
		}
		return d.FullU(), nil
	case OpVSV:
		d, err := linalg.NewSVD(c, a)
		if err != nil {
			return nil, err
		}
		return d.FullV(), nil
	case OpCHF:
		return linalg.Cholesky(a)
	case OpDET:
		v, err := linalg.Det(a)
		if err != nil {
			return nil, err
		}
		return matrix.FromRows([][]float64{{v}}), nil
	case OpRNK:
		r, err := linalg.Rank(c, a)
		if err != nil {
			return nil, err
		}
		return matrix.FromRows([][]float64{{float64(r)}}), nil
	}
	return nil, fmt.Errorf("rma: %s is not unary", op)
}

// evalDenseBinary computes the base result of a binary operation with the
// dense kernels.
func evalDenseBinary(c *exec.Ctx, op Op, a, b *matrix.Matrix) (*matrix.Matrix, error) {
	switch op {
	case OpADD:
		return matrix.Add(a, b), nil
	case OpSUB:
		return matrix.Sub(a, b), nil
	case OpEMU:
		return matrix.EMU(a, b), nil
	case OpMMU:
		return linalg.MatMul(c, a, b), nil
	case OpCPD:
		return linalg.CrossProduct(c, a, b), nil
	case OpOPD:
		return linalg.OuterProduct(c, a, b), nil
	case OpSOL:
		x, err := linalg.Solve(c, a, b.Column(0))
		if err != nil {
			return nil, err
		}
		out := matrix.New(len(x), 1)
		for i, v := range x {
			out.Set(i, 0, v)
		}
		return out, nil
	}
	return nil, fmt.Errorf("rma: %s is not binary", op)
}

// batUnarySupported reports whether the no-copy path implements the
// operation (paper §7.3: complex spectral operations are delegated even in
// BAT mode).
func batUnarySupported(op Op) bool {
	switch op {
	case OpTRA, OpINV, OpQQR, OpRQR, OpDET:
		return true
	}
	return false
}

// evalBATUnary computes the base result column-at-a-time over BATs.
func evalBATUnary(c *exec.Ctx, op Op, cols []*bat.BAT) ([]*bat.BAT, error) {
	switch op {
	case OpTRA:
		return batlin.Tra(c, cols), nil
	case OpINV:
		return batlin.Inv(c, cols)
	case OpQQR:
		q, r, err := batlin.QR(c, cols)
		for _, col := range r {
			bat.Release(c, col) // only Q is kept; recycle the R columns
		}
		return q, err
	case OpRQR:
		q, r, err := batlin.QR(c, cols)
		for _, col := range q {
			bat.Release(c, col)
		}
		return r, err
	case OpDET:
		v, err := batlin.Det(c, cols)
		if err != nil {
			return nil, err
		}
		return []*bat.BAT{bat.FromFloats([]float64{v})}, nil
	}
	return nil, fmt.Errorf("rma: %s has no BAT implementation", op)
}

func batBinarySupported(op Op) bool {
	switch op {
	case OpADD, OpSUB, OpEMU, OpMMU, OpCPD, OpOPD, OpSOL:
		return true
	}
	return false
}

// evalBATBinary computes the base result of a binary operation over BATs.
func evalBATBinary(c *exec.Ctx, op Op, a, b []*bat.BAT) ([]*bat.BAT, error) {
	switch op {
	case OpADD:
		return batlin.Add(c, a, b)
	case OpSUB:
		return batlin.Sub(c, a, b)
	case OpEMU:
		return batlin.EMU(c, a, b)
	case OpMMU:
		return batlin.MMU(c, a, b)
	case OpCPD:
		return batlin.CPD(c, a, b)
	case OpOPD:
		return batlin.OPD(c, a, b)
	case OpSOL:
		x, err := batlin.Solve(c, a, b[0])
		if err != nil {
			return nil, err
		}
		return []*bat.BAT{x}, nil
	}
	return nil, fmt.Errorf("rma: %s has no BAT implementation", op)
}

// useDense decides the execution engine for one invocation (the paper's
// query-optimizer decision of §7.3).
func useDense(op Op, p Policy, binary bool) bool {
	switch p {
	case PolicyDense:
		return true
	case PolicyBAT:
		if binary {
			return !batBinarySupported(op)
		}
		return !batUnarySupported(op)
	default: // PolicyAuto: linear elementwise family on BATs, rest dense.
		switch op {
		case OpADD, OpSUB, OpEMU:
			return false
		}
		return true
	}
}
