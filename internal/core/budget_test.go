package core

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/bat"
	"repro/internal/exec"
	"repro/internal/rel"
)

// budgetRows is sized above the serial cutoff so the order-schema sort
// takes the parallel merge-sort path, whose double buffer is the extra
// arena scratch the serial fallback avoids.
const budgetRows = 3 * bat.SerialCutoff

// sparseShuffledRel builds a relation whose columns are both
// zero-suppressed: a shuffled distinct key (so sorting really runs) and
// a sparse value column. With sparse tails, the gathers and the add
// kernel allocate outside the arena, which makes the sort scratch the
// dominant accounted allocation — the shape that separates the parallel
// and serial peaks.
func sparseShuffledRel(name, key, val string, n int) *rel.Relation {
	kf := make([]float64, n)
	vf := make([]float64, n)
	for i := 0; i < n; i++ {
		kf[i] = float64((i*5+3)%n + 1) // 5 is coprime to n: a permutation
		if i%3 == 0 {
			vf[i] = float64(i + 1)
		}
	}
	return rel.MustNew(name, rel.Schema{
		{Name: key, Type: bat.Float},
		{Name: val, Type: bat.Float},
	}, []*bat.BAT{
		bat.FromSparse(bat.Compress(kf)),
		bat.FromSparse(bat.Compress(vf)),
	})
}

// governedAdd runs one ADD under the given tenant/budget/parallelism
// against gov and returns the result, the stats, and the error.
func governedAdd(workers int, budget int64, tenant string, gov *exec.Governor) (*rel.Relation, *Stats, error) {
	r := sparseShuffledRel("r", "ka", "va", budgetRows)
	s := sparseShuffledRel("s", "kb", "vb", budgetRows)
	st := &Stats{}
	res, err := Add(r, []string{"ka"}, s, []string{"kb"}, &Options{
		Policy:       PolicyBAT,
		Parallelism:  workers,
		Tenant:       tenant,
		MemoryBudget: budget,
		Governor:     gov,
		Stats:        st,
	})
	return res, st, err
}

func sameRelation(a, b *rel.Relation) bool {
	if a.NumRows() != b.NumRows() || a.NumCols() != b.NumCols() {
		return false
	}
	for j := range a.Cols {
		for i := 0; i < a.NumRows(); i++ {
			if !a.Cols[j].Get(i).Equal(b.Cols[j].Get(i)) {
				return false
			}
		}
	}
	return true
}

// TestMemoryBudgetGovernsInvocation is the acceptance test of the
// memory governance: a budgeted invocation never exceeds its cap in
// live arena bytes, degrades to a serial retry when the parallel
// scratch does not fit — producing a bitwise-identical result — and
// returns the typed error (never a panic) when even the serial run
// cannot fit.
func TestMemoryBudgetGovernsInvocation(t *testing.T) {
	gov := exec.NewGovernor(0, 0)

	// Measure the ungoverned (unlimited-budget) peaks of both modes on
	// fresh tenants.
	serialRes, serialStats, err := governedAdd(1, 0, "measure-serial", gov)
	if err != nil {
		t.Fatal(err)
	}
	parRes, parStats, err := governedAdd(8, 0, "measure-parallel", gov)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRelation(serialRes, parRes) {
		t.Fatal("serial and parallel ungoverned results differ")
	}
	pSerial, pPar := serialStats.Arena.PeakBytes, parStats.Arena.PeakBytes
	if pSerial <= 0 || pPar <= pSerial {
		t.Fatalf("peaks: serial=%d parallel=%d, want 0 < serial < parallel (the sort double buffer)",
			pSerial, pPar)
	}

	// A budget between the two peaks: the parallel attempt must fail,
	// the serial fallback must fit and reproduce the result exactly.
	budget := (pSerial + pPar) / 2
	res, st, err := governedAdd(8, budget, "governed", gov)
	if err != nil {
		t.Fatalf("budgeted invocation failed despite a feasible serial plan: %v", err)
	}
	if !st.SerialFallback {
		t.Fatal("SerialFallback not recorded; the parallel attempt should have exceeded the budget")
	}
	if got := st.Arena.PeakBytes; got > budget {
		t.Fatalf("peak %d exceeded the budget %d", got, budget)
	}
	if got := gov.Tenant("governed", 0).PeakBytes(); got > budget {
		t.Fatalf("tenant peak %d exceeded the budget %d", got, budget)
	}
	if st.Arena.Tenant != "governed" {
		t.Fatalf("Stats.Arena.Tenant = %q", st.Arena.Tenant)
	}
	if !sameRelation(res, serialRes) {
		t.Fatal("serial-fallback result differs from the ungoverned result")
	}

	// A budget no plan fits under yields the typed error — through the
	// normal error return, not a panic.
	_, _, err = governedAdd(8, 4096, "starved", gov)
	if err == nil {
		t.Fatal("starved invocation succeeded under a 4 KiB budget")
	}
	if !errors.Is(err, exec.ErrMemoryBudget) {
		t.Fatalf("starved invocation error = %v, want ErrMemoryBudget", err)
	}
	// Failed invocations must not strand charges against the tenant.
	if got := gov.Tenant("starved", 0).LiveBytes(); got != 0 {
		t.Fatalf("starved tenant live = %d after failure, want 0", got)
	}
}

// TestConcurrentTenantGovernance runs two tenants with distinct budgets
// simultaneously under -race: a tight tenant whose budget forces the
// serial fallback on every query, and a roomy tenant that never falls
// back. Both must produce results identical to an ungoverned reference
// on every round, their peaks must respect their own budgets, and both
// must drain to zero live bytes — isolation plus determinism under
// budget pressure.
func TestConcurrentTenantGovernance(t *testing.T) {
	gov := exec.NewGovernor(0, 0)
	ref, refStats, err := governedAdd(1, 0, "ref", gov)
	if err != nil {
		t.Fatal(err)
	}
	_, parStats, err := governedAdd(8, 0, "ref-par", gov)
	if err != nil {
		t.Fatal(err)
	}
	pSerial, pPar := refStats.Arena.PeakBytes, parStats.Arena.PeakBytes
	if pPar <= pSerial {
		t.Fatalf("peaks: serial=%d parallel=%d, want a parallel-only scratch gap", pSerial, pPar)
	}
	tight := (pSerial + pPar) / 2
	roomy := 4 * pPar

	var wg sync.WaitGroup
	for _, tc := range []struct {
		tenant       string
		budget       int64
		wantFallback bool
	}{
		{"tight", tight, true},
		{"roomy", roomy, false},
	} {
		wg.Add(1)
		go func(tenant string, budget int64, wantFallback bool) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				res, st, err := governedAdd(8, budget, tenant, gov)
				if err != nil {
					t.Errorf("tenant %s round %d: %v", tenant, round, err)
					return
				}
				if st.SerialFallback != wantFallback {
					t.Errorf("tenant %s round %d: SerialFallback = %v, want %v",
						tenant, round, st.SerialFallback, wantFallback)
					return
				}
				if !sameRelation(res, ref) {
					t.Errorf("tenant %s round %d: result diverged from the reference", tenant, round)
					return
				}
			}
		}(tc.tenant, tc.budget, tc.wantFallback)
	}
	wg.Wait()

	if got := gov.Tenant("tight", 0).PeakBytes(); got > tight {
		t.Errorf("tight tenant peak %d exceeded its budget %d", got, tight)
	}
	if got := gov.Tenant("roomy", 0).PeakBytes(); got > roomy {
		t.Errorf("roomy tenant peak %d exceeded its budget %d", got, roomy)
	}
	for _, tenant := range []string{"tight", "roomy"} {
		if got := gov.Tenant(tenant, 0).LiveBytes(); got != 0 {
			t.Errorf("tenant %s live = %d after drain, want 0", tenant, got)
		}
	}
}

// TestTenantSharedAcrossInvocations checks that two invocations naming
// the same tenant share one byte ledger: the tenant's counters
// accumulate across both.
func TestTenantSharedAcrossInvocations(t *testing.T) {
	gov := exec.NewGovernor(0, 0)
	if _, _, err := governedAdd(1, 0, "shared", gov); err != nil {
		t.Fatal(err)
	}
	first := gov.Tenant("shared", 0).Stats().Total().Allocs
	if first == 0 {
		t.Fatal("no accounted allocations in a governed invocation")
	}
	if _, _, err := governedAdd(1, 0, "shared", gov); err != nil {
		t.Fatal(err)
	}
	second := gov.Tenant("shared", 0).Stats().Total().Allocs
	if second <= first {
		t.Fatalf("tenant allocs did not accumulate: %d then %d", first, second)
	}
	if got := gov.Tenant("shared", 0).LiveBytes(); got != 0 {
		t.Fatalf("tenant live = %d after both invocations closed, want 0", got)
	}
}
