package core

import (
	"fmt"

	"repro/internal/bat"
	"repro/internal/exec"
	"repro/internal/matrix"
	"repro/internal/rel"
)

// argument is one split argument relation of a relational matrix
// operation: the four areas of Figure 2 (order schema, order part,
// application schema, application part), plus the row permutation that
// establishes the operation's order.
type argument struct {
	rel         *rel.Relation
	orderSchema rel.Schema
	appSchema   rel.Schema
	orderCols   []*bat.BAT // in relation column order, not yet gathered
	appCols     []*bat.BAT
	perm        []int // nil means input order (sorting skipped)
	sorted      bool  // perm was computed and verified
}

// split resolves the order schema U of r and partitions schema and columns
// (the Splitting step of Algorithm 1). Every application attribute must be
// numeric; the order attributes must exist.
func split(r *rel.Relation, order []string) (*argument, error) {
	if r == nil {
		return nil, fmt.Errorf("rma: nil relation")
	}
	inOrder := make(map[string]bool, len(order))
	a := &argument{rel: r}
	for _, name := range order {
		k := r.Schema.Index(name)
		if k < 0 {
			return nil, fmt.Errorf("rma: order attribute %q not in relation %s", name, r.Name)
		}
		if inOrder[name] {
			return nil, fmt.Errorf("rma: duplicate order attribute %q", name)
		}
		inOrder[name] = true
		a.orderSchema = append(a.orderSchema, r.Schema[k])
		a.orderCols = append(a.orderCols, r.Cols[k])
	}
	for k, attr := range r.Schema {
		if inOrder[attr.Name] {
			continue
		}
		if !attr.Type.Numeric() {
			return nil, fmt.Errorf("rma: application attribute %q of %s is %v; add it to the order schema or project it away",
				attr.Name, r.Name, attr.Type)
		}
		a.appSchema = append(a.appSchema, attr)
		a.appCols = append(a.appCols, r.Cols[k])
	}
	if len(a.appSchema) == 0 {
		return nil, fmt.Errorf("rma: relation %s has an empty application schema", r.Name)
	}
	return a, nil
}

// sortArg computes the sort permutation over the order schema and verifies
// the key property (the Sorting step of Algorithm 1).
func (a *argument) sortArg(c *exec.Ctx) error {
	if len(a.orderCols) == 0 {
		// An empty order schema is permitted only for single-row inputs,
		// where order is trivially immaterial and the key is empty.
		if a.rel.NumRows() > 1 {
			return fmt.Errorf("rma: relation %s needs an order schema (BY clause)", a.rel.Name)
		}
		a.perm = bat.Identity(c, a.rel.NumRows())
		a.sorted = true
		return nil
	}
	idx := bat.SortIndex(c, a.orderCols)
	if !bat.KeyUnique(a.orderCols, idx) {
		return fmt.Errorf("rma: order schema %v of %s is not a key", a.orderSchema.Names(), a.rel.Name)
	}
	a.perm = idx
	a.sorted = true
	return nil
}

// rows returns |r|.
func (a *argument) rows() int { return a.rel.NumRows() }

// orderedOrderCols returns the order part gathered into operation order
// (X in Algorithm 1 for shape (r,·) operations).
func (a *argument) orderedOrderCols(c *exec.Ctx) []*bat.BAT {
	out := make([]*bat.BAT, len(a.orderCols))
	for k, col := range a.orderCols {
		if a.perm == nil || bat.IsSortedIndex(a.perm) {
			out[k] = col
		} else {
			out[k] = col.Gather(c, a.perm)
		}
	}
	return out
}

// orderedAppCols returns the application part gathered into operation
// order (Y in Algorithm 1) — the no-copy µ constructor used by the BAT
// execution path.
func (a *argument) orderedAppCols(c *exec.Ctx) []*bat.BAT {
	out := make([]*bat.BAT, len(a.appCols))
	for k, col := range a.appCols {
		if a.perm == nil || bat.IsSortedIndex(a.perm) {
			out[k] = col
		} else {
			out[k] = col.Gather(c, a.perm)
		}
	}
	return out
}

// toMatrix is the matrix constructor µ_Ū(r) for the dense path: it copies
// the application part, ordered by the permutation, into a contiguous
// row-major array (the "copy BATs to an MKL compatible format" step whose
// cost Figure 14 measures). The copy-in is column-parallel: each source
// column scatters into a distinct stride of the row-major array, so the
// writes are disjoint. The backing array is drawn from the context's
// arena — every cell is overwritten below — and handed back with
// releaseMatrix once the kernel has consumed the operand.
func (a *argument) toMatrix(c *exec.Ctx) (*matrix.Matrix, error) {
	m := a.rows()
	n := len(a.appCols)
	out := &matrix.Matrix{Rows: m, Cols: n, Data: c.Arena().Floats(m * n)}
	errs := make([]error, n)
	c.ParallelFor(n, 1, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			f, err := a.appCols[j].FloatsCtx(c)
			if err != nil {
				errs[j] = err
				continue
			}
			if a.perm == nil {
				for i := 0; i < m; i++ {
					out.Data[i*n+j] = f[i]
				}
			} else {
				for i, p := range a.perm {
					out.Data[i*n+j] = f[p]
				}
			}
			a.appCols[j].ReleaseFloats(c, f)
		}
	})
	for _, err := range errs {
		if err != nil {
			releaseMatrix(c, out)
			return nil, fmt.Errorf("rma: %v", err)
		}
	}
	return out, nil
}

// releaseMatrix returns a toMatrix backing array to the context's arena
// once the dense kernel has consumed the operand (the kernels never alias
// their inputs into their results). The matrix must not be used
// afterwards.
func releaseMatrix(c *exec.Ctx, m *matrix.Matrix) {
	if m == nil || m.Data == nil {
		return
	}
	data := m.Data
	m.Data = nil
	c.Arena().FreeFloats(data)
}

// blockedMinElems gates the tiled materialization path: dense operands
// with at least this many cells take toBlockMatrix + the blocked
// kernels instead of one contiguous toMatrix copy. 4M cells (32 MiB)
// sits safely inside the arena's pooled classes for the flat path
// below it and avoids any single huge allocation above it. Variable so
// tests can force either route.
var blockedMinElems = 1 << 22

// toBlockMatrix is the block-aware µ_Ū(r): it materializes the ordered
// application part directly into cache-sized tiles — each tile is
// arena-charged individually, so a huge operand never needs one
// contiguous allocation and can spill tile-at-a-time — without the
// intermediate flat copy toMatrix would make. Tiles are filled in
// parallel; writes are disjoint per tile.
func (a *argument) toBlockMatrix(c *exec.Ctx) (*matrix.BlockMatrix, error) {
	m := a.rows()
	n := len(a.appCols)
	fcols := make([][]float64, n)
	for j, col := range a.appCols {
		f, err := col.FloatsCtx(c)
		if err != nil {
			for k := 0; k < j; k++ {
				a.appCols[k].ReleaseFloats(c, fcols[k])
			}
			return nil, fmt.Errorf("rma: %v", err)
		}
		fcols[j] = f
	}
	out := matrix.NewBlock(m, n)
	if sp := c.Spill(); sp != nil {
		out.EnableSpill(sp, blockResidency(out))
	}
	edge := out.Edge
	nt := out.TileRows() * out.TileCols()
	errs := make([]error, nt)
	c.ParallelFor(nt, 1, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			ti, tj := t/out.TileCols(), t%out.TileCols()
			h, w := out.TileDims(ti, tj)
			buf, err := out.Pin(c, ti, tj)
			if err != nil {
				errs[t] = err
				continue
			}
			for r := 0; r < h; r++ {
				src := ti*edge + r
				if a.perm != nil {
					src = a.perm[src]
				}
				row := buf[r*w : (r+1)*w]
				for l := range row {
					row[l] = fcols[tj*edge+l][src]
				}
			}
			out.Unpin(ti, tj)
		}
	})
	for j, f := range fcols {
		a.appCols[j].ReleaseFloats(c, f)
	}
	for _, err := range errs {
		if err != nil {
			out.Free(c)
			return nil, err
		}
	}
	return out, nil
}

// blockResidency picks the tile residency cap for a spilling blocked
// operand: a quarter of the grid, at least two tile rows so the
// kernels' row-of-a × column-of-b pins never thrash.
func blockResidency(b *matrix.BlockMatrix) int {
	cap := b.TileRows() * b.TileCols() / 4
	if floor := 2 * b.TileCols(); cap < floor {
		cap = floor
	}
	return cap
}

// releaseBlockMatrix frees every resident tile back to the arena and
// removes any spilled tile files.
func releaseBlockMatrix(c *exec.Ctx, b *matrix.BlockMatrix) {
	b.Free(c)
}

// blockToCols converts a blocked base result back into one BAT per
// column, paging each tile in at most once per column stripe. The
// inverse of toBlockMatrix for the copy-back half.
func blockToCols(c *exec.Ctx, bm *matrix.BlockMatrix) ([]*bat.BAT, error) {
	out := make([]*bat.BAT, bm.Cols)
	errs := make([]error, bm.Cols)
	c.ParallelFor(bm.Cols, 1, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			col := c.Arena().Floats(bm.Rows)
			tj, lj := j/bm.Edge, j%bm.Edge
			for ti := 0; ti < bm.TileRows(); ti++ {
				buf, err := bm.PinRead(c, ti, tj)
				if err != nil {
					errs[j] = err
					break
				}
				h, w := bm.TileDims(ti, tj)
				base := ti * bm.Edge
				for r := 0; r < h; r++ {
					col[base+r] = buf[r*w+lj]
				}
				bm.Unpin(ti, tj)
			}
			if errs[j] != nil {
				c.Arena().FreeFloats(col)
				continue
			}
			out[j] = bat.FromFloats(col)
		}
	})
	for _, err := range errs {
		if err != nil {
			for _, b := range out {
				if b != nil {
					bat.Release(c, b)
				}
			}
			return nil, err
		}
	}
	return out, nil
}

// columnCast is ▽U: the sorted values of a single-attribute order schema,
// rendered as strings, used as attribute names of result application
// schemas (usv, opd, tra). The key property guarantees uniqueness.
func (a *argument) columnCast(c *exec.Ctx) ([]string, error) {
	if len(a.orderCols) != 1 {
		return nil, fmt.Errorf("rma: column cast needs an order schema of cardinality one, got %v",
			a.orderSchema.Names())
	}
	perm := a.perm
	if perm == nil {
		// Names must be sorted even when row sorting was optimized away.
		perm = bat.SortIndex(c, a.orderCols)
		if !bat.KeyUnique(a.orderCols, perm) {
			return nil, fmt.Errorf("rma: order schema %v of %s is not a key",
				a.orderSchema.Names(), a.rel.Name)
		}
	}
	col := a.orderCols[0]
	names := make([]string, len(perm))
	for i, p := range perm {
		names[i] = col.Get(p).String()
	}
	return names, nil
}

// schemaCast is ∆Ū: the application schema attribute names as the values
// of the result's C attribute (tra, rqr, dsv, vsv, cpd, sol).
func (a *argument) schemaCast() []string {
	return append([]string(nil), a.appSchema.Names()...)
}

// matrixToCols converts a dense base result back into one BAT per column
// (the copy-back half of the transformation). The materialization is
// column-parallel and draws the column buffers from the context's arena.
func matrixToCols(c *exec.Ctx, m *matrix.Matrix) []*bat.BAT {
	out := make([]*bat.BAT, m.Cols)
	c.ParallelFor(m.Cols, 1, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			col := c.Arena().Floats(m.Rows)
			for i := 0; i < m.Rows; i++ {
				col[i] = m.Data[i*m.Cols+j]
			}
			out[j] = bat.FromFloats(col)
		}
	})
	return out
}

// floatSchema builds a schema of float attributes with the given names.
func floatSchema(names []string) rel.Schema {
	s := make(rel.Schema, len(names))
	for k, n := range names {
		s[k] = rel.Attr{Name: n, Type: bat.Float}
	}
	return s
}
