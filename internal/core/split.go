package core

import (
	"fmt"

	"repro/internal/bat"
	"repro/internal/exec"
	"repro/internal/matrix"
	"repro/internal/rel"
)

// argument is one split argument relation of a relational matrix
// operation: the four areas of Figure 2 (order schema, order part,
// application schema, application part), plus the row permutation that
// establishes the operation's order.
type argument struct {
	rel         *rel.Relation
	orderSchema rel.Schema
	appSchema   rel.Schema
	orderCols   []*bat.BAT // in relation column order, not yet gathered
	appCols     []*bat.BAT
	perm        []int // nil means input order (sorting skipped)
	sorted      bool  // perm was computed and verified
}

// split resolves the order schema U of r and partitions schema and columns
// (the Splitting step of Algorithm 1). Every application attribute must be
// numeric; the order attributes must exist.
func split(r *rel.Relation, order []string) (*argument, error) {
	if r == nil {
		return nil, fmt.Errorf("rma: nil relation")
	}
	inOrder := make(map[string]bool, len(order))
	a := &argument{rel: r}
	for _, name := range order {
		k := r.Schema.Index(name)
		if k < 0 {
			return nil, fmt.Errorf("rma: order attribute %q not in relation %s", name, r.Name)
		}
		if inOrder[name] {
			return nil, fmt.Errorf("rma: duplicate order attribute %q", name)
		}
		inOrder[name] = true
		a.orderSchema = append(a.orderSchema, r.Schema[k])
		a.orderCols = append(a.orderCols, r.Cols[k])
	}
	for k, attr := range r.Schema {
		if inOrder[attr.Name] {
			continue
		}
		if !attr.Type.Numeric() {
			return nil, fmt.Errorf("rma: application attribute %q of %s is %v; add it to the order schema or project it away",
				attr.Name, r.Name, attr.Type)
		}
		a.appSchema = append(a.appSchema, attr)
		a.appCols = append(a.appCols, r.Cols[k])
	}
	if len(a.appSchema) == 0 {
		return nil, fmt.Errorf("rma: relation %s has an empty application schema", r.Name)
	}
	return a, nil
}

// sortArg computes the sort permutation over the order schema and verifies
// the key property (the Sorting step of Algorithm 1).
func (a *argument) sortArg(c *exec.Ctx) error {
	if len(a.orderCols) == 0 {
		// An empty order schema is permitted only for single-row inputs,
		// where order is trivially immaterial and the key is empty.
		if a.rel.NumRows() > 1 {
			return fmt.Errorf("rma: relation %s needs an order schema (BY clause)", a.rel.Name)
		}
		a.perm = bat.Identity(c, a.rel.NumRows())
		a.sorted = true
		return nil
	}
	idx := bat.SortIndex(c, a.orderCols)
	if !bat.KeyUnique(a.orderCols, idx) {
		return fmt.Errorf("rma: order schema %v of %s is not a key", a.orderSchema.Names(), a.rel.Name)
	}
	a.perm = idx
	a.sorted = true
	return nil
}

// rows returns |r|.
func (a *argument) rows() int { return a.rel.NumRows() }

// orderedOrderCols returns the order part gathered into operation order
// (X in Algorithm 1 for shape (r,·) operations).
func (a *argument) orderedOrderCols(c *exec.Ctx) []*bat.BAT {
	out := make([]*bat.BAT, len(a.orderCols))
	for k, col := range a.orderCols {
		if a.perm == nil || bat.IsSortedIndex(a.perm) {
			out[k] = col
		} else {
			out[k] = col.Gather(c, a.perm)
		}
	}
	return out
}

// orderedAppCols returns the application part gathered into operation
// order (Y in Algorithm 1) — the no-copy µ constructor used by the BAT
// execution path.
func (a *argument) orderedAppCols(c *exec.Ctx) []*bat.BAT {
	out := make([]*bat.BAT, len(a.appCols))
	for k, col := range a.appCols {
		if a.perm == nil || bat.IsSortedIndex(a.perm) {
			out[k] = col
		} else {
			out[k] = col.Gather(c, a.perm)
		}
	}
	return out
}

// toMatrix is the matrix constructor µ_Ū(r) for the dense path: it copies
// the application part, ordered by the permutation, into a contiguous
// row-major array (the "copy BATs to an MKL compatible format" step whose
// cost Figure 14 measures). The copy-in is column-parallel: each source
// column scatters into a distinct stride of the row-major array, so the
// writes are disjoint. The backing array is drawn from the context's
// arena — every cell is overwritten below — and handed back with
// releaseMatrix once the kernel has consumed the operand.
func (a *argument) toMatrix(c *exec.Ctx) (*matrix.Matrix, error) {
	m := a.rows()
	n := len(a.appCols)
	out := &matrix.Matrix{Rows: m, Cols: n, Data: c.Arena().Floats(m * n)}
	errs := make([]error, n)
	c.ParallelFor(n, 1, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			f, err := a.appCols[j].FloatsCtx(c)
			if err != nil {
				errs[j] = err
				continue
			}
			if a.perm == nil {
				for i := 0; i < m; i++ {
					out.Data[i*n+j] = f[i]
				}
			} else {
				for i, p := range a.perm {
					out.Data[i*n+j] = f[p]
				}
			}
			a.appCols[j].ReleaseFloats(c, f)
		}
	})
	for _, err := range errs {
		if err != nil {
			releaseMatrix(c, out)
			return nil, fmt.Errorf("rma: %v", err)
		}
	}
	return out, nil
}

// releaseMatrix returns a toMatrix backing array to the context's arena
// once the dense kernel has consumed the operand (the kernels never alias
// their inputs into their results). The matrix must not be used
// afterwards.
func releaseMatrix(c *exec.Ctx, m *matrix.Matrix) {
	if m == nil || m.Data == nil {
		return
	}
	data := m.Data
	m.Data = nil
	c.Arena().FreeFloats(data)
}

// columnCast is ▽U: the sorted values of a single-attribute order schema,
// rendered as strings, used as attribute names of result application
// schemas (usv, opd, tra). The key property guarantees uniqueness.
func (a *argument) columnCast(c *exec.Ctx) ([]string, error) {
	if len(a.orderCols) != 1 {
		return nil, fmt.Errorf("rma: column cast needs an order schema of cardinality one, got %v",
			a.orderSchema.Names())
	}
	perm := a.perm
	if perm == nil {
		// Names must be sorted even when row sorting was optimized away.
		perm = bat.SortIndex(c, a.orderCols)
		if !bat.KeyUnique(a.orderCols, perm) {
			return nil, fmt.Errorf("rma: order schema %v of %s is not a key",
				a.orderSchema.Names(), a.rel.Name)
		}
	}
	col := a.orderCols[0]
	names := make([]string, len(perm))
	for i, p := range perm {
		names[i] = col.Get(p).String()
	}
	return names, nil
}

// schemaCast is ∆Ū: the application schema attribute names as the values
// of the result's C attribute (tra, rqr, dsv, vsv, cpd, sol).
func (a *argument) schemaCast() []string {
	return append([]string(nil), a.appSchema.Names()...)
}

// matrixToCols converts a dense base result back into one BAT per column
// (the copy-back half of the transformation). The materialization is
// column-parallel and draws the column buffers from the context's arena.
func matrixToCols(c *exec.Ctx, m *matrix.Matrix) []*bat.BAT {
	out := make([]*bat.BAT, m.Cols)
	c.ParallelFor(m.Cols, 1, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			col := c.Arena().Floats(m.Rows)
			for i := 0; i < m.Rows; i++ {
				col[i] = m.Data[i*m.Cols+j]
			}
			out[j] = bat.FromFloats(col)
		}
	})
	return out
}

// floatSchema builds a schema of float attributes with the given names.
func floatSchema(names []string) rel.Schema {
	s := make(rel.Schema, len(names))
	for k, n := range names {
		s[k] = rel.Attr{Name: n, Type: bat.Float}
	}
	return s
}
