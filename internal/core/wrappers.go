package core

import "repro/internal/rel"

// The functions below are typed convenience wrappers over Unary and
// Binary, one per relational matrix operation, in the order of paper
// Table 2. order / rOrder / sOrder are the order schemas (the BY clauses
// of the SQL extension).

// Usv returns op with the full matrix of left singular vectors (r1,r1).
func Usv(r *rel.Relation, order []string, opts *Options) (*rel.Relation, error) {
	return Unary(OpUSV, r, order, opts)
}

// Opd is the outer product A·Bᵀ (r1,r2).
func Opd(r *rel.Relation, rOrder []string, s *rel.Relation, sOrder []string, opts *Options) (*rel.Relation, error) {
	return Binary(OpOPD, r, rOrder, s, sOrder, opts)
}

// Inv is matrix inversion (r1,c1).
func Inv(r *rel.Relation, order []string, opts *Options) (*rel.Relation, error) {
	return Unary(OpINV, r, order, opts)
}

// Evc returns the eigenvector matrix (r1,c1).
func Evc(r *rel.Relation, order []string, opts *Options) (*rel.Relation, error) {
	return Unary(OpEVC, r, order, opts)
}

// Chf is the Cholesky factorization (r1,c1).
func Chf(r *rel.Relation, order []string, opts *Options) (*rel.Relation, error) {
	return Unary(OpCHF, r, order, opts)
}

// Qqr returns matrix Q of the QR decomposition (r1,c1).
func Qqr(r *rel.Relation, order []string, opts *Options) (*rel.Relation, error) {
	return Unary(OpQQR, r, order, opts)
}

// Mmu is matrix multiplication (r1,c2).
func Mmu(r *rel.Relation, rOrder []string, s *rel.Relation, sOrder []string, opts *Options) (*rel.Relation, error) {
	return Binary(OpMMU, r, rOrder, s, sOrder, opts)
}

// Evl returns the eigenvalues (r1,1).
func Evl(r *rel.Relation, order []string, opts *Options) (*rel.Relation, error) {
	return Unary(OpEVL, r, order, opts)
}

// Tra is transposition (c1,r1).
func Tra(r *rel.Relation, order []string, opts *Options) (*rel.Relation, error) {
	return Unary(OpTRA, r, order, opts)
}

// Rqr returns matrix R of the QR decomposition (c1,c1).
func Rqr(r *rel.Relation, order []string, opts *Options) (*rel.Relation, error) {
	return Unary(OpRQR, r, order, opts)
}

// Dsv returns the diagonal matrix of singular values (c1,c1).
func Dsv(r *rel.Relation, order []string, opts *Options) (*rel.Relation, error) {
	return Unary(OpDSV, r, order, opts)
}

// Vsv returns the matrix of right singular vectors (c1,c1; see DESIGN.md
// for the deviation from the paper's Table 1).
func Vsv(r *rel.Relation, order []string, opts *Options) (*rel.Relation, error) {
	return Unary(OpVSV, r, order, opts)
}

// Cpd is the cross product Aᵀ·B (c1,c2).
func Cpd(r *rel.Relation, rOrder []string, s *rel.Relation, sOrder []string, opts *Options) (*rel.Relation, error) {
	return Binary(OpCPD, r, rOrder, s, sOrder, opts)
}

// Sol solves A·x = b (c1,c2).
func Sol(r *rel.Relation, rOrder []string, s *rel.Relation, sOrder []string, opts *Options) (*rel.Relation, error) {
	return Binary(OpSOL, r, rOrder, s, sOrder, opts)
}

// Emu is elementwise multiplication (r*,c*).
func Emu(r *rel.Relation, rOrder []string, s *rel.Relation, sOrder []string, opts *Options) (*rel.Relation, error) {
	return Binary(OpEMU, r, rOrder, s, sOrder, opts)
}

// Add is matrix addition (r*,c*).
func Add(r *rel.Relation, rOrder []string, s *rel.Relation, sOrder []string, opts *Options) (*rel.Relation, error) {
	return Binary(OpADD, r, rOrder, s, sOrder, opts)
}

// Sub is matrix subtraction (r*,c*).
func Sub(r *rel.Relation, rOrder []string, s *rel.Relation, sOrder []string, opts *Options) (*rel.Relation, error) {
	return Binary(OpSUB, r, rOrder, s, sOrder, opts)
}

// Det is the determinant (1,1).
func Det(r *rel.Relation, order []string, opts *Options) (*rel.Relation, error) {
	return Unary(OpDET, r, order, opts)
}

// Rnk is the matrix rank (1,1).
func Rnk(r *rel.Relation, order []string, opts *Options) (*rel.Relation, error) {
	return Unary(OpRNK, r, order, opts)
}
