package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bat"
	"repro/internal/matrix"
	"repro/internal/rel"
)

// relFromSeed builds a deterministic random relation from a seed: n rows
// (2..17), k app columns (1..4), shuffled int key.
func relFromSeed(seed int64, name string) *rel.Relation {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(16)
	k := 1 + rng.Intn(4)
	return randRelation(rng, name, n, k)
}

// TestQuickAddCommutes: add_U;V(r, s) and add_V;U(s, r) contain the same
// numeric base result (matrix addition commutes; the origins swap).
func TestQuickAddCommutes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(16)
		k := 1 + rng.Intn(4)
		r := randRelation(rng, "r", n, k)
		s := randRelation(rng, "s", n, k)
		rs, err := Add(r, []string{"Kr"}, s, []string{"Ks"}, nil)
		if err != nil {
			return false
		}
		sr, err := Add(s, []string{"Ks"}, r, []string{"Kr"}, nil)
		if err != nil {
			return false
		}
		a, err := rs.Drop("Ks")
		if err != nil {
			return false
		}
		b, err := sr.Drop("Kr")
		if err != nil {
			return false
		}
		ma := reduce(t, a, []string{"Kr"})
		mb := reduce(t, b, []string{"Ks"})
		return matrix.ApproxEqual(ma, mb, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickSubInverseOfAdd: sub(add(r,s), s') recovers r's values.
func TestQuickSubInverseOfAdd(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(16)
		k := 1 + rng.Intn(4)
		r := randRelation(rng, "r", n, k)
		s := randRelation(rng, "s", n, k)
		sum, err := Add(r, []string{"Kr"}, s, []string{"Ks"}, nil)
		if err != nil {
			return false
		}
		sum2, err := sum.Drop("Ks")
		if err != nil {
			return false
		}
		back, err := Sub(sum2, []string{"Kr"}, s, []string{"Ks"}, nil)
		if err != nil {
			return false
		}
		back2, err := back.Drop("Ks")
		if err != nil {
			return false
		}
		return matrix.ApproxEqual(
			reduce(t, back2, []string{"Kr"}),
			inputMatrix(t, r), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickTraTwiceIsIdentityModuloOrder: tra(tra(r)) holds the same
// tuples as r (sorted by the key), per the paper's Figure 10.
func TestQuickTraTwiceIsIdentityModuloOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := relFromSeed(seed, "r")
		t1, err := Tra(r, []string{"Kr"}, nil)
		if err != nil {
			return false
		}
		t2, err := Tra(t1, []string{"C"}, nil)
		if err != nil {
			return false
		}
		// t2 columns are the app schema names; its C column holds the
		// stringified key values.
		m2 := reduce(t, t2, []string{"C"})
		// Compare against r reduced by the key, with rows ordered by the
		// *string* rendering of the key (the C sort order of t2).
		keyCol, _ := r.Col("Kr")
		n := r.NumRows()
		keys := make([]string, n)
		for i := 0; i < n; i++ {
			keys[i] = keyCol.Get(i).String()
		}
		strKeys := bat.FromStrings(keys)
		schema := append(rel.Schema{{Name: "Sk", Type: bat.String}}, r.Schema[1:]...)
		cols := append([]*bat.BAT{strKeys}, r.Cols[1:]...)
		rs, err := rel.New("rs", schema, cols)
		if err != nil {
			return false
		}
		m1 := reduce(t, rs, []string{"Sk"})
		return matrix.ApproxEqual(m1, m2, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickQqrOrthonormal: the application part of qqr(r) always has
// orthonormal columns, for any relation with a key and enough rows.
func TestQuickQqrOrthonormal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(4)
		n := k + 1 + rng.Intn(16) // rows > cols
		r := randRelation(rng, "r", n, k)
		q, err := Qqr(r, []string{"Kr"}, nil)
		if err != nil {
			return false
		}
		m := reduce(t, q, []string{"Kr"})
		qtq := matrix.New(k, k)
		for a := 0; a < k; a++ {
			for b := 0; b < k; b++ {
				var s float64
				for i := 0; i < n; i++ {
					s += m.At(i, a) * m.At(i, b)
				}
				qtq.Set(a, b, s)
			}
		}
		return matrix.ApproxEqual(qtq, matrix.Identity(k), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickDetInvReciprocal: det(inv(A)) = 1/det(A) for well-conditioned
// square relations.
func TestQuickDetInvReciprocal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		r := spdRelation(rng, n)
		d1, err := Det(r, []string{"K"}, nil)
		if err != nil {
			return false
		}
		inv, err := Inv(r, []string{"K"}, nil)
		if err != nil {
			return false
		}
		d2, err := Det(inv, []string{"K"}, nil)
		if err != nil {
			return false
		}
		a, b := d1.Value(0, 1).F, d2.Value(0, 1).F
		return math.Abs(a*b-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestQuickOriginsAlwaysPresent: for every unary op applicable to a tall
// relation, the result relation has at least one contextual attribute and
// numeric base columns — relations with origins, never bare matrices.
func TestQuickOriginsAlwaysPresent(t *testing.T) {
	ops := []Op{OpTRA, OpQQR, OpRQR, OpDSV, OpUSV, OpVSV, OpRNK}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(3)
		n := k + 2 + rng.Intn(10)
		r := randRelation(rng, "r", n, k)
		for _, op := range ops {
			v, err := Unary(op, r, []string{"Kr"}, nil)
			if err != nil {
				return false
			}
			// First attribute is contextual: the key (Int) or C (String).
			if v.Schema[0].Type == bat.Float {
				return false
			}
			for _, attr := range v.Schema[1:] {
				if attr.Type != bat.Float {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestQuickSortModesAgree: optimized and full sorting always produce the
// same set of tuples for the no-sort class and the relative-sort class.
func TestQuickSortModesAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(3)
		n := k + 2 + rng.Intn(12)
		r := randRelation(rng, "r", n, k)
		s := randRelation(rng, "s", n, k)
		full, err := Emu(r, []string{"Kr"}, s, []string{"Ks"}, &Options{SortMode: SortFull})
		if err != nil {
			return false
		}
		opt, err := Emu(r, []string{"Kr"}, s, []string{"Ks"}, &Options{SortMode: SortOptimized})
		if err != nil {
			return false
		}
		fd, err := full.Drop("Ks")
		if err != nil {
			return false
		}
		od, err := opt.Drop("Ks")
		if err != nil {
			return false
		}
		return matrix.ApproxEqual(
			reduce(t, fd, []string{"Kr"}),
			reduce(t, od, []string{"Kr"}), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
