package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/bat"
	"repro/internal/exec"
	"repro/internal/matrix"
	"repro/internal/rel"
)

func TestSkinnyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	r := randRelation(rng, "r", 9, 4)
	skinny, err := ToSkinny(r, []string{"Kr"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if skinny.NumRows() != 9*4 {
		t.Fatalf("skinny rows = %d, want 36", skinny.NumRows())
	}
	if got := skinny.Schema.Names(); got[1] != SkinnyAttr || got[2] != SkinnyValue {
		t.Fatalf("skinny schema = %v", got)
	}
	wide, err := FromSkinny(skinny, []string{"Kr"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Same matrix after reduction by the key (attribute names of the
	// generator sort alphabetically, so column order is preserved).
	if !matrix.ApproxEqual(inputMatrix(t, wide), inputMatrix(t, r), 1e-12) {
		t.Error("skinny round trip changed values")
	}
}

func TestSkinnyIsRelationalInput(t *testing.T) {
	// The skinny form is an ordinary relation: RMA operations work on it.
	rng := rand.New(rand.NewSource(78))
	r := randRelation(rng, "r", 5, 2)
	skinny, err := ToSkinny(r, []string{"Kr"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// (Kr, attr) is a key of the skinny relation; val is the single
	// application column — qqr over it must work.
	q, err := Qqr(skinny, []string{"Kr", SkinnyAttr}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumRows() != 10 || q.NumCols() != 3 {
		t.Fatalf("qqr over skinny = %dx%d", q.NumRows(), q.NumCols())
	}
}

func TestSkinnyErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	r := randRelation(rng, "r", 4, 2)
	if _, err := ToSkinny(r, []string{"nope"}, nil); err == nil {
		t.Error("bad order attribute accepted")
	}
	// Name collision with the generated attributes.
	coll := rel.MustNew("c", rel.Schema{
		{Name: "K", Type: bat.Int},
		{Name: SkinnyAttr, Type: bat.Float},
	}, []*bat.BAT{bat.FromInts([]int64{1}), bat.FromFloats([]float64{2})})
	if _, err := ToSkinny(coll, []string{"K"}, nil); err == nil {
		t.Error("attr collision accepted")
	}

	skinny, err := ToSkinny(r, []string{"Kr"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Remove one row: no longer dense.
	idx := make([]int, skinny.NumRows()-1)
	for i := range idx {
		idx[i] = i
	}
	if _, err := FromSkinny(skinny.Gather(nil, idx), []string{"Kr"}, nil); err == nil {
		t.Error("non-dense skinny accepted")
	}
	// Duplicate a row: duplicate cell.
	dup := make([]int, skinny.NumRows()+1)
	for i := range dup {
		dup[i] = i % skinny.NumRows()
	}
	if _, err := FromSkinny(skinny.Gather(nil, dup), []string{"Kr"}, nil); err == nil {
		t.Error("duplicate cell accepted")
	}
	if _, err := FromSkinny(r, []string{"Kr"}, nil); err == nil {
		t.Error("relation without attr/val accepted")
	}
	if _, err := FromSkinny(skinny, []string{SkinnyAttr}, nil); err == nil {
		t.Error("attr as order attribute accepted")
	}
	if _, err := FromSkinny(skinny, []string{"nope"}, nil); err == nil {
		t.Error("missing order attribute accepted")
	}
}

// TestSkinnyWideTableScenario exercises the paper's motivation: a wide
// relation stored skinny, pivoted on demand for a matrix operation.
func TestSkinnyWideTableScenario(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	wide := randRelation(rng, "w", 40, 30) // 30 application attributes
	skinny, err := ToSkinny(wide, []string{"Kw"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if skinny.NumCols() != 3 {
		t.Fatalf("skinny arity = %d", skinny.NumCols())
	}
	back, err := FromSkinny(skinny, []string{"Kw"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Matrix operation on the recovered wide view.
	q, err := Rqr(back, []string{"Kw"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumRows() != 30 {
		t.Fatalf("rqr rows = %d", q.NumRows())
	}
}

// TestSkinnyBudgetBoundary pins the CatchBudget contract on the skinny
// boundaries: a governed invocation whose budget cannot fit the gather
// buffers must fail with the typed error, never unwind the caller with
// a panic. (rmalint/budgetboundary flagged both functions before they
// installed the handler.)
func TestSkinnyBudgetBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	r := randRelation(rng, "r", 64, 4)
	opts := &Options{Tenant: "skinny-budget", MemoryBudget: 1, Governor: exec.NewGovernor(0, 0)}
	if _, err := ToSkinny(r, []string{"Kr"}, opts); !errors.Is(err, exec.ErrMemoryBudget) {
		t.Fatalf("ToSkinny under a 1-byte budget: err = %v, want ErrMemoryBudget", err)
	}
	skinny, err := ToSkinny(r, []string{"Kr"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromSkinny(skinny, []string{"Kr"}, opts); !errors.Is(err, exec.ErrMemoryBudget) {
		t.Fatalf("FromSkinny under a 1-byte budget: err = %v, want ErrMemoryBudget", err)
	}
}
