package core

import (
	"fmt"
	"sort"

	"repro/internal/bat"
	"repro/internal/exec"
	"repro/internal/rel"
)

// This file implements the paper's Section 9 future-work item: "it also is
// interesting to investigate the handling of wide tables, e.g., by storing
// them as skinny tables that are accessed accordingly". ToSkinny unpivots
// a wide relation into (key..., attribute, value) triples; FromSkinny
// pivots back. Together they let wide application schemas (Table 4's 10K
// columns) live in a three-column relation, while relational matrix
// operations keep operating on the wide view.

// SkinnyAttr and SkinnyValue name the two generated attributes of the
// skinny representation.
const (
	SkinnyAttr  = "attr"
	SkinnyValue = "val"
)

// ToSkinny unpivots the application part of r: the result has the order
// schema of r plus (attr, val), one row per (tuple, application
// attribute). The order schema must form a key of r; the skinny relation
// is keyed by order schema + attr. The invocation is governed like
// Unary/Binary: opts selects parallelism and the tenant arena (nil runs
// ungoverned on the shared arena), and a memory-budget overrun surfaces
// as an error matching exec.ErrMemoryBudget.
func ToSkinny(r *rel.Relation, order []string, opts *Options) (res *rel.Relation, err error) {
	opts = opts.orDefault()
	c := opts.ctxWorkers(opts.Parallelism)
	defer opts.finishCtx(c)
	defer exec.CatchBudget(&err)
	a, err := split(r, order)
	if err != nil {
		return nil, err
	}
	if err := a.sortArg(c); err != nil {
		return nil, err
	}
	if r.Schema.Index(SkinnyAttr) >= 0 || r.Schema.Index(SkinnyValue) >= 0 {
		return nil, fmt.Errorf("rma: relation already has %q or %q attributes", SkinnyAttr, SkinnyValue)
	}
	n := r.NumRows()
	k := len(a.appCols)
	// Order columns repeat once per application attribute.
	idx := make([]int, 0, n*k)
	for j := 0; j < k; j++ {
		for i := 0; i < n; i++ {
			idx = append(idx, i)
		}
	}
	schema := append(a.orderSchema.Clone(),
		rel.Attr{Name: SkinnyAttr, Type: bat.String},
		rel.Attr{Name: SkinnyValue, Type: bat.Float})
	cols := make([]*bat.BAT, 0, len(schema))
	for _, col := range a.orderCols {
		cols = append(cols, col.Gather(c, idx))
	}
	attrs := make([]string, 0, n*k)
	vals := make([]float64, 0, n*k)
	for j, col := range a.appCols {
		f, err := col.Floats()
		if err != nil {
			return nil, err
		}
		name := a.appSchema[j].Name
		for i := 0; i < n; i++ {
			attrs = append(attrs, name)
			vals = append(vals, f[i])
		}
	}
	cols = append(cols, bat.FromStrings(attrs), bat.FromFloats(vals))
	return rel.New(r.Name+"_skinny", schema, cols)
}

// FromSkinny pivots a skinny relation (order schema + attr + val) back to
// the wide form. Attribute columns appear in sorted name order; every key
// must carry the same attribute set (missing cells are an error, matching
// the dense-matrix semantics of the algebra). Governed like ToSkinny.
func FromSkinny(r *rel.Relation, order []string, opts *Options) (res *rel.Relation, err error) {
	opts = opts.orDefault()
	c := opts.ctxWorkers(opts.Parallelism)
	defer opts.finishCtx(c)
	defer exec.CatchBudget(&err)
	attrC, err := r.Col(SkinnyAttr)
	if err != nil {
		return nil, err
	}
	valC, err := r.Col(SkinnyValue)
	if err != nil {
		return nil, err
	}
	if attrC.Type() != bat.String {
		return nil, fmt.Errorf("rma: %q must be a string column", SkinnyAttr)
	}
	vals, err := valC.Floats()
	if err != nil {
		return nil, err
	}
	orderCols := make([]*bat.BAT, len(order))
	var orderSchema rel.Schema
	for k, name := range order {
		j := r.Schema.Index(name)
		if j < 0 {
			return nil, fmt.Errorf("rma: no order attribute %q", name)
		}
		if name == SkinnyAttr || name == SkinnyValue {
			return nil, fmt.Errorf("rma: %q cannot be an order attribute here", name)
		}
		orderCols[k] = r.Cols[j]
		orderSchema = append(orderSchema, r.Schema[j])
	}

	// Collect distinct attribute names (sorted) and distinct keys (in
	// order of first appearance, then sorted via the key columns).
	attrs := attrC.Vector().Strings()
	attrSet := map[string]int{}
	var attrNames []string
	for _, s := range attrs {
		if _, ok := attrSet[s]; !ok {
			attrSet[s] = 0
			attrNames = append(attrNames, s)
		}
	}
	sort.Strings(attrNames)
	for j, s := range attrNames {
		attrSet[s] = j
	}

	n := r.NumRows()
	keyOfRow := make([]string, n)
	for i := 0; i < n; i++ {
		key := ""
		for _, oc := range orderCols {
			key += oc.Get(i).String() + "\x00"
		}
		keyOfRow[i] = key
	}
	keyIndex := map[string]int{}
	var keyRows []int // first row of each key
	for i := 0; i < n; i++ {
		if _, ok := keyIndex[keyOfRow[i]]; !ok {
			keyIndex[keyOfRow[i]] = len(keyRows)
			keyRows = append(keyRows, i)
		}
	}
	width := len(attrNames)
	if len(keyRows)*width != n {
		return nil, fmt.Errorf("rma: skinny relation is not dense: %d rows, %d keys × %d attributes",
			n, len(keyRows), width)
	}

	out := make([][]float64, width)
	filled := make([][]bool, width)
	for j := range out {
		out[j] = make([]float64, len(keyRows))
		filled[j] = make([]bool, len(keyRows))
	}
	for i := 0; i < n; i++ {
		kIdx := keyIndex[keyOfRow[i]]
		aIdx := attrSet[attrs[i]]
		if filled[aIdx][kIdx] {
			return nil, fmt.Errorf("rma: duplicate cell for key %d attribute %q", kIdx, attrs[i])
		}
		filled[aIdx][kIdx] = true
		out[aIdx][kIdx] = vals[i]
	}
	for j := range filled {
		for _, ok := range filled[j] {
			if !ok {
				return nil, fmt.Errorf("rma: missing cell for attribute %q", attrNames[j])
			}
		}
	}

	schema := orderSchema.Clone()
	cols := make([]*bat.BAT, 0, len(order)+width)
	for _, col := range orderCols {
		cols = append(cols, col.Gather(c, keyRows))
	}
	for j, name := range attrNames {
		schema = append(schema, rel.Attr{Name: name, Type: bat.Float})
		cols = append(cols, bat.FromFloats(out[j]))
	}
	return rel.New(r.Name, schema, cols)
}
