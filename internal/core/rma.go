package core

import (
	"errors"
	"fmt"

	"repro/internal/bat"
	"repro/internal/exec"
	"repro/internal/linalg"
	"repro/internal/matrix"
	"repro/internal/rel"
)

// contextAttr is the name of the attribute that carries contextual
// information for operations that do not preserve row context (paper
// Table 2, attribute C).
const contextAttr = "C"

// Unary executes a unary relational matrix operation op_U(r) following
// Algorithm 1: split, sort, morph, evaluate, merge. The order attributes
// must form a key of r; all remaining attributes form the application
// schema and must be numeric.
//
// A governed invocation (Options.MemoryBudget) that fails its budget at
// the configured parallelism is retried once serially: the parallel
// kernels need extra scratch (merge-sort double buffers, per-run
// staging) that the serial paths do not, and every kernel is
// bitwise-deterministic across worker budgets, so the fallback result
// is identical to the parallel one. If the serial retry exceeds the
// budget too, the typed error (matching exec.ErrMemoryBudget) is
// returned — never a panic.
func Unary(op Op, r *rel.Relation, order []string, opts *Options) (*rel.Relation, error) {
	if op.Binary() {
		return nil, fmt.Errorf("rma: %s takes two relations", op)
	}
	opts = opts.orDefault()
	res, err := runUnary(op, r, order, opts, opts.Parallelism)
	if retrySerial(opts, err) {
		resetStats(opts)
		res, err = runUnary(op, r, order, opts, 1)
		if err == nil && opts.Stats != nil {
			opts.Stats.SerialFallback = true
		}
	}
	return res, err
}

// retrySerial reports whether a failed governed invocation should be
// rerun at parallelism 1: only when the first attempt actually ran with
// more than one worker — a serial (or serially-resolved dynamic) run
// that exceeded its budget would fail identically, since the kernels
// are deterministic across worker budgets.
func retrySerial(opts *Options, err error) bool {
	if err == nil || !errors.Is(err, exec.ErrMemoryBudget) {
		return false
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = exec.DefaultWorkers()
	}
	return workers > 1
}

// resetStats clears the caller's Stats before the serial retry so the
// failed parallel attempt's phase timings and fan-out counters do not
// pollute the retry's report: after a fallback, Stats describe exactly
// the run that produced the result (Workers=1, zero parallel sections).
func resetStats(opts *Options) {
	if opts.Stats != nil {
		*opts.Stats = Stats{}
	}
}

func runUnary(op Op, r *rel.Relation, order []string, opts *Options, workers int) (res *rel.Relation, err error) {
	c := opts.ctxWorkers(workers)
	defer opts.finishCtx(c)
	defer exec.CatchBudget(&err)
	clock := phaseClock{stats: opts.Stats}

	// Split and sort (context handling).
	clock.begin()
	a, err := split(r, order)
	if err != nil {
		return nil, err
	}
	doSort := !(opts.SortMode == SortOptimized && sortNeedOf(op) == needNone)
	if doSort {
		if err := a.sortArg(c); err != nil {
			return nil, err
		}
		if opts.Stats != nil {
			opts.Stats.Sorted = true
		}
	}
	if err := checkUnaryShape(op, a); err != nil {
		return nil, err
	}
	clock.endContext()

	// Evaluate the base result.
	baseCols, err := evalUnaryBase(c, op, a, opts, &clock)
	if err != nil {
		return nil, err
	}

	// Morph and merge (context handling).
	clock.begin()
	res, err = assemble(c, op, a, nil, baseCols)
	clock.endContext()
	return res, err
}

// Binary executes a binary relational matrix operation op_U;V(r, s),
// with the same memory-budget serial fallback as Unary.
func Binary(op Op, r *rel.Relation, rOrder []string, s *rel.Relation, sOrder []string, opts *Options) (*rel.Relation, error) {
	if !op.Binary() {
		return nil, fmt.Errorf("rma: %s takes one relation", op)
	}
	opts = opts.orDefault()
	res, err := runBinary(op, r, rOrder, s, sOrder, opts, opts.Parallelism)
	if retrySerial(opts, err) {
		resetStats(opts)
		res, err = runBinary(op, r, rOrder, s, sOrder, opts, 1)
		if err == nil && opts.Stats != nil {
			opts.Stats.SerialFallback = true
		}
	}
	return res, err
}

func runBinary(op Op, r *rel.Relation, rOrder []string, s *rel.Relation, sOrder []string, opts *Options, workers int) (res *rel.Relation, err error) {
	c := opts.ctxWorkers(workers)
	defer opts.finishCtx(c)
	defer exec.CatchBudget(&err)
	clock := phaseClock{stats: opts.Stats}

	clock.begin()
	a, err := split(r, rOrder)
	if err != nil {
		return nil, err
	}
	b, err := split(s, sOrder)
	if err != nil {
		return nil, err
	}
	if err := sortBinary(c, op, a, b, opts); err != nil {
		return nil, err
	}
	if err := checkBinaryShape(op, a, b); err != nil {
		return nil, err
	}
	clock.endContext()

	baseCols, err := evalBinaryBase(c, op, a, b, opts, &clock)
	if err != nil {
		return nil, err
	}

	clock.begin()
	res, err = assemble(c, op, a, b, baseCols)
	clock.endContext()
	return res, err
}

// sortBinary applies the sorting strategy for two-argument operations:
// full sorting, or the Section 8.1 optimizations (relative sorting of the
// second argument; second-only sorting for mmu/opd).
func sortBinary(c *exec.Ctx, op Op, a, b *argument, opts *Options) error {
	need := sortNeedOf(op)
	if opts.SortMode != SortOptimized {
		need = needFull
	}
	switch need {
	case needRelative:
		// Both sort indexes are computed (also verifying the key
		// property), but only the second argument's columns are gathered:
		// b is aligned to a's input order, a stays in place.
		if err := a.sortArg(c); err != nil {
			return err
		}
		if err := b.sortArg(c); err != nil {
			return err
		}
		if a.rows() == b.rows() {
			align := c.Arena().Ints(len(b.perm))
			for k, pa := range a.perm {
				align[pa] = b.perm[k]
			}
			c.Arena().FreeInts(b.perm)
			b.perm = align
			c.Arena().FreeInts(a.perm)
			a.perm = nil // keep a in input order, no gathers
		}
		if opts.Stats != nil {
			opts.Stats.Sorted = true
		}
	case needSecondOnly:
		if err := b.sortArg(c); err != nil {
			return err
		}
		if opts.Stats != nil {
			opts.Stats.Sorted = true
		}
	default:
		if err := a.sortArg(c); err != nil {
			return err
		}
		if err := b.sortArg(c); err != nil {
			return err
		}
		if opts.Stats != nil {
			opts.Stats.Sorted = true
		}
	}
	return nil
}

// checkBinaryShape validates dimension requirements of binary operations.
func checkBinaryShape(op Op, a, b *argument) error {
	switch op {
	case OpADD, OpSUB, OpEMU:
		if a.rows() != b.rows() {
			return fmt.Errorf("rma: %s needs equal row counts, got %d and %d", op, a.rows(), b.rows())
		}
		if len(a.appCols) != len(b.appCols) {
			return fmt.Errorf("rma: %s needs union-compatible application schemas, got %d and %d attributes",
				op, len(a.appCols), len(b.appCols))
		}
		for _, attr := range b.orderSchema {
			if a.orderSchema.Index(attr.Name) >= 0 {
				return fmt.Errorf("rma: %s needs non-overlapping order schemas; %q appears in both", op, attr.Name)
			}
		}
	case OpMMU:
		if len(a.appCols) != b.rows() {
			return fmt.Errorf("rma: mmu inner dimensions: %d application attributes vs %d rows",
				len(a.appCols), b.rows())
		}
	case OpOPD:
		if len(a.appCols) != len(b.appCols) {
			return fmt.Errorf("rma: opd needs equally wide application schemas, got %d and %d",
				len(a.appCols), len(b.appCols))
		}
	case OpCPD:
		if a.rows() != b.rows() {
			return fmt.Errorf("rma: cpd needs equal row counts, got %d and %d", a.rows(), b.rows())
		}
	case OpSOL:
		if a.rows() != b.rows() {
			return fmt.Errorf("rma: sol needs equal row counts, got %d and %d", a.rows(), b.rows())
		}
		if len(b.appCols) != 1 {
			return fmt.Errorf("rma: sol needs a single application attribute on the right, got %d", len(b.appCols))
		}
		if a.rows() < len(a.appCols) {
			return fmt.Errorf("rma: sol is underdetermined: %d rows, %d unknowns", a.rows(), len(a.appCols))
		}
	}
	if a.rows() == 0 || b.rows() == 0 {
		return fmt.Errorf("rma: %s over an empty relation", op)
	}
	return nil
}

// evalUnaryBase computes the base result as a list of BATs, routing
// through the BAT or dense engine per policy and timing the phases.
func evalUnaryBase(c *exec.Ctx, op Op, a *argument, opts *Options, clock *phaseClock) ([]*bat.BAT, error) {
	if useDense(op, opts.Policy, false) {
		if opts.Stats != nil {
			opts.Stats.UsedDense = true
		}
		// Large QR operands materialize directly into tiles and run the
		// panel-blocked factorization — bitwise-identical to the flat
		// route, but with no single contiguous operand allocation.
		if (op == OpQQR || op == OpRQR) && a.rows()*len(a.appCols) >= blockedMinElems {
			clock.begin()
			bm, err := a.toBlockMatrix(c)
			clock.endTransform()
			if err != nil {
				return nil, err
			}
			clock.begin()
			d, err := linalg.QRBlocked(c, bm)
			clock.endKernel()
			releaseBlockMatrix(c, bm)
			if err != nil {
				return nil, err
			}
			var res *matrix.Matrix
			if op == OpQQR {
				res = d.Q()
			} else {
				res = d.R()
			}
			clock.begin()
			cols := matrixToCols(c, res)
			clock.endTransform()
			return cols, nil
		}
		clock.begin()
		m, err := a.toMatrix(c)
		clock.endTransform()
		if err != nil {
			return nil, err
		}
		clock.begin()
		res, err := evalDenseUnary(c, op, m)
		clock.endKernel()
		releaseMatrix(c, m) // the kernels never alias operands into results
		if err != nil {
			return nil, err
		}
		clock.begin()
		cols := matrixToCols(c, res)
		clock.endTransform()
		return cols, nil
	}
	clock.begin()
	cols := a.orderedAppCols(c) // no-copy µ: gathered views of the BATs
	clock.endContext()
	clock.begin()
	res, err := evalBATUnary(c, op, cols)
	clock.endKernel()
	return res, err
}

func evalBinaryBase(c *exec.Ctx, op Op, a, b *argument, opts *Options, clock *phaseClock) ([]*bat.BAT, error) {
	if useDense(op, opts.Policy, true) {
		if opts.Stats != nil {
			opts.Stats.UsedDense = true
		}
		// Cross product of a relation with itself (the covariance
		// pattern of §8.6(3)) copies once and uses the symmetric
		// rank-k kernel, the paper's cblas_dsyrk route.
		if op == OpCPD && sameApplicationPart(a, b) {
			if a.rows()*len(a.appCols) >= blockedMinElems {
				clock.begin()
				bm, err := a.toBlockMatrix(c)
				clock.endTransform()
				if err != nil {
					return nil, err
				}
				clock.begin()
				res, err := linalg.SYRKBlocked(c, bm)
				clock.endKernel()
				releaseBlockMatrix(c, bm)
				if err != nil {
					return nil, err
				}
				clock.begin()
				cols, err := blockToCols(c, res)
				releaseBlockMatrix(c, res)
				clock.endTransform()
				return cols, err
			}
			clock.begin()
			ma, err := a.toMatrix(c)
			clock.endTransform()
			if err != nil {
				return nil, err
			}
			clock.begin()
			res := linalg.SYRK(c, ma)
			clock.endKernel()
			releaseMatrix(c, ma)
			clock.begin()
			cols := matrixToCols(c, res)
			clock.endTransform()
			return cols, nil
		}
		// Large matrix products take the fully tiled route end to end:
		// tiles in, SUMMA-style tile products, tiles back out — the
		// result is bitwise-identical to the flat kernel.
		if op == OpMMU && (a.rows()*len(a.appCols) >= blockedMinElems ||
			b.rows()*len(b.appCols) >= blockedMinElems) {
			clock.begin()
			ma, err := a.toBlockMatrix(c)
			if err != nil {
				return nil, err
			}
			mb, err := b.toBlockMatrix(c)
			clock.endTransform()
			if err != nil {
				releaseBlockMatrix(c, ma)
				return nil, err
			}
			clock.begin()
			res, err := linalg.MatMulBlocked(c, ma, mb)
			clock.endKernel()
			releaseBlockMatrix(c, ma)
			releaseBlockMatrix(c, mb)
			if err != nil {
				return nil, err
			}
			clock.begin()
			cols, err := blockToCols(c, res)
			releaseBlockMatrix(c, res)
			clock.endTransform()
			return cols, err
		}
		clock.begin()
		ma, err := a.toMatrix(c)
		if err != nil {
			return nil, err
		}
		mb, err := b.toMatrix(c)
		clock.endTransform()
		if err != nil {
			releaseMatrix(c, ma)
			return nil, err
		}
		clock.begin()
		res, err := evalDenseBinary(c, op, ma, mb)
		clock.endKernel()
		releaseMatrix(c, ma)
		releaseMatrix(c, mb)
		if err != nil {
			return nil, err
		}
		clock.begin()
		cols := matrixToCols(c, res)
		clock.endTransform()
		return cols, nil
	}
	clock.begin()
	ca := a.orderedAppCols(c)
	cb := b.orderedAppCols(c)
	clock.endContext()
	clock.begin()
	res, err := evalBATBinary(c, op, ca, cb)
	clock.endKernel()
	return res, err
}

// sameApplicationPart reports whether two arguments share the same
// application columns in the same operation order (physically identical
// BATs and equal permutations).
func sameApplicationPart(a, b *argument) bool {
	if len(a.appCols) != len(b.appCols) {
		return false
	}
	for k := range a.appCols {
		if a.appCols[k] != b.appCols[k] {
			return false
		}
	}
	pa, pb := a.perm, b.perm
	if pa == nil && pb == nil {
		return true
	}
	na := a.rows()
	eff := func(p []int, i int) int {
		if p == nil {
			return i
		}
		return p[i]
	}
	for i := 0; i < na; i++ {
		if eff(pa, i) != eff(pb, i) {
			return false
		}
	}
	return true
}

// assemble merges contextual information with the base result according to
// the operation's shape type (the relation constructor γ applications of
// paper Table 2).
func assemble(c *exec.Ctx, op Op, a, b *argument, baseCols []*bat.BAT) (*rel.Relation, error) {
	shape := ShapeOf(op)
	name := a.rel.Name

	// Column origins: the names of the base result attributes.
	var colNames []string
	var err error
	switch shape.Col {
	case DimC1, DimCStar:
		colNames = a.appSchema.Names()
	case DimC2:
		colNames = b.appSchema.Names()
	case DimR1:
		colNames, err = a.columnCast(c) // ▽U
	case DimR2:
		colNames, err = b.columnCast(c) // ▽V
	case DimOne:
		colNames = []string{string(op)}
	}
	if err != nil {
		return nil, err
	}
	if len(colNames) != len(baseCols) {
		return nil, fmt.Errorf("rma: %s produced %d columns for %d names", op, len(baseCols), len(colNames))
	}

	// Row origins: the leading contextual columns.
	var schema rel.Schema
	var cols []*bat.BAT
	switch shape.Row {
	case DimR1:
		schema = append(schema, a.orderSchema...)
		cols = append(cols, a.orderedOrderCols(c)...)
	case DimRStar:
		schema = append(schema, a.orderSchema...)
		cols = append(cols, a.orderedOrderCols(c)...)
		schema = append(schema, b.orderSchema...)
		cols = append(cols, b.orderedOrderCols(c)...)
	case DimC1:
		vals := a.schemaCast() // ∆Ū
		schema = append(schema, rel.Attr{Name: contextAttr, Type: bat.String})
		cols = append(cols, bat.FromStrings(vals))
	case DimOne:
		src := name
		if src == "" {
			src = "r"
		}
		schema = append(schema, rel.Attr{Name: contextAttr, Type: bat.String})
		cols = append(cols, bat.FromStrings([]string{src}))
	}

	schema = append(schema, floatSchema(colNames)...)
	cols = append(cols, baseCols...)
	res, err := rel.New(name, schema, cols)
	if err != nil {
		return nil, fmt.Errorf("rma: %s result: %v", op, err)
	}
	return res, nil
}
