package core

import "fmt"

// Op identifies a relational matrix operation. The lower-case names match
// the paper's RMA operations (Table 2); the corresponding matrix operations
// are upper-case in the paper.
type Op string

// The nineteen relational matrix operations.
const (
	OpEMU Op = "emu" // elementwise multiplication
	OpMMU Op = "mmu" // matrix multiplication
	OpOPD Op = "opd" // outer product A·Bᵀ
	OpCPD Op = "cpd" // cross product Aᵀ·B
	OpADD Op = "add" // matrix addition
	OpSUB Op = "sub" // matrix subtraction
	OpTRA Op = "tra" // transpose
	OpSOL Op = "sol" // solve A·x = b (least squares when overdetermined)
	OpINV Op = "inv" // inversion
	OpEVC Op = "evc" // eigenvectors
	OpEVL Op = "evl" // eigenvalues
	OpQQR Op = "qqr" // Q of the QR decomposition
	OpRQR Op = "rqr" // R of the QR decomposition
	OpDSV Op = "dsv" // diagonal matrix of singular values
	OpUSV Op = "usv" // left singular vectors (full U)
	OpVSV Op = "vsv" // right singular vectors (V)
	OpDET Op = "det" // determinant
	OpRNK Op = "rnk" // rank
	OpCHF Op = "chf" // Cholesky factorization
)

// Ops lists all relational matrix operations.
var Ops = []Op{
	OpEMU, OpMMU, OpOPD, OpCPD, OpADD, OpSUB, OpTRA, OpSOL, OpINV, OpEVC,
	OpEVL, OpQQR, OpRQR, OpDSV, OpUSV, OpVSV, OpDET, OpRNK, OpCHF,
}

// ParseOp resolves an operation name (case-insensitive at the SQL layer,
// which lower-cases before calling).
func ParseOp(name string) (Op, error) {
	op := Op(name)
	switch op {
	case OpEMU, OpMMU, OpOPD, OpCPD, OpADD, OpSUB, OpTRA, OpSOL, OpINV,
		OpEVC, OpEVL, OpQQR, OpRQR, OpDSV, OpUSV, OpVSV, OpDET, OpRNK, OpCHF:
		return op, nil
	}
	return "", fmt.Errorf("rma: unknown operation %q", name)
}

// Binary reports whether the operation takes two argument relations.
func (op Op) Binary() bool {
	switch op {
	case OpEMU, OpMMU, OpOPD, OpCPD, OpADD, OpSUB, OpSOL:
		return true
	}
	return false
}

// Dim is one component of a shape type: where the result's row or column
// count (and the corresponding origin) comes from.
type Dim uint8

// Shape dimensions per paper Table 1/3.
const (
	DimR1    Dim = iota // rows of the first argument
	DimR2               // rows of the second argument
	DimC1               // columns (application schema) of the first argument
	DimC2               // columns (application schema) of the second argument
	DimRStar            // rows of both arguments (equal by requirement)
	DimCStar            // columns of both arguments (union-compatible)
	DimOne              // the constant 1
)

// ShapeType is the (row, column) shape of an operation's result, which
// determines the inherited contextual information (paper Table 3).
type ShapeType struct {
	Row, Col Dim
}

// ShapeOf returns the shape type of an operation (paper Tables 1 and 2).
//
// Deviation from the paper, documented in DESIGN.md: Table 1 lists vsv as
// (r1,1) with cardinality |i1×j1| → |i1×1|, but the right singular vector
// matrix V of an i1×j1 matrix is j1×j1. vsv is implemented with shape
// (c1,c1), the same class as rqr and dsv.
func ShapeOf(op Op) ShapeType {
	switch op {
	case OpUSV:
		return ShapeType{DimR1, DimR1}
	case OpOPD:
		return ShapeType{DimR1, DimR2}
	case OpINV, OpEVC, OpCHF, OpQQR:
		return ShapeType{DimR1, DimC1}
	case OpMMU:
		return ShapeType{DimR1, DimC2}
	case OpEVL:
		return ShapeType{DimR1, DimOne}
	case OpTRA:
		return ShapeType{DimC1, DimR1}
	case OpRQR, OpDSV, OpVSV:
		return ShapeType{DimC1, DimC1}
	case OpCPD, OpSOL:
		return ShapeType{DimC1, DimC2}
	case OpEMU, OpADD, OpSUB:
		return ShapeType{DimRStar, DimCStar}
	case OpDET, OpRNK:
		return ShapeType{DimOne, DimOne}
	}
	panic(fmt.Sprintf("rma: no shape type for %q", op))
}

// sortNeed classifies how much sorting an operation needs when the
// Section 8.1 optimizations are enabled.
type sortNeed uint8

const (
	// needFull: the base result values depend on the row order of every
	// argument (inv, det, evc, evl, chf) or the row order determines the
	// result column naming (tra).
	needFull sortNeed = iota
	// needNone: the base result is invariant (rqr, dsv, vsv, rnk) or
	// row-equivariant (qqr, usv) under input row permutation, so the
	// unsorted order part remains a valid origin.
	needNone
	// needRelative: binary elementwise-style operations where only the
	// relative order of the two inputs matters; the second argument is
	// aligned to the first (add, sub, emu, cpd, sol).
	needRelative
	// needSecondOnly: the first argument is row-equivariant but the
	// second argument's order defines value pairing or column naming
	// (mmu, opd).
	needSecondOnly
)

func sortNeedOf(op Op) sortNeed {
	switch op {
	case OpQQR, OpUSV, OpRQR, OpDSV, OpVSV, OpRNK:
		return needNone
	case OpADD, OpSUB, OpEMU, OpCPD, OpSOL:
		return needRelative
	case OpMMU, OpOPD:
		return needSecondOnly
	}
	return needFull
}
